// Epidemic: the one-way epidemic that powers every PLL module, measured
// against the tail bound of Lemma 2.
//
// The example runs epidemics in the full population and in a half-sized
// sub-population (the paper applies Lemma 2 to V_A with |V_A| ≥ n/2),
// prints the completion-time quantiles, and charts the empirical tail
// against the paper's bound n·e^{−t/n}.
//
//	go run ./examples/epidemic [-quick]
package main

import (
	"flag"
	"fmt"
	"math"

	"popproto/internal/asciichart"
	"popproto/internal/epidemic"
	"popproto/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "smoke-test scale (smaller population, fewer repetitions)")
	flag.Parse()
	n, reps := 1<<14, 400
	if *quick {
		n, reps = 1<<11, 60
	}
	fn := float64(n)

	for _, sub := range []int{n, n / 2} {
		times := epidemic.CompletionTimes(n, sub, reps, 7)
		parallel := make([]float64, len(times))
		for i, t := range times {
			parallel[i] = float64(t) / fn
		}
		s := stats.Summarize(parallel)
		fmt.Printf("epidemic in |V'| = %5d of n = %d: completion %.1f ± %.1f parallel time (p99 %.1f, ln n = %.1f)\n",
			sub, n, s.Mean, s.SEM(), stats.Quantile(parallel, 0.99), math.Log(fn))
	}

	// Tail probability versus the Lemma 2 bound for the full population.
	times := epidemic.CompletionTimes(n, n, reps, 11)
	var xs, emp, bound []float64
	for tf := 1.0; tf <= 3.0; tf += 0.25 {
		t := tf * fn * math.Log(fn)
		budget := epidemic.Lemma2Steps(n, n, t)
		late := 0
		for _, ct := range times {
			if ct > budget {
				late++
			}
		}
		xs = append(xs, tf)
		emp = append(emp, float64(late)/float64(reps))
		bound = append(bound, epidemic.Lemma2Bound(n, t))
	}
	fmt.Println("\nPr[epidemic unfinished after 2t interactions] vs Lemma 2's n·e^{−t/n}:")
	fmt.Print(asciichart.Plot([]asciichart.Series{
		{Name: "empirical", X: xs, Y: emp},
		{Name: "Lemma 2 bound", X: xs, Y: bound},
	}, asciichart.Options{XLabel: "t/(n ln n)", YLabel: "probability", Width: 56, Height: 12}))
}
