// Symmetric: the Section 4 variant as a chemical reaction network.
//
// A symmetric protocol never uses the initiator/responder distinction when
// both molecules are in the same state (p = q ⇒ p′ = q′), which is what a
// well-mixed chemical system can implement: two identical molecules cannot
// agree on who is "first". This example runs the symmetric PLL, watches
// the coin "species" J/K/F0/F1 reach their working balance, and verifies
// the exact fairness invariant |F0| = |F1|.
//
//	go run ./examples/symmetric [-n agents]
package main

import (
	"flag"
	"fmt"
	"log"

	"popproto/internal/core"
	"popproto/internal/pp"
)

func main() {
	nFlag := flag.Int("n", 5_000, "population size")
	flag.Parse()
	n := *nFlag

	protocol := core.NewSymmetricForN(n)
	sim := pp.NewSimulator[core.SymState](protocol, n, 2019)

	fmt.Println("species census during the reaction (counts per coin status):")
	fmt.Printf("%8s %8s %8s %8s %8s %10s\n", "time", "J", "K", "F0", "F1", "leaders")
	for t := 0; t < 10; t++ {
		sim.RunSteps(uint64(2 * n)) // two units of parallel time
		census := pp.CensusBy(sim, func(s core.SymState) core.CoinStatus { return s.Coin })
		if census[core.CoinF0] != census[core.CoinF1] {
			log.Fatalf("fairness invariant broken: |F0|=%d |F1|=%d",
				census[core.CoinF0], census[core.CoinF1])
		}
		fmt.Printf("%8.1f %8d %8d %8d %8d %10d\n",
			sim.ParallelTime(), census[core.CoinJ], census[core.CoinK],
			census[core.CoinF0], census[core.CoinF1], sim.Leaders())
	}

	steps, ok := sim.RunUntilLeaders(1, 1<<40)
	if !ok {
		log.Fatal("did not stabilize")
	}
	fmt.Printf("\nsingle leader after %.1f parallel time (%d interactions)\n",
		float64(steps)/float64(n), steps)
	fmt.Println("|F0| = |F1| held at every sample: every leader coin flip was exactly fair.")
}
