// Quickstart: elect a leader among 10,000 anonymous agents with PLL, the
// O(log n)-time O(log n)-states protocol of Sudo et al. (PODC 2019).
//
//	go run ./examples/quickstart [-n agents]
package main

import (
	"flag"
	"fmt"
	"log"

	"popproto/internal/core"
	"popproto/internal/pp"
)

func main() {
	nFlag := flag.Int("n", 10_000, "population size")
	flag.Parse()
	n := *nFlag

	// The protocol needs only a rough knowledge m ≥ log₂ n, m = Θ(log n);
	// NewForN picks m = ⌈lg n⌉.
	protocol := core.NewForN(n)
	fmt.Printf("PLL with m = %d: %d states per agent\n",
		protocol.Params().M, protocol.Params().StateSpaceSize())

	// A population is a slice of agent states plus a uniformly random
	// scheduler; the seed makes the run reproducible.
	sim := pp.NewSimulator[core.State](protocol, n, 42)

	// Run until exactly one agent outputs L. For PLL the leader count is
	// monotone, so this is exactly the stabilization time.
	steps, ok := sim.RunUntilLeaders(1, 1<<40)
	if !ok {
		log.Fatal("did not stabilize (budget exhausted)")
	}
	fmt.Printf("one leader after %.1f parallel time (%d interactions)\n",
		sim.ParallelTime(), steps)
	fmt.Printf("that is %.2f × lg n — Theorem 1 promises O(log n)\n",
		sim.ParallelTime()/float64(core.CeilLog2(n)))

	// The elected configuration is stable: no output ever changes again.
	if sim.VerifyStable(uint64(100 * n)) {
		fmt.Println("outputs unchanged over a further 100 parallel time units")
	}
}
