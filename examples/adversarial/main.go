// Adversarial: the paper's safety claims hold for ANY schedule, not just
// the uniformly random one. This example attacks PLL with three
// adversarial schedules — round-robin sweeps, starvation of most of the
// population, and a desynchronizing prefix — and shows that no attack can
// eliminate all leaders or mint a second one; afterwards the random
// scheduler still finishes the election (the probability-1 guarantee).
//
//	go run ./examples/adversarial [-n agents]
package main

import (
	"flag"
	"fmt"
	"log"

	"popproto/internal/core"
	"popproto/internal/pp"
)

func main() {
	nFlag := flag.Int("n", 500, "population size")
	flag.Parse()
	n := *nFlag
	p := core.NewForN(n)

	fmt.Println("attack 1: deterministic round-robin, 200k interactions")
	sim := pp.NewSimulator[core.State](p, n, 1)
	var rr pp.RoundRobin
	sim.RunSchedule(&rr, 200_000)
	report(p, sim)

	fmt.Println("\nattack 2: starve all but 4 agents, 200k interactions")
	sim = pp.NewSimulator[core.State](p, n, 1)
	sim.RunSchedule(&pp.Starve{Active: 4}, 200_000)
	report(p, sim)

	fmt.Println("\nattack 3: desynchronizing prefix, then the random scheduler")
	sim = pp.NewSimulator[core.State](p, n, 7)
	sim.RunSchedule(&pp.Starve{Active: n / 2}, 100_000) // half the world runs far ahead
	report(p, sim)
	steps, ok := sim.RunUntilLeaders(1, 1<<40)
	if !ok {
		log.Fatal("recovery failed")
	}
	fmt.Printf("  recovered to a unique leader at t = %.1f parallel time (%d total interactions)\n",
		sim.ParallelTime(), steps)
	if !sim.VerifyStable(uint64(100 * n)) {
		log.Fatal("configuration unstable after recovery")
	}
	fmt.Println("  stable: the adversary delayed the election but could not corrupt it")
}

func report(p *core.PLL, sim *pp.Simulator[core.State]) {
	bad := 0
	sim.ForEach(func(_ int, s core.State) {
		if p.CheckCanonical(s) != nil {
			bad++
		}
	})
	fmt.Printf("  leaders = %d (safety: ≥ 1), malformed states = %d\n", sim.Leaders(), bad)
	if sim.Leaders() < 1 {
		log.Fatal("SAFETY VIOLATION: all leaders eliminated")
	}
	if bad > 0 {
		log.Fatal("SAFETY VIOLATION: malformed states")
	}
}
