// Comparison: race every protocol in the repository on the same
// populations — a miniature, live version of the paper's Table 1.
//
//	go run ./examples/comparison [-quick]
package main

import (
	"flag"
	"fmt"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/stats"
	"popproto/internal/table"
)

var repetitions = 10

func main() {
	quick := flag.Bool("quick", false, "smoke-test scale (tiny populations, few repetitions)")
	flag.Parse()
	sizes := []int{256, 1024, 4096}
	if *quick {
		sizes = []int{64, 128, 256}
		repetitions = 3
	}

	cols := []string{"protocol", fmt.Sprintf("states (n=%d)", sizes[len(sizes)-1])}
	for _, n := range sizes {
		cols = append(cols, fmt.Sprintf("t̄(%d)", n))
	}
	tbl := table.New(cols...)

	rows := []struct {
		name    string
		states  func(n int) int
		measure func(n int) float64
	}{
		{
			name:   "PLL (this paper)",
			states: func(n int) int { return core.NewParams(n).StateSpaceSize() },
			measure: func(n int) float64 {
				return meanTime[core.State](core.NewForN(n), n)
			},
		},
		{
			name:   "PLL symmetric (§4)",
			states: func(n int) int { return core.NewParams(n).StateSpaceSize() * 8 },
			measure: func(n int) float64 {
				return meanTime[core.SymState](core.NewSymmetricForN(n), n)
			},
		},
		{
			name:   "Angluin 2006 (2 states)",
			states: func(int) int { return 2 },
			measure: func(n int) float64 {
				return meanTime[baseline.AngluinState](baseline.Angluin{}, n)
			},
		},
		{
			name:   "Lottery (Ali+17 style)",
			states: func(n int) int { return baseline.NewLottery(n).StateCount() },
			measure: func(n int) float64 {
				return meanTime[baseline.LotteryState](baseline.NewLottery(n), n)
			},
		},
		{
			name:   "MaxID (MST18 style)",
			states: func(n int) int { return baseline.NewMaxID(n).StateCount() },
			measure: func(n int) float64 {
				return meanTime[baseline.MaxIDState](baseline.NewMaxID(n), n)
			},
		},
	}

	fmt.Printf("mean parallel stabilization time over %d runs per cell\n\n", repetitions)
	for _, row := range rows {
		cells := []string{row.name, fmt.Sprintf("%d", row.states(sizes[len(sizes)-1]))}
		for _, n := range sizes {
			cells = append(cells, fmt.Sprintf("%.1f", row.measure(n)))
		}
		tbl.AddRow(cells...)
	}
	fmt.Print(tbl.Markdown())
	fmt.Println("\nNote how the two-state protocol pays Θ(n) while PLL stays near a·lg n,")
	fmt.Println("and how MaxID matches PLL's speed only by spending Θ(n²) states.")
}

func meanTime[S comparable](proto pp.Protocol[S], n int) float64 {
	budget := 200*uint64(n)*uint64(n) + 1_000_000
	results := pp.MeasureStabilization[S](proto, n, repetitions, 7, budget, 0)
	times := make([]float64, len(results))
	for i, r := range results {
		if !r.Stabilized {
			panic(fmt.Sprintf("%s did not stabilize at n=%d", proto.Name(), n))
		}
		times[i] = r.ParallelTime
	}
	return stats.Mean(times)
}
