// Comparison: race every election protocol in the registry on the same
// populations — a miniature, live version of the paper's Table 1.
//
//	go run ./examples/comparison [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/stats"
	"popproto/internal/table"
)

var (
	repetitions = 10
	engine      pp.Engine
)

func main() {
	quick := flag.Bool("quick", false, "smoke-test scale (tiny populations, few repetitions)")
	engineName := flag.String("engine", "agent",
		"simulation engine: "+strings.Join(pp.EngineNames(), " | "))
	flag.Parse()
	eng, err := pp.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comparison:", err)
		os.Exit(1)
	}
	engine = eng
	sizes := []int{256, 1024, 4096}
	if *quick {
		sizes = []int{64, 128, 256}
		repetitions = 3
	}
	nMax := sizes[len(sizes)-1]

	cols := []string{"protocol", fmt.Sprintf("states (n=%d)", nMax)}
	for _, n := range sizes {
		cols = append(cols, fmt.Sprintf("t̄(%d)", n))
	}
	tbl := table.New(cols...)

	fmt.Printf("mean parallel stabilization time over %d runs per cell\n\n", repetitions)
	for _, entry := range registry.Entries() {
		if entry.Target != 1 {
			// The epidemic coverage workload is not an election; Table 1
			// compares electors only.
			continue
		}
		cells := []string{
			fmt.Sprintf("%s (%s states, %s time)", entry.Key, entry.States, entry.Time),
			fmt.Sprintf("%d", entry.StateCount(nMax, 0)),
		}
		for _, n := range sizes {
			cells = append(cells, fmt.Sprintf("%.1f", meanTime(entry.Key, n)))
		}
		tbl.AddRow(cells...)
	}
	fmt.Print(tbl.Markdown())
	fmt.Println("\nNote how the two-state protocol pays Θ(n) while PLL stays near a·lg n,")
	fmt.Println("and how MaxID matches PLL's speed only by spending Θ(n²) states.")
}

func meanTime(protocol string, n int) float64 {
	results, err := registry.Measure(registry.Spec{Protocol: protocol, N: n, Engine: engine, Seed: 7},
		repetitions, 0, 0)
	if err != nil {
		panic(err)
	}
	times := make([]float64, len(results))
	for i, r := range results {
		if !r.Stabilized {
			panic(fmt.Sprintf("%s did not stabilize at n=%d", protocol, n))
		}
		times[i] = r.ParallelTime
	}
	return stats.Mean(times)
}
