package popproto

import (
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every example program at smoke-test
// scale and asserts a clean exit plus the output markers that certify the
// example actually did its job. The examples are the repository's living
// documentation; this is what keeps them compiling and truthful.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and run full programs; skipped in -short mode")
	}
	cases := []struct {
		name    string
		args    []string
		markers []string
	}{
		{
			name:    "quickstart",
			args:    []string{"-n", "400"},
			markers: []string{"one leader after", "Theorem 1"},
		},
		{
			name:    "comparison",
			args:    []string{"-quick"},
			markers: []string{"pll", "angluin", "maxid"},
		},
		{
			name:    "symmetric",
			args:    []string{"-n", "600"},
			markers: []string{"single leader after", "exactly fair"},
		},
		{
			name:    "adversarial",
			args:    []string{"-n", "150"},
			markers: []string{"attack 1", "attack 3", "could not corrupt"},
		},
		{
			name:    "epidemic",
			args:    []string{"-quick"},
			markers: []string{"epidemic in", "Lemma 2"},
		},
	}
	bindir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Build the example into a binary and run that directly: a
			// context deadline then kills the example process itself (with
			// `go run` it would only kill the wrapper, leaving the child
			// holding the output pipe).
			bin := filepath.Join(bindir, tc.name)
			if out, err := exec.Command("go", "build", "-o", bin,
				"./examples/"+tc.name).CombinedOutput(); err != nil {
				t.Fatalf("building example %s: %v\n%s", tc.name, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, bin, tc.args...)
			cmd.WaitDelay = 10 * time.Second
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out:\n%s", tc.name, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.name, err, out)
			}
			for _, marker := range tc.markers {
				if !strings.Contains(string(out), marker) {
					t.Errorf("example %s output missing %q:\n%s", tc.name, marker, out)
				}
			}
		})
	}
}
