// Package popproto's root benchmark suite regenerates the workload behind
// every experiment in DESIGN.md §4, one testing.B target per table/figure
// artifact. Benchmarks report custom metrics (parallel time, survivor
// counts, states) alongside wall-clock cost so that `go test -bench=.
// -benchmem` reproduces the paper's quantities end to end. cmd/experiments
// produces the full statistical reports; these targets are the
// repeatable, profile-friendly unit of each experiment.
package popproto

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/ensemble"
	"popproto/internal/epidemic"
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/rng"
	"popproto/internal/sweep"
	"popproto/internal/trace"
)

// electionBench runs one full election per iteration on the selected
// engine and reports the mean parallel stabilization time.
func electionBench[S comparable](b *testing.B, engine pp.Engine, proto pp.Protocol[S], n int, budget uint64) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		sim := pp.NewRunner[S](engine, proto, n, uint64(i)+1)
		if _, ok := sim.RunUntilLeaders(1, budget); !ok {
			b.Fatalf("iteration %d did not stabilize", i)
		}
		total += sim.ParallelTime()
	}
	b.ReportMetric(total/float64(b.N), "parallel-time/op")
}

// liveHeapMiB measures the live heap after a forced GC, the memory figure
// that separates the engines at large n. keepAlive pins the simulator so
// its census is still live when the heap is measured. Callers stop the
// benchmark timer around the call (the forced GC must not count toward
// ns/op) and report the maximum over iterations after the loop.
func liveHeapMiB(keepAlive any) float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(keepAlive)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func logBudget(n int) uint64 {
	return uint64(4000) * uint64(n) * uint64(core.CeilLog2(n)+1)
}

func linearBudget(n int) uint64 {
	return 100*uint64(n)*uint64(n) + 100_000
}

// --- Table 1: states vs stabilization time, one bench per protocol row ---

func BenchmarkTable1_PLL(b *testing.B) {
	electionBench[core.State](b, pp.EngineAgent, core.NewForN(1024), 1024, logBudget(1024))
}

func BenchmarkTable1_PLLSymmetric(b *testing.B) {
	electionBench[core.SymState](b, pp.EngineAgent, core.NewSymmetricForN(1024), 1024, 40*logBudget(1024))
}

func BenchmarkTable1_Angluin(b *testing.B) {
	electionBench[baseline.AngluinState](b, pp.EngineAgent, baseline.Angluin{}, 1024, linearBudget(1024))
}

func BenchmarkTable1_Lottery(b *testing.B) {
	electionBench[baseline.LotteryState](b, pp.EngineAgent, baseline.NewLottery(1024), 1024, linearBudget(1024))
}

func BenchmarkTable1_MaxID(b *testing.B) {
	electionBench[baseline.MaxIDState](b, pp.EngineAgent, baseline.NewMaxID(1024), 1024, linearBudget(1024))
}

// --- Table 2: lower-bound consistency (constant-state pays linear time) ---

func BenchmarkTable2_LowerBounds(b *testing.B) {
	b.Run("angluin-n512", func(b *testing.B) {
		electionBench[baseline.AngluinState](b, pp.EngineAgent, baseline.Angluin{}, 512, linearBudget(512))
	})
	b.Run("pll-n512", func(b *testing.B) {
		electionBench[core.State](b, pp.EngineAgent, core.NewForN(512), 512, logBudget(512))
	})
}

// --- Table 3 / Lemma 3: state usage of an instrumented run ---

func BenchmarkTable3_StateSpace(b *testing.B) {
	const n = 1024
	p := core.NewForN(n)
	var distinct float64
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		sim.TrackStates()
		sim.RunUntilLeaders(1, logBudget(n))
		distinct += float64(sim.DistinctStates())
	}
	b.ReportMetric(distinct/float64(b.N), "distinct-states/op")
	b.ReportMetric(float64(p.Params().StateSpaceSize()), "table3-bound")
}

// --- Theorem 1: the headline sweep ---

func BenchmarkTheorem1_PLLStabilization(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(benchName(n), func(b *testing.B) {
			electionBench[core.State](b, pp.EngineAgent, core.NewForN(n), n, logBudget(n))
		})
	}
}

// --- Lemma 2: one-way epidemics ---

func BenchmarkLemma2_Epidemic(b *testing.B) {
	r := rng.New(1)
	b.Run("jump-n65536", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			run := epidemic.SimulateJump(1<<16, 1<<16, r)
			total += run.CompletionParallelTime()
		}
		b.ReportMetric(total/float64(b.N), "parallel-time/op")
	})
	b.Run("pairs-n4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			epidemic.SimulatePairs(1<<12, 1<<12, r)
		}
	})
}

// --- Lemma 4: status assignment ---

func BenchmarkLemma4_Status(b *testing.B) {
	const n = 1024
	p := core.NewForN(n)
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		for {
			sim.RunSteps(n)
			counts := pp.CensusBy(sim, func(s core.State) core.Status { return s.Status })
			if counts[core.StatusX] == 0 {
				break
			}
		}
	}
}

// --- Lemma 6: synchronization clock ---

func BenchmarkLemma6_Synchronization(b *testing.B) {
	const n = 1024
	p := core.NewForN(n)
	var total float64
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		for {
			sim.RunSteps(n / 2)
			sawColor2 := false
			sim.ForEach(func(_ int, s core.State) {
				if s.Color == 2 {
					sawColor2 = true
				}
			})
			if sawColor2 {
				break
			}
		}
		total += sim.ParallelTime()
	}
	b.ReportMetric(total/float64(b.N), "parallel-time-to-color2/op")
}

// --- Lemma 7: QuickElimination survivors at ⌊21 n ln n⌋ ---

func BenchmarkLemma7_QuickElimination(b *testing.B) {
	const n = 1024
	p := core.NewForN(n)
	horizon := uint64(math.Floor(21 * float64(n) * math.Log(float64(n))))
	var survivors float64
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		sim.RunSteps(horizon)
		survivors += float64(sim.Leaders())
	}
	b.ReportMetric(survivors/float64(b.N), "survivors/op")
}

// --- Lemma 8: election before epoch 4 ---

func BenchmarkLemma8_Tournament(b *testing.B) {
	const n = 1024
	p := core.NewForN(n)
	unique := 0
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		for {
			sim.RunSteps(n / 2)
			inFourth := false
			sim.ForEach(func(_ int, s core.State) {
				if s.Epoch == 4 {
					inFourth = true
				}
			})
			if inFourth {
				break
			}
		}
		if sim.Leaders() == 1 {
			unique++
		}
	}
	b.ReportMetric(float64(unique)/float64(b.N), "unique-before-epoch4")
}

// --- Lemma 9: epoch progress ---

func BenchmarkLemma9_EpochProgress(b *testing.B) {
	const n = 1024
	p := core.NewForN(n)
	var total float64
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		for {
			sim.RunSteps(n)
			all := true
			sim.ForEach(func(_ int, s core.State) {
				if s.Epoch != 4 {
					all = false
				}
			})
			if all {
				break
			}
		}
		total += sim.ParallelTime()
	}
	b.ReportMetric(total/float64(b.N), "parallel-time-to-epoch4/op")
}

// --- Lemmas 10–12: BackUp from a Bstart configuration ---

func BenchmarkBackup_Election(b *testing.B) {
	const n = 4096
	p := core.NewForN(n)
	var total float64
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		r := rng.New(uint64(i) ^ 0xb5)
		for id := 0; id < n; id++ {
			var s core.State
			if id < n/2 {
				s = core.State{
					Status: core.StatusA, Epoch: 4, Init: 4,
					Leader: id < n/8,
					LevelB: uint16(r.Intn(2)),
				}
			} else {
				s = core.State{
					Status: core.StatusB, Epoch: 4, Init: 4,
					Count: uint16(r.Intn(p.Params().CMax)),
				}
			}
			sim.SetState(id, s)
		}
		if _, ok := sim.RunUntilLeaders(1, 100*logBudget(n)); !ok {
			b.Fatal("Bstart election did not finish")
		}
		total += sim.ParallelTime()
	}
	b.ReportMetric(total/float64(b.N), "parallel-time/op")
}

// --- §3.2.3 / §4: coin-flip fairness workload ---

func BenchmarkCoins_Fairness(b *testing.B) {
	const n = 512
	p := core.NewForN(n)
	steps := 6 * n * core.CeilLog2(n)
	heads, flips := 0, 0
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		r := rng.New(uint64(i) ^ 0xc0111)
		for s := 0; s < steps; s++ {
			x, y := r.Pair(n)
			sx, sy := sim.State(x), sim.State(y)
			isFlip := func(l, f core.State) bool {
				return l.Leader && l.Status == core.StatusA && !l.Done && l.Epoch == 1 &&
					f.Epoch == 1 && (f.Status == core.StatusX || !f.Leader)
			}
			if isFlip(sx, sy) {
				heads++
				flips++
			} else if isFlip(sy, sx) {
				flips++
			}
			sim.Interact(x, y)
		}
	}
	if flips > 0 {
		b.ReportMetric(float64(heads)/float64(flips), "heads-fraction")
	}
}

// --- Section 4: symmetric parity ---

func BenchmarkSymmetric_Parity(b *testing.B) {
	b.Run("asymmetric-n1024", func(b *testing.B) {
		electionBench[core.State](b, pp.EngineAgent, core.NewForN(1024), 1024, logBudget(1024))
	})
	b.Run("symmetric-n1024", func(b *testing.B) {
		electionBench[core.SymState](b, pp.EngineAgent, core.NewSymmetricForN(1024), 1024, 40*logBudget(1024))
	})
}

// --- Trajectory figure: one fully traced election ---

func BenchmarkTrajectory_Figure(b *testing.B) {
	const n = 2048
	p := core.NewForN(n)
	for i := 0; i < b.N; i++ {
		sim := pp.NewSimulator[core.State](p, n, uint64(i)+1)
		rec := trace.NewRecorder(sim, 1.0, trace.LeaderProbe[core.State]())
		rec.RunUntil(float64(40*core.CeilLog2(n)), func(s pp.Runner[core.State]) bool {
			return s.Leaders() == 1
		})
	}
}

// --- Ablation: the Φ = 0 configuration (Tournament disabled) ---

func BenchmarkAblation_PhiSweep(b *testing.B) {
	const n = 1024
	for _, phi := range []int{0, 3} {
		p := core.New(core.NewParams(n).WithPhi(phi))
		b.Run(fmt.Sprintf("phi=%d", phi), func(b *testing.B) {
			electionBench[core.State](b, pp.EngineAgent, p, n, 100*logBudget(n))
		})
	}
}

// --- Microbenchmarks: the cost of one interaction ---

func BenchmarkMicro_PLLTransition(b *testing.B) {
	p := core.NewForN(1024)
	x := p.InitialState()
	y := x
	for i := 0; i < b.N; i++ {
		x, y = p.Transition(x, y)
	}
	_, _ = x, y
}

func BenchmarkMicro_PLLStep(b *testing.B) {
	sim := pp.NewSimulator[core.State](core.NewForN(4096), 4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

func BenchmarkMicro_PLLCountStep(b *testing.B) {
	sim := pp.NewCountSimulator[core.State](core.NewForN(4096), 4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkMicro_PLLBatchRun measures the batch engine's amortized
// per-interaction cost in round mode (Step() alone cannot: a single step
// is below the round threshold).
func BenchmarkMicro_PLLBatchRun(b *testing.B) {
	const n = 1 << 20
	sim := pp.NewBatchSimulator[core.State](core.NewForN(n), n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunSteps(1024)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(sim.Steps()), "ns/interaction")
}

func BenchmarkMicro_SymmetricStep(b *testing.B) {
	sim := pp.NewSimulator[core.SymState](core.NewSymmetricForN(4096), 4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// --- BenchmarkPLL: the headline engine race -------------------------------

// BenchmarkPLL runs one full PLL election at n = 10⁷ per iteration on the
// census, batch and hybrid engines — the workload behind the Table 1/2
// sweeps — reporting parallel time and wall-clock per simulated interaction
// alongside ns/op. Election lengths are random and heavy-tailed (a run
// that falls through to BackUp spends an order of magnitude longer in the
// count-up plateau), and the engines draw independent realizations even
// from the same seed, so ns/op compares two different elections;
// ns/interaction is the realization-independent comparison, and
// BenchmarkPLLWindow below fixes the simulated work exactly. Run with
// -benchtime=1x for one election per engine.
func BenchmarkPLL(b *testing.B) {
	const n = 10_000_000
	for _, engine := range []pp.Engine{pp.EngineCount, pp.EngineBatch, pp.EngineHybrid} {
		b.Run(fmt.Sprintf("n=%d/engine=%s", n, engine), func(b *testing.B) {
			proto := core.NewForN(n)
			var totalPT, totalInts float64
			for i := 0; i < b.N; i++ {
				sim := pp.NewRunner[core.State](engine, proto, n, uint64(i)+1)
				if _, ok := sim.RunUntilLeaders(1, logBudget(n)); !ok {
					b.Fatalf("iteration %d did not stabilize", i)
				}
				totalPT += sim.ParallelTime()
				totalInts += float64(sim.Steps())
			}
			b.ReportMetric(totalPT/float64(b.N), "parallel-time/op")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/totalInts, "ns/interaction")
		})
	}
}

// BenchmarkPLLSeeds pins named realizations of the full n=10⁷ PLL election
// on the hybrid engine, so BENCH_*.json tracks unlucky-realization wall
// time rather than only the mean. Seed 1 deterministically draws the
// BackUp-heavy ~430-pt realization — measured at 44% reactive ordered
// pairs throughout its plateau, so its wall time is bound by applying
// ~4.3×10⁹ census changes (round mode at ~21 ns each), not by skippable
// no-op stretches. Seed 2 draws a typical direct election for contrast.
func BenchmarkPLLSeeds(b *testing.B) {
	const n = 10_000_000
	for _, seed := range []uint64{1, 2} {
		b.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(b *testing.B) {
			proto := core.NewForN(n)
			var totalPT, totalInts float64
			for i := 0; i < b.N; i++ {
				sim := pp.NewHybridSimulator[core.State](proto, n, seed)
				if _, ok := sim.RunUntilLeaders(1, logBudget(n)); !ok {
					b.Fatalf("seed %d did not stabilize", seed)
				}
				totalPT += sim.ParallelTime()
				totalInts += float64(sim.Steps())
			}
			b.ReportMetric(totalPT/float64(b.N), "parallel-time/op")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/totalInts, "ns/interaction")
		})
	}
}

// BenchmarkPLLWindow races the engines over identical simulated work: the
// first 40 units of parallel time of a PLL run at n = 10⁷ (4×10⁸
// interactions), the reaction-dense O(log n) window — epidemics, coin
// flips, count-up — that the batch engine's collision-free rounds exist
// for. Unlike full elections, the work here is fixed, so ns/op ratios are
// directly comparable across engines.
func BenchmarkPLLWindow(b *testing.B) {
	const n = 10_000_000
	const window = 40 * n
	for _, engine := range []pp.Engine{pp.EngineCount, pp.EngineBatch, pp.EngineHybrid} {
		b.Run(fmt.Sprintf("n=%d/engine=%s", n, engine), func(b *testing.B) {
			proto := core.NewForN(n)
			for i := 0; i < b.N; i++ {
				sim := pp.NewRunner[core.State](engine, proto, n, uint64(i)+1)
				sim.RunSteps(window)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*window), "ns/interaction")
		})
	}
}

// --- Engine comparison: per-agent vs census on identical workloads ---

// BenchmarkEngines_PLL races every engine on the Table 1 PLL workload
// across population sizes up to 10⁶, where the per-agent engine's Θ(n)
// state vector stops fitting in cache while the census stays resident.
func BenchmarkEngines_PLL(b *testing.B) {
	for _, n := range []int{1024, 65536, 1_000_000} {
		for _, engine := range pp.Engines() {
			b.Run(fmt.Sprintf("n=%d/engine=%s", n, engine), func(b *testing.B) {
				electionBench[core.State](b, engine, core.NewForN(n), n, logBudget(n))
			})
		}
	}
}

// BenchmarkEngines_Angluin shows the census engine's batched no-op
// skipping: the duel endgame is no-op dominated (two surviving leaders
// among n agents meet once every ~n²/2 interactions), so the census engine
// does Θ(n) work where the per-agent engine does Θ(n²).
func BenchmarkEngines_Angluin(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		for _, engine := range pp.Engines() {
			b.Run(fmt.Sprintf("n=%d/engine=%s", n, engine), func(b *testing.B) {
				electionBench[baseline.AngluinState](b, engine, baseline.Angluin{}, n, linearBudget(n))
			})
		}
	}
}

// --- Large-n workloads: infeasible on the per-agent engine ---

// xlGuard skips the 10⁸-agent cases unless explicitly requested: a full
// PLL election at n = 10⁸ is ~6×10⁹ census events (minutes of wall clock),
// though only tens of MiB of memory — the per-agent engine would need
// ≳1.6 GiB for the state vector alone before counting GC headroom.
func xlGuard(b *testing.B, n int) {
	b.Helper()
	if n > 10_000_000 && os.Getenv("POPPROTO_BENCH_XL") == "" {
		b.Skip("set POPPROTO_BENCH_XL=1 to run the 10⁸-agent case")
	}
}

func BenchmarkLargeN_PLL_CountEngine(b *testing.B) {
	for _, n := range []int{10_000_000, 100_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xlGuard(b, n)
			proto := core.NewForN(n)
			var total, maxHeap, maxLive float64
			for i := 0; i < b.N; i++ {
				sim := pp.NewCountSimulator[core.State](proto, n, uint64(i)+1)
				if _, ok := sim.RunUntilLeaders(1, logBudget(n)); !ok {
					b.Fatalf("iteration %d did not stabilize", i)
				}
				total += sim.ParallelTime()
				b.StopTimer()
				maxHeap = max(maxHeap, liveHeapMiB(sim))
				maxLive = max(maxLive, float64(sim.LiveStates()))
				b.StartTimer()
			}
			b.ReportMetric(maxHeap, "max-heap-MiB")
			b.ReportMetric(maxLive, "live-states")
			b.ReportMetric(total/float64(b.N), "parallel-time/op")
		})
	}
}

func BenchmarkLargeN_PLL_BatchEngine(b *testing.B) {
	for _, n := range []int{10_000_000, 100_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xlGuard(b, n)
			proto := core.NewForN(n)
			var total, maxHeap, maxLive float64
			for i := 0; i < b.N; i++ {
				sim := pp.NewBatchSimulator[core.State](proto, n, uint64(i)+1)
				if _, ok := sim.RunUntilLeaders(1, logBudget(n)); !ok {
					b.Fatalf("iteration %d did not stabilize", i)
				}
				total += sim.ParallelTime()
				b.StopTimer()
				maxHeap = max(maxHeap, liveHeapMiB(sim))
				maxLive = max(maxLive, float64(sim.LiveStates()))
				b.StartTimer()
			}
			b.ReportMetric(maxHeap, "max-heap-MiB")
			b.ReportMetric(maxLive, "live-states")
			b.ReportMetric(total/float64(b.N), "parallel-time/op")
		})
	}
}

// BenchmarkTable1_PLL_XL is the first Table 1 row at n = 10⁸: a full PLL
// election at the hundred-million-agent scale, practical only on the batch
// engine (set POPPROTO_BENCH_XL=1 to run).
func BenchmarkTable1_PLL_XL(b *testing.B) {
	const n = 100_000_000
	xlGuard(b, n)
	electionBench[core.State](b, pp.EngineBatch, core.NewForN(n), n, logBudget(n))
}

// BenchmarkLargeN_PLL_XXL is the first n=10⁹ PLL row: a full election at
// the billion-agent scale on the hybrid engine (set POPPROTO_BENCH_XL=1 to
// run). The census representation keeps the run inside a few hundred MiB —
// the per-agent engine's state vector alone would need ≳16 GiB — and the
// reaction-dense phases run in collision-free rounds whose aggregate cells
// amortize to a few ns per interaction.
func BenchmarkLargeN_PLL_XXL(b *testing.B) {
	const n = 1_000_000_000
	xlGuard(b, n)
	proto := core.NewForN(n)
	var total, maxHeap, maxLive float64
	for i := 0; i < b.N; i++ {
		sim := pp.NewHybridSimulator[core.State](proto, n, uint64(i)+1)
		if _, ok := sim.RunUntilLeaders(1, logBudget(n)); !ok {
			b.Fatalf("iteration %d did not stabilize", i)
		}
		total += sim.ParallelTime()
		b.StopTimer()
		maxHeap = max(maxHeap, liveHeapMiB(sim))
		maxLive = max(maxLive, float64(sim.LiveStates()))
		b.StartTimer()
	}
	b.ReportMetric(maxHeap, "max-heap-MiB")
	b.ReportMetric(maxLive, "live-states")
	b.ReportMetric(total/float64(b.N), "parallel-time/op")
}

func BenchmarkLargeN_Angluin_CountEngine(b *testing.B) {
	// The simulated interaction count here is Θ(n²) ≈ 10¹⁴–10¹⁶ — far past
	// anything executable one step at a time; batching makes it Θ(n) events.
	for _, n := range []int{10_000_000, 100_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xlGuard(b, n)
			var total, maxHeap float64
			for i := 0; i < b.N; i++ {
				sim := pp.NewCountSimulator[baseline.AngluinState](baseline.Angluin{}, n, uint64(i)+1)
				if _, ok := sim.RunUntilLeaders(1, linearBudget(n)); !ok {
					b.Fatalf("iteration %d did not stabilize", i)
				}
				total += sim.ParallelTime()
				b.StopTimer()
				maxHeap = max(maxHeap, liveHeapMiB(sim))
				b.StartTimer()
			}
			b.ReportMetric(maxHeap, "max-heap-MiB")
			b.ReportMetric(total/float64(b.N), "parallel-time/op")
		})
	}
}

func benchName(n int) string {
	switch n {
	case 1024:
		return "n=1024"
	case 4096:
		return "n=4096"
	case 16384:
		return "n=16384"
	default:
		return "n"
	}
}

// BenchmarkSweep_PLL_ScalingRow is the sweep-orchestration acceptance
// benchmark: the Theorem 1 scaling check as one sweep — PLL across
// n ∈ {10³, 10⁴, 10⁵} on the auto engine, 10 replicates per cell —
// reporting the fitted a·lg n + b slope, its R², and the log-log
// exponent as metrics. Comparing its wall clock against the three
// underlying ensembles run standalone bounds the sweep layer's
// orchestration overhead (expand, per-cell canonicalization, summary).
func BenchmarkSweep_PLL_ScalingRow(b *testing.B) {
	spec := sweep.Spec{
		Protocols:  []string{"pll"},
		Ns:         []int{1_000, 10_000, 100_000},
		Engine:     pp.EngineAuto,
		Seed:       42,
		Replicates: 10,
	}
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(context.Background(), spec, sweep.Options{Workers: runtime.NumCPU()})
		if err != nil {
			b.Fatal(err)
		}
		fit, ok := res.Summary.Fit("pll", 0)
		if !ok {
			b.Fatal("sweep produced no scaling fit")
		}
		for _, o := range res.Outcomes {
			if o.Aggregates.Stabilized != o.Aggregates.Replicates {
				b.Fatalf("cell n=%d: %d/%d stabilized", o.N, o.Aggregates.Stabilized, o.Aggregates.Replicates)
			}
		}
		b.ReportMetric(fit.A, "log-slope/op")
		b.ReportMetric(fit.R2, "fit-r2/op")
		b.ReportMetric(fit.Exponent, "loglog-exponent/op")
	}
}

// BenchmarkEnsemble_Table1Row is the ensemble-executor acceptance
// benchmark: the PLL Table 1 row at n=10^5 with 50 replicates, run once
// serially and once over all cores. The workers=max case is what the
// harness's Table 1 and popprotod's /v1/experiments execute; comparing
// the two sub-benchmarks' wall clock shows the multi-core speedup
// (expect ≳ 3× at 8 cores — replication is embarrassingly parallel, the
// remainder is the aggregator and allocator).
func BenchmarkEnsemble_Table1Row(b *testing.B) {
	const n, replicates = 100_000, 50
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ensemble.Run(context.Background(), ensemble.Spec{
					Registry:   registry.Spec{Protocol: "pll", N: n, Engine: pp.EngineCount, Seed: 42},
					Replicates: replicates,
				}, ensemble.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				agg := res.Aggregates
				if agg.Stabilized != replicates {
					b.Fatalf("%d/%d replicates stabilized", agg.Stabilized, replicates)
				}
				b.ReportMetric(agg.MeanParallelTime, "parallel-time/op")
				b.ReportMetric((agg.CIHi-agg.CILo)/2, "ci95-half/op")
			}
		})
	}
}

// BenchmarkCluster_MergeOverhead isolates the coordinator's merge path:
// decoding one binary partial aggregate per canonical range and
// left-folding them into the final ensemble aggregates, for a
// 4096-replicate ensemble (256 ranges of 16). This is the entire
// per-range cost a distributed run adds on top of the simulation
// itself; it should be microseconds against replicate runtimes of
// milliseconds and up.
func BenchmarkCluster_MergeOverhead(b *testing.B) {
	const replicates = 4096
	ranges := ensemble.PlanRanges(replicates)
	payloads := make([][]byte, len(ranges))
	for i, rg := range ranges {
		p := ensemble.NewPartial(rg.Lo, rg.Hi)
		for r := rg.Lo; r < rg.Hi; r++ {
			t := 10 + 3*math.Sin(float64(r))
			p.Add(ensemble.Replicate{
				Rep:          r,
				Steps:        uint64(t * 1000),
				ParallelTime: t,
				Stabilized:   true,
			})
		}
		buf, err := p.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = buf
	}
	b.ReportMetric(float64(len(ranges)), "ranges")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var folded *ensemble.Partial
		for _, buf := range payloads {
			p := new(ensemble.Partial)
			if err := p.UnmarshalBinary(buf); err != nil {
				b.Fatal(err)
			}
			if folded == nil {
				folded = p
			} else if err := folded.Merge(p); err != nil {
				b.Fatal(err)
			}
		}
		if agg := folded.Aggregates(replicates, false); agg.Replicates != replicates {
			b.Fatalf("fold produced %d replicates, want %d", agg.Replicates, replicates)
		}
	}
}
