// Package cliflags defines, once, the command-line flags shared by the
// simulation front-ends (cmd/leaderelect, cmd/experiments, cmd/sweep):
// engine selection with the catalog-derived usage text, protocol keys,
// ensemble replicate counts, CI early-stop targets, and worker counts.
// Registering them here keeps spellings, defaults documentation and
// validation identical across the commands — and means a new engine or
// the "auto" pseudo-engine appears in every command's help the moment
// it exists.
package cliflags

import (
	"flag"
	"fmt"
	"strings"

	"popproto/internal/pp"
)

// Engine registers -engine. def is the command's default spelling;
// purpose completes "…: " in the usage line. The choice list is derived
// from pp.EngineChoices — the concrete engines plus "auto", which
// resolves to the registry's recommendation per protocol and population
// size — so help text cannot drift as engines are added.
func Engine(fs *flag.FlagSet, def, purpose string) *string {
	return fs.String("engine", def,
		purpose+": "+strings.Join(pp.EngineChoices(), " | ")+
			" (census-based engines scale to large n; auto picks the registry's recommendation per protocol and n)")
}

// Protocol registers -protocol with the shared registry-key usage.
func Protocol(fs *flag.FlagSet, def string) *string {
	return fs.String("protocol", def, "protocol registry key (see -list-protocols)")
}

// Replicates registers -replicates. purpose is the command-specific
// meaning of the count (the semantics differ: an ensemble size for
// leaderelect and sweep, a per-cell override for experiments).
func Replicates(fs *flag.FlagSet, def int, purpose string) *int {
	return fs.Int("replicates", def, purpose)
}

// CI registers -ci with the shared early-stop contract: a relative 95%
// CI half-width target on the mean stabilization time, 0 disabling
// early stopping.
func CI(fs *flag.FlagSet) *float64 {
	return fs.Float64("ci", 0,
		"ensemble early-stop target: relative 95% CI half-width of the mean time (0 = run every replicate)")
}

// CheckCI enforces the shared [0, 1) contract on a parsed -ci value.
func CheckCI(ci float64) error {
	if ci < 0 || ci >= 1 {
		return fmt.Errorf("-ci %g outside [0, 1) (it is a relative CI half-width)", ci)
	}
	return nil
}

// Workers registers -workers with the shared default doc.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "simulation workers (0 = NumCPU)")
}

// Seed registers -seed.
func Seed(fs *flag.FlagSet, def uint64, purpose string) *uint64 {
	return fs.Uint64("seed", def, purpose)
}
