// Package obs is popprotod's dependency-free metrics subsystem: typed
// instruments (counters, gauges, histograms, each with an optional label
// dimension) collected by a Registry that renders the Prometheus text
// exposition format (version 0.0.4) over HTTP.
//
// The package deliberately reimplements the small subset of a metrics
// client the service needs rather than importing one: instruments are
// lock-free on the hot path (atomics; a histogram observation is one
// binary search plus three atomic adds), creation is explicit and
// panics on programmer errors (bad names, duplicate registration,
// wrong label arity), and the exposition is deterministic — series
// sorted by name then label values — so tests can assert exact output.
//
// Instruments exist independently of any registry; Register attaches
// them to one for exposition. Every instrument method is safe for
// concurrent use, and safe on a nil receiver (a no-op), so optional
// instrumentation can be threaded through a subsystem as possibly-nil
// fields without guarding every call site.
package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// labelSep joins label values into a child key; \xff cannot appear in
// valid UTF-8 label text at this position without being intentional, and
// collisions only merge series, never corrupt them.
const labelSep = "\xff"

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_][a-zA-Z0-9_]* (the Prometheus data model, minus the colon
// reserved for recording rules).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// mustName panics on an invalid metric/label name — instrument creation
// happens at startup, so a bad name is a programmer error, not a runtime
// condition.
func mustName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric or label name %q", name))
	}
}

// desc is the name/help/labels triple shared by every instrument.
type desc struct {
	name   string
	help   string
	labels []string
}

func newDesc(name, help string, labels ...string) desc {
	mustName(name)
	for _, l := range labels {
		mustName(l)
	}
	return desc{name: name, help: help, labels: labels}
}

// Collector is one registrable metric family. The concrete instruments
// (Counter, Gauge, Histogram and their Vec forms, GaugeFunc) implement
// it; the interface is exported so callers can hold heterogeneous
// instrument lists, but its methods are internal to the package.
type Collector interface {
	metricName() string
	metricType() string
	write(b *bytes.Buffer)
	helpText() string
}

// --- formatting ----------------------------------------------------------

// formatFloat renders a sample value the way the text format expects:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline (quotes are legal
// there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeSeries renders one sample line: name{labels...} value.
func writeSeries(b *bytes.Buffer, name string, labels, values []string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// --- Counter -------------------------------------------------------------

// Counter is a monotonically increasing event count. The zero value is
// unusable; create with NewCounter. All methods are nil-safe no-ops.
type Counter struct {
	d      desc
	values []string // label values when part of a CounterVec
	v      atomic.Uint64
}

// NewCounter returns a standalone (label-free) counter.
func NewCounter(name, help string) *Counter {
	return &Counter{d: newDesc(name, help)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.d.name }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) helpText() string   { return c.d.help }
func (c *Counter) write(b *bytes.Buffer) {
	writeSeries(b, c.d.name, c.d.labels, c.values, float64(c.v.Load()))
}

// CounterVec is a counter family partitioned by label values. Children
// are created on first access and live for the process lifetime.
type CounterVec struct {
	d        desc
	mu       sync.RWMutex
	children map[string]*Counter
}

// NewCounterVec returns a counter family with the given label dimension.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label (use NewCounter)")
	}
	return &CounterVec{d: newDesc(name, help, labels...), children: make(map[string]*Counter)}
}

// With returns the child counter for the given label values, creating it
// (at zero) on first access — which also makes the series visible on
// /metrics, so pre-seeding children at startup guarantees a series
// exists before its first event.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.d.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.d.name, len(v.d.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c = &Counter{d: v.d, values: append([]string(nil), values...)}
	v.children[key] = c
	return c
}

// Each calls f for every child in sorted label order — how health
// endpoints sum a family without a second set of ad-hoc counters.
func (v *CounterVec) Each(f func(values []string, count uint64)) {
	if v == nil {
		return
	}
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*Counter, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	for _, c := range children {
		f(c.values, c.v.Load())
	}
}

func (v *CounterVec) metricName() string { return v.d.name }
func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) helpText() string   { return v.d.help }
func (v *CounterVec) write(b *bytes.Buffer) {
	v.Each(func(values []string, count uint64) {
		writeSeries(b, v.d.name, v.d.labels, values, float64(count))
	})
}

// --- Gauge ---------------------------------------------------------------

// Gauge is a value that can go up and down. The zero value is unusable;
// create with NewGauge. All methods are nil-safe no-ops.
type Gauge struct {
	d      desc
	values []string
	bits   atomic.Uint64 // float64 bits
}

// NewGauge returns a standalone (label-free) gauge.
func NewGauge(name, help string) *Gauge {
	return &Gauge{d: newDesc(name, help)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; contention on gauges is negligible here).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metricName() string { return g.d.name }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) helpText() string   { return g.d.help }
func (g *Gauge) write(b *bytes.Buffer) {
	writeSeries(b, g.d.name, g.d.labels, g.values, g.Value())
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	d        desc
	mu       sync.RWMutex
	children map[string]*Gauge
}

// NewGaugeVec returns a gauge family with the given label dimension.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label (use NewGauge)")
	}
	return &GaugeVec{d: newDesc(name, help, labels...), children: make(map[string]*Gauge)}
}

// With returns the child gauge for the given label values, creating it on
// first access.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.d.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.d.name, len(v.d.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	g, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[key]; ok {
		return g
	}
	g = &Gauge{d: v.d, values: append([]string(nil), values...)}
	v.children[key] = g
	return g
}

func (v *GaugeVec) metricName() string { return v.d.name }
func (v *GaugeVec) metricType() string { return "gauge" }
func (v *GaugeVec) helpText() string   { return v.d.help }
func (v *GaugeVec) write(b *bytes.Buffer) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*Gauge, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	for _, g := range children {
		writeSeries(b, v.d.name, v.d.labels, g.values, g.Value())
	}
}

// GaugeFunc is a gauge whose value is computed at scrape time — uptime,
// queue depths already tracked elsewhere, anything derivable on demand.
type GaugeFunc struct {
	d  desc
	fn func() float64
}

// NewGaugeFunc returns a gauge that reports fn() at every scrape. fn must
// be safe for concurrent use.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return &GaugeFunc{d: newDesc(name, help), fn: fn}
}

func (g *GaugeFunc) metricName() string { return g.d.name }
func (g *GaugeFunc) metricType() string { return "gauge" }
func (g *GaugeFunc) helpText() string   { return g.d.help }
func (g *GaugeFunc) write(b *bytes.Buffer) {
	writeSeries(b, g.d.name, nil, nil, g.fn())
}

// --- Histogram -----------------------------------------------------------

// Histogram is a distribution of observations over fixed bucket
// boundaries, rendered with cumulative bucket counts, a sum and a count
// (the Prometheus histogram contract, from which p50/p99 are derived at
// query time). Observation is lock-free: one binary search plus three
// atomic adds. The zero value is unusable; create with NewHistogram. All
// methods are nil-safe no-ops.
type Histogram struct {
	d      desc
	values []string
	upper  []float64 // sorted ascending; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a standalone histogram over the given bucket upper
// bounds (sorted ascending; a +Inf bucket is implicit). ExpBuckets builds
// exponential boundaries.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return newHistogram(newDesc(name, help), nil, buckets)
}

func newHistogram(d desc, values []string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s bucket bounds not strictly ascending", d.name))
		}
	}
	return &Histogram{
		d:      d,
		values: values,
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound contains v (le semantics).
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) metricName() string { return h.d.name }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) helpText() string   { return h.d.help }
func (h *Histogram) write(b *bytes.Buffer) {
	labels := append(append([]string(nil), h.d.labels...), "le")
	var cum uint64
	for i, bound := range h.upper {
		cum += h.counts[i].Load()
		values := append(append([]string(nil), h.values...), formatFloat(bound))
		writeSeries(b, h.d.name+"_bucket", labels, values, float64(cum))
	}
	values := append(append([]string(nil), h.values...), "+Inf")
	writeSeries(b, h.d.name+"_bucket", labels, values, float64(h.count.Load()))
	writeSeries(b, h.d.name+"_sum", h.d.labels, h.values, h.Sum())
	writeSeries(b, h.d.name+"_count", h.d.labels, h.values, float64(h.count.Load()))
}

// HistogramVec is a histogram family partitioned by label values, all
// children sharing one bucket layout.
type HistogramVec struct {
	d        desc
	buckets  []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

// NewHistogramVec returns a histogram family with the given label
// dimension and shared bucket bounds.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label (use NewHistogram)")
	}
	// Validate the layout once, eagerly, via a throwaway child.
	newHistogram(newDesc(name, help, labels...), nil, buckets)
	return &HistogramVec{
		d:        newDesc(name, help, labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*Histogram),
	}
}

// With returns the child histogram for the given label values, creating
// it on first access.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.d.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.d.name, len(v.d.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[key]; ok {
		return h
	}
	h = newHistogram(v.d, append([]string(nil), values...), v.buckets)
	v.children[key] = h
	return h
}

func (v *HistogramVec) metricName() string { return v.d.name }
func (v *HistogramVec) metricType() string { return "histogram" }
func (v *HistogramVec) helpText() string   { return v.d.help }
func (v *HistogramVec) write(b *bytes.Buffer) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	for _, h := range children {
		h.write(b)
	}
}

// ExpBuckets returns n exponential bucket upper bounds starting at start
// and multiplying by factor: the layout for latency histograms, whose
// interesting range spans orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// --- Registry ------------------------------------------------------------

// Registry collects instruments for exposition. The zero value is not
// usable; create with NewRegistry.
type Registry struct {
	mu    sync.Mutex
	cs    []Collector
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// MustRegister attaches instruments for exposition, panicking on a
// duplicate metric name — registration happens at startup, so a
// collision is a programmer error.
func (r *Registry) MustRegister(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		name := c.metricName()
		if r.names[name] {
			panic(fmt.Sprintf("obs: metric %q registered twice", name))
		}
		r.names[name] = true
		r.cs = append(r.cs, c)
	}
}

// WritePrometheus renders every registered family in text exposition
// format, sorted by metric name (ties keep registration order, which
// cannot happen for distinct instruments since names are unique).
func (r *Registry) WritePrometheus(b *bytes.Buffer) {
	r.mu.Lock()
	cs := append([]Collector(nil), r.cs...)
	r.mu.Unlock()
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].metricName() < cs[j].metricName() })
	for _, c := range cs {
		b.WriteString("# HELP ")
		b.WriteString(c.metricName())
		b.WriteByte(' ')
		b.WriteString(escapeHelp(c.helpText()))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(c.metricName())
		b.WriteByte(' ')
		b.WriteString(c.metricType())
		b.WriteByte('\n')
		c.write(b)
	}
}

// Handler returns an http.Handler serving the registry in text
// exposition format — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b bytes.Buffer
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b.Bytes())
	})
}

// Default is the package-level registry, for processes that want one
// shared exposition without threading a *Registry through construction.
// popprotod builds its own instead, so tests can run many managers in
// one process without name collisions.
var Default = NewRegistry()
