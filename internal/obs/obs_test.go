package obs

import (
	"bytes"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b bytes.Buffer
	r.WritePrometheus(&b)
	return b.String()
}

func TestCounterText(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("events_total", "Total events.")
	r.MustRegister(c)
	c.Inc()
	c.Add(41)
	want := "# HELP events_total Total events.\n# TYPE events_total counter\nevents_total 42\n"
	if got := render(r); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
}

func TestCounterVecTextAndEach(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec("requests_total", "Requests.", "route", "code")
	r.MustRegister(v)
	v.With("/v1/jobs", "2xx").Add(3)
	v.With("/v1/jobs", "4xx").Inc()
	v.With("/metrics", "2xx").Add(7)
	want := `# HELP requests_total Requests.
# TYPE requests_total counter
requests_total{route="/metrics",code="2xx"} 7
requests_total{route="/v1/jobs",code="2xx"} 3
requests_total{route="/v1/jobs",code="4xx"} 1
`
	if got := render(r); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
	var total uint64
	v.Each(func(_ []string, n uint64) { total += n })
	if total != 11 {
		t.Fatalf("Each sum = %d, want 11", total)
	}
}

func TestGaugeText(t *testing.T) {
	r := NewRegistry()
	g := NewGauge("in_flight", "In-flight requests.")
	r.MustRegister(g)
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	want := "# HELP in_flight In-flight requests.\n# TYPE in_flight gauge\nin_flight 3\n"
	if got := render(r); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestGaugeFuncText(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewGaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 12.5 }))
	want := "# HELP uptime_seconds Uptime.\n# TYPE uptime_seconds gauge\nuptime_seconds 12.5\n"
	if got := render(r); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramTextAndBoundaries(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	r.MustRegister(h)
	// Boundary semantics: le is inclusive.
	h.Observe(0.1)  // first bucket exactly
	h.Observe(0.05) // first bucket
	h.Observe(0.5)  // second bucket
	h.Observe(10)   // third bucket exactly
	h.Observe(99)   // +Inf only
	want := `# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="10"} 4
latency_seconds_bucket{le="+Inf"} 5
latency_seconds_sum 109.65
latency_seconds_count 5
`
	if got := render(r); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-109.65) > 1e-9 {
		t.Fatalf("Sum = %g, want 109.65", h.Sum())
	}
}

func TestHistogramVecText(t *testing.T) {
	r := NewRegistry()
	v := NewHistogramVec("dur_seconds", "Duration.", []float64{1}, "kind")
	r.MustRegister(v)
	v.With("jobs").Observe(0.5)
	v.With("jobs").Observe(2)
	want := `# HELP dur_seconds Duration.
# TYPE dur_seconds histogram
dur_seconds_bucket{kind="jobs",le="1"} 1
dur_seconds_bucket{kind="jobs",le="+Inf"} 2
dur_seconds_sum{kind="jobs"} 2.5
dur_seconds_count{kind="jobs"} 2
`
	if got := render(r); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec("weird_total", "Weird.", "v")
	r.MustRegister(v)
	v.With("a\\b\"c\nd").Inc()
	want := "# HELP weird_total Weird.\n# TYPE weird_total counter\n" +
		`weird_total{v="a\\b\"c\nd"} 1` + "\n"
	if got := render(r); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewCounter("x_total", "line1\nline2 \\ done"))
	got := render(r)
	if !strings.Contains(got, `# HELP x_total line1\nline2 \\ done`) {
		t.Fatalf("help not escaped:\n%s", got)
	}
}

func TestRegistrySortedByName(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewCounter("zzz_total", "z"))
	r.MustRegister(NewCounter("aaa_total", "a"))
	got := render(r)
	if strings.Index(got, "aaa_total") > strings.Index(got, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", got)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewCounter("dup_total", ""))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r.MustRegister(NewGauge("dup_total", ""))
}

func TestInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "9abc", "a-b", "a b", "a:b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for name %q", bad)
				}
			}()
			NewCounter(bad, "")
		}()
	}
}

func TestLabelArityPanics(t *testing.T) {
	v := NewCounterVec("arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label arity")
		}
	}()
	v.With("only-one")
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	c.Inc()
	c.Add(5)
	_ = c.Value()
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	_ = g.Value()
	h.Observe(1)
	_ = h.Count()
	_ = h.Sum()
	cv.With("x").Inc()
	cv.Each(func([]string, uint64) {})
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("conc_total", "")
	cv := NewCounterVec("conc_vec_total", "", "w")
	g := NewGauge("conc_gauge", "")
	h := NewHistogram("conc_hist", "", ExpBuckets(1, 2, 8))
	hv := NewHistogramVec("conc_hist_vec", "", []float64{1, 10}, "w")
	r.MustRegister(c, cv, g, h, hv)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(lbl).Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				hv.With(lbl).Observe(float64(i % 20))
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b bytes.Buffer
			r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	var vecTotal uint64
	cv.Each(func(_ []string, n uint64) { vecTotal += n })
	if vecTotal != workers*iters {
		t.Fatalf("vec total = %d, want %d", vecTotal, workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*iters)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("scraped_total", "Scrapes.")
	r.MustRegister(c)
	c.Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "scraped_total 3\n") {
		t.Fatalf("body missing series:\n%s", body)
	}
}
