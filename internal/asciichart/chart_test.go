package asciichart

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	out := Plot([]Series{
		{Name: "linear", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Name: "flat", X: []float64{1, 2, 3, 4}, Y: []float64{2, 2, 2, 2}},
	}, Options{Width: 40, Height: 10, XLabel: "n", YLabel: "time"})

	if !strings.Contains(out, "time") || !strings.Contains(out, "(n)") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "* linear") || !strings.Contains(out, "o flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	// Plot area must honor the requested height: height rows + axis +
	// x labels + legend + y label.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+1+1+2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestPlotLogX(t *testing.T) {
	out := Plot([]Series{
		{Name: "sweep", X: []float64{256, 1024, 4096}, Y: []float64{8, 10, 12}},
	}, Options{LogX: true})
	if !strings.Contains(out, "256") || !strings.Contains(out, "4096") {
		t.Fatalf("log-x endpoints missing:\n%s", out)
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	// A single point must not divide by zero.
	out := Plot([]Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, Options{})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestPlotPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no series": func() { Plot(nil, Options{}) },
		"mismatch": func() {
			Plot([]Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}, Options{})
		},
		"empty series": func() {
			Plot([]Series{{Name: "empty"}}, Options{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
