// Package asciichart renders small multi-series line charts as text, used
// by the experiment harness to regenerate the paper's "figures" (time
// versus n curves, survivor distributions, epidemic tails) in terminals
// and Markdown code blocks.
package asciichart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Options controls chart geometry and axes.
type Options struct {
	// Width and Height are the plot area in characters; defaults 64×16.
	Width, Height int
	// XLabel and YLabel caption the axes.
	XLabel, YLabel string
	// LogX plots x on a log₂ scale (the natural axis for n sweeps).
	LogX bool
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Plot renders the series onto one chart. Series with mismatched X/Y
// lengths or no points panic; at least one series is required.
func Plot(series []Series, opt Options) string {
	if len(series) == 0 {
		panic("asciichart: no series")
	}
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if opt.LogX {
			return math.Log2(x)
		}
		return x
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			panic(fmt.Sprintf("asciichart: series %q has %d x and %d y points",
				s.Name, len(s.X), len(s.Y)))
		}
		for i := range s.X {
			xmin = math.Min(xmin, tx(s.X[i]))
			xmax = math.Max(xmax, tx(s.X[i]))
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			cx := int(math.Round((tx(s.X[i]) - xmin) / (xmax - xmin) * float64(opt.Width-1)))
			cy := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(opt.Height-1)))
			row := opt.Height - 1 - cy
			grid[row][cx] = mark
		}
	}

	var b strings.Builder
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opt.YLabel)
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	labelWidth := max(len(yTop), len(yBot))
	for r, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yTop)
		case opt.Height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", opt.Width))
	xAxis := fmt.Sprintf("%.4g%s%.4g", unTx(xmin, opt.LogX),
		strings.Repeat(" ", max(1, opt.Width-12)), unTx(xmax, opt.LogX))
	fmt.Fprintf(&b, "%s  %s", strings.Repeat(" ", labelWidth), xAxis)
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", opt.XLabel)
	}
	b.WriteString("\n")
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func unTx(v float64, logX bool) float64 {
	if logX {
		return math.Pow(2, v)
	}
	return v
}
