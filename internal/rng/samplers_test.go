package rng_test

import (
	"math"
	"testing"

	"popproto/internal/rng"
	"popproto/internal/stats"
)

// The sampler distribution tests draw from a fixed seed and compare the
// empirical histogram against the exact pmf with the repository's χ²
// machinery. Under the null hypothesis (which holds by construction if the
// samplers are correct) p-values are uniform; the fixed seeds below give
// comfortable margins over the 0.001 rejection level, so the tests are
// deterministic.
const gofLevel = 0.001

// lchoose returns log C(n, k).
func lchoose(n, k float64) float64 {
	ln, _ := math.Lgamma(n + 1)
	lk, _ := math.Lgamma(k + 1)
	lnk, _ := math.Lgamma(n - k + 1)
	return ln - lk - lnk
}

func binomialPMF(n uint64, p float64, k uint64) float64 {
	nf, kf := float64(n), float64(k)
	return math.Exp(lchoose(nf, kf) + kf*math.Log(p) + (nf-kf)*math.Log1p(-p))
}

func hypergeometricPMF(sample, good, total, k uint64) float64 {
	if k > good || k > sample || sample-k > total-good {
		return 0
	}
	return math.Exp(lchoose(float64(good), float64(k)) +
		lchoose(float64(total-good), float64(sample-k)) -
		lchoose(float64(total), float64(sample)))
}

// gofAgainstPMF draws reps samples and χ²-tests them against pmf over the
// support [0, supportMax], pooling cells with expected count < 5 into their
// neighbors from both ends so the χ² approximation is valid.
func gofAgainstPMF(t *testing.T, name string, reps int, supportMax uint64,
	pmf func(uint64) float64, draw func() uint64) {
	t.Helper()
	counts := make([]float64, supportMax+1)
	for i := 0; i < reps; i++ {
		x := draw()
		if x > supportMax {
			t.Fatalf("%s: sample %d outside support [0, %d]", name, x, supportMax)
		}
		counts[x]++
	}
	expected := make([]float64, supportMax+1)
	for k := range expected {
		expected[k] = pmf(uint64(k)) * float64(reps)
	}
	obs, exp := poolSparseCells(counts, expected)
	if len(obs) < 2 {
		t.Fatalf("%s: support too concentrated to test (%d pooled cells)", name, len(obs))
	}
	gof := stats.ChiSquareGOF(obs, exp)
	if gof.P < gofLevel {
		t.Fatalf("%s: sample does not match the exact pmf: %v", name, gof)
	}
}

// poolSparseCells merges leading and trailing cells until every pooled cell
// has expected count >= 5, then pools any remaining sparse interior cell
// with its successor.
func poolSparseCells(obs, exp []float64) (po, pe []float64) {
	var co, ce float64
	for i := range obs {
		co += obs[i]
		ce += exp[i]
		if ce >= 5 {
			po = append(po, co)
			pe = append(pe, ce)
			co, ce = 0, 0
		}
	}
	if ce > 0 && len(po) > 0 {
		// Fold the sparse tail into the last pooled cell.
		po[len(po)-1] += co
		pe[len(pe)-1] += ce
	}
	return po, pe
}

func TestBinomialMatchesPMF(t *testing.T) {
	cases := []struct {
		name string
		n    uint64
		p    float64
		seed uint64
	}{
		{"inversion-small", 12, 0.3, 1},
		{"inversion-small-mean", 10000, 0.001, 2},
		{"btpe-central", 2000, 0.37, 3},
		{"btpe-half", 300, 0.5, 4},
		{"reflected-skew", 40, 0.93, 5},
		{"btpe-reflected", 5000, 0.99, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(tc.seed)
			gofAgainstPMF(t, tc.name, 200_000, tc.n,
				func(k uint64) float64 { return binomialPMF(tc.n, tc.p, k) },
				func() uint64 { return r.Binomial(tc.n, tc.p) })
		})
	}
}

func TestBinomialEdges(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 100; i++ {
		if v := r.Binomial(50, 0); v != 0 {
			t.Fatalf("Binomial(50, 0) = %d", v)
		}
		if v := r.Binomial(50, 1); v != 50 {
			t.Fatalf("Binomial(50, 1) = %d", v)
		}
		if v := r.Binomial(0, 0.5); v != 0 {
			t.Fatalf("Binomial(0, 0.5) = %d", v)
		}
		if v := r.Binomial(1000, 0.999999); v > 1000 {
			t.Fatalf("Binomial out of range: %d", v)
		}
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Binomial(10, %v) did not panic", p)
				}
			}()
			r.Binomial(10, p)
		}()
	}
}

func TestHypergeometricMatchesPMF(t *testing.T) {
	cases := []struct {
		name                string
		sample, good, total uint64
		seed                uint64
	}{
		{"urn-few-good", 200, 9, 500, 1},
		{"urn-few-draws", 9, 200, 500, 2},
		{"urn-few-bad", 100, 490, 500, 3},
		{"urn-large-sample", 497, 50, 500, 4},
		{"hrua-central", 500, 4000, 10000, 5},
		{"hrua-skewed", 120, 60, 400, 6},
		{"hrua-half", 5000, 5000, 10000, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(tc.seed)
			sup := tc.sample
			if tc.good < sup {
				sup = tc.good
			}
			gofAgainstPMF(t, tc.name, 200_000, sup,
				func(k uint64) float64 { return hypergeometricPMF(tc.sample, tc.good, tc.total, k) },
				func() uint64 { return r.Hypergeometric(tc.sample, tc.good, tc.total) })
		})
	}
}

func TestHypergeometricEdges(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 100; i++ {
		if v := r.Hypergeometric(0, 10, 20); v != 0 {
			t.Fatalf("sample=0 gave %d", v)
		}
		if v := r.Hypergeometric(5, 0, 20); v != 0 {
			t.Fatalf("good=0 gave %d", v)
		}
		if v := r.Hypergeometric(5, 20, 20); v != 5 {
			t.Fatalf("good=total gave %d", v)
		}
		if v := r.Hypergeometric(20, 7, 20); v != 7 {
			t.Fatalf("sample=total gave %d", v)
		}
		// Support bounds in a mixed case: x <= min(sample, good) and
		// sample-x <= bad.
		v := r.Hypergeometric(15, 8, 20)
		if v > 8 || 15-v > 12 {
			t.Fatalf("Hypergeometric(15, 8, 20) = %d outside support", v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("good > total did not panic")
			}
		}()
		r.Hypergeometric(5, 30, 20)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("sample > total did not panic")
			}
		}()
		r.Hypergeometric(30, 5, 20)
	}()
}

// TestMultinomialJoint checks the full joint distribution on a small case
// by χ² over all compositions of n into 3 categories.
func TestMultinomialJoint(t *testing.T) {
	const (
		n    = 5
		reps = 300_000
	)
	weights := []float64{0.2, 0.5, 0.3}
	r := rng.New(21)
	obs := make(map[[3]uint64]float64)
	var dst []uint64
	for i := 0; i < reps; i++ {
		dst = r.Multinomial(n, weights, dst)
		if dst[0]+dst[1]+dst[2] != n {
			t.Fatalf("Multinomial counts sum to %d, want %d", dst[0]+dst[1]+dst[2], n)
		}
		obs[[3]uint64{dst[0], dst[1], dst[2]}]++
	}
	var o, e []float64
	lnFact := func(k uint64) float64 { v, _ := math.Lgamma(float64(k + 1)); return v }
	for a := uint64(0); a <= n; a++ {
		for b := uint64(0); a+b <= n; b++ {
			c := n - a - b
			logp := lnFact(n) - lnFact(a) - lnFact(b) - lnFact(c) +
				float64(a)*math.Log(weights[0]) + float64(b)*math.Log(weights[1]) +
				float64(c)*math.Log(weights[2])
			o = append(o, obs[[3]uint64{a, b, c}])
			e = append(e, reps*math.Exp(logp))
		}
	}
	po, pe := poolSparseCells(o, e)
	gof := stats.ChiSquareGOF(po, pe)
	if gof.P < gofLevel {
		t.Fatalf("multinomial joint distribution mismatch: %v", gof)
	}
}

// TestMultinomialMarginal checks a large-n marginal (which must be
// binomial) and zero-weight handling.
func TestMultinomialMarginal(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	r := rng.New(22)
	var dst []uint64
	gofAgainstPMF(t, "marginal", 100_000, 400,
		func(k uint64) float64 { return binomialPMF(400, 0.3, k) },
		func() uint64 {
			dst = r.Multinomial(400, weights, dst)
			if dst[1] != 0 {
				t.Fatal("zero-weight category received trials")
			}
			if dst[0]+dst[2]+dst[3] != 400 {
				t.Fatal("multinomial counts do not sum to n")
			}
			return dst[2]
		})
}

// TestMultiHypergeometricJoint checks the joint law on a small case
// against the exact multivariate hypergeometric pmf.
func TestMultiHypergeometricJoint(t *testing.T) {
	const reps = 300_000
	counts := []int64{3, 0, 5, 4}
	const sample = 6
	r := rng.New(23)
	obs := make(map[[4]int64]float64)
	var dst []int64
	for i := 0; i < reps; i++ {
		dst = r.MultiHypergeometric(sample, counts, dst)
		var sum int64
		for j, d := range dst {
			if d < 0 || d > counts[j] {
				t.Fatalf("component %d = %d outside [0, %d]", j, d, counts[j])
			}
			sum += d
		}
		if sum != sample {
			t.Fatalf("sampled %d items, want %d", sum, sample)
		}
		obs[[4]int64{dst[0], dst[1], dst[2], dst[3]}]++
	}
	var o, e []float64
	denom := lchoose(12, sample)
	for a := int64(0); a <= 3; a++ {
		for c := int64(0); c <= 5; c++ {
			d := sample - a - c
			if d < 0 || d > 4 {
				continue
			}
			logp := lchoose(3, float64(a)) + lchoose(5, float64(c)) +
				lchoose(4, float64(d)) - denom
			o = append(o, obs[[4]int64{a, 0, c, d}])
			e = append(e, reps*math.Exp(logp))
		}
	}
	po, pe := poolSparseCells(o, e)
	gof := stats.ChiSquareGOF(po, pe)
	if gof.P < gofLevel {
		t.Fatalf("multivariate hypergeometric joint mismatch: %v", gof)
	}
}

// TestSamplersDeterministic: identical seeds must yield identical draw
// sequences for every sampler (the property the simulation engines'
// reproducibility contract rests on).
func TestSamplersDeterministic(t *testing.T) {
	a, b := rng.New(99), rng.New(99)
	var da, db []uint64
	for i := 0; i < 2000; i++ {
		da = append(da, a.Binomial(1000, 0.25), a.Hypergeometric(50, 300, 1000), a.Geometric(0.01))
		db = append(db, b.Binomial(1000, 0.25), b.Hypergeometric(50, 300, 1000), b.Geometric(0.01))
	}
	ma := a.Multinomial(100, []float64{1, 2, 3}, nil)
	mb := b.Multinomial(100, []float64{1, 2, 3}, nil)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("draw %d differs under identical seeds: %d vs %d", i, da[i], db[i])
		}
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("multinomial component %d differs under identical seeds", i)
		}
	}
}

// TestGeometricTinyP: the log1p formulation must neither panic nor return
// nonsense for p far below float precision of ln(1-p), where it saturates.
func TestGeometricTinyP(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		v := r.Geometric(1e-300)
		if v < 1<<40 {
			t.Fatalf("Geometric(1e-300) = %d: implausibly small for mean 1e300", v)
		}
	}
	// Small-but-representable p still has finite draws with the right law.
	sum := 0.0
	const reps = 200_000
	for i := 0; i < reps; i++ {
		sum += float64(r.Geometric(1e-6))
	}
	mean := sum / reps
	if mean < 0.9e6 || mean > 1.1e6 {
		t.Fatalf("Geometric(1e-6) mean %.0f, want ~1e6", mean)
	}
}

func TestGeometricMatchesPMF(t *testing.T) {
	const p = 0.3
	r := rng.New(31)
	gofAgainstPMF(t, "geometric", 200_000, 80,
		func(k uint64) float64 { return stats.GeometricPMF(p, int(k)) },
		func() uint64 {
			for {
				if v := r.Geometric(p); v <= 80 {
					return v
				}
				// P[v > 80] ≈ 4e-13: a draw past the tested support would
				// only ever mean a broken sampler; retry keeps the test
				// total exact without a tail bin.
			}
		})
}
