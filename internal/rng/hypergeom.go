package rng

import "math"

// hypUrnCutoff is the size below which Hypergeometric simulates the urn
// directly: if either min(good, bad) or min(sample, total−sample) is at
// most this, the exact sequential draw costs at most hypUrnCutoff bounded
// uniforms — cheaper than setting up a rejection sampler. The batch
// simulation engine leans on this path: its census tails produce a stream
// of draws with tiny good counts.
const hypUrnCutoff = 32

// Hypergeometric returns a sample from the hypergeometric distribution:
// the number of "good" items in a uniformly random sample of the given
// size, drawn without replacement from a population of total items of
// which good are good. It panics unless good <= total and sample <= total.
//
// Three exact paths back it: a sequential urn simulation over the good
// items when min(good, total−good) is small, one over the sample draws
// when min(sample, total−sample) is small, and the HRUA ratio-of-uniforms
// rejection sampler (Stadlober 1990) otherwise, so cost is O(min(all four
// margins)) for skewed parameters and O(1) for central ones.
func (r *Source) Hypergeometric(sample, good, total uint64) uint64 {
	if good > total || sample > total {
		panic("rng: Hypergeometric needs good <= total and sample <= total")
	}
	// Degenerate margins, then the singleton fast paths that dominate the
	// batch engine's census tails: one draw (or one good item) is a single
	// bounded-uniform comparison.
	switch {
	case sample == 0 || good == 0:
		return 0
	case good == total:
		return sample
	case sample == total:
		return good
	case sample == 1:
		if r.Uint64n(total) < good {
			return 1
		}
		return 0
	case good == 1:
		if r.Uint64n(total) < sample {
			return 1
		}
		return 0
	}

	// Symmetry reductions: count the rarer item kind in the smaller side
	// of the sample split, undoing the swaps on the way out.
	k, bad := good, total-good
	countedBad := bad < k
	if countedBad {
		k = bad // k = min(good, bad)
	}
	m := sample
	sampledComplement := total-sample < m
	if sampledComplement {
		m = total - sample // m = min(sample, total − sample)
	}

	var x uint64
	switch {
	case k <= hypUrnCutoff:
		// Reveal the k rare items one at a time: item i+1 is among the m
		// sample slots with probability (m − drawn) / (total − i).
		for i := uint64(0); i < k && x < m; i++ {
			if r.Uint64n(total-i) < m-x {
				x++
			}
		}
	case m <= hypUrnCutoff:
		// Reveal the m sample slots one at a time: slot i+1 holds a rare
		// item with probability (k − drawn) / (total − i).
		for i := uint64(0); i < m && x < k; i++ {
			if r.Uint64n(total-i) < k-x {
				x++
			}
		}
	default:
		x = r.hypergeometricHRUA(m, k, total)
	}

	// Undo the symmetry reductions: x counts the rarer kind in the smaller
	// split; flip back to good items in the requested sample.
	if countedBad {
		x = m - x
	}
	if sampledComplement {
		x = good - x
	}
	return x
}

// hypergeometricHRUA is Stadlober's ratio-of-uniforms rejection sampler
// ("The ratio of uniforms approach for generating discrete random
// variates", J. Comput. Appl. Math. 31, 1990) for the hypergeometric
// distribution, with the log-pmf evaluated through the tabulated
// lnFact (see lnfact.go), which keeps each probe to a few loads. Callers
// guarantee m = min(sample, total−sample) and k = min(good, bad), both
// above hypUrnCutoff.
func (r *Source) hypergeometricHRUA(m, k, total uint64) uint64 {
	const (
		d1 = 1.7155277699214135 // 2·sqrt(2/e)
		d2 = 0.8989161620588988 // 3 − 2·sqrt(3/e)
	)
	mf := float64(m)
	kf := float64(k)
	nf := float64(total)
	maxKind := nf - kf

	p := kf / nf
	q := 1 - p
	mu := mf * p // mean
	// Half-width scale: std deviation of the hypergeometric plus a guard.
	sigma := math.Sqrt((nf-mf)*mf*p*q/(nf-1) + 0.5)
	d6 := mu + 0.5
	d8 := d1*sigma + d2
	mode := math.Floor((mf + 1) * (kf + 1) / (nf + 2))
	d10 := lgammaSum(mode, kf-mode, mf-mode, maxKind-mf+mode)
	// Upper support bound (exclusive), padded 16 sigmas for the hat.
	d11 := math.Min(math.Min(mf, kf)+1, math.Floor(d6+16*sigma))

	for {
		x := r.Float64()
		y := r.Float64()
		if x == 0 {
			continue
		}
		w := d6 + d8*(y-0.5)/x
		if w < 0 || w >= d11 {
			continue
		}
		z := math.Floor(w)
		t := d10 - lgammaSum(z, kf-z, mf-z, maxKind-mf+z)
		// Squeeze acceptance and rejection bounds around log of the
		// ratio-of-uniforms acceptance test x² <= f(z)/f(mode).
		if x*(4-x)-3 <= t {
			return uint64(z)
		}
		if x*(x-t) >= 1 {
			continue
		}
		if 2*math.Log(x) <= t {
			return uint64(z)
		}
	}
}

// lgammaSum returns Σ ln(vᵢ!) over the four hypergeometric pmf factorial
// arguments, through the tabulated-plus-Stirling lnFact.
func lgammaSum(a, b, c, d float64) float64 {
	return lnFact(a) + lnFact(b) + lnFact(c) + lnFact(d)
}
