package rng

// Multinomial distributes n independent trials over len(weights) categories
// with probabilities proportional to weights, writing the per-category
// counts into dst (allocated when nil or too short) and returning it. It is
// sampled exactly by conditional binomials: category i receives
// Bin(remaining, wᵢ / Σ_{j>=i} wⱼ) of the remaining trials. It panics if
// weights is empty, contains a negative or non-finite value, or sums to 0.
func (r *Source) Multinomial(n uint64, weights []float64, dst []uint64) []uint64 {
	if len(weights) == 0 {
		panic("rng: Multinomial needs at least one category")
	}
	var total float64
	for _, w := range weights {
		if !(w >= 0) || w > 1e300 {
			panic("rng: Multinomial weights must be finite and non-negative")
		}
		total += w
	}
	if total == 0 {
		panic("rng: Multinomial weights sum to zero")
	}
	if cap(dst) < len(weights) {
		dst = make([]uint64, len(weights))
	}
	dst = dst[:len(weights)]
	lastNZ := 0
	for i, w := range weights {
		if w > 0 {
			lastNZ = i
		}
	}
	rem := n
	for i, w := range weights {
		switch {
		case rem == 0 || w == 0:
			dst[i] = 0
		case i == lastNZ || w >= total:
			// Last nonzero category (or all residual weight, when
			// subtraction round-off left total <= w): takes the rest.
			dst[i] = rem
			rem = 0
		default:
			x := r.Binomial(rem, w/total)
			dst[i] = x
			rem -= x
			total -= w
		}
	}
	return dst
}

// MultiHypergeometric draws a uniformly random sample of the given size
// without replacement from a population partitioned into categories with
// the given counts, writing how many sampled items fall in each category
// into dst (allocated when nil or too short) and returning it. It is
// sampled exactly by conditional hypergeometrics. It panics if any count is
// negative or sample exceeds the total population.
func (r *Source) MultiHypergeometric(sample uint64, counts []int64, dst []int64) []int64 {
	var total uint64
	for _, c := range counts {
		if c < 0 {
			panic("rng: MultiHypergeometric needs non-negative counts")
		}
		total += uint64(c)
	}
	if sample > total {
		panic("rng: MultiHypergeometric sample exceeds the population")
	}
	if cap(dst) < len(counts) {
		dst = make([]int64, len(counts))
	}
	dst = dst[:len(counts)]
	rem := sample
	for i, c := range counts {
		if rem == 0 {
			dst[i] = 0
			continue
		}
		x := r.Hypergeometric(rem, uint64(c), total)
		dst[i] = int64(x)
		rem -= x
		total -= uint64(c)
	}
	return dst
}
