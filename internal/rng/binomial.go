package rng

import "math"

// binvCutoff is the n·min(p,1−p) threshold below which Binomial uses the
// sequential-search inversion sampler (BINV). Above it the expected
// inversion loop length makes the constant-time BTPE rejection sampler the
// better choice. 30 is the classic crossover from Kachitvichyanukul &
// Schmeiser (1988).
const binvCutoff = 30.0

// Binomial returns a sample from the binomial distribution Bin(n, p): the
// number of successes in n independent trials of probability p. It panics
// unless 0 <= p <= 1.
//
// Two exact samplers back it, selected by the expected count: inversion
// (BINV) when n·min(p,1−p) < 30, and the BTPE tent-plus-tails rejection
// algorithm of Kachitvichyanukul & Schmeiser otherwise, so the cost is
// O(n·p) for small means and O(1) for large ones.
func (r *Source) Binomial(n uint64, p float64) uint64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("rng: Binomial needs 0 <= p <= 1")
	}
	switch {
	case p == 0 || n == 0:
		return 0
	case p == 1:
		return n
	case p > 0.5:
		// Both samplers assume p <= 1/2; count failures instead.
		return n - r.binomial(n, 1-p)
	default:
		return r.binomial(n, p)
	}
}

// binomial dispatches between the two samplers. Callers guarantee
// 0 < p <= 1/2 and n >= 1.
func (r *Source) binomial(n uint64, p float64) uint64 {
	if float64(n)*p < binvCutoff {
		return r.binomialInversion(n, p)
	}
	return r.binomialBTPE(n, p)
}

// binomialInversion is the BINV sequential-search sampler: walk the pmf
// from 0 upward, subtracting each probability from a uniform until it is
// exhausted. Expected cost O(n·p + 1).
func (r *Source) binomialInversion(n uint64, p float64) uint64 {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	// bound truncates the astronomically unlikely far tail so float
	// round-off in the pmf recurrence can never loop past the support.
	np := float64(n) * p
	bound := uint64(math.Min(float64(n), np+10*math.Sqrt(np*q+1)))
	for {
		f := math.Pow(q, float64(n)) // pmf at 0; > 0 because n·p < 30 bounds n·|log q|
		u := r.Float64()
		var x uint64
		for u > f {
			if x > bound {
				break // restart: accumulated round-off ate the tail
			}
			u -= f
			x++
			f *= a/float64(x) - s
		}
		if x <= bound {
			return x
		}
	}
}

// binomialBTPE is the BTPE rejection sampler (Kachitvichyanukul &
// Schmeiser, "Binomial random variate generation", CACM 31(2), 1988): a
// triangle + parallelogram + two exponential tails majorizing hat over the
// scaled pmf, with squeeze tests so most draws cost two uniforms and a few
// multiplications. Callers guarantee 0 < p <= 1/2 and n·p >= 30.
func (r *Source) binomialBTPE(n uint64, p float64) uint64 {
	// Step 0: set up the hat function's four regions.
	nf := float64(n)
	q := 1 - p
	npq := nf * p * q
	fm := nf*p + p
	m := math.Floor(fm) // mode
	p1 := math.Floor(2.195*math.Sqrt(npq)-4.6*q) + 0.5
	xm := m + 0.5
	xl := xm - p1
	xr := xm + p1
	c := 0.134 + 20.5/(15.3+m)
	al := (fm - xl) / (fm - xl*p)
	lamL := al * (1 + 0.5*al)
	ar := (xr - fm) / (xr * q)
	lamR := ar * (1 + 0.5*ar)
	p2 := p1 * (1 + 2*c)
	p3 := p2 + c/lamL
	p4 := p3 + c/lamR

	for {
		// Step 1: pick a region by u, a vertical position by v.
		u := r.Float64() * p4
		v := r.Float64()
		var y float64
		switch {
		case u <= p1:
			// Triangular central region: accept immediately.
			return uint64(xm - p1*v + u)
		case u <= p2:
			// Parallelogram: scale v to the hat height at x.
			x := xl + (u-p1)/c
			v = v*c + 1 - math.Abs(m-x+0.5)/p1
			if v > 1 {
				continue
			}
			y = math.Floor(x)
		case u <= p3:
			// Left exponential tail.
			y = math.Floor(xl + math.Log(v)/lamL)
			if y < 0 {
				continue
			}
			v *= (u - p2) * lamL
		default:
			// Right exponential tail.
			y = math.Floor(xr - math.Log(v)/lamR)
			if y > nf {
				continue
			}
			v *= (u - p3) * lamR
		}

		// Step 5: accept/reject y against the scaled pmf f(y)/f(m).
		k := math.Abs(y - m)
		if k <= 20 || k >= npq/2-1 {
			// Evaluate the ratio exactly by the recurrence.
			s := p / q
			a := s * (nf + 1)
			f := 1.0
			switch {
			case m < y:
				for i := m + 1; i <= y; i++ {
					f *= a/i - s
				}
			case m > y:
				for i := y + 1; i <= m; i++ {
					f /= a/i - s
				}
			}
			if v <= f {
				return uint64(y)
			}
			continue
		}
		// Squeeze: compare log v against a quadratic band around the
		// normal approximation before paying for the full Stirling bound.
		rho := (k / npq) * ((k*(k/3+0.625)+1.0/6)/npq + 0.5)
		t := -k * k / (2 * npq)
		alv := math.Log(v)
		if alv < t-rho {
			return uint64(y)
		}
		if alv > t+rho {
			continue
		}
		// Final comparison via Stirling-corrected log pmf ratio.
		x1 := y + 1
		f1 := m + 1
		z := nf + 1 - m
		w := nf - y + 1
		x2 := x1 * x1
		f2 := f1 * f1
		z2 := z * z
		w2 := w * w
		bound := xm*math.Log(f1/x1) +
			(nf-m+0.5)*math.Log(z/w) +
			(y-m)*math.Log(w*p/(x1*q)) +
			stirlingCorrection(f1, f2) +
			stirlingCorrection(z, z2) +
			stirlingCorrection(x1, x2) +
			stirlingCorrection(w, w2)
		if alv <= bound {
			return uint64(y)
		}
	}
}

// stirlingCorrection is the truncated Stirling-series correction term used
// by BTPE's exact acceptance bound: (13860 − (462 − (132 − (99 −
// 140/v²)/v²)/v²)/v²)/v/166320, evaluated with v² passed in.
func stirlingCorrection(v, v2 float64) float64 {
	return (13860 - (462-(132-(99-140/v2)/v2)/v2)/v2) / v / 166320
}
