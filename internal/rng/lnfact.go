package rng

import "math"

// lnFactTabLen bounds the precomputed ln-factorial table (128 KiB). The
// rejection samplers evaluate log-pmfs thousands of times per simulated
// round, and their small arguments (sample-sized: at most a few thousand)
// dominate; the table turns those math.Lgamma calls into array loads.
const lnFactTabLen = 1 << 14

var lnFactTab [lnFactTabLen]float64

func init() {
	for i := 1; i < lnFactTabLen; i++ {
		v, _ := math.Lgamma(float64(i) + 1)
		lnFactTab[i] = v
	}
}

// lnFact returns ln(x!) for integer-valued x >= 0: tabulated below
// lnFactTabLen, Stirling's series above it (absolute error < 1e-20 there,
// far below the table's own lgamma precision).
func lnFact(x float64) float64 {
	if x < lnFactTabLen {
		return lnFactTab[int(x)]
	}
	// ln Γ(x+1) by Stirling: (x+½)ln x − x + ½ln(2π) + 1/(12x) − 1/(360x³).
	const halfLn2Pi = 0.9189385332046727
	inv := 1 / x
	inv2 := inv * inv
	return (x+0.5)*math.Log(x) - x + halfLn2Pi + inv*(1.0/12-inv2*(1.0/360-inv2/1260))
}
