// Package rng provides a small, fast, deterministic random number generator
// for population-protocol simulation.
//
// The generator is xoshiro256++ seeded through SplitMix64, following the
// reference construction by Blackman and Vigna. It is allocation-free,
// unsynchronized (each goroutine owns its Source), and fully reproducible
// from a single uint64 seed, which the simulation harness threads through
// every experiment so that paper-reproduction runs are replayable.
//
// The package also provides Lemire's nearly-divisionless bounded sampling
// (Uint64n) and uniform sampling of ordered pairs of distinct agents (Pair),
// which is the primitive operation of the uniformly random scheduler Γ in
// the population protocol model.
package rng

import (
	"math"
	"math/bits"
)

// Source is a xoshiro256++ pseudo random number generator.
//
// The zero value is not a valid generator; use New. Source is not safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	s [4]uint64
}

// splitMix64 advances x through the SplitMix64 sequence and returns the next
// output. It is used only for seeding, per the xoshiro authors' guidance.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source deterministically seeded from seed. Distinct seeds
// yield independent-looking streams; the all-zero internal state cannot
// occur because SplitMix64 is a bijection over a full-period sequence.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the generator to the state derived from seed, as if it had
// been freshly created with New(seed).
func (r *Source) Reseed(seed uint64) {
	x := seed
	r.s[0] = splitMix64(&x)
	r.s[1] = splitMix64(&x)
	r.s[2] = splitMix64(&x)
	r.s[3] = splitMix64(&x)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	res := bits.RotateLeft64(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return res
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// method with rejection, which avoids the modulo bias of naive reduction.
// It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		// Rejection zone: resample while lo < threshold, where
		// threshold = (2^64 - n) mod n = -n mod n.
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Pair returns an ordered pair (initiator, responder) of distinct agent
// indices drawn uniformly from the n(n-1) possibilities, matching the
// uniformly random scheduler of the population protocol model.
// It panics if n < 2.
func (r *Source) Pair(n int) (initiator, responder int) {
	if n < 2 {
		panic("rng: Pair called with n < 2")
	}
	initiator = r.Intn(n)
	responder = r.Intn(n - 1)
	if responder >= initiator {
		responder++
	}
	return initiator, responder
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair random boolean.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Split derives a new, statistically independent Source from the stream of
// r. It is the supported way to hand per-worker generators to goroutines.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Clone returns an independent copy of the generator at its current
// position: both copies produce identical streams from here on.
func (r *Source) Clone() *Source {
	c := *r
	return &c
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials (support {0, 1, 2, ...}). It is the
// shared skip-length sampler of the batched no-op paths in the simulation
// engines and the epidemic jump simulator. Draws beyond the uint64 range
// (possible only for p below ~1e-18) saturate at math.MaxUint64.
// It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) uint64 {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Inverse-CDF sampling: floor(ln(U) / ln(1-p)) with U in (0, 1].
	// log1p keeps the denominator exact down to p ≈ 1e-300, where the
	// naive ln(1−p) would underflow to ln(1) = 0.
	u := 1.0 - r.Float64() // in (0, 1]
	t := math.Log(u) / math.Log1p(-p)
	if !(t < 1<<63) { // also catches +Inf
		return math.MaxUint64
	}
	return uint64(t)
}
