package rng

import "math"

// logFloat is a thin wrapper around math.Log, isolated so the Geometric
// sampler's only floating-point dependency is explicit and testable.
func logFloat(x float64) float64 {
	return math.Log(x)
}
