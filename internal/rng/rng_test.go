package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 64", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reseed(99) does not reproduce New(99) at draw %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

// TestUint64nFullSupport verifies every residue of a small modulus is hit,
// i.e. Lemire reduction does not drop values.
func TestUint64nFullSupport(t *testing.T) {
	r := New(11)
	const n = 17
	var seen [n]bool
	for i := 0; i < 10000; i++ {
		seen[r.Uint64n(n)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never produced by Uint64n(%d)", v, n)
		}
	}
}

// TestUint64nUniform performs a chi-square goodness-of-fit test against the
// uniform distribution on a small support. With 50k draws over 16 cells the
// 99.9% critical value for 15 degrees of freedom is 37.7; the fixed seed
// makes this deterministic.
func TestUint64nUniform(t *testing.T) {
	r := New(5)
	const cells = 16
	const draws = 50000
	var obs [cells]float64
	for i := 0; i < draws; i++ {
		obs[r.Uint64n(cells)]++
	}
	expected := float64(draws) / cells
	chi2 := 0.0
	for _, o := range obs {
		d := o - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-square = %.2f exceeds 99.9%% critical value 37.7", chi2)
	}
}

// TestMonobit checks the global one-bit frequency of the raw stream.
func TestMonobit(t *testing.T) {
	r := New(13)
	const words = 10000
	ones := 0
	for i := 0; i < words; i++ {
		v := r.Uint64()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	total := float64(words * 64)
	p := float64(ones) / total
	// Standard deviation of the fraction is 0.5/sqrt(total) ≈ 0.000625;
	// allow 5 sigma.
	if math.Abs(p-0.5) > 5*0.5/math.Sqrt(total) {
		t.Fatalf("bit frequency %.6f too far from 0.5", p)
	}
}

func TestPairProperties(t *testing.T) {
	r := New(17)
	for _, n := range []int{2, 3, 5, 100} {
		for i := 0; i < 5000; i++ {
			a, b := r.Pair(n)
			if a == b {
				t.Fatalf("Pair(%d) returned identical agents %d", n, a)
			}
			if a < 0 || a >= n || b < 0 || b >= n {
				t.Fatalf("Pair(%d) out of range: (%d, %d)", n, a, b)
			}
		}
	}
}

func TestPairPanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pair(1) did not panic")
		}
	}()
	New(1).Pair(1)
}

// TestPairUniform verifies all n(n-1) ordered pairs are equally likely via
// chi-square on a small population.
func TestPairUniform(t *testing.T) {
	r := New(23)
	const n = 5
	const draws = 60000
	counts := make(map[[2]int]float64, n*(n-1))
	for i := 0; i < draws; i++ {
		a, b := r.Pair(n)
		counts[[2]int{a, b}]++
	}
	if len(counts) != n*(n-1) {
		t.Fatalf("observed %d distinct pairs, want %d", len(counts), n*(n-1))
	}
	expected := float64(draws) / float64(n*(n-1))
	chi2 := 0.0
	for _, o := range counts {
		d := o - expected
		chi2 += d * d / expected
	}
	// 19 degrees of freedom, 99.9% critical value is 43.8.
	if chi2 > 43.8 {
		t.Fatalf("pair chi-square %.2f exceeds 43.8", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(29)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(31)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < draws*48/100 || trues > draws*52/100 {
		t.Fatalf("Bool returned true %d/%d times", trues, draws)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(37)
	child := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided %d times", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(43)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		const draws = 200000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / draws
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*(want+1) {
			t.Fatalf("Geometric(%v) mean %.4f, want %.4f", p, mean, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(47)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

// TestQuickUint64nInRange is a property test: for any nonzero bound, the
// sample is in range.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(53)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPairDistinct is a property test over population sizes.
func TestQuickPairDistinct(t *testing.T) {
	r := New(59)
	f := func(raw uint16) bool {
		n := int(raw%1000) + 2
		a, b := r.Pair(n)
		return a != b && a >= 0 && a < n && b >= 0 && b < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPair(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		a, c := r.Pair(1024)
		sink += a + c
	}
	_ = sink
}
