package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"popproto/internal/ensemble"
)

// Worker pulls replicate-range leases from a coordinator, executes them
// through ensemble.RunRange (so the partial is bit-identical to any
// other executor's), and posts back the binary partial aggregate. A
// background heartbeat keeps each lease alive; if the heartbeat is
// rejected — the coordinator expired and reissued the range — the
// worker abandons the range immediately. A worker that simply dies is
// handled by the same mechanism from the other side: its lease expires
// and the range is reissued, and because the range's value is
// deterministic a duplicate completion can never corrupt the merge.
type Worker struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// ID names this worker to the coordinator (default "host:pid").
	ID string
	// Workers bounds replicate parallelism within a leased range
	// (<= 0 selects min(NumCPU, 8)).
	Workers int
	// Poll is the idle re-poll interval when no work is available
	// (0 = 250ms).
	Poll time.Duration
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client
	// OnLease, when set, observes each granted lease before execution —
	// a test hook for fault injection.
	OnLease func(Lease)
	// Logf, when set, receives worker events.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// Run pulls and executes leases until ctx is canceled.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		host, _ := os.Hostname()
		w.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if w.Workers <= 0 {
		w.Workers = min(runtime.NumCPU(), 8)
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.requestLease(ctx)
		switch {
		case err != nil:
			w.logf("cluster worker %s: lease request: %v", w.ID, err)
			fallthrough
		case lease == nil:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
		default:
			w.execute(ctx, *lease)
		}
	}
}

func (w *Worker) requestLease(ctx context.Context) (*Lease, error) {
	body, err := json.Marshal(leaseRequest{Worker: w.ID})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.Coordinator+"/v1/cluster/leases", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var lr leaseResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			return nil, err
		}
		return lr.Lease, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("coordinator answered %s", resp.Status)
	}
}

// execute runs one leased range under a heartbeat and posts the result.
// Failures are not reported to the coordinator — an abandoned lease
// simply expires and the range is reissued.
func (w *Worker) execute(ctx context.Context, l Lease) {
	spec, err := l.Spec.Spec()
	if err != nil {
		w.logf("cluster worker %s: lease %s: %v", w.ID, l.ID, err)
		return
	}
	if w.OnLease != nil {
		w.OnLease(l)
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		interval := time.Duration(l.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-rctx.Done():
				return
			case <-t.C:
				if !w.heartbeat(rctx, l.ID) {
					// Lease gone — the range was reissued elsewhere;
					// stop burning cycles on it.
					w.logf("cluster worker %s: lease %s superseded, abandoning", w.ID, l.ID)
					cancel()
					return
				}
			}
		}
	}()

	p, err := ensemble.RunRange(rctx, spec, l.Range.Lo, l.Range.Hi, w.Workers)
	if err != nil {
		w.logf("cluster worker %s: lease %s range [%d,%d): %v",
			w.ID, l.ID, l.Range.Lo, l.Range.Hi, err)
		return
	}
	payload, err := p.MarshalBinary()
	if err != nil {
		w.logf("cluster worker %s: lease %s: marshal: %v", w.ID, l.ID, err)
		return
	}
	w.complete(ctx, l, payload)
}

func (w *Worker) heartbeat(ctx context.Context, leaseID string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/cluster/leases/%s/heartbeat", w.Coordinator, leaseID), nil)
	if err != nil {
		return false
	}
	resp, err := w.client().Do(req)
	if err != nil {
		// Transient coordinator unavailability is not a supersede signal;
		// keep computing and let the next beat (or lease expiry) decide.
		return true
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	return resp.StatusCode == http.StatusOK
}

// complete posts the partial, retrying a few times — the range cost
// real compute, and a transient coordinator hiccup should not force a
// full re-execution elsewhere.
func (w *Worker) complete(ctx context.Context, l Lease, payload []byte) {
	body, err := json.Marshal(completeRequest{Worker: w.ID, Partial: payload})
	if err != nil {
		w.logf("cluster worker %s: lease %s: %v", w.ID, l.ID, err)
		return
	}
	url := fmt.Sprintf("%s/v1/cluster/leases/%s/complete", w.Coordinator, l.ID)
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.client().Do(req)
		if err != nil {
			w.logf("cluster worker %s: lease %s: complete: %v", w.ID, l.ID, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		w.logf("cluster worker %s: lease %s: complete answered %s", w.ID, l.ID, resp.Status)
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusBadRequest {
			return // not retryable
		}
	}
}
