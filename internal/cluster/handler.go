package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Routes mounts the lease protocol on mux:
//
//	POST /v1/cluster/leases                → grant a lease (204 when idle)
//	POST /v1/cluster/leases/{id}/heartbeat → renew a lease (404 when gone)
//	POST /v1/cluster/leases/{id}/complete  → post a range's partial aggregate
//	GET  /v1/cluster                       → coordinator status
//
// The exact patterns register directly on the service mux so its
// instrumentation middleware labels cluster traffic per route like any
// other endpoint.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/leases", c.handleLease)
	mux.HandleFunc("POST /v1/cluster/leases/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/leases/{id}/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/cluster", c.handleStatus)
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	clusterJSON(w, status, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || strings.TrimSpace(req.Worker) == "" {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("lease request needs a worker id"))
		return
	}
	l, err := c.Lease(req.Worker)
	if err != nil {
		clusterError(w, http.StatusServiceUnavailable, err)
		return
	}
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	clusterJSON(w, http.StatusOK, leaseResponse{Lease: l})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !c.Heartbeat(id) {
		clusterError(w, http.StatusNotFound, fmt.Errorf("lease %q is gone or superseded", id))
		return
	}
	clusterJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req completeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		clusterError(w, http.StatusBadRequest, fmt.Errorf("bad completion body: %w", err))
		return
	}
	accepted, err := c.Complete(id, req.Worker, req.Partial)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnknownLease) {
			status = http.StatusNotFound
		}
		clusterError(w, status, err)
		return
	}
	clusterJSON(w, http.StatusOK, completeResponse{Accepted: accepted})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, c.CurrentStatus())
}
