package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"popproto/internal/ensemble"
)

// ErrUnknownLease is returned by Complete for a lease id the
// coordinator has no record of (never granted, or its run is gone).
var ErrUnknownLease = errors.New("cluster: unknown lease")

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a granted lease stays valid without a
	// heartbeat before its range is reclaimed and reissued (0 = 15s).
	// It is also the liveness window for workers: a worker counts as
	// live while its last contact is within one TTL.
	LeaseTTL time.Duration
	// Tick is the cadence at which a waiting run scans for expired
	// leases (0 = 250ms).
	Tick time.Duration
	// MaxRetries bounds how often one range may be reissued after lease
	// expiry before the run fails (0 = 8).
	MaxRetries int
	// Logf, when set, receives scheduling events (expiries, retries).
	Logf func(format string, args ...any)
}

// LocalRunner executes a contiguous block of canonical ranges in
// process, delivering each completed range's partial to onRange in
// range order; onRange returning true stops the block. The service
// plugs ensemble.RunRanges (with its worker pool) in here — the
// coordinator itself stays free of simulation concerns.
type LocalRunner func(ctx context.Context, spec ensemble.Spec, ranges []ensemble.Range, onRange func(*ensemble.Partial) (stop bool)) error

// Range states.
const (
	rangePending = iota // waiting for a lease or local claim
	rangeLeased         // granted (remote lease or local claim), result outstanding
	rangeDone           // partial received
	rangeSkipped        // cut off by early stopping
)

// rangeState is the coordinator's scheduling record for one canonical
// range of a run.
type rangeState struct {
	rng     ensemble.Range
	state   int
	local   bool   // claimed by the coordinator's own LocalRunner
	leaseID string // current remote lease, "" when none or local
	partial *ensemble.Partial
	retries int
}

// lease is the server side of one granted Lease. Leases are kept until
// their run unregisters — a completion arriving after expiry (or after
// the range was reissued) must still resolve deterministically.
type lease struct {
	id      string
	runID   string
	rng     ensemble.Range
	worker  string
	expires time.Time
}

// run is one ensemble being distributed.
type run struct {
	id       string
	spec     ensemble.Spec
	wire     WireSpec
	ranges   []*rangeState
	nextFold int               // fold frontier: first range not yet merged
	folded   *ensemble.Partial // left fold of ranges [0, nextFold)
	onUpdate func(ensemble.Aggregates)
	early    bool
	err      error
	finished bool
	done     chan struct{}

	retries       int
	localRanges   int
	remoteRanges  int
	remoteWorkers map[string]struct{}
}

// Coordinator schedules replicate-range leases across workers and
// merges their partial aggregates. One coordinator serves many
// concurrent runs; it owns no goroutines — expiry reaping happens on
// the code paths that observe time passing (lease requests, run ticks).
type Coordinator struct {
	opts    Options
	metrics *clusterMetrics

	mu          sync.Mutex
	closed      bool
	seq         int
	runs        map[string]*run
	runOrder    []string
	leases      map[string]*lease
	workersSeen map[string]time.Time
}

// NewCoordinator returns a coordinator with opts' zero values resolved.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.Tick <= 0 {
		opts.Tick = 250 * time.Millisecond
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 8
	}
	c := &Coordinator{
		opts:        opts,
		runs:        make(map[string]*run),
		leases:      make(map[string]*lease),
		workersSeen: make(map[string]time.Time),
	}
	c.metrics = newClusterMetrics(c)
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Close fails every active run and refuses further work.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, r := range c.runs {
		c.finishLocked(r, fmt.Errorf("cluster: coordinator closed"))
	}
}

// LiveWorkers returns the number of workers heard from within one lease
// TTL. Zero is the signal for a run to execute its ranges locally.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(time.Now())
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	live := 0
	for id, seen := range c.workersSeen {
		if now.Sub(seen) <= c.opts.LeaseTTL {
			live++
		} else {
			delete(c.workersSeen, id)
		}
	}
	return live
}

// Run distributes one canonical ensemble: ranges leased to remote
// workers when any are live, executed through local otherwise (the
// coordinator falls back to local execution whenever the worker pool
// drains, so a run always completes). onUpdate, when set, observes the
// folded aggregates after each merged range; it is called with the
// coordinator lock held and must not call back into the coordinator.
// On cancellation Run returns the folded prefix with ctx's error.
func (c *Coordinator) Run(ctx context.Context, spec ensemble.Spec, local LocalRunner, onUpdate func(ensemble.Aggregates)) (ensemble.Aggregates, Distribution, error) {
	spec, _, err := ensemble.Canonicalize(spec)
	if err != nil {
		return ensemble.Aggregates{}, Distribution{}, err
	}
	r, err := c.register(spec, onUpdate)
	if err != nil {
		return ensemble.Aggregates{}, Distribution{}, err
	}
	defer c.unregister(r.id)

	tick := time.NewTicker(c.opts.Tick)
	defer tick.Stop()
	for {
		if block := c.claimLocal(r); len(block) > 0 {
			err := local(ctx, spec, block, func(p *ensemble.Partial) bool {
				return c.completeLocal(r, p)
			})
			if err != nil {
				c.failLocal(r, block, err)
			}
			continue
		}
		select {
		case <-r.done:
			return c.finishResult(r)
		case <-ctx.Done():
			c.mu.Lock()
			c.finishLocked(r, ctx.Err())
			c.mu.Unlock()
			return c.finishResult(r)
		case now := <-tick.C:
			c.mu.Lock()
			c.reapLocked(now)
			c.mu.Unlock()
		}
	}
}

// register plans a run's canonical partition and enters it into the
// scheduling tables.
func (c *Coordinator) register(spec ensemble.Spec, onUpdate func(ensemble.Aggregates)) (*run, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("cluster: coordinator closed")
	}
	c.seq++
	r := &run{
		id:            fmt.Sprintf("r%d", c.seq),
		spec:          spec,
		wire:          wireFromSpec(spec),
		onUpdate:      onUpdate,
		done:          make(chan struct{}),
		remoteWorkers: make(map[string]struct{}),
	}
	for _, rg := range ensemble.PlanRanges(spec.Replicates) {
		r.ranges = append(r.ranges, &rangeState{rng: rg})
	}
	c.runs[r.id] = r
	c.runOrder = append(c.runOrder, r.id)
	return r, nil
}

func (c *Coordinator) unregister(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.runs, id)
	for i, rid := range c.runOrder {
		if rid == id {
			c.runOrder = append(c.runOrder[:i], c.runOrder[i+1:]...)
			break
		}
	}
	for lid, l := range c.leases {
		if l.runID == id {
			delete(c.leases, lid)
		}
	}
}

// claimLocal takes the longest contiguous block of pending ranges
// starting at the first pending one — but only while no workers are
// live: with a cluster attached the coordinator leaves ranges to it.
func (c *Coordinator) claimLocal(r *run) []ensemble.Range {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.finished || c.liveWorkersLocked(time.Now()) > 0 {
		return nil
	}
	var block []ensemble.Range
	for _, rs := range r.ranges {
		if rs.state == rangePending {
			rs.state = rangeLeased
			rs.local = true
			block = append(block, rs.rng)
		} else if len(block) > 0 {
			break
		}
	}
	return block
}

// completeLocal folds one locally executed range; the true return stops
// the LocalRunner (run finished, failed, or cut off by early stopping).
func (c *Coordinator) completeLocal(r *run, p *ensemble.Partial) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.finished {
		return true
	}
	for _, rs := range r.ranges {
		if rs.rng.Lo == p.Lo && rs.rng.Hi == p.Hi && rs.state == rangeLeased && rs.local {
			rs.state = rangeDone
			rs.partial = p
			rs.local = false
			r.localRanges++
			c.foldLocked(r)
			break
		}
	}
	return r.finished
}

// failLocal returns a failed local block's unfinished ranges to pending
// (another claim or a worker retries them) and fails the run outright
// on cancellation or an internal simulation error.
func (c *Coordinator) failLocal(r *run, block []ensemble.Range, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rg := range block {
		for _, rs := range r.ranges {
			if rs.rng.Index == rg.Index && rs.state == rangeLeased && rs.local {
				rs.state = rangePending
				rs.local = false
			}
		}
	}
	if !r.finished {
		c.finishLocked(r, err)
	}
}

// Lease grants the next pending range to a worker, or returns nil when
// no work is available. The request itself marks the worker live.
func (c *Coordinator) Lease(workerID string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("cluster: coordinator closed")
	}
	now := time.Now()
	c.workersSeen[workerID] = now
	c.reapLocked(now)
	for _, rid := range c.runOrder {
		r := c.runs[rid]
		if r.finished {
			continue
		}
		for _, rs := range r.ranges {
			if rs.state != rangePending {
				continue
			}
			c.seq++
			l := &lease{
				id:      fmt.Sprintf("l%d", c.seq),
				runID:   r.id,
				rng:     rs.rng,
				worker:  workerID,
				expires: now.Add(c.opts.LeaseTTL),
			}
			rs.state = rangeLeased
			rs.leaseID = l.id
			c.leases[l.id] = l
			c.metrics.leases.With("granted").Inc()
			if rs.retries > 0 {
				c.metrics.leases.With("retried").Inc()
			}
			return &Lease{
				ID:        l.id,
				Run:       r.id,
				Range:     rs.rng,
				Spec:      r.wire,
				TTLMillis: c.opts.LeaseTTL.Milliseconds(),
			}, nil
		}
	}
	return nil, nil
}

// Heartbeat extends a lease. False means the lease is gone or
// superseded — the worker should abandon the range.
func (c *Coordinator) Heartbeat(leaseID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	l, ok := c.leases[leaseID]
	if !ok {
		return false
	}
	c.workersSeen[l.worker] = now
	r, ok := c.runs[l.runID]
	if !ok || r.finished {
		return false
	}
	rs := r.ranges[l.rng.Index]
	if rs.state != rangeLeased || rs.leaseID != leaseID {
		return false
	}
	l.expires = now.Add(c.opts.LeaseTTL)
	return true
}

// Complete resolves a worker's finished range. Duplicate completions —
// the same range finished twice after a lease expired and was reissued
// — are resolved deterministically by range identity: the partial for a
// given range is bit-identical whoever computes it, so the first
// arrival is folded and every later one reports accepted=false without
// touching the aggregate.
func (c *Coordinator) Complete(leaseID, workerID string, payload []byte) (bool, error) {
	p := &ensemble.Partial{}
	if err := p.UnmarshalBinary(payload); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workersSeen[workerID] = time.Now()
	l, ok := c.leases[leaseID]
	if !ok {
		return false, fmt.Errorf("%w %q", ErrUnknownLease, leaseID)
	}
	if p.Lo != l.rng.Lo || p.Hi != l.rng.Hi || p.Count != l.rng.Hi-l.rng.Lo {
		return false, fmt.Errorf("cluster: lease %s expected complete range [%d,%d), got [%d,%d) count %d",
			leaseID, l.rng.Lo, l.rng.Hi, p.Lo, p.Hi, p.Count)
	}
	r, ok := c.runs[l.runID]
	if !ok || r.finished {
		return false, nil
	}
	rs := r.ranges[l.rng.Index]
	if rs.state == rangeDone || rs.state == rangeSkipped || rs.local {
		return false, nil
	}
	// A completion on an expired-and-reissued lease still lands here
	// (rs.leaseID names the newer lease): the value is identical, so
	// accept the earliest arrival whatever granted it.
	rs.state = rangeDone
	rs.leaseID = ""
	rs.partial = p
	r.remoteRanges++
	r.remoteWorkers[workerID] = struct{}{}
	c.metrics.leases.With("completed").Inc()
	c.foldLocked(r)
	return true, nil
}

// foldLocked advances the run's fold frontier over completed ranges —
// a strict ascending left fold, the same one ensemble.Run performs
// internally — then applies early stopping and completion.
func (c *Coordinator) foldLocked(r *run) {
	for r.nextFold < len(r.ranges) && r.ranges[r.nextFold].state == rangeDone {
		rs := r.ranges[r.nextFold]
		start := time.Now()
		if r.folded == nil {
			r.folded = rs.partial
		} else if err := r.folded.Merge(rs.partial); err != nil {
			c.finishLocked(r, fmt.Errorf("cluster: merge range %d: %w", rs.rng.Index, err))
			return
		}
		c.metrics.merge.Observe(time.Since(start).Seconds())
		rs.partial = nil
		r.nextFold++
		if r.onUpdate != nil {
			r.onUpdate(r.folded.Aggregates(r.spec.Replicates, false))
		}
		if r.spec.CITarget > 0 && r.folded.Count >= r.spec.MinReplicates &&
			r.folded.RelHalfWidth() <= r.spec.CITarget {
			r.early = true
			for _, rest := range r.ranges[r.nextFold:] {
				if rest.state != rangeDone {
					rest.state = rangeSkipped
				}
			}
			c.finishLocked(r, nil)
			return
		}
	}
	if r.nextFold == len(r.ranges) {
		c.finishLocked(r, nil)
	}
}

// reapLocked expires overdue leases, returning their ranges to pending
// (counted as a retry) and failing runs whose ranges keep dying.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		r, ok := c.runs[l.runID]
		if !ok || r.finished {
			delete(c.leases, id)
			continue
		}
		rs := r.ranges[l.rng.Index]
		if rs.state != rangeLeased || rs.leaseID != id {
			// The range resolved through another path; the record only
			// remains to settle a late completion, and an expired lease
			// can no longer produce one we would fold.
			delete(c.leases, id)
			continue
		}
		delete(c.leases, id)
		rs.state = rangePending
		rs.leaseID = ""
		rs.retries++
		r.retries++
		c.metrics.leases.With("expired").Inc()
		c.logf("cluster: lease %s expired (run %s range [%d,%d), retry %d)",
			id, r.id, l.rng.Lo, l.rng.Hi, rs.retries)
		if rs.retries > c.opts.MaxRetries {
			c.finishLocked(r, fmt.Errorf("cluster: range [%d,%d) failed %d leases",
				l.rng.Lo, l.rng.Hi, rs.retries))
		}
	}
}

// finishLocked marks a run finished (err == nil for success) and wakes
// its Run loop.
func (c *Coordinator) finishLocked(r *run, err error) {
	if r.finished {
		return
	}
	r.finished = true
	r.err = err
	close(r.done)
}

// finishResult renders a finished run's aggregates and distribution.
func (c *Coordinator) finishResult(r *run) (ensemble.Aggregates, Distribution, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var agg ensemble.Aggregates
	if r.folded != nil {
		agg = r.folded.Aggregates(r.spec.Replicates, r.early)
	} else {
		agg = ensemble.Aggregates{Requested: r.spec.Replicates, EarlyStopped: r.early}
	}
	dist := Distribution{
		Mode:         "local",
		Workers:      len(r.remoteWorkers),
		Ranges:       len(r.ranges),
		RangeSize:    ensemble.PlanRangeSize(r.spec.Replicates),
		Completed:    r.nextFold,
		LocalRanges:  r.localRanges,
		RemoteRanges: r.remoteRanges,
		Retries:      r.retries,
	}
	if r.remoteRanges > 0 {
		dist.Mode = "cluster"
	}
	return agg, dist, r.err
}

// Status is the coordinator's live state for GET /v1/cluster.
type Status struct {
	Workers       int               `json:"workers"`
	Runs          int               `json:"runs"`
	PendingRanges int               `json:"pendingRanges"`
	LeasedRanges  int               `json:"leasedRanges"`
	Leases        map[string]uint64 `json:"leases"`
}

// CurrentStatus snapshots the coordinator.
func (c *Coordinator) CurrentStatus() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.reapLocked(now)
	st := Status{
		Workers: c.liveWorkersLocked(now),
		Runs:    len(c.runs),
		Leases:  make(map[string]uint64),
	}
	for _, r := range c.runs {
		for _, rs := range r.ranges {
			switch rs.state {
			case rangePending:
				st.PendingRanges++
			case rangeLeased:
				st.LeasedRanges++
			}
		}
	}
	c.metrics.leases.Each(func(values []string, count uint64) {
		st.Leases[values[0]] = count
	})
	return st
}
