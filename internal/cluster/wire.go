// Package cluster shards ensembles across popprotod processes: a
// coordinator splits an experiment's replicate range into the canonical
// partition (ensemble.PlanRanges), hands ranges to pull-based workers
// as expiring leases over HTTP, and left-folds the returned partial
// aggregates in ascending range order. Because workers execute ranges
// through the same ensemble.RunRange / ReplicateSeed machinery the
// local executor uses, and the fold is the same ensemble.Partial.Merge,
// a distributed run is bit-identical to a single-node run of the same
// spec — which is what lets the service's canonical-key cache and store
// dedup discipline hold cluster-wide. Local execution is the degenerate
// case: with no live workers the coordinator claims every range itself
// and runs them through one pipelined pass.
package cluster

import (
	"fmt"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
)

// WireSpec is the canonical ensemble spec as it travels inside a lease.
// It carries only resolved values (engine concrete, seed and budget
// derived) so a worker reconstructs exactly the spec the coordinator
// planned — CITarget/MinReplicates deliberately do not travel: early
// stopping is the coordinator's fold-frontier decision, workers always
// compute whole ranges.
type WireSpec struct {
	Protocol   string `json:"protocol"`
	N          int    `json:"n"`
	Engine     string `json:"engine"`
	Seed       uint64 `json:"seed"`
	M          int    `json:"m,omitempty"`
	Replicates int    `json:"replicates"`
	Budget     uint64 `json:"budget"`
	ObsCap     int    `json:"obsCap"`
}

// wireFromSpec encodes a canonical ensemble spec for the wire.
func wireFromSpec(spec ensemble.Spec) WireSpec {
	return WireSpec{
		Protocol:   spec.Registry.Protocol,
		N:          spec.Registry.N,
		Engine:     spec.Registry.Engine.String(),
		Seed:       spec.Registry.Seed,
		M:          spec.Registry.M,
		Replicates: spec.Replicates,
		Budget:     spec.Budget,
		ObsCap:     spec.ObsCap,
	}
}

// Spec decodes the wire spec back into an ensemble spec.
func (w WireSpec) Spec() (ensemble.Spec, error) {
	engine, err := pp.ParseEngine(w.Engine)
	if err != nil {
		return ensemble.Spec{}, fmt.Errorf("cluster: lease spec: %w", err)
	}
	return ensemble.Spec{
		Registry: registry.Spec{
			Protocol: w.Protocol,
			N:        w.N,
			Engine:   engine,
			Seed:     w.Seed,
			M:        w.M,
		},
		Replicates: w.Replicates,
		Budget:     w.Budget,
		ObsCap:     w.ObsCap,
	}, nil
}

// Lease is one replicate range granted to a worker, valid until its TTL
// elapses without a heartbeat.
type Lease struct {
	ID        string         `json:"id"`
	Run       string         `json:"run"`
	Range     ensemble.Range `json:"range"`
	Spec      WireSpec       `json:"spec"`
	TTLMillis int64          `json:"ttlMillis"`
}

// Distribution describes how an ensemble's ranges were executed — the
// "distribution" block attached to job, experiment and sweep-cell
// results. It is reporting only: the aggregates themselves are
// bit-identical however the ranges were placed.
type Distribution struct {
	// Mode is "local" (every range ran in-process) or "cluster" (at
	// least one range ran on a remote worker).
	Mode string `json:"mode"`
	// Workers is the number of distinct remote workers that completed
	// at least one range.
	Workers int `json:"workers,omitempty"`
	// Ranges and RangeSize describe the canonical partition; Completed
	// counts ranges folded into the result.
	Ranges    int `json:"ranges"`
	RangeSize int `json:"rangeSize"`
	Completed int `json:"completed"`
	// LocalRanges and RemoteRanges split Completed by where the range
	// executed.
	LocalRanges  int `json:"localRanges,omitempty"`
	RemoteRanges int `json:"remoteRanges,omitempty"`
	// Retries counts lease expiries that forced a range to be reissued.
	Retries int `json:"retries,omitempty"`
}

// LocalDistribution is the constant distribution of work that never
// left the process and was not range-partitioned (single jobs).
func LocalDistribution() *Distribution {
	return &Distribution{Mode: "local", Ranges: 1, RangeSize: 1, Completed: 1, LocalRanges: 1}
}

// Request/response bodies of the lease protocol. Partial payloads are
// the ensemble binary wire format, carried base64-coded by
// encoding/json's []byte convention.
type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	Lease *Lease `json:"lease"`
}

type completeRequest struct {
	Worker  string `json:"worker"`
	Partial []byte `json:"partial"`
}

type completeResponse struct {
	Accepted bool `json:"accepted"`
}
