package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"popproto/internal/cluster"
	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
)

func pllSpec(n, reps int, seed uint64) ensemble.Spec {
	return ensemble.Spec{
		Registry:   registry.Spec{Protocol: "pll", N: n, Engine: pp.EngineCount, Seed: seed},
		Replicates: reps,
	}
}

// localRunner is the LocalRunner the service plugs in: the ensemble
// package's pipelined block executor.
func localRunner(workers int) cluster.LocalRunner {
	return func(ctx context.Context, spec ensemble.Spec, ranges []ensemble.Range, onRange func(*ensemble.Partial) bool) error {
		return ensemble.RunRanges(ctx, spec, ranges, workers, onRange)
	}
}

// noLocal fails the test if the coordinator falls back to local
// execution — used where remote workers must carry the whole run.
func noLocal(t *testing.T) cluster.LocalRunner {
	return func(ctx context.Context, spec ensemble.Spec, ranges []ensemble.Range, onRange func(*ensemble.Partial) bool) error {
		t.Errorf("coordinator executed %d ranges locally; expected remote workers to take them", len(ranges))
		return ensemble.RunRanges(ctx, spec, ranges, 0, onRange)
	}
}

// baseline runs the spec through the plain single-node executor.
func baseline(t *testing.T, spec ensemble.Spec) ensemble.Aggregates {
	t.Helper()
	res, err := ensemble.Run(context.Background(), spec, ensemble.Options{Workers: 4})
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	return res.Aggregates
}

// startWorkers boots n in-process workers against url and returns a
// stop function that cancels them and waits for exit.
func startWorkers(t *testing.T, url string, n int, poll time.Duration, onLease func(cluster.Lease)) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &cluster.Worker{
			Coordinator: url,
			ID:          "w" + string(rune('a'+i)),
			Workers:     2,
			Poll:        poll,
			OnLease:     onLease,
			Logf:        t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

func waitLive(t *testing.T, c *cluster.Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers became live", c.LiveWorkers(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLocalDegenerateMatchesEnsembleRun pins the degenerate case: a
// coordinator with no workers routes everything through the local
// runner and reproduces ensemble.Run bit-for-bit, early stopping
// included.
func TestLocalDegenerateMatchesEnsembleRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec ensemble.Spec
	}{
		{"plain", pllSpec(500, 40, 7)},
		{"early-stop", func() ensemble.Spec {
			s := pllSpec(1000, 64, 9)
			s.CITarget = 0.9
			s.MinReplicates = 8
			return s
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := baseline(t, tc.spec)
			c := cluster.NewCoordinator(cluster.Options{})
			defer c.Close()
			got, dist, err := c.Run(context.Background(), tc.spec, localRunner(4), nil)
			if err != nil {
				t.Fatalf("coordinator Run: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("local coordinator run differs from ensemble.Run:\n got %+v\nwant %+v", got, want)
			}
			if dist.Mode != "local" || dist.RemoteRanges != 0 || dist.LocalRanges != dist.Completed {
				t.Fatalf("unexpected distribution %+v", dist)
			}
		})
	}
}

// TestDistributedMatchesLocal is the acceptance criterion: a run
// sharded across two HTTP workers produces aggregates bit-identical to
// the single-node run.
func TestDistributedMatchesLocal(t *testing.T) {
	spec := pllSpec(500, 48, 5)
	want := baseline(t, spec)

	c := cluster.NewCoordinator(cluster.Options{Tick: 20 * time.Millisecond})
	defer c.Close()
	mux := http.NewServeMux()
	c.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	stop := startWorkers(t, srv.URL, 2, 10*time.Millisecond, nil)
	defer stop()
	waitLive(t, c, 2)

	got, dist, err := c.Run(context.Background(), spec, noLocal(t), nil)
	if err != nil {
		t.Fatalf("distributed Run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed aggregates differ from local:\n got %+v\nwant %+v", got, want)
	}
	ranges := len(ensemble.PlanRanges(spec.Replicates))
	if dist.Mode != "cluster" || dist.RemoteRanges != ranges || dist.Completed != ranges {
		t.Fatalf("unexpected distribution %+v (want %d remote ranges)", dist, ranges)
	}
	if dist.Workers < 1 || dist.Workers > 2 {
		t.Fatalf("distribution names %d workers", dist.Workers)
	}
}

// TestWorkerFailureRetries kills a worker mid-lease and asserts the
// lease expires, the range is reissued to the surviving workers, and
// the final aggregate is bit-identical to the zero-failure run — with
// no goroutines leaked. Run under -race in CI.
func TestWorkerFailureRetries(t *testing.T) {
	spec := pllSpec(500, 48, 5)
	want := baseline(t, spec)
	before := runtime.NumGoroutine()

	c := cluster.NewCoordinator(cluster.Options{
		LeaseTTL: 300 * time.Millisecond,
		Tick:     20 * time.Millisecond,
		Logf:     t.Logf,
	})
	mux := http.NewServeMux()
	c.Routes(mux)
	srv := httptest.NewServer(mux)

	// The victim dies "mid-lease": its context is canceled the moment it
	// is granted work, so the range is never completed — only the lease
	// TTL can recover it.
	victimCtx, killVictim := context.WithCancel(context.Background())
	victimDead := make(chan struct{})
	victim := &cluster.Worker{
		Coordinator: srv.URL,
		ID:          "victim",
		Workers:     1,
		Poll:        10 * time.Millisecond,
		OnLease:     func(cluster.Lease) { killVictim() },
		Logf:        t.Logf,
	}
	go func() {
		defer close(victimDead)
		victim.Run(victimCtx)
	}()
	waitLive(t, c, 1)

	type result struct {
		agg  ensemble.Aggregates
		dist cluster.Distribution
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		agg, dist, err := c.Run(context.Background(), spec, noLocal(t), nil)
		resCh <- result{agg, dist, err}
	}()

	// Let the victim grab (and die on) the first lease before healthy
	// workers join, so at least one range must be retried.
	deadline := time.Now().Add(5 * time.Second)
	for c.LeaseCounts()["granted"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never got a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-victimDead

	stop := startWorkers(t, srv.URL, 2, 10*time.Millisecond, nil)
	res := <-resCh
	got, dist, err := res.agg, res.dist, res.err
	stop()
	srv.Close()
	c.Close()
	if err != nil {
		t.Fatalf("Run after worker failure: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("aggregates after worker failure differ:\n got %+v\nwant %+v", got, want)
	}
	counts := c.LeaseCounts()
	if counts["expired"] < 1 || counts["retried"] < 1 {
		t.Fatalf("expected at least one expired and one retried lease, got %v", counts)
	}
	if dist.Retries < 1 {
		t.Fatalf("distribution records no retries: %+v", dist)
	}

	// All worker/coordinator goroutines must wind down.
	for deadline := time.Now().Add(5 * time.Second); runtime.NumGoroutine() > before; {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDuplicateCompletionResolvesDeterministically drives the lease
// protocol at method level: a range completed twice folds exactly once,
// and the duplicate is acknowledged without being accepted.
func TestDuplicateCompletionResolvesDeterministically(t *testing.T) {
	spec := pllSpec(400, 16, 3) // two ranges of 8
	want := baseline(t, spec)
	c := cluster.NewCoordinator(cluster.Options{Tick: 20 * time.Millisecond})
	defer c.Close()

	// Mark a worker live before the run starts so the coordinator leaves
	// the ranges to "the cluster" (this test).
	if l, err := c.Lease("w1"); err != nil || l != nil {
		t.Fatalf("idle lease request: %v, %v", l, err)
	}

	type result struct {
		agg  ensemble.Aggregates
		dist cluster.Distribution
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		agg, dist, err := c.Run(context.Background(), spec, noLocal(t), nil)
		resCh <- result{agg, dist, err}
	}()

	lease := func(worker string) *cluster.Lease {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			l, err := c.Lease(worker)
			if err != nil {
				t.Fatalf("lease: %v", err)
			}
			if l != nil {
				return l
			}
			if time.Now().After(deadline) {
				t.Fatal("no lease granted")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	partial := func(l *cluster.Lease) []byte {
		t.Helper()
		wspec, err := l.Spec.Spec()
		if err != nil {
			t.Fatalf("lease spec: %v", err)
		}
		p, err := ensemble.RunRange(context.Background(), wspec, l.Range.Lo, l.Range.Hi, 2)
		if err != nil {
			t.Fatalf("RunRange: %v", err)
		}
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}

	l0 := lease("w1")
	l1 := lease("w2")
	if l0.Range.Index == l1.Range.Index {
		t.Fatalf("both leases cover range %d", l0.Range.Index)
	}
	p0, p1 := partial(l0), partial(l1)

	if !c.Heartbeat(l0.ID) {
		t.Fatal("live lease rejected heartbeat")
	}
	if ok, err := c.Complete(l0.ID, "w1", p0); err != nil || !ok {
		t.Fatalf("first completion: accepted=%v err=%v", ok, err)
	}
	if ok, err := c.Complete(l0.ID, "w1", p0); err != nil || ok {
		t.Fatalf("duplicate completion must be acknowledged but not accepted: accepted=%v err=%v", ok, err)
	}
	if c.Heartbeat(l0.ID) {
		t.Fatal("completed lease still accepts heartbeats")
	}
	if ok, err := c.Complete("l999", "w1", p0); err == nil || ok {
		t.Fatal("unknown lease accepted a completion")
	}
	if ok, err := c.Complete(l1.ID, "w2", p1); err != nil || !ok {
		t.Fatalf("second range completion: accepted=%v err=%v", ok, err)
	}

	res := <-resCh
	if res.err != nil {
		t.Fatalf("Run: %v", res.err)
	}
	if !reflect.DeepEqual(res.agg, want) {
		t.Fatalf("aggregates differ:\n got %+v\nwant %+v", res.agg, want)
	}
	if res.dist.Mode != "cluster" || res.dist.Workers != 2 || res.dist.RemoteRanges != 2 {
		t.Fatalf("unexpected distribution %+v", res.dist)
	}
}

// TestLeaseExpiryFallsBackLocally grants the only range of a run to a
// worker that never returns; after the TTL the coordinator reclaims the
// range, counts the expiry, and finishes the run itself.
func TestLeaseExpiryFallsBackLocally(t *testing.T) {
	spec := pllSpec(400, 8, 3) // exactly one range
	want := baseline(t, spec)
	c := cluster.NewCoordinator(cluster.Options{
		LeaseTTL: 150 * time.Millisecond,
		Tick:     20 * time.Millisecond,
		Logf:     t.Logf,
	})
	defer c.Close()

	if l, err := c.Lease("w1"); err != nil || l != nil {
		t.Fatalf("idle lease request: %v, %v", l, err)
	}
	type result struct {
		agg  ensemble.Aggregates
		dist cluster.Distribution
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		agg, dist, err := c.Run(context.Background(), spec, localRunner(2), nil)
		resCh <- result{agg, dist, err}
	}()

	deadline := time.Now().Add(5 * time.Second)
	var granted *cluster.Lease
	for granted == nil {
		l, err := c.Lease("w1")
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		granted = l
		if time.Now().After(deadline) {
			t.Fatal("no lease granted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Never complete it; the worker goes silent and its liveness window
	// lapses, so after expiry the coordinator runs the range itself.
	res := <-resCh
	if res.err != nil {
		t.Fatalf("Run: %v", res.err)
	}
	if !reflect.DeepEqual(res.agg, want) {
		t.Fatalf("aggregates differ:\n got %+v\nwant %+v", res.agg, want)
	}
	if res.dist.Mode != "local" || res.dist.LocalRanges != 1 || res.dist.Retries != 1 {
		t.Fatalf("unexpected distribution %+v", res.dist)
	}
	if counts := c.LeaseCounts(); counts["expired"] != 1 {
		t.Fatalf("expected exactly one expired lease, got %v", counts)
	}
	// A completion for the long-expired lease is acknowledged but cannot
	// be accepted: the run is gone.
	wspec, _ := granted.Spec.Spec()
	p, err := ensemble.RunRange(context.Background(), wspec, granted.Range.Lo, granted.Range.Hi, 2)
	if err != nil {
		t.Fatalf("RunRange: %v", err)
	}
	data, _ := p.MarshalBinary()
	if ok, err := c.Complete(granted.ID, "w1", data); ok {
		t.Fatalf("completion on a finished run was accepted (err=%v)", err)
	}
}
