package cluster

import "popproto/internal/obs"

// clusterMetrics instruments the lease protocol. The instruments are
// always constructed (the coordinator counts through them whether or
// not a registry ever scrapes), and pre-seeded so every lease state
// series exists from the first scrape.
type clusterMetrics struct {
	workers *obs.GaugeFunc
	leases  *obs.CounterVec
	merge   *obs.Histogram
}

func newClusterMetrics(c *Coordinator) *clusterMetrics {
	m := &clusterMetrics{
		leases: obs.NewCounterVec(
			"popprotod_cluster_leases_total",
			"Replicate-range leases by outcome: granted, completed (partial folded), expired (TTL passed without heartbeat), retried (reissue of an expired range).",
			"state"),
		merge: obs.NewHistogram(
			"popprotod_cluster_merge_seconds",
			"Latency of folding one partial aggregate into a run's merge frontier.",
			obs.ExpBuckets(1e-6, 4, 12)),
		workers: obs.NewGaugeFunc(
			"popprotod_cluster_workers",
			"Workers heard from within one lease TTL.",
			func() float64 { return float64(c.LiveWorkers()) }),
	}
	for _, state := range []string{"granted", "completed", "expired", "retried"} {
		m.leases.With(state)
	}
	return m
}

// Instrument registers the coordinator's metrics with reg.
func (c *Coordinator) Instrument(reg *obs.Registry) {
	reg.MustRegister(c.metrics.workers, c.metrics.leases, c.metrics.merge)
}

// LeaseCounts returns the lease counters by state (test and status
// surface).
func (c *Coordinator) LeaseCounts() map[string]uint64 {
	out := make(map[string]uint64)
	c.metrics.leases.Each(func(values []string, count uint64) {
		out[values[0]] = count
	})
	return out
}
