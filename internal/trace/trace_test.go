package trace

import (
	"strings"
	"testing"

	"popproto/internal/asciichart"
	"popproto/internal/core"
	"popproto/internal/pp"
)

func newPLLSim(n int, seed uint64) *pp.Simulator[core.State] {
	return pp.NewSimulator[core.State](core.NewForN(n), n, seed)
}

// TestRecorderOnCountEngine: the recorder is engine-agnostic — probes read
// the census engine through the same Runner interface.
func TestRecorderOnCountEngine(t *testing.T) {
	sim := pp.NewRunner[core.State](pp.EngineCount, core.NewForN(100), 100, 1)
	r := NewRecorder(sim, 1.0,
		LeaderProbe[core.State](),
		CountProbe[core.State]("timers", func(s core.State) bool { return s.Status == core.StatusB }),
	)
	ok := r.RunUntil(100000, func(s pp.Runner[core.State]) bool { return s.Leaders() == 1 })
	if !ok {
		t.Fatal("count engine never reached one leader")
	}
	timers, _ := r.SeriesByName("timers")
	if timers.Last() < 1 {
		t.Fatalf("no timers recorded: %v", timers.Last())
	}
}

func TestRecorderSamplesAtCadence(t *testing.T) {
	sim := newPLLSim(100, 1)
	r := NewRecorder(sim, 1.0, LeaderProbe[core.State]())
	r.Run(10)
	leaders, ok := r.SeriesByName("leaders")
	if !ok {
		t.Fatal("leaders series missing")
	}
	// Initial sample plus ten unit-interval samples.
	if leaders.Len() != 11 {
		t.Fatalf("got %d samples, want 11", leaders.Len())
	}
	if leaders.Values[0] != 100 {
		t.Fatalf("initial leader sample = %v, want 100", leaders.Values[0])
	}
	if leaders.Last() > leaders.Values[0] {
		t.Fatal("leader count grew")
	}
	// Times are non-decreasing and end near 10 parallel time.
	for i := 1; i < leaders.Len(); i++ {
		if leaders.Times[i] < leaders.Times[i-1] {
			t.Fatal("sample times not monotone")
		}
	}
	if last := leaders.Times[leaders.Len()-1]; last < 9.5 || last > 10.5 {
		t.Fatalf("final sample at t=%v, want ≈10", last)
	}
}

func TestRecorderMultipleProbes(t *testing.T) {
	sim := newPLLSim(64, 2)
	r := NewRecorder(sim, 0.5,
		LeaderProbe[core.State](),
		CountProbe[core.State]("timers", func(s core.State) bool { return s.Status == core.StatusB }),
		CountProbe[core.State]("epoch4", func(s core.State) bool { return s.Epoch == 4 }),
	)
	r.Run(5)
	if len(r.Series()) != 3 {
		t.Fatalf("got %d series", len(r.Series()))
	}
	timers, _ := r.SeriesByName("timers")
	if timers.Last() < 1 {
		t.Fatalf("no timers after 5 parallel time: %v", timers.Last())
	}
	if _, ok := r.SeriesByName("nope"); ok {
		t.Fatal("found a series that was never recorded")
	}
}

func TestRecorderRunUntil(t *testing.T) {
	sim := newPLLSim(64, 3)
	r := NewRecorder(sim, 1.0, LeaderProbe[core.State]())
	ok := r.RunUntil(100000, func(s pp.Runner[core.State]) bool {
		return s.Leaders() == 1
	})
	if !ok {
		t.Fatal("never reached one leader")
	}
	leaders, _ := r.SeriesByName("leaders")
	if leaders.Last() != 1 {
		t.Fatalf("last sample %v, want 1", leaders.Last())
	}

	// A budget of zero parallel time cannot satisfy an unsatisfiable
	// predicate.
	sim2 := newPLLSim(8, 4)
	r2 := NewRecorder(sim2, 1.0, LeaderProbe[core.State]())
	if r2.RunUntil(0.5, func(s pp.Runner[core.State]) bool { return false }) {
		t.Fatal("unsatisfiable predicate reported satisfied")
	}
}

func TestRecorderChart(t *testing.T) {
	sim := newPLLSim(128, 5)
	r := NewRecorder(sim, 1.0, LeaderProbe[core.State]())
	r.Run(20)
	chart := r.Chart(asciichart.Options{Width: 40, Height: 8, YLabel: "count"})
	if !strings.Contains(chart, "leaders") || !strings.Contains(chart, "parallel time") {
		t.Fatalf("chart missing labels:\n%s", chart)
	}
}

func TestRecorderString(t *testing.T) {
	sim := newPLLSim(16, 6)
	r := NewRecorder(sim, 2.0, LeaderProbe[core.State]())
	if s := r.String(); !strings.Contains(s, "1 probes") {
		t.Fatalf("String() = %q", s)
	}
}

func TestRecorderPanics(t *testing.T) {
	sim := newPLLSim(16, 7)
	for name, f := range map[string]func(){
		"zero interval": func() { NewRecorder(sim, 0, LeaderProbe[core.State]()) },
		"no probes":     func() { NewRecorder[core.State](sim, 1.0) },
		"empty last":    func() { (&Series{}).Last() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
