// Package trace records time series from protocol executions — leader
// counts, epoch occupancy, group censuses — sampled at fixed parallel-time
// intervals. It backs the trajectory "figures" of the experiment reports
// and the -chart mode of cmd/leaderelect.
package trace

import (
	"fmt"

	"popproto/internal/asciichart"
	"popproto/internal/pp"
)

// Series is one named scalar time series sampled over parallel time.
type Series struct {
	// Name labels the series in charts.
	Name string
	// Times holds the sample instants in parallel time.
	Times []float64
	// Values holds the sampled values.
	Values []float64
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// Last returns the most recent sample value; it panics on an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		panic("trace: empty series")
	}
	return s.Values[len(s.Values)-1]
}

// Probe extracts one scalar from a simulator.
type Probe[S comparable] struct {
	// Name labels the resulting series.
	Name string
	// Sample reads the scalar.
	Sample func(sim pp.Runner[S]) float64
}

// LeaderProbe samples the current leader count.
func LeaderProbe[S comparable]() Probe[S] {
	return Probe[S]{
		Name:   "leaders",
		Sample: func(sim pp.Runner[S]) float64 { return float64(sim.Leaders()) },
	}
}

// CountProbe samples how many agents satisfy pred. It reads the census
// rather than iterating agents, so on the census engine a sample costs
// O(live states) — typically a few hundred — even at n = 10⁸.
func CountProbe[S comparable](name string, pred func(S) bool) Probe[S] {
	return Probe[S]{
		Name: name,
		Sample: func(sim pp.Runner[S]) float64 {
			count := 0
			for s, c := range sim.Census() {
				if pred(s) {
					count += c
				}
			}
			return float64(count)
		},
	}
}

// Recorder samples a set of probes from a simulator at a fixed cadence.
type Recorder[S comparable] struct {
	sim      pp.Runner[S]
	probes   []Probe[S]
	series   []*Series
	interval float64 // parallel time between samples
}

// NewRecorder attaches probes to a simulator. every is the sampling
// interval in parallel time; it panics unless every > 0 and at least one
// probe is given.
func NewRecorder[S comparable](sim pp.Runner[S], every float64, probes ...Probe[S]) *Recorder[S] {
	if every <= 0 {
		panic("trace: non-positive sampling interval")
	}
	if len(probes) == 0 {
		panic("trace: no probes")
	}
	r := &Recorder[S]{sim: sim, probes: probes, interval: every}
	r.series = make([]*Series, len(probes))
	for i, p := range probes {
		r.series[i] = &Series{Name: p.Name}
	}
	r.sample() // include the initial configuration
	return r
}

func (r *Recorder[S]) sample() {
	t := r.sim.ParallelTime()
	for i, p := range r.probes {
		r.series[i].Times = append(r.series[i].Times, t)
		r.series[i].Values = append(r.series[i].Values, p.Sample(r.sim))
	}
}

// Run advances the simulation by the given parallel time, sampling every
// interval, and returns the recorder for chaining.
func (r *Recorder[S]) Run(parallel float64) *Recorder[S] {
	stepsPerSample := uint64(r.interval * float64(r.sim.N()))
	if stepsPerSample == 0 {
		stepsPerSample = 1
	}
	total := uint64(parallel * float64(r.sim.N()))
	for done := uint64(0); done < total; done += stepsPerSample {
		chunk := min(stepsPerSample, total-done)
		r.sim.RunSteps(chunk)
		r.sample()
	}
	return r
}

// RunUntil advances the simulation, sampling every interval, until pred
// holds or the parallel-time budget is exhausted; it reports whether pred
// was observed.
func (r *Recorder[S]) RunUntil(budget float64, pred func(pp.Runner[S]) bool) bool {
	stepsPerSample := uint64(r.interval * float64(r.sim.N()))
	if stepsPerSample == 0 {
		stepsPerSample = 1
	}
	total := uint64(budget * float64(r.sim.N()))
	for {
		if pred(r.sim) {
			return true
		}
		if r.sim.Steps() >= total {
			return false
		}
		r.sim.RunSteps(stepsPerSample)
		r.sample()
	}
}

// Series returns the recorded series, in probe order.
func (r *Recorder[S]) Series() []*Series { return r.series }

// SeriesByName returns the series recorded for the given probe name.
func (r *Recorder[S]) SeriesByName(name string) (*Series, bool) {
	for _, s := range r.series {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Chart renders the recorded series as one ASCII chart.
func (r *Recorder[S]) Chart(opt asciichart.Options) string {
	series := make([]asciichart.Series, 0, len(r.series))
	for _, s := range r.series {
		if s.Len() == 0 {
			continue
		}
		series = append(series, asciichart.Series{Name: s.Name, X: s.Times, Y: s.Values})
	}
	if opt.XLabel == "" {
		opt.XLabel = "parallel time"
	}
	return asciichart.Plot(series, opt)
}

// String summarizes the recorder state.
func (r *Recorder[S]) String() string {
	return fmt.Sprintf("trace.Recorder{%d probes, %d samples, t=%.1f}",
		len(r.probes), r.series[0].Len(), r.sim.ParallelTime())
}
