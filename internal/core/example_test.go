package core_test

import (
	"fmt"

	"popproto/internal/core"
	"popproto/internal/pp"
)

// ExampleNewParams shows the derived protocol constants for n = 1024.
func ExampleNewParams() {
	p := core.NewParams(1024)
	fmt.Printf("m=%d lmax=%d cmax=%d Φ=%d\n", p.M, p.LMax, p.CMax, p.Phi)
	fmt.Printf("Table 3 state count: %d\n", p.StateSpaceSize())

	// Output:
	// m=10 lmax=50 cmax=410 Φ=3
	// Table 3 state count: 89184
}

// ExamplePLL_Transition replays the very first interaction of an
// execution: lines 1–3 of Algorithm 1 assign the statuses, and — because
// the QuickElimination module runs in the same interaction — the new
// candidate immediately scores its first lottery head.
func ExamplePLL_Transition() {
	p := core.NewForN(1024)
	init := p.InitialState()
	candidate, timer := p.Transition(init, init)
	fmt.Println("initiator:", candidate)
	fmt.Println("responder:", timer)

	// Output:
	// initiator: A/L e1 c0 levelQ=1 done=false
	// responder: B/F e1 c0 count=1
}

// ExamplePLL_CheckCanonical demonstrates the reachable-state contract.
func ExamplePLL_CheckCanonical() {
	p := core.NewForN(1024)
	good := p.InitialState()
	fmt.Println("initial state canonical:", p.CheckCanonical(good) == nil)

	bad := good
	bad.Count = 7 // a pristine agent cannot own a timer count
	fmt.Println("corrupted state canonical:", p.CheckCanonical(bad) == nil)

	// Output:
	// initial state canonical: true
	// corrupted state canonical: false
}

// ExampleNewSymmetric elects with the Section 4 symmetric variant.
func ExampleNewSymmetric() {
	const n = 64
	p := core.NewSymmetricForN(n)
	sim := pp.NewSimulator[core.SymState](p, n, 11)
	_, ok := sim.RunUntilLeaders(1, 1<<30)
	fmt.Println("stabilized:", ok, "leaders:", sim.Leaders())

	// Output:
	// stabilized: true leaders: 1
}
