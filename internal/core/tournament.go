package core

// tournament implements Algorithm 4 (run while both agents are in epoch 2
// or both in epoch 3; the module executes once per epoch, i.e. twice in
// total, each time with a fresh nonce — that is why Φ is only ⌈(2/3)·lg m⌉
// bits: two rounds achieve the discriminating power of ⌈lg m⌉ bits with
// strictly fewer states, the trick of Section 3.2.4).
//
// Every leader assembles a uniform Φ-bit nonce in rand, one fair coin flip
// per interaction with a follower (initiator ⇒ bit 0, responder ⇒ bit 1).
func (p *PLL) tournament(a0, a1 *State) {
	phi := uint8(p.params.Phi)

	// Lines 43–46: nonce assembly. Mutually exclusive branches.
	if a0.Leader && !a1.Leader && a0.Index < phi {
		a0.Rand = 2 * a0.Rand // appended bit 0: initiator side
		a0.Index = min(a0.Index+1, phi)
	}
	if a1.Leader && !a0.Leader && a1.Index < phi {
		a1.Rand = 2*a1.Rand + 1 // appended bit 1: responder side
		a1.Index = min(a1.Index+1, phi)
	}

	tournamentEpidemic(a0, a1, phi)
}

// tournamentEpidemic is lines 47–50, shared by both protocol variants: a
// one-way epidemic of the maximum nonce among finished members of V_A
// (index = Φ); a leader that learns of a strictly larger nonce becomes a
// follower. The leader holding the maximum nonce survives, so the module
// never eliminates all leaders.
func tournamentEpidemic(a0, a1 *State, phi uint8) {
	if a0.Status != StatusA || a1.Status != StatusA || a0.Index != phi || a1.Index != phi {
		return
	}
	switch {
	case a0.Rand < a1.Rand:
		a0.Leader = false
		a0.Rand = a1.Rand
	case a1.Rand < a0.Rand:
		a1.Leader = false
		a1.Rand = a0.Rand
	}
}
