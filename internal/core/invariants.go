package core

import "fmt"

// CheckCanonical verifies that s is a well-formed canonical state of the
// asymmetric protocol: every variable inside its Table 3 domain, the
// invariants that hold at interaction boundaries (Init = Epoch, pristine
// X agents, follower flags), and the canonical-zero convention for
// additional variables outside the agent's group. Every state reachable
// from the initial configuration satisfies these; the property tests drive
// millions of random and adversarial interactions through this check.
func (p *PLL) CheckCanonical(s State) error {
	if s.Status == StatusY {
		return fmt.Errorf("core: status Y is reserved for the symmetric variant: %v", s)
	}
	return checkCanonicalState(p.params, s)
}

func checkCanonicalState(params Params, s State) error {
	if s.Epoch < 1 || s.Epoch > 4 {
		return fmt.Errorf("core: epoch %d out of {1..4}: %v", s.Epoch, s)
	}
	if s.Init != s.Epoch {
		return fmt.Errorf("core: init %d != epoch %d at interaction boundary: %v", s.Init, s.Epoch, s)
	}
	if s.Color > 2 {
		return fmt.Errorf("core: color %d out of {0..2}: %v", s.Color, s)
	}
	if int(s.Count) >= params.CMax {
		return fmt.Errorf("core: count %d out of {0..cmax-1}: %v", s.Count, s)
	}
	if int(s.LevelQ) > params.LMax {
		return fmt.Errorf("core: levelQ %d exceeds lmax %d: %v", s.LevelQ, params.LMax, s)
	}
	if int(s.LevelB) > params.LMax {
		return fmt.Errorf("core: levelB %d exceeds lmax %d: %v", s.LevelB, params.LMax, s)
	}
	if int(s.Rand) >= params.RandSpace() {
		return fmt.Errorf("core: rand %d out of {0..2^Φ-1}: %v", s.Rand, s)
	}
	if int(s.Index) > params.Phi {
		return fmt.Errorf("core: index %d exceeds Φ %d: %v", s.Index, params.Phi, s)
	}

	zeroQE := func() error {
		if s.LevelQ != 0 || s.Done {
			return fmt.Errorf("core: stale QuickElimination variables outside V_A∩V_1: %v", s)
		}
		return nil
	}
	zeroTournament := func() error {
		if s.Rand != 0 || s.Index != 0 {
			return fmt.Errorf("core: stale Tournament variables outside V_A∩(V_2∪V_3): %v", s)
		}
		return nil
	}
	zeroBackup := func() error {
		if s.LevelB != 0 {
			return fmt.Errorf("core: stale BackUp variable outside V_A∩V_4: %v", s)
		}
		return nil
	}
	zeroCount := func() error {
		if s.Count != 0 {
			return fmt.Errorf("core: stale count outside V_B: %v", s)
		}
		return nil
	}

	switch s.Group() {
	case GroupX, GroupY:
		pristine := State{Leader: true, Status: s.Status, Epoch: 1, Init: 1}
		if s != pristine {
			return fmt.Errorf("core: non-pristine %v agent: %v", s.Status, s)
		}
	case GroupB:
		if s.Leader {
			return fmt.Errorf("core: leader with timer status B: %v", s)
		}
		for _, f := range []func() error{zeroQE, zeroTournament, zeroBackup} {
			if err := f(); err != nil {
				return err
			}
		}
	case GroupA1:
		if !s.Leader && !s.Done {
			return fmt.Errorf("core: follower in V_A∩V_1 with done=false: %v", s)
		}
		for _, f := range []func() error{zeroCount, zeroTournament, zeroBackup} {
			if err := f(); err != nil {
				return err
			}
		}
	case GroupA23:
		if !s.Leader && int(s.Index) != params.Phi {
			return fmt.Errorf("core: follower in V_A∩(V_2∪V_3) with index %d != Φ: %v", s.Index, s)
		}
		for _, f := range []func() error{zeroCount, zeroQE, zeroBackup} {
			if err := f(); err != nil {
				return err
			}
		}
	case GroupA4:
		for _, f := range []func() error{zeroCount, zeroQE, zeroTournament} {
			if err := f(); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckCanonical verifies that s is a well-formed canonical state of the
// symmetric variant: all asymmetric invariants plus the Section 4 coin and
// duel conventions — exactly the followers carry coins, exactly the
// epoch-4 leaders may carry duel sub-states.
func (p *SymPLL) CheckCanonical(s SymState) error {
	if err := checkCanonicalState(p.params, s.State); err != nil {
		return err
	}
	switch {
	case s.Status == StatusX || s.Status == StatusY:
		if s.Coin != CoinNone || s.Duel != DuelNone {
			return fmt.Errorf("core: pristine agent carries coin/duel state: %v", s)
		}
	case s.Leader:
		if s.Coin != CoinNone {
			return fmt.Errorf("core: leader carries a coin: %v", s)
		}
		if s.Duel != DuelNone && s.Epoch != 4 {
			return fmt.Errorf("core: duel state outside epoch 4: %v", s)
		}
	default: // assigned follower
		if s.Coin == CoinNone {
			return fmt.Errorf("core: follower without coin status: %v", s)
		}
		if s.Duel != DuelNone {
			return fmt.Errorf("core: follower carries duel state: %v", s)
		}
	}
	return nil
}
