package core

import (
	"testing"
	"testing/quick"

	"popproto/internal/pp"
)

var testSymParams = NewParams(256) // m = 8, lmax = 40, cmax = 328, Φ = 2

func testSym() *SymPLL { return NewSymmetric(testSymParams) }

func symA4Leader(levelB uint16, duel DuelStatus) SymState {
	return SymState{
		State: State{Leader: true, Status: StatusA, Epoch: 4, Init: 4, LevelB: levelB},
		Duel:  duel,
	}
}

func symA4Follower(levelB uint16, coin CoinStatus) SymState {
	return SymState{
		State: State{Status: StatusA, Epoch: 4, Init: 4, LevelB: levelB},
		Coin:  coin,
	}
}

func symA1Leader(levelQ uint16, done bool) SymState {
	return SymState{State: State{Leader: true, Status: StatusA, Epoch: 1, Init: 1, LevelQ: levelQ, Done: done}}
}

func symA1Follower(levelQ uint16, coin CoinStatus) SymState {
	return SymState{
		State: State{Status: StatusA, Epoch: 1, Init: 1, LevelQ: levelQ, Done: true},
		Coin:  coin,
	}
}

func TestSymmetricRejectsTwoAgents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSymmetric(n=2) did not panic")
		}
	}()
	NewSymmetric(NewParams(2))
}

// TestStatusDance verifies the Section 4 pairing rules.
func TestStatusDance(t *testing.T) {
	p := testSym()
	x := p.InitialState()
	y := x
	y.Status = StatusY

	a, b := p.Transition(x, x)
	if a.Status != StatusY || b.Status != StatusY || !a.Leader || !b.Leader {
		t.Fatalf("X×X = %v, %v; want Y×Y leaders", a, b)
	}

	a, b = p.Transition(y, y)
	if a.Status != StatusX || b.Status != StatusX {
		t.Fatalf("Y×Y = %v, %v; want X×X", a, b)
	}

	// X×Y → A×B with the X side as candidate, in both orders.
	a, b = p.Transition(x, y)
	if a.Status != StatusA || !a.Leader || a.Done {
		t.Fatalf("X×Y candidate = %v", a)
	}
	if b.Status != StatusB || b.Leader || b.Coin != CoinJ {
		t.Fatalf("X×Y timer = %v", b)
	}

	a, b = p.Transition(y, x)
	if a.Status != StatusB || b.Status != StatusA || !b.Leader {
		t.Fatalf("Y×X = %v, %v; want B×A", a, b)
	}

	// X or Y meeting an assigned agent joins late as a coin-carrying
	// follower candidate.
	for _, fresh := range []SymState{x, y} {
		got, _ := p.Transition(fresh, symA1Leader(0, false))
		if got.Status != StatusA || got.Leader || !got.Done || got.Coin != CoinJ {
			t.Fatalf("late joiner from %v = %v", fresh.Status, got)
		}
	}
}

// TestCoinDance verifies J×J→K×K, K×K→J×J, J×K→F0×F1 in both orders, and
// that F0/F1 are absorbing.
func TestCoinDance(t *testing.T) {
	p := testSym()
	mk := func(c CoinStatus) SymState { return symA1Follower(0, c) }

	a, b := p.Transition(mk(CoinJ), mk(CoinJ))
	if a.Coin != CoinK || b.Coin != CoinK {
		t.Fatalf("J×J = %v×%v", a.Coin, b.Coin)
	}
	a, b = p.Transition(mk(CoinK), mk(CoinK))
	if a.Coin != CoinJ || b.Coin != CoinJ {
		t.Fatalf("K×K = %v×%v", a.Coin, b.Coin)
	}
	a, b = p.Transition(mk(CoinJ), mk(CoinK))
	if a.Coin != CoinF0 || b.Coin != CoinF1 {
		t.Fatalf("J×K = %v×%v", a.Coin, b.Coin)
	}
	a, b = p.Transition(mk(CoinK), mk(CoinJ))
	if a.Coin != CoinF1 || b.Coin != CoinF0 {
		t.Fatalf("K×J = %v×%v", a.Coin, b.Coin)
	}
	a, b = p.Transition(mk(CoinF0), mk(CoinF1))
	if a.Coin != CoinF0 || b.Coin != CoinF1 {
		t.Fatalf("F0×F1 should be absorbing, got %v×%v", a.Coin, b.Coin)
	}
	a, b = p.Transition(mk(CoinF0), mk(CoinJ))
	if a.Coin != CoinF0 || b.Coin != CoinJ {
		t.Fatalf("F0×J should be a no-op, got %v×%v", a.Coin, b.Coin)
	}
}

// TestSymmetricQuickEliminationFlips: heads from F0, tails from F1,
// nothing from J/K.
func TestSymmetricQuickEliminationFlips(t *testing.T) {
	p := testSym()

	l, _ := p.Transition(symA1Leader(2, false), symA1Follower(0, CoinF0))
	if l.LevelQ != 3 || l.Done {
		t.Fatalf("F0 flip: %v", l)
	}

	l, _ = p.Transition(symA1Leader(2, false), symA1Follower(0, CoinF1))
	if !l.Done || l.LevelQ != 2 {
		t.Fatalf("F1 flip: %v", l)
	}

	// Coin order must not matter: the leader can be the responder.
	_, l = p.Transition(symA1Follower(0, CoinF0), symA1Leader(2, false))
	if l.LevelQ != 3 {
		t.Fatalf("F0 flip with leader responding: %v", l)
	}

	l, _ = p.Transition(symA1Leader(2, false), symA1Follower(0, CoinJ))
	if l.LevelQ != 2 || l.Done {
		t.Fatalf("J partner must not flip: %v", l)
	}
}

// TestSymmetricBackupDuel exercises the symmetric replacement of line 58.
func TestSymmetricBackupDuel(t *testing.T) {
	p := testSym()

	// Identical leaders: both become pending.
	a, b := p.Transition(symA4Leader(3, DuelNone), symA4Leader(3, DuelNone))
	if !a.Leader || !b.Leader {
		t.Fatalf("identical leaders must both survive: %v, %v", a, b)
	}
	if a.Duel != DuelPending || b.Duel != DuelPending {
		t.Fatalf("identical leaders must both go pending: %v, %v", a, b)
	}

	// A pending leader converts a coin observation into a duel bit.
	a, _ = p.Transition(symA4Leader(3, DuelPending), symA4Follower(3, CoinF0))
	if a.Duel != DuelZero {
		t.Fatalf("pending leader with F0: %v", a)
	}
	a, _ = p.Transition(symA4Leader(3, DuelPending), symA4Follower(3, CoinF1))
	if a.Duel != DuelOne {
		t.Fatalf("pending leader with F1: %v", a)
	}

	// Leaders differing only in duel bits: exactly one survives, winner
	// resets its duel state, loser is minted a J coin.
	a, b = p.Transition(symA4Leader(3, DuelZero), symA4Leader(3, DuelOne))
	alive := 0
	for _, s := range []SymState{a, b} {
		if s.Leader {
			alive++
			if s.Duel != DuelNone {
				t.Fatalf("winner kept duel state: %v", s)
			}
		} else {
			if s.Coin != CoinJ {
				t.Fatalf("loser has no fresh coin: %v", s)
			}
		}
	}
	if alive != 1 {
		t.Fatalf("duel left %d leaders", alive)
	}

	// Equal bits re-flip: both pending again.
	a, b = p.Transition(symA4Leader(3, DuelOne), symA4Leader(3, DuelOne))
	if a.Duel != DuelPending || b.Duel != DuelPending || !a.Leader || !b.Leader {
		t.Fatalf("equal-bit duel: %v, %v", a, b)
	}
}

// TestSymmetryProperty is the defining property of Section 4: p = q implies
// both successors are equal, checked over random canonical states.
func TestSymmetryProperty(t *testing.T) {
	p := testSym()
	gen := newStateGen(testSymParams)
	f := func(seed uint64) bool {
		s := gen.symState(seed)
		x, y := p.Transition(s, s)
		return x == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderEquivariance: a symmetric protocol must not read roles at all,
// i.e. Transition(q, p) is the mirror image of Transition(p, q) for ALL
// state pairs, not only equal ones.
func TestOrderEquivariance(t *testing.T) {
	p := testSym()
	gen := newStateGen(testSymParams)
	f := func(seedA, seedB uint64) bool {
		a, b := gen.symState(seedA), gen.symState(seedB)
		x1, y1 := p.Transition(a, b)
		y2, x2 := p.Transition(b, a)
		return x1 == x2 && y1 == y2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetricCanonicalClosure mirrors the asymmetric closure property.
func TestSymmetricCanonicalClosure(t *testing.T) {
	p := testSym()
	gen := newStateGen(testSymParams)
	f := func(seedA, seedB uint64) bool {
		a, b := gen.symState(seedA), gen.symState(seedB)
		if p.CheckCanonical(a) != nil || p.CheckCanonical(b) != nil {
			return true // generator glitch; irrelevant pairs are skipped
		}
		x, y := p.Transition(a, b)
		return p.CheckCanonical(x) == nil && p.CheckCanonical(y) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestCoinBalanceInvariant: |F0| = |F1| in every configuration of a run —
// the invariant that makes Section 4's coin flips exactly fair.
func TestCoinBalanceInvariant(t *testing.T) {
	const n = 128
	p := NewSymmetric(NewParams(n))
	sim := pp.NewSimulator[SymState](p, n, 5)
	for k := 0; k < 300; k++ {
		sim.RunSteps(500)
		census := pp.CensusBy(sim, func(s SymState) CoinStatus { return s.Coin })
		if census[CoinF0] != census[CoinF1] {
			t.Fatalf("step %d: |F0| = %d, |F1| = %d", sim.Steps(), census[CoinF0], census[CoinF1])
		}
	}
}

// TestSymmetricStabilizes: the symmetric variant elects exactly one leader
// for all n ≥ 3 (and trivially for n = 1).
func TestSymmetricStabilizes(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 8, 16, 64, 128, 256} {
		for seed := uint64(1); seed <= 2; seed++ {
			p := NewSymmetric(NewParams(n))
			sim := pp.NewSimulator[SymState](p, n, seed)
			// The coin machinery costs a constant factor over the
			// asymmetric protocol; give it a wider budget.
			if _, ok := sim.RunUntilLeaders(1, 40*stabilizationBudget(n)); !ok {
				t.Fatalf("n=%d seed=%d: symmetric variant did not stabilize (%d leaders)",
					n, seed, sim.Leaders())
			}
			if !sim.VerifyStable(uint64(200 * n)) {
				t.Fatalf("n=%d seed=%d: unstable", n, seed)
			}
		}
	}
}

// TestSymmetricInvariantsThroughoutExecution drives a full run and checks
// canonical states, coin balance and leader safety along the way.
func TestSymmetricInvariantsThroughoutExecution(t *testing.T) {
	const n = 64
	p := NewSymmetric(NewParams(n))
	sim := pp.NewSimulator[SymState](p, n, 9)
	prev := sim.Leaders()
	for k := 0; k < 200; k++ {
		sim.RunSteps(500)
		if sim.Leaders() < 1 || sim.Leaders() > prev {
			t.Fatalf("leader census broken: %d -> %d", prev, sim.Leaders())
		}
		prev = sim.Leaders()
		sim.ForEach(func(id int, s SymState) {
			if err := p.CheckCanonical(s); err != nil {
				t.Fatalf("agent %d at step %d: %v", id, sim.Steps(), err)
			}
		})
	}
}

// TestSymmetricAdversarialSafety: round-robin scheduling preserves safety.
func TestSymmetricAdversarialSafety(t *testing.T) {
	const n = 32
	p := NewSymmetric(NewParams(n))
	sim := pp.NewSimulator[SymState](p, n, 1)
	var rr pp.RoundRobin
	for k := 0; k < 100; k++ {
		sim.RunSchedule(&rr, 500)
		if sim.Leaders() < 1 {
			t.Fatalf("all leaders eliminated under round-robin at step %d", sim.Steps())
		}
	}
}
