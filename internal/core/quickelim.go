package core

// quickElimination implements Algorithm 3 (run while both agents are in
// epoch 1). Each leader plays the geometric lottery of Section 3.1.1: an
// interaction with a follower is a fair coin flip — heads (the leader is
// the initiator) increments levelQ, tails (the leader is the responder)
// stops the flipping via done. Because a flip happens only when a leader
// meets a follower, at most one agent flips per interaction and the flips
// of distinct leaders are fully independent (Lemma 7's argument).
func (p *PLL) quickElimination(a0, a1 *State) {
	// Lines 35–38: the lottery flips. The two branches are mutually
	// exclusive (the partner must be a follower).
	if a0.Leader && !a1.Leader && !a0.Done {
		// Heads: the leader initiated the interaction.
		a0.LevelQ = min(a0.LevelQ+1, uint16(p.params.LMax))
	}
	if a1.Leader && !a0.Leader && !a1.Done {
		// Tails: the leader responded.
		a1.Done = true
	}

	qeEpidemic(a0, a1)
}

// qeEpidemic is lines 39–42, shared by both protocol variants: a one-way
// epidemic of the maximum levelQ among stopped members of V_A; a candidate
// that learns of a strictly larger level leaves the leader race. A leader
// holding the global maximum can never be eliminated, so the module never
// eliminates all leaders.
func qeEpidemic(a0, a1 *State) {
	if a0.Status != StatusA || a1.Status != StatusA || !a0.Done || !a1.Done {
		return
	}
	switch {
	case a0.LevelQ < a1.LevelQ:
		a0.Leader = false
		a0.LevelQ = a1.LevelQ
	case a1.LevelQ < a0.LevelQ:
		a1.Leader = false
		a1.LevelQ = a0.LevelQ
	}
}
