// Package core implements PLL, the leader election protocol of Sudo,
// Ooshita, Izumi, Kakugawa and Masuzawa, "Logarithmic Expected-Time Leader
// Election in Population Protocol Model" (PODC 2019), together with the
// symmetric variant sketched in Section 4 of the paper.
//
// PLL elects exactly one leader among n anonymous agents in O(log n)
// expected parallel time using O(log n) states per agent, given a rough
// upper bound m on log₂ n with m = Θ(log n). The protocol is the
// composition of three modules executed across four "epochs" driven by a
// count-up synchronization clock:
//
//	epoch 1        QuickElimination  — geometric-lottery elimination
//	epochs 2 and 3 Tournament        — uniform nonce tournament, run twice
//	epoch 4        BackUp            — level race + direct duels (safety net)
//
// The implementation follows Algorithms 1–5 of the paper line by line; the
// handful of pseudo-code typos it corrects (saturating min written as max,
// follower participation in the Tournament epidemic) are catalogued in
// DESIGN.md.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Params carries the population size n and the paper's knowledge parameter
// m, together with the derived constants of Algorithm 1:
//
//	lmax = 5m    (cap of levelQ and levelB)
//	cmax = 41m   (period of the count-up timer)
//	Φ    = ⌈(2/3)·lg m⌉  (coin flips per Tournament nonce)
//
// The paper requires m ≥ log₂ n and m = Θ(log n). NewParams picks the
// canonical m = ⌈lg n⌉; NewParamsWithM validates an explicit choice;
// NewParamsUnchecked deliberately skips validation so failure-injection
// experiments can force synchronization failures and exercise the BackUp
// fallback path.
type Params struct {
	// N is the population size the parameters were derived for.
	N int
	// M is the knowledge parameter m.
	M int
	// LMax is lmax = 5m.
	LMax int
	// CMax is cmax = 41m.
	CMax int
	// Phi is Φ = ⌈(2/3)·lg m⌉.
	Phi int
}

// ErrInvalidParams reports a Params constructor rejection.
var ErrInvalidParams = errors.New("core: invalid parameters")

// CeilLog2 returns ⌈log₂ n⌉ for n ≥ 1.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func derive(n, m int) Params {
	phi := 0
	if m > 1 {
		phi = int(math.Ceil(2.0 * math.Log2(float64(m)) / 3.0))
	}
	return Params{
		N:    n,
		M:    m,
		LMax: 5 * m,
		CMax: 41 * m,
		Phi:  phi,
	}
}

// NewParams returns the canonical parameters for a population of size n,
// choosing m = max(1, ⌈lg n⌉), which satisfies both paper requirements.
// It panics if n < 1.
func NewParams(n int) Params {
	if n < 1 {
		panic(fmt.Sprintf("core: population size %d < 1", n))
	}
	m := CeilLog2(n)
	if m < 1 {
		m = 1
	}
	return derive(n, m)
}

// NewParamsWithM returns parameters for an explicitly chosen m, enforcing
// the paper's requirement m ≥ log₂ n. (The Θ(log n) upper-bound side of the
// requirement cannot be checked for a single n and is the caller's
// responsibility: state usage grows linearly with m.)
func NewParamsWithM(n, m int) (Params, error) {
	if n < 1 {
		return Params{}, fmt.Errorf("%w: population size %d < 1", ErrInvalidParams, n)
	}
	if m < 1 {
		return Params{}, fmt.Errorf("%w: m = %d < 1", ErrInvalidParams, m)
	}
	if m < CeilLog2(n) {
		return Params{}, fmt.Errorf("%w: m = %d violates m ≥ log₂ n = %d",
			ErrInvalidParams, m, CeilLog2(n))
	}
	return derive(n, m), nil
}

// ParamsFor returns parameters for a population of size n with an
// explicitly chosen knowledge parameter m, where m = 0 selects the
// canonical m = max(1, ⌈lg n⌉). It is the error-returning constructor the
// command-line tools and the protocol registry share: invalid sizes come
// back as ErrInvalidParams instead of the panics of NewParams.
func ParamsFor(n, m int) (Params, error) {
	if m == 0 {
		m = max(CeilLog2(n), 1)
	}
	return NewParamsWithM(n, m)
}

// NewParamsUnchecked returns parameters without validating m ≥ log₂ n.
// Undersized m makes the count-up clock tick too fast for epidemics to
// complete, which is precisely the "synchronization fails" regime the paper
// covers with the BackUp module; experiments use this constructor to
// exercise that path. It panics on non-positive arguments.
func NewParamsUnchecked(n, m int) Params {
	if n < 1 || m < 1 {
		panic(fmt.Sprintf("core: non-positive parameters n=%d m=%d", n, m))
	}
	return derive(n, m)
}

// RandSpace returns 2^Φ, the size of the Tournament nonce domain.
func (p Params) RandSpace() int { return 1 << p.Phi }

// WithPhi returns a copy of p with the Tournament nonce width overridden.
// The paper fixes Φ = ⌈(2/3)·lg m⌉ as its state/time sweet spot (§3.2.4:
// two short tournaments replace one ⌈lg m⌉-bit tournament); this override
// exists for the ablation experiment that measures that trade-off. It
// panics for phi outside [0, 16].
func (p Params) WithPhi(phi int) Params {
	if phi < 0 || phi > 16 {
		panic(fmt.Sprintf("core: ablation Φ = %d outside [0, 16]", phi))
	}
	p.Phi = phi
	return p
}

// StateSpaceSize returns the number of agent states counted exactly as
// Table 3 of the paper counts them: the product of the common-variable
// domains with the per-group additional-variable domains,
//
//	|Q| = c·( 1·[V_X] + cmax·[V_B] + 2(lmax+1)·[V_A∩V_1]
//	          + 2·2^Φ(Φ+1)·[V_A∩(V_2∪V_3)] + (lmax+1)·[V_A∩V_4] )
//
// with the constant common factor c = leader(2)·tick(2)·init(4)·color(3).
// This is the quantity Lemma 3 proves to be O(log n); the Lemma 3
// experiment verifies both this formula's linear growth in m and that the
// states actually observed in execution stay below it.
func (p Params) StateSpaceSize() int {
	common := 2 * 2 * 4 * 3 // leader × tick × init × color
	vx := common            // status X, epoch 1
	vb := common * 4 * p.CMax
	va1 := common * 2 * (p.LMax + 1)                 // done × levelQ
	va23 := common * 2 * p.RandSpace() * (p.Phi + 1) // two epochs × rand × index
	va4 := common * (p.LMax + 1)                     // levelB
	return vx + vb + va1 + va23 + va4
}

// Validate checks internal consistency of a Params value (whatever its
// provenance), returning a descriptive error for out-of-range fields.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("%w: N = %d", ErrInvalidParams, p.N)
	case p.M < 1:
		return fmt.Errorf("%w: M = %d", ErrInvalidParams, p.M)
	case p.LMax != 5*p.M:
		return fmt.Errorf("%w: LMax = %d, want 5m = %d", ErrInvalidParams, p.LMax, 5*p.M)
	case p.CMax != 41*p.M:
		return fmt.Errorf("%w: CMax = %d, want 41m = %d", ErrInvalidParams, p.CMax, 41*p.M)
	case p.Phi < 0 || p.Phi > 64:
		return fmt.Errorf("%w: Phi = %d", ErrInvalidParams, p.Phi)
	}
	return nil
}
