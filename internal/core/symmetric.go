package core

import (
	"fmt"

	"popproto/internal/pp"
)

// CoinStatus is the coin state a follower carries in the symmetric variant
// (Section 4). Followers are minted with J; pairs of matching followers
// dance J×J→K×K, K×K→J×J, and J×K→F0×F1, after which F0/F1 agents are
// permanent coin providers. Because the dance mints F0 and F1 only in
// pairs and flips never consume them, |F0| = |F1| holds in every reachable
// configuration — the invariant that makes every leader flip exactly fair.
type CoinStatus uint8

const (
	// CoinNone marks agents that carry no coin (leaders, X/Y agents).
	CoinNone CoinStatus = iota
	// CoinJ is the freshly minted follower coin status.
	CoinJ
	// CoinK is the intermediate coin status.
	CoinK
	// CoinF0 providers make a leader's flip come up heads.
	CoinF0
	// CoinF1 providers make a leader's flip come up tails.
	CoinF1
)

// String implements fmt.Stringer.
func (c CoinStatus) String() string {
	switch c {
	case CoinNone:
		return "-"
	case CoinJ:
		return "J"
	case CoinK:
		return "K"
	case CoinF0:
		return "F0"
	case CoinF1:
		return "F1"
	default:
		return fmt.Sprintf("Coin(%d)", uint8(c))
	}
}

// DuelStatus is the leader-only tie-breaking sub-state the symmetric
// variant adds for epoch 4. The paper's line 58 ("responder yields") is
// inherently asymmetric; Section 4 does not spell out its replacement, so
// we use the scheme documented in DESIGN.md: two leaders in *identical*
// states both become DuelPending (legal, p = q ⇒ p′ = q′), a pending
// leader converts its next coin observation into DuelZero/DuelOne, and two
// leaders in *distinct* states resolve by the deterministic lexicographic
// rule, which the acquired duel bits force to apply eventually.
type DuelStatus uint8

const (
	// DuelNone means no duel in progress.
	DuelNone DuelStatus = iota
	// DuelPending means the leader owes itself a duel coin flip.
	DuelPending
	// DuelZero is an acquired duel bit of 0.
	DuelZero
	// DuelOne is an acquired duel bit of 1.
	DuelOne
)

// String implements fmt.Stringer.
func (d DuelStatus) String() string {
	switch d {
	case DuelNone:
		return "none"
	case DuelPending:
		return "pending"
	case DuelZero:
		return "0"
	case DuelOne:
		return "1"
	default:
		return fmt.Sprintf("Duel(%d)", uint8(d))
	}
}

// SymState is an agent state of the symmetric variant: the full asymmetric
// state plus the follower coin status and the leader duel sub-state.
type SymState struct {
	State
	// Coin is the follower's coin status; CoinNone on leaders and X/Y
	// agents.
	Coin CoinStatus
	// Duel is the epoch-4 tie-breaking sub-state; DuelNone on followers.
	Duel DuelStatus
}

// String renders the state compactly for traces and test failures.
func (s SymState) String() string {
	out := s.State.String()
	if s.Coin != CoinNone {
		out += " coin=" + s.Coin.String()
	}
	if s.Duel != DuelNone {
		out += " duel=" + s.Duel.String()
	}
	return out
}

// SymPLL is the symmetric variant of PLL per Section 4: a protocol whose
// transition function never uses the initiator/responder distinction when
// the two states are equal (p = q ⇒ p′ = q′), suitable for chemical
// reaction networks. Construct with NewSymmetric.
type SymPLL struct {
	params Params
}

// NewSymmetric returns the symmetric protocol for the given parameters.
// It panics on inconsistent parameters and on populations of exactly two
// agents: with n = 2 the two agents provably stay in identical states
// forever (X×X→Y×Y→X×X→…), so no deterministic symmetric protocol can
// elect a leader; the paper implicitly assumes n ≥ 3.
func NewSymmetric(params Params) *SymPLL {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if params.N == 2 {
		panic("core: symmetric leader election is impossible for n = 2")
	}
	return &SymPLL{params: params}
}

// NewSymmetricForN is shorthand for NewSymmetric(NewParams(n)).
func NewSymmetricForN(n int) *SymPLL { return NewSymmetric(NewParams(n)) }

// Params returns the protocol's parameters.
func (p *SymPLL) Params() Params { return p.params }

// Name implements pp.Protocol.
func (p *SymPLL) Name() string { return "PLL-sym" }

// InitialState implements pp.Protocol.
func (p *SymPLL) InitialState() SymState {
	return SymState{State: State{Leader: true, Status: StatusX, Epoch: 1, Init: 1}}
}

// Output implements pp.Protocol.
func (p *SymPLL) Output(s SymState) pp.Role {
	if s.Leader {
		return pp.Leader
	}
	return pp.Follower
}

// Transition implements pp.Protocol. The skeleton is Algorithm 1 with the
// two asymmetric ingredients replaced per Section 4: the status dance
// assigns A/B without using roles, and every coin flip reads the partner
// follower's F0/F1 coin status instead of the initiator/responder role.
func (p *SymPLL) Transition(s0, s1 SymState) (SymState, SymState) {
	// Follower coin dance (role-free; covers both orders explicitly). It
	// runs before status assignment so that a follower minted in this very
	// interaction keeps its fresh J coin.
	coinDance(&s0, &s1)

	p.assignStatus(&s0, &s1)

	// Line 7: ticks are per-interaction flags.
	s0.Tick, s1.Tick = false, false

	// Line 8: CountUp is role-free and shared with the asymmetric protocol.
	countUp(&s0.State, &s1.State, uint16(p.params.CMax))

	// Line 9: a new color advances the epoch (saturating at 4).
	if s0.Tick {
		s0.Epoch = min(s0.Epoch+1, 4)
	}
	if s1.Tick {
		s1.Epoch = min(s1.Epoch+1, 4)
	}

	// Line 10: epochs synchronize to the maximum.
	e := max(s0.Epoch, s1.Epoch)
	s0.Epoch, s1.Epoch = e, e

	// Lines 11–15.
	refreshOnEpochEntry(&s0.State, uint8(p.params.Phi))
	refreshOnEpochEntry(&s1.State, uint8(p.params.Phi))

	// Lines 16–22 with symmetric modules.
	switch e {
	case 1:
		p.symQuickElimination(&s0, &s1)
	case 2, 3:
		p.symTournament(&s0, &s1)
	default:
		p.symBackUp(&s0, &s1)
	}

	normalizeSym(&s0)
	normalizeSym(&s1)
	return s0, s1
}

// assignStatus replaces lines 1–6 with the role-free dance of Section 4:
// X×X→Y×Y, Y×Y→X×X, X×Y→A×B (the X side becomes the candidate), and an
// X or Y agent that meets an already-assigned agent joins late as a
// non-lottery candidate, exactly like line 5.
func (p *SymPLL) assignStatus(s0, s1 *SymState) {
	fresh := func(s *SymState) bool { return s.Status == StatusX || s.Status == StatusY }
	switch {
	case s0.Status == StatusX && s1.Status == StatusX:
		s0.Status, s1.Status = StatusY, StatusY
	case s0.Status == StatusY && s1.Status == StatusY:
		s0.Status, s1.Status = StatusX, StatusX
	case s0.Status == StatusX && s1.Status == StatusY:
		makeCandidate(s0)
		makeTimer(s1)
	case s0.Status == StatusY && s1.Status == StatusX:
		makeTimer(s0)
		makeCandidate(s1)
	default:
		if fresh(s0) {
			makeLateJoiner(s0)
		}
		if fresh(s1) {
			makeLateJoiner(s1)
		}
	}
}

func makeCandidate(s *SymState) {
	s.Status, s.LevelQ, s.Done, s.Leader = StatusA, 0, false, true
}

func makeTimer(s *SymState) {
	s.Status, s.Count, s.Leader = StatusB, 0, false
	s.Coin = CoinJ
}

func makeLateJoiner(s *SymState) {
	s.Status, s.LevelQ, s.Done, s.Leader = StatusA, 0, true, false
	s.Coin = CoinJ
}

// coinDance applies the follower coin rules of Section 4: J×J→K×K,
// K×K→J×J, J×K→F0×F1. F0/F1 never change again and flips never consume
// them, so F0 and F1 are minted only in pairs and |F0| = |F1| always.
//
// One completion beyond the paper's sketch (see DESIGN.md): a leader
// meeting a J/K follower toggles that follower's coin. Without it the
// configuration "two leaders + exactly two followers" (reachable for
// n = 4) deadlocks: the two followers only ever dance with each other, in
// lockstep (J,J)→(K,K)→(J,J)→…, so J×K never occurs, no F0/F1 is ever
// minted, and no leader can ever flip a coin again. The toggle is
// role-free, touches only J/K (so |F0| = |F1| is preserved), and breaks
// the followers' lockstep through their independent meetings with leaders.
func coinDance(s0, s1 *SymState) {
	if s0.Leader != s1.Leader {
		f := s0
		if s0.Leader {
			f = s1
		}
		switch f.Coin {
		case CoinJ:
			f.Coin = CoinK
		case CoinK:
			f.Coin = CoinJ
		}
		return
	}
	if s0.Leader || s1.Leader {
		return
	}
	switch {
	case s0.Coin == CoinJ && s1.Coin == CoinJ:
		s0.Coin, s1.Coin = CoinK, CoinK
	case s0.Coin == CoinK && s1.Coin == CoinK:
		s0.Coin, s1.Coin = CoinJ, CoinJ
	case s0.Coin == CoinJ && s1.Coin == CoinK:
		s0.Coin, s1.Coin = CoinF0, CoinF1
	case s0.Coin == CoinK && s1.Coin == CoinJ:
		s0.Coin, s1.Coin = CoinF1, CoinF0
	}
}

// flip reads the partner follower's coin: +1 heads, -1 tails, 0 no coin
// available (partner is J/K or not a coin carrier).
func flip(partner *SymState) int {
	switch partner.Coin {
	case CoinF0:
		return +1
	case CoinF1:
		return -1
	default:
		return 0
	}
}

// symQuickElimination is Algorithm 3 with coin-status flips.
func (p *SymPLL) symQuickElimination(s0, s1 *SymState) {
	if s0.Leader && !s1.Leader && !s0.Done {
		switch flip(s1) {
		case +1:
			s0.LevelQ = min(s0.LevelQ+1, uint16(p.params.LMax))
		case -1:
			s0.Done = true
		}
	}
	if s1.Leader && !s0.Leader && !s1.Done {
		switch flip(s0) {
		case +1:
			s1.LevelQ = min(s1.LevelQ+1, uint16(p.params.LMax))
		case -1:
			s1.Done = true
		}
	}
	qeEpidemic(&s0.State, &s1.State)
}

// symTournament is Algorithm 4 with coin-status flips.
func (p *SymPLL) symTournament(s0, s1 *SymState) {
	phi := uint8(p.params.Phi)
	if s0.Leader && !s1.Leader && s0.Index < phi {
		switch flip(s1) {
		case +1:
			s0.Rand = 2 * s0.Rand
			s0.Index = min(s0.Index+1, phi)
		case -1:
			s0.Rand = 2*s0.Rand + 1
			s0.Index = min(s0.Index+1, phi)
		}
	}
	if s1.Leader && !s0.Leader && s1.Index < phi {
		switch flip(s0) {
		case +1:
			s1.Rand = 2 * s1.Rand
			s1.Index = min(s1.Index+1, phi)
		case -1:
			s1.Rand = 2*s1.Rand + 1
			s1.Index = min(s1.Index+1, phi)
		}
	}
	tournamentEpidemic(&s0.State, &s1.State, phi)
}

// symBackUp is Algorithm 5 with coin-status flips and the symmetric
// replacement of line 58 documented on DuelStatus.
func (p *SymPLL) symBackUp(s0, s1 *SymState) {
	// Lines 51–53: levelB race flips, gated on a fresh tick as in the
	// asymmetric protocol, with heads read from the partner's coin.
	if s0.Tick && s0.Leader && !s1.Leader && flip(s1) == +1 {
		s0.LevelB = min(s0.LevelB+1, uint16(p.params.LMax))
	}
	if s1.Tick && s1.Leader && !s0.Leader && flip(s0) == +1 {
		s1.LevelB = min(s1.LevelB+1, uint16(p.params.LMax))
	}

	// Duel bit acquisition: a pending leader converts its next coin
	// observation into a duel bit.
	if s0.Leader && s0.Duel == DuelPending && !s1.Leader {
		switch flip(s1) {
		case +1:
			s0.Duel = DuelZero
		case -1:
			s0.Duel = DuelOne
		}
	}
	if s1.Leader && s1.Duel == DuelPending && !s0.Leader {
		switch flip(s0) {
		case +1:
			s1.Duel = DuelZero
		case -1:
			s1.Duel = DuelOne
		}
	}

	backupEpidemic(&s0.State, &s1.State)

	// Line 58 replacement. After backupEpidemic two surviving leaders have
	// equal levelB. Identical states must map identically: both become
	// pending (also the re-flip path for equal duel bits). Distinct states
	// resolve deterministically: the lexicographically smaller one yields.
	if s0.Leader && s1.Leader {
		if *s0 == *s1 {
			s0.Duel, s1.Duel = DuelPending, DuelPending
		} else if symLess(*s0, *s1) {
			s0.Leader = false
			s1.Duel = DuelNone
		} else {
			s1.Leader = false
			s0.Duel = DuelNone
		}
	}
}

// symLess is a deterministic total order on SymState used by the symmetric
// tie-break. Any total order works; this one compares the duel bit first so
// that freshly acquired bits are the usual deciders.
func symLess(a, b SymState) bool {
	if a.Duel != b.Duel {
		return a.Duel < b.Duel
	}
	if a.LevelB != b.LevelB {
		return a.LevelB < b.LevelB
	}
	if a.Color != b.Color {
		return a.Color < b.Color
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Rand != b.Rand {
		return a.Rand < b.Rand
	}
	if a.LevelQ != b.LevelQ {
		return a.LevelQ < b.LevelQ
	}
	if a.Index != b.Index {
		return a.Index < b.Index
	}
	if a.Tick != b.Tick {
		return !a.Tick
	}
	if a.Init != b.Init {
		return a.Init < b.Init
	}
	if a.Status != b.Status {
		return a.Status < b.Status
	}
	if a.Done != b.Done {
		return !a.Done
	}
	if a.Coin != b.Coin {
		return a.Coin < b.Coin
	}
	return false
}

// normalizeSym enforces the coin/duel canonical form at the end of every
// transition: exactly the followers carry coins (a just-demoted leader is
// minted a J coin, the paper's "initial status J is assigned"), and only
// leaders carry duel sub-states.
func normalizeSym(s *SymState) {
	if s.Leader {
		// Pristine X/Y agents are always leaders, so this branch also
		// keeps them coin-free.
		s.Coin = CoinNone
		return
	}
	if s.Coin == CoinNone {
		s.Coin = CoinJ
	}
	s.Duel = DuelNone
}
