package core

import (
	"testing"

	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
)

// stabilizationBudget is a deliberately generous step cap: expected
// stabilization is Θ(n log n) interactions, and the fixed seeds make every
// run deterministic, so a pass is reproducible.
func stabilizationBudget(n int) uint64 {
	m := CeilLog2(n) + 1
	return uint64(4000) * uint64(n) * uint64(m)
}

// TestStabilizesAcrossSizes is the headline integration test: PLL elects
// exactly one leader, from n = 1 up through n = 1024, across seeds and on
// both simulation engines, and the resulting configuration is stable.
func TestStabilizesAcrossSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 33, 64, 100, 128, 256, 1024} {
		for seed := uint64(1); seed <= 3; seed++ {
			tc := pptest.TestCase[State]{
				Proto: NewForN(n), N: n, Seed: seed, MaxSteps: stabilizationBudget(n),
			}
			pptest.RunAllEngines(t, tc, "elect",
				func(t *testing.T, tc pptest.TestCase[State], sim pp.Runner[State]) {
					pptest.ElectOne(t, tc, sim)
					if !sim.VerifyStable(uint64(200 * tc.N)) {
						t.Fatal("configuration not stable after election")
					}
				})
		}
	}
}

// TestStabilizesWithExplicitM exercises legal non-canonical m choices
// (the paper only requires m ≥ log₂ n, m = Θ(log n)).
func TestStabilizesWithExplicitM(t *testing.T) {
	const n = 128
	for _, m := range []int{7, 10, 14, 21} {
		params, err := NewParamsWithM(n, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		sim := pp.NewSimulator[State](New(params), n, 42)
		if _, ok := sim.RunUntilLeaders(1, 20*stabilizationBudget(n)); !ok {
			t.Fatalf("m=%d: not stabilized", m)
		}
	}
}

// TestInvariantsHoldThroughoutExecution checks, along a full random run,
// that every agent state stays canonical, the leader count is monotone
// non-increasing, and at least one leader always exists.
func TestInvariantsHoldThroughoutExecution(t *testing.T) {
	const n = 256
	p := NewForN(n)
	sim := pp.NewSimulator[State](p, n, 7)
	prevLeaders := sim.Leaders()
	budget := stabilizationBudget(n)
	for sim.Steps() < budget {
		sim.RunSteps(1000)
		if l := sim.Leaders(); l > prevLeaders {
			t.Fatalf("leader count increased: %d -> %d at step %d", prevLeaders, l, sim.Steps())
		} else {
			prevLeaders = l
		}
		if sim.Leaders() < 1 {
			t.Fatalf("all leaders eliminated at step %d", sim.Steps())
		}
		sim.ForEach(func(id int, s State) {
			if err := p.CheckCanonical(s); err != nil {
				t.Fatalf("agent %d at step %d: %v", id, sim.Steps(), err)
			}
		})
		if sim.Leaders() == 1 && sim.Steps() > budget/4 {
			break
		}
	}
}

// TestLemma4StatusCensus: once every agent has a status, |V_A| ≥ n/2,
// |V_F| ≥ n/2 and |V_B| ≥ 1 (Lemma 4).
func TestLemma4StatusCensus(t *testing.T) {
	const n = 200
	p := NewForN(n)
	for seed := uint64(1); seed <= 5; seed++ {
		sim := pp.NewSimulator[State](p, n, seed)
		// Run until no agent has status X (every agent interacted).
		for {
			sim.RunSteps(uint64(n))
			counts := pp.CensusBy(sim, func(s State) Status { return s.Status })
			if counts[StatusX] == 0 {
				if counts[StatusA] < n/2 {
					t.Fatalf("seed=%d: |V_A| = %d < n/2", seed, counts[StatusA])
				}
				if counts[StatusB] < 1 {
					t.Fatalf("seed=%d: |V_B| = %d < 1", seed, counts[StatusB])
				}
				if followers := n - sim.Leaders(); followers < n/2 {
					t.Fatalf("seed=%d: |V_F| = %d < n/2", seed, followers)
				}
				break
			}
			if sim.Steps() > stabilizationBudget(n) {
				t.Fatalf("seed=%d: agents still unassigned after %d steps", seed, sim.Steps())
			}
		}
	}
}

// TestAdversarialRoundRobinSafety: under a deterministic round-robin
// schedule (not the random scheduler at all), safety must still hold:
// canonical states, at least one leader, monotone leader count.
func TestAdversarialRoundRobinSafety(t *testing.T) {
	const n = 64
	p := NewForN(n)
	sim := pp.NewSimulator[State](p, n, 1)
	var rr pp.RoundRobin
	prev := sim.Leaders()
	for k := 0; k < 200; k++ {
		sim.RunSchedule(&rr, 1000)
		if sim.Leaders() < 1 {
			t.Fatalf("all leaders eliminated under round-robin at step %d", sim.Steps())
		}
		if sim.Leaders() > prev {
			t.Fatalf("leader count increased under round-robin")
		}
		prev = sim.Leaders()
		sim.ForEach(func(id int, s State) {
			if err := p.CheckCanonical(s); err != nil {
				t.Fatalf("agent %d: %v", id, err)
			}
		})
	}
}

// TestAdversarialStarvationSafety: starving most of the population must
// not break safety, and the starved agents must remain untouched.
func TestAdversarialStarvationSafety(t *testing.T) {
	const n = 50
	p := NewForN(n)
	sim := pp.NewSimulator[State](p, n, 1)
	sched := &pp.Starve{Active: 5}
	sim.RunSchedule(sched, 100_000)
	if sim.Leaders() < 1 {
		t.Fatal("all leaders eliminated under starvation schedule")
	}
	init := p.InitialState()
	for i := 5; i < n; i++ {
		if sim.State(i) != init {
			t.Fatalf("starved agent %d changed state: %v", i, sim.State(i))
		}
	}
}

// TestMixedAdversarialThenRandom injects an adversarial prefix and then
// verifies the protocol still stabilizes under the random scheduler — the
// paper's probability-1 guarantee from any reachable configuration.
func TestMixedAdversarialThenRandom(t *testing.T) {
	const n = 64
	p := NewForN(n)
	for _, prefix := range []uint64{100, 5_000, 50_000} {
		sim := pp.NewSimulator[State](p, n, 3)
		var rr pp.RoundRobin
		sim.RunSchedule(&rr, prefix)
		if _, ok := sim.RunUntilLeaders(1, sim.Steps()+4*stabilizationBudget(n)); !ok {
			t.Fatalf("prefix=%d: no recovery to a unique leader", prefix)
		}
		if !sim.VerifyStable(uint64(100 * n)) {
			t.Fatalf("prefix=%d: unstable after recovery", prefix)
		}
	}
}

// TestRecoveryFromForcedDesync uses a deliberately undersized m (violating
// m ≥ log₂ n) so the count-up clock ticks far too fast, synchronization
// fails and the run is forced through the BackUp fallback. The protocol
// must still elect exactly one leader (Lemmas 9–10).
func TestRecoveryFromForcedDesync(t *testing.T) {
	const n = 64
	params := NewParamsUnchecked(n, 1) // cmax = 41, lmax = 5, Φ = 0
	p := New(params)
	for seed := uint64(1); seed <= 3; seed++ {
		sim := pp.NewSimulator[State](p, n, seed)
		// BackUp alone may need O(n) parallel time: budget n² parallel.
		budget := uint64(n) * uint64(n) * uint64(n) * 4
		if _, ok := sim.RunUntilLeaders(1, budget); !ok {
			t.Fatalf("seed=%d: desynchronized run did not stabilize (%d leaders)",
				seed, sim.Leaders())
		}
		if !sim.VerifyStable(uint64(100 * n)) {
			t.Fatalf("seed=%d: unstable after desynchronized election", seed)
		}
	}
}

// TestAllAgentsReachEpochFour verifies Lemma 9's qualitative content: every
// agent eventually enters the fourth epoch.
func TestAllAgentsReachEpochFour(t *testing.T) {
	const n = 128
	p := NewForN(n)
	sim := pp.NewSimulator[State](p, n, 11)
	budget := 4 * stabilizationBudget(n)
	for {
		sim.RunSteps(uint64(n))
		counts := pp.CensusBy(sim, func(s State) uint8 { return s.Epoch })
		if counts[4] == n {
			return
		}
		if sim.Steps() > budget {
			t.Fatalf("epoch census after %d steps: %v", sim.Steps(), counts)
		}
	}
}

// TestDistinctStatesWithinLemma3Bound: the number of distinct states ever
// observed in a long execution must stay within the Table 3 state count.
func TestDistinctStatesWithinLemma3Bound(t *testing.T) {
	const n = 512
	p := NewForN(n)
	sim := pp.NewSimulator[State](p, n, 13)
	sim.TrackStates()
	sim.RunUntilLeaders(1, stabilizationBudget(n))
	sim.RunSteps(200_000) // keep exploring the stable regime
	bound := p.Params().StateSpaceSize()
	if got := sim.DistinctStates(); got > bound {
		t.Fatalf("observed %d distinct states, Table 3 bound is %d", got, bound)
	}
	if got := sim.DistinctStates(); got < 10 {
		t.Fatalf("implausibly few distinct states observed: %d", got)
	}
}

// TestDeterministicElection: the full election is reproducible from the
// seed.
func TestDeterministicElection(t *testing.T) {
	const n = 128
	p := NewForN(n)
	a := pp.NewSimulator[State](p, n, 99)
	b := pp.NewSimulator[State](p, n, 99)
	sa, _ := a.RunUntilLeaders(1, stabilizationBudget(n))
	sb, _ := b.RunUntilLeaders(1, stabilizationBudget(n))
	if sa != sb {
		t.Fatalf("stabilization steps differ: %d vs %d", sa, sb)
	}
	for i := 0; i < n; i++ {
		if a.State(i) != b.State(i) {
			t.Fatalf("agent %d differs across replays", i)
		}
	}
}
