package core

import (
	"popproto/internal/pp"
)

// PLL is the asymmetric protocol of Algorithm 1. The zero value is not
// usable; construct with New. A PLL value is immutable after construction
// and therefore safe to share across concurrent simulators.
type PLL struct {
	params Params
}

// New returns the protocol for the given parameters. It panics if the
// parameters are internally inconsistent (see Params.Validate); use the
// Params constructors to build legal values.
func New(params Params) *PLL {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &PLL{params: params}
}

// NewForN is shorthand for New(NewParams(n)).
func NewForN(n int) *PLL { return New(NewParams(n)) }

// Params returns the protocol's parameters.
func (p *PLL) Params() Params { return p.params }

// Name implements pp.Protocol.
func (p *PLL) Name() string { return "PLL" }

// InitialState implements pp.Protocol: every agent starts as a leader with
// status X in epoch 1 and color 0 (Table 3, "Initial values").
func (p *PLL) InitialState() State {
	return State{Leader: true, Status: StatusX, Epoch: 1, Init: 1}
}

// Output implements pp.Protocol.
func (p *PLL) Output(s State) pp.Role {
	if s.Leader {
		return pp.Leader
	}
	return pp.Follower
}

// Transition implements pp.Protocol following Algorithm 1 line by line:
// status assignment (lines 1–6), tick reset (7), CountUp (8), tick-driven
// epoch advance (9), epoch max-merge (10), per-group initialization on
// epoch entry (11–15), and module dispatch on the shared epoch (16–22).
func (p *PLL) Transition(a0, a1 State) (State, State) {
	// Lines 1–6: status assignment.
	switch {
	case a0.Status == StatusX && a1.Status == StatusX:
		// Initiator becomes leader candidate, responder becomes timer.
		a0.Status, a0.LevelQ, a0.Done, a0.Leader = StatusA, 0, false, true
		a1.Status, a1.Count, a1.Leader = StatusB, 0, false
	case a0.Status == StatusX:
		// Late joiner: candidate, but excluded from the lottery.
		a0.Status, a0.LevelQ, a0.Done, a0.Leader = StatusA, 0, true, false
	case a1.Status == StatusX:
		a1.Status, a1.LevelQ, a1.Done, a1.Leader = StatusA, 0, true, false
	}

	// Line 7: ticks are per-interaction flags.
	a0.Tick, a1.Tick = false, false

	// Line 8: CountUp advances timers and spreads new colors.
	countUp(&a0, &a1, uint16(p.params.CMax))

	// Line 9: a new color advances the epoch (saturating at 4).
	if a0.Tick {
		a0.Epoch = min(a0.Epoch+1, 4)
	}
	if a1.Tick {
		a1.Epoch = min(a1.Epoch+1, 4)
	}

	// Line 10: epochs synchronize to the maximum.
	e := max(a0.Epoch, a1.Epoch)
	a0.Epoch, a1.Epoch = e, e

	// Lines 11–15: initialize the new group's variables on epoch entry.
	refreshOnEpochEntry(&a0, uint8(p.params.Phi))
	refreshOnEpochEntry(&a1, uint8(p.params.Phi))

	// Lines 16–22: after line 10 both agents share the same epoch, so the
	// dispatch of the pseudo code reduces to a switch on e.
	switch e {
	case 1:
		p.quickElimination(&a0, &a1)
	case 2, 3:
		p.tournament(&a0, &a1)
	default:
		p.backUp(&a0, &a1)
	}
	return a0, a1
}
