package core

import (
	"errors"
	"testing"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1023, 10}, {1024, 10}, {1025, 11}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNewParamsDerivedConstants(t *testing.T) {
	cases := []struct {
		n, m, lmax, cmax, phi int
	}{
		// Φ = ⌈(2/3)·lg m⌉.
		{2, 1, 5, 41, 0},
		{4, 2, 10, 82, 1},    // lg 2 = 1 → ⌈2/3⌉ = 1
		{256, 8, 40, 328, 2}, // lg 8 = 3 → ⌈2⌉ = 2
		{1024, 10, 50, 410, 3},
		{1 << 16, 16, 80, 656, 3},   // lg 16 = 4 → ⌈8/3⌉ = 3
		{1 << 20, 20, 100, 820, 3},  // lg 20 ≈ 4.32 → ⌈2.88⌉ = 3
		{1 << 30, 30, 150, 1230, 4}, // lg 30 ≈ 4.91 → ⌈3.27⌉ = 4
	}
	for _, c := range cases {
		p := NewParams(c.n)
		if p.N != c.n || p.M != c.m || p.LMax != c.lmax || p.CMax != c.cmax || p.Phi != c.phi {
			t.Errorf("NewParams(%d) = %+v, want m=%d lmax=%d cmax=%d phi=%d",
				c.n, p, c.m, c.lmax, c.cmax, c.phi)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("NewParams(%d).Validate() = %v", c.n, err)
		}
	}
}

func TestNewParamsSatisfiesPaperRequirement(t *testing.T) {
	// m ≥ log₂ n must hold for every n.
	for _, n := range []int{1, 2, 3, 5, 7, 100, 1000, 1 << 15} {
		p := NewParams(n)
		if p.M < CeilLog2(n) {
			t.Errorf("NewParams(%d): m = %d < ⌈lg n⌉ = %d", n, p.M, CeilLog2(n))
		}
		if p.M < 1 {
			t.Errorf("NewParams(%d): m = %d < 1", n, p.M)
		}
	}
}

func TestNewParamsPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewParams(0) did not panic")
		}
	}()
	NewParams(0)
}

func TestNewParamsWithM(t *testing.T) {
	p, err := NewParamsWithM(1024, 12)
	if err != nil {
		t.Fatalf("NewParamsWithM(1024, 12) error: %v", err)
	}
	if p.M != 12 || p.LMax != 60 || p.CMax != 492 {
		t.Fatalf("NewParamsWithM(1024, 12) = %+v", p)
	}

	if _, err := NewParamsWithM(1024, 9); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("undersized m accepted: err = %v", err)
	}
	if _, err := NewParamsWithM(0, 5); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("n = 0 accepted: err = %v", err)
	}
	if _, err := NewParamsWithM(4, 0); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("m = 0 accepted: err = %v", err)
	}
}

func TestNewParamsUnchecked(t *testing.T) {
	// Deliberately undersized m is the failure-injection path.
	p := NewParamsUnchecked(1024, 1)
	if p.M != 1 || p.CMax != 41 || p.LMax != 5 || p.Phi != 0 {
		t.Fatalf("NewParamsUnchecked(1024, 1) = %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewParamsUnchecked(1, 0) did not panic")
		}
	}()
	NewParamsUnchecked(1, 0)
}

func TestValidateRejectsCorruptParams(t *testing.T) {
	good := NewParams(256)
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative n", func(p *Params) { p.N = -1 }},
		{"zero m", func(p *Params) { p.M = 0 }},
		{"wrong lmax", func(p *Params) { p.LMax++ }},
		{"wrong cmax", func(p *Params) { p.CMax-- }},
		{"negative phi", func(p *Params) { p.Phi = -1 }},
	}
	for _, c := range cases {
		p := good
		c.mutate(&p)
		if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidParams", c.name, err)
		}
	}
}

func TestRandSpace(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{2, 1},        // Φ = 0
		{4, 2},        // Φ = 1
		{256, 4},      // Φ = 2
		{1024, 8},     // Φ = 3
		{1 << 30, 16}, // Φ = 4
	} {
		if got := NewParams(c.n).RandSpace(); got != c.want {
			t.Errorf("RandSpace(n=%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestStateSpaceSizeIsLogarithmic verifies Lemma 3's shape: the Table 3
// state count grows linearly in m (hence logarithmically in n). Doubling m
// must grow the count by a factor well under, say, 3 once m is nontrivial.
func TestStateSpaceSizeIsLogarithmic(t *testing.T) {
	prev := 0
	for m := 4; m <= 4096; m *= 2 {
		p := NewParamsUnchecked(1<<uint(min(m, 30)), m)
		size := p.StateSpaceSize()
		if size <= 0 {
			t.Fatalf("m=%d: non-positive state count %d", m, size)
		}
		if prev > 0 {
			ratio := float64(size) / float64(prev)
			if ratio > 3.0 {
				t.Fatalf("m=%d: state count ratio %.2f suggests super-linear growth", m, ratio)
			}
			if ratio < 1.0 {
				t.Fatalf("m=%d: state count not monotone (ratio %.2f)", m, ratio)
			}
		}
		prev = size
	}
}

func TestStateSpaceSizeDominatedByLinearTerms(t *testing.T) {
	// For the canonical m = ⌈lg n⌉ the count must stay within a modest
	// constant times m, as Lemma 3 promises O(log n) states.
	for _, n := range []int{16, 256, 4096, 1 << 16, 1 << 20} {
		p := NewParams(n)
		perM := float64(p.StateSpaceSize()) / float64(p.M)
		if perM > 100000 {
			t.Errorf("n=%d: states/m = %.0f is implausibly large", n, perM)
		}
	}
}
