package core

import (
	"strings"
	"testing"

	"popproto/internal/pp"
)

// TestCountUpIncrement: timers advance exactly one count per interaction
// they participate in.
func TestCountUpIncrement(t *testing.T) {
	p := testPLL()
	timer := bAgent(1, 0, 7)
	other := a1Follower(0)
	got, _ := p.Transition(timer, other)
	if got.Count != 8 {
		t.Fatalf("count = %d, want 8", got.Count)
	}
	_, got = p.Transition(other, timer)
	if got.Count != 8 {
		t.Fatalf("responder count = %d, want 8", got.Count)
	}
}

// TestCountUpBothTimers: two timers advance independently, and both can
// wrap in the same interaction (then neither adopts: equal new colors).
func TestCountUpBothTimers(t *testing.T) {
	p := testPLL()
	cmax := uint16(testParams.CMax)
	a, b := p.Transition(bAgent(1, 0, cmax-1), bAgent(1, 0, cmax-1))
	if a.Color != 1 || b.Color != 1 {
		t.Fatalf("colors = %d, %d, want 1, 1", a.Color, b.Color)
	}
	if a.Count != 0 || b.Count != 0 {
		t.Fatalf("counts = %d, %d, want 0, 0", a.Count, b.Count)
	}
	if a.Epoch != 2 || b.Epoch != 2 {
		t.Fatalf("epochs = %d, %d, want 2, 2", a.Epoch, b.Epoch)
	}
}

// TestCountUpNoAdoptionAcrossTwoColors: colors two apart (0 vs 2) mean the
// *other* agent is one ahead mod 3 (2+1 = 0), so adoption flows 2 → 0.
func TestCountUpNoAdoptionAcrossTwoColors(t *testing.T) {
	p := testPLL()
	zero := bAgent(4, 0, 3)
	two := bAgent(4, 2, 3)
	a, b := p.Transition(zero, two)
	// 0 = 2+1 (mod 3): the color-2 agent adopts color 0.
	if b.Color != 0 {
		t.Fatalf("color-2 agent ended with color %d, want 0", b.Color)
	}
	if a.Color != 0 {
		t.Fatalf("color-0 agent changed to %d", a.Color)
	}
	if b.Count != 0 {
		t.Fatalf("adopting timer kept count %d", b.Count)
	}
}

// TestCountUpAdoptionResetsTimerOnly: a non-timer adopter keeps no count.
func TestCountUpAdoptionResetsTimerOnly(t *testing.T) {
	p := testPLL()
	behind := a1Follower(2)
	ahead := bAgent(2, 1, 9)
	got, _ := p.Transition(behind, ahead)
	if got.Color != 1 {
		t.Fatalf("candidate did not adopt: %v", got)
	}
	if got.Count != 0 {
		t.Fatalf("candidate acquired a count: %v", got)
	}
}

// TestEpochSaturatesAtFour: ticks past epoch 4 do not advance further.
func TestEpochSaturatesAtFour(t *testing.T) {
	p := testPLL()
	timer := bAgent(4, 0, uint16(testParams.CMax-1))
	cand := a4Leader(3)
	c, b := p.Transition(cand, timer)
	if b.Epoch != 4 || c.Epoch != 4 {
		t.Fatalf("epochs = %d, %d, want 4, 4", c.Epoch, b.Epoch)
	}
	if b.Color != 1 || c.Color != 1 {
		t.Fatalf("colors = %d, %d, want 1, 1 (clock keeps cycling)", c.Color, b.Color)
	}
	// The candidate's levelB must survive (no re-initialization at the
	// epoch cap: epoch did not change).
	if c.LevelB == 0 && !c.Leader {
		t.Fatalf("epoch-4 candidate was wrongly refreshed: %v", c)
	}
}

// TestColorCycleContinuesAfterEpochFour: the synchronization clock keeps
// producing color waves forever, which the BackUp module's tick-gated
// flips depend on. Verified over a real run.
func TestColorCycleContinuesAfterEpochFour(t *testing.T) {
	const n = 64
	p := NewForN(n)
	sim := pp.NewSimulator[State](p, n, 5)

	// Drive everyone to epoch 4.
	budget := 4 * stabilizationBudget(n)
	for {
		sim.RunSteps(uint64(n))
		counts := pp.CensusBy(sim, func(s State) uint8 { return s.Epoch })
		if counts[4] == n {
			break
		}
		if sim.Steps() > budget {
			t.Fatal("population never reached epoch 4")
		}
	}

	// Observe at least two further color changes.
	seen := map[uint8]bool{}
	start := sim.Steps()
	for len(seen) < 3 {
		sim.RunSteps(uint64(n))
		sim.ForEach(func(_ int, s State) { seen[s.Color] = true })
		if sim.Steps()-start > budget {
			t.Fatalf("clock stalled after epoch 4: colors seen %v", seen)
		}
	}
}

// TestTickClearedAtNextInteraction: a raised tick must not leak into the
// agent's next interaction (line 7).
func TestTickClearedAtNextInteraction(t *testing.T) {
	p := testPLL()
	// Produce a ticked agent.
	follower := a4Follower(0)
	follower.Color = 1
	leader := a4Leader(0)
	ticked, _ := p.Transition(leader, follower)
	if !ticked.Tick {
		t.Fatalf("no tick raised: %v", ticked)
	}
	// Its next interaction resets the flag before any module reads it, so
	// a second levelB gain requires a fresh color change.
	again, _ := p.Transition(ticked, a4Follower(1))
	if again.LevelB != 1 {
		t.Fatalf("levelB = %d, want 1 (no double-count from a stale tick)", again.LevelB)
	}
	if again.Tick {
		t.Fatalf("tick still raised after reset interaction: %v", again)
	}
}

// TestStatusStringAndGroupString: exercise the diagnostic stringers.
func TestStatusStringAndGroupString(t *testing.T) {
	cases := map[string]string{
		StatusX.String():  "X",
		StatusA.String():  "A",
		StatusB.String():  "B",
		StatusY.String():  "Y",
		GroupX.String():   "V_X",
		GroupB.String():   "V_B",
		GroupA1.String():  "V_A∩V_1",
		GroupA23.String(): "V_A∩(V_2∪V_3)",
		GroupA4.String():  "V_A∩V_4",
		GroupY.String():   "V_Y",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer: got %q want %q", got, want)
		}
	}
	if s := Status(99).String(); s != "Status(99)" {
		t.Errorf("unknown status renders as %q", s)
	}
	if g := Group(99).String(); g != "Group(99)" {
		t.Errorf("unknown group renders as %q", g)
	}
}

// TestStateString covers the per-group renderings.
func TestStateString(t *testing.T) {
	p := testPLL()
	for _, s := range []State{
		p.InitialState(),
		bAgent(2, 1, 17),
		a1Leader(3, false),
		a23Follower(2, 5),
		a4Leader(9),
	} {
		out := s.String()
		if out == "" {
			t.Fatalf("empty rendering for %#v", s)
		}
	}
	ticked := a4Leader(1)
	ticked.Tick = true
	if got := ticked.String(); !strings.Contains(got, "tick") {
		t.Errorf("tick missing from %q", got)
	}
	if got := bAgent(1, 0, 7).String(); !strings.Contains(got, "count=7") {
		t.Errorf("count missing from %q", got)
	}
	if got := a23Leader(2, 3, 1).String(); !strings.Contains(got, "rand=3") {
		t.Errorf("rand missing from %q", got)
	}
}

// TestGroupClassification maps states to Table 3 groups.
func TestGroupClassification(t *testing.T) {
	p := testPLL()
	cases := []struct {
		s    State
		want Group
	}{
		{p.InitialState(), GroupX},
		{bAgent(1, 0, 0), GroupB},
		{bAgent(4, 2, 10), GroupB},
		{a1Leader(0, false), GroupA1},
		{a23Leader(2, 0, 0), GroupA23},
		{a23Follower(3, 1), GroupA23},
		{a4Follower(5), GroupA4},
	}
	for _, c := range cases {
		if got := c.s.Group(); got != c.want {
			t.Errorf("%v classified as %v, want %v", c.s, got, c.want)
		}
	}
}
