package core

import (
	"popproto/internal/rng"
)

// stateGen produces random states that satisfy CheckCanonical, used to
// drive property tests over a far larger slice of the state space than
// simulation prefixes alone would visit.
type stateGen struct {
	params Params
}

func newStateGen(p Params) *stateGen { return &stateGen{params: p} }

// state derives a canonical asymmetric state deterministically from seed.
func (g *stateGen) state(seed uint64) State {
	r := rng.New(seed)
	switch r.Intn(5) {
	case 0:
		return State{Leader: true, Status: StatusX, Epoch: 1, Init: 1}
	case 1:
		e := uint8(1 + r.Intn(4))
		return State{
			Status: StatusB, Epoch: e, Init: e,
			Color: uint8(r.Intn(3)), Tick: r.Bool(),
			Count: uint16(r.Intn(g.params.CMax)),
		}
	case 2:
		s := State{
			Status: StatusA, Epoch: 1, Init: 1,
			Color: uint8(r.Intn(3)), Tick: r.Bool(),
			LevelQ: uint16(r.Intn(g.params.LMax + 1)),
		}
		if r.Bool() {
			s.Leader = true
			s.Done = r.Bool()
		} else {
			s.Done = true // followers in V_A∩V_1 are always done
		}
		return s
	case 3:
		e := uint8(2 + r.Intn(2))
		s := State{
			Status: StatusA, Epoch: e, Init: e,
			Color: uint8(r.Intn(3)), Tick: r.Bool(),
		}
		if r.Bool() && g.params.Phi > 0 {
			s.Leader = true
			s.Index = uint8(r.Intn(g.params.Phi + 1))
			// A flipping leader's nonce has exactly Index bits so far.
			s.Rand = uint16(r.Uint64n(uint64(1) << s.Index))
		} else {
			s.Leader = r.Bool() && g.params.Phi == 0
			if !s.Leader {
				s.Index = uint8(g.params.Phi)
			}
			s.Rand = uint16(r.Intn(g.params.RandSpace()))
		}
		return s
	default:
		return State{
			Leader: r.Bool(), Status: StatusA, Epoch: 4, Init: 4,
			Color: uint8(r.Intn(3)), Tick: r.Bool(),
			LevelB: uint16(r.Intn(g.params.LMax + 1)),
		}
	}
}

// symState derives a canonical symmetric state deterministically from seed.
func (g *stateGen) symState(seed uint64) SymState {
	r := rng.New(seed)
	if r.Intn(8) == 0 {
		status := StatusX
		if r.Bool() {
			status = StatusY
		}
		return SymState{State: State{Leader: true, Status: status, Epoch: 1, Init: 1}}
	}
	s := SymState{State: g.state(seed ^ 0x9e3779b97f4a7c15)}
	for s.Status == StatusX { // re-roll pristine bases: handled above
		s.State = g.state(r.Uint64())
	}
	if s.Leader {
		if s.Epoch == 4 {
			s.Duel = DuelStatus(r.Intn(4))
		}
	} else {
		s.Coin = CoinStatus(1 + r.Intn(4))
	}
	return s
}
