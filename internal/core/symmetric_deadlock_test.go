package core

import (
	"testing"

	"popproto/internal/pp"
)

// TestFourAgentCoinDeadlockRegression reconstructs the configuration that
// deadlocks the paper's literal Section 4 sketch: n = 4 with two leaders
// and exactly two followers. The two followers then only ever dance with
// each other, in lockstep (J,J)→(K,K)→(J,J)→…, so J×K never occurs, no
// F0/F1 coin is ever minted, and no leader can ever flip a coin — the
// election would freeze with two leaders forever. The leader→follower J/K
// toggle documented in DESIGN.md breaks the lockstep; this test pins the
// construction and verifies the election completes.
func TestFourAgentCoinDeadlockRegression(t *testing.T) {
	const n = 4
	p := NewSymmetric(NewParams(n))
	sim := pp.NewSimulator[SymState](p, n, 1)

	// Drive the exact adversarial prefix: pair (0,1) and (2,3) into Y×Y,
	// bounce (0,1) back to X×X, then cross-pair to mint two candidate
	// leaders and two timer followers.
	sim.Interact(0, 1) // X×X → Y×Y
	sim.Interact(2, 3) // X×X → Y×Y
	sim.Interact(0, 1) // Y×Y → X×X
	sim.Interact(0, 2) // X×Y → A×B
	sim.Interact(1, 3) // X×Y → A×B

	if sim.Leaders() != 2 {
		t.Fatalf("construction broken: %d leaders, want 2", sim.Leaders())
	}
	for _, id := range []int{2, 3} {
		s := sim.State(id)
		if s.Leader || s.Status != StatusB || s.Coin != CoinJ {
			t.Fatalf("construction broken: agent %d = %v, want B follower with J", id, s)
		}
	}

	// Under the literal paper sketch this configuration never elects.
	// With the J/K toggle it must.
	if _, ok := sim.RunUntilLeaders(1, 50_000_000); !ok {
		t.Fatalf("n=4 two-leader/two-follower configuration did not elect (%d leaders)",
			sim.Leaders())
	}
	if !sim.VerifyStable(5_000) {
		t.Fatal("unstable after election")
	}
}

// TestCoinToggle verifies the completion rule in isolation: a leader
// toggles a J/K follower's coin and leaves F0/F1 untouched.
func TestCoinToggle(t *testing.T) {
	p := testSym()
	cases := []struct {
		before, after CoinStatus
	}{
		{CoinJ, CoinK},
		{CoinK, CoinJ},
		{CoinF0, CoinF0},
		{CoinF1, CoinF1},
	}
	for _, c := range cases {
		_, f := p.Transition(symA1Leader(0, true), symA1Follower(0, c.before))
		if f.Coin != c.after {
			t.Errorf("leader×follower(%v): coin = %v, want %v", c.before, f.Coin, c.after)
		}
		// Mirrored order.
		f2, _ := p.Transition(symA1Follower(0, c.before), symA1Leader(0, true))
		if f2.Coin != c.after {
			t.Errorf("follower(%v)×leader: coin = %v, want %v", c.before, f2.Coin, c.after)
		}
	}
}
