package core

// backUp implements Algorithm 5 (run while both agents are in epoch 4),
// the safety net that elects a unique leader with probability 1 from any
// reachable configuration, in O(log² n) expected parallel time when
// synchronization succeeded and O(n) otherwise (Lemmas 10–12).
//
// Each leader increments its levelB with probability 1/2 once per tick
// window (a fresh tick raised in this very interaction, partner a
// follower, initiator side = heads). Ties between surviving equal-level
// leaders are broken by the classic direct duel of Angluin et al.
// (line 58: the responder yields).
func (p *PLL) backUp(a0, a1 *State) {
	// Lines 51–53: the level race coin flip. Only the initiator can flip
	// (heads); a tick spent as responder is a tail and does nothing.
	if a0.Tick && a0.Leader && !a1.Leader {
		a0.LevelB = min(a0.LevelB+1, uint16(p.params.LMax))
	}

	backupEpidemic(a0, a1)

	// Line 58: direct duel between equal-level leaders.
	if a0.Leader && a1.Leader {
		a1.Leader = false
	}
}

// backupEpidemic is lines 54–57, shared by both protocol variants: a
// one-way epidemic of the maximum levelB through V_A; anyone behind adopts
// the value, losing leadership if it had any. The leader holding the global
// maximum levelB can never be eliminated here, so at least one leader
// always survives.
func backupEpidemic(a0, a1 *State) {
	if a0.Status != StatusA || a1.Status != StatusA {
		return
	}
	switch {
	case a0.LevelB < a1.LevelB:
		a0.LevelB = a1.LevelB
		a0.Leader = false
	case a1.LevelB < a0.LevelB:
		a1.LevelB = a0.LevelB
		a1.Leader = false
	}
}
