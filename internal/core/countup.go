package core

// countUp implements Algorithm 2, shared verbatim by the asymmetric and
// symmetric protocols (it is role-free). Timer agents (V_B) advance their
// count-up timers (lines 23–29): a wrap of count gets the agent a new color
// and raises its tick. A color difference of one (mod 3) between the two
// participants then spreads the newer color by one-way epidemic
// (lines 30–34): the agent behind adopts it, raises its tick and — if it is
// a timer — restarts its count.
func countUp(a0, a1 *State, cmax uint16) {
	// Lines 23–29: advance timers.
	for _, a := range [2]*State{a0, a1} {
		if a.Status != StatusB {
			continue
		}
		a.Count++
		if a.Count >= cmax {
			a.Count = 0
			a.Color = (a.Color + 1) % 3
			a.Tick = true
		}
	}

	// Lines 30–34: spread a newer color. At most one direction can match:
	// colors are mod 3, so the two conditions cannot hold simultaneously.
	switch {
	case a1.Color == (a0.Color+1)%3:
		a0.Color = a1.Color
		a0.Tick = true
		if a0.Status == StatusB {
			a0.Count = 0
		}
	case a0.Color == (a1.Color+1)%3:
		a1.Color = a0.Color
		a1.Tick = true
		if a1.Status == StatusB {
			a1.Count = 0
		}
	}
}

// refreshOnEpochEntry performs lines 11–15: when an agent has entered a new
// epoch it initializes the additional variables of its new group. The
// previous group's variables are conceptually discarded (Table 3 partitions
// the additional variables by group); we zero them so that State stays in
// canonical form and the state count of Lemma 3 is preserved.
//
// The one deliberate deviation from the literal pseudo code is recorded in
// DESIGN.md: followers enter V_A∩(V_2∪V_3) with index = Φ, mirroring how
// line 5 gives late joiners done = true in V_A∩V_1. Without it, followers
// would never satisfy the index = Φ guard of line 47 and the Tournament
// nonce epidemic could not propagate through V_A as the analysis
// (Section 3.2.4) requires.
func refreshOnEpochEntry(a *State, phi uint8) {
	if a.Epoch <= a.Init {
		return
	}
	if a.Status == StatusA {
		a.LevelQ, a.Done = 0, false
		a.Rand, a.Index = 0, 0
		a.LevelB = 0
		if (a.Epoch == 2 || a.Epoch == 3) && !a.Leader {
			a.Index = phi
		}
	}
	a.Init = a.Epoch
}
