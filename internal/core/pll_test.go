package core

import (
	"testing"
	"testing/quick"

	"popproto/internal/pp"
)

// Test fixtures: canonical states for a medium population. n = 1024 gives
// m = 10, lmax = 50, cmax = 410, Φ = 3.
var testParams = NewParams(1024)

func testPLL() *PLL { return New(testParams) }

func a1Leader(levelQ uint16, done bool) State {
	return State{Leader: true, Status: StatusA, Epoch: 1, Init: 1, LevelQ: levelQ, Done: done}
}

func a1Follower(levelQ uint16) State {
	return State{Status: StatusA, Epoch: 1, Init: 1, LevelQ: levelQ, Done: true}
}

func bAgent(epoch uint8, color uint8, count uint16) State {
	return State{Status: StatusB, Epoch: epoch, Init: epoch, Color: color, Count: count}
}

func a23Leader(epoch uint8, rand uint16, index uint8) State {
	return State{Leader: true, Status: StatusA, Epoch: epoch, Init: epoch, Rand: rand, Index: index}
}

func a23Follower(epoch uint8, rand uint16) State {
	return State{Status: StatusA, Epoch: epoch, Init: epoch, Rand: rand, Index: uint8(testParams.Phi)}
}

func a4Leader(levelB uint16) State {
	return State{Leader: true, Status: StatusA, Epoch: 4, Init: 4, LevelB: levelB}
}

func a4Follower(levelB uint16) State {
	return State{Status: StatusA, Epoch: 4, Init: 4, LevelB: levelB}
}

func TestInitialState(t *testing.T) {
	p := testPLL()
	s := p.InitialState()
	want := State{Leader: true, Status: StatusX, Epoch: 1, Init: 1}
	if s != want {
		t.Fatalf("InitialState = %v, want %v", s, want)
	}
	if p.Output(s) != pp.Leader {
		t.Fatal("initial state must output L")
	}
	if err := p.CheckCanonical(s); err != nil {
		t.Fatal(err)
	}
}

// TestFirstContact verifies lines 1–3 plus the same-interaction effects:
// the initiator becomes a candidate leader and — because the module runs in
// the same interaction — immediately scores one lottery head; the responder
// becomes a timer follower whose count has already advanced once.
func TestFirstContact(t *testing.T) {
	p := testPLL()
	init := p.InitialState()
	a0, a1 := p.Transition(init, init)

	if a0.Status != StatusA || !a0.Leader || a0.Done {
		t.Fatalf("initiator after first contact: %v", a0)
	}
	if a0.LevelQ != 1 {
		t.Fatalf("initiator levelQ = %d, want 1 (heads in the same interaction)", a0.LevelQ)
	}
	if a1.Status != StatusB || a1.Leader {
		t.Fatalf("responder after first contact: %v", a1)
	}
	if a1.Count != 1 {
		t.Fatalf("responder count = %d, want 1 (CountUp ran in the same interaction)", a1.Count)
	}
	for _, s := range []State{a0, a1} {
		if err := p.CheckCanonical(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLateJoiner verifies line 5: an X agent meeting an assigned agent
// becomes a non-lottery candidate follower.
func TestLateJoiner(t *testing.T) {
	p := testPLL()
	init := p.InitialState()

	for _, partner := range []State{a1Leader(3, false), bAgent(1, 0, 7)} {
		// The joiner may immediately copy levelQ knowledge through the
		// same-interaction epidemic, so only status/role/done are fixed.
		x, q := p.Transition(init, partner)
		if x.Status != StatusA || x.Leader || !x.Done {
			t.Fatalf("late joiner (initiator side) = %v", x)
		}
		_ = q

		q2, x2 := p.Transition(partner, init)
		if x2.Status != StatusA || x2.Leader || !x2.Done {
			t.Fatalf("late joiner (responder side) = %v", x2)
		}
		_ = q2
	}
}

// TestCountUpWrap verifies lines 23–29 and the epoch machinery: a timer at
// count = cmax−1 wraps, gets a new color, ticks, and advances its epoch;
// its partner adopts the new color through lines 30–34 and advances too.
func TestCountUpWrap(t *testing.T) {
	p := testPLL()
	timer := bAgent(1, 0, uint16(testParams.CMax-1))
	cand := a1Leader(2, true)

	c, b := p.Transition(cand, timer)

	if b.Count != 0 {
		t.Fatalf("timer count = %d, want 0 after wrap", b.Count)
	}
	if b.Color != 1 {
		t.Fatalf("timer color = %d, want 1", b.Color)
	}
	if b.Epoch != 2 {
		t.Fatalf("timer epoch = %d, want 2", b.Epoch)
	}
	if c.Color != 1 {
		t.Fatalf("partner color = %d, want 1 (adopted)", c.Color)
	}
	if c.Epoch != 2 {
		t.Fatalf("partner epoch = %d, want 2", c.Epoch)
	}
	// The candidate entered V_A∩V_2: QuickElimination variables cleared,
	// Tournament variables initialized.
	if c.LevelQ != 0 || c.Done {
		t.Fatalf("partner kept stale QE variables: %v", c)
	}
	// The leader entered V_A∩V_2 and, in this same interaction, already
	// flipped its first Tournament coin against the timer follower
	// (initiator side ⇒ bit 0).
	if c.Rand != 0 || c.Index != 1 {
		t.Fatalf("partner Tournament variables = rand %d index %d, want 0,1", c.Rand, c.Index)
	}
	for _, s := range []State{c, b} {
		if err := p.CheckCanonical(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestColorAdoption verifies lines 30–34 in isolation: the agent one color
// behind adopts, ticks, advances its epoch; the ahead agent follows via the
// epoch max-merge of line 10.
func TestColorAdoption(t *testing.T) {
	p := testPLL()
	behind := a1Follower(0)
	var ahead State
	ahead = a1Follower(0)
	ahead.Color = 1
	ahead.Epoch, ahead.Init = 2, 2
	ahead.Done, ahead.LevelQ = false, 0
	ahead.Index = uint8(testParams.Phi) // follower in V_A∩V_2

	got, gotAhead := p.Transition(behind, ahead)
	if got.Color != 1 {
		t.Fatalf("behind agent color = %d, want 1", got.Color)
	}
	if got.Epoch != 2 || gotAhead.Epoch != 2 {
		t.Fatalf("epochs = %d, %d, want 2, 2", got.Epoch, gotAhead.Epoch)
	}
	if got.Index != uint8(testParams.Phi) {
		t.Fatalf("follower entered V_A∩V_2 with index %d, want Φ=%d", got.Index, testParams.Phi)
	}
}

// TestColorAdoptionWrapsModulo verifies color 2 → 0 adoption.
func TestColorAdoptionWrapsModulo(t *testing.T) {
	p := testPLL()
	behind := bAgent(4, 2, 5)
	ahead := bAgent(4, 0, 5)
	got, _ := p.Transition(behind, ahead)
	if got.Color != 0 {
		t.Fatalf("color = %d, want 0 (2+1 mod 3)", got.Color)
	}
	if got.Count != 0 {
		t.Fatalf("timer count = %d, want 0 after adoption", got.Count)
	}
}

// TestQuickEliminationHeads: a not-done leader initiating against a
// follower scores a head.
func TestQuickEliminationHeads(t *testing.T) {
	p := testPLL()
	l, f := p.Transition(a1Leader(3, false), a1Follower(0))
	if l.LevelQ != 4 || l.Done {
		t.Fatalf("leader after heads: %v", l)
	}
	if !f.Done || f.Leader {
		t.Fatalf("follower changed unexpectedly: %v", f)
	}
}

// TestQuickEliminationTails: a not-done leader responding to a follower
// stops flipping.
func TestQuickEliminationTails(t *testing.T) {
	p := testPLL()
	_, l := p.Transition(a1Follower(0), a1Leader(3, false))
	if !l.Done {
		t.Fatalf("leader after tails: %v", l)
	}
	if l.LevelQ != 3 {
		t.Fatalf("tails changed levelQ to %d", l.LevelQ)
	}
}

// TestQuickEliminationDoneLeaderDoesNotFlip.
func TestQuickEliminationDoneLeaderDoesNotFlip(t *testing.T) {
	p := testPLL()
	l, _ := p.Transition(a1Leader(3, true), a1Follower(0))
	if l.LevelQ != 3 {
		t.Fatalf("done leader flipped: %v", l)
	}
	// But the epidemic now applies: follower copies nothing (3 > 0 means
	// the *follower* copies and stays follower).
}

// TestQuickEliminationEpidemic verifies lines 39–42: among done agents, the
// smaller levelQ yields and copies.
func TestQuickEliminationEpidemic(t *testing.T) {
	p := testPLL()

	// Leader behind a follower's knowledge: leader is eliminated.
	l, f := p.Transition(a1Leader(2, true), a1Follower(7))
	if l.Leader || l.LevelQ != 7 {
		t.Fatalf("lagging leader survived: %v", l)
	}
	if f.Leader || f.LevelQ != 7 {
		t.Fatalf("follower changed: %v", f)
	}

	// Follower behind: copies the level, stays follower; leader survives.
	l2, f2 := p.Transition(a1Leader(9, true), a1Follower(1))
	if !l2.Leader || l2.LevelQ != 9 {
		t.Fatalf("max leader eliminated: %v", l2)
	}
	if f2.LevelQ != 9 || f2.Leader {
		t.Fatalf("follower did not copy: %v", f2)
	}

	// Two leaders with different levels: both done ⇒ smaller yields.
	w, loser := p.Transition(a1Leader(5, true), a1Leader(3, true))
	if !w.Leader || w.LevelQ != 5 {
		t.Fatalf("winner: %v", w)
	}
	if loser.Leader || loser.LevelQ != 5 {
		t.Fatalf("loser: %v", loser)
	}

	// Flipping leaders (not done) do not participate in the epidemic.
	a, b := p.Transition(a1Leader(5, false), a1Leader(3, false))
	if !a.Leader || !b.Leader || a.LevelQ != 5 || b.LevelQ != 3 {
		t.Fatalf("flipping leaders were touched: %v, %v", a, b)
	}
}

// TestQuickEliminationSaturates: levelQ caps at lmax (erratum: the paper's
// line 36 writes max for min).
func TestQuickEliminationSaturates(t *testing.T) {
	p := testPLL()
	lmax := uint16(testParams.LMax)
	l, _ := p.Transition(a1Leader(lmax, false), a1Follower(0))
	if l.LevelQ != lmax {
		t.Fatalf("levelQ overflowed lmax: %d", l.LevelQ)
	}
}

// TestTournamentBits verifies lines 43–46: initiator side appends 0,
// responder side appends 1, index advances and stops at Φ.
func TestTournamentBits(t *testing.T) {
	p := testPLL()

	l, _ := p.Transition(a23Leader(2, 0b1, 1), a23Follower(2, 0))
	if l.Rand != 0b10 || l.Index != 2 {
		t.Fatalf("initiator flip: rand=%b index=%d, want 10, 2", l.Rand, l.Index)
	}

	_, l2 := p.Transition(a23Follower(2, 0), a23Leader(2, 0b1, 1))
	if l2.Rand != 0b11 || l2.Index != 2 {
		t.Fatalf("responder flip: rand=%b index=%d, want 11, 2", l2.Rand, l2.Index)
	}
}

// TestTournamentStopsAtPhi: a leader with a finished nonce does not flip.
func TestTournamentStopsAtPhi(t *testing.T) {
	p := testPLL()
	phi := uint8(testParams.Phi)
	l, _ := p.Transition(a23Leader(2, 5, phi), a23Follower(2, 0))
	if l.Rand != 5 || l.Index != phi {
		t.Fatalf("finished leader flipped: %v", l)
	}
}

// TestTournamentEpidemic verifies lines 47–50 among finished agents.
func TestTournamentEpidemic(t *testing.T) {
	p := testPLL()
	phi := uint8(testParams.Phi)

	l, f := p.Transition(a23Leader(2, 2, phi), a23Follower(2, 6))
	if l.Leader || l.Rand != 6 {
		t.Fatalf("lagging leader survived the nonce epidemic: %v", l)
	}
	if f.Rand != 6 {
		t.Fatalf("follower rand = %d", f.Rand)
	}

	// A still-flipping leader is shielded from the epidemic.
	l2, _ := p.Transition(a23Leader(2, 0, 1), a23Follower(2, 6))
	if !l2.Leader {
		t.Fatalf("flipping leader eliminated prematurely: %v", l2)
	}

	// Epoch-2 and epoch-3 agents do not interact within the module (the
	// epoch merge promotes the laggard first and resets its nonce).
	l3, _ := p.Transition(a23Leader(2, 3, phi), a23Follower(3, 6))
	if l3.Epoch != 3 {
		t.Fatalf("laggard not promoted: %v", l3)
	}
	if !l3.Leader {
		t.Fatalf("promoted leader eliminated in the same interaction: %v", l3)
	}
	// The promoted leader's nonce was reset and it immediately flipped its
	// first epoch-3 coin against the follower (initiator side ⇒ bit 0).
	if l3.Rand != 0 || l3.Index != 1 {
		t.Fatalf("promoted leader kept a stale nonce: %v", l3)
	}
}

// TestBackupTickFlip verifies lines 51–53: a leader whose tick was raised
// in this very interaction and who initiated against a follower gains a
// level; as responder it does not.
func TestBackupTickFlip(t *testing.T) {
	p := testPLL()

	// The leader adopts a newer color from the follower, raising its tick.
	leader := a4Leader(0)
	follower := a4Follower(0)
	follower.Color = 1

	l, _ := p.Transition(leader, follower)
	if l.LevelB != 1 {
		t.Fatalf("initiator with fresh tick did not level up: %v", l)
	}
	if l.Color != 1 {
		t.Fatalf("leader did not adopt color: %v", l)
	}

	// Same configuration but the leader responds: tail, no level.
	_, l2 := p.Transition(follower, leader)
	if l2.LevelB != 0 {
		t.Fatalf("responder leveled up: %v", l2)
	}

	// No tick, no flip, even as initiator.
	l3, _ := p.Transition(a4Leader(0), a4Follower(0))
	if l3.LevelB != 0 {
		t.Fatalf("tickless leader leveled up: %v", l3)
	}
}

// TestBackupEpidemic verifies lines 54–57.
func TestBackupEpidemic(t *testing.T) {
	p := testPLL()

	l, f := p.Transition(a4Leader(1), a4Follower(4))
	if l.Leader || l.LevelB != 4 {
		t.Fatalf("lagging leader survived: %v", l)
	}
	if f.LevelB != 4 {
		t.Fatalf("follower level changed: %v", f)
	}

	f2, l2 := p.Transition(a4Follower(1), a4Leader(4))
	if !l2.Leader {
		t.Fatalf("max leader eliminated: %v", l2)
	}
	if f2.LevelB != 4 {
		t.Fatalf("follower did not adopt: %v", f2)
	}
}

// TestBackupDuel verifies line 58: equal-level leaders duel, the responder
// yields.
func TestBackupDuel(t *testing.T) {
	p := testPLL()
	w, loser := p.Transition(a4Leader(2), a4Leader(2))
	if !w.Leader {
		t.Fatalf("initiator lost the duel: %v", w)
	}
	if loser.Leader {
		t.Fatalf("responder survived the duel: %v", loser)
	}
	// Different levels resolve through the epidemic, not the duel.
	w2, l2 := p.Transition(a4Leader(3), a4Leader(1))
	if !w2.Leader || l2.Leader || l2.LevelB != 3 {
		t.Fatalf("unequal duel: %v, %v", w2, l2)
	}
}

// TestEpochMergeJump: an epoch-1 candidate meeting an epoch-4 agent jumps
// straight to epoch 4 with cleanly initialized group variables.
func TestEpochMergeJump(t *testing.T) {
	p := testPLL()
	l, f := p.Transition(a1Leader(7, false), a4Follower(2))
	if l.Epoch != 4 || l.Init != 4 {
		t.Fatalf("laggard epoch/init = %d/%d, want 4/4", l.Epoch, l.Init)
	}
	if l.LevelQ != 0 || l.Done || l.Rand != 0 || l.Index != 0 {
		t.Fatalf("stale variables survived the jump: %v", l)
	}
	// The jumping leader starts at levelB 0 and immediately meets level 2:
	// it is eliminated by the BackUp epidemic in the same interaction.
	if l.Leader {
		t.Fatalf("jumped leader should have been absorbed by levelB epidemic: %v", l)
	}
	if l.LevelB != 2 || f.LevelB != 2 {
		t.Fatalf("levelB after merge: %v / %v", l, f)
	}
	if err := p.CheckCanonical(l); err != nil {
		t.Fatal(err)
	}
}

// TestTransitionIsDeterministic is the model sanity property: transitions
// are pure functions of the ordered state pair.
func TestTransitionIsDeterministic(t *testing.T) {
	p := testPLL()
	states := []State{
		p.InitialState(), a1Leader(0, false), a1Leader(3, true), a1Follower(2),
		bAgent(1, 0, 5), bAgent(3, 2, 100), a23Leader(2, 1, 1), a23Follower(3, 4),
		a4Leader(0), a4Leader(5), a4Follower(9),
	}
	for _, a := range states {
		for _, b := range states {
			x1, y1 := p.Transition(a, b)
			x2, y2 := p.Transition(a, b)
			if x1 != x2 || y1 != y2 {
				t.Fatalf("nondeterministic transition for (%v, %v)", a, b)
			}
		}
	}
}

// TestQuickTransitionPreservesCanonical drives random canonical state pairs
// through one transition and requires canonical outputs. This is the
// closure property backing Lemma 3's state count.
func TestQuickTransitionPreservesCanonical(t *testing.T) {
	p := testPLL()
	gen := newStateGen(testParams)
	f := func(seedA, seedB uint64) bool {
		a, b := gen.state(seedA), gen.state(seedB)
		x, y := p.Transition(a, b)
		return p.CheckCanonical(x) == nil && p.CheckCanonical(y) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNoLeaderSpawning: a transition never turns a follower pair into
// any leader, and never increases the number of leaders.
func TestQuickNoLeaderSpawning(t *testing.T) {
	p := testPLL()
	gen := newStateGen(testParams)
	count := func(ss ...State) int {
		n := 0
		for _, s := range ss {
			if s.Leader {
				n++
			}
		}
		return n
	}
	f := func(seedA, seedB uint64) bool {
		a, b := gen.state(seedA), gen.state(seedB)
		x, y := p.Transition(a, b)
		return count(x, y) <= count(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEpochMonotone: epochs never decrease.
func TestQuickEpochMonotone(t *testing.T) {
	p := testPLL()
	gen := newStateGen(testParams)
	f := func(seedA, seedB uint64) bool {
		a, b := gen.state(seedA), gen.state(seedB)
		x, y := p.Transition(a, b)
		return x.Epoch >= a.Epoch && y.Epoch >= b.Epoch && x.Epoch == y.Epoch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
