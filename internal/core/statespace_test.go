package core

import (
	"testing"
	"unsafe"

	"popproto/internal/pp"
	"popproto/internal/rng"
)

// TestObservedStatesRespectGroupDomains runs a full election and verifies
// that every distinct state observed falls into exactly one Table 3 group
// with all foreign additional variables zero — the partition that makes
// Lemma 3's count valid.
func TestObservedStatesRespectGroupDomains(t *testing.T) {
	const n = 256
	p := NewForN(n)
	sim := pp.NewSimulator[State](p, n, 3)
	sim.TrackStates()
	sim.RunUntilLeaders(1, stabilizationBudget(n))
	sim.RunSteps(50_000)

	groups := map[Group]int{}
	sim.ForEach(func(_ int, s State) {
		groups[s.Group()]++
	})
	if groups[GroupX] != 0 {
		t.Fatalf("agents still pristine after a full run: %d", groups[GroupX])
	}
	if groups[GroupB] == 0 {
		t.Fatal("no timers after a full run")
	}
}

// TestStateFootprint guards the memory layout of the hot simulation loop:
// State must stay a small value type (the agent vector for n = 2²⁰ should
// be tens of megabytes, not hundreds).
func TestStateFootprint(t *testing.T) {
	var s State
	const maxBytes = 24
	if size := int(unsafe.Sizeof(s)); size > maxBytes {
		t.Fatalf("State is %d bytes, budget %d", size, maxBytes)
	}
	var sym SymState
	if size := int(unsafe.Sizeof(sym)); size > maxBytes+8 {
		t.Fatalf("SymState is %d bytes, budget %d", size, maxBytes+8)
	}
}

// TestWithPhi verifies the ablation override.
func TestWithPhi(t *testing.T) {
	p := NewParams(1024)
	q := p.WithPhi(7)
	if q.Phi != 7 || q.RandSpace() != 128 {
		t.Fatalf("WithPhi(7) = %+v", q)
	}
	if p.Phi == 7 {
		t.Fatal("WithPhi mutated the receiver")
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("overridden params invalid: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WithPhi(17) did not panic")
		}
	}()
	p.WithPhi(17)
}

// TestPhiZeroElection: with Φ = 0 the Tournament is a no-op and elections
// still complete via QuickElimination and BackUp.
func TestPhiZeroElection(t *testing.T) {
	const n = 64
	proto := New(NewParams(n).WithPhi(0))
	sim := pp.NewSimulator[State](proto, n, 9)
	if _, ok := sim.RunUntilLeaders(1, 100*stabilizationBudget(n)); !ok {
		t.Fatal("Φ=0 election did not stabilize")
	}
	if !sim.VerifyStable(uint64(100 * n)) {
		t.Fatal("Φ=0 configuration unstable")
	}
}

// TestDistinctStatesGrowWithM: over the same number of clock periods,
// larger m must expose more distinct states (the count domain scales with
// cmax = 41m). The observation window is measured in clock periods, not
// raw steps — otherwise a larger m simply cycles the clock fewer times
// and sees *less* of its space.
func TestDistinctStatesGrowWithM(t *testing.T) {
	const n = 128
	observe := func(m int) int {
		params, err := NewParamsWithM(n, m)
		if err != nil {
			t.Fatal(err)
		}
		sim := pp.NewSimulator[State](New(params), n, 11)
		sim.TrackStates()
		sim.RunUntilLeaders(1, 100*stabilizationBudget(n))
		// Three full count-up periods: cmax counts per timer, each timer
		// participating in ~2 interactions per parallel time unit.
		sim.RunSteps(uint64(3 * params.CMax * n))
		return sim.DistinctStates()
	}
	small := observe(7)
	large := observe(28)
	if large <= small {
		t.Fatalf("distinct states did not grow with m: %d (m=7) vs %d (m=28)", small, large)
	}
}

// TestSeededRunsVisitManyStates: the distinct-state tracker must observe a
// nontrivial slice of the space, across seeds.
func TestSeededRunsVisitManyStates(t *testing.T) {
	const n = 256
	p := NewForN(n)
	r := rng.New(1)
	for i := 0; i < 3; i++ {
		sim := pp.NewSimulator[State](p, n, r.Uint64())
		sim.TrackStates()
		sim.RunSteps(uint64(50 * n))
		if sim.DistinctStates() < 50 {
			t.Fatalf("seed %d: only %d distinct states in 50 parallel time", i, sim.DistinctStates())
		}
	}
}
