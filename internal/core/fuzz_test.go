package core

import (
	"testing"

	"popproto/internal/pp"
)

// FuzzTransitionClosure fuzzes the asymmetric transition with arbitrary
// canonical state pairs (derived from the fuzzed seeds through the same
// generator the property tests use) and checks the full contract on the
// outputs: canonical form, no leader minting, epoch monotonicity and
// agreement, and determinism.
func FuzzTransitionClosure(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(12345), uint64(67890))
	f.Add(^uint64(0), uint64(42))

	p := testPLL()
	gen := newStateGen(testParams)
	f.Fuzz(func(t *testing.T, seedA, seedB uint64) {
		a, b := gen.state(seedA), gen.state(seedB)
		x1, y1 := p.Transition(a, b)
		x2, y2 := p.Transition(a, b)
		if x1 != x2 || y1 != y2 {
			t.Fatalf("nondeterministic transition for (%v, %v)", a, b)
		}
		if err := p.CheckCanonical(x1); err != nil {
			t.Fatalf("initiator output not canonical: %v", err)
		}
		if err := p.CheckCanonical(y1); err != nil {
			t.Fatalf("responder output not canonical: %v", err)
		}
		before := btoi(a.Leader) + btoi(b.Leader)
		after := btoi(x1.Leader) + btoi(y1.Leader)
		if after > before {
			t.Fatalf("leader minted: (%v, %v) -> (%v, %v)", a, b, x1, y1)
		}
		if x1.Epoch != y1.Epoch {
			t.Fatalf("epochs disagree after merge: %v vs %v", x1, y1)
		}
		if x1.Epoch < a.Epoch || y1.Epoch < b.Epoch {
			t.Fatalf("epoch decreased: (%v, %v) -> (%v, %v)", a, b, x1, y1)
		}
	})
}

// FuzzSymmetricTransition fuzzes the symmetric variant, adding the
// symmetry and order-equivariance obligations on top of the asymmetric
// contract.
func FuzzSymmetricTransition(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(3), uint64(3))
	f.Add(uint64(99), uint64(100))

	p := NewSymmetric(testSymParams)
	gen := newStateGen(testSymParams)
	f.Fuzz(func(t *testing.T, seedA, seedB uint64) {
		a, b := gen.symState(seedA), gen.symState(seedB)
		if p.CheckCanonical(a) != nil || p.CheckCanonical(b) != nil {
			t.Skip("generator produced a non-canonical state")
		}
		x, y := p.Transition(a, b)
		if err := p.CheckCanonical(x); err != nil {
			t.Fatal(err)
		}
		if err := p.CheckCanonical(y); err != nil {
			t.Fatal(err)
		}
		// Symmetry: equal inputs, equal outputs.
		if a == b && x != y {
			t.Fatalf("p = q but p' != q': %v vs %v", x, y)
		}
		// Order equivariance: roles must not matter.
		y2, x2 := p.Transition(b, a)
		if x != x2 || y != y2 {
			t.Fatalf("order dependence: (%v,%v) vs swapped (%v,%v)", x, y, x2, y2)
		}
	})
}

// FuzzSimulatorConsistency fuzzes short executions: the incremental leader
// census must match a recount, and safety must hold.
func FuzzSimulatorConsistency(f *testing.F) {
	f.Add(uint64(1), uint16(100))
	f.Add(uint64(7), uint16(5000))

	f.Fuzz(func(t *testing.T, seed uint64, steps uint16) {
		const n = 24
		p := NewForN(n)
		sim := pp.NewSimulator[State](p, n, seed)
		sim.RunSteps(uint64(steps))
		recount := 0
		sim.ForEach(func(_ int, s State) {
			if s.Leader {
				recount++
			}
		})
		if recount != sim.Leaders() {
			t.Fatalf("census drift: recount %d vs incremental %d", recount, sim.Leaders())
		}
		if recount < 1 {
			t.Fatal("all leaders eliminated")
		}
	})
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
