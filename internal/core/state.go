package core

import "fmt"

// Status is the common variable status ∈ {X, A, B} of Table 3: X is the
// pristine initial status, A marks leader candidates, B marks timer agents.
type Status uint8

const (
	// StatusX is the initial status of every agent.
	StatusX Status = iota
	// StatusA marks leader candidates (the sub-population V_A).
	StatusA
	// StatusB marks count-up timer agents (the sub-population V_B).
	StatusB
	// StatusY is the intermediate status of the symmetric variant's
	// pairing dance (Section 4); the asymmetric protocol never uses it.
	StatusY
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusX:
		return "X"
	case StatusA:
		return "A"
	case StatusB:
		return "B"
	case StatusY:
		return "Y"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Group identifies the five sub-populations of Table 3 that partition the
// agents and determine which additional variables are live.
type Group uint8

const (
	// GroupX is V_X: agents that have not interacted yet.
	GroupX Group = iota
	// GroupB is V_B: timer agents (additional variable count).
	GroupB
	// GroupA1 is V_A ∩ V_1: candidates in epoch 1 (levelQ, done).
	GroupA1
	// GroupA23 is V_A ∩ (V_2 ∪ V_3): candidates in epochs 2–3 (rand, index).
	GroupA23
	// GroupA4 is V_A ∩ V_4: candidates in epoch 4 (levelB).
	GroupA4
	// GroupY is V_Y, the symmetric variant's intermediate pairing group;
	// like V_X it carries no additional variables.
	GroupY
)

// String implements fmt.Stringer.
func (g Group) String() string {
	switch g {
	case GroupX:
		return "V_X"
	case GroupB:
		return "V_B"
	case GroupA1:
		return "V_A∩V_1"
	case GroupA23:
		return "V_A∩(V_2∪V_3)"
	case GroupA4:
		return "V_A∩V_4"
	case GroupY:
		return "V_Y"
	default:
		return fmt.Sprintf("Group(%d)", uint8(g))
	}
}

// State is one agent's full state: the six common variables of Table 3 plus
// the additional variables of every group. An agent's group determines
// which additional variables are live; all others are kept at their zero
// values ("canonical form") so that the comparable State type enumerates
// exactly the state space Lemma 3 counts. CheckCanonical verifies the
// convention.
type State struct {
	// Leader is the output variable: true ⇒ output L, false ⇒ output F.
	Leader bool
	// Tick is the intra-interaction flag raised when the agent gets a new
	// color; it is reset at the start of the agent's next interaction.
	Tick bool
	// Status is the agent's status X, A or B.
	Status Status
	// Epoch ∈ {1,2,3,4} selects the active module.
	Epoch uint8
	// Init ∈ {1,2,3,4} tracks the last epoch whose additional variables
	// were initialized; Init == Epoch at every interaction boundary.
	Init uint8
	// Color ∈ {0,1,2} is the synchronization color of CountUp.
	Color uint8

	// Count ∈ {0,…,cmax−1} is V_B's count-up timer.
	Count uint16
	// LevelQ ∈ {0,…,lmax} is the QuickElimination lottery level (V_A∩V_1).
	LevelQ uint16
	// Done reports that the agent's QuickElimination coin flipping stopped
	// (V_A∩V_1).
	Done bool
	// Rand ∈ {0,…,2^Φ−1} is the Tournament nonce (V_A∩(V_2∪V_3)).
	Rand uint16
	// Index ∈ {0,…,Φ} counts Tournament coin flips; Φ means finished
	// (V_A∩(V_2∪V_3)).
	Index uint8
	// LevelB ∈ {0,…,lmax} is the BackUp race level (V_A∩V_4).
	LevelB uint16
}

// Group classifies the state into one of the five sub-populations.
func (s State) Group() Group {
	switch s.Status {
	case StatusX:
		return GroupX
	case StatusY:
		return GroupY
	case StatusB:
		return GroupB
	default:
		switch s.Epoch {
		case 1:
			return GroupA1
		case 2, 3:
			return GroupA23
		default:
			return GroupA4
		}
	}
}

// String renders the state compactly for traces and test failures.
func (s State) String() string {
	role := "F"
	if s.Leader {
		role = "L"
	}
	base := fmt.Sprintf("%s/%s e%d c%d", s.Status, role, s.Epoch, s.Color)
	if s.Tick {
		base += " tick"
	}
	switch s.Group() {
	case GroupB:
		return fmt.Sprintf("%s count=%d", base, s.Count)
	case GroupA1:
		return fmt.Sprintf("%s levelQ=%d done=%t", base, s.LevelQ, s.Done)
	case GroupA23:
		return fmt.Sprintf("%s rand=%d index=%d", base, s.Rand, s.Index)
	case GroupA4:
		return fmt.Sprintf("%s levelB=%d", base, s.LevelB)
	default:
		return base
	}
}
