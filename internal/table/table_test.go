package table

import (
	"strings"
	"testing"
)

func TestMarkdownShape(t *testing.T) {
	tb := New("Protocol", "States", "Time")
	tb.AddRow("PLL", "O(log n)", "O(log n)")
	tb.AddRow("Angluin", "O(1)", "O(n)")
	out := tb.Markdown()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "| Protocol") {
		t.Fatalf("header line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator line: %q", lines[1])
	}
	// All rows must have identical width (aligned columns).
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned row %q vs header %q", l, lines[0])
		}
	}
}

func TestAddRowPadsAndPanics(t *testing.T) {
	tb := New("A", "B")
	tb.AddRow("x") // short rows are padded
	if !strings.Contains(tb.Markdown(), "| x |") {
		t.Fatalf("padded row missing:\n%s", tb.Markdown())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row accepted")
		}
	}()
	tb.AddRow("1", "2", "3")
}

func TestAddRowf(t *testing.T) {
	tb := New("n", "time")
	tb.AddRowf(1024, 3.5)
	if !strings.Contains(tb.Markdown(), "1024") || !strings.Contains(tb.Markdown(), "3.5") {
		t.Fatalf("formatted row missing:\n%s", tb.Markdown())
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestNewPanicsWithoutColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty header list")
		}
	}()
	New()
}
