// Package table renders aligned Markdown tables for experiment reports —
// the medium in which this repository regenerates the paper's tables.
package table

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders an aligned Markdown pipe table.
// The zero value is not usable; construct with New.
type Table struct {
	headers []string
	rows    [][]string
}

// New returns a table with the given column headers. It panics without
// at least one column.
func New(headers ...string) *Table {
	if len(headers) == 0 {
		panic("table: need at least one column")
	}
	return &Table{headers: headers}
}

// AddRow appends a row. Missing cells are blank-filled; extra cells panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("table: row has %d cells, table has %d columns",
			len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a string (kept as-is).
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		if s, ok := c.(string); ok {
			out = append(out, s)
		} else {
			out = append(out, fmt.Sprintf("%v", c))
		}
	}
	t.AddRow(out...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Markdown renders the table with padded columns.
func (t *Table) Markdown() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}

	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			b.WriteString(" ")
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// String implements fmt.Stringer.
func (t *Table) String() string { return t.Markdown() }
