package sweep_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/sweep"
)

func TestCanonicalizeAxes(t *testing.T) {
	spec, cells, err := sweep.Canonicalize(sweep.Spec{
		Protocols:  []string{"pll", "angluin", "pll"}, // dup dropped, order kept
		Ns:         []int{4096, 256, 256, 1024},       // sorted, deduped
		Engine:     pp.EngineCount,
		Replicates: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"pll", "angluin"}; !reflect.DeepEqual(spec.Protocols, want) {
		t.Errorf("protocols = %v, want %v", spec.Protocols, want)
	}
	if want := []int{256, 1024, 4096}; !reflect.DeepEqual(spec.Ns, want) {
		t.Errorf("ns = %v, want %v", spec.Ns, want)
	}
	if want := []int{0}; !reflect.DeepEqual(spec.Ms, want) {
		t.Errorf("ms = %v, want %v", spec.Ms, want)
	}
	if len(cells) != 6 {
		t.Fatalf("%d cells, want 6 (2 protocols × 3 sizes)", len(cells))
	}
	// Expansion order is protocol-major, n ascending; indexes are dense.
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
	}
	if cells[0].Protocol != "pll" || cells[0].N != 256 || cells[3].Protocol != "angluin" {
		t.Errorf("unexpected expansion order: %+v", cells)
	}
}

// TestCanonicalizeSeedDiscipline: a seedless sweep derives each cell's
// base seed exactly as a seedless experiment (and job) over the cell's
// spec would — the replicate-0 ≡ job discipline, per cell.
func TestCanonicalizeSeedDiscipline(t *testing.T) {
	_, cells, err := sweep.Canonicalize(sweep.Spec{
		Protocols:  []string{"pll"},
		Ns:         []int{512, 2048},
		Engine:     pp.EngineCount,
		Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		want := ensemble.DeriveSeed(c.Protocol, c.N, c.Engine.String(), c.M)
		if c.Ensemble.Registry.Seed != want {
			t.Errorf("cell n=%d seed %d, want derived %d", c.N, c.Ensemble.Registry.Seed, want)
		}
	}

	// An explicit seed passes through to every cell unchanged.
	_, seeded, err := sweep.Canonicalize(sweep.Spec{
		Protocols:  []string{"pll"},
		Ns:         []int{512, 2048},
		Engine:     pp.EngineCount,
		Seed:       42,
		Replicates: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range seeded {
		if c.Ensemble.Registry.Seed != 42 {
			t.Errorf("cell n=%d seed %d, want 42", c.N, c.Ensemble.Registry.Seed)
		}
	}
}

// TestCanonicalizeAutoEngine: auto resolves per cell across the n axis.
func TestCanonicalizeAutoEngine(t *testing.T) {
	_, cells, err := sweep.Canonicalize(sweep.Spec{
		Protocols:  []string{"pll"},
		Ns:         []int{1024, 1 << 17},
		Engine:     pp.EngineAuto,
		Replicates: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Engine != pp.EngineAgent || cells[1].Engine != pp.EngineHybrid {
		t.Errorf("auto resolved to %v/%v, want agent/hybrid", cells[0].Engine, cells[1].Engine)
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	cases := []sweep.Spec{
		{Ns: []int{128}, Replicates: 1},                                                   // no protocols
		{Protocols: []string{"pll"}, Replicates: 1},                                       // no ns
		{Protocols: []string{"pll"}, Ns: []int{128}},                                      // no replicates
		{Protocols: []string{"nope"}, Ns: []int{128}, Replicates: 1},                      // unknown protocol
		{Protocols: []string{"pll"}, Ns: []int{128}, Replicates: 1, CITarget: 2},          // bad ci
		{Protocols: []string{"pll"}, Ns: []int{128}, Replicates: 1, MaxParallelTime: -1},  // bad budget
		{Protocols: []string{"angluin"}, Ns: []int{128}, Ms: []int{5}, Replicates: 1},     // m on m-less
		{Protocols: []string{"pll"}, Ns: []int{128}, Replicates: 1, Engine: pp.Engine(9)}, // bogus engine
	}
	for _, spec := range cases {
		if _, _, err := sweep.Canonicalize(spec); !errors.Is(err, registry.ErrBadSpec) {
			t.Errorf("Canonicalize(%+v) error = %v, want ErrBadSpec", spec, err)
		}
	}
}

// TestRunDeterministicAcrossWorkers: the whole sweep result — every
// cell's aggregates and the fitted summary — is bit-identical no matter
// how many workers fan the replicates out.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	spec := sweep.Spec{
		Protocols:  []string{"pll"},
		Ns:         []int{256, 512, 1024},
		Engine:     pp.EngineCount,
		Seed:       7,
		Replicates: 6,
	}
	run := func(workers int) sweep.Result {
		res, err := sweep.Run(context.Background(), spec, sweep.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial.Outcomes, parallel.Outcomes) {
		t.Error("outcomes diverged across worker counts")
	}
	if !reflect.DeepEqual(serial.Summary, parallel.Summary) {
		t.Error("summaries diverged across worker counts")
	}
	if len(serial.Summary.Fits) != 1 {
		t.Fatalf("fits = %+v, want exactly one", serial.Summary.Fits)
	}
	fit := serial.Summary.Fits[0]
	if fit.Points != 3 || fit.Protocol != "pll" {
		t.Errorf("fit = %+v", fit)
	}
	if _, ok := serial.Summary.Fit("pll", 0); !ok {
		t.Error("Summary.Fit lookup failed")
	}
}

// TestRunCancellation: a canceled context stops the sweep between (or
// inside) cells and returns the outcomes finished so far.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := sweep.Run(ctx, sweep.Spec{
		Protocols:  []string{"pll"},
		Ns:         []int{256, 512, 1024},
		Engine:     pp.EngineCount,
		Replicates: 2,
	}, sweep.Options{
		Workers: 1,
		OnCellDone: func(sweep.Cell, ensemble.Aggregates) {
			calls++
			if calls == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > 2 {
		t.Errorf("sweep kept running after cancellation: %d cells", calls)
	}
}

// TestSummarizeSkipsDegenerateGroups: groups without two distinct
// usable sizes produce no fit instead of a panic.
func TestSummarizeSkipsDegenerateGroups(t *testing.T) {
	_, cells, err := sweep.Canonicalize(sweep.Spec{
		Protocols: []string{"pll"}, Ns: []int{256}, Engine: pp.EngineCount, Replicates: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := sweep.Summarize([]sweep.Outcome{
		{Cell: cells[0], Aggregates: ensemble.Aggregates{Replicates: 1, MeanParallelTime: 3}},
	})
	if len(sum.Fits) != 0 {
		t.Errorf("single-point group produced a fit: %+v", sum.Fits)
	}
	if len(sweep.Summarize(nil).Fits) != 0 {
		t.Error("empty outcomes produced a fit")
	}
}
