// Package sweep expands a parameter grid over the protocol registry
// into ensemble cells and measures the scaling behavior the paper's
// headline claims are about. A sweep spec has axes — a population grid,
// a protocol list, optionally a knowledge-parameter list — whose cross
// product is the cell set; each cell runs as a full Monte-Carlo
// ensemble (internal/ensemble, with the replicate-0 ≡ single-job seed
// discipline intact), and the finished grid is summarized as fitted
// a·lg n + b curves with R² plus the log-log power exponent — the
// Theorem 1 "stabilization time is Θ(log n)" check as data, and the
// matching Sudo–Masuzawa lower bound's shape, checkable in one request.
//
// The package is deliberately service-agnostic: the popprotod sweep run
// kind, the sweep command-line tool, and the harness's Theorem 1
// experiment all expand and summarize through here, while execution is
// pluggable (Options.RunCell) so the service can substitute its
// cache-aware, store-backed cell runner.
package sweep

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/stats"
)

// Spec describes one sweep: the axes plus the per-cell ensemble knobs.
type Spec struct {
	// Protocols is the protocol axis: registry keys, at least one.
	// Duplicates are dropped; order is preserved (it is the report
	// order).
	Protocols []string
	// Ns is the population-size axis, at least one entry; canonicalized
	// to sorted ascending with duplicates dropped.
	Ns []int
	// Ms is the optional knowledge-parameter axis for the PLL variants
	// (nil = [0], the canonical ⌈lg n⌉); canonicalized like Ns. Nonzero
	// values are rejected per cell for protocols without an m.
	Ms []int
	// Engine selects the per-cell engine. pp.EngineAuto (the sweep
	// default at the service layer) resolves per cell via the registry's
	// recommendation — small populations on the per-agent engine, large
	// census-friendly ones on the batch engine — which is what makes a
	// 10³..10⁸ grid practical in one request.
	Engine pp.Engine
	// Seed is the per-cell ensemble base seed; 0 derives one per cell
	// from the cell's canonical identity, exactly as a seedless
	// experiment (or job) over that cell's spec would, so every cell is
	// bit-identical to the standalone experiment with the same spec.
	Seed uint64
	// Replicates is the per-cell ensemble size R (required, >= 1).
	Replicates int
	// CITarget, when positive, lets each cell stop early once the
	// relative 95% CI half-width of its mean time reaches it.
	CITarget float64
	// MinReplicates is the per-cell early-stop floor (0 = 16).
	MinReplicates int
	// MaxParallelTime caps each replicate, in parallel time units (0 =
	// the protocol's registry default budget; values beyond it are
	// clamped to it, as for service jobs).
	MaxParallelTime float64
	// ObsCap is the replicate drive schedule's observation cap (0 =
	// ensemble.DefaultObsCap). Part of the deterministic surface.
	ObsCap int
}

// Cell is one grid point: a protocol at a population size, fully
// canonicalized into the ensemble spec that measures it.
type Cell struct {
	// Index is the cell's position in expansion order (protocol-major,
	// then m, then n ascending).
	Index    int
	Protocol string
	N        int
	M        int
	// Engine is the resolved concrete engine (never pp.EngineAuto).
	Engine pp.Engine
	// Ensemble is the canonical ensemble spec (seed and budget resolved).
	Ensemble ensemble.Spec
}

// Canonicalize validates spec, resolves its defaults, and expands the
// axes into cells. Every cell is validated against the registry — and
// its engine resolved — up front, so an invalid grid fails before any
// simulation. Errors wrap registry.ErrBadSpec.
func Canonicalize(spec Spec) (Spec, []Cell, error) {
	if len(spec.Protocols) == 0 {
		return Spec{}, nil, fmt.Errorf("%w: sweep needs at least one protocol (valid: %s)",
			registry.ErrBadSpec, strings.Join(registry.Keys(), ", "))
	}
	if len(spec.Ns) == 0 {
		return Spec{}, nil, fmt.Errorf("%w: sweep needs at least one population size", registry.ErrBadSpec)
	}
	if spec.Replicates < 1 {
		return Spec{}, nil, fmt.Errorf("%w: sweep needs replicates >= 1 (got %d)",
			registry.ErrBadSpec, spec.Replicates)
	}
	if spec.CITarget < 0 || spec.CITarget >= 1 {
		return Spec{}, nil, fmt.Errorf(
			"%w: ci target %g outside [0, 1) (it is a relative CI half-width; 0 disables early stopping)",
			registry.ErrBadSpec, spec.CITarget)
	}
	if spec.MinReplicates < 0 {
		return Spec{}, nil, fmt.Errorf("%w: negative minReplicates %d", registry.ErrBadSpec, spec.MinReplicates)
	}
	if spec.MaxParallelTime < 0 {
		return Spec{}, nil, fmt.Errorf("%w: negative maxParallelTime %g", registry.ErrBadSpec, spec.MaxParallelTime)
	}
	if spec.Engine != pp.EngineAuto && !spec.Engine.Valid() {
		return Spec{}, nil, fmt.Errorf("%w: unknown engine %v", registry.ErrBadSpec, spec.Engine)
	}

	spec.Protocols = dedupe(spec.Protocols)
	spec.Ns = sortedDedupe(spec.Ns)
	if len(spec.Ms) == 0 {
		spec.Ms = []int{0}
	}
	spec.Ms = sortedDedupe(spec.Ms)

	cells := make([]Cell, 0, len(spec.Protocols)*len(spec.Ms)*len(spec.Ns))
	for _, proto := range spec.Protocols {
		for _, m := range spec.Ms {
			for _, n := range spec.Ns {
				espec, _, err := ensemble.Canonicalize(ensemble.Spec{
					Registry: registry.Spec{
						Protocol: proto,
						N:        n,
						Engine:   spec.Engine, // auto resolves inside
						Seed:     spec.Seed,   // 0 derives per cell inside
						M:        m,
					},
					Replicates:    spec.Replicates,
					CITarget:      spec.CITarget,
					MinReplicates: spec.MinReplicates,
					ObsCap:        spec.ObsCap,
				})
				if err != nil {
					return Spec{}, nil, fmt.Errorf("cell %s n=%d m=%d: %w", proto, n, m, err)
				}
				if spec.MaxParallelTime > 0 {
					// Clamp exactly as the service clamps job budgets: the
					// override can only shorten a run.
					if steps := spec.MaxParallelTime * float64(n); steps < float64(espec.Budget) {
						espec.Budget = uint64(steps)
					}
				}
				cells = append(cells, Cell{
					Index:    len(cells),
					Protocol: proto,
					N:        n,
					M:        m,
					Engine:   espec.Registry.Engine,
					Ensemble: espec,
				})
			}
		}
	}
	return spec, cells, nil
}

// dedupe drops duplicates preserving first-occurrence order.
func dedupe(keys []string) []string {
	seen := make(map[string]bool, len(keys))
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// sortedDedupe sorts ascending and drops duplicates.
func sortedDedupe(xs []int) []int {
	out := slices.Clone(xs)
	slices.Sort(out)
	return slices.Compact(out)
}

// Outcome is one finished (or canceled-partway) cell.
type Outcome struct {
	Cell
	Aggregates ensemble.Aggregates
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds each cell ensemble's replicate parallelism (<= 0
	// selects NumCPU). Cells themselves run sequentially: one cell
	// already saturates the workers, and sequential cells keep the
	// streamed updates in grid order.
	Workers int
	// RunCell, when set, replaces the default executor (ensemble.Run)
	// for each cell — the popprotod manager substitutes a runner that
	// consults its experiment cache and durable store first. It must
	// return the cell's final aggregates.
	RunCell func(ctx context.Context, cell Cell) (ensemble.Aggregates, error)
	// OnCellStart/OnCellUpdate/OnCellDone observe the sweep as it runs,
	// in cell order: start before a cell's first replicate, update per
	// incorporated replicate (default executor only), done with the
	// final aggregates. All run on the sweep goroutine.
	OnCellStart  func(cell Cell)
	OnCellUpdate func(cell Cell, agg ensemble.Aggregates)
	OnCellDone   func(cell Cell, agg ensemble.Aggregates)
}

// Result is a finished sweep.
type Result struct {
	// Spec is the canonicalized spec the sweep ran.
	Spec Spec
	// Outcomes holds the finished cells, in cell order. On cancellation
	// it holds the cells finished before the interruption.
	Outcomes []Outcome
	// Summary is the scaling summary over the finished cells.
	Summary Summary
}

// Run expands spec and executes every cell sequentially, each as a full
// ensemble over opts.Workers replicate goroutines. On cancellation it
// returns the outcomes finished so far together with ctx's error.
func Run(ctx context.Context, spec Spec, opts Options) (Result, error) {
	spec, cells, err := Canonicalize(spec)
	if err != nil {
		return Result{}, err
	}
	runCell := opts.RunCell
	if runCell == nil {
		runCell = func(ctx context.Context, cell Cell) (ensemble.Aggregates, error) {
			var onUpdate func(ensemble.Aggregates)
			if opts.OnCellUpdate != nil {
				onUpdate = func(agg ensemble.Aggregates) { opts.OnCellUpdate(cell, agg) }
			}
			res, err := ensemble.Run(ctx, cell.Ensemble, ensemble.Options{
				Workers:  opts.Workers,
				OnUpdate: onUpdate,
			})
			return res.Aggregates, err
		}
	}

	res := Result{Spec: spec}
	for _, cell := range cells {
		if ctx.Err() != nil {
			res.Summary = Summarize(res.Outcomes)
			return res, ctx.Err()
		}
		if opts.OnCellStart != nil {
			opts.OnCellStart(cell)
		}
		agg, err := runCell(ctx, cell)
		if err != nil {
			res.Summary = Summarize(res.Outcomes)
			return res, fmt.Errorf("sweep cell %s n=%d m=%d (engine %s): %w",
				cell.Protocol, cell.N, cell.M, cell.Engine, err)
		}
		res.Outcomes = append(res.Outcomes, Outcome{Cell: cell, Aggregates: agg})
		if opts.OnCellDone != nil {
			opts.OnCellDone(cell, agg)
		}
	}
	res.Summary = Summarize(res.Outcomes)
	return res, nil
}

// ScalingFit is the fitted growth shape of one (protocol, m) group
// across the population axis: the direct a·lg n + b fit the paper's
// O(log n) bounds predict, plus the log-log power exponent that
// separates logarithmic growth (exponent ≈ 0) from polynomial growth
// (linear time gives ≈ 1) — Theorem 1 and the Sudo–Masuzawa lower
// bound's shape as data.
type ScalingFit struct {
	Protocol string `json:"protocol"`
	M        int    `json:"m,omitempty"`
	// Engines lists the distinct engines the group's cells ran on, in
	// cell order (engine=auto may pick different engines across the n
	// axis; the engines agree in distribution, so the fit is sound).
	Engines []string `json:"engines"`
	// Points is the number of cells the fit used (cells whose ensembles
	// produced a positive mean time).
	Points int `json:"points"`
	// A, B, R2: mean parallel time = A·lg n + B, with the coefficient of
	// determination.
	A  float64 `json:"a"`
	B  float64 `json:"b"`
	R2 float64 `json:"r2"`
	// Exponent is the log-log power-fit exponent of time against n.
	Exponent float64 `json:"logLogExponent"`
}

// Summary is a sweep's scaling summary: one fit per (protocol, m) group
// with at least two usable grid points.
type Summary struct {
	Fits []ScalingFit `json:"fits,omitempty"`
}

// Fit returns the fit for a (protocol, m) group, if the sweep produced
// one.
func (s Summary) Fit(protocol string, m int) (ScalingFit, bool) {
	for _, f := range s.Fits {
		if f.Protocol == protocol && f.M == m {
			return f, true
		}
	}
	return ScalingFit{}, false
}

// Summarize fits the scaling curves over finished cells, grouped by
// (protocol, m) in cell order. Groups with fewer than two distinct
// usable population sizes yield no fit.
func Summarize(outcomes []Outcome) Summary {
	type groupKey struct {
		protocol string
		m        int
	}
	var order []groupKey
	groups := make(map[groupKey][]Outcome)
	for _, o := range outcomes {
		k := groupKey{o.Protocol, o.M}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], o)
	}

	var sum Summary
	for _, k := range order {
		var xs, ys []float64
		var engines []string
		for _, o := range groups[k] {
			if o.Aggregates.Replicates == 0 || o.Aggregates.MeanParallelTime <= 0 {
				continue // unusable cell (canceled early, or a degenerate time)
			}
			xs = append(xs, float64(o.N))
			ys = append(ys, o.Aggregates.MeanParallelTime)
			if name := o.Engine.String(); !slices.Contains(engines, name) {
				engines = append(engines, name)
			}
		}
		if len(xs) < 2 || xs[0] == xs[len(xs)-1] {
			continue // a fit needs at least two distinct population sizes
		}
		logFit := stats.FitLogX(xs, ys)
		power := stats.PowerFit(xs, ys)
		sum.Fits = append(sum.Fits, ScalingFit{
			Protocol: k.protocol,
			M:        k.m,
			Engines:  engines,
			Points:   len(xs),
			A:        logFit.Slope,
			B:        logFit.Intercept,
			R2:       logFit.R2,
			Exponent: power.Slope,
		})
	}
	return sum
}
