// Package store persists finished simulation results as an append-only
// JSONL file: one self-describing record per line, indexed in memory by
// canonical spec key and by public id.
//
// The store is popprotod's source of truth for finished work. The
// service's LRU is a cache in front of it: a result evicted from the LRU
// (or lost to a restart) is recovered from the store instead of being
// re-simulated, which matters because large-population elections and
// multi-replicate experiments cost minutes of CPU while a record costs
// one line of JSON.
//
// Crash safety is by construction of the format. Every Put appends one
// complete line and fsyncs before updating the index, so the file never
// holds a record that was not durable. A crash mid-write leaves at most
// one torn final line; Open detects it, truncates it away, and resumes
// appending from the last intact record. Duplicate keys replay last-wins,
// so rewriting a record is just appending a newer one.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"popproto/internal/obs"
)

// Kind labels what a record's payload is.
type Kind string

const (
	// KindJob records a single simulation job's Result.
	KindJob Kind = "job"
	// KindExperiment records an ensemble experiment's Aggregates.
	KindExperiment Kind = "experiment"
	// KindSweep records a parameter sweep's per-cell aggregates and
	// scaling summary. A sweep's cells are additionally persisted as
	// KindExperiment records under their own canonical keys, so cells
	// are individually restorable and dedupe against standalone
	// experiments.
	KindSweep Kind = "sweep"
)

// Record is one persisted result. Spec and Data are raw JSON so the
// store stays agnostic of the service's payload types (and old records
// survive payload evolution: unknown fields are simply ignored on
// decode).
type Record struct {
	// Kind labels the payload ("job" or "experiment").
	Kind Kind `json:"kind"`
	// Key is the canonical spec key the result is a deterministic
	// function of.
	Key string `json:"key"`
	// ID is the public identifier (the job/experiment id).
	ID string `json:"id"`
	// Spec is the canonical spec, JSON-encoded.
	Spec json.RawMessage `json:"spec"`
	// Data is the result payload, JSON-encoded.
	Data json.RawMessage `json:"data"`
	// SavedAt is when the record was appended (UTC).
	SavedAt time.Time `json:"savedAt"`
}

// Store is an append-only JSONL result store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	byKey   map[string]Record // kind-scoped key → newest record
	byID    map[string]Record
	dropped int

	// Boot replay telemetry, captured by Open and exposed by Instrument.
	replayDur time.Duration
	replayed  int

	// Optional instruments attached by Instrument; nil-safe no-ops
	// otherwise (obs methods tolerate nil receivers).
	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
	appendedBytes *obs.Counter
}

// keyIndex scopes a canonical key by its kind, so a job and an
// experiment with coincidentally equal keys cannot collide.
func keyIndex(kind Kind, key string) string {
	return string(kind) + "\x00" + key
}

// Open opens (creating if needed) the store at path and replays its
// records into the in-memory index. A torn final line — the signature of
// a crash mid-append — is truncated away; any other malformed line is
// skipped and counted (see Dropped).
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &Store{
		f:     f,
		path:  path,
		byKey: make(map[string]Record),
		byID:  make(map[string]Record),
	}
	replayStart := time.Now()
	intact, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.replayDur = time.Since(replayStart)
	// Truncate any torn tail so the next append starts on a fresh line.
	if err := f.Truncate(intact); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking %s: %w", path, err)
	}
	return s, nil
}

// replay scans the file, indexing every intact record (last-wins per
// key) and returning the byte offset just past the last intact line.
func (s *Store) replay() (intact int64, err error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: seeking %s: %w", s.path, err)
	}
	r := bufio.NewReader(s.f)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// Torn final line (no newline): a crash mid-append.
				s.dropped++
			}
			return offset, nil
		}
		if err != nil {
			return 0, fmt.Errorf("store: reading %s: %w", s.path, err)
		}
		lineLen := int64(len(line))
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			offset += lineLen
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Kind == "" || rec.Key == "" || rec.ID == "" {
			// Corrupt or foreign line: skip it but keep the offset moving so
			// later intact records still replay.
			s.dropped++
			offset += lineLen
			continue
		}
		s.byKey[keyIndex(rec.Kind, rec.Key)] = rec
		s.byID[rec.ID] = rec
		s.replayed++
		offset += lineLen
	}
}

// Instrument creates the store's instruments and registers them on reg:
// append and fsync latency histograms, appended-byte and record-count
// series, and the boot replay's duration and line accounting. Call once,
// after Open.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	s.appendSeconds = obs.NewHistogram("popprotod_store_append_seconds",
		"Wall time of one record append (marshal excluded, fsync included).",
		obs.ExpBuckets(1e-5, 2, 14))
	s.fsyncSeconds = obs.NewHistogram("popprotod_store_fsync_seconds",
		"Wall time of the fsync within one append.", obs.ExpBuckets(1e-5, 2, 14))
	s.appendedBytes = obs.NewCounter("popprotod_store_appended_bytes_total",
		"Bytes appended to the store file since boot.")
	s.mu.Unlock()
	reg.MustRegister(
		s.appendSeconds, s.fsyncSeconds, s.appendedBytes,
		obs.NewGaugeFunc("popprotod_store_records",
			"Distinct (kind, key) records indexed.", func() float64 { return float64(s.Len()) }),
		obs.NewGaugeFunc("popprotod_store_replay_seconds",
			"Wall time of the boot replay.", func() float64 { return s.replayDur.Seconds() }),
		obs.NewGaugeFunc("popprotod_store_replayed_records",
			"Intact records indexed during the boot replay.", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.replayed)
			}),
		obs.NewGaugeFunc("popprotod_store_replay_dropped_lines",
			"Lines skipped during replay (torn tail or corruption).",
			func() float64 { return float64(s.Dropped()) }),
	)
}

// Put appends a record for (kind, key, id) with the given spec and data
// payloads and fsyncs it before indexing, so a record is visible only
// once durable. Re-putting a key overwrites its index entry (last-wins).
func (s *Store) Put(kind Kind, key, id string, spec, data any) error {
	specRaw, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("store: encoding spec for %s: %w", id, err)
	}
	dataRaw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("store: encoding data for %s: %w", id, err)
	}
	rec := Record{
		Kind:    kind,
		Key:     key,
		ID:      id,
		Spec:    specRaw,
		Data:    dataRaw,
		SavedAt: time.Now().UTC(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record for %s: %w", id, err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	appendStart := time.Now()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	syncStart := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", s.path, err)
	}
	now := time.Now()
	s.fsyncSeconds.Observe(now.Sub(syncStart).Seconds())
	s.appendSeconds.Observe(now.Sub(appendStart).Seconds())
	s.appendedBytes.Add(uint64(len(line)))
	s.byKey[keyIndex(kind, key)] = rec
	s.byID[rec.ID] = rec
	return nil
}

// Get returns the newest record for (kind, key).
func (s *Store) Get(kind Kind, key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byKey[keyIndex(kind, key)]
	return rec, ok
}

// GetByID returns the newest record with the given public id.
func (s *Store) GetByID(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[id]
	return rec, ok
}

// Len returns the number of distinct (kind, key) entries indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Dropped returns the number of lines skipped during replay (torn tail
// or corruption).
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Close flushes and closes the backing file. Further Puts fail; reads
// keep serving the in-memory index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
