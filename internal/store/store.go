// Package store persists finished simulation results in a segmented,
// binary-encoded, group-committed log: a directory of size-bounded
// segment files holding length-prefixed CRC-checked record frames,
// indexed in memory by canonical spec key and by public id.
//
// The store is popprotod's source of truth for finished work. The
// service's LRU is a cache in front of it: a result evicted from the LRU
// (or lost to a restart) is recovered from the store instead of being
// re-simulated, which matters because large-population elections and
// multi-replicate experiments cost minutes of CPU while a record costs
// a few KB of log.
//
// Writes are group-committed. A Put encodes its record, appends the
// frame to the pending batch, and blocks on the batch's commit
// notifier; a single flusher goroutine turns the batch into one
// pwrite + fdatasync on the active segment and then wakes every waiter
// at once. Because a writer blocks until its batch is durable, arrivals
// during an in-flight commit pile into the next batch — the disk's own
// sync latency is the batching clock — and the per-record fsync cost of
// the v1 JSONL store is amortized across every concurrent completion.
// The active segment is preallocated to its size bound so the steady
// state commit is an fdatasync with no file-size metadata to journal.
//
// Crash safety is by construction of the format. A record is indexed
// (visible) only after the fdatasync covering it returns, so the log
// never acknowledges a record that was not durable. A crash mid-commit
// leaves at most a torn suffix of frames; Open's tail scan stops at the
// first frame whose length or CRC does not check out and resumes
// appending from the last intact frame. Duplicate keys replay
// last-wins, so rewriting a record is just appending a newer one, and a
// background compactor rewrites sealed segments that are mostly
// superseded frames.
//
// Boot does not re-read the whole log: a segment that fills up is
// sealed with a footer frame indexing every record in it plus a
// fixed-size trailer locating the footer, so Open reads one footer per
// sealed segment and frame-scans only the unsealed tail. A v1 JSONL
// store (a regular file at the store path) is migrated into the
// segmented layout once, transparently, the first time it is opened.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"popproto/internal/obs"
)

// Kind labels what a record's payload is.
type Kind string

const (
	// KindJob records a single simulation job's Result.
	KindJob Kind = "job"
	// KindExperiment records an ensemble experiment's Aggregates.
	KindExperiment Kind = "experiment"
	// KindSweep records a parameter sweep's per-cell aggregates and
	// scaling summary. A sweep's cells are additionally persisted as
	// KindExperiment records under their own canonical keys, so cells
	// are individually restorable and dedupe against standalone
	// experiments.
	KindSweep Kind = "sweep"
)

// Record is one persisted result. Spec and Data are raw JSON so the
// store stays agnostic of the service's payload types (and old records
// survive payload evolution: unknown fields are simply ignored on
// decode).
type Record struct {
	// Kind labels the payload ("job" or "experiment").
	Kind Kind `json:"kind"`
	// Key is the canonical spec key the result is a deterministic
	// function of.
	Key string `json:"key"`
	// ID is the public identifier (the job/experiment id).
	ID string `json:"id"`
	// Spec is the canonical spec, JSON-encoded.
	Spec json.RawMessage `json:"spec"`
	// Data is the result payload, JSON-encoded.
	Data json.RawMessage `json:"data"`
	// SavedAt is when the record was appended (UTC).
	SavedAt time.Time `json:"savedAt"`
}

// Options tunes the store's write path. The zero value selects the
// defaults used by popprotod.
type Options struct {
	// SyncInterval bounds how long the flusher lets a pending batch
	// coalesce before forcing the group commit (default 5ms). The
	// flusher normally commits much sooner: it waits only until
	// arrivals quiesce, and while a commit's fdatasync is in flight
	// every new writer joins the next batch anyway, so the interval is
	// a latency backstop, not the batching clock.
	SyncInterval time.Duration
	// SegmentBytes is the size bound at which the active segment is
	// sealed and the log rolls to a new one (default 16 MiB, min 4 KiB).
	SegmentBytes int64
	// FlushBytes caps a batch's size: once the pending batch reaches
	// it the flusher stops coalescing and commits (default 1 MiB).
	FlushBytes int
	// NoCompact disables background compaction of sealed segments
	// (used by tests and benchmarks that need stable offsets).
	NoCompact bool
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 5 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.SegmentBytes < 4<<10 {
		o.SegmentBytes = 4 << 10
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 1 << 20
	}
	return o
}

// loc addresses one record frame on disk.
type loc struct {
	seg      uint64
	off      int64
	frameLen int64
}

// idxEntry is the in-memory index value: where the newest frame for a
// key (or id) lives. Payloads stay on disk and are read back on demand.
type idxEntry struct {
	loc
	savedAt int64
}

// segment is one log file. All fields are guarded by the store mutex
// except the file handle, which is safe for concurrent pread.
type segment struct {
	id      uint64
	path    string
	f       *os.File
	size    int64 // logical size: header + durable frames (+ footer + trailer when sealed)
	sealed  bool
	records int // record frames in the file, live or superseded
	garbage int // frames superseded by a newer Put (compaction trigger)
}

// batch is one pending group commit. Writers append frames under the
// store mutex and block on done; the flusher commits the whole buffer
// with one pwrite+fdatasync and closes done to release every waiter.
type batch struct {
	buf   []byte
	recs  []pendRec
	start time.Time
	done  chan struct{}
	err   error
}

type pendRec struct {
	kind     Kind
	key      string
	id       string
	savedAt  int64
	bufOff   int
	frameLen int64
}

// Store is a segmented group-committed result store. All methods are
// safe for concurrent use.
type Store struct {
	path string
	opts Options

	mu      sync.Mutex
	flushCV *sync.Cond
	cur     *batch
	closing bool

	// spareBuf/spareRecs recycle the last committed batch's buffers into
	// the next batch, so the steady state allocates no batch storage.
	spareBuf  []byte
	spareRecs []pendRec

	segs     []*segment // ordered by id; the last one is the active tail
	segByID  map[uint64]*segment
	writeOff int64 // logical end of the active segment (flusher-owned between commits)
	active   *os.File
	tailEnts []footerEntry // record frames in the active segment, for its eventual footer

	byKey map[string]idxEntry // kind-scoped key → newest frame
	byID  map[string]idxEntry

	generation uint64 // bumped by compaction; outstanding scans are invalidated

	dropped     int
	replayDur   time.Duration
	replayed    int
	sealedBoots int
	migrated    bool

	compacting  bool
	compactWG   sync.WaitGroup
	compactions uint64
	corruptGets uint64

	flusherDone chan struct{}

	// Optional instruments attached by Instrument; nil-safe no-ops
	// otherwise (obs methods tolerate nil receivers).
	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
	flushSeconds  *obs.Histogram
	batchRecords  *obs.Histogram
	appendedBytes *obs.Counter
	compactCount  *obs.Counter
}

// keyIndex scopes a canonical key by its kind, so a job and an
// experiment with coincidentally equal keys cannot collide.
func keyIndex(kind Kind, key string) string {
	return string(kind) + "\x00" + key
}

func segFileName(id uint64) string { return fmt.Sprintf("%08d.seg", id) }

// Open opens (creating if needed) the store at path with default
// Options and replays its segment indexes into memory. A regular file
// at path — a v1 JSONL store — is migrated to the segmented layout
// first. A torn tail (the signature of a crash mid-commit) is cut at
// the last intact frame; corrupt frames are counted (see Dropped).
func Open(path string) (*Store, error) {
	return OpenOptions(path, Options{})
}

// OpenOptions is Open with explicit write-path tuning.
func OpenOptions(path string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		path:        path,
		opts:        opts,
		segByID:     make(map[uint64]*segment),
		byKey:       make(map[string]idxEntry),
		byID:        make(map[string]idxEntry),
		flusherDone: make(chan struct{}),
	}
	s.flushCV = sync.NewCond(&s.mu)
	replayStart := time.Now()
	if err := s.boot(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.replayDur = time.Since(replayStart)
	go s.flusher()
	s.maybeCompact()
	return s, nil
}

// boot prepares the directory (migrating a v1 file if present), loads
// every segment, and leaves the store ready to append.
func (s *Store) boot() error {
	if err := s.prepareDir(); err != nil {
		return err
	}
	ids, err := s.listSegments()
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return s.createSegment(1)
	}
	// Two-phase load: collect every segment's entries first, so the
	// index maps can be allocated at final size (100k-record boots spend
	// more time growing maps than reading footers otherwise), then apply
	// in segment order for last-wins.
	perSeg := make([][]footerEntry, len(ids))
	total := 0
	for i, id := range ids {
		last := i == len(ids)-1
		ents, err := s.loadSegment(id, last)
		if err != nil {
			return err
		}
		perSeg[i] = ents
		total += len(ents)
	}
	s.byKey = make(map[string]idxEntry, total)
	s.byID = make(map[string]idxEntry, total)
	for i, ents := range perSeg {
		s.applyEntries(s.segs[i], ents)
	}
	// A frame not referenced by the final key index was superseded by a
	// later write: count it as garbage on its segment (the compaction
	// trigger).
	live := make(map[uint64]int, len(s.segs))
	for _, ent := range s.byKey {
		live[ent.seg]++
	}
	for _, seg := range s.segs {
		seg.garbage = seg.records - live[seg.id]
	}
	tail := s.segs[len(s.segs)-1]
	if tail.sealed {
		// Crash after sealing but before rolling: start a fresh tail.
		return s.createSegment(tail.id + 1)
	}
	return nil
}

// prepareDir makes sure s.path is a store directory, running the v1
// migration or finishing an interrupted one when needed.
func (s *Store) prepareDir() error {
	tmp := s.path + ".migrate.tmp"
	bak := s.path + ".v1.bak"
	fi, err := os.Stat(s.path)
	switch {
	case err == nil && fi.IsDir():
		// Normal case; clear any leftover migration scratch.
		os.RemoveAll(tmp)
		return nil
	case err == nil:
		// A regular file: a v1 JSONL store. Migrate it in place.
		migrated, dropped, err := migrateV1(s.path, s.opts)
		if err != nil {
			return err
		}
		s.migrated = true
		s.dropped += dropped
		_ = migrated
		return nil
	case os.IsNotExist(err):
		if _, terr := os.Stat(tmp); terr == nil {
			if _, berr := os.Stat(bak); berr == nil {
				// Crash between the two migration renames: the scratch
				// dir was fully written and synced (the original is only
				// moved aside after that), so finish the swap.
				if err := os.Rename(tmp, s.path); err != nil {
					return fmt.Errorf("store: finishing interrupted migration of %s: %w", s.path, err)
				}
				if err := syncDir(filepath.Dir(s.path)); err != nil {
					return err
				}
				s.migrated = true
				return nil
			}
			os.RemoveAll(tmp)
		}
		if _, berr := os.Stat(bak); berr == nil {
			// Crash after moving the v1 file aside but before the swap
			// (scratch missing): restore the original and migrate again.
			if err := os.Rename(bak, s.path); err != nil {
				return fmt.Errorf("store: restoring %s from %s: %w", s.path, bak, err)
			}
			return s.prepareDir()
		}
		if err := os.MkdirAll(s.path, 0o755); err != nil {
			return fmt.Errorf("store: creating %s: %w", s.path, err)
		}
		return syncDir(filepath.Dir(s.path))
	default:
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
}

// listSegments returns the segment ids present, ascending, clearing
// compaction scratch files.
func (s *Store) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(s.path)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.path, name))
			continue
		}
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil || id == 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// createSegment creates and preallocates a fresh active segment.
func (s *Store) createSegment(id uint64) error {
	path := filepath.Join(s.path, segFileName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment %s: %w", path, err)
	}
	if err := f.Truncate(s.opts.SegmentBytes); err != nil {
		f.Close()
		return fmt.Errorf("store: preallocating %s: %w", path, err)
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
		f.Close()
		return fmt.Errorf("store: writing header of %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := syncDir(s.path); err != nil {
		f.Close()
		return err
	}
	seg := &segment{id: id, path: path, f: f, size: segHeaderLen}
	s.segs = append(s.segs, seg)
	s.segByID[id] = seg
	s.active = f
	s.writeOff = segHeaderLen
	s.tailEnts = nil
	return nil
}

// loadSegment opens and indexes one existing segment. Sealed segments
// boot from their footer; the unsealed tail (and any sealed segment
// whose footer or trailer is damaged) is frame-scanned, and a non-tail
// segment recovered by scan is resealed so the next boot is cheap.
func (s *Store) loadSegment(id uint64, isTail bool) ([]footerEntry, error) {
	path := filepath.Join(s.path, segFileName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	seg := &segment{id: id, path: path, f: f}
	s.segs = append(s.segs, seg)
	s.segByID[id] = seg

	// Sealed fast path: pread only the header, trailer, and footer
	// frame, so boot cost scales with the index, not the record data.
	if ents, ok := sealedFooter(f, fi.Size()); ok {
		seg.sealed = true
		seg.size = fi.Size()
		s.sealedBoots++
		return ents, nil
	}

	// Slow path — the active tail, a damaged footer, or an interrupted
	// seal: read everything and walk the frames.
	buf := make([]byte, fi.Size())
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("store: reading segment %s: %w", path, err)
	}
	if len(buf) < segHeaderLen || string(buf[:segHeaderLen]) != segMagic {
		return nil, fmt.Errorf("store: %s: %w", path, errShortSegment)
	}

	ents, logicalEnd, torn := scanSegmentFrames(buf)
	s.dropped += torn

	if !isTail {
		// A full segment that never got (or lost) its footer — a crash
		// during seal. Rebuild the footer so later boots read it.
		if err := sealSegmentFile(f, ents, logicalEnd); err != nil {
			return nil, fmt.Errorf("store: resealing %s: %w", path, err)
		}
		fi, err := f.Stat()
		if err != nil {
			return nil, fmt.Errorf("store: stat %s: %w", path, err)
		}
		seg.sealed = true
		seg.size = fi.Size()
		return ents, nil
	}

	// The active tail. If a torn frame left garbage past the logical
	// end, zero the next frame header so the cut point is unambiguous,
	// then restore the preallocation.
	if torn > 0 && logicalEnd+frameHeaderLen <= fi.Size() {
		if _, err := f.WriteAt(make([]byte, frameHeaderLen), logicalEnd); err != nil {
			return nil, fmt.Errorf("store: cutting torn tail of %s: %w", path, err)
		}
		if err := fdatasync(f); err != nil {
			return nil, fmt.Errorf("store: syncing %s: %w", path, err)
		}
	}
	if fi.Size() < s.opts.SegmentBytes {
		if err := f.Truncate(s.opts.SegmentBytes); err != nil {
			return nil, fmt.Errorf("store: preallocating %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("store: syncing %s: %w", path, err)
		}
	}
	seg.size = logicalEnd
	s.active = f
	s.writeOff = logicalEnd
	s.tailEnts = ents
	return ents, nil
}

// sealedFooter reads a sealed segment's index without touching its
// record data: the 8-byte header, the 20-byte trailer, and the footer
// frame the trailer points at. Any damage reports !ok and the caller
// falls back to a full scan.
func sealedFooter(f *os.File, size int64) ([]footerEntry, bool) {
	if size < segHeaderLen+trailerLen {
		return nil, false
	}
	var hdr [segHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil || string(hdr[:]) != segMagic {
		return nil, false
	}
	var tr [trailerLen]byte
	if _, err := f.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, false
	}
	footerOff, ok := parseTrailerBytes(tr[:], size)
	if !ok {
		return nil, false
	}
	region := make([]byte, size-trailerLen-footerOff)
	if _, err := f.ReadAt(region, footerOff); err != nil {
		return nil, false
	}
	payload, _, err := parseFrame(region, 0)
	if err != nil {
		return nil, false
	}
	ents, err := decodeFooterPayload(payload)
	if err != nil {
		return nil, false
	}
	for _, e := range ents {
		if e.off+e.frameLen > footerOff {
			return nil, false
		}
	}
	return ents, true
}

// applyEntries indexes a segment's record frames in append order
// (last-wins across the whole store, since segments load in id order).
// Garbage (superseded frames) is not accounted here: boot recounts it
// in one pass over the final index, which is cheaper than a lookup per
// insert.
func (s *Store) applyEntries(seg *segment, ents []footerEntry) {
	for _, e := range ents {
		ent := idxEntry{loc{seg.id, e.off, e.frameLen}, e.savedAt}
		s.byKey[e.ki] = ent
		s.byID[e.id] = ent
		seg.records++
		s.replayed++
	}
}

// scanSegmentFrames walks buf's frames from the header to the first
// zero, torn, or corrupt frame, returning the record entries found, the
// logical end offset, and whether the stop was a torn frame (1) rather
// than the clean preallocated tail (0). Footer frames (from an
// interrupted seal) and unknown payload types are skipped.
func scanSegmentFrames(buf []byte) (ents []footerEntry, logicalEnd int64, torn int) {
	off := int64(segHeaderLen)
	for {
		payload, frameLen, err := parseFrame(buf, off)
		if err != nil {
			if errors.Is(err, errTornFrame) {
				torn = 1
			}
			return ents, off, torn
		}
		switch payload[0] {
		case payloadRecord:
			rec, err := decodeRecordPayload(payload)
			if err != nil {
				torn++
			} else {
				ents = append(ents, footerEntry{
					ki: keyIndex(rec.Kind, rec.Key), id: rec.ID,
					savedAt: rec.SavedAt.UnixNano(), off: off, frameLen: frameLen,
				})
			}
		case payloadFooter:
			// A footer without a trailer: an interrupted seal. The
			// records it indexes were already scanned; skip it.
		}
		off += frameLen
	}
}

// sealSegmentFile writes the footer frame and trailer for ents at
// logicalEnd, truncates the file to the sealed size, and syncs.
func sealSegmentFile(f *os.File, ents []footerEntry, logicalEnd int64) error {
	footer := appendFrame(nil, appendFooterPayload(nil, ents))
	out := appendTrailer(footer, logicalEnd)
	if _, err := f.WriteAt(out, logicalEnd); err != nil {
		return err
	}
	if err := f.Truncate(logicalEnd + int64(len(out))); err != nil {
		return err
	}
	return f.Sync()
}

// --- write path --------------------------------------------------------

// Put appends a record for (kind, key, id) with the given spec and data
// payloads and blocks until the group commit containing it is durable,
// so a record is visible only once durable. Re-putting a key overwrites
// its index entry (last-wins).
func (s *Store) Put(kind Kind, key, id string, spec, data any) error {
	specRaw, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("store: encoding spec for %s: %w", id, err)
	}
	dataRaw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("store: encoding data for %s: %w", id, err)
	}
	enqueued := time.Now()
	rec := Record{
		Kind:    kind,
		Key:     key,
		ID:      id,
		Spec:    specRaw,
		Data:    dataRaw,
		SavedAt: enqueued.UTC(),
	}
	// Build the frame in one allocation: reserve the header, encode the
	// payload behind it, then backfill length and CRC.
	frame := make([]byte, frameHeaderLen, frameHeaderLen+64+len(specRaw)+len(dataRaw))
	frame, err = appendRecordPayload(frame, rec)
	if err != nil {
		return err
	}
	payload := frame[frameHeaderLen:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return fmt.Errorf("store: %s is closed", s.path)
	}
	b := s.cur
	if b == nil {
		b = &batch{start: enqueued, done: make(chan struct{})}
		// Reuse the previous batch's buffers; batches are serialized by
		// the single flusher, so one spare of each is enough.
		b.buf, s.spareBuf = s.spareBuf, nil
		b.recs, s.spareRecs = s.spareRecs, nil
		s.cur = b
		s.flushCV.Signal()
	}
	b.recs = append(b.recs, pendRec{
		kind: kind, key: key, id: id, savedAt: rec.SavedAt.UnixNano(),
		bufOff: len(b.buf), frameLen: int64(len(frame)),
	})
	b.buf = append(b.buf, frame...)
	h := s.appendSeconds
	s.mu.Unlock()

	<-b.done
	if b.err != nil {
		return b.err
	}
	h.Observe(time.Since(enqueued).Seconds())
	return nil
}

// flushYieldCap bounds the flusher's coalescing yields per batch. Tuned
// empirically: past a few yields the marginal batch growth no longer
// pays for the added latency every waiter in the batch absorbs.
const flushYieldCap = 4

// flusher is the single goroutine that owns the active segment's write
// path: it coalesces the pending batch, rolls segments at the size
// bound, and commits each batch with one pwrite + fdatasync.
func (s *Store) flusher() {
	defer close(s.flusherDone)
	for {
		s.mu.Lock()
		for s.cur == nil && !s.closing {
			s.flushCV.Wait()
		}
		if s.cur == nil {
			s.mu.Unlock()
			return
		}
		// Let arrivals quiesce so concurrent writers land in one
		// commit: yield while the batch is still growing, bounded by
		// the size cap and the SyncInterval deadline. A yield lets every
		// runnable writer enqueue, so the loop converges once all
		// concurrent writers are blocked in the batch — on an idle store
		// it costs one scheduler yield before committing.
		deadline := s.cur.start.Add(s.opts.SyncInterval)
		for yields := 0; yields < flushYieldCap && len(s.cur.buf) < s.opts.FlushBytes && time.Now().Before(deadline); yields++ {
			n := len(s.cur.recs)
			s.mu.Unlock()
			runtime.Gosched()
			s.mu.Lock()
			if len(s.cur.recs) == n {
				break
			}
		}
		b := s.cur
		s.cur = nil
		seg := s.segs[len(s.segs)-1]
		s.mu.Unlock()

		b.err = s.commit(seg, b)
		close(b.done)
	}
}

// commit writes batch b at the tail of the active segment (rolling to a
// fresh segment first when it would overflow) and fdatasyncs before
// indexing, so no waiter observes an ack for a non-durable record.
func (s *Store) commit(seg *segment, b *batch) error {
	flushStart := time.Now()
	if s.writeOff+int64(len(b.buf)) > s.opts.SegmentBytes && s.writeOff > segHeaderLen {
		rolled, err := s.roll(seg)
		if err != nil {
			return err
		}
		seg = rolled
	}
	off := s.writeOff
	if _, err := s.active.WriteAt(b.buf, off); err != nil {
		return fmt.Errorf("store: appending to %s: %w", seg.path, err)
	}
	syncStart := time.Now()
	if err := fdatasync(s.active); err != nil {
		return fmt.Errorf("store: syncing %s: %w", seg.path, err)
	}
	now := time.Now()
	s.writeOff = off + int64(len(b.buf))

	s.mu.Lock()
	for _, p := range b.recs {
		ki := keyIndex(p.kind, p.key)
		e := footerEntry{ki: ki, id: p.id, savedAt: p.savedAt,
			off: off + int64(p.bufOff), frameLen: p.frameLen}
		s.tailEnts = append(s.tailEnts, e)
		if old, ok := s.byKey[ki]; ok {
			if oldSeg, ok := s.segByID[old.seg]; ok {
				oldSeg.garbage++
			}
		}
		ent := idxEntry{loc{seg.id, e.off, e.frameLen}, p.savedAt}
		s.byKey[ki] = ent
		s.byID[p.id] = ent
	}
	seg.records += len(b.recs)
	seg.size = s.writeOff
	// The batch's storage is dead from here (waiters only read err and
	// done); hand it to the next batch.
	s.spareBuf = b.buf[:0]
	s.spareRecs = b.recs[:0]
	s.fsyncSeconds.Observe(now.Sub(syncStart).Seconds())
	s.flushSeconds.Observe(now.Sub(flushStart).Seconds())
	s.batchRecords.Observe(float64(len(b.recs)))
	s.appendedBytes.Add(uint64(len(b.buf)))
	s.mu.Unlock()
	s.maybeCompact()
	return nil
}

// roll seals the active segment (footer + trailer + truncate to size)
// and creates the next preallocated one. Called only from the flusher.
func (s *Store) roll(seg *segment) (*segment, error) {
	s.mu.Lock()
	ents := s.tailEnts
	s.mu.Unlock()
	if err := sealSegmentFile(s.active, ents, s.writeOff); err != nil {
		return nil, fmt.Errorf("store: sealing %s: %w", seg.path, err)
	}
	fi, err := s.active.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat %s: %w", seg.path, err)
	}
	s.mu.Lock()
	seg.sealed = true
	seg.size = fi.Size()
	if err := s.createSegment(seg.id + 1); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	next := s.segs[len(s.segs)-1]
	s.mu.Unlock()
	return next, nil
}

// --- read path ---------------------------------------------------------

// readRecordAt reads and decodes the frame at ent, verifying its CRC.
func readRecordAt(f *os.File, ent idxEntry) (Record, error) {
	buf := make([]byte, ent.frameLen)
	if _, err := f.ReadAt(buf, ent.off); err != nil {
		return Record{}, err
	}
	payload, _, err := parseFrame(buf, 0)
	if err != nil {
		return Record{}, err
	}
	return decodeRecordPayload(payload)
}

func (s *Store) lookup(ent idxEntry, ok bool) (Record, bool) {
	if !ok {
		return Record{}, false
	}
	s.mu.Lock()
	seg := s.segByID[ent.seg]
	var f *os.File
	if seg != nil {
		f = seg.f
	}
	s.mu.Unlock()
	if f == nil {
		return Record{}, false
	}
	rec, err := readRecordAt(f, ent)
	if err != nil {
		s.mu.Lock()
		s.corruptGets++
		s.mu.Unlock()
		return Record{}, false
	}
	return rec, true
}

// Get returns the newest record for (kind, key), read back from disk
// and CRC-checked.
func (s *Store) Get(kind Kind, key string) (Record, bool) {
	s.mu.Lock()
	ent, ok := s.byKey[keyIndex(kind, key)]
	s.mu.Unlock()
	return s.lookup(ent, ok)
}

// GetByID returns the newest record with the given public id.
func (s *Store) GetByID(id string) (Record, bool) {
	s.mu.Lock()
	ent, ok := s.byID[id]
	s.mu.Unlock()
	return s.lookup(ent, ok)
}

// Len returns the number of distinct (kind, key) entries indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Dropped returns the number of frames (or, before migration, JSONL
// lines) skipped as torn or corrupt during replay.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Migrated reports whether Open converted a v1 JSONL file into the
// segmented layout (the original is kept next to it as *.v1.bak).
func (s *Store) Migrated() bool { return s.migrated }

// Segments returns the number of segment files, sealed ones first.
func (s *Store) Segments() (total, sealed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		if seg.sealed {
			sealed++
		}
	}
	return len(s.segs), sealed
}

// Path returns the backing directory path.
func (s *Store) Path() string { return s.path }

// Close commits any pending batch, stops the flusher and waits for
// in-flight compaction. Further Puts fail; reads keep serving.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.flushCV.Broadcast()
	s.mu.Unlock()
	<-s.flusherDone
	s.compactWG.Wait()
	return nil
}

// closeFiles releases every handle (only used on failed Open).
func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
}

// Instrument creates the store's instruments and registers them on reg:
// append/commit latency and batch-size histograms, appended-byte and
// record-count series, segment and compaction gauges, and the boot
// replay's accounting. Call once, after Open.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	s.appendSeconds = obs.NewHistogram("popprotod_store_append_seconds",
		"Wall time from a record's enqueue to its group commit being durable.",
		obs.ExpBuckets(1e-5, 2, 14))
	s.fsyncSeconds = obs.NewHistogram("popprotod_store_fsync_seconds",
		"Wall time of the fdatasync within one group commit.", obs.ExpBuckets(1e-5, 2, 14))
	s.flushSeconds = obs.NewHistogram("popprotod_store_flush_seconds",
		"Wall time of one group commit (segment roll + write + fdatasync).",
		obs.ExpBuckets(1e-5, 2, 14))
	s.batchRecords = obs.NewHistogram("popprotod_store_batch_records",
		"Records committed per group-commit batch.", obs.ExpBuckets(1, 2, 10))
	s.appendedBytes = obs.NewCounter("popprotod_store_appended_bytes_total",
		"Bytes appended to the store since boot.")
	s.compactCount = obs.NewCounter("popprotod_store_compactions_total",
		"Sealed segments rewritten by the background compactor since boot.")
	s.mu.Unlock()
	reg.MustRegister(
		s.appendSeconds, s.fsyncSeconds, s.flushSeconds, s.batchRecords,
		s.appendedBytes, s.compactCount,
		obs.NewGaugeFunc("popprotod_store_records",
			"Distinct (kind, key) records indexed.", func() float64 { return float64(s.Len()) }),
		obs.NewGaugeFunc("popprotod_store_segments",
			"Segment files backing the store.", func() float64 {
				total, _ := s.Segments()
				return float64(total)
			}),
		obs.NewGaugeFunc("popprotod_store_garbage_records",
			"Superseded (last-wins) frames awaiting compaction.", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				g := 0
				for _, seg := range s.segs {
					g += seg.garbage
				}
				return float64(g)
			}),
		obs.NewGaugeFunc("popprotod_store_replay_seconds",
			"Wall time of the boot replay (footer loads + tail scan).",
			func() float64 { return s.replayDur.Seconds() }),
		obs.NewGaugeFunc("popprotod_store_replayed_records",
			"Record frames indexed during the boot replay.", func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.replayed)
			}),
		obs.NewGaugeFunc("popprotod_store_replay_dropped_lines",
			"Frames or v1 lines skipped during replay (torn tail or corruption).",
			func() float64 { return float64(s.Dropped()) }),
	)
}
