//go:build !linux

package store

import "os"

// fdatasync falls back to a full fsync where the cheaper data-only
// variant is unavailable.
func fdatasync(f *os.File) error { return f.Sync() }

// syncDir fsyncs a directory where supported; platforms that reject
// directory fsync still get file-level durability.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
