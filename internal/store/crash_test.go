package store

// White-box crash and corruption tests: they reach into the segment
// layout (write offsets, index locations) to place damage exactly where
// a crash or bit rot would, then assert the recovery contract — every
// acknowledged durable record is served, torn tails are cut, damaged
// footers are rebuilt, and nothing ever panics.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var testOpts = Options{SegmentBytes: 1 << 16, NoCompact: true}

func mustPut(t *testing.T, s *Store, kind Kind, key, id string, steps int) {
	t.Helper()
	if err := s.Put(kind, key, id, map[string]string{"k": key}, map[string]int{"steps": steps}); err != nil {
		t.Fatal(err)
	}
}

func steps(t *testing.T, rec Record) int {
	t.Helper()
	var p struct {
		Steps int `json:"steps"`
	}
	if err := json.Unmarshal(rec.Data, &p); err != nil {
		t.Fatalf("decoding payload: %v", err)
	}
	return p.Steps
}

// TestTornTailRecovery simulates a crash mid-commit: a partial frame at
// the tail must be dropped, the intact prefix preserved, and the next
// append must land cleanly.
func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	s, err := OpenOptions(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, KindJob, "intact", "j1", 1)
	end := s.writeOff
	segPath := s.segs[len(s.segs)-1].path
	s.Close()

	// Simulate the crash: a frame header promising more bytes than were
	// written, followed by half a payload.
	f, err := os.OpenFile(segPath, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, frameHeaderLen+10)
	binary.LittleEndian.PutUint32(torn[0:4], 500)
	binary.LittleEndian.PutUint32(torn[4:8], 0xdeadbeef)
	if _, err := f.WriteAt(torn, end); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenOptions(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if re.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1 (the torn frame)", re.Dropped())
	}
	if _, ok := re.Get(KindJob, "intact"); !ok {
		t.Error("intact record lost to the torn tail")
	}
	mustPut(t, re, KindJob, "after", "j3", 3)
	re.Close()

	final, err := OpenOptions(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.Dropped() != 0 {
		t.Errorf("post-recovery store still reports %d dropped frames", final.Dropped())
	}
	for _, key := range []string{"intact", "after"} {
		if _, ok := final.Get(KindJob, key); !ok {
			t.Errorf("record %q missing after recovery round-trip", key)
		}
	}
}

// fillSealed writes enough records to seal at least one segment,
// returning the store (still open).
func fillSealed(t *testing.T, path string, opts Options) (*Store, int) {
	t.Helper()
	s, err := OpenOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		mustPut(t, s, KindJob, fmt.Sprintf("k%d", n), fmt.Sprintf("j%d", n), n)
		n++
		if _, sealed := s.Segments(); sealed >= 1 {
			return s, n
		}
		if n > 10000 {
			t.Fatal("never sealed a segment")
		}
	}
}

// TestCorruptFrameInSealedSegment: bit rot inside a sealed segment must
// not take down the boot (the footer still indexes everything) and must
// surface as a failed read for the damaged record only.
func TestCorruptFrameInSealedSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	opts := Options{SegmentBytes: 4 << 10, NoCompact: true}
	s, n := fillSealed(t, path, opts)
	// Find a record living in the sealed segment.
	s.mu.Lock()
	var victimKey string
	var at idxEntry
	for ki, ent := range s.byKey {
		if seg := s.segByID[ent.seg]; seg != nil && seg.sealed {
			victimKey = ki[len(KindJob)+1:]
			at = ent
			break
		}
	}
	segPath := s.segByID[at.seg].path
	s.mu.Unlock()
	if victimKey == "" {
		t.Fatal("no record found in a sealed segment")
	}
	s.Close()

	f, err := os.OpenFile(segPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte; the frame CRC must catch it.
	var b [1]byte
	if _, err := f.ReadAt(b[:], at.off+frameHeaderLen+3); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], at.off+frameHeaderLen+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != n {
		t.Fatalf("len = %d, want %d (footer boot must index everything)", re.Len(), n)
	}
	if _, ok := re.Get(KindJob, victimKey); ok {
		t.Errorf("corrupt record %q served", victimKey)
	}
	good := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if key == victimKey {
			continue
		}
		if rec, ok := re.Get(KindJob, key); ok && steps(t, rec) == i {
			good++
		}
	}
	if good != n-1 {
		t.Errorf("served %d intact records, want %d", good, n-1)
	}
}

// TestTruncatedFooterRebuild: a sealed segment whose footer or trailer
// was lost (crash during seal, truncation) is recovered by a frame scan
// and resealed so the next boot is cheap again.
func TestTruncatedFooterRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	opts := Options{SegmentBytes: 4 << 10, NoCompact: true}
	s, n := fillSealed(t, path, opts)
	s.mu.Lock()
	var sealedPath string
	for _, seg := range s.segs {
		if seg.sealed {
			sealedPath = seg.path
			break
		}
	}
	s.mu.Unlock()
	s.Close()

	// Chop the trailer (and part of the footer) off the sealed segment.
	fi, err := os.Stat(sealedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(sealedPath, fi.Size()-trailerLen-5); err != nil {
		t.Fatal(err)
	}

	re, err := OpenOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != n {
		t.Fatalf("len = %d after footer loss, want %d", re.Len(), n)
	}
	for i := 0; i < n; i++ {
		if rec, ok := re.Get(KindJob, fmt.Sprintf("k%d", i)); !ok || steps(t, rec) != i {
			t.Fatalf("record k%d lost or wrong after footer rebuild", i)
		}
	}
	re.Close()

	// The rebuild resealed the segment: the next boot reads footers.
	again, err := OpenOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.sealedBoots == 0 {
		t.Error("resealed segment not booted from its footer")
	}
	if again.Len() != n {
		t.Errorf("len = %d on the post-rebuild boot, want %d", again.Len(), n)
	}
}

// TestCompactionDropsSuperseded: overwriting a small keyset across
// sealed segments must trigger compaction, and the rewritten segments
// must keep serving exactly the newest records.
func TestCompactionDropsSuperseded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	opts := Options{SegmentBytes: 4 << 10}
	s, err := OpenOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	round := 0
	for s.Compactions() == 0 {
		for k := 0; k < keys; k++ {
			mustPut(t, s, KindJob, fmt.Sprintf("k%d", k), fmt.Sprintf("j%d", k), round*keys+k)
		}
		round++
		if round > 2000 {
			t.Fatal("compaction never triggered")
		}
	}
	// Wait out any in-flight compaction, then check the current view.
	s.compactWG.Wait()
	want := map[string]int{}
	for k := 0; k < keys; k++ {
		rec, ok := s.Get(KindJob, fmt.Sprintf("k%d", k))
		if !ok {
			t.Fatalf("key k%d lost after compaction", k)
		}
		want[fmt.Sprintf("k%d", k)] = steps(t, rec)
	}
	s.Close()

	re, err := OpenOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != keys {
		t.Fatalf("len = %d after compaction + reopen, want %d", re.Len(), keys)
	}
	for key, wantSteps := range want {
		rec, ok := re.Get(KindJob, key)
		if !ok || steps(t, rec) != wantSteps {
			t.Fatalf("record %q wrong after compaction + reopen", key)
		}
	}
}

// TestScanInvalidatedByCompaction: a scan that straddles a compaction
// must fail with ErrScanInvalidated rather than serve a moved frame,
// and a stale cursor must be rejected the same way.
func TestScanInvalidatedByCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	s, err := OpenOptions(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		mustPut(t, s, KindJob, fmt.Sprintf("k%d", i), fmt.Sprintf("j%d", i), i)
	}
	sc, err := s.Scan(KindJob, "")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Next() {
		t.Fatal(sc.Err())
	}
	cursor := sc.Cursor()

	// Simulate what a compaction swap does to scans.
	s.mu.Lock()
	s.generation++
	s.mu.Unlock()

	for sc.Next() {
	}
	if sc.Err() != ErrScanInvalidated {
		t.Errorf("mid-scan error = %v, want ErrScanInvalidated", sc.Err())
	}
	if _, err := s.Scan(KindJob, cursor); err != ErrScanInvalidated {
		t.Errorf("stale cursor error = %v, want ErrScanInvalidated", err)
	}
}

// TestMigrationCrashWindows exercises the two interrupted-migration
// states Open must finish: scratch complete but not installed, and v1
// moved aside with the scratch missing.
func TestMigrationCrashWindows(t *testing.T) {
	writeV1 := func(t *testing.T, path string) {
		rec := Record{Kind: KindJob, Key: "k", ID: "j",
			Spec: json.RawMessage(`{}`), Data: json.RawMessage(`{"steps":1}`),
			SavedAt: time.Unix(1000, 0).UTC()}
		line, _ := json.Marshal(rec)
		if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("between-renames", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "results.jsonl")
		writeV1(t, path)
		recs, _, err := scanV1(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeSegments(path+".migrate.tmp", recs, testOpts.withDefaults()); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(path, path+".v1.bak"); err != nil {
			t.Fatal(err)
		}
		// Crash here: scratch + backup exist, store path missing.
		s, err := OpenOptions(path, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if !s.Migrated() || s.Len() != 1 {
			t.Fatalf("migrated=%v len=%d after finishing interrupted migration", s.Migrated(), s.Len())
		}
	})

	t.Run("backup-only", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "results.jsonl")
		writeV1(t, path+".v1.bak")
		// Crash with only the moved-aside v1 file: restore and migrate.
		s, err := OpenOptions(path, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if !s.Migrated() || s.Len() != 1 {
			t.Fatalf("migrated=%v len=%d after backup-only recovery", s.Migrated(), s.Len())
		}
	})
}

// FuzzSegmentReplay mutates (and truncates) segment files of a small
// store and reopens it: whatever the damage, Open must never panic and
// never serve wrong data — every key either reads back exactly or is
// absent — and the store must keep accepting appends.
func FuzzSegmentReplay(f *testing.F) {
	f.Add(uint32(100), byte(0xff), uint16(0), false)
	f.Add(uint32(8), byte(0x01), uint16(0), true)   // segment header
	f.Add(uint32(0), byte(0), uint16(25), true)     // truncate into the trailer
	f.Add(uint32(12), byte(0x80), uint16(0), false) // frame CRC region
	f.Add(uint32(4096), byte(0x55), uint16(100), true)
	f.Fuzz(func(t *testing.T, pos uint32, val byte, chop uint16, hitSealed bool) {
		path := filepath.Join(t.TempDir(), "results.store")
		opts := Options{SegmentBytes: 4 << 10, NoCompact: true}
		s, err := OpenOptions(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		const n = 40
		want := map[string]int{}
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", i%20) // every key written twice: supersedes present
			mustPut(t, s, KindJob, key, "j"+key, i)
			want[key] = i
		}
		s.mu.Lock()
		var target string
		for _, seg := range s.segs {
			if seg.sealed == hitSealed {
				target = seg.path
			}
		}
		s.mu.Unlock()
		s.Close()
		if target == "" {
			t.Skip("no segment in the requested state")
		}

		fh, err := os.OpenFile(target, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fi, _ := fh.Stat()
		size := fi.Size()
		if size > 0 {
			if _, err := fh.WriteAt([]byte{val}, int64(pos)%size); err != nil {
				t.Fatal(err)
			}
			if chop > 0 {
				newSize := size - int64(chop)%size
				if err := fh.Truncate(newSize); err != nil {
					t.Fatal(err)
				}
			}
		}
		fh.Close()

		re, err := OpenOptions(path, opts)
		if err != nil {
			return // a clearly-corrupt store may refuse to open; it must not panic
		}
		for key, w := range want {
			rec, ok := re.Get(KindJob, key)
			if !ok {
				continue // damaged or cut away: absence is the allowed outcome
			}
			if rec.Key != key || rec.ID != "j"+key {
				t.Fatalf("key %q served foreign record %+v", key, rec)
			}
			if got := steps(t, rec); got != w && got != w-20 {
				// w-20: the first write of a twice-written key is legal
				// if the supersede fell in the damaged region.
				t.Fatalf("key %q: steps = %d, want %d (or stale %d)", key, got, w, w-20)
			}
		}
		if err := re.Put(KindJob, "post-damage", "jpd", nil, map[string]int{"steps": 1}); err != nil {
			t.Fatalf("store unusable after recovery: %v", err)
		}
		re.Close()
	})
}
