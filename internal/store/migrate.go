// One-time migration of a v1 JSONL store (a single regular file of
// JSON-encoded records, one per line, fsynced per append) into the v2
// segmented layout. The migration is crash-safe by rename ordering:
//
//  1. the v1 file is scanned tolerantly (torn tail and corrupt lines
//     skipped and counted, exactly as the v1 replay did),
//  2. a complete v2 store is written and synced at <path>.migrate.tmp,
//  3. the v1 file is renamed aside to <path>.v1.bak,
//  4. the scratch dir is renamed to <path>.
//
// A crash before step 3 leaves the v1 file in place and the next Open
// restarts from scratch; a crash between 3 and 4 is detected by Open
// (scratch dir + backup present, store path missing) and finished by
// redoing the final rename. The v1 backup is kept, never deleted.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// migrateV1 converts the v1 JSONL file at path into a v2 store
// directory at the same path, returning the record and dropped-line
// counts from the scan.
func migrateV1(path string, opts Options) (migrated, dropped int, err error) {
	recs, dropped, err := scanV1(path)
	if err != nil {
		return 0, 0, err
	}
	tmp := path + ".migrate.tmp"
	os.RemoveAll(tmp)
	if err := writeSegments(tmp, recs, opts); err != nil {
		os.RemoveAll(tmp)
		return 0, 0, err
	}
	bak := path + ".v1.bak"
	os.Remove(bak)
	if err := os.Rename(path, bak); err != nil {
		return 0, 0, fmt.Errorf("store: moving v1 store aside: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, 0, fmt.Errorf("store: installing migrated store: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return 0, 0, err
	}
	return len(recs), dropped, nil
}

// scanV1 reads a v1 JSONL store in line order, skipping (and counting)
// torn or corrupt lines, mirroring the v1 replay's tolerance.
func scanV1(path string) (recs []Record, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: opening v1 store %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				dropped++ // torn final line: a crash mid-append
			}
			return recs, dropped, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("store: reading v1 store %s: %w", path, err)
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Kind == "" || rec.Key == "" || rec.ID == "" {
			dropped++
			continue
		}
		if rec.SavedAt.IsZero() {
			rec.SavedAt = time.Unix(0, 0).UTC()
		}
		recs = append(recs, rec)
	}
}

// writeSegments materializes recs, in order, as a complete store
// directory at dir: full segments are sealed with footer indexes, the
// last one is left unsealed and preallocated as the active tail, and
// every file plus the directory is synced before returning.
func writeSegments(dir string, recs []Record, opts Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", dir, err)
	}
	w := &segWriter{dir: dir, opts: opts}
	for _, rec := range recs {
		if err := w.add(rec); err != nil {
			return err
		}
	}
	return w.finish()
}

// segWriter writes segments sequentially (migration and tests only; the
// live store appends through the group-commit flusher instead).
type segWriter struct {
	dir   string
	opts  Options
	segID uint64
	f     *os.File
	off   int64
	ents  []footerEntry
}

func (w *segWriter) open() error {
	w.segID++
	path := filepath.Join(w.dir, segFileName(w.segID))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment %s: %w", path, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("store: writing header of %s: %w", path, err)
	}
	w.f = f
	w.off = segHeaderLen
	w.ents = nil
	return nil
}

func (w *segWriter) add(rec Record) error {
	payload, err := appendRecordPayload(nil, rec)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, payload)
	if w.f != nil && w.off+int64(len(frame)) > w.opts.SegmentBytes && w.off > segHeaderLen {
		if err := w.seal(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.open(); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: writing segment: %w", err)
	}
	w.ents = append(w.ents, footerEntry{
		ki: keyIndex(rec.Kind, rec.Key), id: rec.ID,
		savedAt: rec.SavedAt.UnixNano(), off: w.off, frameLen: int64(len(frame)),
	})
	w.off += int64(len(frame))
	return nil
}

func (w *segWriter) seal() error {
	if err := sealSegmentFile(w.f, w.ents, w.off); err != nil {
		return err
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// finish leaves the last segment unsealed and preallocated (it becomes
// the active tail) and syncs it and the directory.
func (w *segWriter) finish() error {
	if w.f == nil {
		if err := w.open(); err != nil {
			return err
		}
	}
	if w.off < w.opts.SegmentBytes {
		if err := w.f.Truncate(w.opts.SegmentBytes); err != nil {
			return fmt.Errorf("store: preallocating segment: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	return syncDir(w.dir)
}
