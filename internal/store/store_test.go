package store_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"popproto/internal/store"
)

type payload struct {
	Steps uint64 `json:"steps"`
}

func open(t *testing.T, path string) *store.Store {
	t.Helper()
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, filepath.Join(t.TempDir(), "results.jsonl"))

	if err := s.Put(store.KindJob, "pll n=100", "j01", map[string]int{"n": 100}, payload{Steps: 42}); err != nil {
		t.Fatal(err)
	}
	rec, ok := s.Get(store.KindJob, "pll n=100")
	if !ok {
		t.Fatal("record not found by key")
	}
	var p payload
	if err := json.Unmarshal(rec.Data, &p); err != nil || p.Steps != 42 {
		t.Fatalf("payload round-trip: %v (%+v)", err, p)
	}
	if rec.ID != "j01" || rec.Kind != store.KindJob {
		t.Errorf("record = %+v", rec)
	}
	if byID, ok := s.GetByID("j01"); !ok || byID.Key != "pll n=100" {
		t.Errorf("GetByID = %+v, %v", byID, ok)
	}
	if _, ok := s.Get(store.KindExperiment, "pll n=100"); ok {
		t.Error("job record served for the experiment kind")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestReplayAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		if err := s.Put(store.KindJob, key, "j"+key, nil, payload{Steps: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Last-wins: overwrite one key.
	if err := s.Put(store.KindJob, "a", "ja", nil, payload{Steps: 999}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := open(t, path)
	if re.Len() != 10 {
		t.Fatalf("replayed %d entries, want 10", re.Len())
	}
	rec, ok := re.Get(store.KindJob, "a")
	if !ok {
		t.Fatal("key a lost across reopen")
	}
	var p payload
	if err := json.Unmarshal(rec.Data, &p); err != nil || p.Steps != 999 {
		t.Errorf("last-wins violated: steps = %d, want 999 (%v)", p.Steps, err)
	}
	if re.Dropped() != 0 {
		t.Errorf("clean file reported %d dropped lines", re.Dropped())
	}
}

// TestTornTailRecovery simulates a crash mid-append: the torn final line
// must be dropped and truncated away, the intact prefix preserved, and a
// subsequent Put must land on a fresh line.
func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(store.KindJob, "intact", "j1", nil, payload{Steps: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the crash: half a record, no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"job","key":"torn","id":"j2","sp`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := open(t, path)
	if re.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1 (the torn tail)", re.Dropped())
	}
	if _, ok := re.Get(store.KindJob, "intact"); !ok {
		t.Error("intact record lost to the torn tail")
	}
	if _, ok := re.Get(store.KindJob, "torn"); ok {
		t.Error("torn record served")
	}
	// Appending after recovery must produce a parseable file.
	if err := re.Put(store.KindJob, "after", "j3", nil, payload{Steps: 3}); err != nil {
		t.Fatal(err)
	}
	re.Close()

	final := open(t, path)
	if final.Dropped() != 0 {
		t.Errorf("post-recovery file still has %d bad lines", final.Dropped())
	}
	for _, key := range []string{"intact", "after"} {
		if _, ok := final.Get(store.KindJob, key); !ok {
			t.Errorf("record %q missing after recovery round-trip", key)
		}
	}
}

// TestCorruptMiddleLineSkipped: a corrupt line in the middle (bit rot,
// concurrent writer) must not take down the records after it.
func TestCorruptMiddleLineSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(store.KindJob, "first", "j1", nil, payload{Steps: 1})
	s.Close()

	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("not json at all\n")
	f.Close()

	s2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.Put(store.KindJob, "second", "j2", nil, payload{Steps: 2})
	s2.Close()

	re := open(t, path)
	if re.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", re.Dropped())
	}
	for _, key := range []string{"first", "second"} {
		if _, ok := re.Get(store.KindJob, key); !ok {
			t.Errorf("record %q lost around the corrupt line", key)
		}
	}
}

func TestClosedPutFails(t *testing.T) {
	s := open(t, filepath.Join(t.TempDir(), "results.jsonl"))
	s.Close()
	if err := s.Put(store.KindJob, "k", "j", nil, nil); err == nil {
		t.Error("Put on a closed store succeeded")
	}
	// Reads keep serving the index after Close.
	if _, ok := s.Get(store.KindJob, "k"); ok {
		t.Error("unexpected record")
	}
}
