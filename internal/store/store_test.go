package store_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"popproto/internal/store"
)

type payload struct {
	Steps uint64 `json:"steps"`
}

func open(t *testing.T, path string) *store.Store {
	t.Helper()
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, filepath.Join(t.TempDir(), "results.store"))

	if err := s.Put(store.KindJob, "pll n=100", "j01", map[string]int{"n": 100}, payload{Steps: 42}); err != nil {
		t.Fatal(err)
	}
	rec, ok := s.Get(store.KindJob, "pll n=100")
	if !ok {
		t.Fatal("record not found by key")
	}
	var p payload
	if err := json.Unmarshal(rec.Data, &p); err != nil || p.Steps != 42 {
		t.Fatalf("payload round-trip: %v (%+v)", err, p)
	}
	if rec.ID != "j01" || rec.Kind != store.KindJob {
		t.Errorf("record = %+v", rec)
	}
	if rec.SavedAt.IsZero() {
		t.Error("SavedAt not preserved")
	}
	if byID, ok := s.GetByID("j01"); !ok || byID.Key != "pll n=100" {
		t.Errorf("GetByID = %+v, %v", byID, ok)
	}
	if _, ok := s.Get(store.KindExperiment, "pll n=100"); ok {
		t.Error("job record served for the experiment kind")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestReplayAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		if err := s.Put(store.KindJob, key, "j"+key, nil, payload{Steps: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Last-wins: overwrite one key.
	if err := s.Put(store.KindJob, "a", "ja", nil, payload{Steps: 999}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := open(t, path)
	if re.Len() != 10 {
		t.Fatalf("replayed %d entries, want 10", re.Len())
	}
	rec, ok := re.Get(store.KindJob, "a")
	if !ok {
		t.Fatal("key a lost across reopen")
	}
	var p payload
	if err := json.Unmarshal(rec.Data, &p); err != nil || p.Steps != 999 {
		t.Errorf("last-wins violated: steps = %d, want 999 (%v)", p.Steps, err)
	}
	if re.Dropped() != 0 {
		t.Errorf("clean store reported %d dropped frames", re.Dropped())
	}
}

// TestConcurrentPuts drives the group-commit path: every acknowledged
// Put must be served, both immediately and across a reopen.
func TestConcurrentPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(store.KindJob, key, "j"+key, nil, payload{Steps: uint64(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != writers*per {
		t.Fatalf("len = %d, want %d", s.Len(), writers*per)
	}
	s.Close()

	re := open(t, path)
	if re.Len() != writers*per {
		t.Fatalf("replayed %d records, want %d", re.Len(), writers*per)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < per; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			if _, ok := re.Get(store.KindJob, key); !ok {
				t.Fatalf("acknowledged record %q lost across reopen", key)
			}
		}
	}
}

// TestV1Migration: opening a v1 JSONL store (a regular file) migrates
// it into the segmented layout, serving every prior record by key and
// id, with the v1 file kept aside as a backup.
func TestV1Migration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")
	var lines []byte
	savedAt := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		rec := store.Record{
			Kind: store.KindJob, Key: fmt.Sprintf("k%d", i), ID: fmt.Sprintf("j%d", i),
			Spec: json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)), Data: json.RawMessage(`{"steps":7}`),
			SavedAt: savedAt.Add(time.Duration(i) * time.Second),
		}
		line, _ := json.Marshal(rec)
		lines = append(lines, line...)
		lines = append(lines, '\n')
	}
	// A last-wins overwrite, a corrupt line, and a torn tail.
	over, _ := json.Marshal(store.Record{
		Kind: store.KindJob, Key: "k3", ID: "j3",
		Spec: json.RawMessage(`{"n":3}`), Data: json.RawMessage(`{"steps":99}`), SavedAt: savedAt,
	})
	lines = append(lines, over...)
	lines = append(lines, '\n')
	lines = append(lines, []byte("not json at all\n")...)
	lines = append(lines, []byte(`{"kind":"job","key":"torn","id":"jx","sp`)...)
	if err := os.WriteFile(path, lines, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, path)
	if !s.Migrated() {
		t.Fatal("v1 file not reported as migrated")
	}
	if s.Len() != 20 {
		t.Fatalf("migrated %d records, want 20", s.Len())
	}
	if s.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2 (corrupt line + torn tail)", s.Dropped())
	}
	for i := 0; i < 20; i++ {
		rec, ok := s.Get(store.KindJob, fmt.Sprintf("k%d", i))
		if !ok {
			t.Fatalf("record k%d lost in migration", i)
		}
		if byID, ok := s.GetByID(fmt.Sprintf("j%d", i)); !ok || byID.Key != rec.Key {
			t.Fatalf("record j%d not served by id after migration", i)
		}
	}
	var p payload
	rec, _ := s.Get(store.KindJob, "k3")
	if json.Unmarshal(rec.Data, &p); p.Steps != 99 {
		t.Errorf("last-wins lost in migration: steps = %d, want 99", p.Steps)
	}
	if rec.SavedAt != savedAt {
		t.Errorf("savedAt = %v, want %v", rec.SavedAt, savedAt)
	}
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Errorf("store path is not a directory after migration (%v)", err)
	}
	if _, err := os.Stat(path + ".v1.bak"); err != nil {
		t.Errorf("v1 backup missing: %v", err)
	}

	// New writes and a second reopen work on the migrated layout.
	if err := s.Put(store.KindJob, "post", "jpost", nil, payload{Steps: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re := open(t, path)
	if re.Migrated() {
		t.Error("second open reported a migration")
	}
	if re.Len() != 21 {
		t.Errorf("reopened len = %d, want 21", re.Len())
	}
}

// TestScan covers the query layer's iteration contract: kind filtering,
// last-wins deduplication, and cursor resumption.
func TestScan(t *testing.T) {
	s := open(t, filepath.Join(t.TempDir(), "results.store"))
	for i := 0; i < 5; i++ {
		if err := s.Put(store.KindJob, fmt.Sprintf("j%d", i), fmt.Sprintf("jid%d", i), nil, payload{Steps: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(store.KindExperiment, "e0", "eid0", nil, payload{Steps: 50}); err != nil {
		t.Fatal(err)
	}
	// Supersede one job: the scan must yield only the newest frame.
	if err := s.Put(store.KindJob, "j2", "jid2", nil, payload{Steps: 222}); err != nil {
		t.Fatal(err)
	}

	sc, err := s.Scan(store.KindJob, "")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]uint64{}
	for sc.Next() {
		rec := sc.Record()
		var p payload
		json.Unmarshal(rec.Data, &p)
		if _, dup := seen[rec.Key]; dup {
			t.Fatalf("key %q scanned twice", rec.Key)
		}
		seen[rec.Key] = p.Steps
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(seen) != 5 {
		t.Fatalf("scanned %d job records, want 5 (got %v)", len(seen), seen)
	}
	if seen["j2"] != 222 {
		t.Errorf("scan served a superseded frame for j2: steps = %d", seen["j2"])
	}

	// Resume via cursor after two records.
	sc2, err := s.Scan("", "")
	if err != nil {
		t.Fatal(err)
	}
	var first []string
	for len(first) < 2 && sc2.Next() {
		first = append(first, sc2.Record().Key)
	}
	rest, err := s.Scan("", sc2.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	var tail []string
	for rest.Next() {
		tail = append(tail, rest.Record().Key)
	}
	if rest.Err() != nil {
		t.Fatal(rest.Err())
	}
	if got := len(first) + len(tail); got != 6 {
		t.Errorf("cursor resume saw %d records total, want 6 (%v then %v)", got, first, tail)
	}

	if _, err := s.Scan("", "not a cursor"); err != store.ErrInvalidCursor {
		t.Errorf("bad cursor error = %v", err)
	}
}

func TestClosedPutFails(t *testing.T) {
	s := open(t, filepath.Join(t.TempDir(), "results.store"))
	if err := s.Put(store.KindJob, "kept", "jk", nil, payload{Steps: 5}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(store.KindJob, "k", "j", nil, nil); err == nil {
		t.Error("Put on a closed store succeeded")
	}
	// Reads keep serving after Close.
	if _, ok := s.Get(store.KindJob, "kept"); !ok {
		t.Error("record not served after Close")
	}
	if _, ok := s.Get(store.KindJob, "k"); ok {
		t.Error("unexpected record")
	}
}
