// Segment file format for the v2 store.
//
// A store is a directory of numbered segment files ("00000001.seg",
// "00000002.seg", ...). Each segment starts with an 8-byte magic header
// and then holds a sequence of frames:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// The first payload byte is a type tag: 0x01 for a record, 0x02 for the
// footer index a segment gains when it is sealed. A sealed segment ends
// with a fixed-size trailer locating the footer:
//
//	"PPSEGIDX" | u64 footerOffset | u32 crc32c(magic+offset)
//
// so boot can index a sealed segment by reading its footer alone. The
// active (last) segment has no trailer and is preallocated to its size
// bound; the preallocated tail is zero-filled, and a zero payloadLen is
// invalid by construction, so the frame scan stops cleanly at the
// logical end. Everything is little-endian; lengths are validated before
// any allocation, and payloads are CRC-checked before decoding, in the
// same bounds-checked cursor style as ensemble's binary marshalling.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"time"
)

const (
	segMagic       = "PPSEG2\x00\x01" // 8 bytes: format name + version
	segHeaderLen   = 8
	frameHeaderLen = 8 // u32 payloadLen | u32 crc32c(payload)

	payloadRecord byte = 0x01
	payloadFooter byte = 0x02

	trailerMagic = "PPSEGIDX"
	trailerLen   = 20 // 8 magic + 8 footer offset + 4 crc

	// maxPayloadBytes bounds a single frame's payload so a corrupt
	// length can never provoke a giant allocation. Results are a few KB;
	// footers of full segments are well under this too.
	maxPayloadBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	errTornFrame    = errors.New("store: torn or corrupt frame")
	errZeroFrame    = errors.New("store: zero frame (preallocated tail)")
	errShortSegment = errors.New("store: segment shorter than header")
)

// appendFrame appends one framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseFrame reads the frame starting at off in b. It returns the
// payload (aliasing b) and the total frame length. A zero payloadLen
// means the scan ran into the preallocated (or truncated) tail; any
// other violation — length past the buffer, CRC mismatch — is a torn or
// corrupt frame. Callers treat both as "logical end of segment".
func parseFrame(b []byte, off int64) (payload []byte, frameLen int64, err error) {
	if off+frameHeaderLen > int64(len(b)) {
		if off == int64(len(b)) {
			return nil, 0, errZeroFrame // exact end: clean
		}
		return nil, 0, errTornFrame
	}
	n := binary.LittleEndian.Uint32(b[off : off+4])
	if n == 0 {
		return nil, 0, errZeroFrame
	}
	if n > maxPayloadBytes {
		return nil, 0, errTornFrame
	}
	end := off + frameHeaderLen + int64(n)
	if end > int64(len(b)) {
		return nil, 0, errTornFrame
	}
	payload = b[off+frameHeaderLen : end]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[off+4:off+8]) {
		return nil, 0, errTornFrame
	}
	return payload, frameHeaderLen + int64(n), nil
}

// --- record payload ----------------------------------------------------

// appendRecordPayload encodes rec as a record payload (type tag 0x01).
// Layout, all little-endian:
//
//	0x01 | u8 kindLen | kind | u16 keyLen | key | u16 idLen | id
//	     | i64 savedAtUnixNano | u32 specLen | spec | u32 dataLen | data
func appendRecordPayload(buf []byte, rec Record) ([]byte, error) {
	if len(rec.Kind) > 0xff {
		return nil, fmt.Errorf("store: kind too long (%d bytes)", len(rec.Kind))
	}
	if len(rec.Key) > 0xffff || len(rec.ID) > 0xffff {
		return nil, fmt.Errorf("store: key or id too long (%d/%d bytes)", len(rec.Key), len(rec.ID))
	}
	if len(rec.Spec) > maxPayloadBytes/4 || len(rec.Data) > maxPayloadBytes/4 {
		return nil, fmt.Errorf("store: spec or data too large (%d/%d bytes)", len(rec.Spec), len(rec.Data))
	}
	buf = append(buf, payloadRecord, byte(len(rec.Kind)))
	buf = append(buf, rec.Kind...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Key)))
	buf = append(buf, rec.Key...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.ID)))
	buf = append(buf, rec.ID...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.SavedAt.UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Spec)))
	buf = append(buf, rec.Spec...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Data)))
	buf = append(buf, rec.Data...)
	return buf, nil
}

// segDecoder is a bounds-checked cursor over a payload. Reads past the
// end latch an error and return zero values, so decode paths stay
// straight-line and check errors once at the end (the decoder idiom
// from ensemble's marshalling).
type segDecoder struct {
	b   []byte
	s   string // optional string view of b, for zero-copy str()
	off int
	err error
}

func (d *segDecoder) fail() {
	if d.err == nil {
		d.err = errTornFrame
	}
}

func (d *segDecoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// str returns the next n bytes as a substring of d.s; the caller must
// have set s to string(b). Substrings share s's backing array, so a
// footer decode allocates one string, not one per field.
func (d *segDecoder) str(n int) string {
	if d.err != nil || n < 0 || d.off+n > len(d.s) {
		d.fail()
		return ""
	}
	s := d.s[d.off : d.off+n]
	d.off += n
	return s
}

func (d *segDecoder) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *segDecoder) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *segDecoder) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *segDecoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// finish reports the latched error, also failing if the payload was not
// fully consumed (trailing junk means a framing bug or corruption).
func (d *segDecoder) finish() error {
	if d.err == nil && d.off != len(d.b) {
		d.fail()
	}
	return d.err
}

// decodeRecordPayload decodes a record payload (including its leading
// type tag). The returned Record's Spec/Data are copies, safe to retain.
func decodeRecordPayload(p []byte) (Record, error) {
	d := &segDecoder{b: p}
	if d.u8() != payloadRecord {
		d.fail()
	}
	var rec Record
	rec.Kind = Kind(d.bytes(int(d.u8())))
	rec.Key = string(d.bytes(int(d.u16())))
	rec.ID = string(d.bytes(int(d.u16())))
	nanos := int64(d.u64())
	rec.Spec = append([]byte(nil), d.bytes(int(d.u32()))...)
	rec.Data = append([]byte(nil), d.bytes(int(d.u32()))...)
	if err := d.finish(); err != nil {
		return Record{}, err
	}
	if rec.Kind == "" || rec.Key == "" || rec.ID == "" {
		return Record{}, errTornFrame
	}
	rec.SavedAt = time.Unix(0, nanos).UTC()
	return rec, nil
}

// --- footer payload ----------------------------------------------------

// footerEntry locates one record frame inside its own segment. frameLen
// includes the frame header, so (off, frameLen) is directly readable.
type footerEntry struct {
	// ki is the combined index key — kind + "\x00" + key, exactly what
	// keyIndex builds — stored pre-joined so a footer boot indexes
	// entries without re-concatenating per record.
	ki       string
	id       string
	savedAt  int64 // unix nanos
	off      int64
	frameLen int64
}

// appendFooterPayload encodes the sealed segment's index (type 0x02):
//
//	0x02 | u32 count | count × entry
//	entry: u8 kindLen | kind | u16 keyLen | key | u16 idLen | id
//	       | i64 savedAt | u64 off | u32 frameLen
func appendFooterPayload(buf []byte, entries []footerEntry) []byte {
	buf = append(buf, payloadFooter)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.ki)))
		buf = append(buf, e.ki...)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.id)))
		buf = append(buf, e.id...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.savedAt))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.frameLen))
	}
	return buf
}

func decodeFooterPayload(p []byte) ([]footerEntry, error) {
	// One string conversion for the whole payload: every ki and id below
	// is a substring of it, so a 100k-entry boot makes one allocation
	// for its strings instead of 200k.
	d := &segDecoder{b: p, s: string(p)}
	if d.u8() != payloadFooter {
		d.fail()
	}
	count := d.u32()
	// Each entry is at least 4+2+8+8+4 + 3 + 1 = 30 bytes; reject counts
	// the remaining bytes cannot possibly hold before allocating.
	if d.err == nil && int64(count) > int64(len(p))/30 {
		d.fail()
	}
	var entries []footerEntry
	if d.err == nil {
		entries = make([]footerEntry, 0, count)
	}
	for i := uint32(0); i < count && d.err == nil; i++ {
		var e footerEntry
		e.ki = d.str(int(d.u32()))
		e.id = d.str(int(d.u16()))
		e.savedAt = int64(d.u64())
		e.off = int64(d.u64())
		e.frameLen = int64(d.u32())
		sep := strings.IndexByte(e.ki, 0)
		if sep <= 0 || sep == len(e.ki)-1 || e.id == "" || e.off < segHeaderLen || e.frameLen <= frameHeaderLen {
			d.fail()
			break
		}
		entries = append(entries, e)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return entries, nil
}

// --- trailer -----------------------------------------------------------

// appendTrailer appends the fixed-size sealed-segment trailer pointing
// at the footer frame.
func appendTrailer(buf []byte, footerOff int64) []byte {
	var t [trailerLen]byte
	copy(t[0:8], trailerMagic)
	binary.LittleEndian.PutUint64(t[8:16], uint64(footerOff))
	binary.LittleEndian.PutUint32(t[16:20], crc32.Checksum(t[0:16], crcTable))
	return append(buf, t[:]...)
}

// parseTrailerBytes validates the trailerLen bytes read from the end of
// a segment of the given total size and returns the footer frame offset,
// or ok=false when the segment is not sealed (or the trailer is damaged —
// callers then rebuild by scanning).
func parseTrailerBytes(t []byte, size int64) (footerOff int64, ok bool) {
	if size < segHeaderLen+trailerLen || len(t) != trailerLen {
		return 0, false
	}
	if string(t[0:8]) != trailerMagic {
		return 0, false
	}
	if crc32.Checksum(t[0:16], crcTable) != binary.LittleEndian.Uint32(t[16:20]) {
		return 0, false
	}
	off := int64(binary.LittleEndian.Uint64(t[8:16]))
	if off < segHeaderLen || off+frameHeaderLen > size-trailerLen {
		return 0, false
	}
	return off, true
}
