//go:build linux

package store

import (
	"os"
	"syscall"
)

// fdatasync flushes file data (and any metadata needed to read it back,
// such as a changed size) without forcing an inode timestamp journal
// write. On the preallocated active segment the steady-state commit
// changes no metadata at all, which is what keeps the group commit flat
// in cost regardless of batch size.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

// syncDir fsyncs a directory so entry creations and renames inside it
// are durable (segment rolls, migration renames, compaction swaps).
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
