package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// ErrInvalidCursor is returned by Scan for a cursor that does not parse
// or does not reference a known position.
var ErrInvalidCursor = errors.New("store: invalid scan cursor")

// ErrScanInvalidated is reported by Scan.Err when a background
// compaction rewrote a segment mid-scan; the caller restarts the scan
// (cursors embed the store generation, so a stale cursor fails fast
// with the same error).
var ErrScanInvalidated = errors.New("store: scan invalidated by compaction")

// Scan iterates the store's current records — the newest frame per
// (kind, key), exactly the set Get serves — in stable (segment, offset)
// order, reading payloads back from disk one frame at a time. Create
// one with (*Store).Scan, advance with Next, and resume a later scan
// from Cursor.
type Scan struct {
	s    *Store
	kind Kind // "" = every kind

	segs []scanSeg
	gen  uint64

	segIdx int
	off    int64
	rec    Record
	err    error
}

// scanSeg snapshots one segment at Scan creation: the id, the durable
// size, and the file handle as of the snapshot. Holding the handle (not
// the live *segment) keeps the scan race-free against a concurrent
// compaction swapping the segment's file; the generation check turns
// such a swap into ErrScanInvalidated instead of wrong data.
type scanSeg struct {
	id   uint64
	path string
	f    *os.File
	size int64
}

// Scan starts a scan of kind's current records ("" scans every kind)
// from the opaque cursor ("" starts at the beginning). The scan
// observes a snapshot of the segment list; records committed after the
// snapshot may or may not be seen.
func (s *Store) Scan(kind Kind, cursor string) (*Scan, error) {
	sc := &Scan{s: s, kind: kind}
	s.mu.Lock()
	sc.gen = s.generation
	for _, seg := range s.segs {
		sc.segs = append(sc.segs, scanSeg{id: seg.id, path: seg.path, f: seg.f, size: seg.size})
	}
	s.mu.Unlock()
	sc.off = segHeaderLen
	if cursor == "" {
		return sc, nil
	}
	var gen, segID uint64
	var off int64
	if n, err := fmt.Sscanf(cursor, "g%d.s%d.o%d", &gen, &segID, &off); n != 3 || err != nil {
		return nil, ErrInvalidCursor
	}
	if gen != sc.gen {
		return nil, ErrScanInvalidated
	}
	if off < segHeaderLen {
		return nil, ErrInvalidCursor
	}
	sc.segIdx = len(sc.segs)
	for i, ss := range sc.segs {
		if ss.id >= segID {
			sc.segIdx = i
			if ss.id == segID {
				sc.off = off
			}
			break
		}
	}
	return sc, nil
}

// Next advances to the next current record, reporting false at the end
// of the snapshot or on error (see Err).
func (sc *Scan) Next() bool {
	if sc.err != nil {
		return false
	}
	for sc.segIdx < len(sc.segs) {
		ss := sc.segs[sc.segIdx]
		if sc.off+frameHeaderLen > ss.size {
			sc.segIdx++
			sc.off = segHeaderLen
			continue
		}
		hdr := make([]byte, frameHeaderLen)
		if _, err := ss.f.ReadAt(hdr, sc.off); err != nil {
			sc.err = fmt.Errorf("store: scanning %s: %w", ss.path, err)
			return false
		}
		frame, frameLen, perr := parseFrameAt(ss.f, hdr, sc.off, ss.size)
		if perr != nil {
			// Within the durable size every frame was once intact;
			// anything unreadable here means bit rot — stop the
			// segment, move on (the index may still serve it from a
			// compacted copy later).
			sc.segIdx++
			sc.off = segHeaderLen
			continue
		}
		at := loc{ss.id, sc.off, frameLen}
		sc.off += frameLen
		if frame[0] != payloadRecord {
			continue // footer frame of a sealed segment
		}
		rec, err := decodeRecordPayload(frame)
		if err != nil {
			continue
		}
		if sc.kind != "" && rec.Kind != sc.kind {
			continue
		}
		// Serve only the current (last-wins) frame for the key, and
		// fail the scan if compaction moved the ground under it.
		sc.s.mu.Lock()
		gen := sc.s.generation
		ent, ok := sc.s.byKey[keyIndex(rec.Kind, rec.Key)]
		sc.s.mu.Unlock()
		if gen != sc.gen {
			sc.err = ErrScanInvalidated
			return false
		}
		if !ok || ent.loc != at {
			continue // superseded by a newer Put
		}
		sc.rec = rec
		return true
	}
	return false
}

// parseFrameAt validates and reads the frame whose header hdr sits at
// off, bounded by the durable size limit.
func parseFrameAt(f *os.File, hdr []byte, off, limit int64) ([]byte, int64, error) {
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	if n == 0 || n > maxPayloadBytes || off+frameHeaderLen+n > limit {
		return nil, 0, errTornFrame
	}
	buf := make([]byte, frameHeaderLen+n)
	copy(buf, hdr)
	if _, err := f.ReadAt(buf[frameHeaderLen:], off+frameHeaderLen); err != nil {
		return nil, 0, err
	}
	return parseFrame(buf, 0)
}

// Record returns the record Next advanced to.
func (sc *Scan) Record() Record { return sc.rec }

// Err returns the error that stopped the scan, if any.
func (sc *Scan) Err() error { return sc.err }

// Cursor returns an opaque token resuming the scan after the last
// record Next returned. Cursors expire when compaction rewrites a
// segment (ErrScanInvalidated); callers then restart from "".
func (sc *Scan) Cursor() string {
	segID := uint64(0)
	if sc.segIdx < len(sc.segs) {
		segID = sc.segs[sc.segIdx].id
	} else if len(sc.segs) > 0 {
		segID = sc.segs[len(sc.segs)-1].id + 1
	}
	return fmt.Sprintf("g%d.s%d.o%d", sc.gen, segID, sc.off)
}
