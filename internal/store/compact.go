package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// compactMinDeadRatio is the fraction of a sealed segment's frames that
// must be superseded before the compactor rewrites it.
const compactMinDeadRatio = 0.5

// maybeCompact starts a background compaction of the most garbage-heavy
// sealed segment past the dead-ratio threshold, at most one at a time.
func (s *Store) maybeCompact() {
	if s.opts.NoCompact {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compacting || s.closing {
		return
	}
	var victim *segment
	for _, seg := range s.segs {
		if !seg.sealed || seg.records == 0 {
			continue
		}
		if float64(seg.garbage) < compactMinDeadRatio*float64(seg.records) {
			continue
		}
		if victim == nil || seg.garbage > victim.garbage {
			victim = seg
		}
	}
	if victim == nil {
		return
	}
	s.compacting = true
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		if err := s.compactSegment(victim); err != nil {
			// Compaction is an optimization; a failure leaves the old
			// segment fully intact and is retried on the next trigger.
			s.mu.Lock()
			s.compacting = false
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
		s.maybeCompact()
	}()
}

// compactSegment rewrites one sealed segment keeping only frames the
// index still points at, then swaps the new file in by rename. Index
// entries are re-pointed only if they still reference the old location,
// so records superseded during the rewrite stay correct. The swap bumps
// the store generation, invalidating any in-flight Scan.
func (s *Store) compactSegment(seg *segment) error {
	s.mu.Lock()
	size := seg.size
	s.mu.Unlock()
	buf := make([]byte, size)
	if _, err := seg.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("store: compacting %s: %w", seg.path, err)
	}

	// Collect surviving frames: those the live index still points at.
	type survivor struct {
		e     footerEntry
		frame []byte
		wasAt loc
	}
	var survivors []survivor
	ents, _, _ := scanSegmentFrames(buf)
	s.mu.Lock()
	for _, e := range ents {
		at := loc{seg.id, e.off, e.frameLen}
		if ent, ok := s.byKey[e.ki]; ok && ent.loc == at {
			survivors = append(survivors, survivor{e: e, frame: buf[e.off : e.off+e.frameLen], wasAt: at})
		} else if ent, ok := s.byID[e.id]; ok && ent.loc == at {
			survivors = append(survivors, survivor{e: e, frame: buf[e.off : e.off+e.frameLen], wasAt: at})
		}
	}
	s.mu.Unlock()

	// Write the replacement sealed segment to a scratch file.
	tmpPath := seg.path + ".tmp"
	os.Remove(tmpPath)
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: compacting %s: %w", seg.path, err)
	}
	out := []byte(segMagic)
	newEnts := make([]footerEntry, len(survivors))
	for i, sv := range survivors {
		newEnts[i] = sv.e
		newEnts[i].off = int64(len(out))
		out = append(out, sv.frame...)
	}
	logicalEnd := int64(len(out))
	out = appendFrame(out, appendFooterPayload(nil, newEnts))
	out = appendTrailer(out, logicalEnd)
	if _, err := f.Write(out); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compacting %s: %w", seg.path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compacting %s: %w", seg.path, err)
	}
	if err := os.Rename(tmpPath, seg.path); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compacting %s: %w", seg.path, err)
	}
	if err := syncDir(filepath.Dir(seg.path)); err != nil {
		f.Close()
		return err
	}

	// Swap the segment in and re-point surviving index entries that
	// still reference their old location. The old file handle is left
	// to the garbage collector (os.File finalizer) rather than closed,
	// so a Get that resolved its location just before the swap can
	// still pread the old inode.
	s.mu.Lock()
	live := 0
	for i, sv := range survivors {
		at := loc{seg.id, newEnts[i].off, newEnts[i].frameLen}
		ki := sv.e.ki
		moved := false
		if ent, ok := s.byKey[ki]; ok && ent.loc == sv.wasAt {
			s.byKey[ki] = idxEntry{at, ent.savedAt}
			moved = true
		}
		if ent, ok := s.byID[sv.e.id]; ok && ent.loc == sv.wasAt {
			s.byID[sv.e.id] = idxEntry{at, ent.savedAt}
			moved = true
		}
		if moved {
			live++
		}
	}
	seg.f = f
	seg.size = int64(len(out))
	seg.records = len(survivors)
	seg.garbage = len(survivors) - live
	s.generation++
	s.compactions++
	s.compactCount.Add(1)
	s.mu.Unlock()
	return nil
}

// Compactions returns how many sealed segments the background
// compactor has rewritten since Open.
func (s *Store) Compactions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}
