package store

// Benchmarks for the v2 store against faithful v1 baselines, written
// white-box so the replay benchmark can build its 100k-record fixture
// directly through the segment writer instead of 100k group commits.
//
// BenchmarkStore_Append compares sustained durable-append throughput:
// the v1 design (one JSON line + one fsync per record, serialized by a
// mutex) against the v2 group commit (writers batched into one
// write+fdatasync on a preallocated segment), at 1, 16, and 64
// concurrent writers.
//
// BenchmarkStore_Replay compares boot cost over a 100k-record corpus:
// the v1 full replay (scan + JSON-decode every line, rebuild the index)
// against the v2 snapshot+tail boot (decode only the sealed segments'
// footer indexes plus the unsealed tail).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type benchPayload struct {
	Steps uint64 `json:"steps"`
}

// v1Store reproduces the v1 store's write path: one JSON-encoded line
// appended and fsynced per Put, under a mutex.
type v1Store struct {
	mu sync.Mutex
	f  *os.File
}

func openV1(b *testing.B, path string) *v1Store {
	b.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return &v1Store{f: f}
}

func (s *v1Store) Put(kind Kind, key, id string, spec, data any) error {
	specRaw, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	dataRaw, err := json.Marshal(data)
	if err != nil {
		return err
	}
	line, err := json.Marshal(Record{
		Kind: kind, Key: key, ID: id,
		Spec: specRaw, Data: dataRaw, SavedAt: time.Now().UTC(),
	})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	return s.f.Sync()
}

// putter abstracts the two write paths so both run the same driver.
type putter interface {
	Put(kind Kind, key, id string, spec, data any) error
}

// benchAppend drives b.N durable appends across `writers` goroutines,
// each record with a unique key (no last-wins dedup, no cache effects).
// Keys are precomputed and the payloads are raw JSON so the timed region
// is the store's own write path — the caller-side marshalling both paths
// would share stays outside the measurement.
func benchAppend(b *testing.B, s putter, writers int) {
	b.Helper()
	spec := json.RawMessage(`{"protocol":"pll","n":100000,"engine":"count"}`)
	data := json.RawMessage(`{"steps":1234567,"parallelTime":12.34}`)
	keys := make([][]string, writers)
	per := b.N / writers
	extra := b.N % writers
	for w := 0; w < writers; w++ {
		n := per
		if w < extra {
			n++
		}
		keys[w] = make([]string, n)
		for i := 0; i < n; i++ {
			keys[w][i] = fmt.Sprintf("w%d-%d", w, i)
		}
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(keys []string) {
			defer wg.Done()
			for _, key := range keys {
				if err := s.Put(KindJob, key, "j"+key, spec, data); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(keys[w])
	}
	wg.Wait()
	b.StopTimer()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}

func BenchmarkStore_Append(b *testing.B) {
	for _, writers := range []int{1, 16} {
		b.Run(fmt.Sprintf("v1fsync/w%d", writers), func(b *testing.B) {
			s := openV1(b, filepath.Join(b.TempDir(), "results.jsonl"))
			benchAppend(b, s, writers)
		})
	}
	for _, writers := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("group/w%d", writers), func(b *testing.B) {
			s, err := OpenOptions(filepath.Join(b.TempDir(), "results.store"),
				Options{NoCompact: true})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { s.Close() })
			benchAppend(b, s, writers)
		})
	}
}

const replayRecords = 100_000

// benchCorpus builds the replay fixture: replayRecords distinct records
// with realistic small spec/data payloads.
func benchCorpus() []Record {
	recs := make([]Record, replayRecords)
	savedAt := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := range recs {
		recs[i] = Record{
			Kind:    KindJob,
			Key:     fmt.Sprintf("pll n=%d engine=count seed=%d", 1000+i, i),
			ID:      fmt.Sprintf("j%08x", i),
			Spec:    json.RawMessage(fmt.Sprintf(`{"protocol":"pll","n":%d,"engine":"count","seed":%d}`, 1000+i, i)),
			Data:    json.RawMessage(fmt.Sprintf(`{"steps":%d,"parallelTime":%d.5}`, i*17, i%100)),
			SavedAt: savedAt.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return recs
}

func BenchmarkStore_Replay(b *testing.B) {
	recs := benchCorpus()

	b.Run("v1full/100k", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "results.jsonl")
		var buf []byte
		for _, rec := range recs {
			line, err := json.Marshal(rec)
			if err != nil {
				b.Fatal(err)
			}
			buf = append(buf, line...)
			buf = append(buf, '\n')
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The v1 boot: scan and JSON-decode every line, then
			// rebuild the in-memory index maps.
			got, dropped, err := scanV1(path)
			if err != nil || dropped != 0 {
				b.Fatalf("scan: %v (%d dropped)", err, dropped)
			}
			byKey := make(map[string]Record, len(got))
			byID := make(map[string]Record, len(got))
			for _, rec := range got {
				byKey[string(rec.Kind)+"\x00"+rec.Key] = rec
				byID[rec.ID] = rec
			}
			if len(byKey) != replayRecords || len(byID) != replayRecords {
				b.Fatalf("replayed %d/%d records", len(byKey), len(byID))
			}
		}
	})

	b.Run("v2footer/100k", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "results.store")
		// 1 MiB segments seal the corpus into ~20 footer-indexed
		// segments plus one unsealed tail.
		opts := Options{SegmentBytes: 1 << 20, NoCompact: true}.withDefaults()
		if err := writeSegments(dir, recs, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := OpenOptions(dir, Options{SegmentBytes: 1 << 20, NoCompact: true})
			if err != nil {
				b.Fatal(err)
			}
			if s.Len() != replayRecords {
				b.Fatalf("replayed %d records", s.Len())
			}
			b.StopTimer()
			s.Close()
			b.StartTimer()
		}
		b.StopTimer()
		s, err := OpenOptions(dir, Options{NoCompact: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if _, sealed := s.Segments(); sealed == 0 {
			b.Fatal("fixture has no sealed segments; the footer path was not exercised")
		}
	})
}
