// Package registry is the string-keyed catalog of every population
// protocol in the repository. It is the single place where protocols are
// constructed from untyped parameters: the command-line tools, the
// examples, the experiment harness and the popprotod simulation service
// all resolve a protocol name plus a Spec here and get back a type-erased
// Election they can drive without knowing the protocol's state type.
//
// The generic simulation API (pp.Protocol[S], pp.Runner[S]) is
// compile-time parameterized by the state type S; a network service or a
// flag parser has no S. Each catalog entry therefore closes over its
// concrete state type once, at registration, and exposes the erased
// Election surface — everything observable (steps, parallel time, leader
// counts, censuses rendered as strings) without the type parameter.
//
// To add a protocol: implement pp.Protocol[S], append an entry to the
// catalog in this file, and every consumer — leaderelect, the comparison
// example, the Table 1 harness row, the HTTP service — picks it up by
// name.
package registry

import (
	"errors"
	"fmt"
	"strings"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/epidemic"
	"popproto/internal/pp"
)

// MinN is the smallest population any catalog entry accepts: the scheduler
// needs an ordered pair of distinct agents.
const MinN = 2

// ErrBadSpec reports a Spec the registry rejected; errors.Is(err, ErrBadSpec)
// distinguishes caller mistakes (HTTP 400s) from internal failures.
var ErrBadSpec = errors.New("registry: invalid spec")

// Spec selects and parameterizes a protocol. The zero values of Engine,
// Seed and M are meaningful defaults: the per-agent engine, seed 0, and
// the protocol's canonical knowledge parameter.
type Spec struct {
	// Protocol is the catalog key (see Keys).
	Protocol string
	// N is the population size; every entry requires N ≥ MinN.
	N int
	// Engine selects the simulation engine.
	Engine pp.Engine
	// Seed seeds the scheduler.
	Seed uint64
	// M is the knowledge parameter of the PLL variants; 0 selects the
	// canonical m = ⌈lg n⌉. Entries that take no m reject nonzero values.
	M int
}

// ParamDoc documents one protocol-specific Spec knob for catalog listings.
type ParamDoc struct {
	// Name is the Spec field (and JSON job-spec field) spelling.
	Name string
	// Doc is a one-line description including the legal range.
	Doc string
}

// Entry is one catalog row: documentation plus the construction and
// sizing functions for a protocol.
type Entry struct {
	// Key is the registry key ("pll", "angluin", …).
	Key string
	// Summary is a one-line description for catalog listings.
	Summary string
	// States and Time are the paper's asymptotic states-per-agent and
	// expected stabilization time (the Table 1 columns).
	States string
	Time   string
	// Target is the leader count at which a run counts as stabilized:
	// 1 for elections, 0 for the epidemic coverage workload (whose
	// "leaders" are the agents not yet reached).
	Target int
	// Params documents the protocol-specific Spec knobs beyond
	// n/engine/seed.
	Params []ParamDoc
	// CensusFriendly reports whether the protocol's runs visit few enough
	// distinct states for the census-based engines (count, batch) to pay:
	// true for every entry except MaxID, whose Θ(n) random identifiers
	// grow the census toward one state per agent. Every engine remains
	// *valid* for every entry — this is advisory sizing metadata, surfaced
	// by the catalog listings and used for the engine recommendation.
	CensusFriendly bool

	// check validates the protocol-specific Spec knobs; nil means the
	// entry takes none beyond the shared fields (then noM applies).
	check      func(Spec) error
	build      func(Spec) (Election, error)
	stateCount func(n, m int) int
	budget     func(n int) uint64
}

// StateCount returns the states-per-agent count for a population of size n
// with knowledge parameter m (0 = canonical), counted as Table 1 counts
// them.
func (e Entry) StateCount(n, m int) int { return e.stateCount(n, m) }

// RecommendedEngine returns the engine best suited to this entry at
// population size n: the per-agent engine for census-hostile protocols
// (MaxID) and for small populations, where its flat per-interaction cost
// wins, and the hybrid engine beyond that — it starts in the batch
// engine's collision-free rounds and hands the census to per-interaction
// or geometric no-op-skipping mode whenever the measured payoff flips, so
// it is never slower than the best fixed choice by more than the
// (constant-cost) mode controller. Any engine is valid; this is the
// default a frontend should pick when the caller does not care.
func (e Entry) RecommendedEngine(n int) pp.Engine {
	if !e.CensusFriendly {
		return pp.EngineAgent
	}
	if n < 1<<16 {
		return pp.EngineAgent
	}
	return pp.EngineHybrid
}

// SuitableEngines returns the engines that scale to large n for this
// entry, in preference order (all engines are valid at any size).
func (e Entry) SuitableEngines() []pp.Engine {
	if !e.CensusFriendly {
		return []pp.Engine{pp.EngineAgent}
	}
	return []pp.Engine{pp.EngineHybrid, pp.EngineBatch, pp.EngineCount, pp.EngineAgent}
}

// StepBudget returns a generous default interaction budget for a
// population of size n: thousands of expected stabilization times. Runs
// exceeding it are declared non-stabilizing rather than looped forever;
// the service uses it as the default job budget.
func (e Entry) StepBudget(n int) uint64 { return e.budget(n) }

// LogBudget caps (poly)logarithmic-time protocols: thousands of expected
// stabilization times of headroom, so a non-stabilizing verdict is
// meaningful. It is the shared definition the experiment harness budgets
// from too.
func LogBudget(n int) uint64 {
	return uint64(4000) * uint64(n) * uint64(core.CeilLog2(n)+1)
}

// LinearBudget is LogBudget's counterpart for Θ(n)-parallel-time
// protocols.
func LinearBudget(n int) uint64 {
	return 100*uint64(n)*uint64(n) + 100_000
}

// scaled returns f scaled by the constant factor c.
func scaled(c uint64, f func(int) uint64) func(int) uint64 {
	return func(n int) uint64 { return c * f(n) }
}

// noM rejects a nonzero M for entries without a knowledge parameter and
// returns the spec unchanged otherwise.
func noM(spec Spec) error {
	if spec.M != 0 {
		return fmt.Errorf("%w: protocol %q takes no m parameter (got m=%d)",
			ErrBadSpec, spec.Protocol, spec.M)
	}
	return nil
}

// pllCheck validates the PLL variants' knowledge parameter against the
// paper's m ≥ ⌈lg n⌉ requirement.
func pllCheck(spec Spec) error {
	if _, err := core.ParamsFor(spec.N, spec.M); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

// catalog is the registry, in Table 1 / report order. It is assigned in
// init rather than a composite-literal initializer because the build
// closures reach back into the catalog (via wrap → Lookup) and would
// otherwise form a package-initialization cycle.
var catalog []Entry

func init() {
	catalog = []Entry{
		{
			Key:            "pll",
			CensusFriendly: true,
			Summary:        "PLL, the paper's protocol (Algorithm 1): QuickElimination, two Tournaments, BackUp",
			States:         "O(log n)",
			Time:           "O(log n)",
			Target:         1,
			Params: []ParamDoc{{
				Name: "m",
				Doc:  "knowledge parameter m ≥ ⌈lg n⌉ with m = Θ(log n); 0 = canonical ⌈lg n⌉",
			}},
			check: pllCheck,
			build: func(spec Spec) (Election, error) {
				params, err := core.ParamsFor(spec.N, spec.M)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
				}
				desc := fmt.Sprintf("PLL with n=%d m=%d (lmax=%d cmax=%d Φ=%d), %d states/agent",
					spec.N, params.M, params.LMax, params.CMax, params.Phi, params.StateSpaceSize())
				return wrap[core.State](spec, core.New(params), desc), nil
			},
			stateCount: func(n, m int) int {
				params, err := core.ParamsFor(n, m)
				if err != nil {
					return 0
				}
				return params.StateSpaceSize()
			},
			budget: LogBudget,
		},
		{
			Key:            "pll-sym",
			CensusFriendly: true,
			Summary:        "symmetric PLL variant (§4): follower-minted fair coins, symmetric duels",
			States:         "O(log n)",
			Time:           "O(log n)",
			Target:         1,
			Params: []ParamDoc{{
				Name: "m",
				Doc:  "knowledge parameter m ≥ ⌈lg n⌉ with m = Θ(log n); 0 = canonical ⌈lg n⌉",
			}},
			check: pllCheck,
			build: func(spec Spec) (Election, error) {
				params, err := core.ParamsFor(spec.N, spec.M)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
				}
				desc := fmt.Sprintf("symmetric PLL with n=%d m=%d", spec.N, params.M)
				return wrap[core.SymState](spec, core.NewSymmetric(params), desc), nil
			},
			// Coin and duel sub-states multiply the Table 3 count by the
			// constant 4 (coins) + 4 (duels).
			stateCount: func(n, m int) int {
				params, err := core.ParamsFor(n, m)
				if err != nil {
					return 0
				}
				return params.StateSpaceSize() * 8
			},
			budget: scaled(40, LogBudget),
		},
		{
			Key:            "angluin",
			CensusFriendly: true,
			Summary:        "Angluin et al. 2006 folklore protocol: two states, leaders duel",
			States:         "O(1)",
			Time:           "O(n)",
			Target:         1,
			build: func(spec Spec) (Election, error) {
				if err := noM(spec); err != nil {
					return nil, err
				}
				desc := fmt.Sprintf("Angluin 2006 with n=%d, 2 states/agent", spec.N)
				return wrap[baseline.AngluinState](spec, baseline.Angluin{}, desc), nil
			},
			stateCount: func(int, int) int { return baseline.Angluin{}.StateCount() },
			budget:     LinearBudget,
		},
		{
			Key:            "lottery",
			CensusFriendly: true,
			Summary:        "lottery election in the style of Alistarh et al. 2017: geometric levels, max epidemic, residual duels",
			States:         "O(log n)",
			Time:           "Θ(n) (simplified; orig. polylog)",
			Target:         1,
			build: func(spec Spec) (Election, error) {
				if err := noM(spec); err != nil {
					return nil, err
				}
				p := baseline.NewLottery(spec.N)
				desc := fmt.Sprintf("Lottery with n=%d (level cap %d), %d states/agent",
					spec.N, p.LevelMax(), p.StateCount())
				return wrap[baseline.LotteryState](spec, p, desc), nil
			},
			stateCount: func(n, _ int) int { return baseline.NewLottery(n).StateCount() },
			budget:     LinearBudget,
		},
		{
			Key:            "maxid",
			CensusFriendly: false,
			Summary:        "MST18-style max-identifier election: random IDs, max epidemic",
			States:         "poly(n)",
			Time:           "O(log n)",
			Target:         1,
			build: func(spec Spec) (Election, error) {
				if err := noM(spec); err != nil {
					return nil, err
				}
				p := baseline.NewMaxID(spec.N)
				desc := fmt.Sprintf("MaxID with n=%d (%d-bit identifiers)", spec.N, p.Width())
				return wrap[baseline.MaxIDState](spec, p, desc), nil
			},
			stateCount: func(n, _ int) int { return baseline.NewMaxID(n).StateCount() },
			budget:     LogBudget,
		},
		{
			Key:            "epidemic",
			CensusFriendly: true,
			Summary:        "one-way SI epidemic (Lemma 2) as a coverage workload; leaders = agents not yet reached, stabilizes at 0",
			States:         "O(1)",
			Time:           "O(log n)",
			Target:         0,
			build: func(spec Spec) (Election, error) {
				if err := noM(spec); err != nil {
					return nil, err
				}
				desc := fmt.Sprintf("SI epidemic with n=%d, 3 states/agent", spec.N)
				return wrap[epidemic.SIState](spec, epidemic.SI{}, desc), nil
			},
			stateCount: func(int, int) int { return 3 },
			budget:     LogBudget,
		},
	}
}

// Keys returns the catalog keys in catalog order.
func Keys() []string {
	keys := make([]string, len(catalog))
	for i, e := range catalog {
		keys[i] = e.Key
	}
	return keys
}

// Entries returns the catalog in catalog order.
func Entries() []Entry {
	return append([]Entry(nil), catalog...)
}

// Lookup returns the entry for key.
func Lookup(key string) (Entry, bool) {
	for _, e := range catalog {
		if e.Key == key {
			return e, true
		}
	}
	return Entry{}, false
}

// validate resolves spec's entry and checks the spec-level invariants
// shared by all entries. Protocol-specific parameter validation happens in
// the entry's build function.
func validate(spec Spec) (Entry, error) {
	entry, ok := Lookup(spec.Protocol)
	if !ok {
		return Entry{}, fmt.Errorf("%w: unknown protocol %q (valid: %s)",
			ErrBadSpec, spec.Protocol, strings.Join(Keys(), ", "))
	}
	if spec.N < MinN {
		return Entry{}, fmt.Errorf("%w: population size %d < %d", ErrBadSpec, spec.N, MinN)
	}
	// Derived from pp.Engines, so a new engine is accepted here the moment
	// it exists rather than when someone remembers this switch. The
	// pseudo-engine "auto" is also accepted: it resolves to the entry's
	// recommended engine (ResolveEngine) before any population is built.
	if spec.Engine != pp.EngineAuto && !spec.Engine.Valid() {
		return Entry{}, fmt.Errorf("%w: unknown engine %v", ErrBadSpec, spec.Engine)
	}
	return entry, nil
}

// ResolveEngine returns spec with the pseudo-engine pp.EngineAuto
// replaced by the entry's recommendation for spec.N; specs naming a
// concrete engine pass through unchanged. Every consumer that derives
// anything from the engine — canonical cache keys, derived seeds, actual
// simulators — must resolve first, so that an "auto" spec and the
// explicit spec it resolves to are one identity.
func ResolveEngine(spec Spec) (Spec, error) {
	if spec.Engine != pp.EngineAuto {
		return spec, nil
	}
	entry, ok := Lookup(spec.Protocol)
	if !ok {
		return Spec{}, fmt.Errorf("%w: unknown protocol %q (valid: %s)",
			ErrBadSpec, spec.Protocol, strings.Join(Keys(), ", "))
	}
	spec.Engine = entry.RecommendedEngine(spec.N)
	return spec, nil
}

// Validate checks spec fully — catalog membership, the shared invariants,
// and the protocol-specific parameters — without constructing a
// population, and returns the catalog entry it resolves to. New allocates
// Θ(n) memory on the per-agent engine, so synchronous frontends (the HTTP
// service's 4xx path) validate with this first.
func Validate(spec Spec) (Entry, error) {
	entry, err := validate(spec)
	if err != nil {
		return Entry{}, err
	}
	check := entry.check
	if check == nil {
		check = noM
	}
	if err := check(spec); err != nil {
		return Entry{}, err
	}
	return entry, nil
}

// New validates spec and constructs a fresh election on the selected
// engine. All validation failures are reported as errors wrapping
// ErrBadSpec — never panics — so network and command-line frontends can
// surface them to the caller.
func New(spec Spec) (Election, error) {
	entry, err := Validate(spec)
	if err != nil {
		return nil, err
	}
	if spec, err = ResolveEngine(spec); err != nil {
		return nil, err
	}
	return entry.build(spec)
}

// Measure runs reps independent elections of spec over a bounded worker
// pool (workers <= 0 selects NumCPU), with per-rep seeds derived
// deterministically from spec.Seed, each capped at budget interactions
// (budget 0 selects the entry's StepBudget). It is the type-erased
// counterpart of pp.MeasureWith and what the harness and examples use for
// expectation estimates.
func Measure(spec Spec, reps, workers int, budget uint64) ([]pp.RunResult, error) {
	entry, err := Validate(spec)
	if err != nil {
		return nil, err
	}
	if spec, err = ResolveEngine(spec); err != nil {
		return nil, err
	}
	if budget == 0 {
		budget = entry.StepBudget(spec.N)
	}
	results := make([]pp.RunResult, reps)
	pp.Parallel(reps, workers, spec.Seed, func(rep int, seed uint64) {
		s := spec
		s.Seed = seed
		el, err := entry.build(s)
		if err != nil {
			// build was validated above with identical parameters.
			panic(err)
		}
		steps, ok := el.RunUntilLeaders(entry.Target, budget)
		results[rep] = pp.RunResult{
			Seed:         seed,
			Steps:        steps,
			ParallelTime: float64(steps) / float64(spec.N),
			Stabilized:   ok,
			Leaders:      el.Leaders(),
		}
	})
	return results, nil
}
