package registry_test

import (
	"errors"
	"testing"

	"popproto/internal/pp"
	"popproto/internal/registry"
)

// TestParseEngineAuto: the pseudo-engine parses, round-trips its
// spelling, and stays out of the concrete engine set.
func TestParseEngineAuto(t *testing.T) {
	e, err := pp.ParseEngine("auto")
	if err != nil || e != pp.EngineAuto {
		t.Fatalf("ParseEngine(auto) = %v, %v", e, err)
	}
	if e.String() != "auto" {
		t.Errorf("EngineAuto.String() = %q", e.String())
	}
	if e.Valid() {
		t.Error("EngineAuto reports Valid: it is not a simulator")
	}
	for _, name := range pp.EngineNames() {
		if name == "auto" {
			t.Error("EngineNames includes the pseudo-engine")
		}
	}
	choices := pp.EngineChoices()
	if choices[len(choices)-1] != "auto" {
		t.Errorf("EngineChoices = %v, want auto listed last", choices)
	}
}

// TestResolveEngine: auto resolves per protocol and population size —
// per-agent for census-hostile protocols and small populations, hybrid
// for census-friendly ones at scale — and concrete engines pass through.
func TestResolveEngine(t *testing.T) {
	cases := []struct {
		protocol string
		n        int
		want     pp.Engine
	}{
		{"pll", 1000, pp.EngineAgent},
		{"pll", 1 << 20, pp.EngineHybrid},
		{"angluin", 1 << 20, pp.EngineHybrid},
		{"maxid", 1 << 20, pp.EngineAgent}, // census-hostile: Θ(n) live states
	}
	for _, c := range cases {
		got, err := registry.ResolveEngine(registry.Spec{Protocol: c.protocol, N: c.n, Engine: pp.EngineAuto})
		if err != nil {
			t.Fatalf("%s n=%d: %v", c.protocol, c.n, err)
		}
		if got.Engine != c.want {
			t.Errorf("%s n=%d resolved to %v, want %v", c.protocol, c.n, got.Engine, c.want)
		}
	}

	passthrough, err := registry.ResolveEngine(registry.Spec{Protocol: "pll", N: 10, Engine: pp.EngineCount})
	if err != nil || passthrough.Engine != pp.EngineCount {
		t.Errorf("concrete engine did not pass through: %v, %v", passthrough.Engine, err)
	}
	if _, err := registry.ResolveEngine(registry.Spec{Protocol: "nope", Engine: pp.EngineAuto}); !errors.Is(err, registry.ErrBadSpec) {
		t.Errorf("unknown protocol error = %v, want ErrBadSpec", err)
	}
}

// TestNewWithAuto: registry.New accepts an auto spec and constructs the
// resolved engine's simulator (the election runs like the concrete one).
func TestNewWithAuto(t *testing.T) {
	el, err := registry.New(registry.Spec{Protocol: "angluin", N: 64, Engine: pp.EngineAuto, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := el.RunUntilLeaders(1, 1_000_000); !ok {
		t.Fatal("auto-engine election did not stabilize")
	}
	if el.Leaders() != 1 {
		t.Fatalf("leaders = %d", el.Leaders())
	}
}
