package registry

import (
	"fmt"
	"sort"
	"strings"

	"popproto/internal/pp"
)

// Election is the type-erased runner surface: everything observable about
// a running protocol without its state type parameter. It mirrors the
// read-and-run subset of pp.Runner[S], with censuses rendered as strings
// (each protocol's fmt.Stringer spelling where one exists).
type Election interface {
	// Key returns the registry key the election was built from.
	Key() string
	// Description returns a one-line human description including the
	// derived protocol parameters.
	Description() string
	// Target returns the leader count at which the run counts as
	// stabilized (1 for elections, 0 for the epidemic coverage workload).
	Target() int
	// N returns the population size.
	N() int
	// Steps returns the number of interactions executed so far.
	Steps() uint64
	// ParallelTime returns steps divided by n, the paper's time measure.
	ParallelTime() float64
	// Leaders returns the current number of agents whose output is Leader.
	Leaders() int
	// RunSteps executes k uniformly random interactions.
	RunSteps(k uint64)
	// RunUntilLeaders runs until at most target leaders remain or maxSteps
	// interactions have been executed.
	RunUntilLeaders(target int, maxSteps uint64) (steps uint64, ok bool)
	// VerifyStable runs extra interactions and reports whether no output
	// changed during them.
	VerifyStable(extra uint64) bool
	// Census returns the multiset of current agent states, keyed by the
	// state's string rendering.
	Census() map[string]int
	// LiveStates returns the number of distinct states currently present.
	LiveStates() int
	// LeaderID returns the id of the first agent whose output is Leader.
	// Only the per-agent engine has real agent identities; on the census
	// engine (whose ids are synthetic) and when no leader exists it
	// returns -1.
	LeaderID() int
	// HybridStats returns the hybrid engine's controller telemetry (mode
	// occupancy, handovers) and true when the underlying runner is the
	// hybrid engine; other engines report false.
	HybridStats() (pp.HybridStats, bool)
}

// election adapts a concrete pp.Runner[S] to the erased Election surface.
type election[S comparable] struct {
	key    string
	desc   string
	target int
	engine pp.Engine
	proto  pp.Protocol[S]
	run    pp.Runner[S]
}

// wrap closes over the state type S at registration time: the one generic
// instantiation per catalog entry from which every erased call dispatches.
func wrap[S comparable](spec Spec, proto pp.Protocol[S], desc string) Election {
	entry, _ := Lookup(spec.Protocol)
	return &election[S]{
		key:    spec.Protocol,
		desc:   desc,
		target: entry.Target,
		engine: spec.Engine,
		proto:  proto,
		run:    pp.NewRunner(spec.Engine, proto, spec.N, spec.Seed),
	}
}

func (e *election[S]) Key() string           { return e.key }
func (e *election[S]) Description() string   { return e.desc }
func (e *election[S]) Target() int           { return e.target }
func (e *election[S]) N() int                { return e.run.N() }
func (e *election[S]) Steps() uint64         { return e.run.Steps() }
func (e *election[S]) ParallelTime() float64 { return e.run.ParallelTime() }
func (e *election[S]) Leaders() int          { return e.run.Leaders() }
func (e *election[S]) RunSteps(k uint64)     { e.run.RunSteps(k) }

func (e *election[S]) RunUntilLeaders(target int, maxSteps uint64) (uint64, bool) {
	return e.run.RunUntilLeaders(target, maxSteps)
}

func (e *election[S]) VerifyStable(extra uint64) bool { return e.run.VerifyStable(extra) }

func (e *election[S]) Census() map[string]int {
	census := e.run.Census()
	out := make(map[string]int, len(census))
	for s, c := range census {
		// Distinct states may collide after rendering (a protocol whose
		// String drops fields); summing keeps the census a true multiset.
		out[fmt.Sprint(s)] += c
	}
	return out
}

func (e *election[S]) LiveStates() int { return len(e.run.Census()) }

func (e *election[S]) HybridStats() (pp.HybridStats, bool) {
	if s, ok := e.run.(interface{ Stats() pp.HybridStats }); ok {
		return s.Stats(), true
	}
	return pp.HybridStats{}, false
}

func (e *election[S]) LeaderID() int {
	if e.engine != pp.EngineAgent {
		return -1
	}
	id := -1
	e.run.ForEach(func(agent int, s S) {
		if id == -1 && e.proto.Output(s) == pp.Leader {
			id = agent
		}
	})
	return id
}

// CensusEntry is one state of a sorted census.
type CensusEntry struct {
	State string
	Count int
}

// SortedCensus orders a census deterministically — largest count first,
// ties by state key — the canonical ordering shared by reports, logs and
// the service's census truncation.
func SortedCensus(census map[string]int) []CensusEntry {
	entries := make([]CensusEntry, 0, len(census))
	for k, v := range census {
		entries = append(entries, CensusEntry{State: k, Count: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].State < entries[j].State
	})
	return entries
}

// CensusString renders a census deterministically in SortedCensus order,
// for logs and reports.
func CensusString(census map[string]int) string {
	var out strings.Builder
	for i, e := range SortedCensus(census) {
		if i > 0 {
			out.WriteByte(' ')
		}
		fmt.Fprintf(&out, "%s:%d", e.State, e.Count)
	}
	return out.String()
}
