package registry_test

import (
	"errors"
	"strings"
	"testing"

	"popproto/internal/pp"
	"popproto/internal/registry"
)

func TestCatalogKeys(t *testing.T) {
	want := []string{"pll", "pll-sym", "angluin", "lottery", "maxid", "epidemic"}
	got := registry.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Keys()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, e := range registry.Entries() {
		if e.Summary == "" || e.States == "" || e.Time == "" {
			t.Errorf("entry %q is missing catalog documentation", e.Key)
		}
		if e.StateCount(1024, 0) <= 0 {
			t.Errorf("entry %q: StateCount(1024, 0) = %d, want > 0", e.Key, e.StateCount(1024, 0))
		}
		if e.StepBudget(1024) == 0 {
			t.Errorf("entry %q: StepBudget(1024) = 0", e.Key)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := registry.Lookup("pll"); !ok {
		t.Error(`Lookup("pll") not found`)
	}
	if _, ok := registry.Lookup("nope"); ok {
		t.Error(`Lookup("nope") unexpectedly found`)
	}
}

// TestNewRejectsBadSpecs is the satellite requirement that registry
// construction reports errors instead of panicking.
func TestNewRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec registry.Spec
		want string
	}{
		{"unknown protocol", registry.Spec{Protocol: "raft", N: 100}, "unknown protocol"},
		{"n too small", registry.Spec{Protocol: "pll", N: 1}, "population size"},
		{"n negative", registry.Spec{Protocol: "angluin", N: -5}, "population size"},
		{"bad engine", registry.Spec{Protocol: "pll", N: 100, Engine: pp.Engine(9)}, "unknown engine"},
		{"m too small for n", registry.Spec{Protocol: "pll", N: 1 << 20, M: 3}, "m ≥ log₂ n"},
		{"m negative", registry.Spec{Protocol: "pll-sym", N: 100, M: -1}, "m ="},
		{"m on m-less protocol", registry.Spec{Protocol: "angluin", N: 100, M: 7}, "takes no m"},
		{"m on epidemic", registry.Spec{Protocol: "epidemic", N: 100, M: 7}, "takes no m"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			el, err := registry.New(c.spec)
			if err == nil {
				t.Fatalf("New(%+v) succeeded, want error containing %q", c.spec, c.want)
			}
			if !errors.Is(err, registry.ErrBadSpec) {
				t.Errorf("error %v does not wrap ErrBadSpec", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
			if el != nil {
				t.Errorf("New returned a non-nil election alongside the error")
			}
		})
	}
}

// TestEveryEntryStabilizes runs every catalog entry to its target on both
// engines at a small population.
func TestEveryEntryStabilizes(t *testing.T) {
	for _, entry := range registry.Entries() {
		for _, engine := range pp.Engines() {
			t.Run(entry.Key+"/"+engine.String(), func(t *testing.T) {
				const n = 512
				el, err := registry.New(registry.Spec{
					Protocol: entry.Key, N: n, Engine: engine, Seed: 42,
				})
				if err != nil {
					t.Fatal(err)
				}
				if el.Key() != entry.Key {
					t.Errorf("Key() = %q, want %q", el.Key(), entry.Key)
				}
				if el.N() != n {
					t.Errorf("N() = %d, want %d", el.N(), n)
				}
				if el.Description() == "" {
					t.Error("empty Description()")
				}
				if _, ok := el.RunUntilLeaders(el.Target(), entry.StepBudget(n)); !ok {
					t.Fatalf("did not reach %d leaders within budget (%d remain)",
						el.Target(), el.Leaders())
				}
				if el.Leaders() != el.Target() {
					t.Errorf("Leaders() = %d, want %d", el.Leaders(), el.Target())
				}
				census := el.Census()
				total := 0
				for _, c := range census {
					total += c
				}
				if total != n {
					t.Errorf("census sums to %d, want %d", total, n)
				}
				if el.LiveStates() < 1 || el.LiveStates() > len(census) {
					t.Errorf("LiveStates() = %d inconsistent with census of %d keys",
						el.LiveStates(), len(census))
				}
				wantID := engine == pp.EngineAgent && el.Target() == 1
				if id := el.LeaderID(); (id >= 0) != wantID {
					t.Errorf("LeaderID() = %d on %s engine with target %d",
						id, engine, el.Target())
				}
			})
		}
	}
}

// TestDeterminism: identical specs must reproduce identical runs — the
// property the service's result cache relies on.
func TestDeterminism(t *testing.T) {
	spec := registry.Spec{Protocol: "pll", N: 300, Engine: pp.EngineCount, Seed: 7}
	run := func() (uint64, map[string]int) {
		el, err := registry.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		el.RunUntilLeaders(1, 1<<40)
		return el.Steps(), el.Census()
	}
	steps1, census1 := run()
	steps2, census2 := run()
	if steps1 != steps2 {
		t.Errorf("steps differ across identical specs: %d vs %d", steps1, steps2)
	}
	if registry.CensusString(census1) != registry.CensusString(census2) {
		t.Errorf("censuses differ across identical specs:\n%s\n%s",
			registry.CensusString(census1), registry.CensusString(census2))
	}
}

func TestMeasure(t *testing.T) {
	spec := registry.Spec{Protocol: "angluin", N: 128, Engine: pp.EngineCount, Seed: 3}
	results, err := registry.Measure(spec, 8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8", len(results))
	}
	seeds := make(map[uint64]bool)
	for _, r := range results {
		if !r.Stabilized {
			t.Errorf("run with seed %d did not stabilize", r.Seed)
		}
		if r.Leaders != 1 {
			t.Errorf("run with seed %d ended with %d leaders", r.Seed, r.Leaders)
		}
		seeds[r.Seed] = true
	}
	if len(seeds) != 8 {
		t.Errorf("per-rep seeds not distinct: %d unique of 8", len(seeds))
	}

	if _, err := registry.Measure(registry.Spec{Protocol: "pll", N: 1}, 4, 1, 0); err == nil {
		t.Error("Measure accepted n=1")
	}
	if _, err := registry.Measure(registry.Spec{Protocol: "maxid", N: 64, M: 5}, 4, 1, 0); err == nil {
		t.Error("Measure accepted m on an m-less protocol")
	}
}

func TestCensusString(t *testing.T) {
	got := registry.CensusString(map[string]int{"b": 2, "a": 2, "c": 9})
	want := "c:9 a:2 b:2"
	if got != want {
		t.Errorf("CensusString = %q, want %q", got, want)
	}
}

// TestEngineSuitability: the advisory engine metadata must keep every
// engine valid while steering big populations to the census-based engines
// (and MaxID away from them).
func TestEngineSuitability(t *testing.T) {
	for _, e := range registry.Entries() {
		suited := e.SuitableEngines()
		if len(suited) == 0 {
			t.Fatalf("%s: no suitable engines", e.Key)
		}
		rec := e.RecommendedEngine(10_000_000)
		if e.Key == "maxid" {
			if rec != pp.EngineAgent {
				t.Errorf("maxid recommends %v at n=10^7, want agent", rec)
			}
		} else {
			if rec != pp.EngineHybrid {
				t.Errorf("%s recommends %v at n=10^7, want hybrid", e.Key, rec)
			}
			if e.RecommendedEngine(100) != pp.EngineAgent {
				t.Errorf("%s recommends %v at n=100, want agent", e.Key, e.RecommendedEngine(100))
			}
		}
		// Suitability is advisory: every declared engine validates.
		for _, eng := range pp.Engines() {
			if _, err := registry.Validate(registry.Spec{Protocol: e.Key, N: 64, Engine: eng}); err != nil {
				t.Errorf("%s on %v rejected: %v", e.Key, eng, err)
			}
		}
	}
}
