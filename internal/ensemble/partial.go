package ensemble

import (
	"fmt"
	"math"

	"popproto/internal/stats"
)

// The canonical range partition. Every ensemble of R replicates is
// aggregated as a left fold over fixed contiguous replicate ranges of
// PlanRangeSize(R) — never as one long streaming accumulation — whether
// the replicates run on one machine or are sharded across a cluster.
// Floating-point merges are order- and tree-sensitive, so a single
// canonical partition and fold order is what lets a distributed run
// promise bit-identical aggregates to a local one: both paths build the
// same per-range Partials (sequential adds in replicate order) and fold
// them in ascending range order through the same Merge.
const (
	// targetRanges is how many ranges a large ensemble is split into —
	// enough shards to keep hundreds of workers busy while bounding the
	// coordinator's scheduling state.
	targetRanges = 256
	// minRangeSize floors the range size so tiny ensembles are not
	// shattered into single-replicate leases.
	minRangeSize = 8
)

// PlanRangeSize returns the canonical range size for an ensemble of the
// given replicate count: ⌈R/256⌉ floored at 8 and capped at R. It is
// part of the deterministic surface — change it and every ensemble's
// aggregates change bitwise.
func PlanRangeSize(replicates int) int {
	if replicates < 1 {
		return 1
	}
	size := (replicates + targetRanges - 1) / targetRanges
	if size < minRangeSize {
		size = minRangeSize
	}
	if size > replicates {
		size = replicates
	}
	return size
}

// Range is one contiguous replicate range [Lo, Hi) of the canonical
// partition, the unit of distribution (a cluster lease covers exactly
// one Range).
type Range struct {
	Index int `json:"index"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
}

// PlanRanges expands the canonical partition of an ensemble: adjacent
// ranges of PlanRangeSize(replicates), the last one truncated.
func PlanRanges(replicates int) []Range {
	size := PlanRangeSize(replicates)
	ranges := make([]Range, 0, (replicates+size-1)/size)
	for lo := 0; lo < replicates; lo += size {
		ranges = append(ranges, Range{Index: len(ranges), Lo: lo, Hi: min(lo+size, replicates)})
	}
	return ranges
}

// Partial is the mergeable aggregate of one contiguous replicate range
// [Lo, Hi): the Welford moments, Wilson counts, extrema, step tally and
// quantile sketch of exactly the replicates in the range, added in
// replicate order. It is what a cluster worker computes for a leased
// range and posts back to the coordinator, and what the local executor
// folds internally — one type, one fold, so the two paths cannot drift.
//
// Everything except ElapsedMillis is a deterministic function of the
// spec and the range; ElapsedMillis is the wall-clock execution time
// (an operator signal, excluded from rendered Aggregates).
type Partial struct {
	// Lo and Hi delimit the replicate range [Lo, Hi). Merged partials
	// cover the union of their ranges.
	Lo, Hi int
	// Count is the number of replicates added (Hi-Lo once the range is
	// complete); Stabilized how many reached the protocol's target.
	Count      int
	Stabilized int
	// Mean and M2 are the Welford running mean and sum of squared
	// deviations of parallel stabilization time.
	Mean, M2 float64
	// Min and Max are the parallel-time extrema (±Inf while empty).
	Min, Max float64
	// SumSteps tallies interaction counts across the range's replicates.
	SumSteps float64
	// ElapsedMillis is the wall-clock time spent computing the range
	// (summed under Merge; not part of the deterministic surface).
	ElapsedMillis int64
	// Sketch is the deterministic quantile summary of parallel times —
	// p50/p90/p99 and the survival curve are rendered from it.
	Sketch *Sketch
}

// NewPartial returns an empty partial for the range [lo, hi).
func NewPartial(lo, hi int) *Partial {
	return &Partial{
		Lo:     lo,
		Hi:     hi,
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
		Sketch: newSketch(0),
	}
}

// Add incorporates one replicate. Callers must add in replicate order
// for the bit-identical determinism guarantee (floating-point
// accumulation is order-sensitive).
func (p *Partial) Add(r Replicate) {
	p.Count++
	if r.Stabilized {
		p.Stabilized++
	}
	x := r.ParallelTime
	d := x - p.Mean
	p.Mean += d / float64(p.Count)
	p.M2 += d * (x - p.Mean)
	p.Min = math.Min(p.Min, x)
	p.Max = math.Max(p.Max, x)
	p.SumSteps += float64(r.Steps)
	p.Sketch.Add(x)
}

// Merge folds the adjacent range q into p (Chan et al.'s pairwise
// Welford combination for the moments, the sketch's own merge for the
// quantile summary). Both the local executor and the cluster
// coordinator fold ranges in ascending order through this one function,
// which is what makes their results bit-identical. q is left unchanged.
func (p *Partial) Merge(q *Partial) error {
	if q.Lo != p.Hi {
		return fmt.Errorf("ensemble: cannot merge non-adjacent ranges [%d,%d) and [%d,%d)",
			p.Lo, p.Hi, q.Lo, q.Hi)
	}
	p.Hi = q.Hi
	p.ElapsedMillis += q.ElapsedMillis
	if q.Count == 0 {
		return nil
	}
	if p.Count == 0 {
		p.Count = q.Count
		p.Stabilized = q.Stabilized
		p.Mean, p.M2 = q.Mean, q.M2
		p.Min, p.Max = q.Min, q.Max
		p.SumSteps = q.SumSteps
		p.Sketch.Merge(q.Sketch)
		return nil
	}
	n1, n2 := float64(p.Count), float64(q.Count)
	n := n1 + n2
	delta := q.Mean - p.Mean
	p.Mean += delta * n2 / n
	p.M2 += q.M2 + delta*delta*n1*n2/n
	p.Count += q.Count
	p.Stabilized += q.Stabilized
	p.Min = math.Min(p.Min, q.Min)
	p.Max = math.Max(p.Max, q.Max)
	p.SumSteps += q.SumSteps
	p.Sketch.Merge(q.Sketch)
	return nil
}

// Clone returns an independent deep copy (used to render streaming
// snapshots without disturbing the fold state).
func (p *Partial) Clone() *Partial {
	cp := *p
	cp.Sketch = p.Sketch.Clone()
	return &cp
}

// Std returns the sample standard deviation (n−1 denominator) of
// parallel time over the partial's replicates.
func (p *Partial) Std() float64 {
	if p.Count < 2 {
		return 0
	}
	return math.Sqrt(p.M2 / float64(p.Count-1))
}

// RelHalfWidth returns the 95% CI half-width of the mean parallel time
// relative to the mean — the early-stopping criterion — or +Inf while
// it is undefined (fewer than two replicates, or a nonpositive mean).
func (p *Partial) RelHalfWidth() float64 {
	if p.Count < 2 || p.Mean <= 0 {
		return math.Inf(1)
	}
	return 1.96 * p.Std() / math.Sqrt(float64(p.Count)) / p.Mean
}

// Aggregates renders the partial as the ensemble's statistical summary.
// requested is the ensemble size asked for and early whether the CI
// target stopped the run; both pass through to the rendered fields.
func (p *Partial) Aggregates(requested int, early bool) Aggregates {
	agg := Aggregates{
		Replicates:   p.Count,
		Requested:    requested,
		Stabilized:   p.Stabilized,
		EarlyStopped: early,
	}
	if p.Count == 0 {
		return agg
	}
	agg.StabilizedLo, agg.StabilizedHi = stats.WilsonCI(p.Stabilized, p.Count)
	std := p.Std()
	half := 1.96 * std / math.Sqrt(float64(p.Count))
	agg.MeanParallelTime = p.Mean
	agg.StdParallelTime = std
	agg.CILo = p.Mean - half
	agg.CIHi = p.Mean + half
	if p.Mean > 0 {
		agg.RelHalfWidth = half / p.Mean
	}
	agg.MinParallelTime = p.Min
	agg.MaxParallelTime = p.Max
	// One flatten-and-sort of the sketch answers every quantile query:
	// p50/p90/p99 first, then the survival grid.
	qs := append([]float64{0.5, 0.9, 0.99}, survivalGrid...)
	vals := p.Sketch.Quantiles(qs)
	agg.P50, agg.P90, agg.P99 = vals[0], vals[1], vals[2]
	agg.MeanSteps = p.SumSteps / float64(p.Count)
	agg.Survival = make([]SurvivalPoint, 0, len(survivalGrid))
	for i, q := range survivalGrid {
		agg.Survival = append(agg.Survival, SurvivalPoint{
			T:    vals[3+i],
			Frac: 1 - q,
		})
	}
	return agg
}
