package ensemble

import "math"

// Replicate is the outcome of one independent run of an ensemble. It is
// the per-run record streamed into the online aggregators; everything in
// it is part of the deterministic surface (no wall-clock times).
type Replicate struct {
	// Rep is the 0-based replicate index.
	Rep int `json:"rep"`
	// Seed is the scheduler seed the replicate ran with
	// (ReplicateSeed(base, Rep)).
	Seed uint64 `json:"seed"`
	// Steps is the interaction count at which the run ended; when
	// Stabilized it is the exact stabilization step.
	Steps uint64 `json:"steps"`
	// ParallelTime is Steps divided by the population size.
	ParallelTime float64 `json:"parallelTime"`
	// Stabilized reports whether the run reached the protocol's target
	// leader count within its step budget.
	Stabilized bool `json:"stabilized"`
	// Leaders is the leader count when the run ended.
	Leaders int `json:"leaders"`
}

// SurvivalPoint is one point of the empirical survival curve: the
// fraction of replicates whose parallel stabilization time exceeds T.
type SurvivalPoint struct {
	T    float64 `json:"t"`
	Frac float64 `json:"frac"`
}

// Aggregates is the streaming statistical summary of an ensemble: what
// the service stores, the SSE stream carries, and the paper-table
// harness reports. Every field is a deterministic function of the
// incorporated replicates (in replicate order), so identical specs
// produce bit-identical aggregates regardless of worker count.
type Aggregates struct {
	// Replicates is the number of replicates incorporated so far;
	// Requested is the ensemble size asked for. They differ while the
	// ensemble streams and when early stopping triggered.
	Replicates int `json:"replicates"`
	Requested  int `json:"requested"`
	// Stabilized counts incorporated replicates that reached the target,
	// with a Wilson-score 95% interval on the underlying probability.
	Stabilized   int     `json:"stabilized"`
	StabilizedLo float64 `json:"stabilizedCILo"`
	StabilizedHi float64 `json:"stabilizedCIHi"`
	// Parallel stabilization time statistics over the incorporated
	// replicates (Welford mean/variance; CI95 is the normal-approximation
	// 95% confidence interval on the mean).
	MeanParallelTime float64 `json:"meanParallelTime"`
	StdParallelTime  float64 `json:"stdParallelTime"`
	CILo             float64 `json:"ci95Lo"`
	CIHi             float64 `json:"ci95Hi"`
	// RelHalfWidth is the CI half-width divided by the mean — the early
	// stopping criterion (see Spec.CITarget).
	RelHalfWidth    float64 `json:"relHalfWidth"`
	MinParallelTime float64 `json:"minParallelTime"`
	MaxParallelTime float64 `json:"maxParallelTime"`
	// Quantiles of parallel stabilization time from the mergeable sketch
	// (exact below the sketch capacity of 256 replicates).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// MeanSteps is the mean interaction count.
	MeanSteps float64 `json:"meanSteps"`
	// Survival is the empirical survival curve of parallel time: the
	// fraction of runs still unstabilized at time T, on a quantile grid.
	Survival []SurvivalPoint `json:"survival,omitempty"`
	// EarlyStopped reports that the CI target was met and the remaining
	// replicates were skipped.
	EarlyStopped bool `json:"earlyStopped,omitempty"`
}

// survivalGrid is the quantile grid the survival curve is rendered on.
var survivalGrid = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}

// aggregator accumulates replicates online, in replicate order, through
// the canonical range partition: replicates stream into the current
// range's Partial, and each completed range is folded (ascending) into
// the running prefix. Because this is the exact fold the cluster
// coordinator performs on worker-computed partials, a local ensemble
// and a distributed one produce bit-identical aggregates.
type aggregator struct {
	requested int
	rangeSize int
	folded    *Partial // left fold of all completed ranges (nil before the first)
	cur       *Partial // the open range (nil once every range has folded)
	early     bool
}

func newAggregator(requested int) *aggregator {
	size := PlanRangeSize(requested)
	return &aggregator{
		requested: requested,
		rangeSize: size,
		cur:       NewPartial(0, min(size, requested)),
	}
}

// add incorporates one replicate and reports whether it completed a
// range (the only points where early stopping may be decided — a
// mid-range decision could not be reproduced by a coordinator that only
// sees whole ranges). Callers must add in replicate order for the
// bit-identical determinism guarantee.
func (a *aggregator) add(r Replicate) (rangeClosed bool) {
	a.cur.Add(r)
	if a.cur.Count < a.cur.Hi-a.cur.Lo {
		return false
	}
	if a.folded == nil {
		a.folded = a.cur
	} else if err := a.folded.Merge(a.cur); err != nil {
		// Ranges are planned adjacent; a failure here is a bug.
		panic(err)
	}
	if lo := a.folded.Hi; lo < a.requested {
		a.cur = NewPartial(lo, min(lo+a.rangeSize, a.requested))
	} else {
		a.cur = nil
	}
	return true
}

// count returns the number of replicates incorporated so far.
func (a *aggregator) count() int {
	n := 0
	if a.folded != nil {
		n += a.folded.Count
	}
	if a.cur != nil {
		n += a.cur.Count
	}
	return n
}

// relHalfWidth returns the early-stopping criterion over the folded
// prefix (+Inf before any range completes). It is only consulted at
// range boundaries, where the folded prefix is the whole state.
func (a *aggregator) relHalfWidth() float64 {
	if a.folded == nil {
		return math.Inf(1)
	}
	return a.folded.RelHalfWidth()
}

// aggregates renders the current state as an Aggregates snapshot,
// merging the open range into a copy of the folded prefix when needed
// so streaming snapshots see every incorporated replicate.
func (a *aggregator) aggregates() Aggregates {
	switch {
	case a.folded == nil && a.cur == nil:
		return Aggregates{Requested: a.requested, EarlyStopped: a.early}
	case a.folded == nil:
		return a.cur.Aggregates(a.requested, a.early)
	case a.cur == nil || a.cur.Count == 0:
		return a.folded.Aggregates(a.requested, a.early)
	default:
		snap := a.folded.Clone()
		if err := snap.Merge(a.cur); err != nil {
			panic(err)
		}
		return snap.Aggregates(a.requested, a.early)
	}
}
