package ensemble

import (
	"math"

	"popproto/internal/stats"
)

// Replicate is the outcome of one independent run of an ensemble. It is
// the per-run record streamed into the online aggregators; everything in
// it is part of the deterministic surface (no wall-clock times).
type Replicate struct {
	// Rep is the 0-based replicate index.
	Rep int `json:"rep"`
	// Seed is the scheduler seed the replicate ran with
	// (ReplicateSeed(base, Rep)).
	Seed uint64 `json:"seed"`
	// Steps is the interaction count at which the run ended; when
	// Stabilized it is the exact stabilization step.
	Steps uint64 `json:"steps"`
	// ParallelTime is Steps divided by the population size.
	ParallelTime float64 `json:"parallelTime"`
	// Stabilized reports whether the run reached the protocol's target
	// leader count within its step budget.
	Stabilized bool `json:"stabilized"`
	// Leaders is the leader count when the run ended.
	Leaders int `json:"leaders"`
}

// SurvivalPoint is one point of the empirical survival curve: the
// fraction of replicates whose parallel stabilization time exceeds T.
type SurvivalPoint struct {
	T    float64 `json:"t"`
	Frac float64 `json:"frac"`
}

// Aggregates is the streaming statistical summary of an ensemble: what
// the service stores, the SSE stream carries, and the paper-table
// harness reports. Every field is a deterministic function of the
// incorporated replicates (in replicate order), so identical specs
// produce bit-identical aggregates regardless of worker count.
type Aggregates struct {
	// Replicates is the number of replicates incorporated so far;
	// Requested is the ensemble size asked for. They differ while the
	// ensemble streams and when early stopping triggered.
	Replicates int `json:"replicates"`
	Requested  int `json:"requested"`
	// Stabilized counts incorporated replicates that reached the target,
	// with a Wilson-score 95% interval on the underlying probability.
	Stabilized   int     `json:"stabilized"`
	StabilizedLo float64 `json:"stabilizedCILo"`
	StabilizedHi float64 `json:"stabilizedCIHi"`
	// Parallel stabilization time statistics over the incorporated
	// replicates (Welford mean/variance; CI95 is the normal-approximation
	// 95% confidence interval on the mean).
	MeanParallelTime float64 `json:"meanParallelTime"`
	StdParallelTime  float64 `json:"stdParallelTime"`
	CILo             float64 `json:"ci95Lo"`
	CIHi             float64 `json:"ci95Hi"`
	// RelHalfWidth is the CI half-width divided by the mean — the early
	// stopping criterion (see Spec.CITarget).
	RelHalfWidth    float64 `json:"relHalfWidth"`
	MinParallelTime float64 `json:"minParallelTime"`
	MaxParallelTime float64 `json:"maxParallelTime"`
	// Quantiles of parallel stabilization time from the mergeable sketch
	// (exact below the sketch capacity of 256 replicates).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// MeanSteps is the mean interaction count.
	MeanSteps float64 `json:"meanSteps"`
	// Survival is the empirical survival curve of parallel time: the
	// fraction of runs still unstabilized at time T, on a quantile grid.
	Survival []SurvivalPoint `json:"survival,omitempty"`
	// EarlyStopped reports that the CI target was met and the remaining
	// replicates were skipped.
	EarlyStopped bool `json:"earlyStopped,omitempty"`
}

// survivalGrid is the quantile grid the survival curve is rendered on.
var survivalGrid = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}

// aggregator accumulates replicates online, in replicate order.
type aggregator struct {
	requested  int
	count      int
	stabilized int
	mean, m2   float64 // Welford running mean and sum of squared deviations
	min, max   float64
	sumSteps   float64
	sketch     *Sketch
	early      bool
}

func newAggregator(requested int) *aggregator {
	return &aggregator{
		requested: requested,
		min:       math.Inf(1),
		max:       math.Inf(-1),
		sketch:    newSketch(0),
	}
}

// add incorporates one replicate. Callers must add in replicate order for
// the bit-identical determinism guarantee (floating-point accumulation is
// order-sensitive).
func (a *aggregator) add(r Replicate) {
	a.count++
	if r.Stabilized {
		a.stabilized++
	}
	x := r.ParallelTime
	d := x - a.mean
	a.mean += d / float64(a.count)
	a.m2 += d * (x - a.mean)
	a.min = math.Min(a.min, x)
	a.max = math.Max(a.max, x)
	a.sumSteps += float64(r.Steps)
	a.sketch.Add(x)
}

// std returns the sample standard deviation (n−1 denominator).
func (a *aggregator) std() float64 {
	if a.count < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.count-1))
}

// relHalfWidth returns the 95% CI half-width of the mean relative to the
// mean, or +Inf while it is undefined (fewer than two replicates, or a
// nonpositive mean).
func (a *aggregator) relHalfWidth() float64 {
	if a.count < 2 || a.mean <= 0 {
		return math.Inf(1)
	}
	return 1.96 * a.std() / math.Sqrt(float64(a.count)) / a.mean
}

// aggregates renders the current state as an Aggregates snapshot.
func (a *aggregator) aggregates() Aggregates {
	agg := Aggregates{
		Replicates:   a.count,
		Requested:    a.requested,
		Stabilized:   a.stabilized,
		EarlyStopped: a.early,
	}
	if a.count == 0 {
		return agg
	}
	agg.StabilizedLo, agg.StabilizedHi = stats.WilsonCI(a.stabilized, a.count)
	std := a.std()
	half := 1.96 * std / math.Sqrt(float64(a.count))
	agg.MeanParallelTime = a.mean
	agg.StdParallelTime = std
	agg.CILo = a.mean - half
	agg.CIHi = a.mean + half
	if a.mean > 0 {
		agg.RelHalfWidth = half / a.mean
	}
	agg.MinParallelTime = a.min
	agg.MaxParallelTime = a.max
	// One flatten-and-sort of the sketch answers every quantile query:
	// p50/p90/p99 first, then the survival grid.
	qs := append([]float64{0.5, 0.9, 0.99}, survivalGrid...)
	vals := a.sketch.Quantiles(qs)
	agg.P50, agg.P90, agg.P99 = vals[0], vals[1], vals[2]
	agg.MeanSteps = a.sumSteps / float64(a.count)
	agg.Survival = make([]SurvivalPoint, 0, len(survivalGrid))
	for i, q := range survivalGrid {
		agg.Survival = append(agg.Survival, SurvivalPoint{
			T:    vals[3+i],
			Frac: 1 - q,
		})
	}
	return agg
}
