package ensemble_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"popproto/internal/ensemble"
)

// TestPlanRanges pins the canonical partition: contiguous, ascending,
// covering [0, R) exactly, with the documented size law.
func TestPlanRanges(t *testing.T) {
	for _, r := range []int{1, 2, 7, 8, 9, 24, 64, 200, 255, 256, 257, 2048, 2049, 100000} {
		ranges := ensemble.PlanRanges(r)
		size := ensemble.PlanRangeSize(r)
		if size < 1 || (r >= 8 && size < 8) || size > max(r, 1) {
			t.Fatalf("R=%d: range size %d out of bounds", r, size)
		}
		if len(ranges) == 0 || ranges[0].Lo != 0 || ranges[len(ranges)-1].Hi != r {
			t.Fatalf("R=%d: partition %v does not cover [0,%d)", r, ranges, r)
		}
		for i, rg := range ranges {
			if rg.Index != i {
				t.Fatalf("R=%d: range %d has index %d", r, i, rg.Index)
			}
			if i > 0 && rg.Lo != ranges[i-1].Hi {
				t.Fatalf("R=%d: gap before range %d: %v", r, i, ranges)
			}
			if want := size; rg.Hi-rg.Lo != want && i != len(ranges)-1 {
				t.Fatalf("R=%d: interior range %d has size %d, want %d", r, i, rg.Hi-rg.Lo, want)
			}
		}
	}
}

// runRangePartials executes every canonical range of the spec through
// RunRange and returns the partials in range order.
func runRangePartials(t *testing.T, spec ensemble.Spec, workers int) []*ensemble.Partial {
	t.Helper()
	var out []*ensemble.Partial
	for _, rg := range ensemble.PlanRanges(spec.Replicates) {
		p, err := ensemble.RunRange(context.Background(), spec, rg.Lo, rg.Hi, workers)
		if err != nil {
			t.Fatalf("RunRange[%d,%d): %v", rg.Lo, rg.Hi, err)
		}
		out = append(out, p)
	}
	return out
}

// foldPartials left-folds partials in ascending range order, zeroing
// elapsed times first so comparisons are over the deterministic surface.
func foldPartials(t *testing.T, parts []*ensemble.Partial) *ensemble.Partial {
	t.Helper()
	folded := parts[0].Clone()
	for _, p := range parts[1:] {
		if err := folded.Merge(p); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	return folded
}

// TestPartialRoundTrip checks Unmarshal(Marshal(x)) ≡ x for real
// executed partials, including the embedded sketch.
func TestPartialRoundTrip(t *testing.T) {
	spec := pllSpec(500, 40, 7)
	for _, p := range runRangePartials(t, spec, 4) {
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back ensemble.Partial
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(*p, back) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, *p)
		}
		// The round-tripped partial must also re-marshal to identical bytes.
		data2, err := back.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if string(data) != string(data2) {
			t.Fatal("re-marshaled bytes differ")
		}
	}
	// Empty partial round-trips too (a lease can cover an all-dropped range
	// only transiently, but the wire format must still be total).
	empty := ensemble.NewPartial(3, 11)
	data, err := empty.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	var back ensemble.Partial
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if !reflect.DeepEqual(*empty, back) {
		t.Fatalf("empty round trip mismatch: %+v vs %+v", back, *empty)
	}
}

// TestSketchRoundTrip exercises the standalone sketch codec across the
// compaction boundary (more values than the sketch capacity).
func TestSketchRoundTrip(t *testing.T) {
	spec := pllSpec(300, 600, 3) // 600 replicates > sketch cap 256 → compacted levels
	parts := runRangePartials(t, spec, 8)
	sk := foldPartials(t, parts).Sketch
	if sk.Count() != 600 {
		t.Fatalf("sketch count = %d, want 600", sk.Count())
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ensemble.Sketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*sk, back) {
		t.Fatal("sketch round trip mismatch")
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	if !reflect.DeepEqual(sk.Quantiles(qs), back.Quantiles(qs)) {
		t.Fatal("round-tripped sketch answers different quantiles")
	}
}

// TestMergedRangesMatchSequential is the cluster correctness theorem in
// miniature: partials computed range-by-range (as distributed workers
// would, marshalled over a wire), folded in ascending order, render
// Aggregates bit-identical to one sequential single-node ensemble run.
func TestMergedRangesMatchSequential(t *testing.T) {
	spec := pllSpec(800, 100, 11)
	res, err := ensemble.Run(context.Background(), spec, ensemble.Options{Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var wire []*ensemble.Partial
	for _, p := range runRangePartials(t, spec, 2) {
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back := &ensemble.Partial{}
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		wire = append(wire, back)
	}
	folded := foldPartials(t, wire)
	if folded.Lo != 0 || folded.Hi != 100 || folded.Count != 100 {
		t.Fatalf("fold covers [%d,%d) count %d, want [0,100) count 100",
			folded.Lo, folded.Hi, folded.Count)
	}
	got := folded.Aggregates(100, false)
	if !reflect.DeepEqual(got, res.Aggregates) {
		t.Fatalf("merged-range aggregates differ from sequential run:\n got %+v\nwant %+v",
			got, res.Aggregates)
	}
}

// TestRunRangesMatchesRunRange checks the pipelined block executor
// produces the same partials as one-at-a-time RunRange.
func TestRunRangesMatchesRunRange(t *testing.T) {
	spec := pllSpec(600, 48, 13)
	want := runRangePartials(t, spec, 3)
	var got []*ensemble.Partial
	err := ensemble.RunRanges(context.Background(), spec, ensemble.PlanRanges(48), 5,
		func(p *ensemble.Partial) bool {
			got = append(got, p)
			return false
		})
	if err != nil {
		t.Fatalf("RunRanges: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("RunRanges delivered %d partials, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i].Clone(), got[i].Clone()
		w.ElapsedMillis, g.ElapsedMillis = 0, 0
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("range %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestPartialUnmarshalRejects feeds the decoder systematically damaged
// payloads: every truncation length, bit flips in every field, and
// structural lies the validator must catch.
func TestPartialUnmarshalRejects(t *testing.T) {
	spec := pllSpec(400, 24, 5)
	p := runRangePartials(t, spec, 4)[0]
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	for n := 0; n < len(data); n++ {
		var back ensemble.Partial
		if err := back.UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("accepted truncation to %d of %d bytes", n, len(data))
		}
	}
	var back ensemble.Partial
	if err := back.UnmarshalBinary(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("accepted trailing byte")
	}
	if err := back.UnmarshalBinary(nil); err == nil {
		t.Fatal("accepted empty payload")
	}

	corrupt := func(name string, mutate func([]byte)) {
		t.Helper()
		c := append([]byte{}, data...)
		mutate(c)
		var v ensemble.Partial
		if err := v.UnmarshalBinary(c); err == nil {
			t.Fatalf("accepted corrupt payload: %s", name)
		}
	}
	corrupt("bad version", func(b []byte) { b[0] = 0xff })
	corrupt("inverted range", func(b []byte) { b[1], b[5] = 200, 0 }) // lo=200 > hi
	corrupt("count beyond range", func(b []byte) { b[9] = 0xff })
	corrupt("stabilized beyond count", func(b []byte) { b[13] = 0xff })
	corrupt("NaN mean", func(b []byte) {
		for i := 17; i < 25; i++ {
			b[i] = 0xff
		}
	})
	corrupt("negative m2", func(b []byte) { b[32] |= 0x80 }) // sign bit of m2
	corrupt("sketch count mismatch", func(b []byte) { b[70] ^= 1 })
}

// TestMergeValidation pins Merge's adjacency requirement and the empty
// edge cases.
func TestMergeValidation(t *testing.T) {
	a := ensemble.NewPartial(0, 8)
	b := ensemble.NewPartial(16, 24)
	if err := a.Merge(b); err == nil {
		t.Fatal("merged non-adjacent ranges")
	}
	// Empty + empty extends the range and nothing else.
	c := ensemble.NewPartial(8, 16)
	if err := a.Merge(c); err != nil {
		t.Fatalf("merge adjacent empties: %v", err)
	}
	if a.Lo != 0 || a.Hi != 16 || a.Count != 0 {
		t.Fatalf("empty merge produced %+v", a)
	}
	if !math.IsInf(a.Min, 1) || !math.IsInf(a.Max, -1) {
		t.Fatalf("empty merge disturbed extrema: %+v", a)
	}
}

// FuzzPartialUnmarshal asserts the binary decoder never panics and,
// when it does accept a payload, accepts a self-consistent partial that
// re-marshals to the identical bytes.
func FuzzPartialUnmarshal(f *testing.F) {
	spec := pllSpec(200, 16, 3)
	p, err := ensemble.RunRange(context.Background(), spec, 0, 16, 4)
	if err != nil {
		f.Fatalf("RunRange: %v", err)
	}
	seed, err := p.MarshalBinary()
	if err != nil {
		f.Fatalf("marshal: %v", err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(seed[:len(seed)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		var v ensemble.Partial
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted partial fails to re-marshal: %v", err)
		}
		if string(out) != string(data) {
			t.Fatal("accepted payload is not canonical (re-marshal differs)")
		}
	})
}

// FuzzSketchUnmarshal is the same property for the standalone sketch
// codec.
func FuzzSketchUnmarshal(f *testing.F) {
	spec := pllSpec(200, 16, 3)
	p, err := ensemble.RunRange(context.Background(), spec, 0, 16, 4)
	if err != nil {
		f.Fatalf("RunRange: %v", err)
	}
	seed, err := p.Sketch.MarshalBinary()
	if err != nil {
		f.Fatalf("marshal: %v", err)
	}
	f.Add(seed)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var s ensemble.Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted sketch fails to re-marshal: %v", err)
		}
		if string(out) != string(data) {
			t.Fatal("accepted payload is not canonical (re-marshal differs)")
		}
	})
}
