// Package ensemble runs parallel Monte-Carlo replication of registry
// protocols: R independent elections of one spec fanned across a bounded
// worker pool, streamed into online aggregators (Welford mean/variance
// with 95% CIs, a mergeable quantile sketch for p50/p90/p99, an
// empirical survival curve of parallel stabilization time), with
// optional early stopping once the relative CI half-width drops below a
// target.
//
// The paper's headline claims are distributional — O(log n) *expected*
// stabilization time, Table 1/2 statistics over many runs — so the unit
// of reproduction is an ensemble, not a single election. This package is
// the one replication engine behind the harness's paper tables, the
// leaderelect -replicates flag, and the popprotod /v1/experiments API.
//
// Determinism is a first-class contract, at two levels:
//
//   - Replicate level: replicate r of an ensemble with base seed s runs
//     with seed ReplicateSeed(s, r), and ReplicateSeed(s, 0) == s, so
//     replicate 0 is bit-identical to a single run of the same spec.
//     Because the census engines consume randomness differently at
//     different RunUntilLeaders boundaries, replicates execute through
//     the same Drive chunk schedule the popprotod job runner uses.
//   - Aggregate level: workers may finish out of order, but results are
//     incorporated strictly in replicate order (a reorder buffer),
//     floating-point accumulation included, so the same spec yields
//     bit-identical Aggregates regardless of worker count — including
//     the early-stopping decision, which depends only on the in-order
//     prefix.
package ensemble

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"popproto/internal/registry"
)

// DefaultObsCap is the default observation cap of Drive's chunk
// schedule, matching the popprotod job trajectory cap so that single
// jobs and ensemble replicates advance their simulations identically.
const DefaultObsCap = 256

// DeriveSeed maps the seed-free identity of a canonical spec to a base
// scheduler seed. It is the single derivation shared by the popprotod
// job manager and this package, so a seedless job and a seedless
// experiment over the same spec agree on their base seed.
func DeriveSeed(protocol string, n int, engine string, m int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed|%s|%d|%s|%d", protocol, n, engine, m)
	return h.Sum64()
}

// splitMix64 is the SplitMix64 output function, used to derive replicate
// seeds from the base seed.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ReplicateSeed returns the scheduler seed for replicate rep of an
// ensemble with the given base seed. Replicate 0 runs with the base seed
// itself — a single run IS replicate 0 — and later replicates take
// independent-looking SplitMix64-derived seeds.
func ReplicateSeed(base uint64, rep int) uint64 {
	if rep == 0 {
		return base
	}
	return splitMix64(base ^ uint64(rep)*0x9e3779b97f4a7c15)
}

// Drive advances el until at most target leaders remain or budget steps
// have executed, in the deterministic chunk schedule of a managed run:
// chunks of one parallel-time unit, with the chunk doubling whenever the
// observation count would exceed obsCap (<= 0 selects DefaultObsCap) —
// exactly the popprotod snapshot-decimation schedule. observe (optional)
// runs once before the first chunk and once after each chunk; ctx
// (optional) is checked at chunk boundaries, and a cancellation makes
// Drive return true with the election stopped where it was.
//
// The chunk schedule is part of a run's deterministic surface: the
// census engines draw randomness differently at different
// RunUntilLeaders boundaries, so every component that promises
// bit-identical runs for one spec — the job runner, ensemble
// replicates — must advance its elections through this one function.
func Drive(ctx context.Context, el registry.Election, target int, budget uint64, obsCap int, observe func()) (canceled bool) {
	if obsCap <= 0 {
		obsCap = DefaultObsCap
	}
	chunk := uint64(el.N())
	obs := 1
	if observe != nil {
		observe()
	}
	for el.Leaders() > target && el.Steps() < budget {
		if ctx != nil && ctx.Err() != nil {
			return true
		}
		el.RunUntilLeaders(target, min(el.Steps()+chunk, budget))
		obs++
		if obs > obsCap {
			// Mirror of the job trajectory decimation: every other stored
			// point dropped (ceil(len/2) kept), cadence doubled.
			obs = (obs + 1) / 2
			chunk *= 2
		}
		if observe != nil {
			observe()
		}
	}
	return false
}

// Spec describes one ensemble: a registry spec replicated R times.
type Spec struct {
	// Registry selects and parameterizes the protocol. Registry.Seed is
	// the ensemble's base seed; 0 derives one from the rest of the spec
	// (DeriveSeed), and replicate r runs with ReplicateSeed(seed, r).
	Registry registry.Spec
	// Replicates is the ensemble size R (required, >= 1).
	Replicates int
	// Budget caps each replicate's interactions (0 = the catalog entry's
	// StepBudget).
	Budget uint64
	// CITarget, when positive, enables early stopping: once at least
	// MinReplicates replicates are incorporated and the relative 95% CI
	// half-width of the mean parallel time drops to CITarget or below,
	// the remaining replicates are skipped.
	CITarget float64
	// MinReplicates is the floor before early stopping may trigger
	// (0 = 16). Ignored without a CITarget.
	MinReplicates int
	// ObsCap is Drive's observation cap (0 = DefaultObsCap). The
	// popprotod experiment runner passes its snapshot cap here so
	// replicate 0 stays bit-identical to a single job.
	ObsCap int
}

// DefaultMinReplicates is the default early-stopping floor.
const DefaultMinReplicates = 16

// Canonicalize validates spec against the registry and resolves its
// defaults (base seed, budget, early-stop floor), returning the
// canonical spec and the catalog entry. Errors wrap registry.ErrBadSpec.
func Canonicalize(spec Spec) (Spec, registry.Entry, error) {
	if spec.Replicates < 1 {
		return Spec{}, registry.Entry{}, fmt.Errorf(
			"%w: ensemble needs replicates >= 1 (got %d)", registry.ErrBadSpec, spec.Replicates)
	}
	if spec.CITarget < 0 {
		return Spec{}, registry.Entry{}, fmt.Errorf(
			"%w: negative ci target %g", registry.ErrBadSpec, spec.CITarget)
	}
	entry, err := registry.Validate(spec.Registry)
	if err != nil {
		return Spec{}, registry.Entry{}, err
	}
	// Resolve the pseudo-engine "auto" before the seed derivation below:
	// the derived seed is a function of the concrete engine name, so an
	// "auto" ensemble must be bit-identical to the explicit ensemble it
	// resolves to.
	if spec.Registry, err = registry.ResolveEngine(spec.Registry); err != nil {
		return Spec{}, registry.Entry{}, err
	}
	if spec.Registry.Seed == 0 {
		spec.Registry.Seed = DeriveSeed(spec.Registry.Protocol, spec.Registry.N,
			spec.Registry.Engine.String(), spec.Registry.M)
	}
	if spec.Budget == 0 {
		spec.Budget = entry.StepBudget(spec.Registry.N)
	}
	if spec.MinReplicates <= 0 {
		spec.MinReplicates = DefaultMinReplicates
	}
	if spec.ObsCap <= 0 {
		spec.ObsCap = DefaultObsCap
	}
	return spec, entry, nil
}

// Options configures an ensemble run.
type Options struct {
	// Workers bounds replicate parallelism (<= 0 selects NumCPU).
	Workers int
	// OnReplicate, when set, observes each incorporated replicate, in
	// replicate order.
	OnReplicate func(Replicate)
	// OnUpdate, when set, observes the running aggregates after each
	// incorporated replicate, in replicate order. Both callbacks run on
	// the Run goroutine and must not block for long.
	OnUpdate func(Aggregates)
}

// Result is a finished (or canceled) ensemble.
type Result struct {
	// Spec is the canonicalized spec the ensemble ran (seed and budget
	// resolved).
	Spec Spec
	// Aggregates summarizes the incorporated replicates.
	Aggregates Aggregates
}

// replicateMsg carries one worker result to the aggregator.
type replicateMsg struct {
	rep Replicate
	err error
}

// dispatch fans replicates [lo, hi) of a canonical spec across a
// bounded worker pool and feeds results to incorporate strictly in
// replicate order (a reorder buffer smooths out-of-order completions).
// incorporate returning true stops dispatch; remaining in-flight
// replicates are drained, not incorporated. Replicates interrupted by
// cancellation (external or a stop) are dropped silently — the caller
// decides from ctx and its own counts how to report a shortfall; any
// other worker error cancels the dispatch and is returned.
func dispatch(ctx context.Context, entry registry.Entry, spec Spec, lo, hi, workers int, incorporate func(Replicate) (stop bool)) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > hi-lo {
		workers = hi - lo
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Replicate dispatch: workers claim indices from a shared channel so a
	// cancellation (external or early stop) halts dispatch immediately.
	reps := make(chan int)
	go func() {
		defer close(reps)
		for r := lo; r < hi; r++ {
			select {
			case reps <- r:
			case <-runCtx.Done():
				return
			}
		}
	}()

	results := make(chan replicateMsg, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for rep := range reps {
				r, err := runReplicate(runCtx, entry, spec, rep)
				// The dispatcher drains results until every worker has
				// exited, so this send cannot block indefinitely.
				results <- replicateMsg{rep: r, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]Replicate, workers)
	next := lo
	stopped := false
	var firstErr error
	for msg := range results {
		if msg.err != nil {
			if !errors.Is(msg.err, context.Canceled) && firstErr == nil {
				firstErr = msg.err
				cancel()
			}
			continue
		}
		pending[msg.rep.Rep] = msg.rep
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if stopped || firstErr != nil {
				continue // drained, not incorporated
			}
			if incorporate(r) {
				stopped = true
				cancel()
			}
		}
	}
	return firstErr
}

// Run executes the ensemble: replicates fanned across the worker pool,
// results incorporated in replicate order, early stopping applied when
// configured (decided at canonical range boundaries — see Partial). On
// cancellation it returns the aggregates incorporated so far together
// with ctx's error; the partial result is still deterministic up to the
// point of interruption in replicate count.
func Run(ctx context.Context, spec Spec, opts Options) (Result, error) {
	spec, entry, err := Canonicalize(spec)
	if err != nil {
		return Result{}, err
	}
	agg := newAggregator(spec.Replicates)
	err = dispatch(ctx, entry, spec, 0, spec.Replicates, opts.Workers, func(r Replicate) bool {
		rangeClosed := agg.add(r)
		if opts.OnReplicate != nil {
			opts.OnReplicate(r)
		}
		if opts.OnUpdate != nil {
			opts.OnUpdate(agg.aggregates())
		}
		if rangeClosed && spec.CITarget > 0 && agg.count() >= spec.MinReplicates &&
			agg.relHalfWidth() <= spec.CITarget {
			agg.early = true
			return true // skip the remaining replicates
		}
		return false
	})
	res := Result{Spec: spec, Aggregates: agg.aggregates()}
	switch {
	case err != nil:
		return res, err
	case agg.early:
		return res, nil
	case ctx.Err() != nil && agg.count() < spec.Replicates:
		return res, ctx.Err()
	default:
		return res, nil
	}
}

// RunRange executes replicates [lo, hi) of the spec and returns their
// Partial — the unit of work a cluster worker performs for one lease.
// The partial is bit-identical no matter where or with how many workers
// it is computed (results are added in replicate order). An interrupted
// range returns ctx's error rather than a partial: a coordinator must
// only ever merge complete ranges.
func RunRange(ctx context.Context, spec Spec, lo, hi, workers int) (*Partial, error) {
	spec, entry, err := Canonicalize(spec)
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi <= lo || hi > spec.Replicates {
		return nil, fmt.Errorf("ensemble: invalid replicate range [%d,%d) of %d",
			lo, hi, spec.Replicates)
	}
	start := time.Now()
	p := NewPartial(lo, hi)
	err = dispatch(ctx, entry, spec, lo, hi, workers, func(r Replicate) bool {
		p.Add(r)
		return false
	})
	if err != nil {
		return nil, err
	}
	if p.Count < hi-lo {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("ensemble: range [%d,%d) incomplete (%d of %d replicates)",
			lo, hi, p.Count, hi-lo)
	}
	p.ElapsedMillis = time.Since(start).Milliseconds()
	return p, nil
}

// RunRanges executes a contiguous ascending block of canonical ranges
// as one pipelined dispatch (no barrier between ranges), delivering
// each range's Partial to onRange in range order as it completes.
// onRange returning true stops the block — this is how a coordinator's
// early-stopping or reassignment decision propagates into local
// execution. It is the local-participation engine of the cluster
// coordinator: the degenerate no-remote-workers case runs the whole
// partition through one call with full replicate parallelism.
func RunRanges(ctx context.Context, spec Spec, ranges []Range, workers int, onRange func(*Partial) (stop bool)) error {
	spec, entry, err := Canonicalize(spec)
	if err != nil {
		return err
	}
	if len(ranges) == 0 {
		return nil
	}
	for i, rg := range ranges {
		switch {
		case rg.Lo < 0 || rg.Hi <= rg.Lo || rg.Hi > spec.Replicates:
			return fmt.Errorf("ensemble: invalid range [%d,%d) of %d", rg.Lo, rg.Hi, spec.Replicates)
		case i > 0 && rg.Lo != ranges[i-1].Hi:
			return fmt.Errorf("ensemble: range block not contiguous at [%d,%d)", rg.Lo, rg.Hi)
		}
	}
	idx := 0
	cur := NewPartial(ranges[0].Lo, ranges[0].Hi)
	start := time.Now()
	stopped := false
	err = dispatch(ctx, entry, spec, ranges[0].Lo, ranges[len(ranges)-1].Hi, workers, func(r Replicate) bool {
		cur.Add(r)
		if cur.Count < cur.Hi-cur.Lo {
			return false
		}
		now := time.Now()
		cur.ElapsedMillis = now.Sub(start).Milliseconds()
		start = now
		done := cur
		if idx++; idx < len(ranges) {
			cur = NewPartial(ranges[idx].Lo, ranges[idx].Hi)
		}
		if onRange(done) {
			stopped = true
			return true
		}
		return false
	})
	if err != nil {
		return err
	}
	if !stopped && idx < len(ranges) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("ensemble: range block incomplete (%d of %d ranges)", idx, len(ranges))
	}
	return nil
}

// runReplicate executes one replicate to completion (or cancellation)
// through the shared Drive schedule. A canceled replicate returns
// context.Canceled; Run treats that as "dropped", not as a failure.
func runReplicate(ctx context.Context, entry registry.Entry, spec Spec, rep int) (Replicate, error) {
	rspec := spec.Registry
	rspec.Seed = ReplicateSeed(spec.Registry.Seed, rep)
	el, err := registry.New(rspec)
	if err != nil {
		// The spec was validated by Canonicalize; this is an internal
		// inconsistency, surfaced rather than panicking the worker.
		return Replicate{}, fmt.Errorf("ensemble: replicate %d: %w", rep, err)
	}
	if canceled := Drive(ctx, el, entry.Target, spec.Budget, spec.ObsCap, nil); canceled {
		return Replicate{}, context.Canceled
	}
	return Replicate{
		Rep:          rep,
		Seed:         rspec.Seed,
		Steps:        el.Steps(),
		ParallelTime: el.ParallelTime(),
		Stabilized:   el.Leaders() <= entry.Target,
		Leaders:      el.Leaders(),
	}, nil
}
