package ensemble_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
)

func pllSpec(n, reps int, seed uint64) ensemble.Spec {
	return ensemble.Spec{
		Registry:   registry.Spec{Protocol: "pll", N: n, Engine: pp.EngineCount, Seed: seed},
		Replicates: reps,
	}
}

func mustRun(t *testing.T, spec ensemble.Spec, opts ensemble.Options) ensemble.Result {
	t.Helper()
	res, err := ensemble.Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatalf("Run(%+v): %v", spec, err)
	}
	return res
}

func TestSeedDerivation(t *testing.T) {
	base := ensemble.DeriveSeed("pll", 1000, "count", 0)
	if base == 0 {
		t.Fatal("derived base seed is 0")
	}
	if again := ensemble.DeriveSeed("pll", 1000, "count", 0); again != base {
		t.Errorf("derivation not stable: %d vs %d", base, again)
	}
	if other := ensemble.DeriveSeed("pll", 1001, "count", 0); other == base {
		t.Error("distinct specs derived the same seed")
	}
	// Replicate 0 IS the single run: its seed is the base seed itself.
	if got := ensemble.ReplicateSeed(base, 0); got != base {
		t.Errorf("ReplicateSeed(base, 0) = %d, want base %d", got, base)
	}
	seen := map[uint64]bool{base: true}
	for rep := 1; rep < 1000; rep++ {
		s := ensemble.ReplicateSeed(base, rep)
		if seen[s] {
			t.Fatalf("replicate seed collision at rep %d", rep)
		}
		seen[s] = true
	}
}

// TestAggregatesSane checks the statistical surface of a small PLL
// ensemble: counts, ordering of quantiles, CI bracketing the mean, a
// monotone survival curve.
func TestAggregatesSane(t *testing.T) {
	res := mustRun(t, pllSpec(2000, 24, 7), ensemble.Options{Workers: 4})
	agg := res.Aggregates
	if agg.Replicates != 24 || agg.Requested != 24 {
		t.Fatalf("replicates = %d/%d, want 24/24", agg.Replicates, agg.Requested)
	}
	if agg.Stabilized != 24 {
		t.Errorf("stabilized = %d, want 24 (PLL elects with probability 1)", agg.Stabilized)
	}
	if agg.MeanParallelTime <= 0 || agg.MeanSteps <= 0 {
		t.Errorf("nonpositive means: %+v", agg)
	}
	if !(agg.CILo <= agg.MeanParallelTime && agg.MeanParallelTime <= agg.CIHi) {
		t.Errorf("CI [%g, %g] does not bracket mean %g", agg.CILo, agg.CIHi, agg.MeanParallelTime)
	}
	if !(agg.MinParallelTime <= agg.P50 && agg.P50 <= agg.P90 &&
		agg.P90 <= agg.P99 && agg.P99 <= agg.MaxParallelTime) {
		t.Errorf("quantiles out of order: %+v", agg)
	}
	if agg.StabilizedLo > float64(agg.Stabilized)/float64(agg.Replicates) ||
		agg.StabilizedHi < float64(agg.Stabilized)/float64(agg.Replicates) {
		t.Errorf("Wilson CI [%g, %g] does not bracket the proportion", agg.StabilizedLo, agg.StabilizedHi)
	}
	if len(agg.Survival) == 0 {
		t.Fatal("no survival curve")
	}
	for i := 1; i < len(agg.Survival); i++ {
		if agg.Survival[i].T < agg.Survival[i-1].T || agg.Survival[i].Frac > agg.Survival[i-1].Frac {
			t.Errorf("survival curve not monotone at %d: %+v", i, agg.Survival)
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the core executor contract:
// the same spec yields bit-identical aggregates no matter how many
// workers race the replicates, because incorporation is in replicate
// order.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := pllSpec(2000, 24, 5)
	want := mustRun(t, spec, ensemble.Options{Workers: 1}).Aggregates
	for _, workers := range []int{2, 4, 8} {
		got := mustRun(t, spec, ensemble.Options{Workers: workers}).Aggregates
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestDeterministicEarlyStopAcrossWorkerCounts: the early-stopping
// decision depends only on the in-order prefix, so it too is identical
// across worker counts.
func TestDeterministicEarlyStopAcrossWorkerCounts(t *testing.T) {
	spec := pllSpec(2000, 64, 5)
	spec.CITarget = 0.25
	spec.MinReplicates = 8
	want := mustRun(t, spec, ensemble.Options{Workers: 1}).Aggregates
	for _, workers := range []int{3, 8} {
		got := mustRun(t, spec, ensemble.Options{Workers: workers}).Aggregates
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestEngineChoice runs the same ensemble on every engine; all must
// finish with every replicate stabilized (the distributions agree by the
// engine-equivalence suites; here we only exercise the executor paths).
func TestEngineChoice(t *testing.T) {
	for _, engine := range pp.Engines() {
		spec := ensemble.Spec{
			Registry:   registry.Spec{Protocol: "angluin", N: 300, Engine: engine, Seed: 3},
			Replicates: 8,
		}
		res := mustRun(t, spec, ensemble.Options{Workers: 4})
		if res.Aggregates.Stabilized != 8 {
			t.Errorf("engine %v: stabilized %d/8", engine, res.Aggregates.Stabilized)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	spec := pllSpec(1000, 64, 9)
	spec.CITarget = 0.9 // loose enough to trigger at the floor
	spec.MinReplicates = 8
	var updates atomic.Int64
	res := mustRun(t, spec, ensemble.Options{
		Workers:  4,
		OnUpdate: func(ensemble.Aggregates) { updates.Add(1) },
	})
	agg := res.Aggregates
	if !agg.EarlyStopped {
		t.Fatalf("CI target 0.9 did not stop early: %+v", agg)
	}
	if agg.Replicates < 8 || agg.Replicates >= 64 {
		t.Errorf("early stop incorporated %d replicates, want in [8, 64)", agg.Replicates)
	}
	if agg.RelHalfWidth > 0.9 {
		t.Errorf("stopped with relHalfWidth %g > target", agg.RelHalfWidth)
	}
	if int(updates.Load()) != agg.Replicates {
		t.Errorf("%d OnUpdate calls for %d incorporated replicates", updates.Load(), agg.Replicates)
	}
}

// TestReplicateOrderAndSeeds: OnReplicate must observe replicates in
// index order with the documented seeds.
func TestReplicateOrderAndSeeds(t *testing.T) {
	spec := pllSpec(500, 16, 11)
	var reps []ensemble.Replicate
	mustRun(t, spec, ensemble.Options{
		Workers:     8,
		OnReplicate: func(r ensemble.Replicate) { reps = append(reps, r) },
	})
	if len(reps) != 16 {
		t.Fatalf("observed %d replicates, want 16", len(reps))
	}
	for i, r := range reps {
		if r.Rep != i {
			t.Fatalf("replicate %d delivered out of order (index %d)", r.Rep, i)
		}
		if want := ensemble.ReplicateSeed(11, i); r.Seed != want {
			t.Errorf("replicate %d ran with seed %d, want %d", i, r.Seed, want)
		}
	}
}

// TestValidation: bad specs come back as registry.ErrBadSpec wraps.
func TestValidation(t *testing.T) {
	cases := []ensemble.Spec{
		{Registry: registry.Spec{Protocol: "pll", N: 1000}, Replicates: 0},
		{Registry: registry.Spec{Protocol: "nope", N: 1000}, Replicates: 4},
		{Registry: registry.Spec{Protocol: "pll", N: 1}, Replicates: 4},
		{Registry: registry.Spec{Protocol: "pll", N: 1000}, Replicates: 4, CITarget: -0.5},
	}
	for _, spec := range cases {
		if _, err := ensemble.Run(context.Background(), spec, ensemble.Options{}); !errors.Is(err, registry.ErrBadSpec) {
			t.Errorf("Run(%+v) error = %v, want ErrBadSpec", spec, err)
		}
	}
}

// TestCancellationUnderLoad fires a 120-replicate ensemble, cancels it
// mid-flight, and checks that Run returns promptly with a partial,
// consistent result and that no goroutines leak. Run under -race in CI.
func TestCancellationUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	spec := ensemble.Spec{
		// Linear-time protocol: slow enough at this n to cancel mid-flight.
		Registry:   registry.Spec{Protocol: "angluin", N: 20_000, Engine: pp.EngineCount, Seed: 2},
		Replicates: 120,
	}
	done := make(chan struct{})
	var res ensemble.Result
	var err error
	go func() {
		defer close(done)
		res, err = ensemble.Run(ctx, spec, ensemble.Options{
			Workers: 8,
			OnUpdate: func(ensemble.Aggregates) {
				if seen.Add(1) == 5 {
					cancel() // cancel once a few replicates are in
				}
			},
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("canceled ensemble did not return within 60s")
	}
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Aggregates.Replicates >= 120 {
		t.Errorf("canceled ensemble incorporated all %d replicates", res.Aggregates.Replicates)
	}
	if res.Aggregates.Replicates > 0 && res.Aggregates.MeanParallelTime <= 0 {
		t.Errorf("partial aggregates inconsistent: %+v", res.Aggregates)
	}

	// All workers must wind down: no leaked goroutines.
	deadline := time.Now().Add(20 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLoadCompletes runs a 150-replicate ensemble to completion over a
// small pool — the satellite load test (run under -race in CI) — and
// checks the executor accounted for every replicate exactly once.
func TestLoadCompletes(t *testing.T) {
	before := runtime.NumGoroutine()
	spec := pllSpec(500, 150, 13)
	var count atomic.Int64
	res := mustRun(t, spec, ensemble.Options{
		Workers:     6,
		OnReplicate: func(ensemble.Replicate) { count.Add(1) },
	})
	if res.Aggregates.Replicates != 150 || count.Load() != 150 {
		t.Errorf("incorporated %d replicates (%d observed), want 150",
			res.Aggregates.Replicates, count.Load())
	}
	deadline := time.Now().Add(20 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDriveMatchesUnchunkedOutcome: Drive must reach the same terminal
// verdict as the runner's own RunUntilLeaders (the step counts differ
// only through rng consumption at chunk boundaries, which is the point
// of sharing Drive — but both must elect exactly one leader).
func TestDriveMatchesUnchunkedOutcome(t *testing.T) {
	el, err := registry.New(registry.Spec{Protocol: "pll", N: 1000, Engine: pp.EngineCount, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := registry.Lookup("pll")
	canceled := ensemble.Drive(context.Background(), el, entry.Target, entry.StepBudget(1000), 0, nil)
	if canceled {
		t.Fatal("uncanceled Drive reported canceled")
	}
	if el.Leaders() != 1 {
		t.Fatalf("Drive ended with %d leaders", el.Leaders())
	}

	// Determinism of the drive schedule itself: same spec, same steps.
	el2, _ := registry.New(registry.Spec{Protocol: "pll", N: 1000, Engine: pp.EngineCount, Seed: 21})
	ensemble.Drive(context.Background(), el2, entry.Target, entry.StepBudget(1000), 0, nil)
	if el.Steps() != el2.Steps() {
		t.Errorf("two identical drives diverged: %d vs %d steps", el.Steps(), el2.Steps())
	}
}
