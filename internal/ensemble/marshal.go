package ensemble

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary wire format for partial aggregates, used by the cluster
// subsystem to ship per-range state from workers to the coordinator.
// Everything is little-endian fixed-width, prefixed with a version byte
// so the format can evolve without ambiguity:
//
//	Partial v1: 0x01 | uint32 lo hi count stabilized
//	            | float64-bits mean m2 min max sumSteps
//	            | int64 elapsedMillis | Sketch
//	Sketch  v1: 0x01 | uint32 cap | uint64 count | uint32 numLevels
//	            | per level: byte parity | uint32 len | float64-bits…
//
// Decoding validates structure exhaustively (bounds, finiteness,
// cross-field invariants, no trailing bytes): a coordinator merges
// payloads posted over the network and must never fold a corrupt or
// truncated partial into an experiment's aggregate.
const (
	partialVersion = 1
	sketchVersion  = 1

	// maxSketchCap bounds the capacity a decoded sketch may declare,
	// capping what a malicious payload can make the decoder allocate.
	maxSketchCap = 1 << 20
	// maxSketchLevels bounds the level count (weights are 1<<i, so more
	// than 64 levels is meaningless for a uint64 count anyway).
	maxSketchLevels = 64
)

// decoder is a bounds-checked cursor over a binary payload. The first
// out-of-range read latches err and makes every later read return zero,
// so decode paths can read a whole structure and check err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n > len(d.buf)-d.off {
		d.err = fmt.Errorf("ensemble: truncated payload at byte %d", d.off)
		return false
	}
	return true
}

func (d *decoder) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// finish fails unless the whole payload was consumed cleanly.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("ensemble: %d trailing bytes after payload", len(d.buf)-d.off)
	}
	return nil
}

// MarshalBinary encodes the partial in wire format v1.
func (p *Partial) MarshalBinary() ([]byte, error) {
	if p.Sketch == nil {
		return nil, fmt.Errorf("ensemble: cannot marshal partial without a sketch")
	}
	sk, err := p.Sketch.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 1+4*4+8*5+8+len(sk))
	buf = append(buf, partialVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Lo))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Hi))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Count))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Stabilized))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Mean))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.M2))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Min))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Max))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.SumSteps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.ElapsedMillis))
	return append(buf, sk...), nil
}

// UnmarshalBinary decodes and validates a wire-format partial,
// replacing p. It rejects any payload that is truncated, has trailing
// bytes, or violates a structural invariant.
func (p *Partial) UnmarshalBinary(data []byte) error {
	d := &decoder{buf: data}
	if v := d.u8(); d.err == nil && v != partialVersion {
		return fmt.Errorf("ensemble: unsupported partial version %d", v)
	}
	dec := Partial{
		Lo:         int(d.u32()),
		Hi:         int(d.u32()),
		Count:      int(d.u32()),
		Stabilized: int(d.u32()),
	}
	dec.Mean = d.f64()
	dec.M2 = d.f64()
	dec.Min = d.f64()
	dec.Max = d.f64()
	dec.SumSteps = d.f64()
	dec.ElapsedMillis = int64(d.u64())
	sk := &Sketch{}
	sk.unmarshalFrom(d)
	if err := d.finish(); err != nil {
		return err
	}
	dec.Sketch = sk
	if err := dec.validate(); err != nil {
		return err
	}
	*p = dec
	return nil
}

// validate checks the cross-field invariants every genuine partial
// satisfies.
func (p *Partial) validate() error {
	switch {
	case p.Hi < p.Lo:
		return fmt.Errorf("ensemble: partial range [%d,%d) inverted", p.Lo, p.Hi)
	case p.Count > p.Hi-p.Lo:
		return fmt.Errorf("ensemble: partial count %d exceeds range [%d,%d)", p.Count, p.Lo, p.Hi)
	case p.Stabilized > p.Count:
		return fmt.Errorf("ensemble: stabilized %d exceeds count %d", p.Stabilized, p.Count)
	case p.ElapsedMillis < 0:
		return fmt.Errorf("ensemble: negative elapsed time %d", p.ElapsedMillis)
	case math.IsNaN(p.Mean) || math.IsInf(p.Mean, 0):
		return fmt.Errorf("ensemble: non-finite mean")
	case math.IsNaN(p.M2) || math.IsInf(p.M2, 0) || p.M2 < 0:
		return fmt.Errorf("ensemble: invalid m2")
	case math.IsNaN(p.SumSteps) || math.IsInf(p.SumSteps, 0) || p.SumSteps < 0:
		return fmt.Errorf("ensemble: invalid step tally")
	case p.Sketch.Count() != uint64(p.Count):
		return fmt.Errorf("ensemble: sketch count %d disagrees with partial count %d",
			p.Sketch.Count(), p.Count)
	}
	if p.Count == 0 {
		if p.Mean != 0 || p.M2 != 0 || p.SumSteps != 0 ||
			!math.IsInf(p.Min, 1) || !math.IsInf(p.Max, -1) {
			return fmt.Errorf("ensemble: empty partial with nonzero statistics")
		}
		return nil
	}
	if math.IsNaN(p.Min) || math.IsInf(p.Min, 0) ||
		math.IsNaN(p.Max) || math.IsInf(p.Max, 0) || p.Min > p.Max {
		return fmt.Errorf("ensemble: invalid extrema [%g, %g]", p.Min, p.Max)
	}
	return nil
}

// MarshalBinary encodes the sketch in wire format v1.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	size := 1 + 4 + 8 + 4
	for _, lvl := range s.levels {
		size += 1 + 4 + 8*len(lvl)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, sketchVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.cap))
	buf = binary.LittleEndian.AppendUint64(buf, s.count)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.levels)))
	for i, lvl := range s.levels {
		var par byte
		if s.parity[i] {
			par = 1
		}
		buf = append(buf, par)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(lvl)))
		for _, v := range lvl {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes and validates a wire-format sketch, replacing s.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	d := &decoder{buf: data}
	dec := Sketch{}
	dec.unmarshalFrom(d)
	if err := d.finish(); err != nil {
		return err
	}
	*s = dec
	return nil
}

// unmarshalFrom decodes one sketch from the cursor, validating as it
// goes (errors latch on d). It does not require the cursor to be
// exhausted — Partial decoding embeds a sketch mid-payload.
func (s *Sketch) unmarshalFrom(d *decoder) {
	fail := func(format string, args ...any) {
		if d.err == nil {
			d.err = fmt.Errorf("ensemble: "+format, args...)
		}
	}
	if v := d.u8(); d.err == nil && v != sketchVersion {
		fail("unsupported sketch version %d", v)
		return
	}
	capacity := int(d.u32())
	count := d.u64()
	numLevels := int(d.u32())
	if d.err != nil {
		return
	}
	if capacity < 4 || capacity > maxSketchCap {
		fail("sketch capacity %d out of range", capacity)
		return
	}
	if numLevels > maxSketchLevels {
		fail("sketch declares %d levels", numLevels)
		return
	}
	dec := Sketch{count: count, cap: capacity}
	var mass uint64
	for i := 0; i < numLevels; i++ {
		par := d.u8()
		n := int(d.u32())
		if d.err != nil {
			return
		}
		if par > 1 {
			fail("sketch level %d parity byte %d", i, par)
			return
		}
		// Levels compact before reaching capacity, so a genuine level is
		// always strictly shorter — and this bound also keeps a crafted
		// length from forcing a huge allocation before the bytes are
		// checked.
		if n >= capacity {
			fail("sketch level %d length %d exceeds capacity %d", i, n, capacity)
			return
		}
		if !d.need(8 * n) {
			return
		}
		lvl := make([]float64, n)
		for j := range lvl {
			v := d.f64()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				fail("sketch level %d has a non-finite value", i)
				return
			}
			lvl[j] = v
		}
		dec.levels = append(dec.levels, lvl)
		dec.parity = append(dec.parity, par == 1)
		mass += uint64(n) << uint(i)
	}
	// Deterministic compaction of odd-length buffers shifts summarized
	// mass by ±1 per compaction, so mass only loosely tracks count — but
	// an empty summary of a nonempty stream (or vice versa) is always
	// corrupt.
	if (count == 0) != (mass == 0) {
		fail("sketch count %d disagrees with summarized mass %d", count, mass)
		return
	}
	*s = dec
}
