package ensemble

import "sort"

// defaultSketchCap is the per-level buffer capacity of a Sketch. Ensembles
// up to this many replicates are summarized exactly; beyond it the sketch
// degrades gracefully to a compacted summary with rank error well under 1%
// at the sizes this repository runs (tens of thousands of replicates).
const defaultSketchCap = 256

// Sketch is a deterministic, mergeable quantile summary in the KLL style:
// a stack of buffers in which a value at level i carries weight 2^i. When
// a level overflows it is compacted — sorted, every other element promoted
// to the next level, the rest discarded — with the starting parity
// alternated per level so consecutive compactions cannot systematically
// favor low or high ranks.
//
// Unlike the randomized-compaction sketches it is modeled on, compaction
// here is fully deterministic: the same sequence of Add calls always
// yields the same summary, which is what lets the ensemble executor
// promise bit-identical aggregates regardless of worker count. Memory is
// O(cap · log(n/cap)); a Sketch holding fewer than cap values is exact.
//
// The zero value is not usable; construct with newSketch. Sketch is not
// safe for concurrent use.
type Sketch struct {
	levels [][]float64 // levels[i] holds values of weight 1 << i
	parity []bool      // per-level compaction offset, flipped each compaction
	count  uint64
	cap    int
}

// newSketch returns an empty sketch with the given per-level capacity
// (<= 0 selects the default).
func newSketch(capacity int) *Sketch {
	if capacity <= 0 {
		capacity = defaultSketchCap
	}
	// A level must shrink when compacted.
	if capacity < 4 {
		capacity = 4
	}
	return &Sketch{cap: capacity}
}

// Count returns the number of values added (with multiplicity).
func (s *Sketch) Count() uint64 { return s.count }

// Cap returns the per-level buffer capacity.
func (s *Sketch) Cap() int { return s.cap }

// Clone returns an independent deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{count: s.count, cap: s.cap}
	if s.levels != nil {
		c.levels = make([][]float64, len(s.levels))
		for i, lvl := range s.levels {
			c.levels[i] = append(make([]float64, 0, s.cap), lvl...)
		}
		c.parity = append([]bool(nil), s.parity...)
	}
	return c
}

// Add inserts one value.
func (s *Sketch) Add(x float64) {
	if len(s.levels) == 0 {
		s.levels = append(s.levels, make([]float64, 0, s.cap))
		s.parity = append(s.parity, false)
	}
	s.levels[0] = append(s.levels[0], x)
	s.count++
	if len(s.levels[0]) >= s.cap {
		s.compact(0)
	}
}

// compact halves level i by promoting every other element (in sorted
// order) to level i+1, cascading if that level overflows in turn.
func (s *Sketch) compact(i int) {
	buf := s.levels[i]
	sort.Float64s(buf)
	if i+1 >= len(s.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.cap))
		s.parity = append(s.parity, false)
	}
	start := 0
	if s.parity[i] {
		start = 1
	}
	s.parity[i] = !s.parity[i]
	for j := start; j < len(buf); j += 2 {
		s.levels[i+1] = append(s.levels[i+1], buf[j])
	}
	s.levels[i] = buf[:0]
	if len(s.levels[i+1]) >= s.cap {
		s.compact(i + 1)
	}
}

// Merge folds other into s. Both sketches must share the same per-level
// capacity (true for all sketches built by this package with defaults).
// other is left unchanged.
func (s *Sketch) Merge(other *Sketch) {
	for i, lvl := range other.levels {
		for len(s.levels) <= i {
			s.levels = append(s.levels, make([]float64, 0, s.cap))
			s.parity = append(s.parity, false)
		}
		s.levels[i] = append(s.levels[i], lvl...)
	}
	s.count += other.count
	for i := 0; i < len(s.levels); i++ {
		if len(s.levels[i]) >= s.cap {
			s.compact(i)
		}
	}
}

// weighted is one summarized value with its multiplicity.
type weighted struct {
	v float64
	w uint64
}

// Quantile returns an estimate of the q-th quantile (0 ≤ q ≤ 1) of the
// added values, exact while fewer than the sketch capacity have been
// added. It returns 0 on an empty sketch. For several quantiles at once
// use Quantiles, which flattens and sorts the summary only once.
func (s *Sketch) Quantile(q float64) float64 {
	return s.Quantiles([]float64{q})[0]
}

// Quantiles answers all the given quantile queries from a single
// flatten-and-sort of the summary — the aggregator asks for 16 per
// update, so sharing the O(size · log size) pass matters at large
// replicate counts. Results are positional with qs; an empty sketch
// answers 0 everywhere.
func (s *Sketch) Quantiles(qs []float64) []float64 {
	out := make([]float64, len(qs))
	if s.count == 0 {
		return out
	}
	all := make([]weighted, 0, s.cap*len(s.levels))
	for i, lvl := range s.levels {
		w := uint64(1) << uint(i)
		for _, v := range lvl {
			all = append(all, weighted{v, w})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v < all[b].v })
	var total uint64
	for _, e := range all {
		total += e.w
	}
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		// Rank target: q scaled over the summarized mass, clamped into
		// range so q=0 is the minimum and q=1 the maximum.
		target := uint64(q * float64(total))
		if target >= total {
			target = total - 1
		}
		var cum uint64
		out[i] = all[len(all)-1].v
		for _, e := range all {
			cum += e.w
			if cum > target {
				out[i] = e.v
				break
			}
		}
	}
	return out
}
