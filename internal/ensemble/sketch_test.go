package ensemble

import (
	"math"
	"sort"
	"testing"

	"popproto/internal/rng"
)

// trueQuantile is the reference: nearest-rank quantile of the full
// sample.
func trueQuantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// rankOf returns x's rank (fraction of sample <= x).
func rankOf(xs []float64, x float64) float64 {
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

func TestSketchExactBelowCap(t *testing.T) {
	s := newSketch(256)
	var xs []float64
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		x := r.Float64() * 100
		xs = append(xs, x)
		s.Add(x)
	}
	if s.Count() != 200 {
		t.Fatalf("count = %d, want 200", s.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		got, want := s.Quantile(q), trueQuantile(xs, q)
		if got != want {
			t.Errorf("q=%g: sketch %g, exact %g (sketch below cap must be exact)", q, got, want)
		}
	}
}

func TestSketchApproximateAboveCap(t *testing.T) {
	s := newSketch(256)
	var xs []float64
	r := rng.New(2)
	for i := 0; i < 50_000; i++ {
		// A skewed distribution: exponential-ish via -log(u).
		x := -math.Log(r.Float64() + 1e-18)
		xs = append(xs, x)
		s.Add(x)
	}
	// Rank error, not value error: the estimate's rank in the true sample
	// must be within a few percent of the target rank.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est := s.Quantile(q)
		rank := rankOf(xs, est)
		if math.Abs(rank-q) > 0.05 {
			t.Errorf("q=%g: estimate %g has true rank %g (off by %g)", q, est, rank, math.Abs(rank-q))
		}
	}
}

func TestSketchDeterministic(t *testing.T) {
	build := func() *Sketch {
		s := newSketch(64)
		r := rng.New(7)
		for i := 0; i < 10_000; i++ {
			s.Add(r.Float64())
		}
		return s
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%g: identical builds diverged: %g vs %g", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestSketchMerge(t *testing.T) {
	r := rng.New(3)
	var all []float64
	a, b := newSketch(128), newSketch(128)
	for i := 0; i < 5_000; i++ {
		x := r.Float64() * 10
		all = append(all, x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != 5_000 {
		t.Fatalf("merged count = %d, want 5000", a.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est := a.Quantile(q)
		rank := rankOf(all, est)
		if math.Abs(rank-q) > 0.06 {
			t.Errorf("merged q=%g: estimate %g has true rank %g", q, est, rank)
		}
	}
}

func TestSketchEmptyAndSingle(t *testing.T) {
	s := newSketch(0)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty sketch quantile = %g, want 0", got)
	}
	s.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("single-value sketch q=%g = %g, want 42", q, got)
		}
	}
}
