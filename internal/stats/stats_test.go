package stats

import (
	"math"
	"testing"
	"testing/quick"

	"popproto/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Std, 2.138, 0.001) {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("range = [%v, %v]", s.Min, s.Max)
	}
	if !almost(s.Median, 4.5, 1e-12) {
		t.Fatalf("median = %v", s.Median)
	}
	lo, hi := s.CI95()
	if lo >= s.Mean || hi <= s.Mean {
		t.Fatalf("CI95 = [%v, %v] does not bracket the mean", lo, hi)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Fatalf("single-point summary = %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

// TestQuickQuantileWithinRange: quantiles always land inside [min, max].
func TestQuickQuantileWithinRange(t *testing.T) {
	r := rng.New(1)
	f := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			raw = []float64{r.Float64()}
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		q := float64(qRaw) / 255
		got := Quantile(raw, q)
		s := Summarize(raw)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 3, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 1.5*xs[i] - 4 + (r.Float64()-0.5)*2
	}
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 1.5, 0.01) || !almost(f.Intercept, -4, 1.0) {
		t.Fatalf("noisy fit = %+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R² = %v too low for light noise", f.R2)
	}
}

func TestFitLogX(t *testing.T) {
	// y = 3·lg(x) + 1 exactly.
	xs := []float64{2, 4, 8, 16, 32}
	ys := []float64{4, 7, 10, 13, 16}
	f := FitLogX(xs, ys)
	if !almost(f.Slope, 3, 1e-9) || !almost(f.Intercept, 1, 1e-9) {
		t.Fatalf("log fit = %+v", f)
	}
}

func TestPowerFitDistinguishesShapes(t *testing.T) {
	ns := []float64{256, 512, 1024, 2048, 4096}

	linear := make([]float64, len(ns))
	logarithmic := make([]float64, len(ns))
	for i, n := range ns {
		linear[i] = 0.7 * n
		logarithmic[i] = 12 * math.Log2(n)
	}
	if e := PowerFit(ns, linear).Slope; !almost(e, 1, 0.01) {
		t.Fatalf("linear exponent = %v", e)
	}
	if e := PowerFit(ns, logarithmic).Slope; e > 0.25 {
		t.Fatalf("logarithmic data produced exponent %v, want near 0", e)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatched": func() { LinearFit([]float64{1}, []float64{1, 2}) },
		"too short":  func() { LinearFit([]float64{1}, []float64{1}) },
		"degenerate": func() { LinearFit([]float64{2, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestChernoffBounds(t *testing.T) {
	// Exact values of e^{−δ²μ/3} and e^{−δ²μ/2}.
	if got := ChernoffUpper(1, 3); !almost(got, math.Exp(-1), 1e-12) {
		t.Fatalf("upper = %v", got)
	}
	if got := ChernoffLower(0.5, 8); !almost(got, math.Exp(-1), 1e-12) {
		t.Fatalf("lower = %v", got)
	}
	// Monotone in μ.
	if ChernoffUpper(0.5, 100) >= ChernoffUpper(0.5, 10) {
		t.Fatal("upper bound not decreasing in μ")
	}
}

func TestGeometric(t *testing.T) {
	// Pr[X = 0] = p; CDF telescopes.
	if !almost(GeometricPMF(0.25, 0), 0.25, 1e-12) {
		t.Fatal("pmf(0)")
	}
	sum := 0.0
	for k := 0; k <= 50; k++ {
		sum += GeometricPMF(0.3, k)
	}
	if !almost(sum, GeometricCDF(0.3, 50), 1e-9) {
		t.Fatalf("pmf sum %v != cdf %v", sum, GeometricCDF(0.3, 50))
	}
	if GeometricCDF(0.3, -1) != 0 {
		t.Fatal("cdf(-1)")
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("CI [%v, %v] does not bracket 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Fatalf("CI [%v, %v] implausibly wide for n=100", lo, hi)
	}
	// Extreme counts stay within [0, 1].
	lo, hi = WilsonCI(0, 10)
	if lo != 0 || hi <= 0 {
		t.Fatalf("CI for 0/10 = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonCI(10, 10)
	if hi != 1 || lo >= 1 {
		t.Fatalf("CI for 10/10 = [%v, %v]", lo, hi)
	}
}

func TestSurvivorEnvelope(t *testing.T) {
	if !almost(SurvivorEnvelope(2), 0.5, 1e-12) {
		t.Fatal("envelope(2)")
	}
	if !almost(SurvivorEnvelope(5), 1.0/16, 1e-12) {
		t.Fatal("envelope(5)")
	}
}
