package stats

import (
	"fmt"
	"math"
)

// ChernoffUpper is Lemma 1, form (1) of the paper: for independent Poisson
// trials with sum mean μ and 0 ≤ δ ≤ 1,
// Pr[X ≥ (1+δ)μ] ≤ e^{−δ²μ/3}.
func ChernoffUpper(delta, mu float64) float64 {
	if delta < 0 || delta > 1 {
		panic(fmt.Sprintf("stats: Chernoff upper form needs 0 <= δ <= 1, got %v", delta))
	}
	return math.Exp(-delta * delta * mu / 3)
}

// ChernoffLower is Lemma 1, form (2): for 0 < δ < 1,
// Pr[X ≤ (1−δ)μ] ≤ e^{−δ²μ/2}.
func ChernoffLower(delta, mu float64) float64 {
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("stats: Chernoff lower form needs 0 < δ < 1, got %v", delta))
	}
	return math.Exp(-delta * delta * mu / 2)
}

// GeometricPMF returns Pr[X = k] for the number of failures k before the
// first success of a Bernoulli(p) sequence.
func GeometricPMF(p float64, k int) float64 {
	if p <= 0 || p > 1 || k < 0 {
		panic("stats: bad geometric arguments")
	}
	return math.Pow(1-p, float64(k)) * p
}

// GeometricCDF returns Pr[X ≤ k] for the same distribution.
func GeometricCDF(p float64, k int) float64 {
	if p <= 0 || p > 1 {
		panic("stats: bad geometric arguments")
	}
	if k < 0 {
		return 0
	}
	return 1 - math.Pow(1-p, float64(k+1))
}

// WilsonCI returns the Wilson score 95% confidence interval for a binomial
// proportion with the given successes out of trials. It panics on invalid
// counts.
func WilsonCI(successes, trials int) (lo, hi float64) {
	if trials <= 0 || successes < 0 || successes > trials {
		panic(fmt.Sprintf("stats: bad binomial counts %d/%d", successes, trials))
	}
	const z = 1.96
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	return math.Max(0, center-half), math.Min(1, center+half)
}

// SurvivorEnvelope returns the paper's Lemma 7 envelope 2^{1−i} on the
// probability that exactly i ≥ 2 leaders survive QuickElimination.
func SurvivorEnvelope(i int) float64 {
	if i < 2 {
		panic("stats: survivor envelope defined for i >= 2")
	}
	return math.Pow(2, float64(1-i))
}
