package stats

import (
	"math"
	"sort"
)

// KS is the result of a Kolmogorov–Smirnov test.
type KS struct {
	Stat float64 // the D statistic
	P    float64 // asymptotic p-value
}

// KSOneSample tests a sample against a reference CDF. It panics on an
// empty sample.
func KSOneSample(sample []float64, cdf func(float64) float64) KS {
	if len(sample) == 0 {
		panic("stats: empty sample")
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	d := 0.0
	for i, x := range xs {
		f := cdf(x)
		d = math.Max(d, math.Abs(f-float64(i)/n))
		d = math.Max(d, math.Abs(float64(i+1)/n-f))
	}
	return KS{Stat: d, P: ksPValue(d, len(xs))}
}

// KSTwoSample tests whether two samples come from the same distribution.
// It panics if either sample is empty.
func KSTwoSample(a, b []float64) KS {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: empty sample")
	}
	xs := append([]float64(nil), a...)
	ys := append([]float64(nil), b...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	var i, j int
	d := 0.0
	for i < len(xs) && j < len(ys) {
		if xs[i] <= ys[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(xs)) - float64(j)/float64(len(ys)))
		d = math.Max(d, diff)
	}
	ne := float64(len(xs)) * float64(len(ys)) / float64(len(xs)+len(ys))
	return KS{Stat: d, P: kolmogorovQ((math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d)}
}

func ksPValue(d float64, n int) float64 {
	sn := math.Sqrt(float64(n))
	return kolmogorovQ((sn + 0.12 + 0.11/sn) * d)
}

// kolmogorovQ is the survival function of the Kolmogorov distribution,
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	return math.Min(1, math.Max(0, p))
}
