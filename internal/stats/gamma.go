package stats

import "math"

// GammaP returns the regularized lower incomplete gamma function P(a, x),
// and GammaQ its complement Q(a, x) = 1 − P(a, x). They follow the classic
// series/continued-fraction split (Numerical Recipes §6.2): the series
// converges fast for x < a+1, the Lentz continued fraction elsewhere.
// Both panic for a ≤ 0 or x < 0.
func GammaP(a, x float64) float64 {
	checkGammaArgs(a, x)
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function Q(a, x).
func GammaQ(a, x float64) float64 {
	checkGammaArgs(a, x)
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

func checkGammaArgs(a, x float64) {
	if a <= 0 {
		panic("stats: incomplete gamma needs a > 0")
	}
	if x < 0 {
		panic("stats: incomplete gamma needs x >= 0")
	}
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
