// Package stats provides the statistical machinery the experiment harness
// uses to test the paper's quantitative claims rather than eyeball them:
// summary statistics with confidence intervals, least-squares fits for
// growth-shape checks, chi-square and Kolmogorov–Smirnov goodness-of-fit
// tests, binomial confidence intervals, and calculators for the Chernoff
// bounds of the paper's Lemma 1 and the geometric distribution of its
// lottery analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual description of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ± %.2g (median %.4g, range [%.4g, %.4g])",
		s.N, s.Mean, s.SEM(), s.Median, s.Min, s.Max)
}

// SEM returns the standard error of the mean.
func (s Summary) SEM() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Std / math.Sqrt(float64(s.N))
}

// CI95 returns the normal-approximation 95% confidence interval for the
// mean.
func (s Summary) CI95() (lo, hi float64) {
	d := 1.96 * s.SEM()
	return s.Mean - d, s.Mean + d
}

// Mean returns the arithmetic mean. It panics on an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It does not modify xs and panics
// on an empty sample or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
