package stats

import (
	"fmt"
	"math"
)

// Fit is an ordinary least squares line y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// String renders the fit compactly.
func (f Fit) String() string {
	return fmt.Sprintf("y = %.4g·x %+.4g (R² = %.4f)", f.Slope, f.Intercept, f.R2)
}

// LinearFit computes the least-squares line through (xs[i], ys[i]). It
// panics unless len(xs) == len(ys) ≥ 2.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		panic("stats: need at least two points to fit a line")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: degenerate fit (all x equal)")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // perfectly flat data, perfectly fit
	} else {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit
}

// FitLogX fits y = a·lg(x) + b, the shape of every O(log n) time bound in
// the paper: slope a is the "parallel time per doubling of n".
func FitLogX(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		lx[i] = math.Log2(x)
	}
	return LinearFit(lx, ys)
}

// PowerFit fits y = c·x^Exponent by least squares in log-log space and
// reports the exponent (Slope of the log-log line). Growth-shape checks
// use it to distinguish Θ(n) from Θ(log n) scaling: linear data yields an
// exponent near 1, logarithmic data an exponent near 0.
func PowerFit(xs, ys []float64) Fit {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = math.Log2(xs[i])
		ly[i] = math.Log2(ys[i])
	}
	return LinearFit(lx, ly)
}
