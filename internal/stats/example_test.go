package stats_test

import (
	"fmt"

	"popproto/internal/stats"
)

// ExampleSummarize describes a sample the way the experiment reports do.
func ExampleSummarize() {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("mean %.1f, median %.1f, range [%.0f, %.0f]\n",
		s.Mean, s.Median, s.Min, s.Max)

	// Output:
	// mean 5.0, median 4.5, range [2, 9]
}

// ExampleFitLogX recovers the coefficients of a y = a·lg x + b law — the
// shape of every O(log n) bound in the paper.
func ExampleFitLogX() {
	xs := []float64{256, 1024, 4096, 16384}
	ys := []float64{49, 61, 73, 85} // 6·lg x + 1
	fit := stats.FitLogX(xs, ys)
	fmt.Printf("a = %.1f, b = %.1f, R² = %.3f\n", fit.Slope, fit.Intercept, fit.R2)

	// Output:
	// a = 6.0, b = 1.0, R² = 1.000
}

// ExamplePowerFit distinguishes linear from logarithmic growth by the
// log-log exponent.
func ExamplePowerFit() {
	ns := []float64{256, 512, 1024, 2048}
	linear := []float64{179, 358, 717, 1434}
	fmt.Printf("linear data exponent: %.2f\n", stats.PowerFit(ns, linear).Slope)

	// Output:
	// linear data exponent: 1.00
}

// ExampleChiSquareGOF tests a coin-flip tally for fairness.
func ExampleChiSquareGOF() {
	observed := []float64{5032, 4968}
	expected := []float64{5000, 5000}
	c := stats.ChiSquareGOF(observed, expected)
	fmt.Printf("fair at 1%%: %v\n", c.P > 0.01)

	// Output:
	// fair at 1%: true
}

// ExampleWilsonCI brackets an empirical probability, as the Lemma 7
// experiment does for the survivor envelope.
func ExampleWilsonCI() {
	lo, hi := stats.WilsonCI(240, 1000) // 24% observed
	fmt.Printf("CI width below 6 points: %v, brackets 0.24: %v\n",
		hi-lo < 0.06, lo < 0.24 && 0.24 < hi)

	// Output:
	// CI width below 6 points: true, brackets 0.24: true
}

// ExampleSurvivorEnvelope prints the Lemma 7 envelope.
func ExampleSurvivorEnvelope() {
	for i := 2; i <= 4; i++ {
		fmt.Printf("Pr[%d survivors] <= %.3f\n", i, stats.SurvivorEnvelope(i))
	}

	// Output:
	// Pr[2 survivors] <= 0.500
	// Pr[3 survivors] <= 0.250
	// Pr[4 survivors] <= 0.125
}
