package stats

import "fmt"

// ChiSquare is the result of a chi-square goodness-of-fit test.
type ChiSquare struct {
	Stat float64
	DF   int
	P    float64 // upper-tail p-value
}

// String renders the test result.
func (c ChiSquare) String() string {
	return fmt.Sprintf("χ² = %.3f (df %d, p = %.4f)", c.Stat, c.DF, c.P)
}

// ChiSquareGOF tests observed counts against expected counts. Cells with
// expected count zero must have observed count zero and are skipped (with
// a panic if violated). The p-value uses the regularized upper incomplete
// gamma Q(df/2, stat/2). It panics on mismatched or too-short inputs.
func ChiSquareGOF(observed, expected []float64) ChiSquare {
	if len(observed) != len(expected) {
		panic("stats: mismatched chi-square inputs")
	}
	cells := 0
	stat := 0.0
	for i := range observed {
		if expected[i] == 0 {
			if observed[i] != 0 {
				panic(fmt.Sprintf("stats: observed %v in zero-expectation cell %d", observed[i], i))
			}
			continue
		}
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
		cells++
	}
	if cells < 2 {
		panic("stats: chi-square needs at least two non-empty cells")
	}
	df := cells - 1
	return ChiSquare{Stat: stat, DF: df, P: GammaQ(float64(df)/2, stat/2)}
}

// ChiSquareUniform tests observed counts against the uniform distribution
// over the cells.
func ChiSquareUniform(observed []float64) ChiSquare {
	total := 0.0
	for _, o := range observed {
		total += o
	}
	expected := make([]float64, len(observed))
	for i := range expected {
		expected[i] = total / float64(len(observed))
	}
	return ChiSquareGOF(observed, expected)
}
