package stats

import (
	"math"
	"testing"

	"popproto/internal/rng"
)

func TestGammaAgainstClosedForms(t *testing.T) {
	// P(1, x) = 1 − e^{−x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almost(got, want, 1e-10) {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
	// Q(1/2, x) = erfc(√x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 4, 9} {
		want := math.Erfc(math.Sqrt(x))
		if got := GammaQ(0.5, x); !almost(got, want, 1e-10) {
			t.Errorf("GammaQ(0.5, %v) = %v, want %v", x, got, want)
		}
	}
	// Complementarity across the series/continued-fraction boundary.
	for _, a := range []float64{0.3, 1, 2.5, 7, 20} {
		for _, x := range []float64{0.01, a - 0.5, a + 0.5, 3 * a} {
			if x < 0 {
				continue
			}
			if s := GammaP(a, x) + GammaQ(a, x); !almost(s, 1, 1e-9) {
				t.Errorf("P+Q(a=%v, x=%v) = %v", a, x, s)
			}
		}
	}
	// Boundary values.
	if GammaP(2, 0) != 0 || GammaQ(2, 0) != 1 {
		t.Fatal("gamma at x=0")
	}
}

func TestGammaPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"a<=0": func() { GammaP(0, 1) },
		"x<0":  func() { GammaQ(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestChiSquareExactDF2(t *testing.T) {
	// With df = 2 the p-value is exactly e^{−stat/2}.
	obs := []float64{30, 30, 40}
	exp := []float64{33.3333333333, 33.3333333333, 33.3333333333}
	c := ChiSquareGOF(obs, exp)
	if c.DF != 2 {
		t.Fatalf("df = %d", c.DF)
	}
	if !almost(c.P, math.Exp(-c.Stat/2), 1e-9) {
		t.Fatalf("p = %v, want %v", c.P, math.Exp(-c.Stat/2))
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	r := rng.New(3)
	obs := make([]float64, 10)
	for i := 0; i < 100000; i++ {
		obs[r.Intn(10)]++
	}
	c := ChiSquareUniform(obs)
	if c.P < 0.001 {
		t.Fatalf("uniform data rejected: %v", c)
	}
}

func TestChiSquareRejectsSkew(t *testing.T) {
	obs := []float64{500, 100, 100, 100}
	c := ChiSquareUniform(obs)
	if c.P > 1e-6 {
		t.Fatalf("skewed data accepted: %v", c)
	}
}

func TestChiSquareZeroExpectationCells(t *testing.T) {
	c := ChiSquareGOF([]float64{10, 0, 12}, []float64{11, 0, 11})
	if c.DF != 1 {
		t.Fatalf("df = %d, want 1 (zero cell skipped)", c.DF)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("observed count in zero-expectation cell accepted")
		}
	}()
	ChiSquareGOF([]float64{10, 5}, []float64{15, 0})
}

func TestKSUniformSample(t *testing.T) {
	r := rng.New(11)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	uniformCDF := func(x float64) float64 {
		return math.Max(0, math.Min(1, x))
	}
	ks := KSOneSample(xs, uniformCDF)
	if ks.P < 0.001 {
		t.Fatalf("uniform sample rejected against uniform CDF: %+v", ks)
	}
	// The same sample against a wrong CDF (squared) must be rejected.
	ks = KSOneSample(xs, func(x float64) float64 { return uniformCDF(x * x) })
	if ks.P > 1e-6 {
		t.Fatalf("wrong CDF accepted: %+v", ks)
	}
}

func TestKSTwoSample(t *testing.T) {
	r := rng.New(13)
	a := make([]float64, 1500)
	b := make([]float64, 1500)
	c := make([]float64, 1500)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
		c[i] = r.Float64() * r.Float64() // different distribution
	}
	if ks := KSTwoSample(a, b); ks.P < 0.001 {
		t.Fatalf("identically distributed samples rejected: %+v", ks)
	}
	if ks := KSTwoSample(a, c); ks.P > 1e-6 {
		t.Fatalf("differently distributed samples accepted: %+v", ks)
	}
}

func TestKolmogorovQBounds(t *testing.T) {
	if q := kolmogorovQ(0); q != 1 {
		t.Fatalf("Q(0) = %v", q)
	}
	if q := kolmogorovQ(10); q > 1e-12 {
		t.Fatalf("Q(10) = %v", q)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := kolmogorovQ(l)
		if q > prev+1e-12 {
			t.Fatalf("kolmogorovQ not monotone at %v", l)
		}
		prev = q
	}
}
