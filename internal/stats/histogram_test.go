package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 2, 5, 9} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(3) != 0 {
		t.Fatalf("counts: %d, %d", h.Count(1), h.Count(3))
	}
	if h.Count(100) != 2 { // overflow bin (5 and 9)
		t.Fatalf("overflow = %d", h.Count(100))
	}
	if h.Fraction(1) != 2.0/6 {
		t.Fatalf("fraction = %v", h.Fraction(1))
	}
	if h.Count(-1) != 0 {
		t.Fatal("negative lookup not zero")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{2, 4, 6} {
		h.Add(v)
	}
	if got := h.Mean(); got != 4 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramBars(t *testing.T) {
	h := NewHistogram(3)
	h.Add(0)
	h.Add(0)
	h.Add(1)
	h.Add(7)
	out := h.Bars(20)
	if !strings.Contains(out, "≥3") {
		t.Fatalf("overflow row missing:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Fatalf("bars missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d rows, want 4:\n%s", len(lines), out)
	}
}

func TestHistogramEmptyAndPanics(t *testing.T) {
	h := NewHistogram(2)
	if out := h.Bars(10); !strings.Contains(out, "empty") {
		t.Fatalf("empty rendering: %q", out)
	}
	if h.Fraction(0) != 0 {
		t.Fatal("fraction of empty histogram")
	}
	for name, f := range map[string]func(){
		"zero bins": func() { NewHistogram(0) },
		"negative":  func() { NewHistogram(2).Add(-1) },
		"mean":      func() { NewHistogram(2).Mean() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestQuickHistogramConservation: total equals the sum of all bins.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHistogram(8)
		for _, v := range raw {
			h.Add(int(v))
		}
		sum := h.Count(1000) // overflow
		for v := 0; v < 8; v++ {
			sum += h.Count(v)
		}
		return sum == h.Total() && h.Total() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
