package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bin counting histogram over small non-negative
// integers, with an overflow bin. It backs the distribution tables and
// bar charts of the experiment reports (e.g. the Lemma 7 survivor
// distribution).
type Histogram struct {
	counts   []int
	overflow int
	total    int
}

// NewHistogram creates a histogram with bins 0..bins−1 plus an overflow
// bin. It panics for bins < 1.
func NewHistogram(bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	return &Histogram{counts: make([]int, bins)}
}

// Add records one observation. Negative values panic.
func (h *Histogram) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	if v >= len(h.counts) {
		h.overflow++
	} else {
		h.counts[v]++
	}
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Count returns the count of bin v (the overflow bin if v is out of
// range).
func (h *Histogram) Count(v int) int {
	if v < 0 {
		return 0
	}
	if v >= len(h.counts) {
		return h.overflow
	}
	return h.counts[v]
}

// Fraction returns bin v's share of all observations (0 for an empty
// histogram).
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// Mean returns the sample mean, counting the overflow bin at its lower
// edge. It panics on an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		panic("stats: empty histogram")
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	sum += float64(len(h.counts)) * float64(h.overflow)
	return sum / float64(h.total)
}

// Bars renders the histogram as fixed-width text rows: value, count,
// fraction and a proportional bar, one row per bin (overflow last when
// non-empty).
func (h *Histogram) Bars(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := h.overflow
	for _, c := range h.counts {
		maxCount = max(maxCount, c)
	}
	if maxCount == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	row := func(label string, count int) {
		bar := strings.Repeat("█", count*width/maxCount)
		fmt.Fprintf(&b, "%6s %7d %7.4f |%s\n", label, count,
			float64(count)/float64(h.total), bar)
	}
	for v, c := range h.counts {
		row(fmt.Sprint(v), c)
	}
	if h.overflow > 0 {
		row(fmt.Sprintf("≥%d", len(h.counts)), h.overflow)
	}
	return b.String()
}
