package pp_test

import (
	"testing"

	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
)

// TestCloneProducesIdenticalFutures: a clone carries the scheduler
// position, so original and clone evolve identically step for step — on
// every engine.
func TestCloneProducesIdenticalFutures(t *testing.T) {
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: duel, N: 64, Seed: 42}, "clone-futures",
		func(t *testing.T, _ pptest.TestCase[bool], a pp.Runner[bool]) {
			a.RunSteps(500) // advance to a nontrivial prefix
			b := a.CloneRunner()

			for k := 0; k < 2000; k++ {
				a.Step()
				b.Step()
			}
			if a.Steps() != b.Steps() || a.Leaders() != b.Leaders() {
				t.Fatalf("clone diverged: steps %d/%d leaders %d/%d",
					a.Steps(), b.Steps(), a.Leaders(), b.Leaders())
			}
			ca, cb := a.Census(), b.Census()
			if ca[true] != cb[true] || ca[false] != cb[false] {
				t.Fatalf("censuses differ after identical futures: %v vs %v", ca, cb)
			}
			// On the per-agent engine the futures must match agent by
			// agent, not just in aggregate.
			if sa, ok := a.(*pp.Simulator[bool]); ok {
				sb := b.(*pp.Simulator[bool])
				for i := 0; i < sa.N(); i++ {
					if sa.State(i) != sb.State(i) {
						t.Fatalf("agent %d differs after identical futures", i)
					}
				}
			}
		})
}

// TestCloneIsIndependent: mutating the clone leaves the original alone.
func TestCloneIsIndependent(t *testing.T) {
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: duel, N: 16, Seed: 7}, "clone-independent",
		func(t *testing.T, _ pptest.TestCase[bool], a pp.Runner[bool]) {
			b := a.CloneRunner()
			b.RunSteps(1000)
			if a.Steps() != 0 {
				t.Fatalf("original advanced: %d steps", a.Steps())
			}
			if a.Leaders() != 16 {
				t.Fatalf("original census changed: %d leaders", a.Leaders())
			}
		})

	a := pp.NewSimulator[bool](duel, 16, 7)
	b := a.Clone()
	b.SetState(0, false)
	if a.State(0) != true {
		t.Fatal("original agent mutated through the clone")
	}
}

// TestCloneCarriesTracking: the distinct-state tracker is deep-copied.
func TestCloneCarriesTracking(t *testing.T) {
	a := pp.NewSimulator[bool](duel, 8, 7)
	a.TrackStates()
	a.Interact(0, 1)
	b := a.Clone()
	if b.DistinctStates() != a.DistinctStates() {
		t.Fatalf("tracking lost: %d vs %d", b.DistinctStates(), a.DistinctStates())
	}
	// New observations on the clone must not leak back.
	before := a.DistinctStates()
	b.SetState(0, false)
	b.Interact(0, 1)
	if a.DistinctStates() != before {
		t.Fatal("clone observation leaked into the original")
	}
}

// TestCloneWithoutTracking: cloning an untracked simulator stays
// untracked.
func TestCloneWithoutTracking(t *testing.T) {
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: duel, N: 8, Seed: 7}, "clone-untracked",
		func(t *testing.T, _ pptest.TestCase[bool], a pp.Runner[bool]) {
			b := a.CloneRunner()
			if b.DistinctStates() != 0 {
				t.Fatal("clone invented a tracker")
			}
		})
}
