package pp

import "testing"

// TestCloneProducesIdenticalFutures: a clone carries the scheduler
// position, so original and clone evolve identically step for step.
func TestCloneProducesIdenticalFutures(t *testing.T) {
	a := NewSimulator[bool](duel{}, 64, 42)
	a.RunSteps(500) // advance to a nontrivial prefix
	b := a.Clone()

	for k := 0; k < 2000; k++ {
		a.Step()
		b.Step()
	}
	if a.Steps() != b.Steps() || a.Leaders() != b.Leaders() {
		t.Fatalf("clone diverged: steps %d/%d leaders %d/%d",
			a.Steps(), b.Steps(), a.Leaders(), b.Leaders())
	}
	for i := 0; i < a.N(); i++ {
		if a.State(i) != b.State(i) {
			t.Fatalf("agent %d differs after identical futures", i)
		}
	}
}

// TestCloneIsIndependent: mutating the clone leaves the original alone.
func TestCloneIsIndependent(t *testing.T) {
	a := NewSimulator[bool](duel{}, 16, 7)
	b := a.Clone()
	b.RunSteps(1000)
	if a.Steps() != 0 {
		t.Fatalf("original advanced: %d steps", a.Steps())
	}
	if a.Leaders() != 16 {
		t.Fatalf("original census changed: %d leaders", a.Leaders())
	}
	b.SetState(0, false)
	if a.State(0) != true {
		t.Fatal("original agent mutated through the clone")
	}
}

// TestCloneCarriesTracking: the distinct-state tracker is deep-copied.
func TestCloneCarriesTracking(t *testing.T) {
	a := NewSimulator[bool](duel{}, 8, 7)
	a.TrackStates()
	a.Interact(0, 1)
	b := a.Clone()
	if b.DistinctStates() != a.DistinctStates() {
		t.Fatalf("tracking lost: %d vs %d", b.DistinctStates(), a.DistinctStates())
	}
	// New observations on the clone must not leak back.
	before := a.DistinctStates()
	b.SetState(0, false)
	b.Interact(0, 1)
	if a.DistinctStates() != before {
		t.Fatal("clone observation leaked into the original")
	}
}

// TestCloneWithoutTracking: cloning an untracked simulator stays
// untracked.
func TestCloneWithoutTracking(t *testing.T) {
	a := NewSimulator[bool](duel{}, 8, 7)
	b := a.Clone()
	if b.DistinctStates() != 0 {
		t.Fatal("clone invented a tracker")
	}
}
