// Package pp implements the population protocol model of Angluin et al.
// (Section 2 of the reproduced paper): a population of n anonymous agents
// over a complete interaction graph, a deterministic pairwise transition
// function, and a uniformly random scheduler that picks one ordered pair
// (initiator, responder) per step.
//
// The package provides the generic simulation engine used by every protocol
// in this repository: incremental leader accounting, deterministic and
// adversarial schedules for safety testing, state censuses, stabilization
// detection, and a parallel batch runner for expectation estimates.
//
// Time is reported both in interaction steps and in parallel time
// (steps divided by n), matching the paper's convention.
package pp

// Role is an agent's externally visible output under the output function
// π_out of the leader election problem.
type Role uint8

const (
	// Follower is the output F.
	Follower Role = iota
	// Leader is the output L.
	Leader
)

// String returns "L" or "F" as the paper writes outputs.
func (r Role) String() string {
	if r == Leader {
		return "L"
	}
	return "F"
}

// Protocol is a population protocol P(Q, s_init, T, Y, π_out) with state
// set Q represented by the comparable Go type S.
//
// Transition must be a pure deterministic function: all randomness in the
// model comes from the scheduler. Implementations must be safe for
// concurrent use by multiple simulators (in practice: read-only after
// construction).
type Protocol[S comparable] interface {
	// Name identifies the protocol in reports and benchmarks.
	Name() string
	// InitialState returns s_init, the state every agent starts in.
	InitialState() S
	// Transition maps the (initiator, responder) state pair to the pair of
	// successor states, in the same order.
	Transition(initiator, responder S) (S, S)
	// Output is the output function π_out restricted to {L, F}.
	Output(S) Role
}
