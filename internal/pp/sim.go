package pp

import (
	"fmt"

	"popproto/internal/rng"
)

// Simulator executes one population under a protocol. It owns the agent
// state vector, a deterministic random source for the uniform scheduler,
// and incremental counters (steps, leaders, role changes).
//
// A Simulator is not safe for concurrent use; run one per goroutine.
type Simulator[S comparable] struct {
	proto  Protocol[S]
	agents []S
	rand   *rng.Source
	steps  uint64

	leaders     int
	roleChanges uint64

	seen map[S]struct{} // non-nil only when TrackStates was called
}

// NewSimulator creates a population of n agents, all in the protocol's
// initial state, with the scheduler seeded by seed. It panics if n < 1.
func NewSimulator[S comparable](proto Protocol[S], n int, seed uint64) *Simulator[S] {
	if n < 1 {
		panic(fmt.Sprintf("pp: population size %d < 1", n))
	}
	s := &Simulator[S]{
		proto:  proto,
		agents: make([]S, n),
		rand:   rng.New(seed),
	}
	init := proto.InitialState()
	for i := range s.agents {
		s.agents[i] = init
	}
	if proto.Output(init) == Leader {
		s.leaders = n
	}
	return s
}

// N returns the population size.
func (s *Simulator[S]) N() int { return len(s.agents) }

// Steps returns the number of interactions executed so far.
func (s *Simulator[S]) Steps() uint64 { return s.steps }

// ParallelTime returns steps divided by n, the paper's time measure.
func (s *Simulator[S]) ParallelTime() float64 {
	return float64(s.steps) / float64(len(s.agents))
}

// Leaders returns the current number of agents whose output is Leader.
func (s *Simulator[S]) Leaders() int { return s.leaders }

// RoleChanges returns the cumulative number of agent output changes
// (L→F or F→L) observed since construction. A configuration sequence is
// stable exactly while this counter does not move.
func (s *Simulator[S]) RoleChanges() uint64 { return s.roleChanges }

// State returns agent i's current state.
func (s *Simulator[S]) State(i int) S { return s.agents[i] }

// SetState overwrites agent i's state, keeping the leader census coherent.
// It is intended for constructing specific configurations in tests and
// experiments (e.g. the Bstart configurations of Definition 3).
func (s *Simulator[S]) SetState(i int, st S) {
	old := s.proto.Output(s.agents[i])
	now := s.proto.Output(st)
	if old == Leader && now != Leader {
		s.leaders--
	} else if old != Leader && now == Leader {
		s.leaders++
	}
	s.agents[i] = st
}

// ForEach calls f for every agent id and state, in agent order.
func (s *Simulator[S]) ForEach(f func(id int, state S)) {
	for i, st := range s.agents {
		f(i, st)
	}
}

// TrackStates enables recording of every distinct agent state ever observed
// (including initial states). It costs two map insertions per interaction
// and is used by the Lemma 3 / Table 3 state-count experiments.
func (s *Simulator[S]) TrackStates() {
	if s.seen != nil {
		return
	}
	s.seen = make(map[S]struct{}, 1024)
	for _, st := range s.agents {
		s.seen[st] = struct{}{}
	}
}

// DistinctStates returns the number of distinct agent states observed since
// TrackStates was enabled, or 0 if tracking is disabled.
func (s *Simulator[S]) DistinctStates() int { return len(s.seen) }

// Interact applies one interaction between initiator i and responder j and
// updates the censuses. It does not advance the step counter; Step and
// RunSchedule do. It panics if i == j or either index is out of range.
func (s *Simulator[S]) Interact(i, j int) {
	if i == j {
		panic(fmt.Sprintf("pp: self-interaction of agent %d", i))
	}
	p, q := s.agents[i], s.agents[j]
	p2, q2 := s.proto.Transition(p, q)
	if p2 != p {
		s.applyChange(i, p, p2)
	}
	if q2 != q {
		s.applyChange(j, q, q2)
	}
}

func (s *Simulator[S]) applyChange(id int, old, now S) {
	ro, rn := s.proto.Output(old), s.proto.Output(now)
	if ro != rn {
		s.roleChanges++
		if rn == Leader {
			s.leaders++
		} else {
			s.leaders--
		}
	}
	s.agents[id] = now
	if s.seen != nil {
		s.seen[now] = struct{}{}
	}
}

// Step executes one uniformly random interaction. It panics if n < 2
// (a single agent can never interact).
func (s *Simulator[S]) Step() {
	i, j := s.rand.Pair(len(s.agents))
	s.Interact(i, j)
	s.steps++
}

// RunSteps executes k uniformly random interactions.
func (s *Simulator[S]) RunSteps(k uint64) {
	for ; k > 0; k-- {
		s.Step()
	}
}

// RunUntilLeaders runs random interactions until at most target leaders
// remain or maxSteps total interactions have been executed. It returns the
// total step count at return and whether the target was reached.
//
// For every protocol in this repository the leader count is monotone
// non-increasing and followers never regain leadership, so reaching one
// leader is exactly the stabilization condition of the leader election
// problem (the configuration is in S_P of Section 2).
func (s *Simulator[S]) RunUntilLeaders(target int, maxSteps uint64) (steps uint64, ok bool) {
	if len(s.agents) == 1 {
		return s.steps, s.leaders <= target
	}
	for s.leaders > target {
		if s.steps >= maxSteps {
			return s.steps, false
		}
		s.Step()
	}
	return s.steps, true
}

// VerifyStable runs extra random interactions and reports whether any
// agent's output changed during them. A true result is evidence (not proof)
// that the configuration reached is in the safe set S_P.
func (s *Simulator[S]) VerifyStable(extra uint64) bool {
	if len(s.agents) == 1 {
		return true
	}
	before := s.roleChanges
	s.RunSteps(extra)
	return s.roleChanges == before
}

// Clone returns an independent deep copy of the simulator, including the
// scheduler position: the original and the clone produce identical
// futures until their schedules diverge. Cloning is how experiments
// branch several continuations off one common prefix.
func (s *Simulator[S]) Clone() *Simulator[S] {
	c := &Simulator[S]{
		proto:       s.proto,
		agents:      append([]S(nil), s.agents...),
		rand:        s.rand.Clone(),
		steps:       s.steps,
		leaders:     s.leaders,
		roleChanges: s.roleChanges,
	}
	if s.seen != nil {
		c.seen = make(map[S]struct{}, len(s.seen))
		for k := range s.seen {
			c.seen[k] = struct{}{}
		}
	}
	return c
}

// CloneRunner implements Runner.
func (s *Simulator[S]) CloneRunner() Runner[S] { return s.Clone() }

// Census returns the multiset of current agent states.
func (s *Simulator[S]) Census() map[S]int {
	c := make(map[S]int)
	for _, st := range s.agents {
		c[st]++
	}
	return c
}

// CensusBy aggregates the current configuration of sim by an arbitrary
// classifier, e.g. the paper's groups V_X, V_B, V_A∩V_1, …. It works on
// either engine.
func CensusBy[S comparable, K comparable](sim Runner[S], classify func(S) K) map[K]int {
	c := make(map[K]int)
	sim.ForEach(func(_ int, st S) {
		c[classify(st)]++
	})
	return c
}
