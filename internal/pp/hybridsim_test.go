package pp_test

import (
	"testing"

	"popproto/internal/pp"
)

// TestHybridModeOccupancy pins the controller's telemetry invariants: the
// per-mode step counters partition the total step count exactly, and the
// handover counter counts mode switches.
func TestHybridModeOccupancy(t *testing.T) {
	h := pp.NewHybridSimulator[bool](duel, 4096, 7)
	if st := h.Stats(); st.RoundSteps != 0 || st.InteractSteps != 0 || st.SkipSteps != 0 || st.Handovers != 0 {
		t.Fatalf("fresh simulator has nonzero occupancy: %+v", st)
	}
	h.RunUntilLeaders(1, 50_000_000)
	st := h.Stats()
	if got := st.RoundSteps + st.InteractSteps + st.SkipSteps; got != st.Steps {
		t.Fatalf("mode steps %d+%d+%d = %d do not partition Steps = %d",
			st.RoundSteps, st.InteractSteps, st.SkipSteps, got, st.Steps)
	}
	if st.Steps == 0 {
		t.Fatal("run executed no interactions")
	}
}

// TestHybridHandoverCount forces a known mode schedule and checks the
// handover counter against it: interact → round → round → interact is
// exactly two switches, and occupancy lands in the modes that executed.
func TestHybridHandoverCount(t *testing.T) {
	h := pp.NewHybridSimulator[bool](duel, 4096, 7)
	modes := []pp.HybridMode{pp.ModeInteract, pp.ModeRound, pp.ModeRound, pp.ModeInteract}
	i := 0
	h.TuneHandover(func(pp.HybridStats) pp.HybridMode {
		m := modes[i%len(modes)]
		i++
		return m
	})
	for range modes {
		h.Step() // each Step is one advance (rounds may cover many steps)
	}
	st := h.Stats()
	// The simulator starts in ModeInteract, so the schedule switches at
	// advance 2 (interact→round) and advance 4 (round→interact).
	if st.Handovers != 2 {
		t.Fatalf("Handovers = %d, want 2", st.Handovers)
	}
	if st.RoundSteps == 0 || st.InteractSteps == 0 {
		t.Fatalf("expected both round and interact occupancy, got %+v", st)
	}
	if st.SkipSteps != 0 {
		t.Fatalf("SkipSteps = %d, want 0 (skip never scheduled)", st.SkipSteps)
	}
	if got := st.RoundSteps + st.InteractSteps; got != st.Steps {
		t.Fatalf("occupancy %d does not partition Steps = %d", got, st.Steps)
	}
}

// TestHybridTelemetryClone checks Clone carries the occupancy counters so
// clone futures keep partitioning their step counts.
func TestHybridTelemetryClone(t *testing.T) {
	h := pp.NewHybridSimulator[bool](duel, 2048, 3)
	h.RunSteps(10_000)
	c := h.Clone()
	a, b := h.Stats(), c.Stats()
	if a.RoundSteps != b.RoundSteps || a.InteractSteps != b.InteractSteps ||
		a.SkipSteps != b.SkipSteps || a.Handovers != b.Handovers {
		t.Fatalf("clone telemetry diverged: %+v vs %+v", a, b)
	}
	c.RunSteps(10_000)
	st := c.Stats()
	if got := st.RoundSteps + st.InteractSteps + st.SkipSteps; got != st.Steps {
		t.Fatalf("clone occupancy %d does not partition Steps = %d", got, st.Steps)
	}
}
