package pp_test

import (
	"testing"

	"popproto/internal/pp"
)

// Allocation-regression tests: the round engines keep per-simulator arenas
// for the slot/assignment buffers and share one dense transition memo
// between round mode and the census core's fallback paths, so a warmed-up
// simulator's hot paths — round assignment, slot sampling, matching,
// geometric skipping — must run allocation-free. A regression here silently
// rebuilds the 13 MB/op profile the dense-memo sharing removed.

// steadyStateAllocs runs warm once to populate arenas and memos, then
// reports the average allocations of rounds invocations of hot.
func steadyStateAllocs(warm, hot func()) float64 {
	warm()
	return testing.AllocsPerRun(20, hot)
}

func TestBatchRoundAllocFree(t *testing.T) {
	const n = 1 << 16
	sim := pp.NewBatchSimulator[tickerState](tickerDuel{}, n, 17)
	avg := steadyStateAllocs(
		func() { sim.RunSteps(8 * n) },
		func() { sim.RunSteps(n) },
	)
	if avg > 0.5 {
		t.Fatalf("batch round hot path allocates: %.2f allocs per RunSteps(n)", avg)
	}
}

func TestHybridModesAllocFree(t *testing.T) {
	const n = 1 << 16
	for _, mode := range []pp.HybridMode{pp.ModeRound, pp.ModeInteract, pp.ModeSkip} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sim := pp.NewHybridSimulator[tickerState](tickerDuel{}, n, 19)
			sim.TuneRounds(2, 1<<30)
			sim.TuneHandover(func(pp.HybridStats) pp.HybridMode { return mode })
			// Skip mode on the reaction-dense ticker census advances one
			// interaction per event; keep its chunks affordable.
			chunk := uint64(n)
			if mode == pp.ModeSkip {
				chunk = 2048
			}
			avg := steadyStateAllocs(
				func() { sim.RunSteps(8 * chunk) },
				func() { sim.RunSteps(chunk) },
			)
			if avg > 0.5 {
				t.Fatalf("hybrid %s hot path allocates: %.2f allocs per RunSteps(%d)",
					mode, avg, chunk)
			}
		})
	}
}

// TestHybridDefaultPolicyAllocFree drives the default payoff controller
// (mode churn included) and asserts the handover machinery itself does not
// allocate once arenas are warm.
func TestHybridDefaultPolicyAllocFree(t *testing.T) {
	const n = 1 << 16
	sim := pp.NewHybridSimulator[tickerState](tickerDuel{}, n, 23)
	avg := steadyStateAllocs(
		func() { sim.RunSteps(8 * n) },
		func() { sim.RunSteps(n) },
	)
	if avg > 0.5 {
		t.Fatalf("hybrid default controller allocates: %.2f allocs per RunSteps(n)", avg)
	}
}
