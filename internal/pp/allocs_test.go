package pp_test

import (
	"testing"

	"popproto/internal/pp"
)

// Allocation-regression tests: the round engines keep per-simulator arenas
// for the slot/assignment buffers and share one dense transition memo
// between round mode and the census core's fallback paths, so a warmed-up
// simulator's hot paths — round assignment, slot sampling, matching,
// geometric skipping — must run allocation-free. A regression here silently
// rebuilds the 13 MB/op profile the dense-memo sharing removed.

// steadyStateAllocs runs warm once to populate arenas and memos, then
// reports the average allocations of rounds invocations of hot.
func steadyStateAllocs(warm, hot func()) float64 {
	warm()
	return testing.AllocsPerRun(20, hot)
}

func TestBatchRoundAllocFree(t *testing.T) {
	const n = 1 << 16
	sim := pp.NewBatchSimulator[tickerState](tickerDuel{}, n, 17)
	avg := steadyStateAllocs(
		func() { sim.RunSteps(8 * n) },
		func() { sim.RunSteps(n) },
	)
	if avg > 0.5 {
		t.Fatalf("batch round hot path allocates: %.2f allocs per RunSteps(n)", avg)
	}
}

func TestHybridModesAllocFree(t *testing.T) {
	const n = 1 << 16
	for _, mode := range []pp.HybridMode{pp.ModeRound, pp.ModeInteract, pp.ModeSkip} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sim := pp.NewHybridSimulator[tickerState](tickerDuel{}, n, 19)
			sim.TuneRounds(2, 1<<30)
			// Saturate the ticker's 2·tickerMod-state space with round
			// mode first: steady state means no new states, and the
			// reactive-pair index (unlike the old flat enumeration
			// buffers) pays an amortized insertion whenever a
			// never-before-live state joins the census.
			sim.RunSteps(4 * n)
			sim.TuneHandover(func(pp.HybridStats) pp.HybridMode { return mode })
			// Skip mode on the reaction-dense ticker census advances one
			// interaction per event; keep its chunks affordable but warm
			// long enough that the last rare (leader, tick) states are
			// discovered before measurement — each first sighting costs a
			// one-time state-table append plus index insertion.
			chunk, warm := uint64(n), uint64(8*n)
			if mode == pp.ModeSkip {
				chunk, warm = 2048, 64*2048
			}
			avg := steadyStateAllocs(
				func() { sim.RunSteps(warm) },
				func() { sim.RunSteps(chunk) },
			)
			if avg > 0.5 {
				t.Fatalf("hybrid %s hot path allocates: %.2f allocs per RunSteps(%d)",
					mode, avg, chunk)
			}
		})
	}
}

// spreadState/spreadCycle is a diagonal-reactive protocol whose census
// settles on spreadStates live states — wider than the 384-state cap the
// skip path had before the reactive-pair index — while staying no-op
// dominated: only equal-state pairs react, so wc = Σ cᵢ(cᵢ−1) ≪ n(n−1)
// once the census has spread, and the default controller holds the census
// in index-maintained skip mode.
type spreadState uint16

const spreadStates = 512

type spreadCycle struct{}

func (spreadCycle) Name() string               { return "spread-cycle" }
func (spreadCycle) InitialState() spreadState  { return 0 }
func (spreadCycle) Output(spreadState) pp.Role { return pp.Follower }

func (spreadCycle) Transition(a, b spreadState) (spreadState, spreadState) {
	if a != b {
		return a, b
	}
	return (a + 1) % spreadStates, (2*a + 1) % spreadStates
}

// TestSkipIndexAllocFree pins the tentpole's allocation discipline: the
// payoff-driven skip path on a census far wider than the old live-state
// cap — geometric events, incremental index maintenance, and two-level
// pair selection — runs allocation-free once the live support is
// saturated.
func TestSkipIndexAllocFree(t *testing.T) {
	const n = 1 << 12
	sim := pp.NewHybridSimulator[spreadState](spreadCycle{}, n, 29)
	avg := steadyStateAllocs(
		func() { sim.RunSteps(1 << 22) },
		func() { sim.RunSteps(1 << 14) },
	)
	st := sim.Stats()
	if st.Live <= 384 {
		t.Fatalf("census spread to only %d live states; want > 384 to exercise the uncapped skip path", st.Live)
	}
	if st.SkipSteps == 0 {
		t.Fatalf("controller never skipped: %+v", st)
	}
	if avg > 0.5 {
		t.Fatalf("index-maintained skip path allocates: %.2f allocs per RunSteps", avg)
	}
}

// TestHybridDefaultPolicyAllocFree drives the default payoff controller
// (mode churn included) and asserts the handover machinery itself does not
// allocate once arenas are warm.
func TestHybridDefaultPolicyAllocFree(t *testing.T) {
	const n = 1 << 16
	sim := pp.NewHybridSimulator[tickerState](tickerDuel{}, n, 23)
	avg := steadyStateAllocs(
		func() { sim.RunSteps(8 * n) },
		func() { sim.RunSteps(n) },
	)
	if avg > 0.5 {
		t.Fatalf("hybrid default controller allocates: %.2f allocs per RunSteps(n)", avg)
	}
}
