package pp_test

import (
	"strings"
	"testing"

	"popproto/internal/pp"
)

// TestParseEngineRoundTrip: every engine's String spelling parses back to
// itself.
func TestParseEngineRoundTrip(t *testing.T) {
	for _, e := range pp.Engines() {
		got, err := pp.ParseEngine(e.String())
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", e.String(), err)
		}
		if got != e {
			t.Errorf("ParseEngine(%q) = %v, want %v", e.String(), got, e)
		}
	}
}

// TestParseEngineErrorListsValidNames: the error for an unknown engine
// must enumerate every valid spelling.
func TestParseEngineErrorListsValidNames(t *testing.T) {
	_, err := pp.ParseEngine("quantum")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"quantum"`) {
		t.Errorf("error %q does not name the rejected input", msg)
	}
	for _, e := range pp.Engines() {
		if !strings.Contains(msg, e.String()) {
			t.Errorf("error %q does not list valid engine %q", msg, e.String())
		}
	}
}
