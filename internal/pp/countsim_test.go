package pp_test

import (
	"testing"

	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
)

// censusTotal sums a census; it must always equal n.
func censusTotal[S comparable](c map[S]int) int {
	total := 0
	for _, v := range c {
		total += v
	}
	return total
}

func TestCountSimulatorConservesPopulation(t *testing.T) {
	sim := pp.NewCountSimulator[bool](duel, 500, 3)
	for k := 0; k < 50; k++ {
		sim.RunSteps(100)
		if got := censusTotal(sim.Census()); got != 500 {
			t.Fatalf("census total = %d after %d steps, want 500", got, sim.Steps())
		}
		if sim.Count(true) != sim.Leaders() {
			t.Fatalf("leader count %d != census count %d", sim.Leaders(), sim.Count(true))
		}
	}
}

func TestCountSimulatorElects(t *testing.T) {
	tc := pptest.TestCase[bool]{Proto: duel, N: 2048, Seed: 11, Engine: pp.EngineCount}
	sim := tc.NewRunner()
	steps := pptest.ElectOne(t, tc, sim)
	// The duel needs at least n−1 eliminations, each one interaction.
	if steps < 2047 {
		t.Fatalf("stabilized after only %d steps; %d eliminations are required", steps, 2047)
	}
	if !sim.VerifyStable(100_000) {
		t.Fatal("single-leader configuration reported unstable")
	}
}

// TestCountSimulatorBatchedEndgame forces the batched no-op skipping path:
// the duel endgame with few leaders among many agents is no-op dominated,
// so stabilization within a modest wall-clock budget is only possible if
// the engine actually skips census-preserving interactions. The step
// counter must nevertheless reflect the Θ(n²) skipped interactions.
func TestCountSimulatorBatchedEndgame(t *testing.T) {
	const n = 1 << 16
	sim := pp.NewCountSimulator[bool](duel, n, 5)
	steps, ok := sim.RunUntilLeaders(1, 1<<62)
	if !ok || sim.Leaders() != 1 {
		t.Fatalf("did not stabilize: %d leaders after %d steps", sim.Leaders(), steps)
	}
	// E[steps] = (n−1)² ≈ 4.3e9; even a generous lower bound certifies
	// that skipped interactions were counted, not dropped.
	if steps < uint64(n)*uint64(n)/8 {
		t.Fatalf("step counter %d implausibly small for n=%d (skips not counted?)", steps, n)
	}
	if sim.LiveStates() != 2 {
		t.Fatalf("live states = %d, want 2", sim.LiveStates())
	}
}

func TestCountSimulatorFrozenRunsBudget(t *testing.T) {
	sim := pp.NewCountSimulator[int](frozen, 32, 1)
	sim.RunSteps(10_000_000)
	if sim.Steps() != 10_000_000 {
		t.Fatalf("steps = %d, want 10000000", sim.Steps())
	}
	if !sim.VerifyStable(1_000_000) {
		t.Fatal("frozen population reported unstable")
	}
	if _, ok := sim.RunUntilLeaders(-1, 20_000_000); ok {
		t.Fatal("frozen population cannot reach -1 leaders")
	}
	if sim.Steps() != 20_000_000 {
		t.Fatalf("budget not honored: %d steps", sim.Steps())
	}
}

func TestCountSimulatorStepGranularity(t *testing.T) {
	sim := pp.NewCountSimulator[bool](duel, 64, 9)
	for k := uint64(1); k <= 200; k++ {
		sim.Step()
		if sim.Steps() != k {
			t.Fatalf("after %d Step calls the counter reads %d", k, sim.Steps())
		}
	}
}

func TestCountSimulatorPanicsOnSingletonStep(t *testing.T) {
	sim := pp.NewCountSimulator[bool](duel, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Step on a population of 1 did not panic")
		}
	}()
	sim.Step()
}

func TestCountSimulatorTrackStates(t *testing.T) {
	sim := pp.NewCountSimulator[bool](duel, 16, 2)
	if sim.DistinctStates() != 0 {
		t.Fatal("tracking should be off by default")
	}
	sim.TrackStates()
	if sim.DistinctStates() != 1 {
		t.Fatalf("distinct initial states = %d, want 1", sim.DistinctStates())
	}
	sim.RunUntilLeaders(1, 1<<40)
	if sim.DistinctStates() != 2 {
		t.Fatalf("distinct states after election = %d, want 2", sim.DistinctStates())
	}
}

func TestCountSimulatorForEachEmitsEveryAgent(t *testing.T) {
	sim := pp.NewCountSimulator[bool](duel, 100, 4)
	sim.RunSteps(500)
	ids := make(map[int]bool)
	leaders := 0
	sim.ForEach(func(id int, s bool) {
		ids[id] = true
		if s {
			leaders++
		}
	})
	if len(ids) != 100 {
		t.Fatalf("ForEach emitted %d distinct ids, want 100", len(ids))
	}
	if leaders != sim.Leaders() {
		t.Fatalf("ForEach saw %d leaders, census says %d", leaders, sim.Leaders())
	}
}

// TestCountSimulatorCloneSharesFuture: the clone carries the scheduler and
// the batching mode, so both produce the identical stream.
func TestCountSimulatorCloneSharesFuture(t *testing.T) {
	a := pp.NewCountSimulator[bool](duel, 4096, 21)
	a.RunSteps(20_000) // deep enough that batching has engaged
	b := a.Clone()
	sa, okA := a.RunUntilLeaders(1, 1<<62)
	sb, okB := b.RunUntilLeaders(1, 1<<62)
	if sa != sb || okA != okB {
		t.Fatalf("clone diverged: (%d,%v) vs (%d,%v)", sa, okA, sb, okB)
	}
}
