package pp

import "fmt"

// Tuning constants of the hybrid engine's mode controller. Like the other
// engines' constants they affect only wall-clock cost, never the sampled
// distribution: every mode realizes the exact uniform-scheduler Markov
// chain, so any deterministic mode policy is distribution-preserving.
const (
	// hybridShortSkipStreak is the number of consecutive short geometric
	// skips (shorter than the skip-event's break-even length, see
	// skipBreakEven) after which the controller hands the census back to
	// rounds (or per-interaction sampling): short skips mean the census
	// has turned reaction-dense again and paying an index walk per event
	// no longer beats aggregate rounds.
	hybridShortSkipStreak = 2
)

// HybridMode identifies one of the three execution modes the hybrid
// engine hands the census between. All modes sample the exact chain; they
// differ only in how many interactions one advance covers and what that
// advance costs.
type HybridMode uint8

const (
	// ModeRound processes collision-free rounds of Θ(√n) interactions via
	// birthday-law round lengths and hypergeometric slot assignment — the
	// batch engine's aggregate path. Cheapest per interaction while the
	// census is concentrated on few states and reaction-dense.
	ModeRound HybridMode = iota
	// ModeInteract samples one interacting state pair at a time through
	// the Fenwick cumulative-weight table — the census engine's
	// per-interaction path. The fallback when the live support is too
	// wide for aggregate draws to amortize or state tracking is active.
	ModeInteract
	// ModeSkip jumps geometrically distributed runs of census-preserving
	// interactions and applies the next state-changing pair directly —
	// the census engine's batched no-op path. Unbeatable when the census
	// is inert (two surviving leaders among 10⁸ agents meet once every
	// ~n²/2 interactions).
	ModeSkip
)

// String implements fmt.Stringer for test names and telemetry.
func (m HybridMode) String() string {
	switch m {
	case ModeRound:
		return "round"
	case ModeInteract:
		return "interact"
	case ModeSkip:
		return "skip"
	default:
		return fmt.Sprintf("HybridMode(%d)", uint8(m))
	}
}

// HybridStats is the controller's online view of the chain: the census
// concentration and the realized payoff of the current mode. It is handed
// to custom handover policies (TuneHandover) and exposed via Stats.
//
// All fields are deterministic functions of the chain history — never of
// wall-clock time — so policies built on them keep runs bit-reproducible
// from the seed.
type HybridStats struct {
	N       int        // population size
	Steps   uint64     // interactions executed so far
	Live    int        // distinct states with nonzero count (census concentration)
	States  int        // distinct states ever observed (dense-table pressure)
	Leaders int        // current leader count
	Mode    HybridMode // mode that executed the previous advance

	// ExpRound caches √(πn/8) ≈ 0.627·√n, the expected collision-free
	// round length — the yardstick realized skip lengths are compared to.
	ExpRound float64

	// Round telemetry.
	LastRoundLen      uint64 // interactions covered by the last round
	LastRoundReactive uint64 // census-changing interactions among them
	NoopRounds        int    // consecutive all-no-op rounds

	// Skip telemetry.
	LastSkip    uint64 // no-ops jumped by the last geometric event
	ShortSkips  int    // consecutive skips below the break-even length
	SkipEntries uint64 // controller handovers into skip mode
	SkipEvents  uint64 // skip-mode advances (geometric events, incl. budget truncations)

	// Interact telemetry.
	NoopStreak int // consecutive sampled no-ops in interact mode

	// Cumulative mode occupancy: interactions covered while each mode held
	// the census, and the number of times the controller switched modes.
	// RoundSteps+InteractSteps+SkipSteps == Steps at every advance
	// boundary, so occupancy ratios are exact, not sampled.
	RoundSteps    uint64
	InteractSteps uint64
	SkipSteps     uint64
	Handovers     uint64

	// RoundEligible reports whether rounds are permitted at all: state
	// tracking attributes observations per interaction (aggregate paths
	// cannot), and the dense transition matrix bounds the state table.
	// The controller clamps any policy's ModeRound request to
	// ModeInteract while this is false.
	RoundEligible bool
}

// HybridSimulator executes one population under a protocol by handing the
// census between three execution modes — collision-free rounds,
// per-interaction Fenwick sampling, and geometric no-op skipping — as the
// run moves through the phases of an O(log n)-time election (fourth
// engine, EngineHybrid).
//
// The controller monitors census concentration and per-mode payoff online:
// the distinct-state count, the reactive-pair mass enumerated from the
// census totals, and the realized batch round length versus the geometric
// skip length. Rounds run while the census is concentrated and
// reaction-dense; a streak of all-no-op rounds hands over to the geometric
// skipper; a streak of short skips hands back. Handover carries only the
// census multiset and the rng stream position — both engine-agnostic — and
// every mode samples the exact uniform-scheduler chain, so any
// deterministic mode policy preserves all observable distributions (the
// forced-handover equivalence tests pin this at adversarial switch
// points). Decisions happen at interaction boundaries and condition only
// on the past, so runs remain bit-reproducible from the seed.
//
// A HybridSimulator is not safe for concurrent use; run one per goroutine.
type HybridSimulator[S comparable] struct {
	b BatchSimulator[S] // round machinery plus the shared census core

	mode   HybridMode                   // mode of the previous advance
	policy func(HybridStats) HybridMode // nil = default payoff policy

	lastRoundLen      uint64
	lastRoundReactive uint64
	noopRounds        int
	lastSkip          uint64
	shortSkips        int
	skipEntries       uint64
	skipEvents        uint64
	noopStreak        int

	modeSteps [3]uint64 // interactions covered per mode, indexed by HybridMode
	handovers uint64    // mode switches between consecutive advances
}

// NewHybridSimulator creates a census of n agents, all in the protocol's
// initial state, with the scheduler seeded by seed. It panics if n < 1.
func NewHybridSimulator[S comparable](proto Protocol[S], n int, seed uint64) *HybridSimulator[S] {
	h := &HybridSimulator[S]{
		b:    *NewBatchSimulator(proto, n, seed),
		mode: ModeInteract,
	}
	// The embedded value copy invalidated the batch engine's self-pointer
	// hooks; reinstall them against the embedded copy.
	h.b.installFastMemo()
	return h
}

// TuneHandover overrides the engine's mode controller: policy is consulted
// once per advance with the current HybridStats and returns the mode to
// execute next. nil restores the default payoff-adaptive policy. Any
// deterministic policy is distribution-preserving — the controller trades
// only wall-clock time — which is why the knob is safe to expose for the
// forced-handover equivalence tests. ModeRound requests are clamped to
// ModeInteract while rounds are ineligible (see HybridStats.RoundEligible).
//
// A clone shares the policy function value with its original; policies
// must therefore not close over per-simulator mutable state.
func (h *HybridSimulator[S]) TuneHandover(policy func(HybridStats) HybridMode) {
	h.policy = policy
}

// TuneRounds passes the round policy overrides through to the embedded
// round machinery (see BatchSimulator.TuneRounds): populations of at least
// minN agents may use rounds while at most maxLive states are occupied.
func (h *HybridSimulator[S]) TuneRounds(minN, maxLive int) { h.b.TuneRounds(minN, maxLive) }

// Mode returns the mode that executed the most recent advance.
func (h *HybridSimulator[S]) Mode() HybridMode { return h.mode }

// Stats returns the controller's current view of the chain.
func (h *HybridSimulator[S]) Stats() HybridStats {
	cs := &h.b.cs
	return HybridStats{
		N:                 cs.n,
		Steps:             cs.steps,
		Live:              cs.live,
		States:            len(cs.states),
		Leaders:           cs.leaders,
		Mode:              h.mode,
		ExpRound:          h.b.expRound,
		LastRoundLen:      h.lastRoundLen,
		LastRoundReactive: h.lastRoundReactive,
		NoopRounds:        h.noopRounds,
		LastSkip:          h.lastSkip,
		ShortSkips:        h.shortSkips,
		SkipEntries:       h.skipEntries,
		SkipEvents:        h.skipEvents,
		NoopStreak:        h.noopStreak,
		RoundSteps:        h.modeSteps[ModeRound],
		InteractSteps:     h.modeSteps[ModeInteract],
		SkipSteps:         h.modeSteps[ModeSkip],
		Handovers:         h.handovers,
		RoundEligible:     h.roundEligible(),
	}
}

// --- Observable surface (delegated to the shared census core) ------------

// N returns the population size.
func (h *HybridSimulator[S]) N() int { return h.b.cs.n }

// Steps returns the number of interactions executed so far, including
// those processed in aggregate or skipped in batch.
func (h *HybridSimulator[S]) Steps() uint64 { return h.b.cs.steps }

// ParallelTime returns steps divided by n, the paper's time measure.
func (h *HybridSimulator[S]) ParallelTime() float64 { return h.b.cs.ParallelTime() }

// Leaders returns the current number of agents whose output is Leader.
func (h *HybridSimulator[S]) Leaders() int { return h.b.cs.leaders }

// RoleChanges returns the cumulative number of agent output changes
// (L→F or F→L) observed since construction.
func (h *HybridSimulator[S]) RoleChanges() uint64 { return h.b.cs.roleChanges }

// LiveStates returns the number of distinct states with nonzero count.
func (h *HybridSimulator[S]) LiveStates() int { return h.b.cs.live }

// Count returns the current multiplicity of state s.
func (h *HybridSimulator[S]) Count(s S) int { return h.b.cs.Count(s) }

// Census returns the multiset of current agent states.
func (h *HybridSimulator[S]) Census() map[S]int { return h.b.cs.Census() }

// ForEach calls f once per agent with synthetic ids, like the census
// engine (agents are anonymous; see CountSimulator.ForEach).
func (h *HybridSimulator[S]) ForEach(f func(id int, state S)) { h.b.cs.ForEach(f) }

// TrackStates enables recording of every distinct agent state observed
// from now on. While tracking is active the controller clamps the engine
// out of round mode (aggregate paths do not attribute observations), so
// tracking costs the per-interaction or skip rate.
func (h *HybridSimulator[S]) TrackStates() { h.b.cs.TrackStates() }

// DistinctStates returns the number of distinct agent states observed
// since TrackStates was enabled, or 0 if tracking is disabled.
func (h *HybridSimulator[S]) DistinctStates() int { return h.b.cs.DistinctStates() }

// --- Chain driving -------------------------------------------------------

// Step executes one uniformly random interaction.
func (h *HybridSimulator[S]) Step() { h.advance(h.b.cs.steps+1, -1) }

// RunSteps executes k uniformly random interactions.
func (h *HybridSimulator[S]) RunSteps(k uint64) {
	limit := h.b.cs.steps + k
	for h.b.cs.steps < limit {
		h.advance(limit, -1)
	}
}

// RunUntilLeaders runs random interactions until at most target leaders
// remain or maxSteps total interactions have been executed, returning the
// total step count at return and whether the target was reached. The
// reported step count is the exact first-hit time of the underlying
// chain: a round whose aggregate crosses the target is replayed
// interaction by interaction (see BatchSimulator.RunUntilLeaders), and
// the skip and interact modes apply at most one census change per
// advance, so the semantics match the other engines exactly.
func (h *HybridSimulator[S]) RunUntilLeaders(target int, maxSteps uint64) (steps uint64, ok bool) {
	cs := &h.b.cs
	if cs.n == 1 {
		return cs.steps, cs.leaders <= target
	}
	for cs.leaders > target {
		if cs.steps >= maxSteps {
			return cs.steps, false
		}
		h.advance(maxSteps, target)
	}
	return cs.steps, true
}

// VerifyStable runs extra random interactions and reports whether any
// agent's output changed during them. Aggregate role accounting and no-op
// skips are exact, so the check matches the other engines.
func (h *HybridSimulator[S]) VerifyStable(extra uint64) bool {
	if h.b.cs.n == 1 {
		return true
	}
	before := h.b.cs.roleChanges
	h.RunSteps(extra)
	return h.b.cs.roleChanges == before
}

// Clone returns an independent deep copy of the simulator, including the
// scheduler position and the controller state: the original and the clone
// produce identical futures until their schedules diverge. The handover
// policy function value is shared (policies must be stateless).
func (h *HybridSimulator[S]) Clone() *HybridSimulator[S] {
	d := &HybridSimulator[S]{
		b:                 *h.b.Clone(),
		mode:              h.mode,
		policy:            h.policy,
		lastRoundLen:      h.lastRoundLen,
		lastRoundReactive: h.lastRoundReactive,
		noopRounds:        h.noopRounds,
		lastSkip:          h.lastSkip,
		shortSkips:        h.shortSkips,
		skipEntries:       h.skipEntries,
		skipEvents:        h.skipEvents,
		noopStreak:        h.noopStreak,
		modeSteps:         h.modeSteps,
		handovers:         h.handovers,
	}
	// The value copy of the cloned batch engine invalidated its
	// self-pointer hooks; reinstall them against the embedded copy.
	d.b.installFastMemo()
	return d
}

// CloneRunner implements Runner.
func (h *HybridSimulator[S]) CloneRunner() Runner[S] { return h.Clone() }

// --- The controller ------------------------------------------------------

// advance executes scheduler steps in the controller-chosen mode until at
// least one interaction has been applied or the step counter reaches
// limit. target >= 0 asks for exact first-hit semantics on the leader
// count (RunUntilLeaders); target < 0 runs oblivious to leaders.
func (h *HybridSimulator[S]) advance(limit uint64, target int) {
	cs := &h.b.cs
	if cs.n < 2 {
		panic("pp: a population of 1 cannot interact")
	}
	mode := h.nextMode(limit)
	if mode != h.mode {
		h.handovers++
		if mode == ModeSkip {
			h.skipEntries++
		}
	}
	h.mode = mode
	before := cs.steps
	switch mode {
	case ModeRound:
		h.b.round(limit, target)
		h.lastRoundLen = cs.steps - before
		h.lastRoundReactive = h.b.reactive
		if h.b.reactive == 0 {
			h.noopRounds++
		} else {
			h.noopRounds = 0
		}
	case ModeSkip:
		h.b.ensureFen()
		h.skip(limit)
	default: // ModeInteract
		h.b.ensureFen()
		if cs.interactOnce() {
			h.noopStreak = 0
		} else {
			h.noopStreak++
		}
		cs.steps++
	}
	h.modeSteps[mode] += cs.steps - before
}

// nextMode consults the handover policy and clamps its answer to the
// correctness envelope: rounds are unavailable while state tracking is
// active or the state table outgrew the dense transition matrix.
func (h *HybridSimulator[S]) nextMode(limit uint64) HybridMode {
	var m HybridMode
	if h.policy == nil {
		m = h.defaultMode(limit)
	} else {
		m = h.policy(h.Stats())
	}
	if m == ModeRound && !h.roundEligible() {
		return ModeInteract
	}
	if m > ModeSkip {
		return ModeInteract
	}
	return m
}

// roundEligible reports whether round mode is permitted at all (the
// correctness/memory envelope, not the cost model): aggregate paths do
// not attribute per-interaction state observations, and the dense
// transition matrix bounds the state table.
func (h *HybridSimulator[S]) roundEligible() bool {
	return h.b.cs.seen == nil && h.b.denseEligible()
}

// defaultMode is the built-in payoff-adaptive policy. It is a pure cost
// model — any answer is correct:
//
//   - Rounds run while the census is concentrated (live support within
//     the aggregate-draw cap) and keep reacting. Two kinds of evidence
//     nominate a handover to the geometric skipper: a streak of all-no-op
//     rounds (Θ(√n) sampled interactions without one census change), or a
//     round whose realized no-op gap between census changes already
//     exceeded the skip event's break-even length (sparseRound). Either
//     candidacy is confirmed against the exact expected skip length
//     n(n−1)/wc before the handover happens (skipPays) — there is no
//     live-state cap; wide censuses like PLL's ~900-state BackUp plateau
//     skip as soon as the payoff is there.
//   - Skipping continues while realized skips beat the break-even length
//     (skipBreakEven, the skip event's index-walk cost expressed in
//     steps); a streak of short skips means the census turned
//     reaction-dense again and the controller hands back to rounds —
//     directly, unlike the census engine, which exits to per-interaction
//     sampling and must rediscover inertness.
//   - Per-interaction sampling covers the remainder: wide live support,
//     populations too small for rounds, state tracking, or budget tails
//     shorter than a minimal round. A long sampled no-op streak hands
//     over to the skipper exactly like the census engine.
func (h *HybridSimulator[S]) defaultMode(limit uint64) HybridMode {
	cs := &h.b.cs
	switch h.mode {
	case ModeRound:
		if h.noopRounds >= batchNoopRoundStreak || h.sparseRound() {
			if h.skipPays() {
				return ModeSkip
			}
			// wc says skipping doesn't pay yet: re-arm the streak so the
			// next candidacy waits for fresh evidence instead of paying a
			// payoff check per round.
			h.noopRounds = 0
		}
	case ModeSkip:
		if h.shortSkips < hybridShortSkipStreak {
			return ModeSkip
		}
		// Short-skip streak: fall through to the round/interact choice.
	default: // ModeInteract
		if h.noopStreak >= skipEntryStreak(cs.live) {
			if h.skipPays() {
				return ModeSkip
			}
			h.noopStreak = 0
		}
	}
	if limit-cs.steps >= batchMinRound && cs.n >= h.b.minRoundN &&
		cs.live <= h.b.maxLiveForRounds() && h.roundEligible() {
		return ModeRound
	}
	return ModeInteract
}

// sparseRound reports whether the last round's realized reactive density
// was low enough that geometric skipping would have covered it more
// cheaply: the mean no-op gap between census changes exceeded twice the
// skip event's break-even length. This is what rescues BackUp-plateau
// realizations whose rounds are never entirely no-op but whose census
// changes are hundreds of interactions apart.
func (h *HybridSimulator[S]) sparseRound() bool {
	return h.lastRoundReactive > 0 &&
		h.lastRoundLen >= h.lastRoundReactive*2*skipBreakEven(h.b.cs.live)
}

// skipPays confirms a skip-mode candidacy against the exact current
// reactive weight: entering pays when the expected geometric skip length
// n(n−1)/wc reaches the break-even cost of one skip event. The
// reactiveWeight call may build the index (one Θ(live²) enumeration);
// candidacies fire only on streak evidence, so a build amortizes over the
// skip phase it opens — and the answer is a pure function of the census,
// never of the index's lifecycle.
func (h *HybridSimulator[S]) skipPays() bool {
	cs := &h.b.cs
	wc := cs.reactiveWeight()
	if wc == 0 {
		return true
	}
	total := uint64(cs.n) * uint64(cs.n-1)
	return total/wc >= skipBreakEven(cs.live)
}

// skip jumps over the geometrically distributed run of census-preserving
// interactions and applies the next state-changing pair, clamped to the
// step budget — the census engine's advanceBatched with the controller's
// telemetry attached. Both the skip length and the changing pair are
// drawn from their exact conditional laws (see CountSimulator).
func (h *HybridSimulator[S]) skip(limit uint64) {
	cs := &h.b.cs
	h.skipEvents++
	wc := cs.reactiveWeight()
	if wc == 0 {
		// Dead census: no pair of live states reacts, so no interaction
		// can ever change anything again. Spend the whole budget at once.
		h.lastSkip = limit - cs.steps
		h.shortSkips = 0
		cs.steps = limit
		return
	}
	total := uint64(cs.n) * uint64(cs.n-1)
	remaining := limit - cs.steps
	var skip uint64
	if wc < total {
		skip = cs.rand.Geometric(float64(wc) / float64(total))
		if skip >= remaining {
			// Truncated by the budget: the event is deferred, not short.
			h.lastSkip = remaining
			h.shortSkips = 0
			cs.steps = limit
			return
		}
	}
	short := skip+1 < skipBreakEven(cs.live)
	cs.steps += skip + 1
	target := cs.rand.Uint64n(wc)
	i, j := cs.samplePair(target)
	cs.applyPair(i, j)
	h.lastSkip = skip
	if short {
		h.shortSkips++
	} else {
		h.shortSkips = 0
	}
}

// String identifies the engine in test names and errors.
func (h *HybridSimulator[S]) String() string {
	return fmt.Sprintf("HybridSimulator(n=%d, steps=%d, mode=%s)", h.b.cs.n, h.b.cs.steps, h.mode)
}
