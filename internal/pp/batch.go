package pp

import (
	"runtime"
	"sync"

	"popproto/internal/rng"
)

// RunResult is the outcome of one independent election run.
type RunResult struct {
	// Seed is the scheduler seed used for the run.
	Seed uint64
	// Steps is the interaction count at which the run ended.
	Steps uint64
	// ParallelTime is Steps divided by the population size.
	ParallelTime float64
	// Stabilized reports whether the leader target was reached before the
	// step budget ran out.
	Stabilized bool
	// Leaders is the leader count when the run ended.
	Leaders int
}

// Parallel executes reps independent tasks over a bounded worker pool with
// deterministic per-rep seeds derived from seed. Task invocations may run
// concurrently; rep indices are 0-based. workers <= 0 selects
// runtime.NumCPU(). Parallel returns after every task has finished.
func Parallel(reps, workers int, seed uint64, task func(rep int, seed uint64)) {
	if reps <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > reps {
		workers = reps
	}
	// Derive all per-rep seeds up front so results do not depend on worker
	// scheduling.
	derive := rng.New(seed)
	seeds := make([]uint64, reps)
	for i := range seeds {
		seeds[i] = derive.Uint64()
	}

	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for rep := range next {
				task(rep, seeds[rep])
			}
		}()
	}
	for rep := 0; rep < reps; rep++ {
		next <- rep
	}
	close(next)
	wg.Wait()
}

// MeasureStabilization runs reps independent elections of proto on n agents
// on the per-agent engine and reports per-run stabilization results. Runs
// are capped at maxSteps interactions. workers <= 0 selects
// runtime.NumCPU(). See MeasureWith to select the engine.
func MeasureStabilization[S comparable](
	proto Protocol[S], n, reps int, seed, maxSteps uint64, workers int,
) []RunResult {
	return MeasureWith(EngineAgent, proto, n, reps, seed, maxSteps, workers)
}

// MeasureWith runs reps independent elections of proto on n agents on the
// selected engine and reports per-run stabilization results. Runs are
// capped at maxSteps interactions. workers <= 0 selects runtime.NumCPU().
//
// The protocol value is shared across goroutines and must therefore be
// read-only after construction, which holds for every protocol in this
// repository.
func MeasureWith[S comparable](
	engine Engine, proto Protocol[S], n, reps int, seed, maxSteps uint64, workers int,
) []RunResult {
	results := make([]RunResult, reps)
	Parallel(reps, workers, seed, func(rep int, repSeed uint64) {
		sim := NewRunner(engine, proto, n, repSeed)
		steps, ok := sim.RunUntilLeaders(1, maxSteps)
		results[rep] = RunResult{
			Seed:         repSeed,
			Steps:        steps,
			ParallelTime: float64(steps) / float64(n),
			Stabilized:   ok,
			Leaders:      sim.Leaders(),
		}
	})
	return results
}
