package pp_test

import (
	"testing"
	"testing/quick"

	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
)

// duel and frozen are the pptest fixture protocols; aliases keep the test
// bodies close to the paper's wording.
var (
	duel   = pptest.Duel{}
	frozen = pptest.Frozen{}
)

func TestNewSimulatorInitialCensus(t *testing.T) {
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: duel, N: 10, Seed: 1}, "initial-census",
		func(t *testing.T, tc pptest.TestCase[bool], sim pp.Runner[bool]) {
			if sim.N() != 10 {
				t.Fatalf("N = %d, want 10", sim.N())
			}
			if sim.Leaders() != 10 {
				t.Fatalf("initial leaders = %d, want 10", sim.Leaders())
			}
			if sim.Steps() != 0 {
				t.Fatalf("initial steps = %d, want 0", sim.Steps())
			}
		})
}

func TestNewSimulatorPanicsOnEmpty(t *testing.T) {
	for _, engine := range pp.Engines() {
		t.Run(engine.String(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor with n=0 did not panic")
				}
			}()
			pp.NewRunner[bool](engine, duel, 0, 1)
		})
	}
}

func TestInteractUpdatesLeaderCount(t *testing.T) {
	sim := pp.NewSimulator[bool](duel, 4, 1)
	sim.Interact(0, 1)
	if sim.Leaders() != 3 {
		t.Fatalf("leaders after one duel = %d, want 3", sim.Leaders())
	}
	if sim.RoleChanges() != 1 {
		t.Fatalf("role changes = %d, want 1", sim.RoleChanges())
	}
	// Interacting a leader with a follower changes nothing.
	sim.Interact(0, 1)
	if sim.Leaders() != 3 || sim.RoleChanges() != 1 {
		t.Fatalf("leader-follower duel changed census: leaders=%d changes=%d",
			sim.Leaders(), sim.RoleChanges())
	}
}

func TestInteractPanicsOnSelf(t *testing.T) {
	sim := pp.NewSimulator[bool](duel, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("self-interaction did not panic")
		}
	}()
	sim.Interact(2, 2)
}

func TestRunUntilLeadersStabilizes(t *testing.T) {
	for _, n := range []int{2, 3, 10, 100} {
		tc := pptest.TestCase[bool]{Proto: duel, N: n, Seed: uint64(n)}
		pptest.RunAllEngines(t, tc, "elect",
			func(t *testing.T, tc pptest.TestCase[bool], sim pp.Runner[bool]) {
				steps := pptest.ElectOne(t, tc, sim)
				if steps != sim.Steps() {
					t.Fatalf("returned steps %d != sim steps %d", steps, sim.Steps())
				}
			})
	}
}

func TestRunUntilLeadersRespectsBudget(t *testing.T) {
	pptest.RunAllEngines(t, pptest.TestCase[int]{Proto: frozen, N: 10, Seed: 1}, "frozen-budget",
		func(t *testing.T, _ pptest.TestCase[int], sim pp.Runner[int]) {
			steps, ok := sim.RunUntilLeaders(1, 0)
			// frozen has zero leaders; target 1 is already met (0 <= 1).
			if !ok || steps != 0 {
				t.Fatalf("frozen run: steps=%d ok=%v, want 0,true", steps, ok)
			}
		})
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: duel, N: 1000, Seed: 1}, "tiny-budget",
		func(t *testing.T, _ pptest.TestCase[bool], sim pp.Runner[bool]) {
			if _, ok := sim.RunUntilLeaders(1, 5); ok {
				t.Fatal("1000-agent duel cannot stabilize in 5 steps")
			}
			if sim.Steps() != 5 {
				t.Fatalf("budget overrun: %d steps", sim.Steps())
			}
		})
}

func TestSingleAgentPopulation(t *testing.T) {
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: duel, N: 1, Seed: 1}, "single-agent",
		func(t *testing.T, _ pptest.TestCase[bool], sim pp.Runner[bool]) {
			steps, ok := sim.RunUntilLeaders(1, 100)
			if !ok || steps != 0 {
				t.Fatalf("n=1: steps=%d ok=%v, want immediate stabilization", steps, ok)
			}
			if !sim.VerifyStable(100) {
				t.Fatal("n=1 population reported unstable")
			}
		})
}

func TestVerifyStable(t *testing.T) {
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: duel, N: 50, Seed: 7}, "verify-stable",
		func(t *testing.T, tc pptest.TestCase[bool], sim pp.Runner[bool]) {
			if sim.VerifyStable(200) {
				t.Fatal("all-leader initial configuration reported stable")
			}
			pptest.ElectOne(t, tc, sim)
			if !sim.VerifyStable(5000) {
				t.Fatal("single-leader duel configuration reported unstable")
			}
		})
}

func TestSetStateAdjustsCensus(t *testing.T) {
	sim := pp.NewSimulator[bool](duel, 5, 1)
	sim.SetState(0, false)
	if sim.Leaders() != 4 {
		t.Fatalf("leaders = %d after demoting one agent, want 4", sim.Leaders())
	}
	sim.SetState(0, true)
	if sim.Leaders() != 5 {
		t.Fatalf("leaders = %d after re-promoting, want 5", sim.Leaders())
	}
	// No-op overwrite keeps the census.
	sim.SetState(1, true)
	if sim.Leaders() != 5 {
		t.Fatalf("no-op SetState changed census to %d", sim.Leaders())
	}
}

func TestCensus(t *testing.T) {
	sim := pp.NewSimulator[bool](duel, 6, 1)
	sim.Interact(0, 1)
	sim.Interact(2, 3)
	c := sim.Census()
	if c[true] != 4 || c[false] != 2 {
		t.Fatalf("census = %v, want 4 leaders / 2 followers", c)
	}
	byRole := pp.CensusBy[bool](sim, func(s bool) pp.Role {
		if s {
			return pp.Leader
		}
		return pp.Follower
	})
	if byRole[pp.Leader] != 4 || byRole[pp.Follower] != 2 {
		t.Fatalf("CensusBy = %v", byRole)
	}
}

func TestTrackStates(t *testing.T) {
	sim := pp.NewSimulator[bool](duel, 4, 1)
	if sim.DistinctStates() != 0 {
		t.Fatal("tracking should be off by default")
	}
	sim.TrackStates()
	if sim.DistinctStates() != 1 {
		t.Fatalf("distinct initial states = %d, want 1", sim.DistinctStates())
	}
	sim.Interact(0, 1)
	if sim.DistinctStates() != 2 {
		t.Fatalf("distinct states after duel = %d, want 2", sim.DistinctStates())
	}
	sim.TrackStates() // idempotent
	if sim.DistinctStates() != 2 {
		t.Fatal("TrackStates reset the seen set")
	}
}

func TestDeterministicReplay(t *testing.T) {
	for _, engine := range pp.Engines() {
		t.Run(engine.String(), func(t *testing.T) {
			tc := pptest.TestCase[bool]{Proto: duel, N: 64, Seed: 99, Engine: engine}
			a, b := tc.NewRunner(), tc.NewRunner()
			sa, _ := a.RunUntilLeaders(1, 1<<40)
			sb, _ := b.RunUntilLeaders(1, 1<<40)
			if sa != sb {
				t.Fatalf("same seed produced different stabilization steps: %d vs %d", sa, sb)
			}
			ca, cb := a.Census(), b.Census()
			if len(ca) != len(cb) || ca[true] != cb[true] || ca[false] != cb[false] {
				t.Fatalf("censuses differ between replays: %v vs %v", ca, cb)
			}
			// The per-agent engine must replay agent by agent.
			if sa, ok := a.(*pp.Simulator[bool]); ok {
				sb := b.(*pp.Simulator[bool])
				for i := 0; i < sa.N(); i++ {
					if sa.State(i) != sb.State(i) {
						t.Fatalf("agent %d state differs between replays", i)
					}
				}
			}
		})
	}
}

func TestRoundRobinCoversAllPairs(t *testing.T) {
	var rr pp.RoundRobin
	const n = 4
	seen := make(map[[2]int]bool)
	for k := 0; k < n*(n-1); k++ {
		i, j := rr.Next(n)
		if i == j {
			t.Fatal("round robin emitted self-pair")
		}
		seen[[2]int{i, j}] = true
	}
	if len(seen) != n*(n-1) {
		t.Fatalf("round robin covered %d pairs in one cycle, want %d", len(seen), n*(n-1))
	}
}

func TestFixedScheduleReplaysAndValidates(t *testing.T) {
	f := &pp.Fixed{Pairs: [][2]int{{0, 1}, {1, 2}}}
	i, j := f.Next(3)
	if i != 0 || j != 1 {
		t.Fatalf("first pair = (%d,%d)", i, j)
	}
	i, j = f.Next(3)
	if i != 1 || j != 2 {
		t.Fatalf("second pair = (%d,%d)", i, j)
	}
	i, j = f.Next(3) // wraps
	if i != 0 || j != 1 {
		t.Fatalf("wrapped pair = (%d,%d)", i, j)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range fixed pair did not panic")
		}
	}()
	f.Next(2) // pair (1,2) is invalid for n=2 on the next wrap
	f.Next(2)
}

func TestStarveKeepsInactiveAgentsFrozen(t *testing.T) {
	sim := pp.NewSimulator[bool](duel, 10, 1)
	sched := &pp.Starve{Active: 3}
	sim.RunSchedule(sched, 1000)
	// Agents 3..9 never interacted: still leaders.
	for i := 3; i < 10; i++ {
		if sim.State(i) != true {
			t.Fatalf("starved agent %d changed state", i)
		}
	}
	// Among the active three, duels happened; at least one leader remains
	// overall (safety under adversarial schedules).
	if sim.Leaders() < 8 {
		t.Fatalf("leaders = %d, want >= 8 (7 starved + >=1 active)", sim.Leaders())
	}
}

func TestRunScheduleAdvancesSteps(t *testing.T) {
	sim := pp.NewSimulator[bool](duel, 5, 1)
	var rr pp.RoundRobin
	sim.RunSchedule(&rr, 42)
	if sim.Steps() != 42 {
		t.Fatalf("steps = %d, want 42", sim.Steps())
	}
}

func TestParallelRunsEveryRepOnce(t *testing.T) {
	const reps = 100
	hits := make([]int, reps)
	var seeds = make([]uint64, reps)
	pp.Parallel(reps, 4, 123, func(rep int, seed uint64) {
		hits[rep]++
		seeds[rep] = seed
	})
	for rep, h := range hits {
		if h != 1 {
			t.Fatalf("rep %d ran %d times", rep, h)
		}
	}
	// Seeds must be deterministic across invocations.
	again := make([]uint64, reps)
	pp.Parallel(reps, 2, 123, func(rep int, seed uint64) { again[rep] = seed })
	for rep := range seeds {
		if seeds[rep] != again[rep] {
			t.Fatalf("rep %d seed differs across invocations", rep)
		}
	}
}

func TestParallelZeroReps(t *testing.T) {
	called := false
	pp.Parallel(0, 4, 1, func(int, uint64) { called = true })
	if called {
		t.Fatal("task called for zero reps")
	}
}

func TestMeasureStabilization(t *testing.T) {
	for _, engine := range pp.Engines() {
		t.Run(engine.String(), func(t *testing.T) {
			results := pp.MeasureWith[bool](engine, duel, 50, 20, 7, 1<<40, 2)
			if len(results) != 20 {
				t.Fatalf("got %d results", len(results))
			}
			for i, r := range results {
				if !r.Stabilized {
					t.Fatalf("rep %d did not stabilize", i)
				}
				if r.Leaders != 1 {
					t.Fatalf("rep %d ended with %d leaders", i, r.Leaders)
				}
				if r.ParallelTime <= 0 {
					t.Fatalf("rep %d parallel time %v", i, r.ParallelTime)
				}
			}
			// Deterministic overall.
			again := pp.MeasureWith[bool](engine, duel, 50, 20, 7, 1<<40, 4)
			for i := range results {
				if results[i].Steps != again[i].Steps {
					t.Fatalf("rep %d not reproducible across worker counts", i)
				}
			}
		})
	}
}

// TestQuickLeaderCountNeverNegative drives random interactions through the
// fixture on every engine and checks census sanity as a property.
func TestQuickLeaderCountNeverNegative(t *testing.T) {
	for _, engine := range pp.Engines() {
		f := func(seed uint64, steps uint16) bool {
			sim := pp.NewRunner[bool](engine, duel, 12, seed)
			sim.RunSteps(uint64(steps))
			recount := 0
			sim.ForEach(func(_ int, s bool) {
				if s {
					recount++
				}
			})
			return recount == sim.Leaders() && recount >= 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
	}
}

func BenchmarkStepDuel(b *testing.B) {
	sim := pp.NewSimulator[bool](duel, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
