package pp_test

import (
	"fmt"
	"testing"

	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
	"popproto/internal/stats"
)

// tickerState is the state of tickerDuel: a leader flag plus a timer that
// advances on every interaction, so *every* interaction is reactive and the
// census spreads over 2·tickerMod states — a miniature of the PLL count-up
// plateau, the reaction-dense regime the batch engine's collision-free
// rounds exist for.
type tickerState struct {
	Leader bool
	Tick   uint8
}

const tickerMod = 23

// tickerDuel combines Angluin-style leader duels with per-interaction
// timers.
type tickerDuel struct{}

func (tickerDuel) Name() string              { return "ticker-duel" }
func (tickerDuel) InitialState() tickerState { return tickerState{Leader: true} }

func (tickerDuel) Output(s tickerState) pp.Role {
	if s.Leader {
		return pp.Leader
	}
	return pp.Follower
}

func (tickerDuel) Transition(a, b tickerState) (tickerState, tickerState) {
	a.Tick = (a.Tick + 1) % tickerMod
	b.Tick = (b.Tick + 1) % tickerMod
	if a.Leader && b.Leader {
		b.Leader = false
	}
	return a, b
}

// forcedBatch constructs a batch simulator with collision-free rounds
// forced on for any population and live support, so the tests exercise the
// round machinery even at test-scale n.
func forcedBatch[S comparable](proto pp.Protocol[S], n int, seed uint64) *pp.BatchSimulator[S] {
	sim := pp.NewBatchSimulator(proto, n, seed)
	sim.TuneRounds(2, 1<<30)
	return sim
}

// checkCensusCoherent asserts the batch simulator's counters agree with
// its own census after any mix of aggregate rounds and fallback paths.
func checkCensusCoherent[S comparable](t *testing.T, sim *pp.BatchSimulator[S], proto pp.Protocol[S], n int) {
	t.Helper()
	census := sim.Census()
	total, leaders := 0, 0
	for s, c := range census {
		if c <= 0 {
			t.Fatalf("census holds non-positive count %d for %v", c, s)
		}
		total += c
		if proto.Output(s) == pp.Leader {
			leaders += c
		}
	}
	if total != n {
		t.Fatalf("census sums to %d agents, want %d", total, n)
	}
	if leaders != sim.Leaders() {
		t.Fatalf("Leaders() = %d, census says %d", sim.Leaders(), leaders)
	}
	if len(census) != sim.LiveStates() {
		t.Fatalf("LiveStates() = %d, census has %d states", sim.LiveStates(), len(census))
	}
}

// TestBatchRoundInvariants drives forced rounds through the reaction-dense
// ticker fixture and checks census coherence and exact step accounting
// after every chunk.
func TestBatchRoundInvariants(t *testing.T) {
	const n = 300
	proto := tickerDuel{}
	sim := forcedBatch[tickerState](proto, n, 11)
	var want uint64
	for i := 0; i < 60; i++ {
		k := uint64(13 + i*7)
		sim.RunSteps(k)
		want += k
		if sim.Steps() != want {
			t.Fatalf("Steps() = %d after RunSteps chunks totaling %d", sim.Steps(), want)
		}
		checkCensusCoherent(t, sim, proto, n)
	}
	if sim.Leaders() < 1 {
		t.Fatal("all leaders eliminated")
	}
	// Step() must advance by exactly one even in round mode.
	sim.Step()
	if sim.Steps() != want+1 {
		t.Fatalf("Step() advanced to %d, want %d", sim.Steps(), want+1)
	}
}

// TestBatchRoleChangesExact: in a duel every eliminated leader changes
// output exactly once, so after stabilization RoleChanges must equal n−1
// on every engine — including through aggregate application.
func TestBatchRoleChangesExact(t *testing.T) {
	const n = 257
	for _, tc := range []struct {
		name string
		sim  pp.Runner[tickerState]
	}{
		{"forced-rounds", forcedBatch[tickerState](tickerDuel{}, n, 5)},
		{"default-policy", pp.NewBatchSimulator[tickerState](tickerDuel{}, n, 6)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := tc.sim.RunUntilLeaders(1, 1<<40); !ok {
				t.Fatal("did not stabilize")
			}
			if rc := tc.sim.RoleChanges(); rc != n-1 {
				t.Fatalf("RoleChanges = %d, want %d", rc, n-1)
			}
		})
	}
}

// TestBatchFirstHitExact: RunUntilLeaders must stop at the exact first
// configuration at or under the target. Duel eliminations are −1 per
// interaction, so stopping mid-round must land exactly on the target — and
// the stopping *time* distribution must match the per-agent engine, which
// the KS test below checks.
func TestBatchFirstHitExact(t *testing.T) {
	const (
		n      = 192
		target = n / 2
		reps   = 400
	)
	batchSteps := make([]float64, reps)
	agentSteps := make([]float64, reps)
	for rep := 0; rep < reps; rep++ {
		bs := forcedBatch[bool](pptest.Duel{}, n, uint64(rep)+1)
		steps, ok := bs.RunUntilLeaders(target, 1<<40)
		if !ok || bs.Leaders() != target {
			t.Fatalf("rep %d: stopped at %d leaders (ok=%v), want exactly %d",
				rep, bs.Leaders(), ok, target)
		}
		if steps != bs.Steps() {
			t.Fatalf("rep %d: returned steps %d != Steps() %d", rep, steps, bs.Steps())
		}
		batchSteps[rep] = float64(steps)

		as := pp.NewSimulator[bool](pptest.Duel{}, n, uint64(rep)+100_000)
		asteps, _ := as.RunUntilLeaders(target, 1<<40)
		agentSteps[rep] = float64(asteps)
	}
	ks := stats.KSTwoSample(batchSteps, agentSteps)
	if ks.P < 0.001 {
		t.Fatalf("first-hit times distinguish forced-round batch from per-agent: D=%.4f p=%.6f",
			ks.Stat, ks.P)
	}
}

// TestBatchStabilizationKS compares full-election stabilization times of
// the forced-round batch engine against the per-agent engine on the
// reaction-dense ticker fixture.
func TestBatchStabilizationKS(t *testing.T) {
	const (
		n    = 96
		reps = 300
	)
	times := func(mk func(rep int) pp.Runner[tickerState]) []float64 {
		out := make([]float64, reps)
		for rep := 0; rep < reps; rep++ {
			sim := mk(rep)
			if _, ok := sim.RunUntilLeaders(1, 1<<40); !ok {
				t.Fatalf("rep %d did not stabilize", rep)
			}
			out[rep] = sim.ParallelTime()
		}
		return out
	}
	batch := times(func(rep int) pp.Runner[tickerState] {
		return forcedBatch[tickerState](tickerDuel{}, n, uint64(rep)+1)
	})
	agent := times(func(rep int) pp.Runner[tickerState] {
		return pp.NewSimulator[tickerState](tickerDuel{}, n, uint64(rep)+500_000)
	})
	ks := stats.KSTwoSample(batch, agent)
	if ks.P < 0.001 {
		t.Fatalf("stabilization times distinguish the engines: D=%.4f p=%.6f", ks.Stat, ks.P)
	}
}

// TestBatchCloneDeterminism: a clone must reproduce the original's future
// exactly, through rounds, fallbacks and replays.
func TestBatchCloneDeterminism(t *testing.T) {
	const n = 250
	sim := forcedBatch[tickerState](tickerDuel{}, n, 31)
	sim.RunSteps(5000)
	clone := sim.Clone()
	for i := 0; i < 20; i++ {
		sim.RunSteps(777)
		clone.RunSteps(777)
		if sim.Steps() != clone.Steps() || sim.Leaders() != clone.Leaders() ||
			sim.RoleChanges() != clone.RoleChanges() {
			t.Fatalf("clone diverged at chunk %d: steps %d/%d leaders %d/%d",
				i, sim.Steps(), clone.Steps(), sim.Leaders(), clone.Leaders())
		}
	}
	a, b := sim.Census(), clone.Census()
	if len(a) != len(b) {
		t.Fatalf("census support diverged: %d vs %d", len(a), len(b))
	}
	for s, c := range a {
		if b[s] != c {
			t.Fatalf("census diverged at %v: %d vs %d", s, c, b[s])
		}
	}
}

// frozenProto never reacts: its populations are dead configurations.
type frozenProto struct{}

func (frozenProto) Name() string                   { return "frozen" }
func (frozenProto) InitialState() int              { return 0 }
func (frozenProto) Output(int) pp.Role             { return pp.Follower }
func (frozenProto) Transition(a, b int) (int, int) { return a, b }

// TestBatchDeadCensus: all-no-op rounds must hand over to the geometric
// skipper, which detects the dead census and spends the whole budget in
// O(1) — while keeping step accounting exact.
func TestBatchDeadCensus(t *testing.T) {
	const n = 4096
	sim := pp.NewBatchSimulator[int](frozenProto{}, n, 3)
	const budget = uint64(1) << 50 // ~10^15 interactions: must not be walked
	sim.RunSteps(budget)
	if sim.Steps() != budget {
		t.Fatalf("Steps() = %d, want %d", sim.Steps(), budget)
	}
	if !sim.VerifyStable(1 << 50) {
		t.Fatal("frozen population reported unstable")
	}
	if sim.RoleChanges() != 0 {
		t.Fatalf("RoleChanges = %d on a frozen population", sim.RoleChanges())
	}
}

// TestBatchEndgameHandover: after a duel stabilizes, the census is inert;
// a huge follow-up run must complete via the geometric path with exact
// step accounting.
func TestBatchEndgameHandover(t *testing.T) {
	const n = 2048
	sim := pp.NewBatchSimulator[bool](pptest.Duel{}, n, 9)
	if _, ok := sim.RunUntilLeaders(1, 1<<40); !ok {
		t.Fatal("duel did not stabilize")
	}
	at := sim.Steps()
	sim.RunSteps(1 << 44)
	if sim.Steps() != at+(1<<44) {
		t.Fatalf("Steps() = %d, want %d", sim.Steps(), at+(1<<44))
	}
	if sim.Leaders() != 1 {
		t.Fatalf("leader census corrupted after handover: %d", sim.Leaders())
	}
}

// TestBatchChiSquareBins applies a two-sample χ² over pooled-sample
// quantile bins to forced-round vs per-agent Duel stabilization times (the
// χ² complement of the KS tests, robust to the bin-edge estimation noise a
// one-sample quantile binning would suffer).
func TestBatchChiSquareBins(t *testing.T) {
	const (
		n    = 128
		reps = 300
		bins = 6
	)
	agent := make([]float64, reps)
	batch := make([]float64, reps)
	for rep := 0; rep < reps; rep++ {
		as := pp.NewSimulator[bool](pptest.Duel{}, n, uint64(rep)+1)
		s, _ := as.RunUntilLeaders(1, 1<<40)
		agent[rep] = float64(s)
		bs := forcedBatch[bool](pptest.Duel{}, n, uint64(rep)+900_000)
		s2, _ := bs.RunUntilLeaders(1, 1<<40)
		batch[rep] = float64(s2)
	}
	pooled := append(append([]float64(nil), agent...), batch...)
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = stats.Quantile(pooled, float64(i+1)/bins)
	}
	binOf := func(v float64) int {
		b := 0
		for b < len(edges) && v > edges[b] {
			b++
		}
		return b
	}
	oa := make([]float64, bins)
	ob := make([]float64, bins)
	for i := range agent {
		oa[binOf(agent[i])]++
		ob[binOf(batch[i])]++
	}
	// Pearson two-sample statistic with equal sample sizes: Σ (a−b)²/(a+b),
	// asymptotically χ² with bins−1 degrees of freedom.
	stat := 0.0
	for i := range oa {
		if oa[i]+ob[i] == 0 {
			continue
		}
		d := oa[i] - ob[i]
		stat += d * d / (oa[i] + ob[i])
	}
	p := stats.GammaQ(float64(bins-1)/2, stat/2)
	if p < 0.001 {
		t.Fatalf("stabilization times distinguish the engines: χ²=%.2f p=%.5f (agent %v, batch %v)",
			stat, p, oa, ob)
	}
}

// TestBatchRunnerSurface exercises the Runner surface on the batch engine
// through the declarative harness, like the other engines.
func TestBatchRunnerSurface(t *testing.T) {
	tc := pptest.TestCase[bool]{Proto: pptest.Duel{}, N: 512, Seed: 4, Engine: pp.EngineBatch}
	pptest.Run(t, tc, "elect", func(t *testing.T, tc pptest.TestCase[bool], sim pp.Runner[bool]) {
		pptest.ElectOne(t, tc, sim)
		if !sim.VerifyStable(uint64(tc.N) * 10) {
			t.Fatal("stabilized duel reported unstable")
		}
	})
	// TrackStates leaves round mode but must stay correct.
	sim := pp.NewBatchSimulator[tickerState](tickerDuel{}, 256, 8)
	sim.TrackStates()
	sim.RunSteps(20_000)
	if d := sim.DistinctStates(); d < tickerMod || d > 2*tickerMod {
		t.Fatalf("DistinctStates = %d, want within [%d, %d]", d, tickerMod, 2*tickerMod)
	}
	if s := fmt.Sprint(sim); s == "" {
		t.Fatal("empty String()")
	}
}

// stateHungry mints a fresh state on every interaction (MaxID-like): the
// dense memo must overflow to the map fallback and round mode must shut
// itself off without losing exactness of the step accounting.
type hungryState struct {
	ID int
}

type stateHungry struct{}

func (stateHungry) Name() string               { return "state-hungry" }
func (stateHungry) InitialState() hungryState  { return hungryState{} }
func (stateHungry) Output(hungryState) pp.Role { return pp.Follower }
func (stateHungry) Transition(a, b hungryState) (hungryState, hungryState) {
	m := a.ID
	if b.ID > m {
		m = b.ID
	}
	return hungryState{ID: m + 1}, hungryState{ID: m}
}

func TestBatchStateHungryFallback(t *testing.T) {
	const n = 4096
	sim := pp.NewBatchSimulator[hungryState](stateHungry{}, n, 17)
	sim.RunSteps(40_000)
	if sim.Steps() != 40_000 {
		t.Fatalf("Steps() = %d, want 40000", sim.Steps())
	}
	total := 0
	for _, c := range sim.Census() {
		total += c
	}
	if total != n {
		t.Fatalf("census sums to %d, want %d", total, n)
	}
}
