package pp_test

import (
	"fmt"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
)

// ExampleSimulator_Interact drives the constant-state duel protocol with
// an explicit schedule: deterministic, no randomness involved.
func ExampleSimulator_Interact() {
	sim := pp.NewSimulator[baseline.AngluinState](baseline.Angluin{}, 4, 1)
	fmt.Println("leaders:", sim.Leaders())

	sim.Interact(0, 1) // duel: agent 1 yields
	sim.Interact(2, 3) // duel: agent 3 yields
	sim.Interact(0, 2) // duel: agent 2 yields
	fmt.Println("leaders:", sim.Leaders())
	fmt.Println("agent 0 output:", baseline.Angluin{}.Output(sim.State(0)))

	// Output:
	// leaders: 4
	// leaders: 1
	// agent 0 output: L
}

// ExampleSimulator_RunUntilLeaders elects a leader with PLL under the
// seeded uniformly random scheduler; the seed makes the run reproducible.
func ExampleSimulator_RunUntilLeaders() {
	protocol := core.NewForN(100)
	sim := pp.NewSimulator[core.State](protocol, 100, 7)
	_, ok := sim.RunUntilLeaders(1, 1<<30)
	fmt.Println("stabilized:", ok, "leaders:", sim.Leaders())

	// Output:
	// stabilized: true leaders: 1
}

// ExampleCensusBy groups a configuration by an arbitrary classifier —
// here the Table 3 status groups of PLL.
func ExampleCensusBy() {
	protocol := core.NewForN(6)
	sim := pp.NewSimulator[core.State](protocol, 6, 1)
	sim.Interact(0, 1) // first contact: one candidate, one timer
	census := pp.CensusBy(sim, func(s core.State) core.Status { return s.Status })
	fmt.Println("X:", census[core.StatusX], "A:", census[core.StatusA], "B:", census[core.StatusB])

	// Output:
	// X: 4 A: 1 B: 1
}

// ExampleRoundRobin shows a deterministic schedule: safety properties must
// hold under any schedule, not only the random one.
func ExampleRoundRobin() {
	sim := pp.NewSimulator[baseline.AngluinState](baseline.Angluin{}, 3, 1)
	var rr pp.RoundRobin
	sim.RunSchedule(&rr, 6) // one full sweep of all ordered pairs
	fmt.Println("leaders after one sweep:", sim.Leaders())

	// Output:
	// leaders after one sweep: 1
}
