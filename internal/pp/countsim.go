package pp

import (
	"fmt"

	"popproto/internal/rng"
)

// Tuning constants of the census engine's batched no-op skipping. They
// affect only wall-clock cost, never the sampled distribution: every path
// below realizes the exact uniform-scheduler Markov chain.
const (
	// countNoopStreak is the number of consecutive sampled no-op
	// interactions after which the engine switches to batched skipping
	// (scaled up beyond the reactive-pair index's membership cap; see
	// skipEntryStreak). Streak observation conditions only on the past, so
	// the switch is distribution-preserving (strong Markov property).
	countNoopStreak = 64
	// countBatchExitSkip floors the skip event's break-even length (see
	// skipBreakEven): a batched event that skipped fewer than break-even
	// many no-ops signals a reaction-dense census; fall back to
	// per-interaction sampling until the next long no-op streak.
	countBatchExitSkip = 8
	// countPairCacheMax caps the memoized (initiator, responder) →
	// transition-outcome table. Scheduler sampling concentrates on
	// high-multiplicity state pairs, so a bounded memo captures most of the
	// hot path; on overflow the whole memo is dropped and refilled with the
	// current working set.
	countPairCacheMax = 1 << 20
)

// pairOutcome is the memoized result of one ordered state-pair transition,
// as dense indices. i2 == i and j2 == j encodes a census-preserving pair.
type pairOutcome struct {
	i2, j2 int32
}

// CountSimulator executes one population under a protocol on the census
// (configuration-as-multiset) representation: one integer count per
// distinct live state instead of one state per agent. Because agents are
// anonymous and transitions depend only on states, sampling the interacting
// *state pair* with the multiplicity-weighted probabilities of the uniform
// scheduler realizes exactly the same Markov chain as Simulator — with
// memory Θ(states ever observed) instead of Θ(n) (the dense tables are
// append-only and never compacted), which is what makes populations of
// 10⁷–10⁸ agents practical for the small-state-space protocols of this
// repository. Protocols whose runs visit Θ(n) distinct states (MaxID's
// random identifiers) lose that advantage and belong on Simulator.
//
// Sampling uses a Fenwick (binary indexed) cumulative-weight table over the
// counts: O(log k) to draw a state and O(log k) to shift weight after a
// transition, where k is the number of states ever observed. (A static
// alias table would sample in O(1) but costs O(k) to rebuild after every
// census change; the Fenwick table is the dynamic version of the same
// cumulative-weight idea.)
//
// The engine additionally *batches* census-preserving interactions: when a
// long run of sampled no-ops indicates that reactive pairs are rare, it
// enumerates the reactive (state-changing) ordered pairs, draws how many
// consecutive interactions leave the census unchanged from the exact
// geometric law, advances the step counter past all of them at once, and
// then samples the next state-changing pair directly from the reactive
// weights. For protocols whose endgame is dominated by no-ops (two
// surviving leaders among 10⁸ agents meet once every ~n²/2 interactions)
// this turns Θ(n²) scheduler steps into O(1) work per census change.
//
// A CountSimulator is not safe for concurrent use; run one per goroutine.
type CountSimulator[S comparable] struct {
	proto Protocol[S]
	n     int
	rand  *rng.Source
	steps uint64

	// Dense state table: index i holds state states[i] with multiplicity
	// counts[i] (zero once all agents have left the state).
	states   []S
	counts   []int64
	isLeader []bool
	index    map[S]int
	fen      []int64 // 1-based Fenwick tree over counts
	fenTop   int     // largest power of two <= len(states)
	live     int     // number of states with counts[i] > 0

	leaders     int
	roleChanges uint64

	batched    bool
	noopStreak int
	tcache     map[uint64]pairOutcome // transition memo; pure, droppable
	ridx       reactiveIndex          // incremental reactive-pair index (see ridx.go)

	// fastOutcome, when non-nil, is consulted before the map memo: the
	// round engines layer their dense transition matrix under the census
	// core here, so the per-interaction and geometric fallback paths share
	// one memo with round mode instead of refilling a map. Returning
	// ok=false falls through to the map path (the dense matrix declines
	// pairs beyond its capacity), so the hook never recurses.
	fastOutcome func(i, j int) (pairOutcome, bool)

	// Scratch buffers for the batched path, reused across events.
	liveIdx []int32  // occupied state indexes
	pairI   []int32  // reactive ordered pairs: initiator state index
	pairJ   []int32  // reactive ordered pairs: responder state index
	pairW   []uint64 // cumulative reactive weights, aligned with pairI/pairJ

	seen map[S]struct{} // non-nil only when TrackStates was called
}

// NewCountSimulator creates a census of n agents, all in the protocol's
// initial state, with the scheduler seeded by seed. It panics if n < 1.
func NewCountSimulator[S comparable](proto Protocol[S], n int, seed uint64) *CountSimulator[S] {
	if n < 1 {
		panic(fmt.Sprintf("pp: population size %d < 1", n))
	}
	c := &CountSimulator[S]{
		proto: proto,
		n:     n,
		rand:  rng.New(seed),
		index: make(map[S]int, 64),
		fen:   make([]int64, 1, 64), // fen[0] is the unused Fenwick root
	}
	c.add(c.stateIndex(proto.InitialState()), int64(n))
	return c
}

// N returns the population size.
func (c *CountSimulator[S]) N() int { return c.n }

// Steps returns the number of interactions executed so far, including the
// census-preserving interactions skipped in batch.
func (c *CountSimulator[S]) Steps() uint64 { return c.steps }

// ParallelTime returns steps divided by n, the paper's time measure.
func (c *CountSimulator[S]) ParallelTime() float64 {
	return float64(c.steps) / float64(c.n)
}

// Leaders returns the current number of agents whose output is Leader.
func (c *CountSimulator[S]) Leaders() int { return c.leaders }

// RoleChanges returns the cumulative number of agent output changes
// (L→F or F→L) observed since construction.
func (c *CountSimulator[S]) RoleChanges() uint64 { return c.roleChanges }

// LiveStates returns the number of distinct states with nonzero count —
// the k that governs the engine's per-event cost and memory.
func (c *CountSimulator[S]) LiveStates() int { return c.live }

// Count returns the current multiplicity of state s.
func (c *CountSimulator[S]) Count(s S) int {
	if i, ok := c.index[s]; ok {
		return int(c.counts[i])
	}
	return 0
}

// Census returns the multiset of current agent states.
func (c *CountSimulator[S]) Census() map[S]int {
	m := make(map[S]int, c.live)
	for i, cnt := range c.counts {
		if cnt > 0 {
			m[c.states[i]] = int(cnt)
		}
	}
	return m
}

// ForEach calls f once per agent. Agents in the population protocol model
// are anonymous, so the census engine does not track identities: ids are
// synthetic (consecutive, grouped by state in census order) and not stable
// across calls that interleave with interactions.
func (c *CountSimulator[S]) ForEach(f func(id int, state S)) {
	id := 0
	for i, cnt := range c.counts {
		st := c.states[i]
		for k := int64(0); k < cnt; k++ {
			f(id, st)
			id++
		}
	}
}

// TrackStates enables recording of every distinct agent state observed from
// now on (including current states). Unlike the per-agent engine, tracking
// is free here: the census already materializes every state it meets.
func (c *CountSimulator[S]) TrackStates() {
	if c.seen != nil {
		return
	}
	c.seen = make(map[S]struct{}, len(c.states))
	for i, cnt := range c.counts {
		if cnt > 0 {
			c.seen[c.states[i]] = struct{}{}
		}
	}
}

// DistinctStates returns the number of distinct agent states observed since
// TrackStates was enabled, or 0 if tracking is disabled.
func (c *CountSimulator[S]) DistinctStates() int { return len(c.seen) }

// --- Fenwick cumulative-weight table ------------------------------------

// stateIndex returns the dense index of s, registering it on first sight.
func (c *CountSimulator[S]) stateIndex(s S) int {
	if i, ok := c.index[s]; ok {
		return i
	}
	i := len(c.states)
	c.states = append(c.states, s)
	c.counts = append(c.counts, 0)
	c.isLeader = append(c.isLeader, c.proto.Output(s) == Leader)
	c.index[s] = i
	// Extend the Fenwick table: position p covers the count range
	// (p − lowbit(p), p], so the new cell must be seeded with the already-
	// accumulated prefix of that range (all zeros only when lowbit(p) = 1).
	p := i + 1
	var init int64
	if lb := p & (-p); lb > 1 {
		init = c.fenPrefix(p-1) - c.fenPrefix(p-lb)
	}
	c.fen = append(c.fen, init)
	if c.fenTop == 0 {
		c.fenTop = 1
	} else if c.fenTop*2 <= len(c.states) {
		c.fenTop *= 2
	}
	return i
}

func (c *CountSimulator[S]) fenAdd(i int, d int64) {
	for p := i + 1; p < len(c.fen); p += p & (-p) {
		c.fen[p] += d
	}
}

// fenPrefix returns the total count of states with index < p.
func (c *CountSimulator[S]) fenPrefix(p int) int64 {
	var s int64
	for ; p > 0; p -= p & (-p) {
		s += c.fen[p]
	}
	return s
}

// fenSample maps target ∈ [0, Σcounts) to the state whose block of the
// cumulative layout contains it, also returning the block's start offset.
func (c *CountSimulator[S]) fenSample(target int64) (idx int, before int64) {
	pos := 0
	rem := target
	for bit := c.fenTop; bit > 0; bit >>= 1 {
		if next := pos + bit; next < len(c.fen) && c.fen[next] <= rem {
			rem -= c.fen[next]
			pos = next
		}
	}
	return pos, target - rem
}

// add shifts the multiplicity of state index i by d, keeping the Fenwick
// table, the live-state counter, the leader census and the reactive-pair
// index coherent. The index hook runs before the mutation so it observes
// the old count directly (see ridxUpdate).
func (c *CountSimulator[S]) add(i int, d int64) {
	old := c.counts[i]
	if c.ridx.valid {
		c.ridxUpdate(i, old, old+d)
	}
	c.counts[i] = old + d
	c.fenAdd(i, d)
	switch {
	case old == 0 && d > 0:
		c.live++
	case old+d == 0 && d < 0:
		c.live--
	}
	if c.isLeader[i] {
		c.leaders += int(d)
	}
}

// moveOne relocates one agent from state index `from` to `to`.
func (c *CountSimulator[S]) moveOne(from, to int) {
	if from == to {
		return
	}
	c.add(from, -1)
	c.add(to, 1)
	if c.isLeader[from] != c.isLeader[to] {
		c.roleChanges++
	}
	if c.seen != nil {
		c.seen[c.states[to]] = struct{}{}
	}
}

// --- The chain -----------------------------------------------------------

// outcome returns the transition outcome for the ordered state index pair
// (i, j). Transitions are pure, and dense indices are never reassigned, so
// outcomes are memoized by index pair: the hot paths cost one uint64-keyed
// lookup instead of a transition evaluation plus two state-keyed index
// lookups.
func (c *CountSimulator[S]) outcome(i, j int) pairOutcome {
	if c.fastOutcome != nil {
		if out, ok := c.fastOutcome(i, j); ok {
			return out
		}
	}
	key := uint64(uint32(i))<<32 | uint64(uint32(j))
	out, ok := c.tcache[key]
	if !ok {
		a, b := c.states[i], c.states[j]
		a2, b2 := c.proto.Transition(a, b)
		i2, j2 := i, j
		if a2 != a {
			i2 = c.stateIndex(a2)
		}
		if b2 != b {
			j2 = c.stateIndex(b2)
		}
		if c.tcache == nil || len(c.tcache) >= countPairCacheMax {
			c.tcache = make(map[uint64]pairOutcome, 1024)
		}
		out = pairOutcome{int32(i2), int32(j2)}
		c.tcache[key] = out
	}
	return out
}

// applyPair executes the transition for one interaction between an agent in
// state index i (initiator) and one in j (responder), reporting whether the
// census changed.
func (c *CountSimulator[S]) applyPair(i, j int) bool {
	out := c.outcome(i, j)
	if int(out.i2) == i && int(out.j2) == j {
		return false
	}
	c.moveOne(i, int(out.i2))
	c.moveOne(j, int(out.j2))
	return true
}

// interactOnce samples one uniformly random ordered interaction and applies
// it. The initiator's state is drawn with probability count/n; the
// responder is drawn uniformly from the remaining n−1 agents by excluding
// one slot of the initiator's block from the cumulative layout, giving the
// exact (count − [same state])/(n−1) law of the uniform scheduler.
func (c *CountSimulator[S]) interactOnce() bool {
	ti := int64(c.rand.Uint64n(uint64(c.n)))
	i, before := c.fenSample(ti)
	tj := int64(c.rand.Uint64n(uint64(c.n - 1)))
	if tj >= before {
		tj++
	}
	j, _ := c.fenSample(tj)
	return c.applyPair(i, j)
}

// advance executes scheduler steps until the census changes once or the
// step counter reaches limit, whichever comes first. The caller guarantees
// steps < limit on entry.
func (c *CountSimulator[S]) advance(limit uint64) {
	if c.n < 2 {
		panic("pp: a population of 1 cannot interact")
	}
	if c.batched {
		c.advanceBatched(limit)
		return
	}
	if c.interactOnce() {
		c.noopStreak = 0
	} else {
		c.noopStreak++
		if c.noopStreak >= skipEntryStreak(c.live) {
			c.noopStreak = 0
			c.batched = true
		}
	}
	c.steps++
}

// advanceBatched jumps over the geometrically distributed run of
// census-preserving interactions and applies the next state-changing one,
// clamped to the step budget. Both the skip length and the changing pair
// are drawn from their exact conditional laws, so truncation at limit is
// distribution-preserving: P[skip ≥ r] = (1−p)^r is exactly the
// probability that r consecutive interactions are no-ops, and the geometric
// law is memoryless across calls.
func (c *CountSimulator[S]) advanceBatched(limit uint64) {
	wc := c.reactiveWeight()
	if wc == 0 {
		// Dead census: no pair of live states reacts, so no interaction can
		// ever change anything again. Spend the whole budget at once.
		c.steps = limit
		return
	}
	total := uint64(c.n) * uint64(c.n-1)
	remaining := limit - c.steps
	var skip uint64
	if wc < total {
		skip = c.rand.Geometric(float64(wc) / float64(total))
		if skip >= remaining {
			c.steps = limit
			return
		}
	}
	// Exit on a skip below the break-even of the live support that priced
	// this event (applyPair may change live).
	exit := skip < skipBreakEven(c.live)
	c.steps += skip + 1
	target := c.rand.Uint64n(wc)
	i, j := c.samplePair(target)
	c.applyPair(i, j)
	if exit {
		c.batched = false
	}
}

// collectReactivePairs enumerates the ordered live state pairs whose
// transition changes the census, filling the scratch buffers with their
// cumulative scheduler weights (count_i · (count_j − [i = j]) ways to pick
// the pair), and returns the total reactive weight.
func (c *CountSimulator[S]) collectReactivePairs() uint64 {
	c.liveIdx = c.liveIdx[:0]
	for i, cnt := range c.counts {
		if cnt > 0 {
			c.liveIdx = append(c.liveIdx, int32(i))
		}
	}
	c.pairI, c.pairJ, c.pairW = c.pairI[:0], c.pairJ[:0], c.pairW[:0]
	var wc uint64
	for _, i := range c.liveIdx {
		ci := uint64(c.counts[i])
		for _, j := range c.liveIdx {
			cj := uint64(c.counts[j])
			if i == j {
				if cj--; cj == 0 {
					continue
				}
			}
			// Reactivity goes through the same memo as the
			// per-interaction path, so repeat enumerations are map
			// lookups, not transition evaluations. (A pair is reactive
			// iff its outcome moves it.)
			out := c.outcome(int(i), int(j))
			if out.i2 == i && out.j2 == j {
				continue
			}
			wc += ci * cj
			c.pairI = append(c.pairI, i)
			c.pairJ = append(c.pairJ, j)
			c.pairW = append(c.pairW, wc)
		}
	}
	return wc
}

// Step executes one uniformly random interaction. It panics if n < 2.
func (c *CountSimulator[S]) Step() { c.advance(c.steps + 1) }

// RunSteps executes k uniformly random interactions.
func (c *CountSimulator[S]) RunSteps(k uint64) {
	limit := c.steps + k
	for c.steps < limit {
		c.advance(limit)
	}
}

// RunUntilLeaders runs random interactions until at most target leaders
// remain or maxSteps total interactions have been executed, returning the
// total step count at return and whether the target was reached. Semantics
// match Simulator.RunUntilLeaders exactly.
func (c *CountSimulator[S]) RunUntilLeaders(target int, maxSteps uint64) (steps uint64, ok bool) {
	if c.n == 1 {
		return c.steps, c.leaders <= target
	}
	for c.leaders > target {
		if c.steps >= maxSteps {
			return c.steps, false
		}
		c.advance(maxSteps)
	}
	return c.steps, true
}

// VerifyStable runs extra random interactions and reports whether any
// agent's output changed during them. Batched no-op skips preserve every
// state and therefore every output, so the check is exact.
func (c *CountSimulator[S]) VerifyStable(extra uint64) bool {
	if c.n == 1 {
		return true
	}
	before := c.roleChanges
	c.RunSteps(extra)
	return c.roleChanges == before
}

// Clone returns an independent deep copy of the simulator, including the
// scheduler position: the original and the clone produce identical futures
// until their schedules diverge.
func (c *CountSimulator[S]) Clone() *CountSimulator[S] {
	d := *c
	d.rand = c.rand.Clone()
	d.states = append([]S(nil), c.states...)
	d.counts = append([]int64(nil), c.counts...)
	d.isLeader = append([]bool(nil), c.isLeader...)
	d.fen = append([]int64(nil), c.fen...)
	d.index = make(map[S]int, len(c.index))
	for k, v := range c.index {
		d.index[k] = v
	}
	// Scratch buffers, the transition memo and the reactive-pair index are
	// rebuilt on demand and carry no chain state: reactiveWeight and
	// samplePair are bit-identical with or without the index, so dropping
	// it cannot diverge the clone's future. The fast-memo hook closes over
	// its owning engine, so a clone must not inherit it (the round engines
	// reinstall their own).
	d.liveIdx, d.pairI, d.pairJ, d.pairW = nil, nil, nil, nil
	d.tcache = nil
	d.fastOutcome = nil
	d.ridx = reactiveIndex{}
	if c.seen != nil {
		d.seen = make(map[S]struct{}, len(c.seen))
		for k := range c.seen {
			d.seen[k] = struct{}{}
		}
	}
	return &d
}

// CloneRunner implements Runner.
func (c *CountSimulator[S]) CloneRunner() Runner[S] { return c.Clone() }
