package pp

import (
	"testing"

	"popproto/internal/stats"
)

// identityProto is a minimal in-package fixture (identity transitions).
type identityProto struct{}

func (identityProto) Name() string                         { return "identity" }
func (identityProto) InitialState() uint8                  { return 0 }
func (identityProto) Output(uint8) Role                    { return Follower }
func (identityProto) Transition(a, b uint8) (uint8, uint8) { return a, b }

// TestBirthdaySurvivalTable checks the tabulated birthday law against a
// directly computed product, and its boundary behavior.
func TestBirthdaySurvivalTable(t *testing.T) {
	for _, n := range []int{2, 3, 7, 64, 1000} {
		b := NewBatchSimulator[uint8](identityProto{}, n, 1)
		b.ensureSurvival()
		surv := b.survival
		if surv[0] != 1 {
			t.Fatalf("n=%d: survival[0] = %v", n, surv[0])
		}
		p := 1.0
		for tt := 1; tt < len(surv); tt++ {
			nu := float64(n - 2*(tt-1))
			p *= nu * (nu - 1) / (float64(n) * float64(n-1))
			if surv[tt] != p {
				t.Fatalf("n=%d: survival[%d] = %v, want %v", n, tt, surv[tt], p)
			}
			if 2*tt > n {
				t.Fatalf("n=%d: table extends past n/2 (t=%d)", n, tt)
			}
		}
	}
}

// TestBirthdayRoundLengthPMF draws round lengths and χ²-tests them against
// the exact law P[T = t] = survival[t] − survival[t+1].
func TestBirthdayRoundLengthPMF(t *testing.T) {
	const (
		n    = 64
		reps = 200_000
	)
	b := NewBatchSimulator[uint8](identityProto{}, n, 42)
	b.ensureSurvival()
	surv := b.survival
	pmf := make([]float64, len(surv)+1)
	for tt := 1; tt < len(surv); tt++ {
		next := 0.0
		if tt+1 < len(surv) {
			next = surv[tt+1]
		}
		pmf[tt] = surv[tt] - next
	}
	obs := make([]float64, len(pmf))
	for i := 0; i < reps; i++ {
		f, collided := b.sampleRoundLength(1 << 40)
		if !collided {
			t.Fatal("huge remaining budget must never truncate")
		}
		if f == 0 || int(f) >= len(pmf) {
			t.Fatalf("round length %d outside support [1, %d]", f, len(pmf)-1)
		}
		obs[f]++
	}
	var po, pe []float64
	var co, ce float64
	for tt := 1; tt < len(pmf); tt++ {
		co += obs[tt]
		ce += pmf[tt] * reps
		if ce >= 5 {
			po = append(po, co)
			pe = append(pe, ce)
			co, ce = 0, 0
		}
	}
	if ce > 0 {
		po[len(po)-1] += co
		pe[len(pe)-1] += ce
	}
	gof := stats.ChiSquareGOF(po, pe)
	if gof.P < 0.001 {
		t.Fatalf("round lengths do not follow the birthday law: %v", gof)
	}
}

// TestBirthdayTruncation: a small remaining budget must cap the round at
// exactly that many interactions, reported as non-colliding.
func TestBirthdayTruncation(t *testing.T) {
	b := NewBatchSimulator[uint8](identityProto{}, 1_000_000, 7)
	for i := 0; i < 1000; i++ {
		f, collided := b.sampleRoundLength(5)
		if collided || f != 5 {
			// At n = 10⁶ a round of ≤ 5 interactions collides with
			// probability < 3·10⁻⁵; a thousand truncations in a row
			// colliding would mean the cap is broken.
			if collided && f < 5 {
				continue
			}
			t.Fatalf("draw %d: got f=%d collided=%v for remaining=5", i, f, collided)
		}
	}
}

// TestEnsureFenRebuild: after rounds dirtied the census, the rebuilt
// Fenwick table must agree with the counts prefix sums.
func TestEnsureFenRebuild(t *testing.T) {
	const n = 500
	b := NewBatchSimulator[tickerStateInternal](tickerInternal{}, n, 13)
	b.TuneRounds(2, 1<<30)
	b.RunSteps(10_000)
	// A trailing short fallback advance may already have rebuilt the table;
	// ensureFen must leave a coherent table either way.
	b.ensureFen()
	cs := &b.cs
	var prefix int64
	for i := range cs.counts {
		if got := cs.fenPrefix(i + 1); got != prefix+cs.counts[i] {
			t.Fatalf("fenPrefix(%d) = %d, want %d", i+1, got, prefix+cs.counts[i])
		}
		prefix += cs.counts[i]
	}
	if prefix != int64(n) {
		t.Fatalf("census total %d, want %d", prefix, n)
	}
	// The rebuilt table must drive the per-interaction path correctly.
	b.TuneRounds(1<<30, 0) // disable rounds
	before := b.Steps()
	b.RunSteps(1000)
	if b.Steps() != before+1000 {
		t.Fatalf("per-interaction fallback lost steps: %d -> %d", before, b.Steps())
	}
}

// tickerInternal mirrors the reaction-dense fixture for in-package tests.
type tickerStateInternal struct {
	Leader bool
	Tick   uint8
}

type tickerInternal struct{}

func (tickerInternal) Name() string                      { return "ticker-internal" }
func (tickerInternal) InitialState() tickerStateInternal { return tickerStateInternal{Leader: true} }
func (tickerInternal) Output(s tickerStateInternal) Role {
	if s.Leader {
		return Leader
	}
	return Follower
}

func (tickerInternal) Transition(a, b tickerStateInternal) (tickerStateInternal, tickerStateInternal) {
	a.Tick = (a.Tick + 1) % 17
	b.Tick = (b.Tick + 1) % 17
	if a.Leader && b.Leader {
		b.Leader = false
	}
	return a, b
}

// wideProto's states are plain ints, so tests can register arbitrarily
// many distinct states.
type wideProto struct{}

func (wideProto) Name() string                   { return "wide" }
func (wideProto) InitialState() int              { return 0 }
func (wideProto) Output(int) Role                { return Follower }
func (wideProto) Transition(a, b int) (int, int) { return a + 1, b }

// TestOutcomeMapFallback drives the dense-memo overflow branch directly: a
// state table beyond batchDenseStatesHardMax must route outcome lookups
// through the census engine's map memo without growing the dense matrix.
func TestOutcomeMapFallback(t *testing.T) {
	b := NewBatchSimulator[int](wideProto{}, 100, 3)
	cs := &b.cs
	for s := 1; s <= batchDenseStatesHardMax+8; s++ {
		cs.stateIndex(s)
	}
	strideBefore := b.denseStride
	i2, j2 := b.outcome(int32(batchDenseStatesHardMax+2), int32(batchDenseStatesHardMax+4))
	if b.denseStride != strideBefore {
		t.Fatalf("dense matrix grew (stride %d -> %d) instead of falling back",
			strideBefore, b.denseStride)
	}
	// wideProto maps (a, b) -> (a+1, b): the initiator's outcome is the next
	// registered state, the responder is unchanged.
	wantI := cs.index[batchDenseStatesHardMax+3]
	if int(i2) != wantI || int(j2) != batchDenseStatesHardMax+4 {
		t.Fatalf("fallback outcome = (%d, %d), want (%d, %d)", i2, j2,
			wantI, batchDenseStatesHardMax+4)
	}
}

// TestDenseGrowthGate pins the live-concentration gate on dense-matrix
// growth past the soft cap: a wide live support must decline growth (a
// state-hungry protocol would otherwise pay up to 64 MiB for a matrix its
// rounds can never use), while a concentrated census keeps growing until
// the hard cap.
func TestDenseGrowthGate(t *testing.T) {
	b := NewBatchSimulator[int](wideProto{}, 100_000, 3)
	cs := &b.cs
	// counts > 0 for far more states than maxLiveForRounds: wide support.
	for s := 1; s <= batchDenseStatesMax+8; s++ {
		cs.add(cs.stateIndex(s), 1)
	}
	if b.denseEligible() {
		t.Fatalf("dense growth allowed with live=%d > cap %d beyond the soft cap",
			cs.live, b.maxLiveForRounds())
	}
	if _, ok := b.denseOutcome(batchDenseStatesMax+2, batchDenseStatesMax+4); ok {
		t.Fatal("denseOutcome grew the matrix for a wide-support census")
	}
	// Concentrate the census again: growth past the soft cap is allowed.
	for s := 9; s <= batchDenseStatesMax+8; s++ {
		cs.add(cs.index[s], -1)
	}
	if !b.denseEligible() {
		t.Fatalf("dense growth declined with live=%d concentrated below cap %d",
			cs.live, b.maxLiveForRounds())
	}
	if _, ok := b.denseOutcome(batchDenseStatesMax+2, batchDenseStatesMax+4); !ok {
		t.Fatal("denseOutcome declined a concentrated census below the hard cap")
	}
}
