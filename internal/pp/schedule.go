package pp

import "fmt"

// Schedule is a deterministic source of interactions, the γ of Section 2.
// Schedules exist to exercise safety properties ("for any schedule γ …")
// that the uniformly random scheduler alone cannot probe: starvation,
// round-robin sweeps, recorded worst cases.
type Schedule interface {
	// Next returns the next ordered interaction for a population of size n.
	Next(n int) (initiator, responder int)
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(n int) (int, int)

// Next implements Schedule.
func (f ScheduleFunc) Next(n int) (int, int) { return f(n) }

// RoundRobin cycles through all ordered pairs (i, j), i ≠ j, in
// lexicographic order. It is a fair deterministic schedule: every pair
// occurs every n(n-1) steps.
type RoundRobin struct {
	i, j int
}

// Next implements Schedule.
func (r *RoundRobin) Next(n int) (int, int) {
	if n < 2 {
		panic("pp: RoundRobin needs n >= 2")
	}
	for {
		i, j := r.i, r.j
		r.j++
		if r.j >= n {
			r.j = 0
			r.i = (r.i + 1) % n
		}
		if i != j {
			return i, j
		}
	}
}

// Fixed replays a recorded finite schedule, then loops. It panics when
// constructed empty or asked for a pair out of range.
type Fixed struct {
	Pairs [][2]int
	pos   int
}

// Next implements Schedule.
func (f *Fixed) Next(n int) (int, int) {
	if len(f.Pairs) == 0 {
		panic("pp: Fixed schedule is empty")
	}
	p := f.Pairs[f.pos%len(f.Pairs)]
	f.pos++
	if p[0] >= n || p[1] >= n || p[0] < 0 || p[1] < 0 || p[0] == p[1] {
		panic(fmt.Sprintf("pp: Fixed schedule pair %v invalid for n=%d", p, n))
	}
	return p[0], p[1]
}

// Starve is an adversarial schedule that never lets agents with id >= Active
// interact: it round-robins only among the first Active agents. It is used
// to check that safety invariants hold even when part of the population is
// starved indefinitely.
type Starve struct {
	Active int
	rr     RoundRobin
}

// Next implements Schedule.
func (s *Starve) Next(n int) (int, int) {
	if s.Active < 2 {
		panic("pp: Starve needs Active >= 2")
	}
	if s.Active > n {
		s.Active = n
	}
	return s.rr.Next(s.Active)
}

// RunSchedule executes k interactions drawn from sched, advancing the step
// counter exactly as random steps do.
func (s *Simulator[S]) RunSchedule(sched Schedule, k uint64) {
	n := len(s.agents)
	for ; k > 0; k-- {
		i, j := sched.Next(n)
		s.Interact(i, j)
		s.steps++
	}
}
