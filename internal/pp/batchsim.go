package pp

import (
	"fmt"
	"math"
)

// Tuning constants of the batch engine's collision-free round policy. Like
// the census engine's constants they affect only wall-clock cost, never the
// sampled distribution: every path realizes the exact uniform-scheduler
// Markov chain.
const (
	// batchRoundMinN is the smallest population for which collision-free
	// rounds are attempted by default. Below it a round covers only a
	// handful of interactions (E[round] ≈ 0.63·√n) and the per-interaction
	// path is cheaper.
	batchRoundMinN = 64
	// batchMinRound is the smallest remaining step budget worth opening a
	// round for; shorter advances use the per-interaction path.
	batchMinRound = 8
	// batchDenseStatesMax is the state-table size up to which the dense
	// transition-outcome matrix grows unconditionally (batchDenseStatesMax²
	// packed cells, 4 MiB). Beyond it the matrix keeps growing — and round
	// mode stays eligible — only while the live support remains narrow
	// enough for aggregate draws to amortize (maxLiveForRounds): protocols
	// whose *tables* grow without bound but whose censuses stay
	// concentrated (PLL's BackUp countdown walks ~220 fresh states per 100
	// units of parallel time while ≤ ~300 are ever live at once) keep the
	// 3–4× round-mode advantage for the whole run, while state-hungry
	// protocols with wide censuses (MaxID) are declined before the matrix
	// bloats. batchDenseStatesHardMax caps the matrix unconditionally
	// (batchDenseStatesHardMax² cells, 64 MiB) and with it round mode.
	batchDenseStatesMax     = 1024
	batchDenseStatesHardMax = 4096
	// batchAutoLiveMin/Max clamp the automatic live-state cap for round
	// mode, derived from the expected round length (see maxLiveForRounds).
	batchAutoLiveMin = 32
	batchAutoLiveMax = 512
	// batchNoopRoundStreak is the number of consecutive all-no-op rounds
	// after which the engine hands the census to the geometric no-op
	// skipper: a round of Θ(√n) no-ops is evidence the census is inert and
	// the exact geometric law can jump whole Θ(n²) stretches at once.
	batchNoopRoundStreak = 2
	// batchResidualCutoff is the remaining-sample floor below which the
	// multivariate draws switch from per-state hypergeometric conditionals
	// to placing the remaining samples one agent at a time (the equivalent
	// sequential revelation of the same without-replacement law). The
	// switch also triggers once the remaining sample is small relative to
	// the remaining states (batchResidualPerState expected samples per
	// state), so a long flat census tail costs O(samples) draws instead of
	// O(states) hypergeometric setups.
	batchResidualCutoff   = 24
	batchResidualPerState = 2
	// batchSurvivalFloor is where the precomputed birthday survival table
	// stops: the smallest uniform draw is 2⁻⁵³ ≈ 1.1e-16, so tabulating
	// P[first t interactions collision-free] down to 1e-18 covers every
	// reachable round length.
	batchSurvivalFloor = 1e-18
)

// denseEmpty marks an unfilled cell of the dense transition matrix. Cells
// pack the two outcome indexes as uint16s (states in round mode are capped
// at batchDenseStatesMax = 1024 ≤ 65534), halving the matrix's cache
// footprint versus a naive pair of int32s.
const denseEmpty = ^uint32(0)

// roundCell is one aggregated interaction cell of a round: m interactions
// of the ordered state pair (p, q).
type roundCell struct {
	p, q int32
	m    int64
}

// BatchSimulator executes one population under a protocol in collision-free
// rounds, the third simulation engine (EngineBatch). It represents the
// configuration as a census like CountSimulator, but instead of sampling
// one interacting state pair at a time it simulates the uniform scheduler
// in batches:
//
//  1. Draw the round length T — the number of leading interactions in which
//     no agent participates twice — from the exact birthday law over agent
//     slots: P[first t interactions collision-free] = n⁽²ᵗ⁾/(n(n−1))ᵗ,
//     precomputed as a survival table and sampled by inverse CDF.
//  2. The 2T slots of a collision-free block hold a uniformly random
//     ordered sample of agents without replacement, so the participants'
//     state counts follow the multivariate hypergeometric law of the
//     census; the split into initiator and responder slots is a second
//     hypergeometric split, and the pairing of initiator states with
//     responder states a third family of conditional hypergeometric draws
//     (a uniformly random matching of the two multisets).
//  3. Because each participant interacts exactly once in the block,
//     transitions cannot interfere: each ordered state pair (p, q) drawn m
//     times is applied in aggregate — census moved by counts, leader and
//     role-change accounting scaled by m — in O(1) per pair instead of
//     O(m).
//  4. The single colliding interaction that ends the round is resolved
//     exactly: conditioned on the collision, the repeated agent is uniform
//     over the 2T updated participants (whose post-transition states the
//     round tracked) or the fresh agents, with the closed-form probability
//     (n−1)/(2n−u−1) of colliding on the initiator slot.
//
// Per-interaction cost is therefore sub-constant wherever the census is
// concentrated: a round covers Θ(√n) interactions with O(states in sample)
// draws. Two fallbacks bound the cost everywhere else — populations or
// configurations whose live-state support is too wide for aggregate draws
// to amortize fall back to the census engine's O(log k) per-interaction
// path, and a streak of all-no-op rounds hands over to its exact geometric
// no-op skipping — so the engine is never worse than EngineCount by more
// than a constant factor and is dramatically faster in the reaction-dense
// phases (epidemics, coin flips, count-up plateaus) that dominate PLL runs.
//
// All paths sample the exact chain, so any policy mix is
// distribution-preserving; the engine-equivalence tests certify this
// against both other engines.
//
// A BatchSimulator is not safe for concurrent use; run one per goroutine.
type BatchSimulator[S comparable] struct {
	cs       CountSimulator[S] // census core; also the fallback engine
	fenDirty bool              // round mode defers Fenwick maintenance

	// Round policy (see TuneRounds). expRound caches √(πn/8) ≈ 0.627·√n,
	// the asymptotic expected round length of the birthday law over
	// ordered pairs of distinct agents.
	minRoundN  int
	maxLive    int
	expRound   float64
	noopRounds int

	// survival[t] = P[first t interactions are collision-free], built
	// lazily, immutable afterwards (clones share it).
	survival []float64

	// Dense transition memo: dense[i*denseStride+j] packs the outcome
	// state indexes of the ordered pair (i, j); denseEmpty = unfilled.
	dense       []uint32
	denseStride int

	// Per-state scratch, indexed by dense state index and reset sparsely
	// after each round via the index lists.
	order      []int32 // all state indexes, kept roughly sorted by count desc
	part       []int64 // participants drawn per state (the multiset D)
	ini        []int64 // initiator-slot split of part
	rcnt       []int64 // responder pool remaining during matching
	post       []int64 // post-transition state multiset of participants
	sampledIdx []int32 // states with part > 0, in draw order
	postIdx    []int32 // states with post > 0
	poolIdx    []int32 // matching's compacted responder pool
	cumW       []int64 // residual sampling: suffix prefix sums
	bucketIdx  []int32 // residual sampling: 256-bucket jump table into cumW
	residShift uint    // residual sampling: bucket width log2

	// The round's interaction cells (ordered state pair → multiplicity),
	// kept for the exact first-hit replay, plus the colliding pair.
	cells        []roundCell
	collP, collQ int32
	reactive     uint64

	// Census snapshot for first-hit replay when a round could cross the
	// caller's leader target.
	snapCounts  []int64
	snapLeaders int
	snapLive    int
	snapRole    uint64

	replayBuf []uint64
}

// NewBatchSimulator creates a census of n agents, all in the protocol's
// initial state, with the scheduler seeded by seed. It panics if n < 1.
func NewBatchSimulator[S comparable](proto Protocol[S], n int, seed uint64) *BatchSimulator[S] {
	b := &BatchSimulator[S]{
		cs:        *NewCountSimulator(proto, n, seed),
		minRoundN: batchRoundMinN,
		expRound:  math.Sqrt(math.Pi * float64(n) / 8),
	}
	b.installFastMemo()
	return b
}

// installFastMemo points the census core's fast-memo hook at the dense
// transition matrix, so the per-interaction and geometric fallback paths
// share one memo with round mode instead of refilling the map memo (the
// map's growth dominated the engine's allocation profile on long runs).
// The closure captures b, so it must be reinstalled after any value copy
// of the simulator (construction into an embedding engine, Clone).
func (b *BatchSimulator[S]) installFastMemo() {
	b.cs.fastOutcome = b.denseOutcome
}

// TuneRounds overrides the engine's adaptive round policy: populations of
// at least minN agents use collision-free rounds while at most maxLive
// distinct states are occupied. Zero restores the default for either
// value. Any setting is distribution-preserving — the policy trades only
// wall-clock time — which is why the knob is safe to expose for tests and
// benchmarks.
func (b *BatchSimulator[S]) TuneRounds(minN, maxLive int) {
	b.minRoundN = minN
	if minN <= 0 {
		b.minRoundN = batchRoundMinN
	}
	b.maxLive = maxLive
}

// --- Observable surface (delegated to the census core) -------------------

// N returns the population size.
func (b *BatchSimulator[S]) N() int { return b.cs.n }

// Steps returns the number of interactions executed so far, including
// those processed in aggregate.
func (b *BatchSimulator[S]) Steps() uint64 { return b.cs.steps }

// ParallelTime returns steps divided by n, the paper's time measure.
func (b *BatchSimulator[S]) ParallelTime() float64 { return b.cs.ParallelTime() }

// Leaders returns the current number of agents whose output is Leader.
func (b *BatchSimulator[S]) Leaders() int { return b.cs.leaders }

// RoleChanges returns the cumulative number of agent output changes
// (L→F or F→L) observed since construction.
func (b *BatchSimulator[S]) RoleChanges() uint64 { return b.cs.roleChanges }

// LiveStates returns the number of distinct states with nonzero count.
func (b *BatchSimulator[S]) LiveStates() int { return b.cs.live }

// Count returns the current multiplicity of state s.
func (b *BatchSimulator[S]) Count(s S) int { return b.cs.Count(s) }

// Census returns the multiset of current agent states.
func (b *BatchSimulator[S]) Census() map[S]int { return b.cs.Census() }

// ForEach calls f once per agent with synthetic ids, like the census
// engine (agents are anonymous; see CountSimulator.ForEach).
func (b *BatchSimulator[S]) ForEach(f func(id int, state S)) { b.cs.ForEach(f) }

// TrackStates enables recording of every distinct agent state observed
// from now on. While tracking is active the engine leaves round mode (the
// aggregate paths do not attribute observations), so tracking costs the
// census engine's per-event rate.
func (b *BatchSimulator[S]) TrackStates() { b.cs.TrackStates() }

// DistinctStates returns the number of distinct agent states observed
// since TrackStates was enabled, or 0 if tracking is disabled.
func (b *BatchSimulator[S]) DistinctStates() int { return b.cs.DistinctStates() }

// --- Chain driving -------------------------------------------------------

// Step executes one uniformly random interaction.
func (b *BatchSimulator[S]) Step() { b.advance(b.cs.steps+1, -1) }

// RunSteps executes k uniformly random interactions.
func (b *BatchSimulator[S]) RunSteps(k uint64) {
	limit := b.cs.steps + k
	for b.cs.steps < limit {
		b.advance(limit, -1)
	}
}

// RunUntilLeaders runs random interactions until at most target leaders
// remain or maxSteps total interactions have been executed, returning the
// total step count at return and whether the target was reached. The
// reported step count is the exact first-hit time of the underlying chain:
// a round whose aggregate crosses the target is replayed interaction by
// interaction (in the exchangeable order of its collision-free block) to
// locate the crossing, so the semantics match the other engines exactly.
func (b *BatchSimulator[S]) RunUntilLeaders(target int, maxSteps uint64) (steps uint64, ok bool) {
	cs := &b.cs
	if cs.n == 1 {
		return cs.steps, cs.leaders <= target
	}
	for cs.leaders > target {
		if cs.steps >= maxSteps {
			return cs.steps, false
		}
		b.advance(maxSteps, target)
	}
	return cs.steps, true
}

// VerifyStable runs extra random interactions and reports whether any
// agent's output changed during them. Aggregate role accounting is exact,
// so the check matches the other engines.
func (b *BatchSimulator[S]) VerifyStable(extra uint64) bool {
	if b.cs.n == 1 {
		return true
	}
	before := b.cs.roleChanges
	b.RunSteps(extra)
	return b.cs.roleChanges == before
}

// Clone returns an independent deep copy of the simulator, including the
// scheduler position: the original and the clone produce identical futures
// until their schedules diverge.
func (b *BatchSimulator[S]) Clone() *BatchSimulator[S] {
	d := &BatchSimulator[S]{
		cs:         *b.cs.Clone(),
		fenDirty:   b.fenDirty,
		minRoundN:  b.minRoundN,
		maxLive:    b.maxLive,
		expRound:   b.expRound,
		noopRounds: b.noopRounds,
		survival:   b.survival, // immutable once built
		// The draw order is chain state: it decides which state gets which
		// conditional draw, so a clone must inherit it to reproduce the
		// original's future exactly (ties would otherwise sort differently).
		order: append([]int32(nil), b.order...),
	}
	// The dense memo and the remaining scratch buffers carry no chain
	// state and are rebuilt on demand (refilling the memo consumes no
	// randomness, so the clone's future is identical).
	d.installFastMemo()
	return d
}

// CloneRunner implements Runner.
func (b *BatchSimulator[S]) CloneRunner() Runner[S] { return b.Clone() }

// advance executes scheduler steps until at least one interaction has been
// applied or the step counter reaches limit. target >= 0 asks for exact
// first-hit semantics on the leader count (RunUntilLeaders); target < 0
// runs oblivious to leaders (RunSteps).
func (b *BatchSimulator[S]) advance(limit uint64, target int) {
	cs := &b.cs
	if cs.n < 2 {
		panic("pp: a population of 1 cannot interact")
	}
	if limit-cs.steps >= batchMinRound && b.roundOK() {
		b.round(limit, target)
		return
	}
	b.ensureFen()
	cs.advance(limit)
}

// roundOK reports whether the next advance should open a collision-free
// round. Any answer is correct; this is purely a cost model.
func (b *BatchSimulator[S]) roundOK() bool {
	cs := &b.cs
	if cs.batched || cs.seen != nil || cs.n < b.minRoundN {
		return false
	}
	if !b.denseEligible() {
		return false
	}
	return cs.live <= b.maxLiveForRounds()
}

// denseEligible reports whether the dense transition matrix may cover the
// current state table: unconditionally up to batchDenseStatesMax, then on
// the condition that the live support stays concentrated enough for round
// mode to amortize, up to the hard cap. Purely a cost/memory model — a
// declined matrix routes pairs through the map memo instead.
func (b *BatchSimulator[S]) denseEligible() bool {
	k := len(b.cs.states)
	if k <= batchDenseStatesMax {
		return true
	}
	if k > batchDenseStatesHardMax {
		return false
	}
	return b.cs.live <= b.maxLiveForRounds()
}

// maxLiveForRounds is the live-state cap above which aggregate draws stop
// amortizing: about half the expected round length, so a typical round
// still draws several interactions per occupied state.
func (b *BatchSimulator[S]) maxLiveForRounds() int {
	if b.maxLive > 0 {
		return b.maxLive
	}
	m := int(b.expRound / 2)
	if m < batchAutoLiveMin {
		return batchAutoLiveMin
	}
	if m > batchAutoLiveMax {
		return batchAutoLiveMax
	}
	return m
}

// --- Birthday round length ----------------------------------------------

// ensureSurvival builds the survival table of the birthday law:
// survival[t] = P[the first t interactions are collision-free] =
// ∏_{s=1..t} (n−2s+2)(n−2s+1) / (n(n−1)), tabulated until it falls below
// batchSurvivalFloor (or every agent is used).
func (b *BatchSimulator[S]) ensureSurvival() {
	if b.survival != nil {
		return
	}
	n := b.cs.n
	nn := float64(n) * float64(n-1)
	surv := make([]float64, 1, int(5*b.expRound)+2)
	surv[0] = 1
	p := 1.0
	for t := 1; 2*t <= n; t++ {
		nu := float64(n - 2*(t-1))
		p *= nu * (nu - 1) / nn
		if p < batchSurvivalFloor {
			break
		}
		surv = append(surv, p)
	}
	b.survival = surv
}

// sampleRoundLength draws the number of collision-free interactions to
// process, capped by the remaining step budget. collided reports whether
// the round ends in a colliding interaction (false only at the cap, where
// the rest of the block is deferred: the first `remaining` interactions of
// a collision-free block are themselves an exact chain segment).
func (b *BatchSimulator[S]) sampleRoundLength(remaining uint64) (f uint64, collided bool) {
	b.ensureSurvival()
	surv := b.survival
	u := 1 - b.cs.rand.Float64() // in (0, 1], so T is finite
	// T = largest t with surv[t] >= u (binary search for the first smaller
	// entry). u below the table floor cannot occur: the floor is under the
	// smallest representable uniform except when the table ends at the
	// all-agents-used boundary, where T = n/2 is the correct answer.
	lo, hi := 1, len(surv)
	for lo < hi {
		mid := (lo + hi) / 2
		if surv[mid] < u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t := uint64(lo - 1)
	if t >= remaining {
		return remaining, false
	}
	return t, true
}

// --- The round -----------------------------------------------------------

// round processes one collision-free round (plus its colliding
// interaction, unless the step budget truncates the block first).
func (b *BatchSimulator[S]) round(limit uint64, target int) {
	cs := &b.cs
	roundStart := cs.steps
	f, collided := b.sampleRoundLength(limit - roundStart)
	slots := 2 * f

	// Keep the reactive-pair index warm through sparse rounds, but only
	// within a bounded maintenance budget: a reaction-dense round drops
	// the index instead of paying per-cell row scans (see ridxMeter).
	cs.ridxMeter()

	// Snapshot for exact first-hit replay if this round could cross the
	// caller's leader target.
	snapped := target >= 0 && cs.leaders > target
	if snapped {
		b.snapshot()
	}

	b.refreshOrder()
	b.sampleParticipants(slots)
	b.splitInitiators(f, slots)
	b.matchAndApply(f)
	if collided {
		b.collide(f)
	}
	if collided {
		cs.steps = roundStart + f + 1
	} else {
		cs.steps = roundStart + f
	}

	if snapped && cs.leaders <= target {
		b.replayFirstHit(target, roundStart, collided)
	}

	// All-no-op rounds indicate an inert census: hand over to the exact
	// geometric no-op skipper after a short streak.
	if b.reactive == 0 {
		b.noopRounds++
		if b.noopRounds >= batchNoopRoundStreak {
			b.noopRounds = 0
			cs.noopStreak = 0
			cs.batched = true
		}
	} else {
		b.noopRounds = 0
	}

	cs.ridxUnmeter()
	b.resetRound()
}

// refreshOrder maintains b.order, all state indexes sorted by count
// descending. The census drifts slowly between rounds, so an insertion
// pass over the previous order is nearly linear.
func (b *BatchSimulator[S]) refreshOrder() {
	cs := &b.cs
	for len(b.order) < len(cs.states) {
		b.order = append(b.order, int32(len(b.order)))
	}
	counts := cs.counts
	order := b.order
	for i := 1; i < len(order); i++ {
		v := order[i]
		c := counts[v]
		j := i
		for j > 0 && counts[order[j-1]] < c {
			order[j] = order[j-1]
			j--
		}
		order[j] = v
	}
}

// sampleParticipants draws the participants' state multiset D: a
// multivariate hypergeometric sample of `slots` agents from the census,
// materialized by conditional hypergeometric draws in descending count
// order (so the loop exits as soon as the sample is exhausted).
func (b *BatchSimulator[S]) sampleParticipants(slots uint64) {
	cs := &b.cs
	b.growScratch()
	b.sampledIdx = b.sampledIdx[:0]
	mrem := slots
	wrem := uint64(cs.n)
	visitedLive := 0
	oi := 0
	for ; oi < len(b.order); oi++ {
		if mrem <= batchResidualCutoff ||
			mrem <= uint64(batchResidualPerState*(cs.live-visitedLive)) {
			break
		}
		si := b.order[oi]
		c := uint64(cs.counts[si])
		if c == 0 {
			continue
		}
		visitedLive++
		var d uint64
		if c == wrem {
			d = mrem // only this state remains in the population
		} else {
			d = cs.rand.Hypergeometric(mrem, c, wrem)
		}
		wrem -= c
		if d > 0 {
			b.part[si] = int64(d)
			b.sampledIdx = append(b.sampledIdx, si)
			mrem -= d
		}
	}
	if mrem == 0 {
		return
	}
	// Residual: place the last samples agent by agent over the remaining
	// (descending-count) suffix — binary search on its prefix sums, with
	// the taken-slot trick for without-replacement exactness (a slot
	// offset below the already-placed count means that agent was drawn
	// before; redraws are ~never needed since placed ≪ suffix mass).
	suffix := b.order[oi:]
	w := b.buildResidualIndex(suffix, func(si int32) int64 { return cs.counts[si] })
	for ; mrem > 0; mrem-- {
		for {
			si, slot := b.residualDraw(suffix, uint64(w))
			if slot < b.part[si] {
				continue // slot already taken: redraw
			}
			b.part[si]++
			break
		}
	}
	// Rebuild the sampled list in census order: residual placement visits
	// states in draw order, but the split and matching stages lean on a
	// descending-count order for their early exits and short walks.
	b.sampledIdx = b.sampledIdx[:0]
	for _, si := range b.order {
		if b.part[si] > 0 {
			b.sampledIdx = append(b.sampledIdx, si)
		}
	}
}

// buildResidualIndex fills cumW with prefix sums of the suffix weights and
// a 256-bucket jump table over the value range, so each residual draw
// starts its scan at most a bucket's width from its target.
func (b *BatchSimulator[S]) buildResidualIndex(suffix []int32, weight func(int32) int64) int64 {
	cum := b.cumW[:0]
	var w int64
	for _, si := range suffix {
		w += weight(si)
		cum = append(cum, w)
	}
	b.cumW = cum
	shift := uint(0)
	for w>>shift >= 256 {
		shift++
	}
	b.residShift = shift
	if cap(b.bucketIdx) < 257 {
		b.bucketIdx = make([]int32, 257)
	}
	idx := b.bucketIdx[:257]
	j := int32(0)
	for bkt := 0; bkt < 256; bkt++ {
		lo := int64(bkt) << shift
		for int(j) < len(cum) && cum[j] <= lo {
			j++
		}
		idx[bkt] = j
	}
	idx[256] = int32(len(cum))
	return w
}

// residualDraw maps one uniform agent draw over [0, w) to its state and
// within-state slot via the jump table.
func (b *BatchSimulator[S]) residualDraw(suffix []int32, w uint64) (int32, int64) {
	t := int64(b.cs.rand.Uint64n(w))
	cum := b.cumW
	j := int(b.bucketIdx[t>>b.residShift])
	for cum[j] <= t {
		j++
	}
	var before int64
	if j > 0 {
		before = cum[j-1]
	}
	return suffix[j], t - before
}

// splitInitiators splits the participant multiset into initiator and
// responder slots: a hypergeometric split of f of the `slots` sampled
// agents into initiator positions.
func (b *BatchSimulator[S]) splitInitiators(f, slots uint64) {
	cs := &b.cs
	frem := f
	drem := slots
	oi := 0
	for ; oi < len(b.sampledIdx); oi++ {
		if frem < drem &&
			(frem <= batchResidualCutoff ||
				frem <= uint64(batchResidualPerState*(len(b.sampledIdx)-oi))) {
			break
		}
		si := b.sampledIdx[oi]
		ds := uint64(b.part[si])
		var is uint64
		switch {
		case frem == 0:
		case ds == drem:
			is = frem
		default:
			is = cs.rand.Hypergeometric(frem, ds, drem)
		}
		b.ini[si] = int64(is)
		b.rcnt[si] = int64(ds - is)
		frem -= is
		drem -= ds
	}
	if oi == len(b.sampledIdx) {
		return
	}
	// Residual: the remaining states start all-responder, then the last
	// initiator slots are assigned one at a time over the suffix — binary
	// search on its participant prefix sums, taken-slot redraws for
	// without-replacement exactness (an offset below the already-assigned
	// count means that slot is an initiator already).
	suffix := b.sampledIdx[oi:]
	for _, si := range suffix {
		b.ini[si] = 0
		b.rcnt[si] = b.part[si]
	}
	w := b.buildResidualIndex(suffix, func(si int32) int64 { return b.part[si] })
	if frem > uint64(w)/2 {
		// Assign the minority side so taken-slot redraws stay rare: mark
		// responders instead and flip.
		for rrem := uint64(w) - frem; rrem > 0; rrem-- {
			for {
				si, slot := b.residualDraw(suffix, uint64(w))
				if slot < b.part[si]-b.rcnt[si] {
					continue // slot already marked responder: redraw
				}
				b.rcnt[si]--
				break
			}
		}
		for _, si := range suffix {
			marked := b.part[si] - b.rcnt[si] // responders marked above
			b.ini[si] = b.rcnt[si]            // the rest are initiators
			b.rcnt[si] = marked
		}
		return
	}
	for ; frem > 0; frem-- {
		for {
			si, slot := b.residualDraw(suffix, uint64(w))
			if slot < b.ini[si] {
				continue // slot already an initiator: redraw
			}
			b.ini[si]++
			b.rcnt[si]--
			break
		}
	}
}

// matchAndApply pairs initiator states with responder states — a uniformly
// random matching of the two multisets, drawn by conditional
// hypergeometrics — and applies each resulting ordered state pair in
// aggregate. The responder pool is kept as a compacted list (exhausted
// states swap-removed) in descending-count order, so the per-initiator
// sweep touches only live pool entries and usually exits after the heavy
// head.
func (b *BatchSimulator[S]) matchAndApply(f uint64) {
	cs := &b.cs
	b.reactive = 0
	pool := b.poolIdx[:0]
	for _, q := range b.sampledIdx {
		if b.rcnt[q] > 0 {
			pool = append(pool, q)
		}
	}
	poolRem := f
	for _, p := range b.sampledIdx {
		ip := uint64(b.ini[p])
		if ip == 0 {
			continue
		}
		prem := poolRem
		poolRem -= ip
		if ip <= batchResidualCutoff && len(pool) > 1 {
			// Small initiator group: draw each partner with a categorical
			// walk over the pool (the sequential revelation of the same
			// matching law) instead of sweeping every pool state.
			for ; ip > 0; ip-- {
				t := int64(cs.rand.Uint64n(prem))
				prem--
				for qi := 0; qi < len(pool); qi++ {
					q := pool[qi]
					rq := b.rcnt[q]
					if t < rq {
						b.rcnt[q] = rq - 1
						b.applyCell(p, q, 1)
						if rq == 1 {
							pool[qi] = pool[len(pool)-1]
							pool = pool[:len(pool)-1]
						}
						break
					}
					t -= rq
				}
			}
			continue
		}
		for qi := 0; qi < len(pool) && ip > 0; {
			q := pool[qi]
			rq := uint64(b.rcnt[q])
			var m uint64
			if rq == prem {
				m = ip
			} else {
				m = cs.rand.Hypergeometric(ip, rq, prem)
			}
			prem -= rq
			if m > 0 {
				rq -= m
				b.rcnt[q] = int64(rq)
				ip -= m
				b.applyCell(p, q, int64(m))
			}
			if rq == 0 {
				// Swap-remove the exhausted state; the order of the
				// remaining pool is still a deterministic function of the
				// draw history, which is all exactness needs.
				pool[qi] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				continue
			}
			qi++
		}
	}
	b.poolIdx = pool[:0]
}

// applyCell records and applies m interactions of the ordered state pair
// (p, q) in aggregate.
func (b *BatchSimulator[S]) applyCell(p, q int32, m int64) {
	i2, j2 := b.outcome(p, q)
	b.cells = append(b.cells, roundCell{p, q, m})
	b.notePost(i2, m)
	b.notePost(j2, m)
	if i2 != p || j2 != q {
		b.reactive += uint64(m)
		b.moveMany(p, i2, m)
		b.moveMany(q, j2, m)
	}
}

// notePost accumulates the post-transition state multiset of the round's
// participants (the collision resolver samples the repeated agent's
// current state from it).
func (b *BatchSimulator[S]) notePost(s int32, m int64) {
	if int(s) >= len(b.post) {
		b.post = append(b.post, make([]int64, int(s)+1-len(b.post))...)
	}
	if b.post[s] == 0 {
		b.postIdx = append(b.postIdx, s)
	}
	b.post[s] += m
}

// moveMany relocates m agents from state index `from` to `to`, scaling the
// census, leader and role accounting that moveOne does per agent.
func (b *BatchSimulator[S]) moveMany(from, to int32, m int64) {
	if from == to {
		return
	}
	b.bump(from, -m)
	b.bump(to, m)
	if b.cs.isLeader[from] != b.cs.isLeader[to] {
		b.cs.roleChanges += uint64(m)
	}
}

// bump shifts a state's multiplicity without maintaining the Fenwick table
// (deferred until a fallback path needs it; see ensureFen). The
// reactive-pair index, by contrast, is maintained inline — under the
// round's maintenance meter — so a warm index survives sparse rounds and
// the next skip entry costs no rebuild.
func (b *BatchSimulator[S]) bump(i int32, d int64) {
	cs := &b.cs
	old := cs.counts[i]
	if cs.ridx.valid {
		cs.ridxUpdate(int(i), old, old+d)
	}
	cs.counts[i] = old + d
	switch {
	case old == 0 && d > 0:
		cs.live++
	case old+d == 0 && d < 0:
		cs.live--
	}
	if cs.isLeader[i] {
		cs.leaders += int(d)
	}
	b.fenDirty = true
}

// collide resolves the colliding interaction that ends a round of f
// collision-free interactions, exactly: with probability (n−1)/(2n−u−1)
// the collision is on the initiator slot (the initiator is one of the u =
// 2f used agents, in its post-transition state; the responder is uniform
// over the other n−1 agents), otherwise on the responder slot (fresh
// initiator, used responder).
func (b *BatchSimulator[S]) collide(f uint64) {
	cs := &b.cs
	n := uint64(cs.n)
	u := 2 * f
	pInit := float64(n-1) / float64(2*n-u-1)
	var ai, bi int32
	if cs.rand.Float64() < pInit {
		ai = b.samplePost(u)
		bi = b.sampleCensusExcluding(ai)
	} else {
		ai = b.sampleUnused(n - u)
		bi = b.samplePost(u)
	}
	b.collP, b.collQ = ai, bi
	b.applyOne(ai, bi)
}

// samplePost draws a state from the participants' post-transition multiset
// (total weight u), i.e. the current state of a uniformly random used
// agent.
func (b *BatchSimulator[S]) samplePost(u uint64) int32 {
	t := int64(b.cs.rand.Uint64n(u))
	for _, s := range b.postIdx {
		if t < b.post[s] {
			return s
		}
		t -= b.post[s]
	}
	panic("pp: post multiset underflow")
}

// sampleCensusExcluding draws a state from the current census with one
// instance of state `excl` removed — the uniform law of the second agent
// of an interaction given the first.
func (b *BatchSimulator[S]) sampleCensusExcluding(excl int32) int32 {
	cs := &b.cs
	t := int64(cs.rand.Uint64n(uint64(cs.n - 1)))
	for i, c := range cs.counts {
		if int32(i) == excl {
			c--
		}
		if t < c {
			return int32(i)
		}
		t -= c
	}
	panic("pp: census underflow")
}

// sampleUnused draws a state from the multiset of agents that did not
// participate in the round (current census minus the post multiset).
func (b *BatchSimulator[S]) sampleUnused(total uint64) int32 {
	cs := &b.cs
	t := int64(cs.rand.Uint64n(total))
	for i, c := range cs.counts {
		if int(i) < len(b.post) {
			c -= b.post[i]
		}
		if t < c {
			return int32(i)
		}
		t -= c
	}
	panic("pp: unused multiset underflow")
}

// applyOne applies a single interaction of the ordered state pair (i, j)
// through the round bookkeeping (no Fenwick maintenance).
func (b *BatchSimulator[S]) applyOne(i, j int32) {
	i2, j2 := b.outcome(i, j)
	if i2 != i || j2 != j {
		b.reactive++
		b.moveMany(i, i2, 1)
		b.moveMany(j, j2, 1)
	}
}

// replayFirstHit rolls the census back to the start of the round and
// replays its interactions one at a time, in a uniformly random order, to
// stop the chain at the exact step where the leader count first reached
// the target. The slots of a collision-free block are exchangeable, so a
// uniform shuffle of its interaction multiset is the correct conditional
// order; the colliding interaction is by construction the round's last.
func (b *BatchSimulator[S]) replayFirstHit(target int, roundStart uint64, collided bool) {
	cs := &b.cs
	// Roll back. The wholesale count restore bypasses the bump hook, so
	// the reactive-pair index cannot follow it; drop it for rebuild.
	cs.ridx.invalidate()
	copy(cs.counts, b.snapCounts)
	for i := len(b.snapCounts); i < len(cs.counts); i++ {
		cs.counts[i] = 0
	}
	cs.leaders = b.snapLeaders
	cs.live = b.snapLive
	cs.roleChanges = b.snapRole
	b.fenDirty = true

	// Expand the round's cells into single interactions.
	buf := b.replayBuf[:0]
	for _, c := range b.cells {
		pq := uint64(uint32(c.p))<<32 | uint64(uint32(c.q))
		for k := int64(0); k < c.m; k++ {
			buf = append(buf, pq)
		}
	}
	b.replayBuf = buf

	steps := roundStart
	for t := range buf {
		// Lazy Fisher–Yates: fix position t, then apply it.
		j := t + int(cs.rand.Uint64n(uint64(len(buf)-t)))
		buf[t], buf[j] = buf[j], buf[t]
		b.applyOne(int32(buf[t]>>32), int32(uint32(buf[t])))
		steps++
		if cs.leaders <= target {
			cs.steps = steps
			return
		}
	}
	if collided {
		// The free block alone did not reach the target, so the colliding
		// interaction (the round's last) did.
		b.applyOne(b.collP, b.collQ)
		steps++
	}
	cs.steps = steps
}

// snapshot saves the census and its derived counters for replayFirstHit.
func (b *BatchSimulator[S]) snapshot() {
	cs := &b.cs
	if cap(b.snapCounts) < len(cs.counts) {
		// Grow with headroom: snapshot runs once per crossing-eligible
		// round, so an exact-length buffer would reallocate after every
		// newly discovered state.
		b.snapCounts = make([]int64, len(cs.counts), 2*len(cs.counts))
	}
	b.snapCounts = b.snapCounts[:len(cs.counts)]
	copy(b.snapCounts, cs.counts)
	b.snapLeaders = cs.leaders
	b.snapLive = cs.live
	b.snapRole = cs.roleChanges
}

// resetRound sparsely clears the per-round scratch.
func (b *BatchSimulator[S]) resetRound() {
	for _, si := range b.sampledIdx {
		b.part[si] = 0
		b.ini[si] = 0
		b.rcnt[si] = 0
	}
	for _, si := range b.postIdx {
		b.post[si] = 0
	}
	b.sampledIdx = b.sampledIdx[:0]
	b.postIdx = b.postIdx[:0]
	b.cells = b.cells[:0]
	b.collP, b.collQ = -1, -1
}

// growScratch sizes the per-state scratch to the state table.
func (b *BatchSimulator[S]) growScratch() {
	k := len(b.cs.states)
	for _, s := range []*[]int64{&b.part, &b.ini, &b.rcnt, &b.post} {
		if len(*s) < k {
			*s = append(*s, make([]int64, k-len(*s))...)
		}
	}
}

// outcome returns the transition outcome for the ordered state index pair
// (i, j) through the dense memo matrix. Transitions are pure and indexes
// never reassigned, so a hit costs one array load.
func (b *BatchSimulator[S]) outcome(i, j int32) (int32, int32) {
	if out, ok := b.denseOutcome(int(i), int(j)); ok {
		return out.i2, out.j2
	}
	// A state-hungry protocol (MaxID) outgrew the dense matrix mid-round;
	// route the overflow through the census engine's map memo instead of
	// reallocating quadratically. Round mode itself shuts off at the next
	// policy check. (The census core's fast-memo hook points back at
	// denseOutcome, which declines this pair again, so the map path is
	// reached without recursion.)
	out := b.cs.outcome(int(i), int(j))
	return out.i2, out.j2
}

// denseOutcome is the dense memo lookup-or-fill. ok=false declines the
// pair (matrix outgrown) without touching the map memo; it doubles as the
// census core's fastOutcome hook so the per-interaction and geometric
// fallback paths hit the same matrix as round mode.
func (b *BatchSimulator[S]) denseOutcome(i, j int) (pairOutcome, bool) {
	if i >= b.denseStride || j >= b.denseStride {
		if !b.denseEligible() {
			return pairOutcome{}, false
		}
		b.growDense()
	}
	idx := i*b.denseStride + j
	if v := b.dense[idx]; v != denseEmpty {
		return pairOutcome{int32(v >> 16), int32(v & 0xffff)}, true
	}
	cs := &b.cs
	a, c := cs.states[i], cs.states[j]
	a2, c2 := cs.proto.Transition(a, c)
	i2, j2 := i, j
	if a2 != a {
		i2 = cs.stateIndex(a2)
	}
	if c2 != c {
		j2 = cs.stateIndex(c2)
	}
	// Cells pack the outcome indexes as uint16s; an outcome landing beyond
	// the packable range (a very deep state table) is returned uncached
	// rather than corrupted.
	if i2 < 0xffff && j2 < 0xffff {
		b.dense[idx] = uint32(i2)<<16 | uint32(j2)
	}
	return pairOutcome{int32(i2), int32(j2)}, true
}

// growDense (re)sizes the dense memo matrix to the next power of two that
// fits the state table, copying filled rows over.
func (b *BatchSimulator[S]) growDense() {
	k := len(b.cs.states)
	stride := 64
	for stride < k {
		stride *= 2
	}
	next := make([]uint32, stride*stride)
	for i := range next {
		next[i] = denseEmpty
	}
	for i := 0; i < b.denseStride; i++ {
		copy(next[i*stride:i*stride+b.denseStride], b.dense[i*b.denseStride:(i+1)*b.denseStride])
	}
	b.dense = next
	b.denseStride = stride
}

// ensureFen rebuilds the census core's Fenwick table after round mode
// deferred its maintenance, so the per-interaction and geometric fallback
// paths see a coherent cumulative-weight table.
func (b *BatchSimulator[S]) ensureFen() {
	if !b.fenDirty {
		return
	}
	cs := &b.cs
	if cap(cs.fen) < len(cs.counts)+1 {
		cs.fen = make([]int64, len(cs.counts)+1)
	}
	cs.fen = cs.fen[:len(cs.counts)+1]
	cs.fen[0] = 0
	copy(cs.fen[1:], cs.counts)
	for i := 1; i < len(cs.fen); i++ {
		if j := i + i&(-i); j < len(cs.fen) {
			cs.fen[j] += cs.fen[i]
		}
	}
	cs.fenTop = 1
	for cs.fenTop*2 <= len(cs.states) {
		cs.fenTop *= 2
	}
	b.fenDirty = false
}

// String identifies the engine in test names and errors.
func (b *BatchSimulator[S]) String() string {
	return fmt.Sprintf("BatchSimulator(n=%d, steps=%d)", b.cs.n, b.cs.steps)
}
