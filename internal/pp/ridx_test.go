package pp

import (
	"sort"
	"testing"
)

// mixState/mixProto is a small deterministic protocol chosen to churn the
// census hard: a third of the ordered pairs are no-ops, a third move the
// initiator, a third move the responder, with targets scattered by a
// multiplicative hash. Runs discover states lazily, drive counts to zero
// and revive them, and keep a healthy no-op fraction so both the
// per-interaction and the geometric skip paths engage.
type mixState uint8

const mixStates = 24

type mixProto struct{}

func (mixProto) Name() string           { return "mix" }
func (mixProto) InitialState() mixState { return 0 }
func (mixProto) Output(s mixState) Role {
	if s == 0 {
		return Leader
	}
	return Follower
}

func (mixProto) Transition(a, b mixState) (mixState, mixState) {
	s := (7*a + 3*b + 5) % mixStates
	switch s % 3 {
	case 0:
		return a, b
	case 1:
		return s, b
	default:
		return a, (s + 1) % mixStates
	}
}

// checkReactiveIndex asserts that the incrementally maintained index agrees
// bit-for-bit with a from-scratch enumeration: same total weight wc, same
// positive-weight ordered pairs in the same lexicographic cumulative layout,
// and the same pair selected for any sampling target. collectReactivePairs
// only fills the scratch buffers — it never touches the index — so it is a
// sound reference.
func checkReactiveIndex[S comparable](t *testing.T, c *CountSimulator[S]) {
	t.Helper()
	if !c.ridx.valid {
		t.Fatal("reactive-pair index invalid mid-check")
	}
	wcRef := c.collectReactivePairs()
	if c.ridx.wc != wcRef {
		t.Fatalf("index wc = %d, from-scratch enumeration = %d", c.ridx.wc, wcRef)
	}
	k := 0
	var cum uint64
	for _, i := range c.ridx.members {
		ci := c.counts[i]
		if ci == 0 {
			continue
		}
		for _, j := range c.ridx.rows[i] {
			w := c.counts[j]
			if j == i {
				w--
			}
			if w <= 0 {
				continue
			}
			if k >= len(c.pairI) {
				t.Fatalf("index holds extra reactive pair (%d,%d) beyond the %d enumerated", i, j, len(c.pairI))
			}
			if c.pairI[k] != i || c.pairJ[k] != j {
				t.Fatalf("pair %d: index (%d,%d) != enumerated (%d,%d)", k, i, j, c.pairI[k], c.pairJ[k])
			}
			cum += uint64(ci) * uint64(w)
			if c.pairW[k] != cum {
				t.Fatalf("pair %d (%d,%d): cumulative weight index %d != enumerated %d", k, i, j, cum, c.pairW[k])
			}
			k++
		}
	}
	if k != len(c.pairI) {
		t.Fatalf("index enumerates %d positive-weight pairs, from-scratch %d", k, len(c.pairI))
	}
	if wcRef == 0 {
		return
	}
	// Sampling agreement across the layout, including both edges of the
	// support and targets straddling pair boundaries.
	targets := []uint64{0, wcRef - 1, wcRef / 2, wcRef / 3, 2 * wcRef / 3}
	for _, w := range c.pairW {
		if w < wcRef {
			targets = append(targets, w) // first offset of the next pair
		}
		targets = append(targets, w-1) // last offset of this pair
	}
	for _, tgt := range targets {
		gi, gj := c.ridxSamplePair(tgt)
		x := sort.Search(len(c.pairW), func(p int) bool { return c.pairW[p] > tgt })
		if gi != int(c.pairI[x]) || gj != int(c.pairJ[x]) {
			t.Fatalf("target %d: index selects (%d,%d), enumeration (%d,%d)", tgt, gi, gj, c.pairI[x], c.pairJ[x])
		}
	}
}

// TestReactiveIndexEquivalence drives randomized interaction sequences
// through every maintenance path — per-interaction census updates with lazy
// state discovery, death and revival, geometric skip events, and metered
// batch rounds — asserting after every census change that the index still
// matches a from-scratch enumeration bit for bit.
func TestReactiveIndexEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 11, 47} {
		c := NewCountSimulator[mixState](mixProto{}, 240, seed)
		c.reactiveWeight() // initial build; maintenance is incremental from here
		if !c.ridx.valid {
			t.Fatal("reactiveWeight did not build the index")
		}
		checkReactiveIndex(t, c)

		// Per-interaction path: add() folds every count change into the
		// index while new states are still being discovered.
		for ev := 0; ev < 1500; ev++ {
			if c.interactOnce() {
				checkReactiveIndex(t, c)
			}
		}

		// Geometric skip path: advanceBatched prices the event off the
		// index's wc and samples via the two-level walk.
		c.batched = true
		for ev := 0; ev < 300; ev++ {
			c.advanceBatched(c.steps + 1<<20)
			c.batched = true // pin the path regardless of exit decisions
			checkReactiveIndex(t, c)
		}

		// Metered maintenance: rounds arm a budget that may invalidate the
		// index mid-round; whenever it survives it must still be exact, and
		// a rebuild must restore exactness.
		for ev := 0; ev < 200; ev++ {
			c.ridxMeter()
			for k := 0; k < 40; k++ {
				c.interactOnce()
			}
			c.ridxUnmeter()
			if !c.ridx.valid {
				c.ridxRebuild()
			}
			checkReactiveIndex(t, c)
		}
	}
}

// TestReactiveIndexBatchRounds runs the full batch engine — collision-free
// rounds maintaining the index through the bump hook under metering, with
// replayFirstHit restores invalidating it wholesale — and cross-checks the
// index against from-scratch enumeration at round-boundary granularity.
func TestReactiveIndexBatchRounds(t *testing.T) {
	for _, seed := range []uint64{5, 29} {
		b := NewBatchSimulator[mixState](mixProto{}, 4096, seed)
		b.cs.reactiveWeight()
		for chunk := 0; chunk < 120; chunk++ {
			b.RunSteps(512)
			if !b.cs.ridx.valid {
				b.cs.ridxRebuild()
			}
			checkReactiveIndex(t, &b.cs)
		}
	}
}
