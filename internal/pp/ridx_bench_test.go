package pp

import (
	"fmt"
	"testing"
)

// idxBenchProto is a synthetic int-state protocol with tunable support:
// a quarter of the ordered pairs are reactive (initiator advances), so
// reactive rows average width/4 responders — dense enough to be honest
// about maintenance cost, sparse enough that no-ops exist.
type idxBenchProto struct{ k int }

func (idxBenchProto) Name() string      { return "idx-bench" }
func (idxBenchProto) InitialState() int { return 0 }
func (idxBenchProto) Output(int) Role   { return Follower }
func (p idxBenchProto) Transition(a, b int) (int, int) {
	if (a+b)%4 != 0 {
		return a, b
	}
	return (a + 1) % p.k, b
}

// benchCensus builds a census with exactly live occupied states of equal
// multiplicity, with every state pre-registered in the dense table.
func benchCensus(live int) *CountSimulator[int] {
	const perState = 64
	c := NewCountSimulator[int](idxBenchProto{k: live}, live*perState, 7)
	for s := 1; s < live; s++ {
		c.add(c.stateIndex(s), perState)
		c.add(0, -perState)
	}
	return c
}

// BenchmarkReactivePairIndex compares the two ways of keeping the reactive
// pair weights current across one census change (one agent hopping between
// two states, i.e. two count updates): the incremental index pays
// O(row+column) arithmetic per update, where the pre-index engine paid a
// full Θ(live²) re-enumeration per skip event.
func BenchmarkReactivePairIndex(b *testing.B) {
	for _, live := range []int{64, 384, 1024} {
		b.Run(fmt.Sprintf("live=%d/incremental", live), func(b *testing.B) {
			c := benchCensus(live)
			c.reactiveWeight()
			if !c.ridx.valid {
				b.Fatal("index not built")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.add(0, -1)
				c.add(1, 1)
				c.add(1, -1)
				c.add(0, 1)
			}
		})
		b.Run(fmt.Sprintf("live=%d/reenumerate", live), func(b *testing.B) {
			c := benchCensus(live)
			c.ridx.invalidate()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.collectReactivePairs()
			}
		})
	}
}
