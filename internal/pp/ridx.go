package pp

import "sort"

// ridxMembersMax caps the number of states the incremental reactive-pair
// index tracks. Membership is append-only between rebuilds (dead states
// keep their zero-weight adjacency so revival is pure arithmetic), so a
// run that churns through more distinct live states than this rebuilds
// the index — compacting membership to the currently live support — or,
// above the cap, falls back to one-shot enumeration per skip event. The
// cap bounds a rebuild at ridxMembersMax² memoized probes (~2.4M, a few
// milliseconds) and a per-event sampling walk at ridxMembersMax entries.
const ridxMembersMax = 1536

// reactiveIndex incrementally maintains the set of reactive (census-
// changing) ordered state pairs and their total scheduler weight
// wc = Σ cᵢ·(cⱼ−[i=j]), the quantity that sets the geometric no-op skip
// law. Where collectReactivePairs re-enumerates all live² ordered pairs
// per skip event, the index pays O(row+column of the changed state) per
// census change and O(1) per wc read.
//
// Layout: for every member state i, rows[i] holds the responders j with
// (i, j) reactive and cols[j] the initiators i ≠ j with (i, j) reactive,
// both sorted ascending. rowSum[i] = Σ_{j∈rows[i]} (cⱼ−[i=j]) and
// colSum[j] = Σ_{i∈cols[j]} cᵢ cache the marginal weights, so a count
// change at state s updates wc by removing s's row/column contribution at
// the old count, shifting the sums of every row and column s appears in
// by the delta, and re-adding at the new count.
//
// The index is purely a wall-clock accelerator: reactiveWeight and
// samplePair return bit-identical results whether they run on the index
// or on the from-scratch enumeration, so no policy decision ever observes
// the index's lifecycle (validity, rebuilds, metering). That is what lets
// Clone drop the index, replayFirstHit invalidate it wholesale, and the
// bit-determinism fixtures keep passing.
type reactiveIndex struct {
	valid   bool
	member  []bool  // member[s]: s is tracked (indexed by dense state index)
	members []int32 // tracked state indexes, ascending
	rows    [][]int32
	cols    [][]int32
	diag    []bool // diag[s]: (s, s) is reactive
	rowSum  []int64
	colSum  []int64
	wc      uint64

	// Round-mode maintenance metering: a reaction-dense round would pay
	// O(cells·row) keeping the index current, more than the rebuild it is
	// meant to avoid. Each round grants a budget of index operations;
	// exceeding it invalidates the index for the rest of the round. The
	// budget depends only on chain history, so invalidation is as
	// deterministic as every other policy input.
	metered bool
	budget  int64
}

func (r *reactiveIndex) invalidate() {
	r.valid = false
	r.metered = false
}

// ridxGrow extends the per-state arrays to cover states registered since
// the last growth (probing outcomes during maintenance can itself
// register new states).
func (c *CountSimulator[S]) ridxGrow() {
	r := &c.ridx
	for len(r.member) < len(c.states) {
		r.member = append(r.member, false)
		r.rows = append(r.rows, nil)
		r.cols = append(r.cols, nil)
		r.diag = append(r.diag, false)
		r.rowSum = append(r.rowSum, 0)
		r.colSum = append(r.colSum, 0)
	}
}

// ridxRebuild constructs the index from scratch over every state the
// dense table has ever seen: Θ(states²) memoized transition probes, the
// same order as one collectReactivePairs call on a mostly-live table.
// Dead states are indexed too — their pairs carry zero weight, so they
// cost nothing per event, and a state flickering between count 0 and 1
// (a lone leader walking through timer states, a BackUp level draining
// and refilling) is pure arithmetic instead of a membership insertion.
// The caller guarantees len(states) ≤ ridxMembersMax.
func (c *CountSimulator[S]) ridxRebuild() {
	r := &c.ridx
	for _, s := range r.members {
		r.member[s] = false
	}
	r.members = r.members[:0]
	r.wc = 0
	r.metered = false
	c.ridxGrow()
	for i := range c.states {
		r.members = append(r.members, int32(i))
		r.member[i] = true
	}
	for _, s := range r.members {
		r.rows[s] = r.rows[s][:0]
		r.cols[s] = r.cols[s][:0]
		r.diag[s] = false
		r.rowSum[s] = 0
		r.colSum[s] = 0
	}
	for _, i := range r.members {
		ci := c.counts[i]
		for _, j := range r.members {
			out := c.outcome(int(i), int(j))
			if out.i2 == i && out.j2 == j {
				continue
			}
			r.rows[i] = append(r.rows[i], j)
			w := c.counts[j]
			if i == j {
				r.diag[i] = true
				w--
			} else {
				r.cols[j] = append(r.cols[j], i)
				r.colSum[j] += ci
			}
			r.rowSum[i] += w
		}
	}
	for _, i := range r.members {
		if c.counts[i] > 0 {
			r.wc += uint64(c.counts[i]) * uint64(r.rowSum[i])
		}
	}
	r.valid = true
}

// ridxMeter arms the per-round maintenance budget; ridxUnmeter disarms it
// at the round boundary. The grant covers a handful of row scans: enough
// for the sparse rounds the skipper cares about, nothing for
// reaction-dense rounds where the index would be rebuilt cheaper later.
func (c *CountSimulator[S]) ridxMeter() {
	if !c.ridx.valid {
		return
	}
	c.ridx.metered = true
	c.ridx.budget = int64(16*c.live + 256)
}

func (c *CountSimulator[S]) ridxUnmeter() { c.ridx.metered = false }

// ridxUpdate folds one count change (state index i, old → cnew) into the
// index. It runs before the census mutation, so counts[i] still reads
// old and all other counts are current. Cost: O(|rows[i]| + |cols[i]|).
func (c *CountSimulator[S]) ridxUpdate(i int, old, cnew int64) {
	r := &c.ridx
	if i >= len(r.member) || !r.member[i] {
		// First agent ever to enter a state the index has not probed: by
		// the membership invariant (every state live at build time or
		// since is a member) old == 0 here.
		if !c.ridxAddMember(i) {
			return
		}
	}
	if r.metered {
		cost := int64(1 + len(r.rows[i]) + len(r.cols[i]))
		if r.budget < cost {
			r.invalidate()
			return
		}
		r.budget -= cost
	}
	// Remove i's contribution at the old count, shift the sums i appears
	// in, re-add at the new count. rowSum[i] ≥ 0 whenever counts[i] > 0
	// (the diagonal term cᵢ−1 can only dip to −1 at count zero, where the
	// product vanishes), so the uint64 conversions are exact.
	if old != 0 {
		r.wc -= uint64(old) * uint64(r.rowSum[i]+r.colSum[i])
	}
	d := cnew - old
	if r.diag[i] {
		r.rowSum[i] += d
	}
	for _, m := range r.cols[i] {
		r.rowSum[m] += d
	}
	for _, j := range r.rows[i] {
		if int(j) != i {
			r.colSum[j] += d
		}
	}
	if cnew != 0 {
		r.wc += uint64(cnew) * uint64(r.rowSum[i]+r.colSum[i])
	}
}

// ridxAddMember probes the new state against every member and splices it
// into the adjacency. Invoked only from ridxUpdate before the mutation,
// so counts[s] == 0: every pair involving s has zero weight, wc is
// untouched, and only the sums over *other* members' counts are built.
// Reports false after invalidating when membership hit the cap.
func (c *CountSimulator[S]) ridxAddMember(s int) bool {
	r := &c.ridx
	if len(r.members) >= ridxMembersMax {
		r.invalidate()
		return false
	}
	if r.metered {
		cost := int64(2*len(r.members)) + 8
		if r.budget < cost {
			r.invalidate()
			return false
		}
		r.budget -= cost
	}
	c.ridxGrow()
	si := int32(s)
	r.members = insertSorted(r.members, si)
	r.member[s] = true
	r.rows[s] = r.rows[s][:0]
	r.cols[s] = r.cols[s][:0]
	r.diag[s] = false
	r.rowSum[s] = 0
	r.colSum[s] = 0
	for _, m := range r.members {
		if m == si {
			if out := c.outcome(s, s); out.i2 != si || out.j2 != si {
				r.diag[s] = true
				r.rows[s] = insertSorted(r.rows[s], si)
				r.rowSum[s]-- // cₛ − 1 with cₛ = 0
			}
			continue
		}
		if out := c.outcome(s, int(m)); out.i2 != si || out.j2 != m {
			r.rows[s] = insertSorted(r.rows[s], m)
			r.rowSum[s] += c.counts[m]
			r.cols[m] = insertSorted(r.cols[m], si)
		}
		if out := c.outcome(int(m), s); out.i2 != m || out.j2 != si {
			r.rows[m] = insertSorted(r.rows[m], si)
			r.cols[s] = insertSorted(r.cols[s], m)
			r.colSum[s] += c.counts[m]
		}
	}
	return true
}

// ridxSamplePair maps target ∈ [0, wc) to the reactive ordered pair at
// that offset of the cumulative weight layout: an outer walk over members
// in ascending state-index order subtracting whole-row weights, then an
// inner walk over the hit row's sorted responders. Pairs involving
// count-zero states contribute zero width, so the layout is positionally
// identical to collectReactivePairs' lexicographic enumeration over live
// states — the same target selects the same pair on either path.
func (c *CountSimulator[S]) ridxSamplePair(target uint64) (int, int) {
	r := &c.ridx
	for _, i := range r.members {
		ci := c.counts[i]
		if ci == 0 {
			continue
		}
		if rw := uint64(ci) * uint64(r.rowSum[i]); target >= rw {
			target -= rw
			continue
		}
		for _, j := range r.rows[i] {
			w := c.counts[j]
			if j == i {
				w--
			}
			if w <= 0 {
				continue
			}
			pw := uint64(ci) * uint64(w)
			if target < pw {
				return int(i), int(j)
			}
			target -= pw
		}
		break
	}
	panic("pp: reactive-pair index sampling underflow")
}

// insertSorted splices v into the ascending slice s, preserving order.
// Steady-state maintenance never inserts (membership and adjacency are
// append-only between rebuilds), so the amortized append cost is paid
// only while new states are being discovered.
func insertSorted(s []int32, v int32) []int32 {
	pos := sort.Search(len(s), func(x int) bool { return s[x] >= v })
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

// reactiveWeight returns the census's total reactive scheduler weight wc.
// It prefers the incremental index (O(1) warm, one Θ(live²) rebuild cold)
// and falls back to from-scratch enumeration when the live support
// exceeds the membership cap. Both paths return the identical value and
// feed identical pair selection, so callers — in particular the hybrid
// mode controller — never observe which path ran: decisions remain
// deterministic functions of chain history even across Clone, which
// drops the index.
func (c *CountSimulator[S]) reactiveWeight() uint64 {
	if c.ridx.valid {
		return c.ridx.wc
	}
	if len(c.states) <= ridxMembersMax {
		c.ridxRebuild()
		return c.ridx.wc
	}
	return c.collectReactivePairs()
}

// samplePair maps target ∈ [0, wc) — wc as returned by the immediately
// preceding reactiveWeight call on the same census — to its reactive
// ordered pair.
func (c *CountSimulator[S]) samplePair(target uint64) (int, int) {
	if c.ridx.valid {
		return c.ridxSamplePair(target)
	}
	k := sort.Search(len(c.pairW), func(x int) bool { return c.pairW[x] > target })
	return int(c.pairI[k]), int(c.pairJ[k])
}

// skipBreakEven is the break-even length of one geometric skip event in
// scheduler steps: an event costs an O(live) index walk (selection plus
// maintenance) against a few nanoseconds per interaction on the round or
// per-interaction paths, so a skip pays once it jumps at least ~live/4
// interactions, floored by the census engine's exit threshold. Before the
// incremental index this was quadratic (live²/4, the enumeration cost) —
// the linear form is what makes skipping viable on wide censuses like
// PLL's ~900-state BackUp plateau.
func skipBreakEven(live int) uint64 {
	if thr := uint64(live) / 4; thr > countBatchExitSkip {
		return thr
	}
	return countBatchExitSkip
}

// skipEntryStreak is the sampled no-op streak that hands the census to
// the geometric skipper. Within the index's membership cap the standard
// streak suffices — the one-time rebuild amortizes over the skip phase.
// Beyond the cap every event re-enumerates Θ(live²) pairs, so entry
// demands evidence proportional to the live support; there is no hard
// cap, only a price.
func skipEntryStreak(live int) int {
	if live <= ridxMembersMax {
		return countNoopStreak
	}
	return live
}
