// Package pptest provides a small declarative harness for population
// protocol tests: a TestCase value names the protocol, population size,
// seed, step budget and simulation engine of one scenario, Run executes an
// action against a freshly constructed simulator under a canonical subtest
// name, and TestString formats that name so related tests across packages
// stay greppable ("PLL/n=128/seed=3/engine=count/elect").
//
// The harness exists so that protocol tests state *what* configuration they
// exercise instead of repeating engine-construction plumbing, and so that
// every test parameterized this way runs unchanged on every simulation
// engine (RunAllEngines).
package pptest

import (
	"fmt"
	"testing"

	"popproto/internal/pp"
)

// DefaultMaxSteps is the step budget used when a TestCase leaves MaxSteps
// zero: effectively unbounded for test-scale populations, while still
// terminating a run that can never stabilize.
const DefaultMaxSteps = 1 << 40

// TestCase describes one protocol scenario declaratively.
type TestCase[S comparable] struct {
	// Proto is the protocol under test.
	Proto pp.Protocol[S]
	// N is the population size.
	N int
	// Seed seeds the scheduler; fixed seeds make runs reproducible.
	Seed uint64
	// MaxSteps caps the interaction count; 0 means DefaultMaxSteps.
	MaxSteps uint64
	// Engine selects the simulation engine; the zero value is EngineAgent.
	Engine pp.Engine
}

// Budget returns the effective step budget of the case.
func (tc TestCase[S]) Budget() uint64 {
	if tc.MaxSteps == 0 {
		return DefaultMaxSteps
	}
	return tc.MaxSteps
}

// NewRunner constructs the case's simulator.
func (tc TestCase[S]) NewRunner() pp.Runner[S] {
	return pp.NewRunner(tc.Engine, tc.Proto, tc.N, tc.Seed)
}

// WithEngine returns a copy of the case on the given engine.
func (tc TestCase[S]) WithEngine(e pp.Engine) TestCase[S] {
	tc.Engine = e
	return tc
}

// TestString formats the canonical subtest name for tc running opname.
func TestString[S comparable](tc TestCase[S], opname string) string {
	return fmt.Sprintf("%s/n=%d/seed=%d/engine=%s/%s",
		tc.Proto.Name(), tc.N, tc.Seed, tc.Engine, opname)
}

// Run executes action against a freshly constructed simulator for tc, as a
// subtest named TestString(tc, opname). It reports whether the subtest
// passed (the testing.T.Run contract).
func Run[S comparable](t *testing.T, tc TestCase[S], opname string,
	action func(t *testing.T, tc TestCase[S], sim pp.Runner[S])) bool {
	t.Helper()
	return t.Run(TestString(tc, opname), func(t *testing.T) {
		action(t, tc, tc.NewRunner())
	})
}

// RunAllEngines executes action once per simulation engine, overriding
// tc.Engine. Use it for behavior that must hold identically on every
// engine. It reports whether each engine's subtest passed.
func RunAllEngines[S comparable](t *testing.T, tc TestCase[S], opname string,
	action func(t *testing.T, tc TestCase[S], sim pp.Runner[S])) bool {
	t.Helper()
	ok := true
	for _, e := range pp.Engines() {
		ok = Run(t, tc.WithEngine(e), opname, action) && ok
	}
	return ok
}

// ElectOne drives sim to a single leader within tc's budget, failing t if
// the run does not stabilize, and returns the step count at stabilization.
func ElectOne[S comparable](t testing.TB, tc TestCase[S], sim pp.Runner[S]) uint64 {
	t.Helper()
	steps, ok := sim.RunUntilLeaders(1, tc.Budget())
	if !ok {
		t.Fatalf("%s: not stabilized after %d steps (%d leaders)",
			TestString(tc, "elect"), steps, sim.Leaders())
	}
	if sim.Leaders() != 1 {
		t.Fatalf("%s: %d leaders after stabilization", TestString(tc, "elect"), sim.Leaders())
	}
	return steps
}

// Duel is the constant-state leader election protocol of Angluin et al.
// (two leaders meet, the responder yields) as a minimal test fixture: two
// states, monotone leader count, guaranteed stabilization. The full
// baseline lives in internal/baseline; this copy keeps test fixtures free
// of protocol-package dependencies.
type Duel struct{}

// Name implements pp.Protocol.
func (Duel) Name() string { return "duel-fixture" }

// InitialState implements pp.Protocol: every agent starts as a leader.
func (Duel) InitialState() bool { return true }

// Output implements pp.Protocol.
func (Duel) Output(s bool) pp.Role {
	if s {
		return pp.Leader
	}
	return pp.Follower
}

// Transition implements pp.Protocol: L×L → L×F, all else unchanged.
func (Duel) Transition(a, b bool) (bool, bool) {
	if a && b {
		return true, false
	}
	return a, b
}

// Frozen is a fixture protocol that never changes state and has no
// leaders: its populations are dead configurations, useful for budget and
// deadlock tests.
type Frozen struct{}

// Name implements pp.Protocol.
func (Frozen) Name() string { return "frozen-fixture" }

// InitialState implements pp.Protocol.
func (Frozen) InitialState() int { return 0 }

// Output implements pp.Protocol.
func (Frozen) Output(int) pp.Role { return pp.Follower }

// Transition implements pp.Protocol: the identity.
func (Frozen) Transition(a, b int) (int, int) { return a, b }
