package pptest

import (
	"testing"

	"popproto/internal/pp"
	"popproto/internal/stats"
)

// equivAlpha is the rejection level of the equivalence suite. Seeds are
// fixed, so each test is deterministic; under the null hypothesis (which
// holds by construction — every engine samples the same Markov chain) the
// p-values are uniform, and the chosen seeds give comfortable margins.
const equivAlpha = 0.001

// equivBins is the bin count of the pooled-quantile χ² statistic.
const equivBins = 6

// EquivalenceFixture is one protocol scenario of the cross-engine
// equivalence suite: a named election whose parallel stabilization-time
// sample can be collected on any engine. Fixtures are type-erased so
// scenarios over different state types share one table; build them with
// EquivFixture or EquivFixtureConfigured.
type EquivalenceFixture struct {
	// Name labels the fixture's subtest.
	Name string
	// Times collects the fixture's parallel stabilization times on one
	// engine, failing t if any run misses the step budget.
	Times func(t *testing.T, engine pp.Engine, seed uint64) []float64
}

// EquivFixture builds an equivalence fixture: reps independent elections
// of proto on n agents, each capped at budget interactions.
func EquivFixture[S comparable](
	name string, proto pp.Protocol[S], n, reps int, budget uint64,
) EquivalenceFixture {
	return EquivFixtureConfigured[S](name, proto, n, reps, budget, nil)
}

// EquivFixtureConfigured is EquivFixture with a per-run hook: configure is
// called on every freshly constructed simulator before the election runs
// (on every engine — hooks that only apply to one engine should type-assert
// and return). The forced-handover tests use it to pin the hybrid engine's
// mode policy at adversarial switch points; any deterministic configuration
// is distribution-preserving, which is exactly what the suite then checks.
func EquivFixtureConfigured[S comparable](
	name string, proto pp.Protocol[S], n, reps int, budget uint64,
	configure func(sim pp.Runner[S], repSeed uint64),
) EquivalenceFixture {
	return EquivalenceFixture{
		Name: name,
		Times: func(t *testing.T, engine pp.Engine, seed uint64) []float64 {
			t.Helper()
			times := make([]float64, reps)
			failed := make([]bool, reps)
			pp.Parallel(reps, 0, seed, func(rep int, repSeed uint64) {
				sim := pp.NewRunner(engine, proto, n, repSeed)
				if configure != nil {
					configure(sim, repSeed)
				}
				steps, ok := sim.RunUntilLeaders(1, budget)
				times[rep] = float64(steps) / float64(n)
				failed[rep] = !ok
			})
			for rep, f := range failed {
				if f {
					t.Fatalf("%s: %s engine, rep %d: did not stabilize within %d steps",
						name, engine, rep, budget)
				}
			}
			return times
		},
	}
}

// Equivalence runs the cross-engine equivalence suite: for every fixture,
// the stabilization-time sample of every engine in engines[1:] is compared
// against the sample of the reference engine engines[0] with both the
// two-sample Kolmogorov–Smirnov test and a two-sample χ² over
// pooled-quantile bins, rejecting at α = 0.001. Subtests are named
// "<fixture>/engine=<e>", so one -run regex pins any cell.
//
// Every engine realizes the same uniform-scheduler Markov chain, so the
// null hypothesis holds by construction; a rejection means an engine (or a
// handover policy under test) distorted the sampled distribution. Adding a
// future engine to the full suite is one entry in engines.
func Equivalence(t *testing.T, fixtures []EquivalenceFixture, engines []pp.Engine) {
	if len(engines) < 2 {
		t.Fatal("pptest.Equivalence needs a reference engine and at least one candidate")
	}
	for _, fx := range fixtures {
		t.Run(fx.Name, func(t *testing.T) {
			ref := engines[0]
			refTimes := fx.Times(t, ref, 1+uint64(ref))
			for _, e := range engines[1:] {
				t.Run("engine="+e.String(), func(t *testing.T) {
					times := fx.Times(t, e, 1+uint64(e))
					ks := stats.KSTwoSample(refTimes, times)
					if ks.P < equivAlpha {
						t.Errorf("%s vs %s stabilization times differ (KS): D=%.4f p=%.6f",
							e, ref, ks.Stat, ks.P)
					}
					chi, p := pooledChiSquare(refTimes, times, equivBins)
					if p < equivAlpha {
						t.Errorf("%s vs %s stabilization times differ (χ²): χ²=%.2f p=%.6f",
							e, ref, chi, p)
					}
				})
			}
		})
	}
}

// pooledChiSquare bins both samples at the pooled sample's quantiles and
// returns the two-sample χ² statistic with its p-value (bins−1 degrees of
// freedom). Quantile binning makes the expected occupancies uniform under
// the null without assuming any parametric form.
func pooledChiSquare(a, b []float64, bins int) (chi, p float64) {
	pooled := append(append([]float64(nil), a...), b...)
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = stats.Quantile(pooled, float64(i+1)/float64(bins))
	}
	binOf := func(v float64) int {
		k := 0
		for k < len(edges) && v > edges[k] {
			k++
		}
		return k
	}
	oa := make([]float64, bins)
	ob := make([]float64, bins)
	for _, v := range a {
		oa[binOf(v)]++
	}
	for _, v := range b {
		ob[binOf(v)]++
	}
	for i := range oa {
		if oa[i]+ob[i] == 0 {
			continue
		}
		d := oa[i] - ob[i]
		chi += d * d / (oa[i] + ob[i])
	}
	return chi, stats.GammaQ(float64(bins-1)/2, chi/2)
}
