package pptest_test

import (
	"testing"

	"popproto/internal/pp"
	"popproto/internal/pp/pptest"
)

func TestTestString(t *testing.T) {
	tc := pptest.TestCase[bool]{Proto: pptest.Duel{}, N: 128, Seed: 3}
	if got, want := pptest.TestString(tc, "elect"), "duel-fixture/n=128/seed=3/engine=agent/elect"; got != want {
		t.Fatalf("TestString = %q, want %q", got, want)
	}
	tc = tc.WithEngine(pp.EngineCount)
	if got, want := pptest.TestString(tc, "verify"), "duel-fixture/n=128/seed=3/engine=count/verify"; got != want {
		t.Fatalf("TestString = %q, want %q", got, want)
	}
}

func TestBudgetDefault(t *testing.T) {
	tc := pptest.TestCase[bool]{Proto: pptest.Duel{}, N: 4, Seed: 1}
	if tc.Budget() != pptest.DefaultMaxSteps {
		t.Fatalf("default budget = %d", tc.Budget())
	}
	tc.MaxSteps = 77
	if tc.Budget() != 77 {
		t.Fatalf("explicit budget = %d", tc.Budget())
	}
}

func TestRunAllEnginesCoversBothEngines(t *testing.T) {
	seen := map[string]bool{}
	pptest.RunAllEngines(t, pptest.TestCase[bool]{Proto: pptest.Duel{}, N: 8, Seed: 1}, "probe",
		func(t *testing.T, tc pptest.TestCase[bool], sim pp.Runner[bool]) {
			seen[tc.Engine.String()] = true
			if sim.N() != 8 {
				t.Fatalf("runner has n=%d", sim.N())
			}
		})
	if !seen["agent"] || !seen["count"] {
		t.Fatalf("engines covered: %v", seen)
	}
}

func TestFixtures(t *testing.T) {
	var d pp.Protocol[bool] = pptest.Duel{}
	if d.Output(d.InitialState()) != pp.Leader {
		t.Fatal("duel agents must start as leaders")
	}
	var f pp.Protocol[int] = pptest.Frozen{}
	if a, b := f.Transition(1, 2); a != 1 || b != 2 {
		t.Fatal("frozen must be the identity")
	}
}
