package pp

import (
	"fmt"
	"strings"
)

// Runner is the observable surface shared by the simulation engines: the
// per-agent Simulator, the census-based CountSimulator, the round-based
// BatchSimulator and the phase-adaptive HybridSimulator. Experiments,
// commands and benchmarks program against this interface so the engine is a
// runtime choice (see Engine); everything a protocol's *observable* behavior
// defines — step counts, parallel time, leader census, stabilization,
// role-change accounting — is available on every engine with identical
// semantics.
//
// Agent identities are the one place the engines differ: the census engine
// tracks only state multiplicities, so its ForEach ids are synthetic (agents
// in the population protocol model are anonymous, so no observable quantity
// may depend on them). Operations that address individual agents (State,
// SetState, Interact, RunSchedule) are deliberately not part of Runner; they
// remain on Simulator for the safety experiments that need them.
type Runner[S comparable] interface {
	// N returns the population size.
	N() int
	// Steps returns the number of interactions executed so far.
	Steps() uint64
	// ParallelTime returns steps divided by n, the paper's time measure.
	ParallelTime() float64
	// Leaders returns the current number of agents whose output is Leader.
	Leaders() int
	// RoleChanges returns the cumulative number of agent output changes.
	RoleChanges() uint64
	// Census returns the multiset of current agent states.
	Census() map[S]int
	// ForEach calls f for every agent id and state. The census engine
	// synthesizes ids in census order.
	ForEach(f func(id int, state S))
	// Step executes one uniformly random interaction.
	Step()
	// RunSteps executes k uniformly random interactions.
	RunSteps(k uint64)
	// RunUntilLeaders runs until at most target leaders remain or maxSteps
	// interactions have been executed.
	RunUntilLeaders(target int, maxSteps uint64) (steps uint64, ok bool)
	// VerifyStable runs extra interactions and reports whether no output
	// changed during them.
	VerifyStable(extra uint64) bool
	// TrackStates enables recording of distinct states observed.
	TrackStates()
	// DistinctStates returns the number of distinct states observed since
	// TrackStates, or 0 if tracking is disabled.
	DistinctStates() int
	// CloneRunner returns an independent deep copy, including the scheduler
	// position.
	CloneRunner() Runner[S]
}

// Engine selects a simulation engine implementation.
type Engine uint8

const (
	// EngineAgent is the per-agent engine (Simulator): one state per agent,
	// one sampled interaction per step. Memory Θ(n); supports agent-indexed
	// operations and deterministic schedules.
	EngineAgent Engine = iota
	// EngineCount is the census engine (CountSimulator): one count per
	// distinct state, batched skipping of census-preserving interactions.
	// Memory Θ(states ever observed) — tiny for small-state-space
	// protocols (PLL, Angluin, Lottery: polylog(n) states), and the only
	// engine practical for them at n ≳ 10⁷. For protocols whose agents
	// carry poly(n) distinct values (MaxID) the observed-state table grows
	// toward Θ(n) and the per-agent engine is the better choice.
	EngineCount
	// EngineBatch is the collision-free round engine (BatchSimulator): the
	// census representation of EngineCount plus aggregate simulation of
	// Θ(√n) interactions per round via birthday-law round lengths and
	// hypergeometric slot assignment, making per-interaction cost
	// sub-constant in reaction-dense phases. It falls back to the census
	// engine's per-interaction and geometric no-op paths where rounds do
	// not pay, so it is the fastest choice for small-state-space protocols
	// at large n (PLL, Angluin, Lottery from n ≈ 10⁶ up).
	EngineBatch
	// EngineHybrid is the phase-adaptive engine (HybridSimulator): the
	// batch engine's round machinery plus the census engine's
	// per-interaction and geometric no-op paths, driven by an explicit
	// mode controller that measures census concentration and realized
	// per-phase payoff online (distinct live states, reactive-pair mass,
	// realized round length versus geometric skip length) and hands the
	// census over between modes at interaction boundaries. Handover
	// carries only the census multiset and the rng stream position — both
	// engine-agnostic — so every mix of modes samples the exact
	// uniform-scheduler chain. The best default for full O(log n)-time
	// elections at large n, whose phase structure no single mode wins.
	EngineHybrid
)

// EngineAuto is the pseudo-engine "auto": not a simulator, but a
// user-visible request to pick the engine per protocol and population
// size. It parses (ParseEngine) and travels through specs, but is never
// simulated: the registry resolves it to a concrete engine via
// Entry.RecommendedEngine before any population is constructed, so it is
// excluded from Engines and from Valid. The value is far from the
// declared engines so a future engine cannot collide with it.
const EngineAuto Engine = 0xff

// String implements fmt.Stringer; the values round-trip through ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineAgent:
		return "agent"
	case EngineCount:
		return "count"
	case EngineBatch:
		return "batch"
	case EngineHybrid:
		return "hybrid"
	case EngineAuto:
		return "auto"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// Valid reports whether e is one of the declared engines.
func (e Engine) Valid() bool {
	for _, v := range Engines() {
		if e == v {
			return true
		}
	}
	return false
}

// ParseEngine parses the command-line spelling of an engine name,
// including the pseudo-engine "auto". The error for an unknown name
// enumerates the valid spellings, derived from Engines so it cannot
// drift as engines are added.
func ParseEngine(s string) (Engine, error) {
	if s == EngineAuto.String() {
		return EngineAuto, nil
	}
	engines := Engines()
	names := make([]string, len(engines))
	for i, e := range engines {
		if s == e.String() {
			return e, nil
		}
		names[i] = e.String()
	}
	return 0, fmt.Errorf("pp: unknown engine %q (valid engines: %s, %s)",
		s, strings.Join(names, ", "), EngineAuto)
}

// Engines returns all available engines, in declaration order.
func Engines() []Engine {
	return []Engine{EngineAgent, EngineCount, EngineBatch, EngineHybrid}
}

// EngineNames returns the command-line spellings of all engines, in
// declaration order — the single source for flag usage strings and
// catalogs, so help text cannot drift as engines are added.
func EngineNames() []string {
	engines := Engines()
	names := make([]string, len(engines))
	for i, e := range engines {
		names[i] = e.String()
	}
	return names
}

// EngineChoices is EngineNames plus the pseudo-engine "auto" — the full
// set of spellings ParseEngine accepts, for flag usage strings and
// catalogs that present the user-facing choice.
func EngineChoices() []string {
	return append(EngineNames(), EngineAuto.String())
}

// NewRunner constructs a fresh population of n agents in the protocol's
// initial state on the selected engine, with the scheduler seeded by seed.
// All engines realize the same Markov chain: for a fixed engine a seed
// reproduces the run exactly, and across engines all observable
// distributions agree (see the engine-equivalence tests).
func NewRunner[S comparable](engine Engine, proto Protocol[S], n int, seed uint64) Runner[S] {
	switch engine {
	case EngineCount:
		return NewCountSimulator(proto, n, seed)
	case EngineBatch:
		return NewBatchSimulator(proto, n, seed)
	case EngineHybrid:
		return NewHybridSimulator(proto, n, seed)
	case EngineAuto:
		// "auto" is resolved by the registry (per protocol and n) before
		// construction; reaching here is a programmer error, not a spec the
		// user can fix.
		panic("pp: EngineAuto must be resolved to a concrete engine before NewRunner")
	default:
		return NewSimulator(proto, n, seed)
	}
}

// All engines implement Runner.
var (
	_ Runner[bool] = (*Simulator[bool])(nil)
	_ Runner[bool] = (*CountSimulator[bool])(nil)
	_ Runner[bool] = (*BatchSimulator[bool])(nil)
	_ Runner[bool] = (*HybridSimulator[bool])(nil)
)
