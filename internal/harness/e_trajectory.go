package harness

import (
	"fmt"
	"strings"

	"popproto/internal/asciichart"
	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/trace"
)

// trajectoryExperiment renders the figure the paper describes in prose but
// never plots: the anatomy of one election. It traces the leader count and
// the population's progress through the status groups and epochs over a
// representative run, annotating where each module does its work.
func trajectoryExperiment() Experiment {
	e := Experiment{
		ID:    "trajectory",
		Title: "anatomy of one election: leader count and epoch occupancy over time",
		Paper: "§3.1 module pipeline (QuickElimination → Tournament ×2 → BackUp)",
	}
	e.Run = func(cfg Config) Result {
		n := 4096
		if cfg.Quick {
			n = 512
		}
		p := core.NewForN(n)
		sim := pp.NewRunner[core.State](engineFor(cfg, n), p, n, cfg.Seed)
		rec := trace.NewRecorder(sim, 1.0,
			trace.LeaderProbe[core.State](),
			trace.CountProbe[core.State]("unassigned (V_X)", func(s core.State) bool {
				return s.Status == core.StatusX
			}),
			trace.CountProbe[core.State]("epoch ≥ 2", func(s core.State) bool {
				return s.Epoch >= 2
			}),
			trace.CountProbe[core.State]("epoch 4", func(s core.State) bool {
				return s.Epoch == 4
			}),
		)
		horizon := 30 * float64(core.CeilLog2(n))
		reachedOne := rec.RunUntil(horizon, func(s pp.Runner[core.State]) bool {
			return s.Leaders() == 1
		})

		leaders, _ := rec.SeriesByName("leaders")
		unassigned, _ := rec.SeriesByName("unassigned (V_X)")

		var body strings.Builder
		fmt.Fprintf(&body, "One run at n = %d (seed %d), sampled every parallel time unit.\n\n", n, cfg.Seed)
		body.WriteString("```\n")
		body.WriteString(rec.Chart(asciichart.Options{
			Width: 66, Height: 18, YLabel: "agents",
		}))
		body.WriteString("```\n\n")
		fmt.Fprintf(&body, "Final leader count %d at t = %s parallel time; the leader count collapses "+
			"during QuickElimination (while V_X drains in the first few units), and the epoch "+
			"series step up every ≈ cmax/2 = %.1f parallel time as the count-up clock wraps.\n",
			int(leaders.Last()), f1(sim.ParallelTime()), float64(p.Params().CMax)/2)

		verdicts := []Verdict{
			{
				Claim:  "the run elects exactly one leader within the charted horizon",
				Pass:   reachedOne,
				Detail: fmt.Sprintf("leaders = %d at t = %s", int(leaders.Last()), f1(sim.ParallelTime())),
			},
			{
				Claim:  "every agent is assigned a status early in the run (Lemma 4 regime)",
				Pass:   unassigned.Last() == 0,
				Detail: fmt.Sprintf("|V_X| = %d at the end of the trace", int(unassigned.Last())),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
