package harness

import (
	"fmt"
	"strings"
	"sync"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/table"
)

// lemma8Experiment measures how often QuickElimination plus the two
// Tournament rounds finish the election before any agent enters the fourth
// epoch — the paper claims probability 1 − O(1/log n), which is exactly
// why BackUp contributes only O(1/log n)·O(log² n) = O(log n) to the
// expectation.
func lemma8Experiment() Experiment {
	e := Experiment{
		ID:    "lemma8",
		Title: "unique leader before epoch 4 with probability 1 − O(1/log n)",
		Paper: "Lemma 8",
	}
	e.Run = func(cfg Config) Result {
		sizes := []int{1024, 4096}
		repCount := reps(cfg, 300)
		if cfg.Quick {
			sizes = []int{256}
			repCount = 50
		}

		tbl := table.New("n", "runs with unique leader before epoch 4",
			"success rate", "1 − 1/lg n (scale reference)")
		rates := make([]float64, 0, len(sizes))
		for _, n := range sizes {
			p := core.NewForN(n)
			var mu sync.Mutex
			successes := 0
			pp.Parallel(repCount, cfg.Workers, cfg.Seed+uint64(n), func(_ int, seed uint64) {
				sim := pp.NewSimulator[core.State](p, n, seed)
				_, ok := runUntil(sim, uint64(n/2), logBudget(n), func(s pp.Runner[core.State]) bool {
					inFourth := false
					s.ForEach(func(_ int, st core.State) {
						if st.Epoch == 4 {
							inFourth = true
						}
					})
					return inFourth
				})
				if !ok {
					return
				}
				if sim.Leaders() == 1 {
					mu.Lock()
					successes++
					mu.Unlock()
				}
			})
			rate := float64(successes) / float64(repCount)
			rates = append(rates, rate)
			ref := 1 - 1/float64(core.CeilLog2(n))
			tbl.AddRowf(n, fmt.Sprintf("%d/%d", successes, repCount), f3(rate), f3(ref))
		}

		var body strings.Builder
		fmt.Fprintf(&body, "%d runs per size; runs are stopped at the first epoch-4 agent (censuses every n/2 steps).\n\n", repCount)
		body.WriteString(tbl.Markdown())

		pass := true
		for _, r := range rates {
			if r < pick(cfg, 0.9, 0.75) {
				pass = false
			}
		}
		improving := len(rates) < 2 || rates[len(rates)-1] >= rates[0]-0.05
		verdicts := []Verdict{
			{
				Claim:  "unique leader before epoch 4 w.p. 1 − O(1/log n) (Lemma 8)",
				Pass:   pass,
				Detail: fmt.Sprintf("success rates %v", rates),
			},
			{
				Claim:  "failure probability does not grow with n",
				Pass:   improving,
				Detail: fmt.Sprintf("rates across sizes %v", rates),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
