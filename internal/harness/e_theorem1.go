package harness

import (
	"fmt"
	"math"
	"strings"

	"popproto/internal/asciichart"
	"popproto/internal/core"
	"popproto/internal/registry"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// theorem1Experiment reproduces the headline result: PLL stabilizes in
// O(log n) expected parallel time (Theorem 1). It sweeps n, estimates the
// expectation, and tests the growth shape two ways: a log-log power fit
// (logarithmic data has exponent near 0, linear data near 1) and the
// goodness of the direct a·lg n + b fit.
func theorem1Experiment() Experiment {
	e := Experiment{
		ID:    "theorem1",
		Title: "PLL stabilization time is O(log n) in expectation",
		Paper: "Theorem 1 (with Lemmas 8, 9, 11, 12)",
	}
	e.Run = func(cfg Config) Result {
		ns := sweepSizes(cfg, true)
		rep := reps(cfg, 150)

		tbl := table.New("n", "m", "mean parallel time", "95% CI", "median", "p90", "mean / lg n")
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		ratioLo, ratioHi := math.Inf(1), math.Inf(-1)
		allOK := true
		for i, n := range ns {
			proto := core.NewForN(n)
			agg := measureEnsemble(cfg, registry.Spec{
				Protocol: "pll", N: n, Engine: cfg.Engine, Seed: cfg.Seed + uint64(i),
			}, rep, logBudget(n))
			allOK = allOK && agg.Stabilized == agg.Replicates
			lg := float64(core.CeilLog2(n))
			tbl.AddRowf(n, proto.Params().M, f2(agg.MeanParallelTime),
				fmt.Sprintf("[%s, %s]", f2(agg.CILo), f2(agg.CIHi)),
				f2(agg.P50), f2(agg.P90), f2(agg.MeanParallelTime/lg))
			xs = append(xs, float64(n))
			ys = append(ys, agg.MeanParallelTime)
			ratioLo = math.Min(ratioLo, agg.MeanParallelTime/lg)
			ratioHi = math.Max(ratioHi, agg.MeanParallelTime/lg)
		}

		power := stats.PowerFit(xs, ys)
		logFit := stats.FitLogX(xs, ys)

		var body strings.Builder
		fmt.Fprintf(&body, "%d replicates per size (multi-core ensemble executor); "+
			"times in parallel time (steps / n).\n\n", cellReps(cfg, rep))
		body.WriteString(tbl.Markdown())
		body.WriteString("\nThe distribution is bimodal: most runs finish during QuickElimination " +
			"(the low median), while runs whose lottery ties carry into the Tournament epochs " +
			"(which open after ≈ cmax/2 = 20.5·m parallel time) populate the slow mode — still " +
			"Θ(log n), as the fits confirm.\n")
		fmt.Fprintf(&body, "\nLog-log power fit: time ∝ n^%s (R² %s) — logarithmic growth shows as exponent ≈ 0, linear as ≈ 1.\n",
			f3(power.Slope), f3(power.R2))
		fmt.Fprintf(&body, "Direct fit: time = %s·lg n %+.2f (R² %s).\n\n",
			f2(logFit.Slope), logFit.Intercept, f3(logFit.R2))
		body.WriteString("```\n")
		body.WriteString(asciichart.Plot([]asciichart.Series{
			{Name: "PLL mean stabilization time", X: xs, Y: ys},
		}, asciichart.Options{LogX: true, XLabel: "n", YLabel: "parallel time"}))
		body.WriteString("```\n")

		verdicts := []Verdict{
			{
				Claim: "every run elects exactly one leader (Theorem 1, probability 1)",
				Pass:  allOK,
				Detail: fmt.Sprintf("%d/%d sizes with all %d replicates stabilized",
					len(ns), len(ns), cellReps(cfg, rep)),
			},
			{
				Claim: "expected time grows logarithmically, not polynomially (Theorem 1)",
				Pass:  power.Slope < pick(cfg, 0.35, 0.65),
				Detail: fmt.Sprintf("log-log exponent %s (linear time would give ≈ 1)",
					f3(power.Slope)),
			},
		}
		if !cfg.Quick {
			// At smoke-test scale the sweep is too narrow for the band to
			// carry signal; the claim is only testable at full scale. The
			// check is a flat ratio band: time/lg n confined to a narrow
			// constant range across a 64× range of n — a robust version of
			// "time = Θ(lg n)" that tolerates the bimodal sampling noise.
			verdicts = append(verdicts, Verdict{
				Claim: "time per lg n is a stable constant across the sweep",
				Pass:  ratioHi < 2*ratioLo,
				Detail: fmt.Sprintf("mean/lg n within [%s, %s]; direct fit a = %s, R² = %s",
					f2(ratioLo), f2(ratioHi), f2(logFit.Slope), f3(logFit.R2)),
			})
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
