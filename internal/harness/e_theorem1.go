package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"popproto/internal/asciichart"
	"popproto/internal/core"
	"popproto/internal/sweep"
	"popproto/internal/table"
)

// theorem1Experiment reproduces the headline result: PLL stabilizes in
// O(log n) expected parallel time (Theorem 1). It is expressed as a
// parameter sweep over the n grid — the same machinery behind
// popprotod's /v1/sweeps and cmd/sweep — so the report's cells are
// full ensembles with CIs and the growth shape comes from the sweep's
// scaling summary: the log-log power exponent (logarithmic data has
// exponent near 0, linear data near 1) and the direct a·lg n + b fit.
func theorem1Experiment() Experiment {
	e := Experiment{
		ID:    "theorem1",
		Title: "PLL stabilization time is O(log n) in expectation",
		Paper: "Theorem 1 (with Lemmas 8, 9, 11, 12)",
	}
	e.Run = func(cfg Config) Result {
		ns := sweepSizes(cfg, true)
		rep := cellReps(cfg, reps(cfg, 150))

		res, err := sweep.Run(context.Background(), sweep.Spec{
			Protocols:  []string{"pll"},
			Ns:         ns,
			Engine:     cfg.Engine,
			Seed:       cfg.Seed,
			Replicates: rep,
			CITarget:   cfg.CITarget,
		}, sweep.Options{Workers: cfg.Workers})
		if err != nil {
			// The grid is harness-generated against the registry; failure is
			// a bug, not a measurement.
			panic(fmt.Sprintf("harness: theorem1 sweep: %v", err))
		}

		tbl := table.New("n", "m", "mean parallel time", "95% CI", "median", "p90", "mean / lg n")
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		ratioLo, ratioHi := math.Inf(1), math.Inf(-1)
		allOK := true
		for _, o := range res.Outcomes {
			agg := o.Aggregates
			proto := core.NewForN(o.N)
			allOK = allOK && agg.Stabilized == agg.Replicates
			lg := float64(core.CeilLog2(o.N))
			tbl.AddRowf(o.N, proto.Params().M, f2(agg.MeanParallelTime),
				fmt.Sprintf("[%s, %s]", f2(agg.CILo), f2(agg.CIHi)),
				f2(agg.P50), f2(agg.P90), f2(agg.MeanParallelTime/lg))
			xs = append(xs, float64(o.N))
			ys = append(ys, agg.MeanParallelTime)
			ratioLo = math.Min(ratioLo, agg.MeanParallelTime/lg)
			ratioHi = math.Max(ratioHi, agg.MeanParallelTime/lg)
		}
		fit, ok := res.Summary.Fit("pll", 0)
		if !ok {
			panic("harness: theorem1 sweep produced no scaling fit")
		}

		var body strings.Builder
		fmt.Fprintf(&body, "%d replicates per size (one sweep cell per n, each a multi-core ensemble); "+
			"times in parallel time (steps / n).\n\n", rep)
		body.WriteString(tbl.Markdown())
		body.WriteString("\nThe distribution is bimodal: most runs finish during QuickElimination " +
			"(the low median), while runs whose lottery ties carry into the Tournament epochs " +
			"(which open after ≈ cmax/2 = 20.5·m parallel time) populate the slow mode — still " +
			"Θ(log n), as the fits confirm.\n")
		fmt.Fprintf(&body, "\nLog-log power fit: time ∝ n^%s — logarithmic growth shows as exponent ≈ 0, linear as ≈ 1.\n",
			f3(fit.Exponent))
		fmt.Fprintf(&body, "Direct fit: time = %s·lg n %+.2f (R² %s).\n\n",
			f2(fit.A), fit.B, f3(fit.R2))
		body.WriteString("```\n")
		body.WriteString(asciichart.Plot([]asciichart.Series{
			{Name: "PLL mean stabilization time", X: xs, Y: ys},
		}, asciichart.Options{LogX: true, XLabel: "n", YLabel: "parallel time"}))
		body.WriteString("```\n")

		verdicts := []Verdict{
			{
				Claim: "every run elects exactly one leader (Theorem 1, probability 1)",
				Pass:  allOK,
				Detail: fmt.Sprintf("%d/%d sizes with all %d replicates stabilized",
					len(ns), len(ns), rep),
			},
			{
				Claim: "expected time grows logarithmically, not polynomially (Theorem 1)",
				Pass:  fit.Exponent < pick(cfg, 0.35, 0.65),
				Detail: fmt.Sprintf("log-log exponent %s (linear time would give ≈ 1)",
					f3(fit.Exponent)),
			},
		}
		if !cfg.Quick {
			// At smoke-test scale the sweep is too narrow for the band to
			// carry signal; the claim is only testable at full scale. The
			// check is a flat ratio band: time/lg n confined to a narrow
			// constant range across a 64× range of n — a robust version of
			// "time = Θ(lg n)" that tolerates the bimodal sampling noise.
			verdicts = append(verdicts, Verdict{
				Claim: "time per lg n is a stable constant across the sweep",
				Pass:  ratioHi < 2*ratioLo,
				Detail: fmt.Sprintf("mean/lg n within [%s, %s]; direct fit a = %s, R² = %s",
					f2(ratioLo), f2(ratioHi), f2(fit.A), f3(fit.R2)),
			})
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
