// Package harness defines and runs the reproduction experiments: one per
// table of the paper and one per quantitative lemma/theorem, treating each
// proved bound as the figure it would have been in an empirical paper.
// DESIGN.md §4 is the authoritative index mapping experiment IDs to paper
// artifacts, modules and bench targets.
//
// Every experiment emits a Markdown report (tables and ASCII-chart
// "figures") plus machine-checkable verdicts comparing the measurement
// against the paper's claim. EXPERIMENTS.md is assembled from these
// reports.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"popproto/internal/pp"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Quick shrinks populations and repetition counts to smoke-test scale
	// (used by `go test`); full scale is the default for cmd/experiments.
	Quick bool
	// Seed is the master seed; every experiment derives all randomness
	// from it, so reports are exactly reproducible.
	Seed uint64
	// Workers bounds simulation parallelism; <= 0 means NumCPU.
	Workers int
	// Engine selects the simulation engine for the election-time sweeps
	// (Table 1/2, Theorem 1, trajectory, …). The zero value is the
	// per-agent engine; the census engine (pp.EngineCount), the
	// collision-free round engine (pp.EngineBatch) and the phase-adaptive
	// hybrid engine (pp.EngineHybrid, the fastest at large n)
	// reproduce the same distributions and reach populations the per-agent
	// engine cannot; the pseudo-engine pp.EngineAuto resolves per
	// measurement cell to the registry's recommendation. Experiments that
	// address individual agents (Bstart constructions, coin audits) always
	// use the per-agent engine.
	Engine pp.Engine
	// Replicates overrides the per-cell repetition count of the
	// ensemble-executed experiments (Table 1/2, Theorem 1); 0 keeps each
	// experiment's default. Raise it for tighter CIs, lower it for speed.
	Replicates int
	// CITarget, when positive, lets those ensembles stop early once the
	// relative 95% CI half-width of the mean stabilization time reaches
	// it — trading a fixed repetition count for a precision target.
	CITarget float64
}

// DefaultConfig returns the configuration used by cmd/experiments.
func DefaultConfig() Config { return Config{Seed: 20190612} } // PODC 2019 ;-)

// Verdict is one machine-checked comparison between a paper claim and the
// measurement.
type Verdict struct {
	// Claim cites the paper's statement being checked.
	Claim string
	// Pass reports whether the measurement is consistent with the claim.
	Pass bool
	// Detail holds the measured numbers backing the verdict.
	Detail string
}

// Result is a finished experiment report.
type Result struct {
	ID       string
	Title    string
	Markdown string
	Verdicts []Verdict
}

// Passed reports whether every verdict passed.
func (r Result) Passed() bool {
	for _, v := range r.Verdicts {
		if !v.Pass {
			return false
		}
	}
	return true
}

// Experiment is a registered reproduction experiment.
type Experiment struct {
	// ID is the stable identifier used by cmd/experiments and DESIGN.md.
	ID string
	// Title is a one-line description.
	Title string
	// Paper names the table/figure/lemma being reproduced.
	Paper string
	// Run executes the experiment.
	Run func(Config) Result
}

// All returns the experiment registry in report order.
func All() []Experiment {
	return []Experiment{
		table3Experiment(),
		theorem1Experiment(),
		table1Experiment(),
		table2Experiment(),
		lemma2Experiment(),
		lemma4Experiment(),
		lemma6Experiment(),
		lemma7Experiment(),
		lemma8Experiment(),
		lemma9Experiment(),
		backupExperiment(),
		coinsExperiment(),
		symmetricExperiment(),
		trajectoryExperiment(),
		ablationExperiment(),
	}
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all registered identifiers, sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// renderReport assembles the standard report layout.
func renderReport(e Experiment, body string, verdicts []Verdict) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "## Experiment `%s` — %s\n\n", e.ID, e.Title)
	fmt.Fprintf(&b, "*Reproduces:* %s\n\n", e.Paper)
	b.WriteString(body)
	b.WriteString("\n**Verdicts**\n\n")
	for _, v := range verdicts {
		mark := "PASS"
		if !v.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "- [%s] %s — %s\n", mark, v.Claim, v.Detail)
	}
	return Result{ID: e.ID, Title: e.Title, Markdown: b.String(), Verdicts: verdicts}
}

// sweepSizes returns the n sweep for time-growth experiments.
func sweepSizes(cfg Config, logTime bool) []int {
	if cfg.Quick {
		return []int{128, 512, 2048}
	}
	if logTime {
		// Protocols with (poly)logarithmic time afford larger populations.
		return []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	}
	// Θ(n)-time protocols need n² steps per run; keep the sweep modest.
	return []int{128, 256, 512, 1024, 2048}
}

func reps(cfg Config, full int) int {
	if cfg.Quick {
		return max(8, full/3)
	}
	return full
}

// pick selects a verdict threshold: the strict value at full scale, the
// lenient one at smoke-test scale, where populations are too small and
// repetition counts too low for asymptotic shapes to be testable.
func pick(cfg Config, strict, lenient float64) float64 {
	if cfg.Quick {
		return lenient
	}
	return strict
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
