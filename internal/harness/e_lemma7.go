package harness

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// lemma7Experiment measures the survivor distribution of QuickElimination:
// at step ⌊21 n ln n⌋, Pr[|V_L| = i] ≤ 2^{1−i} + ε_i for every i ≥ 2, and
// at least one leader always survives.
func lemma7Experiment() Experiment {
	e := Experiment{
		ID:    "lemma7",
		Title: "QuickElimination survivor distribution vs the 2^{1−i} envelope",
		Paper: "Lemma 7 (the lottery game of §3.1.1)",
	}
	e.Run = func(cfg Config) Result {
		n := 1024
		repCount := reps(cfg, 1000)
		if cfg.Quick {
			n = 256
			repCount = 200
		}
		p := core.NewForN(n)
		horizon := uint64(math.Floor(21 * float64(n) * math.Log(float64(n))))

		var mu sync.Mutex
		survivorCounts := make(map[int]int)
		hist := stats.NewHistogram(9)
		zeroLeaderRuns := 0
		leftEpochOne := 0
		pp.Parallel(repCount, cfg.Workers, cfg.Seed, func(_ int, seed uint64) {
			sim := pp.NewSimulator[core.State](p, n, seed)
			sim.RunSteps(horizon)
			leaders := sim.Leaders()
			epochsBeyond := 0
			sim.ForEach(func(_ int, s core.State) {
				if s.Epoch > 1 {
					epochsBeyond++
				}
			})
			mu.Lock()
			defer mu.Unlock()
			survivorCounts[leaders]++
			hist.Add(leaders)
			if leaders == 0 {
				zeroLeaderRuns++
			}
			if epochsBeyond > 0 {
				leftEpochOne++
			}
		})

		maxI := 0
		for i := range survivorCounts {
			maxI = max(maxI, i)
		}
		tbl := table.New("survivors i", "empirical Pr[|V_L| = i]", "95% Wilson upper",
			"envelope 2^{1−i} (i ≥ 2)", "within envelope")
		envelopeOK := true
		for i := 1; i <= maxI; i++ {
			count := survivorCounts[i]
			emp := float64(count) / float64(repCount)
			_, hi := stats.WilsonCI(count, repCount)
			if i == 1 {
				tbl.AddRowf(i, f4(emp), f4(hi), "—", "—")
				continue
			}
			env := stats.SurvivorEnvelope(i)
			// The Wilson upper confidence limit must not exceed the
			// envelope by more than the paper's ε_i slack (Σε_i = O(1/n));
			// we grant a fixed small slack for Monte Carlo noise.
			ok := emp <= env+0.02 || hi <= env+0.05
			envelopeOK = envelopeOK && ok
			tbl.AddRowf(i, f4(emp), f4(hi), f4(env), ok)
		}

		var body strings.Builder
		fmt.Fprintf(&body, "n = %d, %d runs, census at step ⌊21 n ln n⌋ = %d.\n\n", n, repCount, horizon)
		body.WriteString(tbl.Markdown())
		body.WriteString("\nSurvivor distribution (value, count, fraction):\n\n```\n")
		body.WriteString(hist.Bars(40))
		body.WriteString("```\n")
		fmt.Fprintf(&body, "\nRuns in which some agent had already left epoch 1: %d/%d (the lemma conditions hold w.h.p.).\n",
			leftEpochOne, repCount)

		verdicts := []Verdict{
			{
				Claim:  "Pr[|V_L| = i] ≤ 2^{1−i} + ε for every i ≥ 2 (Lemma 7)",
				Pass:   envelopeOK,
				Detail: "see table",
			},
			{
				Claim:  "QuickElimination never eliminates all leaders",
				Pass:   zeroLeaderRuns == 0,
				Detail: fmt.Sprintf("%d/%d runs with zero leaders", zeroLeaderRuns, repCount),
			},
			{
				Claim: "agents are still in epoch 1 at the horizon w.h.p. (first condition of Lemma 7's proof)",
				Pass:  float64(leftEpochOne) <= 0.1*float64(repCount),
				Detail: fmt.Sprintf("%d/%d runs had early epoch departures",
					leftEpochOne, repCount),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
