package harness

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// ablationExperiment measures the two design knobs DESIGN.md calls out.
//
// Φ (§3.2.4): the paper runs the Tournament twice with Φ = ⌈(2/3)·lg m⌉
// bits instead of once with ⌈lg m⌉ bits, trading a constant factor of
// time for a strictly smaller rand×index state product. The ablation
// sweeps Φ and measures how often the election still needs the BackUp
// safety net (residual ties) against the per-agent state cost.
//
// m: the knowledge parameter trades clock period (cmax = 41m) against
// state count; oversizing m keeps correctness but slows the epoch
// pipeline linearly in m, exactly as the cmax/2 tick period predicts.
func ablationExperiment() Experiment {
	e := Experiment{
		ID:    "ablation",
		Title: "design knobs: Tournament width Φ and knowledge parameter m",
		Paper: "§3.2.4 (why Φ = ⌈2/3·lg m⌉, run twice) and the m = Θ(log n) requirement",
	}
	e.Run = func(cfg Config) Result {
		n := 2048
		repCount := reps(cfg, 150)
		if cfg.Quick {
			n = 512
			repCount = 40
		}
		base := core.NewParams(n)
		lgm := int(math.Ceil(math.Log2(float64(base.M))))

		// --- Φ sweep ---------------------------------------------------
		phis := []int{0, 1, base.Phi, lgm, 2 * lgm}
		phiTbl := table.New("Φ", "rand×index states 2^Φ(Φ+1)",
			"runs needing BackUp", "residual-tie rate", "mean time")
		var tieRates []float64
		for _, phi := range phis {
			params := base.WithPhi(phi)
			proto := core.New(params)
			var mu sync.Mutex
			needBackup := 0
			times := make([]float64, repCount)
			pp.Parallel(repCount, cfg.Workers, cfg.Seed+uint64(phi), func(rep int, seed uint64) {
				sim := pp.NewSimulator[core.State](proto, n, seed)
				// Watch for two independent events: stabilization (one
				// leader) and the first epoch-4 agent. More than one
				// leader at the latter means the tournaments failed to
				// finish the job and the BackUp safety net is needed.
				stabTime := -1.0
				residual, residualKnown := false, false
				budget := 100 * logBudget(n)
				for sim.Steps() < budget && (stabTime < 0 || !residualKnown) {
					if stabTime < 0 && sim.Leaders() == 1 {
						stabTime = sim.ParallelTime()
					}
					if !residualKnown {
						inFourth := false
						sim.ForEach(func(_ int, st core.State) {
							if st.Epoch == 4 {
								inFourth = true
							}
						})
						if inFourth {
							residualKnown = true
							residual = sim.Leaders() > 1
						}
					}
					sim.RunSteps(uint64(n / 2))
				}
				if stabTime < 0 {
					stabTime = sim.ParallelTime() // budget exhausted; report as-is
				}
				times[rep] = stabTime
				if residual {
					mu.Lock()
					needBackup++
					mu.Unlock()
				}
			})
			rate := float64(needBackup) / float64(repCount)
			tieRates = append(tieRates, rate)
			states := params.RandSpace() * (phi + 1)
			phiTbl.AddRowf(phi, states, fmt.Sprintf("%d/%d", needBackup, repCount),
				f3(rate), f1(stats.Mean(times)))
		}

		// --- m sweep ---------------------------------------------------
		ms := []int{base.M, 2 * base.M, 4 * base.M}
		mTbl := table.New("m", "cmax", "Table 3 states", "mean time", "time / m")
		var mTimes []float64
		for _, m := range ms {
			params, err := core.NewParamsWithM(n, m)
			if err != nil {
				panic(err)
			}
			proto := core.New(params)
			times, _ := measureTimes[core.State](engineFor(cfg, n), proto, n, repCount,
				cfg.Seed+uint64(m)*17, 40*logBudget(n), cfg.Workers)
			mean := stats.Mean(times)
			mTimes = append(mTimes, mean)
			mTbl.AddRowf(m, params.CMax, params.StateSpaceSize(), f1(mean), f2(mean/float64(m)))
		}

		var body strings.Builder
		fmt.Fprintf(&body, "n = %d, %d runs per configuration.\n\n", n, repCount)
		fmt.Fprintf(&body, "**Φ sweep** (paper's choice Φ = %d, i.e. ⌈2/3·lg m⌉ for m = %d):\n\n", base.Phi, base.M)
		body.WriteString(phiTbl.Markdown())
		body.WriteString("\nWider nonces leave fewer ties to the BackUp safety net but pay " +
			"2^Φ(Φ+1) states; Φ = 0 disables the Tournament entirely and leans fully on BackUp.\n\n")
		fmt.Fprintf(&body, "**m sweep** (paper requires m ≥ lg n = %d and m = Θ(log n)):\n\n", core.CeilLog2(n))
		body.WriteString(mTbl.Markdown())
		body.WriteString("\nOversizing m keeps the election correct but slows the epoch clock " +
			"(cmax = 41m) — the slow mode of the time distribution scales with m, which is why " +
			"the paper insists on m = Θ(log n) rather than just m ≥ log₂ n.\n")

		// Verdicts: tie rate must be non-increasing in Φ overall (more
		// nonce bits, fewer ties), and the paper's Φ must already push
		// the residual-tie rate low.
		paperIdx := 2
		verdicts := []Verdict{
			{
				Claim: "wider tournaments leave fewer residual ties (monotone trend across the sweep)",
				Pass:  tieRates[len(tieRates)-1] <= tieRates[0]+0.02,
				Detail: fmt.Sprintf("tie rate %s at Φ=0 vs %s at Φ=%d",
					f3(tieRates[0]), f3(tieRates[len(tieRates)-1]), phis[len(phis)-1]),
			},
			{
				Claim: "the paper's Φ already makes BackUp a rare path (Lemma 8 regime)",
				Pass:  tieRates[paperIdx] < pick(cfg, 0.25, 0.4),
				Detail: fmt.Sprintf("residual-tie rate %s at Φ=%d",
					f3(tieRates[paperIdx]), base.Phi),
			},
			{
				Claim:  "oversizing m slows the election roughly linearly in m (clock period cmax = 41m)",
				Pass:   mTimes[len(mTimes)-1] > 1.5*mTimes[0],
				Detail: fmt.Sprintf("mean time %s at m=%d vs %s at m=%d", f1(mTimes[0]), ms[0], f1(mTimes[len(mTimes)-1]), ms[len(ms)-1]),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
