package harness

import (
	"fmt"
	"math"
	"strings"

	"popproto/internal/asciichart"
	"popproto/internal/epidemic"
	"popproto/internal/table"
)

// lemma2Experiment measures one-way epidemic completion against the tail
// bound of Lemma 2: Pr[I_{V'}(2⌈n/n'⌉t) ≠ V'] ≤ n·e^{−t/n}, for the whole
// population and for sub-populations (the paper applies it to V_A with
// |V_A| ≥ n/2).
func lemma2Experiment() Experiment {
	e := Experiment{
		ID:    "lemma2",
		Title: "one-way epidemic tail bound, full and sub-populations",
		Paper: "Lemma 2 (generalizing [Sud+12]; used by every module)",
	}
	e.Run = func(cfg Config) Result {
		n := 4096
		repCount := reps(cfg, 2000)
		if cfg.Quick {
			n = 512
			repCount = 300
		}

		subs := []int{n, n / 2, n / 4}
		// t grid in units of n·ln n (the bound becomes nontrivial past
		// t = n ln n).
		tFactors := []float64{1.2, 1.5, 2.0, 2.5, 3.0}

		tbl := table.New("n' (sub-population)", "t / (n ln n)", "step budget 2⌈n/n'⌉t",
			"empirical Pr[unfinished]", "Lemma 2 bound")
		holds := true
		var chartX, chartEmp, chartBound []float64
		for si, sub := range subs {
			times := epidemic.CompletionTimes(n, sub, repCount, cfg.Seed+uint64(si))
			for _, tf := range tFactors {
				t := tf * float64(n) * math.Log(float64(n))
				budget := epidemic.Lemma2Steps(n, sub, t)
				bound := epidemic.Lemma2Bound(n, t)
				violations := 0
				for _, ct := range times {
					if ct > budget {
						violations++
					}
				}
				emp := float64(violations) / float64(repCount)
				if bound < 1 && emp > bound+0.02 {
					holds = false
				}
				tbl.AddRowf(sub, f2(tf), budget, f4(emp), f4(bound))
				if sub == n {
					chartX = append(chartX, tf)
					chartEmp = append(chartEmp, emp)
					chartBound = append(chartBound, bound)
				}
			}
		}

		var body strings.Builder
		fmt.Fprintf(&body, "n = %d, %d epidemics per sub-population size (geometric-jump simulator, distributionally exact).\n\n",
			n, repCount)
		body.WriteString(tbl.Markdown())
		body.WriteString("\n```\n")
		body.WriteString(asciichart.Plot([]asciichart.Series{
			{Name: "empirical Pr[unfinished] (n'=n)", X: chartX, Y: chartEmp},
			{Name: "Lemma 2 bound n·e^{−t/n}", X: chartX, Y: chartBound},
		}, asciichart.Options{XLabel: "t / (n ln n)", YLabel: "probability"}))
		body.WriteString("```\n")

		verdicts := []Verdict{
			{
				Claim:  "Lemma 2: empirical violation probability ≤ n·e^{−t/n} wherever the bound is nontrivial",
				Pass:   holds,
				Detail: "see table (0.02 Monte-Carlo slack)",
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
