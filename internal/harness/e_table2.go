package harness

import (
	"fmt"
	"math"
	"strings"

	"popproto/internal/core"
	"popproto/internal/registry"
	"popproto/internal/table"
)

// table2Experiment checks the measurements for consistency with the lower
// bounds of Table 2. Lower bounds cannot be "reproduced" by running code,
// but measured times must respect them: a constant-state protocol must pay
// Ω(n) ([DS18]), and no protocol — PLL included — may beat Ω(log n)
// ([SM19], and the coupon-collector argument of the introduction).
func table2Experiment() Experiment {
	e := Experiment{
		ID:    "table2",
		Title: "measured times respect the lower bounds",
		Paper: "Table 2 ([DS18] Ω(n) for O(1) states; [SM19] Ω(log n) for any state count)",
	}
	e.Run = func(cfg Config) Result {
		ns := sweepSizes(cfg, false)
		rep := reps(cfg, 20)

		tbl := table.New("n", "Angluin t̄", "t̄ / n (DS18 wants ≳ const)",
			"PLL t̄", "t̄ / lg n (SM19 wants ≳ const)")
		var angPerN, pllPerLog []float64
		minPLLRatio := math.Inf(1)
		for i, n := range ns {
			angAgg := measureEnsemble(cfg, registry.Spec{
				Protocol: "angluin", N: n, Engine: cfg.Engine, Seed: cfg.Seed + uint64(i),
			}, rep, linearBudget(n))
			pllAgg := measureEnsemble(cfg, registry.Spec{
				Protocol: "pll", N: n, Engine: cfg.Engine, Seed: cfg.Seed + uint64(i) + 7_777,
			}, rep, logBudget(n))
			ang := angAgg.MeanParallelTime
			pll := pllAgg.MeanParallelTime
			lg := float64(core.CeilLog2(n))
			tbl.AddRowf(n, f1(ang), f3(ang/float64(n)), f1(pll), f2(pll/lg))
			angPerN = append(angPerN, ang/float64(n))
			pllPerLog = append(pllPerLog, pll/lg)
			minPLLRatio = math.Min(minPLLRatio, pll/lg)
		}

		// DS18 consistency: time/n stays bounded away from zero (does not
		// decay with n). SM19 consistency: time/lg n bounded below by a
		// positive constant.
		angFirst, angLast := angPerN[0], angPerN[len(angPerN)-1]

		var body strings.Builder
		fmt.Fprintf(&body, "%d replicates per cell (multi-core ensemble executor); "+
			"t̄ is mean parallel stabilization time.\n\n", cellReps(cfg, rep))
		body.WriteString(tbl.Markdown())
		body.WriteString("\nA lower bound is *violated* only if the normalized time decays toward 0 as n grows.\n")

		verdicts := []Verdict{
			{
				Claim: "[DS18] Ω(n) for constant states: Angluin's t̄/n does not decay",
				Pass:  angLast > 0.5*angFirst && angLast > 0.1,
				Detail: fmt.Sprintf("t̄/n from %s (n=%d) to %s (n=%d)",
					f3(angFirst), ns[0], f3(angLast), ns[len(ns)-1]),
			},
			{
				Claim:  "[SM19] Ω(log n) for any states: PLL's t̄/lg n stays ≥ a positive constant",
				Pass:   minPLLRatio > 0.5,
				Detail: fmt.Sprintf("min t̄/lg n = %s across the sweep", f2(minPLLRatio)),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
