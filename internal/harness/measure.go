package harness

import (
	"context"
	"fmt"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/stats"
)

// summarizeOr is Summarize with an empty-sample fallback (zero Summary),
// for report paths where a sample may legitimately come back empty.
func summarizeOr(xs []float64) stats.Summary {
	if len(xs) == 0 {
		return stats.Summary{}
	}
	return stats.Summarize(xs)
}

// logBudget is the step cap for protocols with (poly)logarithmic expected
// time: thousands of parallel-time log-factors beyond the expectation.
// The definition lives in the registry (which also budgets service jobs
// with it) so the two cannot drift.
func logBudget(n int) uint64 { return registry.LogBudget(n) }

// linearBudget is the step cap for Θ(n)-parallel-time protocols.
func linearBudget(n int) uint64 { return registry.LinearBudget(n) }

// runUntil advances sim in checkEvery-step slices until pred holds or the
// step budget is exhausted, returning the step count at which pred was
// first observed and whether it was.
func runUntil[S comparable](
	sim pp.Runner[S], checkEvery, budget uint64, pred func(pp.Runner[S]) bool,
) (uint64, bool) {
	for {
		if pred(sim) {
			return sim.Steps(), true
		}
		if sim.Steps() >= budget {
			return sim.Steps(), false
		}
		sim.RunSteps(checkEvery)
	}
}

// measureEnsemble runs an ensemble of rep elections of the given registry
// spec through the shared replication executor — multi-core fan-out,
// Welford aggregation with 95% CIs, quantile sketch — and returns the
// aggregates. cfg.Replicates overrides rep; cfg.CITarget enables early
// stopping. The paper-table experiments (Table 1/2, Theorem 1) measure
// through this, so their cells are the same aggregates popprotod's
// /v1/experiments serves.
func measureEnsemble(cfg Config, spec registry.Spec, rep int, budget uint64) ensemble.Aggregates {
	if cfg.Replicates > 0 {
		rep = cfg.Replicates
	}
	res, err := ensemble.Run(context.Background(), ensemble.Spec{
		Registry:   spec,
		Replicates: rep,
		Budget:     budget,
		CITarget:   cfg.CITarget,
	}, ensemble.Options{Workers: cfg.Workers})
	if err != nil {
		// Specs here are harness-generated against the registry; failure is
		// a bug, not a measurement.
		panic(fmt.Sprintf("harness: ensemble %+v: %v", spec, err))
	}
	return res.Aggregates
}

// ciHalf returns the 95% CI half-width of an ensemble's mean.
func ciHalf(agg ensemble.Aggregates) float64 {
	return (agg.CIHi - agg.CILo) / 2
}

// cellReps reports the replicate count a report cell actually ran with
// (the cfg override, or the experiment default).
func cellReps(cfg Config, rep int) int {
	if cfg.Replicates > 0 {
		return cfg.Replicates
	}
	return rep
}

// engineFor resolves cfg.Engine for direct pp-level measurements of the
// PLL family: concrete engines pass through, and the pseudo-engine
// "auto" takes the registry's recommendation for population size n (the
// same resolution ensemble-executed cells get via ensemble.Canonicalize,
// so one -engine auto run is consistent across both measurement paths).
func engineFor(cfg Config, n int) pp.Engine {
	if cfg.Engine != pp.EngineAuto {
		return cfg.Engine
	}
	entry, ok := registry.Lookup("pll")
	if !ok {
		return pp.EngineAgent
	}
	return entry.RecommendedEngine(n)
}

// measureTimes runs repCount independent elections on the selected engine
// and returns the parallel stabilization times together with a flag
// reporting whether all runs actually stabilized within the budget.
func measureTimes[S comparable](
	engine pp.Engine, proto pp.Protocol[S], n, repCount int, seed, budget uint64, workers int,
) (times []float64, allOK bool) {
	results := pp.MeasureWith(engine, proto, n, repCount, seed, budget, workers)
	times = make([]float64, len(results))
	allOK = true
	for i, r := range results {
		times[i] = r.ParallelTime
		if !r.Stabilized {
			allOK = false
		}
	}
	return times, allOK
}
