package harness

import (
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/stats"
)

// summarizeOr is Summarize with an empty-sample fallback (zero Summary),
// for report paths where a sample may legitimately come back empty.
func summarizeOr(xs []float64) stats.Summary {
	if len(xs) == 0 {
		return stats.Summary{}
	}
	return stats.Summarize(xs)
}

// logBudget is the step cap for protocols with (poly)logarithmic expected
// time: thousands of parallel-time log-factors beyond the expectation.
// The definition lives in the registry (which also budgets service jobs
// with it) so the two cannot drift.
func logBudget(n int) uint64 { return registry.LogBudget(n) }

// linearBudget is the step cap for Θ(n)-parallel-time protocols.
func linearBudget(n int) uint64 { return registry.LinearBudget(n) }

// runUntil advances sim in checkEvery-step slices until pred holds or the
// step budget is exhausted, returning the step count at which pred was
// first observed and whether it was.
func runUntil[S comparable](
	sim pp.Runner[S], checkEvery, budget uint64, pred func(pp.Runner[S]) bool,
) (uint64, bool) {
	for {
		if pred(sim) {
			return sim.Steps(), true
		}
		if sim.Steps() >= budget {
			return sim.Steps(), false
		}
		sim.RunSteps(checkEvery)
	}
}

// measureTimes runs repCount independent elections on the selected engine
// and returns the parallel stabilization times together with a flag
// reporting whether all runs actually stabilized within the budget.
func measureTimes[S comparable](
	engine pp.Engine, proto pp.Protocol[S], n, repCount int, seed, budget uint64, workers int,
) (times []float64, allOK bool) {
	results := pp.MeasureWith(engine, proto, n, repCount, seed, budget, workers)
	times = make([]float64, len(results))
	allOK = true
	for i, r := range results {
		times[i] = r.ParallelTime
		if !r.Stabilized {
			allOK = false
		}
	}
	return times, allOK
}
