package harness

import (
	"strings"
	"testing"

	"popproto/internal/pp"
)

func quickCfg() Config {
	return Config{Quick: true, Seed: 20190612, Workers: 2}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 12 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"table1", "table2", "table3", "theorem1", "lemma2",
		"lemma4", "lemma6", "lemma7", "lemma8", "lemma9", "backup", "coins", "symmetric"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID found a nonexistent experiment")
	}
	if len(IDs()) != len(all) {
		t.Fatalf("IDs() returned %d ids for %d experiments", len(IDs()), len(all))
	}
}

// TestExperimentsQuick runs every experiment at smoke-test scale and
// requires a complete report and all-pass verdicts. The seeds are fixed,
// so this is deterministic.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short")
	}
	cfg := quickCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(cfg)
			if res.ID != e.ID {
				t.Fatalf("result id %q != experiment id %q", res.ID, e.ID)
			}
			if !strings.Contains(res.Markdown, "Verdicts") {
				t.Fatalf("report missing verdicts section:\n%s", res.Markdown)
			}
			if len(res.Verdicts) == 0 {
				t.Fatal("no verdicts")
			}
			for _, v := range res.Verdicts {
				if !v.Pass {
					t.Errorf("verdict failed: %s — %s", v.Claim, v.Detail)
				}
			}
			if t.Failed() {
				t.Logf("full report:\n%s", res.Markdown)
			}
		})
	}
}

// TestExperimentsQuickCountEngine reruns the election-time sweeps on the
// census engine: the paper's claims must verify identically on both
// engines (the statistical-equivalence tests in the repository root check
// the distributions directly; this checks the experiment plumbing).
func TestExperimentsQuickCountEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short")
	}
	cfg := quickCfg()
	cfg.Engine = pp.EngineCount
	for _, id := range []string{"table1", "table2", "theorem1", "trajectory"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(cfg)
			for _, v := range res.Verdicts {
				if !v.Pass {
					t.Errorf("verdict failed on count engine: %s — %s", v.Claim, v.Detail)
				}
			}
			if t.Failed() {
				t.Logf("full report:\n%s", res.Markdown)
			}
		})
	}
}
