package harness

import (
	"fmt"
	"strings"
	"sync"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/rng"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// buildBstart constructs a configuration in the spirit of Definition 3
// (Bstart): every agent in the fourth epoch with color 0, half candidates
// and half timers, exactly `leaders` leaders, every levelB ≤ 1 and timer
// counts randomized to avoid artificial phase alignment.
func buildBstart(p *core.PLL, sim *pp.Simulator[core.State], leaders int, seed uint64) {
	n := sim.N()
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		var s core.State
		if i < n/2 {
			s = core.State{
				Status: core.StatusA, Epoch: 4, Init: 4,
				Leader: i < leaders,
				LevelB: uint16(r.Intn(2)),
			}
		} else {
			s = core.State{
				Status: core.StatusB, Epoch: 4, Init: 4,
				Count: uint16(r.Intn(p.Params().CMax)),
			}
		}
		sim.SetState(i, s)
	}
}

// backupExperiment exercises the BackUp safety net in isolation: from
// Bstart configurations with many surviving leaders it must elect within
// O(log² n) parallel time in expectation (Lemma 12), and with a broken
// clock (undersized m, forced desynchronization) it must still elect —
// the paper's probability-1 guarantee (Lemmas 9, 10).
func backupExperiment() Experiment {
	e := Experiment{
		ID:    "backup",
		Title: "BackUp elects from Bstart in O(log² n); desynchronized runs still elect",
		Paper: "Definition 3 and Lemmas 10–12 (plus Lemma 9's fallback)",
	}
	e.Run = func(cfg Config) Result {
		// BackUp resolves residual leaders by the faster of two
		// mechanisms: the levelB race (Θ(log² n)) and direct duels
		// (Θ(n) for the last pair). The duel dominates below n ≈ 2k, so
		// the sweep must reach past the crossover for the Lemma 12 shape
		// to be visible.
		ns := []int{1024, 2048, 4096, 8192, 16384}
		repCount := reps(cfg, 25)
		if cfg.Quick {
			ns = []int{512, 1024, 2048}
			repCount = 8
		}

		tbl := table.New("n", "initial leaders", "mean parallel time", "per lg² n")
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		allOK := true
		for i, n := range ns {
			p := core.NewForN(n)
			leaders := max(2, n/8)
			times := make([]float64, repCount)
			var mu sync.Mutex
			ok := true
			pp.Parallel(repCount, cfg.Workers, cfg.Seed+uint64(i), func(rep int, seed uint64) {
				sim := pp.NewSimulator[core.State](p, n, seed)
				buildBstart(p, sim, leaders, seed^0xb5)
				if sim.Leaders() != leaders {
					panic("backup experiment: Bstart construction broken")
				}
				_, good := sim.RunUntilLeaders(1, 100*logBudget(n))
				times[rep] = sim.ParallelTime()
				if !good {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			})
			allOK = allOK && ok
			s := stats.Summarize(times)
			lg := float64(core.CeilLog2(n))
			tbl.AddRowf(n, leaders, f1(s.Mean), f3(s.Mean/(lg*lg)))
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean)
		}
		power := stats.PowerFit(xs, ys)

		// Forced desynchronization: m = 1 violates m ≥ log₂ n, the clock
		// ticks too fast for any epidemic to finish, and the run leans on
		// the BackUp duel fallback. It must still elect.
		desyncN := 128
		desyncReps := reps(cfg, 20)
		if cfg.Quick {
			desyncN = 64
		}
		desyncParams := core.NewParamsUnchecked(desyncN, 1)
		desyncProto := core.New(desyncParams)
		desyncTimes, desyncOK := measureTimes[core.State](engineFor(cfg, desyncN), desyncProto, desyncN, desyncReps,
			cfg.Seed+999, uint64(desyncN)*uint64(desyncN)*uint64(desyncN)*8, cfg.Workers)
		ds := stats.Summarize(desyncTimes)

		lastN := float64(ns[len(ns)-1])
		lastTime := ys[len(ys)-1]
		duelReference := lastN / 2 // the pure-duel expectation for the last pair

		var body strings.Builder
		fmt.Fprintf(&body, "Bstart runs: %d repetitions per size, n/8 initial leaders, all agents epoch 4.\n\n", repCount)
		body.WriteString(tbl.Markdown())
		fmt.Fprintf(&body, "\nLog-log exponent of the Bstart election time: %s (O(log² n) shows as ≈ 0; pure duels as ≈ 1). "+
			"Election is the faster of the levelB race and direct duels; the race caps the duel's Θ(n) beyond the crossover.\n\n",
			f3(power.Slope))
		fmt.Fprintf(&body, "Forced desynchronization (n = %d, m = 1, cmax = 41): mean election time %s parallel (%d runs).\n",
			desyncN, f1(ds.Mean), desyncReps)

		verdicts := []Verdict{
			{
				Claim:  "BackUp elects exactly one leader from every Bstart configuration",
				Pass:   allOK,
				Detail: fmt.Sprintf("all %d×%d runs", len(ns), repCount),
			},
			{
				Claim:  "Bstart election grows sub-linearly (Lemma 12: O(log² n) caps the duel path)",
				Pass:   power.Slope < pick(cfg, 0.55, 1.1),
				Detail: fmt.Sprintf("log-log exponent %s", f3(power.Slope)),
			},
			{
				Claim: "the levelB race beats pure duels at scale (Lemma 12's mechanism is active)",
				Pass:  cfg.Quick || lastTime < 0.4*duelReference,
				Detail: fmt.Sprintf("t̄(n=%d) = %s vs duel reference n/2 = %s",
					int(lastN), f1(lastTime), f1(duelReference)),
			},
			{
				Claim:  "election succeeds even with a deliberately broken clock (m = 1)",
				Pass:   desyncOK,
				Detail: fmt.Sprintf("mean %s parallel time over %d runs", f1(ds.Mean), desyncReps),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
