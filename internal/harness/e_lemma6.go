package harness

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/table"
)

// lemma6Experiment instruments the CountUp synchronization clock. From the
// first Cstart(1)-configuration (some agent freshly wrapped to color 1):
//
//	P1: no agent gets color 2 within ⌊21 n ln n⌋ steps (w.h.p.);
//	P2: color 1 covers the population within ⌊4 n ln n⌋ steps (w.h.p.);
//	P3: the next Cstart (color 2 appears) follows within O(log n) parallel
//	    time (w.h.p.).
func lemma6Experiment() Experiment {
	e := Experiment{
		ID:    "lemma6",
		Title: "synchronization propositions P1–P3 of the count-up clock",
		Paper: "Lemma 6 (with Lemma 5)",
	}
	e.Run = func(cfg Config) Result {
		n := 1024
		repCount := reps(cfg, 100)
		if cfg.Quick {
			n = 256
			repCount = 20
		}
		p := core.NewForN(n)
		nLogN := float64(n) * math.Log(float64(n))

		colorCount := func(sim pp.Runner[core.State], color uint8) int {
			c := 0
			sim.ForEach(func(_ int, s core.State) {
				if s.Color == color {
					c++
				}
			})
			return c
		}

		var mu sync.Mutex
		p1OK, p2OK, p3OK := 0, 0, 0
		var spreadTimes, nextStartTimes []float64
		pp.Parallel(repCount, cfg.Workers, cfg.Seed, func(_ int, seed uint64) {
			sim := pp.NewSimulator[core.State](p, n, seed)
			check := uint64(n / 2)

			// Find the first appearance of color 1 (≈ Cstart(1)).
			t1, ok := runUntil(sim, check, uint64(200*nLogN), func(s pp.Runner[core.State]) bool {
				return colorCount(s, 1) > 0
			})
			if !ok {
				return // counted as failure of all three
			}

			// P2: color 1 covers the population within ⌊4 n ln n⌋ steps.
			t2, covered := runUntil(sim, check, t1+uint64(4*nLogN), func(s pp.Runner[core.State]) bool {
				return colorCount(s, 1) == s.N()
			})

			// P1 and P3: watch for the first color-2 agent.
			t3, sawColor2 := runUntil(sim, check, t1+uint64(60*nLogN), func(s pp.Runner[core.State]) bool {
				return colorCount(s, 2) > 0
			})

			mu.Lock()
			defer mu.Unlock()
			if covered {
				p2OK++
				spreadTimes = append(spreadTimes, float64(t2-t1)/float64(n))
			}
			if !sawColor2 || t3-t1 > uint64(21*nLogN) {
				p1OK++ // no early color 2 within the P1 window
			}
			if sawColor2 {
				p3OK++
				nextStartTimes = append(nextStartTimes, float64(t3-t1)/float64(n))
			}
		})

		tbl := table.New("proposition", "paper claim", "success rate", "observed timing")
		spread := summarizeOr(spreadTimes)
		next := summarizeOr(nextStartTimes)
		tbl.AddRowf("P1", "no color 2 within ⌊21 n ln n⌋ steps (w.h.p.)",
			fmt.Sprintf("%d/%d", p1OK, repCount), "—")
		tbl.AddRowf("P2", "color covers V within ⌊4 n ln n⌋ steps (w.h.p.)",
			fmt.Sprintf("%d/%d", p2OK, repCount),
			fmt.Sprintf("spread time %s ± %s parallel", f2(spread.Mean), f2(spread.SEM())))
		tbl.AddRowf("P3", "next Cstart within O(log n) parallel time",
			fmt.Sprintf("%d/%d", p3OK, repCount),
			fmt.Sprintf("gap %s ± %s parallel (lg n = %d)", f2(next.Mean), f2(next.SEM()), core.CeilLog2(n)))

		var body strings.Builder
		fmt.Fprintf(&body, "n = %d, %d runs, censuses every n/2 steps (granularity ≤ 0.5 parallel time).\n\n", n, repCount)
		body.WriteString(tbl.Markdown())
		fmt.Fprintf(&body, "\nFor context: the count-up period cmax/2 · n = %.1f·n ln n steps, so color 2 is expected around there.\n",
			float64(p.Params().CMax)/2/math.Log(float64(n)))

		okRate := func(k int) bool { return float64(k) >= 0.9*float64(repCount) }
		verdicts := []Verdict{
			{Claim: "P1 holds w.h.p.", Pass: okRate(p1OK), Detail: fmt.Sprintf("%d/%d", p1OK, repCount)},
			{Claim: "P2 holds w.h.p.", Pass: okRate(p2OK), Detail: fmt.Sprintf("%d/%d", p2OK, repCount)},
			{
				Claim: "P3: the clock keeps ticking every Θ(log n) parallel time",
				Pass:  okRate(p3OK) && next.Mean < 60*float64(core.CeilLog2(n)),
				Detail: fmt.Sprintf("%d/%d ticked; mean gap %s parallel vs lg n = %d",
					p3OK, repCount, f2(next.Mean), core.CeilLog2(n)),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
