package harness

import (
	"fmt"
	"strings"

	"popproto/internal/asciichart"
	"popproto/internal/core"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// symmetricExperiment compares the Section 4 symmetric variant against the
// asymmetric protocol: both must elect in every run, and the symmetric
// version must pay only a constant factor ("no harmful influence on the
// analysis of stabilization time, at least asymptotically").
func symmetricExperiment() Experiment {
	e := Experiment{
		ID:    "symmetric",
		Title: "symmetric variant: correctness and constant-factor parity",
		Paper: "Section 4",
	}
	e.Run = func(cfg Config) Result {
		ns := []int{256, 512, 1024, 2048, 4096}
		repCount := reps(cfg, 30)
		if cfg.Quick {
			ns = []int{128, 512, 2048}
			repCount = 10
		}

		tbl := table.New("n", "asym t̄", "sym t̄", "ratio")
		xs := make([]float64, 0, len(ns))
		asymYs := make([]float64, 0, len(ns))
		symYs := make([]float64, 0, len(ns))
		allOK := true
		for i, n := range ns {
			asymTimes, okA := measureTimes[core.State](engineFor(cfg, n), core.NewForN(n), n, repCount,
				cfg.Seed+uint64(i), logBudget(n), cfg.Workers)
			symTimes, okS := measureTimes[core.SymState](engineFor(cfg, n), core.NewSymmetricForN(n), n, repCount,
				cfg.Seed+uint64(i)+31, 40*logBudget(n), cfg.Workers)
			allOK = allOK && okA && okS
			a := stats.Mean(asymTimes)
			s := stats.Mean(symTimes)
			tbl.AddRowf(n, f1(a), f1(s), f2(s/a))
			xs = append(xs, float64(n))
			asymYs = append(asymYs, a)
			symYs = append(symYs, s)
		}

		symPower := stats.PowerFit(xs, symYs)
		lastRatio := symYs[len(symYs)-1] / asymYs[len(asymYs)-1]

		var body strings.Builder
		fmt.Fprintf(&body, "%d repetitions per cell; t̄ is mean parallel stabilization time.\n\n", repCount)
		body.WriteString(tbl.Markdown())
		body.WriteString("\n```\n")
		body.WriteString(asciichart.Plot([]asciichart.Series{
			{Name: "PLL (asymmetric)", X: xs, Y: asymYs},
			{Name: "PLL symmetric (§4)", X: xs, Y: symYs},
		}, asciichart.Options{LogX: true, XLabel: "n", YLabel: "parallel time"}))
		body.WriteString("```\n")

		verdicts := []Verdict{
			{
				Claim:  "the symmetric variant elects exactly one leader in every run",
				Pass:   allOK,
				Detail: fmt.Sprintf("%d sizes × %d runs", len(ns), repCount),
			},
			{
				Claim:  "symmetric time stays logarithmic (Section 4: no asymptotic harm)",
				Pass:   symPower.Slope < pick(cfg, 0.45, 0.8),
				Detail: fmt.Sprintf("log-log exponent %s", f3(symPower.Slope)),
			},
			{
				Claim:  "the overhead is a modest constant factor",
				Pass:   lastRatio < pick(cfg, 10, 20),
				Detail: fmt.Sprintf("sym/asym ratio %s at n=%d", f2(lastRatio), ns[len(ns)-1]),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
