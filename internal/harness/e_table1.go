package harness

import (
	"fmt"
	"strings"

	"popproto/internal/asciichart"
	"popproto/internal/registry"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// protocolRow is one contender in the Table 1 race.
type protocolRow struct {
	name        string
	paperStates string
	paperTime   string
	// measure runs an ensemble for one (protocol, n) cell and returns the
	// mean parallel stabilization time, its 95% CI half-width, the
	// states-per-agent count for that n, and whether all replicates
	// stabilized.
	measure func(cfg Config, n, rep int, seed uint64) (meanTime, ciHalf float64, states int, ok bool)
}

// table1Names maps registry keys to the display names Table 1 uses.
var table1Names = map[string]string{
	"pll":     "PLL (this work)",
	"pll-sym": "PLL symmetric (§4)",
	"angluin": "Angluin et al. 2006",
	"lottery": "Lottery (Ali+17 style)",
	"maxid":   "MaxID (MST18 style)",
}

// table1Rows builds the contenders from the protocol registry: every
// election entry races with its registry-provided step budget and
// states-per-agent count, so adding a protocol to the registry adds its
// Table 1 row.
func table1Rows() []protocolRow {
	var rows []protocolRow
	for _, entry := range registry.Entries() {
		if entry.Target != 1 {
			// The epidemic coverage workload is not an election.
			continue
		}
		name := table1Names[entry.Key]
		if name == "" {
			name = entry.Key
		}
		rows = append(rows, protocolRow{
			name:        name,
			paperStates: entry.States,
			paperTime:   entry.Time,
			measure: func(cfg Config, n, rep int, seed uint64) (float64, float64, int, bool) {
				agg := measureEnsemble(cfg, registry.Spec{
					Protocol: entry.Key, N: n, Engine: cfg.Engine, Seed: seed,
				}, rep, entry.StepBudget(n))
				allOK := agg.Stabilized == agg.Replicates
				return agg.MeanParallelTime, ciHalf(agg), entry.StateCount(n, 0), allOK
			},
		})
	}
	return rows
}

// table1Experiment regenerates Table 1 empirically: the states/time
// trade-off across the implemented protocols. Absolute constants differ
// from the authors' analyses; the shape — who is logarithmic, who is
// linear, who pays states for speed — is what must match.
func table1Experiment() Experiment {
	e := Experiment{
		ID:    "table1",
		Title: "states vs. expected stabilization time across protocols",
		Paper: "Table 1 ([Ang+06], [Ali+17], [MST18], this work; see DESIGN.md §3 for substitutions)",
	}
	e.Run = func(cfg Config) Result {
		ns := sweepSizes(cfg, false)
		rep := reps(cfg, 20)
		rows := table1Rows()

		type seriesData struct {
			times  []float64
			states []float64
		}
		data := make([]seriesData, len(rows))
		allOK := make([]bool, len(rows))
		for i := range allOK {
			allOK[i] = true
		}

		tbl := table.New(append([]string{"protocol", "paper states", "paper time"},
			nLabels(ns)...)...)
		for i, row := range rows {
			cells := []string{row.name, row.paperStates, row.paperTime}
			for j, n := range ns {
				mean, half, states, ok := row.measure(cfg, n, rep, cfg.Seed+uint64(i*100+j))
				allOK[i] = allOK[i] && ok
				data[i].times = append(data[i].times, mean)
				data[i].states = append(data[i].states, float64(states))
				cells = append(cells, fmt.Sprintf("%s ±%s", f1(mean), f1(half)))
			}
			tbl.AddRow(cells...)
		}

		// Growth exponents per protocol (log-log slope of time vs n).
		xs := make([]float64, len(ns))
		for i, n := range ns {
			xs[i] = float64(n)
		}
		expTbl := table.New("protocol", "time exponent (≈0 log, ≈1 linear)",
			"states exponent", "stabilized all runs")
		exponents := make([]float64, len(rows))
		stateExp := make([]float64, len(rows))
		for i, row := range rows {
			exponents[i] = stats.PowerFit(xs, data[i].times).Slope
			stateExp[i] = stats.PowerFit(xs, data[i].states).Slope
			expTbl.AddRowf(row.name, f3(exponents[i]), f3(stateExp[i]), allOK[i])
		}

		var chartSeries []asciichart.Series
		for i, row := range rows {
			chartSeries = append(chartSeries, asciichart.Series{
				Name: row.name, X: xs, Y: data[i].times,
			})
		}

		var body strings.Builder
		fmt.Fprintf(&body, "Mean parallel stabilization time ± 95%% CI half-width, "+
			"%d replicates per cell (multi-core ensemble executor).\n\n", cellReps(cfg, rep))
		body.WriteString(tbl.Markdown())
		body.WriteString("\n")
		body.WriteString(expTbl.Markdown())
		body.WriteString("\n```\n")
		body.WriteString(asciichart.Plot(chartSeries, asciichart.Options{
			LogX: true, XLabel: "n", YLabel: "parallel time",
		}))
		body.WriteString("```\n")

		last := len(ns) - 1
		pllTime := data[0].times[last]
		angTime := data[2].times[last]
		verdicts := []Verdict{
			{
				Claim: "Table 1 row ordering: PLL (log time) beats Angluin (linear time) at scale",
				Pass:  pllTime < angTime/2,
				Detail: fmt.Sprintf("n=%d: PLL %s vs Angluin %s parallel time",
					ns[last], f1(pllTime), f1(angTime)),
			},
			{
				Claim:  "PLL time grows logarithmically (exponent ≈ 0)",
				Pass:   exponents[0] < pick(cfg, 0.35, 0.65),
				Detail: fmt.Sprintf("exponent %s", f3(exponents[0])),
			},
			{
				Claim:  "Angluin time grows linearly (exponent ≈ 1, Ω(n) by [DS18])",
				Pass:   exponents[2] > pick(cfg, 0.75, 0.6),
				Detail: fmt.Sprintf("exponent %s", f3(exponents[2])),
			},
			{
				Claim:  "MaxID buys O(log n) time with polynomial states ([MST18] row shape)",
				Pass:   exponents[4] < pick(cfg, 0.35, 0.65) && stateExp[4] > 1.5,
				Detail: fmt.Sprintf("time exponent %s, states exponent %s", f3(exponents[4]), f3(stateExp[4])),
			},
			{
				Claim:  "PLL states grow sub-polynomially (O(log n), Lemma 3)",
				Pass:   stateExp[0] < 0.3,
				Detail: fmt.Sprintf("states exponent %s", f3(stateExp[0])),
			},
			{
				Claim:  "every protocol elected exactly one leader in every run",
				Pass:   allTrue(allOK),
				Detail: fmt.Sprintf("stabilization flags %v", allOK),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}

func nLabels(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("t̄(n=%d)", n)
	}
	return out
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}
