package harness

import (
	"fmt"
	"strings"
	"sync"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// lemma4Experiment verifies Lemma 4: once every agent has been assigned a
// status, |V_A| ≥ n/2, |V_F| ≥ n/2 and |V_B| ≥ 1 — in every run, because
// the lemma is deterministic given full assignment.
func lemma4Experiment() Experiment {
	e := Experiment{
		ID:    "lemma4",
		Title: "status assignment bounds: |V_A| ≥ n/2, |V_F| ≥ n/2, |V_B| ≥ 1",
		Paper: "Lemma 4",
	}
	e.Run = func(cfg Config) Result {
		n := 2048
		repCount := reps(cfg, 200)
		if cfg.Quick {
			n = 256
			repCount = 30
		}
		p := core.NewForN(n)

		var mu sync.Mutex
		minA, minB, minF := n, n, n
		violations := 0
		assignTimes := make([]float64, repCount)
		pp.Parallel(repCount, cfg.Workers, cfg.Seed, func(rep int, seed uint64) {
			sim := pp.NewSimulator[core.State](p, n, seed)
			for {
				sim.RunSteps(uint64(n))
				counts := pp.CensusBy(sim, func(s core.State) core.Status { return s.Status })
				if counts[core.StatusX] > 0 {
					continue
				}
				a, b := counts[core.StatusA], counts[core.StatusB]
				f := n - sim.Leaders()
				assignTimes[rep] = sim.ParallelTime()
				mu.Lock()
				minA = min(minA, a)
				minB = min(minB, b)
				minF = min(minF, f)
				if a < n/2 || b < 1 || f < n/2 {
					violations++
				}
				mu.Unlock()
				return
			}
		})

		tbl := table.New("quantity", "paper bound", "worst observed", "holds")
		tbl.AddRowf("|V_A|", fmt.Sprintf("≥ n/2 = %d", n/2), minA, minA >= n/2)
		tbl.AddRowf("|V_B|", "≥ 1", minB, minB >= 1)
		tbl.AddRowf("|V_F|", fmt.Sprintf("≥ n/2 = %d", n/2), minF, minF >= n/2)

		var body strings.Builder
		fmt.Fprintf(&body, "n = %d, %d runs; census taken at the first configuration with V_X = ∅ (checked once per parallel time unit).\n\n",
			n, repCount)
		body.WriteString(tbl.Markdown())
		s := stats.Summarize(assignTimes)
		fmt.Fprintf(&body, "\nParallel time to full assignment: mean %s, max %s (coupon collector, Θ(log n)).\n",
			f2(s.Mean), f2(s.Max))

		verdicts := []Verdict{
			{
				Claim: "Lemma 4 bounds hold in every run",
				Pass:  violations == 0,
				Detail: fmt.Sprintf("%d/%d runs violated; minima |V_A|=%d |V_B|=%d |V_F|=%d",
					violations, repCount, minA, minB, minF),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
