package harness

import (
	"errors"
	"strings"
	"testing"

	"popproto/internal/baseline"
	"popproto/internal/core"
	"popproto/internal/pp"
)

func TestPickThresholds(t *testing.T) {
	quick := Config{Quick: true}
	full := Config{}
	if pick(quick, 0.35, 0.65) != 0.65 {
		t.Fatal("quick mode must use the lenient threshold")
	}
	if pick(full, 0.35, 0.65) != 0.35 {
		t.Fatal("full mode must use the strict threshold")
	}
}

func TestSweepSizesShapes(t *testing.T) {
	quick := sweepSizes(Config{Quick: true}, true)
	if len(quick) != 3 || quick[len(quick)-1] > 4096 {
		t.Fatalf("quick sweep %v", quick)
	}
	logFull := sweepSizes(Config{}, true)
	linFull := sweepSizes(Config{}, false)
	if logFull[len(logFull)-1] <= linFull[len(linFull)-1] {
		t.Fatalf("log sweep %v must extend past linear sweep %v", logFull, linFull)
	}
	for _, sweep := range [][]int{quick, logFull, linFull} {
		for i := 1; i < len(sweep); i++ {
			if sweep[i] <= sweep[i-1] {
				t.Fatalf("sweep not increasing: %v", sweep)
			}
		}
	}
}

func TestRepsScaling(t *testing.T) {
	if got := reps(Config{}, 100); got != 100 {
		t.Fatalf("full reps = %d", got)
	}
	if got := reps(Config{Quick: true}, 100); got != 33 {
		t.Fatalf("quick reps = %d, want 33", got)
	}
	if got := reps(Config{Quick: true}, 6); got != 8 {
		t.Fatalf("quick floor = %d, want 8", got)
	}
}

func TestBudgetsGrow(t *testing.T) {
	if logBudget(1024) >= logBudget(4096) {
		t.Fatal("log budget not increasing")
	}
	if linearBudget(1024) >= linearBudget(4096) {
		t.Fatal("linear budget not increasing")
	}
	if linearBudget(4096) <= logBudget(4096) {
		t.Fatal("linear budget should exceed log budget at scale")
	}
}

func TestRenderReportAndPassed(t *testing.T) {
	e := Experiment{ID: "fake", Title: "fake title", Paper: "Lemma 0"}
	res := renderReport(e, "body text\n", []Verdict{
		{Claim: "holds", Pass: true, Detail: "ok"},
		{Claim: "fails", Pass: false, Detail: "nope"},
	})
	if res.Passed() {
		t.Fatal("failing verdict not reflected")
	}
	for _, frag := range []string{"Experiment `fake`", "Lemma 0", "body text",
		"[PASS] holds", "[FAIL] fails"} {
		if !strings.Contains(res.Markdown, frag) {
			t.Fatalf("report missing %q:\n%s", frag, res.Markdown)
		}
	}
	allPass := renderReport(e, "", []Verdict{{Claim: "x", Pass: true}})
	if !allPass.Passed() {
		t.Fatal("all-pass result reported failing")
	}
}

func TestRunUntilHelper(t *testing.T) {
	sim := pp.NewSimulator[baseline.AngluinState](baseline.Angluin{}, 32, 1)
	steps, ok := runUntil(sim, 16, 1<<30, func(s pp.Runner[baseline.AngluinState]) bool {
		return s.Leaders() == 1
	})
	if !ok || sim.Leaders() != 1 {
		t.Fatalf("runUntil: steps=%d ok=%v leaders=%d", steps, ok, sim.Leaders())
	}
	// Exhausted budget reports failure.
	sim2 := pp.NewSimulator[baseline.AngluinState](baseline.Angluin{}, 32, 1)
	if _, ok := runUntil(sim2, 16, 4, func(s pp.Runner[baseline.AngluinState]) bool {
		return false
	}); ok {
		t.Fatal("unsatisfiable predicate reported satisfied")
	}
}

func TestSummarizeOrEmpty(t *testing.T) {
	if s := summarizeOr(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := summarizeOr([]float64{2, 4}); s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMeasureTimesReportsBudgetFailures(t *testing.T) {
	// A 2-step budget cannot elect among 64 duelling agents — on either
	// engine.
	for _, engine := range pp.Engines() {
		times, ok := measureTimes[baseline.AngluinState](engine, baseline.Angluin{}, 64, 5, 1, 2, 2)
		if ok {
			t.Fatalf("engine %s: budget failure not reported", engine)
		}
		if len(times) != 5 {
			t.Fatalf("engine %s: got %d times", engine, len(times))
		}
	}
}

func TestBuildBstartShape(t *testing.T) {
	const n = 64
	p := core.NewForN(n)
	sim := pp.NewSimulator[core.State](p, n, 1)
	buildBstart(p, sim, 5, 99)
	if sim.Leaders() != 5 {
		t.Fatalf("leaders = %d, want 5", sim.Leaders())
	}
	census := pp.CensusBy(sim, func(s core.State) core.Status { return s.Status })
	if census[core.StatusA] != n/2 || census[core.StatusB] != n/2 {
		t.Fatalf("status census %v", census)
	}
	sim.ForEach(func(id int, s core.State) {
		if s.Epoch != 4 || s.Init != 4 {
			t.Fatalf("agent %d not in epoch 4: %v", id, s)
		}
		if err := p.CheckCanonical(s); err != nil {
			t.Fatalf("agent %d: %v", id, err)
		}
		if s.LevelB > 1 {
			t.Fatalf("agent %d levelB %d > 1 violates Definition 3", id, s.LevelB)
		}
	})
	// The constructed configuration must elect.
	if _, ok := sim.RunUntilLeaders(1, 100*logBudget(n)); !ok {
		t.Fatal("Bstart configuration did not elect")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f1(1.25) != "1.2" && f1(1.25) != "1.3" {
		t.Fatalf("f1 = %q", f1(1.25))
	}
	if f2(3.14159) != "3.14" {
		t.Fatalf("f2 = %q", f2(3.14159))
	}
	if f3(2.0/3) != "0.667" {
		t.Fatalf("f3 = %q", f3(2.0/3))
	}
	if f4(0.5) != "0.5000" {
		t.Fatalf("f4 = %q", f4(0.5))
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Quick {
		t.Fatal("default config must be full scale")
	}
	if cfg.Seed == 0 {
		t.Fatal("default config needs a fixed nonzero seed")
	}
}

func TestGeometricGOFShift(t *testing.T) {
	// A perfect shifted-geometric sample must pass with shift 1 and fail
	// with shift 0.
	var levels []int
	for k := 1; k <= 10; k++ {
		copies := 10000 >> uint(k)
		for i := 0; i < copies; i++ {
			levels = append(levels, k)
		}
	}
	if g := geometricGOF(levels, 1); g.P < 0.01 {
		t.Fatalf("shift-1 rejected: %v", g)
	}
	if g := geometricGOF(levels, 0); g.P > 0.01 {
		t.Fatalf("shift-0 accepted: %v", g)
	}
}

func TestLag1Autocorr(t *testing.T) {
	// The estimator normalizes by N terms but sums N−1 products, so a
	// perfectly alternating sequence of length 8 yields −7/8.
	alternating := []int{1, 0, 1, 0, 1, 0, 1, 0}
	if c := lag1Autocorr(alternating); c > -0.8 {
		t.Fatalf("alternating sequence autocorr = %v, want ≤ -0.8", c)
	}
	constant := []int{1, 1, 1, 1}
	if c := lag1Autocorr(constant); c != 0 {
		t.Fatalf("degenerate sequence autocorr = %v, want 0", c)
	}
	if c := lag1Autocorr([]int{1}); c != 0 {
		t.Fatalf("short sequence autocorr = %v", c)
	}
}

var errSentinel = errors.New("sentinel")

func TestVerdictDetailPreserved(t *testing.T) {
	v := Verdict{Claim: "c", Pass: false, Detail: errSentinel.Error()}
	if v.Detail != "sentinel" {
		t.Fatal("detail mangled")
	}
}
