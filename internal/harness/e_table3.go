package harness

import (
	"fmt"
	"strings"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// table3Experiment regenerates Table 3: the variable layout of PLL, the
// per-group additional-variable domains, and the Lemma 3 state count —
// both the closed-form Table 3 accounting and the distinct states actually
// observed in execution.
func table3Experiment() Experiment {
	e := Experiment{
		ID:    "table3",
		Title: "variables of PLL and the O(log n) state count",
		Paper: "Table 3 and Lemma 3",
	}
	e.Run = func(cfg Config) Result {
		var body strings.Builder

		// The static layout for a representative n.
		n := 1024
		if cfg.Quick {
			n = 256
		}
		params := core.NewParams(n)
		layout := table.New("group", "additional variables", "domain sizes")
		layout.AddRow("all agents", "leader, tick, status, epoch, init, color",
			"2 · 2 · 3 · 4 · 4 · 3")
		layout.AddRow("V_B", "count ∈ {0..cmax−1}", fmt.Sprintf("cmax = 41m = %d", params.CMax))
		layout.AddRow("V_A∩V_1", "levelQ ∈ {0..lmax}, done",
			fmt.Sprintf("(lmax+1) · 2 = %d · 2", params.LMax+1))
		layout.AddRow("V_A∩(V_2∪V_3)", "rand ∈ {0..2^Φ−1}, index ∈ {0..Φ}",
			fmt.Sprintf("2^Φ · (Φ+1) = %d · %d", params.RandSpace(), params.Phi+1))
		layout.AddRow("V_A∩V_4", "levelB ∈ {0..lmax}", fmt.Sprintf("lmax+1 = %d", params.LMax+1))
		fmt.Fprintf(&body, "Variable layout for n = %d (m = %d):\n\n%s\n", n, params.M, layout.Markdown())

		// State-count growth across n, plus observed distinct states from
		// an instrumented run.
		growth := table.New("n", "m", "Table 3 state count |Q|", "|Q| / m",
			"distinct states observed", "observed ≤ |Q|")
		ns := []int{256, 1024, 4096, 16384}
		if cfg.Quick {
			ns = []int{64, 256, 1024}
		}
		var ms, sizes []float64
		withinBound := true
		for i, nn := range ns {
			p := core.NewForN(nn)
			size := p.Params().StateSpaceSize()
			sim := pp.NewSimulator[core.State](p, nn, cfg.Seed+uint64(i))
			sim.TrackStates()
			sim.RunUntilLeaders(1, logBudget(nn))
			sim.RunSteps(uint64(20 * nn)) // explore the stable regime too
			observed := sim.DistinctStates()
			ok := observed <= size
			withinBound = withinBound && ok
			growth.AddRowf(nn, p.Params().M, size, f1(float64(size)/float64(p.Params().M)),
				observed, ok)
			ms = append(ms, float64(p.Params().M))
			sizes = append(sizes, float64(size))
		}
		fmt.Fprintf(&body, "State count growth (Lemma 3):\n\n%s\n", growth.Markdown())

		fit := stats.LinearFit(ms, sizes)
		fmt.Fprintf(&body, "Linear fit of |Q| against m: %s — Lemma 3's O(log n) is linearity in m.\n", fit)

		verdicts := []Verdict{
			{
				Claim:  "Lemma 3: the state count is linear in m (hence O(log n))",
				Pass:   fit.R2 > 0.999,
				Detail: fmt.Sprintf("|Q| = %s·m %+.0f, R² = %s", f1(fit.Slope), fit.Intercept, f4(fit.R2)),
			},
			{
				Claim:  "observed distinct states never exceed the Table 3 count",
				Pass:   withinBound,
				Detail: "see table",
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
