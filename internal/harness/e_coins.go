package harness

import (
	"fmt"
	"math"
	"strings"

	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/rng"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// flipTrace is a recorded stream of QuickElimination coin flips: +1 heads,
// 0 tails, in observation order, plus the per-leader level reached when
// the leader stopped flipping (its s_v of the lottery game).
type flipTrace struct {
	bits   []int
	levels []int
}

// traceAsymmetricFlips drives the asymmetric protocol with an external
// pair sampler so each interaction's participants are known, and records
// every QuickElimination flip: a not-done epoch-1 leader meeting a
// follower flips heads as initiator and tails as responder (§3.2.3).
// A pristine X partner counts as a follower: lines 1–6 convert it before
// the module runs, so the flip fires in the same interaction — omitting
// those flips would bias the recorded sample toward late (high-level)
// tails, because X partners are plentiful only early in the run.
func traceAsymmetricFlips(n int, steps uint64, seed uint64) flipTrace {
	p := core.NewForN(n)
	sim := pp.NewSimulator[core.State](p, n, seed)
	r := rng.New(seed ^ 0xc0111)
	var tr flipTrace
	for s := uint64(0); s < steps; s++ {
		i, j := r.Pair(n)
		si, sj := sim.State(i), sim.State(j)
		isFlip := func(l, f core.State) bool {
			return l.Leader && l.Status == core.StatusA && !l.Done && l.Epoch == 1 &&
				f.Epoch == 1 && (f.Status == core.StatusX || !f.Leader)
		}
		switch {
		case isFlip(si, sj):
			tr.bits = append(tr.bits, 1) // initiator ⇒ heads
		case isFlip(sj, si):
			tr.bits = append(tr.bits, 0) // responder ⇒ tails
			tr.levels = append(tr.levels, int(sj.LevelQ))
		}
		sim.Interact(i, j)
	}
	return tr
}

// traceSymmetricFlips does the same for the symmetric variant, where a
// flip is a leader meeting an F0 (heads) or F1 (tails) coin provider.
func traceSymmetricFlips(n int, steps uint64, seed uint64) flipTrace {
	p := core.NewSymmetricForN(n)
	sim := pp.NewSimulator[core.SymState](p, n, seed)
	r := rng.New(seed ^ 0x5e111)
	var tr flipTrace
	record := func(l, f core.SymState) {
		if !l.Leader || l.Status != core.StatusA || l.Done || l.Epoch != 1 || f.Leader || f.Epoch != 1 {
			return
		}
		switch f.Coin {
		case core.CoinF0:
			tr.bits = append(tr.bits, 1)
		case core.CoinF1:
			tr.bits = append(tr.bits, 0)
			tr.levels = append(tr.levels, int(l.LevelQ))
		}
	}
	for s := uint64(0); s < steps; s++ {
		i, j := r.Pair(n)
		record(sim.State(i), sim.State(j))
		record(sim.State(j), sim.State(i))
		sim.Interact(i, j)
	}
	return tr
}

func lag1Autocorr(bits []int) float64 {
	if len(bits) < 3 {
		return 0
	}
	mean := 0.0
	for _, b := range bits {
		mean += float64(b)
	}
	mean /= float64(len(bits))
	var num, den float64
	for i := 0; i < len(bits)-1; i++ {
		num += (float64(bits[i]) - mean) * (float64(bits[i+1]) - mean)
	}
	for _, b := range bits {
		den += (float64(b) - mean) * (float64(b) - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// geometricGOF bins the per-leader stop levels and chi-square-tests them
// against shift + Geometric(1/2), the s_v distribution of the lottery
// game. In the asymmetric protocol the shift is 1: a candidate is minted
// precisely because its first interaction was as initiator, so its first
// flip is a certain head (levelQ starts at 1). In the symmetric variant
// candidates are minted by the X×Y dance without any coin, so the shift
// is 0.
func geometricGOF(levels []int, shift int) stats.ChiSquare {
	const bins = 6
	obs := make([]float64, bins)
	for _, l := range levels {
		k := l - shift
		if k < 0 {
			k = 0 // impossible under the model; lands in bin 0 and fails loudly
		}
		if k >= bins-1 {
			obs[bins-1]++
		} else {
			obs[k]++
		}
	}
	exp := make([]float64, bins)
	total := float64(len(levels))
	for k := 0; k < bins-1; k++ {
		exp[k] = total * stats.GeometricPMF(0.5, k)
	}
	exp[bins-1] = total * (1 - stats.GeometricCDF(0.5, bins-2))
	return stats.ChiSquareGOF(obs, exp)
}

// coinsExperiment validates the paper's two coin-flip constructions: the
// scheduler-role coins of §3.2.3 (fair and independent because a flip
// happens only when a leader meets a follower) and the F0/F1 coins of §4
// (fair because |F0| = |F1| is invariant).
func coinsExperiment() Experiment {
	e := Experiment{
		ID:    "coins",
		Title: "fairness and independence of both coin-flip constructions",
		Paper: "§3.2.3 (scheduler coins) and §4 (symmetric F0/F1 coins)",
	}
	e.Run = func(cfg Config) Result {
		n := 512
		repCount := reps(cfg, 30)
		if cfg.Quick {
			n = 128
			repCount = 10
		}
		stepsPerRun := uint64(6 * n * core.CeilLog2(n))

		collect := func(trace func(int, uint64, uint64) flipTrace) (bits []int, levels []int, corr float64) {
			var corrSum float64
			runs := 0
			for rep := 0; rep < repCount; rep++ {
				tr := trace(n, stepsPerRun, cfg.Seed+uint64(rep)*7919)
				bits = append(bits, tr.bits...)
				levels = append(levels, tr.levels...)
				if len(tr.bits) > 10 {
					corrSum += lag1Autocorr(tr.bits)
					runs++
				}
			}
			if runs > 0 {
				corr = corrSum / float64(runs)
			}
			return bits, levels, corr
		}

		asymBits, asymLevels, asymCorr := collect(traceAsymmetricFlips)
		symBits, symLevels, symCorr := collect(traceSymmetricFlips)

		analyze := func(bits []int) (heads int, gof stats.ChiSquare) {
			for _, b := range bits {
				heads += b
			}
			obs := []float64{float64(heads), float64(len(bits) - heads)}
			exp := []float64{float64(len(bits)) / 2, float64(len(bits)) / 2}
			return heads, stats.ChiSquareGOF(obs, exp)
		}
		asymHeads, asymGOF := analyze(asymBits)
		symHeads, symGOF := analyze(symBits)
		asymGeo := geometricGOF(asymLevels, 1) // birth head: s_v = 1 + Geom(1/2)
		symGeo := geometricGOF(symLevels, 0)   // no birth coin: s_v = Geom(1/2)

		tbl := table.New("construction", "flips observed", "heads fraction",
			"fairness χ² p", "lag-1 autocorr", "s_v ~ Geometric(1/2) χ² p")
		tbl.AddRowf("scheduler roles (§3.2.3)", len(asymBits),
			f4(float64(asymHeads)/float64(len(asymBits))), f3(asymGOF.P), f4(asymCorr), f3(asymGeo.P))
		tbl.AddRowf("F0/F1 coins (§4)", len(symBits),
			f4(float64(symHeads)/float64(len(symBits))), f3(symGOF.P), f4(symCorr), f3(symGeo.P))

		var body strings.Builder
		fmt.Fprintf(&body, "n = %d, %d instrumented runs per construction, %d steps each.\n\n",
			n, repCount, stepsPerRun)
		body.WriteString(tbl.Markdown())
		body.WriteString("\nThe geometric test checks the per-leader heads-before-first-tail count s_v, the random variable of the §3.1.1 lottery game.\n")

		fair := func(g stats.ChiSquare) bool { return g.P > 0.001 }
		verdicts := []Verdict{
			{
				Claim:  "scheduler-role flips are fair (§3.2.3)",
				Pass:   fair(asymGOF),
				Detail: asymGOF.String(),
			},
			{
				Claim:  "scheduler-role flips show no serial correlation",
				Pass:   math.Abs(asymCorr) < pick(cfg, 0.05, 0.12),
				Detail: fmt.Sprintf("mean lag-1 autocorrelation %s", f4(asymCorr)),
			},
			{
				Claim:  "per-leader lottery levels follow Geometric(1/2) (§3.1.1)",
				Pass:   fair(asymGeo),
				Detail: asymGeo.String(),
			},
			{
				Claim:  "symmetric F0/F1 flips are fair (§4)",
				Pass:   fair(symGOF),
				Detail: symGOF.String(),
			},
			{
				Claim:  "symmetric flips show no serial correlation",
				Pass:   math.Abs(symCorr) < pick(cfg, 0.05, 0.12),
				Detail: fmt.Sprintf("mean lag-1 autocorrelation %s", f4(symCorr)),
			},
			{
				Claim:  "symmetric lottery levels follow Geometric(1/2)",
				Pass:   fair(symGeo),
				Detail: symGeo.String(),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
