package harness

import (
	"fmt"
	"strings"
	"sync"

	"popproto/internal/asciichart"
	"popproto/internal/core"
	"popproto/internal/pp"
	"popproto/internal/stats"
	"popproto/internal/table"
)

// lemma9Experiment measures how long the population takes to advance
// entirely into the fourth epoch — O(log n) parallel time per Lemma 9,
// from the initial configuration and regardless of election progress.
func lemma9Experiment() Experiment {
	e := Experiment{
		ID:    "lemma9",
		Title: "all agents reach epoch 4 within O(log n) parallel time",
		Paper: "Lemma 9 (with Lemma 5)",
	}
	e.Run = func(cfg Config) Result {
		ns := sweepSizes(cfg, true)
		repCount := reps(cfg, 20)

		tbl := table.New("n", "mean parallel time to all-epoch-4", "95% CI", "per lg n")
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		allReached := true
		for i, n := range ns {
			p := core.NewForN(n)
			times := make([]float64, repCount)
			var mu sync.Mutex
			reached := true
			pp.Parallel(repCount, cfg.Workers, cfg.Seed+uint64(i), func(rep int, seed uint64) {
				sim := pp.NewSimulator[core.State](p, n, seed)
				_, ok := runUntil(sim, uint64(n), 40*logBudget(n), func(s pp.Runner[core.State]) bool {
					all := true
					s.ForEach(func(_ int, st core.State) {
						if st.Epoch != 4 {
							all = false
						}
					})
					return all
				})
				times[rep] = sim.ParallelTime()
				if !ok {
					mu.Lock()
					reached = false
					mu.Unlock()
				}
			})
			allReached = allReached && reached
			s := stats.Summarize(times)
			lo, hi := s.CI95()
			tbl.AddRowf(n, f1(s.Mean), fmt.Sprintf("[%s, %s]", f1(lo), f1(hi)),
				f2(s.Mean/float64(core.CeilLog2(n))))
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean)
		}

		power := stats.PowerFit(xs, ys)
		logFit := stats.FitLogX(xs, ys)

		var body strings.Builder
		fmt.Fprintf(&body, "%d runs per size.\n\n", repCount)
		body.WriteString(tbl.Markdown())
		fmt.Fprintf(&body, "\nLog-log exponent %s; direct fit time = %s·lg n %+.1f (R² %s).\n\n",
			f3(power.Slope), f2(logFit.Slope), logFit.Intercept, f3(logFit.R2))
		body.WriteString("```\n")
		body.WriteString(asciichart.Plot([]asciichart.Series{
			{Name: "time to all-epoch-4", X: xs, Y: ys},
		}, asciichart.Options{LogX: true, XLabel: "n", YLabel: "parallel time"}))
		body.WriteString("```\n")

		verdicts := []Verdict{
			{
				Claim:  "every run reached the fourth epoch",
				Pass:   allReached,
				Detail: "within 40× the standard budget",
			},
			{
				Claim:  "epoch-progress time is O(log n) (Lemma 9)",
				Pass:   power.Slope < pick(cfg, 0.35, 0.65),
				Detail: fmt.Sprintf("log-log exponent %s", f3(power.Slope)),
			},
		}
		return renderReport(e, body.String(), verdicts)
	}
	return e
}
