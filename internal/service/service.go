// Package service runs population-protocol simulations as managed work:
// the layer between the protocol registry and the popprotod HTTP server.
//
// Three run kinds share one orchestration core (internal/service/runcore):
//
//   - Jobs: one election described by a JobSpec (protocol, n, engine,
//     seed, knobs), with a census-snapshot trajectory subscribers can
//     stream.
//   - Experiments: parallel Monte-Carlo ensembles of one spec
//     (internal/ensemble) with streaming aggregate updates and optional
//     CI-targeted early stopping. See experiments.go.
//   - Sweeps: parameter grids — a population axis × a protocol axis —
//     whose cells each run as a full ensemble, summarized as fitted
//     a·lg n + b scaling curves. See sweeps.go.
//
// The core owns, once, what the kinds would otherwise duplicate: the
// lifecycle state machine, the bounded-queue worker pool with per-kind
// fairness, the streaming fanout with its close discipline, and the
// canonical-key result cache. Every run is a deterministic function of
// its canonical spec (see the registry's determinism tests), so
// finished work is cached in per-kind LRUs keyed by that spec —
// identical requests are answered without simulating anything — and
// with a durable result store configured (Options.Store) the LRUs are
// caches in front of the store: finished results are appended there and
// served back across restarts before any simulation is scheduled.
package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime"
	"runtime/debug"
	"time"

	"popproto/internal/cluster"
	"popproto/internal/ensemble"
	"popproto/internal/obs"
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/service/runcore"
	"popproto/internal/store"
)

// Service-level submission failures, distinguished so the HTTP layer can
// map them to status codes (429/503) separate from spec validation 400s.
// They are the run core's, re-exported at the package boundary callers
// already import.
var (
	// ErrBusy reports a full queue; the caller should retry later.
	ErrBusy = runcore.ErrBusy
	// ErrClosed reports submission to a manager that has been shut down.
	ErrClosed = runcore.ErrClosed
)

// State is a run's lifecycle state (shared by jobs, experiments and
// sweeps).
type State = runcore.State

const (
	StateQueued   = runcore.StateQueued
	StateRunning  = runcore.StateRunning
	StateDone     = runcore.StateDone
	StateFailed   = runcore.StateFailed
	StateCanceled = runcore.StateCanceled
)

// JobSpec is the wire-format job description (the POST /v1/jobs body).
// Zero values are meaningful defaults, resolved by canonicalization:
// engine "" selects the census engine (the only practical one at large n),
// seed 0 derives a seed deterministically from the rest of the spec, and
// maxParallelTime 0 selects the protocol's default step budget.
type JobSpec struct {
	// Protocol is a registry key (GET /v1/protocols lists them).
	Protocol string `json:"protocol"`
	// N is the population size.
	N int `json:"n"`
	// Engine is "count", "agent", "batch", "hybrid" or "auto" ("" = "count";
	// "auto" resolves to the registry's recommendation for the protocol
	// and n at canonicalization time, so the canonical spec — and the
	// cache key and derived seed — always name a concrete engine).
	Engine string `json:"engine,omitempty"`
	// Seed seeds the scheduler; 0 derives one from the canonical spec, so
	// omitting it still yields a deterministic, cacheable job.
	Seed uint64 `json:"seed,omitempty"`
	// M is the PLL knowledge parameter (0 = canonical ⌈lg n⌉; rejected
	// for protocols without an m).
	M int `json:"m,omitempty"`
	// MaxParallelTime caps the run, in parallel time units (0 = the
	// protocol's registry default budget; values beyond that default are
	// clamped to it, so the override can only shorten a run).
	MaxParallelTime float64 `json:"maxParallelTime,omitempty"`
	// Verify, when nonzero, runs that many extra interactions after
	// stabilization and reports whether any output changed.
	Verify uint64 `json:"verify,omitempty"`
}

// key renders the canonical cache key. Call only on canonicalized specs.
func (s JobSpec) key() string {
	return fmt.Sprintf("%s n=%d engine=%s seed=%d m=%d maxpt=%g verify=%d",
		s.Protocol, s.N, s.Engine, s.Seed, s.M, s.MaxParallelTime, s.Verify)
}

// runID derives a public run id from a canonical key, so identical
// specs map to the same id and re-submissions land on the same run.
// The prefix distinguishes the kinds ("j", "e", "s").
func runID(prefix, key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%s%016x", prefix, h.Sum64())
}

// deriveSeed maps a canonical spec (minus the seed) to a deterministic
// scheduler seed. The derivation lives in the ensemble package so that a
// seedless job and replicate 0 of a seedless experiment over the same
// spec run with the same seed — and therefore produce bit-identical
// results (ensemble.ReplicateSeed(base, 0) == base).
func deriveSeed(s JobSpec) uint64 {
	return ensemble.DeriveSeed(s.Protocol, s.N, s.Engine, s.M)
}

// censusCap bounds the number of distinct states reported per census in
// results and snapshots; protocols like MaxID have Θ(n) live states and
// would otherwise dominate every payload.
const censusCap = 32

// Snapshot is one point of a job's census trajectory.
type Snapshot struct {
	Step         uint64  `json:"step"`
	ParallelTime float64 `json:"parallelTime"`
	Leaders      int     `json:"leaders"`
	// Census holds the censusCap most populous states; OmittedStates and
	// OmittedAgents account for the truncated tail.
	Census        map[string]int `json:"census"`
	OmittedStates int            `json:"omittedStates,omitempty"`
	OmittedAgents int            `json:"omittedAgents,omitempty"`
}

// Result is a finished job's outcome.
type Result struct {
	// Stabilized reports whether the run reached the protocol's target
	// leader count within its step budget.
	Stabilized bool `json:"stabilized"`
	// Leaders is the final leader count (for the epidemic workload: the
	// number of agents never reached).
	Leaders int `json:"leaders"`
	// Steps is the interaction count at which the run ended; when
	// Stabilized it is the exact stabilization step.
	Steps        uint64  `json:"steps"`
	ParallelTime float64 `json:"parallelTime"`
	// LiveStates is the number of distinct states in the final census
	// (before truncation).
	LiveStates    int            `json:"liveStates"`
	Census        map[string]int `json:"census"`
	OmittedStates int            `json:"omittedStates,omitempty"`
	OmittedAgents int            `json:"omittedAgents,omitempty"`
	// Stable is set when the spec requested verification: whether no
	// output changed over the extra interactions.
	Stable *bool `json:"stable,omitempty"`
	// Description is the registry's human description of the protocol
	// instance.
	Description string `json:"description"`
	// Hybrid carries the hybrid engine's controller telemetry — mode
	// occupancy and handovers — and is nil on other engines. Mode
	// decisions are deterministic functions of the chain history, so the
	// telemetry is part of the deterministic surface (cache-safe).
	Hybrid *HybridTelemetry `json:"hybrid,omitempty"`
	// WallMillis is the wall-clock simulation time. It is reported for
	// operators and excluded from the deterministic surface.
	WallMillis int64 `json:"wallMillis"`
	// Distribution reports where the work executed (a single job is
	// always local). Like WallMillis it is operational metadata, outside
	// the deterministic surface.
	Distribution *cluster.Distribution `json:"distribution,omitempty"`
}

// HybridTelemetry is the per-run rendering of the hybrid controller's
// mode occupancy: how the run's interactions partition over the three
// execution modes, and how often the controller switched. The step
// fields sum to the result's Steps. SkipEntries counts the handovers the
// payoff rule took into geometric skip mode; SkipEvents the geometric
// skip events executed there (SkipSteps/SkipEvents is the mean realized
// skip length).
type HybridTelemetry struct {
	RoundSteps    uint64 `json:"roundSteps"`
	InteractSteps uint64 `json:"interactSteps"`
	SkipSteps     uint64 `json:"skipSteps"`
	Handovers     uint64 `json:"handovers"`
	SkipEntries   uint64 `json:"skipEntries"`
	SkipEvents    uint64 `json:"skipEvents"`
}

// topCensus returns the k most populous states (in registry.SortedCensus
// order, so truncation is deterministic and agrees with the registry's
// census rendering) and the number of states and agents truncated away.
// Censuses here are at most a few thousand entries (the census engine's
// live-state table), so a full sort is fine.
func topCensus(census map[string]int, k int) (top map[string]int, omittedStates, omittedAgents int) {
	if len(census) <= k {
		return census, 0, 0
	}
	entries := registry.SortedCensus(census)
	top = make(map[string]int, k)
	for _, e := range entries[:k] {
		top[e.State] = e.Count
	}
	for _, e := range entries[k:] {
		omittedStates++
		omittedAgents += e.Count
	}
	return top, omittedStates, omittedAgents
}

// Job is one managed simulation: the generic run core plus the job's
// spec, result, and census-trajectory replay state. All exported
// methods are safe for concurrent use.
type Job struct {
	*runcore.Run[Snapshot]

	spec   JobSpec       // canonicalized
	rspec  registry.Spec // resolved registry spec
	target int
	budget uint64

	// Guarded by the embedded Run's lock (via Locked/Publish/Finish
	// callbacks), which is what keeps the trajectory replay atomic with
	// the fanout.
	result    *Result
	snapshots []Snapshot
	maxSnaps  int
}

// JobView is the JSON rendering of a job's current state.
type JobView struct {
	ID          string  `json:"id"`
	State       State   `json:"state"`
	Spec        JobSpec `json:"spec"`
	BudgetSteps uint64  `json:"budgetSteps"`
	Error       string  `json:"error,omitempty"`
	Result      *Result `json:"result,omitempty"`
	Snapshots   int     `json:"snapshots"`
	// Restored marks a job served from the durable store after a restart;
	// its result is intact but its census trajectory is not retained.
	Restored bool       `json:"restored,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// Result returns the job's result, or nil while it is not done.
func (j *Job) Result() *Result {
	var res *Result
	j.Locked(func() { res = j.result })
	return res
}

// View renders the job for JSON responses.
func (j *Job) View() JobView {
	meta := j.Meta()
	v := JobView{
		ID:          j.ID,
		State:       meta.State,
		Spec:        j.spec,
		BudgetSteps: j.budget,
		Error:       meta.Err,
		Restored:    meta.Restored,
		Created:     meta.Created,
		Started:     meta.Started,
		Finished:    meta.Finished,
	}
	j.Locked(func() {
		v.Result = j.result
		v.Snapshots = len(j.snapshots)
	})
	return v
}

// Subscribe returns the snapshots recorded so far plus a channel of
// subsequent ones; the channel is closed when the job finishes. For a
// finished job the replay holds the full stored trajectory and the channel
// is already closed. The returned cancel function stops delivery (it does
// NOT close the channel — only job completion does); it is safe to call
// more than once. A consumer that cancels early must stop reading on its
// own signal, as the HTTP trace handler does via the request context.
func (j *Job) Subscribe() (replay []Snapshot, live <-chan Snapshot, cancel func()) {
	live, cancel = j.Run.Subscribe(256, func() {
		replay = append([]Snapshot(nil), j.snapshots...)
	})
	return replay, live, cancel
}

// record appends a census snapshot and fans it out to subscribers without
// blocking the simulation (slow subscribers miss snapshots rather than
// stalling the run). When the stored trajectory exceeds its cap it is
// decimated — every other point dropped — keeping it bounded and
// logarithmically spaced for long runs; the matching cadence doubling
// lives in ensemble.Drive's chunk schedule, which runJob advances the
// simulation with.
func (j *Job) record(el registry.Election) {
	census, omitStates, omitAgents := topCensus(el.Census(), censusCap)
	snap := Snapshot{
		Step:          el.Steps(),
		ParallelTime:  el.ParallelTime(),
		Leaders:       el.Leaders(),
		Census:        census,
		OmittedStates: omitStates,
		OmittedAgents: omitAgents,
	}
	j.Publish(snap, func() {
		j.snapshots = append(j.snapshots, snap)
		if len(j.snapshots) > j.maxSnaps {
			kept := j.snapshots[:0]
			for i := 0; i < len(j.snapshots); i += 2 {
				kept = append(kept, j.snapshots[i])
			}
			j.snapshots = kept
		}
	})
}

func (j *Job) snapshotCount() int {
	var n int
	j.Locked(func() { n = len(j.snapshots) })
	return n
}

func (j *Job) lastSnapshotStep() uint64 {
	var step uint64
	j.Locked(func() {
		if len(j.snapshots) > 0 {
			step = j.snapshots[len(j.snapshots)-1].Step
		}
	})
	return step
}

// Options configures a Manager. Zero values select the documented
// defaults.
type Options struct {
	// Workers is the simulation worker-pool size (default NumCPU, capped
	// at 8: jobs are single-threaded and memory-bound, not I/O-bound).
	Workers int
	// CacheSize is the finished-work LRU capacity, per kind (default 256).
	CacheSize int
	// QueueSize bounds the number of queued-but-not-running runs, per
	// kind; beyond it submission returns ErrBusy (default 256).
	QueueSize int
	// MaxN bounds accepted population sizes on the census engine
	// (default 200 million, ~50% above the largest benchmarked
	// population; the census engine's memory is Θ(live states), not
	// Θ(n), so huge n is safe there).
	MaxN int
	// MaxNAgent bounds population sizes on the per-agent engine, whose
	// memory and per-interaction work are Θ(n) (default 10 million —
	// beyond that a single job would hold gigabytes and a worker for
	// hours).
	MaxNAgent int
	// MaxNBatch bounds population sizes on the batch and hybrid engines.
	// Like the census engine their memory is Θ(live states), and
	// collision-free rounds make them the fastest engines at large n: a
	// full n=10⁹ PLL election holds ~2 MiB of census and finishes in
	// minutes. The default is 2 billion — twice the largest benchmarked
	// population — unless MaxN is set explicitly, in which case it
	// bounds these engines too.
	MaxNBatch int
	// MaxSnapshots bounds each job's stored trajectory (default 256). It
	// is also the observation cap of the deterministic drive schedule
	// (ensemble.Drive), so it is part of results' deterministic surface:
	// change it and cached results for chunk-sensitive engines change.
	MaxSnapshots int
	// Store, when non-nil, persists finished jobs, experiments and
	// sweeps and serves them back across restarts; the LRUs then cache
	// in front of it instead of being the only copy.
	Store *store.Store
	// ExperimentWorkers bounds concurrently *running* experiments
	// (default 1). Each running experiment fans its replicates over up to
	// Workers simulation goroutines of its own, so the total simulation
	// parallelism is roughly Workers × (1 + ExperimentWorkers + SweepWorkers).
	ExperimentWorkers int
	// MaxReplicates bounds an experiment's (and a sweep cell's)
	// requested ensemble size (default 100_000).
	MaxReplicates int
	// SweepWorkers bounds concurrently running sweeps (default 1). A
	// running sweep executes its cells sequentially, each cell fanning
	// replicates over up to Workers goroutines like an experiment.
	SweepWorkers int
	// MaxSweepCells bounds the number of cells a sweep's axes may expand
	// into (default 128) — each cell is a full ensemble.
	MaxSweepCells int
	// LeaseTTL is the cluster coordinator's lease time-to-live: how long
	// a worker's replicate-range lease survives without a heartbeat
	// before the range is reclaimed and reissued (default 15s).
	LeaseTTL time.Duration
	// Metrics, when non-nil, is the obs registry the manager registers
	// its instruments on (popprotod passes one shared with the store and
	// debug listener). Nil creates a private registry, so multiple
	// managers in one process (tests) never collide on metric names.
	Metrics *obs.Registry
	// Logger, when non-nil, receives one structured log record per HTTP
	// request (method, route, status, latency, resolved run id). Nil
	// disables request logging.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = min(runtime.NumCPU(), 8)
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
	explicitMaxN := o.MaxN > 0
	if !explicitMaxN {
		o.MaxN = 200_000_000
	}
	if o.MaxNAgent <= 0 {
		o.MaxNAgent = 10_000_000
	}
	if o.MaxNBatch <= 0 {
		if explicitMaxN {
			o.MaxNBatch = o.MaxN
		} else {
			o.MaxNBatch = 2_000_000_000
		}
	}
	if o.MaxSnapshots <= 0 {
		o.MaxSnapshots = 256
	}
	if o.ExperimentWorkers <= 0 {
		o.ExperimentWorkers = 1
	}
	if o.MaxReplicates <= 0 {
		o.MaxReplicates = 100_000
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = 1
	}
	if o.MaxSweepCells <= 0 {
		o.MaxSweepCells = 128
	}
	return o
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts submissions answered from the finished-work cache,
	// Joined those attached to an identical in-flight run, and Misses
	// those that started a fresh simulation. All kinds share these
	// counters.
	Hits, Joined, Misses uint64
	// StoreHits counts submissions answered from the durable store after
	// missing the in-memory cache (e.g. after a restart or an LRU
	// eviction); StoreErrors counts failed persistence attempts.
	StoreHits, StoreErrors uint64
	// Jobs is the number of indexed jobs (live + cached), Cached the job
	// LRU's current size. Experiments and Sweeps count indexed runs of
	// those kinds.
	Jobs, Cached, Experiments int
	Sweeps                    int
	// Stored is the number of results in the durable store (0 without
	// one).
	Stored int
}

// Manager owns the shared scheduler, the per-kind run indexes, the
// result caches, and the optional durable store behind them.
type Manager struct {
	opts Options

	core  *runcore.Core
	sched *runcore.Scheduler

	jobClass   *runcore.Class
	expClass   *runcore.Class
	sweepClass *runcore.Class

	jobs   *runcore.Index[*Job]
	exps   *runcore.Index[*Experiment]
	sweeps *runcore.Index[*Sweep]

	coord *cluster.Coordinator

	reg     *obs.Registry
	metrics *serviceMetrics
	logger  *slog.Logger
	started time.Time
}

// NewManager starts a manager with opts' scheduler and caches.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		opts:    opts,
		core:    runcore.NewCore(opts.Store),
		reg:     reg,
		logger:  opts.Logger,
		started: time.Now(),
	}
	m.core.Register(reg)
	m.metrics = newServiceMetrics(reg)
	m.coord = cluster.NewCoordinator(cluster.Options{LeaseTTL: opts.LeaseTTL})
	m.coord.Instrument(reg)
	// One worker pool sized so every kind can reach its concurrency cap
	// even when the others are saturated: jobs up to Workers at once,
	// experiments up to ExperimentWorkers, sweeps up to SweepWorkers
	// (the latter two each fan replicates over goroutines of their own).
	m.sched = runcore.NewScheduler(opts.Workers + opts.ExperimentWorkers + opts.SweepWorkers)
	m.sched.SetMetrics(runcore.NewMetrics(reg))
	m.jobClass = m.sched.NewClass("jobs", opts.QueueSize, opts.Workers)
	m.expClass = m.sched.NewClass("experiments", opts.QueueSize, opts.ExperimentWorkers)
	m.sweepClass = m.sched.NewClass("sweeps", opts.QueueSize, opts.SweepWorkers)
	m.jobs = runcore.NewIndex(m.core, store.KindJob, opts.CacheSize, func(j *Job) string { return j.ID })
	m.exps = runcore.NewIndex(m.core, store.KindExperiment, opts.CacheSize, func(e *Experiment) string { return e.ID })
	m.sweeps = runcore.NewIndex(m.core, store.KindSweep, opts.CacheSize, func(s *Sweep) string { return s.ID })
	return m
}

// MetricsRegistry returns the obs registry the manager's instruments
// live on (the one behind GET /metrics).
func (m *Manager) MetricsRegistry() *obs.Registry { return m.reg }

// Close stops accepting work, cancels everything queued or running, and
// waits for the workers to exit. It does not close the store: the store
// belongs to the caller that opened it.
func (m *Manager) Close() {
	already := m.core.SetClosed()
	if !already {
		m.jobs.CancelAll()
		m.exps.CancelAll()
		m.sweeps.CancelAll()
		m.coord.Close()
	}
	m.sched.Close()
}

// Canonicalize resolves a JobSpec's defaults (engine, seed, budget) and
// validates it against the registry and the manager's limits, returning
// the canonical spec, the resolved registry spec, the stabilization
// target, and the step budget. The pseudo-engine "auto" is resolved to
// the registry's recommendation here, so canonical specs — and with
// them cache keys and derived seeds — always name a concrete engine.
// Errors wrap registry.ErrBadSpec.
func (m *Manager) Canonicalize(spec JobSpec) (JobSpec, registry.Spec, int, uint64, error) {
	if spec.Engine == "" {
		spec.Engine = pp.EngineCount.String()
	}
	engine, err := pp.ParseEngine(spec.Engine)
	if err != nil {
		return JobSpec{}, registry.Spec{}, 0, 0, fmt.Errorf("%w: %v", registry.ErrBadSpec, err)
	}
	if engine == pp.EngineAuto {
		resolved, err := registry.ResolveEngine(registry.Spec{Protocol: spec.Protocol, N: spec.N, Engine: engine})
		if err != nil {
			return JobSpec{}, registry.Spec{}, 0, 0, err
		}
		engine = resolved.Engine
		spec.Engine = engine.String()
	}
	if limit := m.engineLimit(engine); spec.N > limit {
		return JobSpec{}, registry.Spec{}, 0, 0, fmt.Errorf(
			"%w: population size %d exceeds this server's %s-engine limit of %d (the census-based engines accept the largest populations)",
			registry.ErrBadSpec, spec.N, engine, limit)
	}
	if spec.MaxParallelTime < 0 {
		return JobSpec{}, registry.Spec{}, 0, 0, fmt.Errorf(
			"%w: negative maxParallelTime %g", registry.ErrBadSpec, spec.MaxParallelTime)
	}
	if spec.Seed == 0 {
		spec.Seed = deriveSeed(spec)
	}
	rspec := registry.Spec{
		Protocol: spec.Protocol,
		N:        spec.N,
		Engine:   engine,
		Seed:     spec.Seed,
		M:        spec.M,
	}
	entry, err := registry.Validate(rspec)
	if err != nil {
		return JobSpec{}, registry.Spec{}, 0, 0, err
	}
	budget := entry.StepBudget(spec.N)
	if spec.MaxParallelTime > 0 {
		// The override can only shorten the run: the registry default is
		// already thousands of expected stabilization times, and an
		// uncapped client value would let one request pin a worker
		// near-forever (and overflow the float→uint64 conversion).
		if steps := spec.MaxParallelTime * float64(spec.N); steps < float64(budget) {
			budget = uint64(steps)
		}
	}
	return spec, rspec, entry.Target, budget, nil
}

// engineLimit returns the population cap for the given engine: per-agent
// memory and work are Θ(n), the census-based engines (count, batch,
// hybrid) are Θ(live states).
func (m *Manager) engineLimit(engine pp.Engine) int {
	switch engine {
	case pp.EngineAgent:
		return m.opts.MaxNAgent
	case pp.EngineBatch, pp.EngineHybrid:
		return m.opts.MaxNBatch
	default:
		return m.opts.MaxN
	}
}

// Submit canonicalizes spec and returns the job serving it: a cached
// finished job (cached = true), an identical job already in flight, or a
// freshly queued one. It fails with ErrBusy when the queue is full and an
// error wrapping registry.ErrBadSpec when the spec is invalid.
func (m *Manager) Submit(spec JobSpec) (job *Job, cached bool, err error) {
	canon, rspec, target, budget, err := m.Canonicalize(spec)
	if err != nil {
		return nil, false, err
	}
	key := canon.key()
	j, outcome, err := m.jobs.Submit(key, runID("j", key), m.decodeJob,
		func() (*Job, error) {
			j := &Job{
				Run:      runcore.NewRun[Snapshot](runID("j", key)),
				spec:     canon,
				rspec:    rspec,
				target:   target,
				budget:   budget,
				maxSnaps: m.opts.MaxSnapshots,
			}
			if err := m.jobClass.Enqueue(func() { m.runJob(j) }); err != nil {
				j.Cancel()
				return nil, err
			}
			return j, nil
		})
	if err != nil {
		return nil, false, err
	}
	return j, outcome.Cached(), nil
}

// Get returns the job with the given id, restoring it from the durable
// store if it is no longer indexed in memory.
func (m *Manager) Get(id string) (*Job, bool) {
	return m.jobs.Get(id, m.decodeJob)
}

// decodeJob reconstructs a finished job from a durable store record,
// used by the run core's restore-on-miss path. It returns false when
// the record no longer decodes or validates against the current
// registry.
func (m *Manager) decodeJob(rec store.Record) (*Job, bool) {
	var spec JobSpec
	var res Result
	if json.Unmarshal(rec.Spec, &spec) != nil || json.Unmarshal(rec.Data, &res) != nil {
		return nil, false
	}
	// Recompute the derived view fields (budget, target) from the
	// canonical spec; a record that no longer validates — the registry
	// changed underneath it — is not served.
	canon, rspec, target, budget, err := m.Canonicalize(spec)
	if err != nil || canon.key() != rec.Key {
		return nil, false
	}
	return &Job{
		Run:      runcore.NewRestoredRun[Snapshot](rec.ID, rec.SavedAt),
		spec:     canon,
		rspec:    rspec,
		target:   target,
		budget:   budget,
		result:   &res,
		maxSnaps: m.opts.MaxSnapshots,
	}, true
}

// Cancel requests cancellation of the job with the given id, reporting
// whether the job exists. Finished jobs are unaffected.
func (m *Manager) Cancel(id string) bool {
	return m.jobs.Cancel(id)
}

// Stats returns current cache, store and pool counters.
func (m *Manager) Stats() Stats {
	c := m.core.Counters()
	return Stats{
		Hits:        c.Hits,
		Joined:      c.Joined,
		Misses:      c.Misses,
		StoreHits:   c.StoreHits,
		StoreErrors: c.StoreErrors,
		Jobs:        m.jobs.Len(),
		Cached:      m.jobs.CacheLen(),
		Experiments: m.exps.Len(),
		Sweeps:      m.sweeps.Len(),
		Stored:      c.Stored,
	}
}

// QueueHealth is one kind's admission state in the health payload.
type QueueHealth struct {
	// Queued is the kind's admitted-but-not-dispatched task count;
	// Running its currently executing tasks.
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// Health is the GET /v1/health payload: liveness plus uptime, build
// identity, per-kind queue state, and the cache/store counters — every
// number sourced from the same obs instruments /metrics renders.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// GoVersion and Revision identify the build (from the embedded build
	// info; Revision is empty when the binary was built outside a VCS
	// checkout).
	GoVersion string                 `json:"goVersion"`
	Revision  string                 `json:"revision,omitempty"`
	Queues    map[string]QueueHealth `json:"queues"`
	Stats     Stats                  `json:"stats"`
}

// Health snapshots the manager for the health endpoint.
func (m *Manager) Health() Health {
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(m.started).Seconds(),
		Stats:         m.Stats(),
		Queues: map[string]QueueHealth{
			m.jobClass.Name():   {Queued: m.jobClass.Queued(), Running: m.jobClass.Running()},
			m.expClass.Name():   {Queued: m.expClass.Queued(), Running: m.expClass.Running()},
			m.sweepClass.Name(): {Queued: m.sweepClass.Queued(), Running: m.sweepClass.Running()},
		},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		h.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				h.Revision = s.Value
			}
		}
	}
	return h
}

// runJob executes one job to a terminal state and indexes the outcome.
func (m *Manager) runJob(j *Job) {
	if !j.Begin(nil) {
		m.metrics.recordRunState(store.KindJob, StateCanceled)
		m.jobs.Finished(j.spec.key(), j)
		return
	}
	start := time.Now()
	el, err := registry.New(j.rspec)
	if err != nil {
		// The spec was validated at submission; a failure here is an
		// internal inconsistency, reported on the job rather than killing
		// the worker.
		j.Finish(StateFailed, err.Error(), nil)
		m.metrics.recordRunState(store.KindJob, StateFailed)
		m.jobs.Finished(j.spec.key(), j)
		return
	}

	// ensemble.Drive owns the chunk schedule (one parallel-time unit,
	// doubling on trajectory decimation): the census engines draw
	// randomness differently at different RunUntilLeaders boundaries, so
	// jobs and ensemble replicates must advance through the same driver
	// for replicate 0 of an experiment to be bit-identical to the job.
	// The observe callback records the initial configuration too, so
	// every trace has ≥ 2 points.
	canceled := ensemble.Drive(j.Context(), el, j.target, j.budget, j.maxSnaps,
		func() { j.record(el) })
	if canceled {
		j.Finish(StateCanceled, "canceled", nil)
		m.metrics.recordRunState(store.KindJob, StateCanceled)
		m.metrics.recordEngineRun(j.spec.Engine, el.Steps(), time.Since(start))
		m.jobs.Finished(j.spec.key(), j)
		return
	}
	if last := el.Steps(); j.snapshotCount() == 1 || j.lastSnapshotStep() != last {
		// Runs that stabilize inside the first chunk still get a final
		// snapshot distinct from the initial one.
		j.record(el)
	}

	res := &Result{
		Stabilized:   el.Leaders() <= j.target,
		Leaders:      el.Leaders(),
		Steps:        el.Steps(),
		ParallelTime: el.ParallelTime(),
		LiveStates:   el.LiveStates(),
		Description:  el.Description(),
	}
	// Capture the hybrid controller's telemetry before verification runs
	// extra interactions, so the occupancy partition matches res.Steps.
	if hs, ok := el.HybridStats(); ok {
		res.Hybrid = &HybridTelemetry{
			RoundSteps:    hs.RoundSteps,
			InteractSteps: hs.InteractSteps,
			SkipSteps:     hs.SkipSteps,
			Handovers:     hs.Handovers,
			SkipEntries:   hs.SkipEntries,
			SkipEvents:    hs.SkipEvents,
		}
		m.metrics.recordHybrid(hs)
	}
	m.metrics.recordLiveStates(j.spec.Engine, res.LiveStates)
	if j.spec.Verify > 0 && res.Stabilized {
		stable := el.VerifyStable(j.spec.Verify)
		res.Stable = &stable
	}
	res.Census, res.OmittedStates, res.OmittedAgents = topCensus(el.Census(), censusCap)
	res.WallMillis = time.Since(start).Milliseconds()
	res.Distribution = cluster.LocalDistribution()
	j.Finish(StateDone, "", func() { j.result = res })
	m.metrics.recordRunState(store.KindJob, StateDone)
	m.metrics.recordEngineRun(j.spec.Engine, el.Steps(), time.Since(start))
	m.jobs.Finished(j.spec.key(), j)
	m.core.Persist(store.KindJob, j.spec.key(), j.ID, j.spec, res)
}
