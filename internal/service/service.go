// Package service runs population-protocol simulations as managed jobs:
// the layer between the protocol registry and the popprotod HTTP server.
//
// A job is described by a JobSpec (protocol, n, engine, seed, knobs). The
// Manager canonicalizes the spec, derives a deterministic seed when none
// is given, and runs the job on a bounded worker pool. Because every run
// is a deterministic function of its canonical spec (see the registry's
// determinism tests), finished jobs are cached in an LRU keyed by that
// spec: identical requests — the hot path when the same elections are
// requested over and over — are answered without simulating anything.
//
// While a job runs, the worker records a census-snapshot trajectory
// (decimated to a bounded length) that subscribers can stream; the HTTP
// layer forwards it as server-sent events.
//
// With a durable result store configured (Options.Store), the LRU is a
// cache in front of the store rather than the source of truth: finished
// jobs and experiments are appended to the store, and a submission that
// misses both the cache and the in-flight index is answered from the
// store — across restarts — before any simulation is scheduled.
//
// Beyond single jobs, the Manager runs *experiments*: parallel
// Monte-Carlo ensembles of one spec (internal/ensemble) with streaming
// aggregate updates and optional CI-targeted early stopping. See
// experiments.go.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
	"popproto/internal/store"
)

// Service-level submission failures, distinguished so the HTTP layer can
// map them to status codes (429/503) separate from spec validation 400s.
var (
	// ErrBusy reports a full job queue; the caller should retry later.
	ErrBusy = errors.New("service: job queue is full")
	// ErrClosed reports submission to a manager that has been shut down.
	ErrClosed = errors.New("service: manager is closed")
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether no further transitions are possible.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is the wire-format job description (the POST /v1/jobs body).
// Zero values are meaningful defaults, resolved by canonicalization:
// engine "" selects the census engine (the only practical one at large n),
// seed 0 derives a seed deterministically from the rest of the spec, and
// maxParallelTime 0 selects the protocol's default step budget.
type JobSpec struct {
	// Protocol is a registry key (GET /v1/protocols lists them).
	Protocol string `json:"protocol"`
	// N is the population size.
	N int `json:"n"`
	// Engine is "count", "agent" or "batch" ("" = "count"; "batch" is the
	// fastest census-based engine for small-state-space protocols at
	// large n).
	Engine string `json:"engine,omitempty"`
	// Seed seeds the scheduler; 0 derives one from the canonical spec, so
	// omitting it still yields a deterministic, cacheable job.
	Seed uint64 `json:"seed,omitempty"`
	// M is the PLL knowledge parameter (0 = canonical ⌈lg n⌉; rejected
	// for protocols without an m).
	M int `json:"m,omitempty"`
	// MaxParallelTime caps the run, in parallel time units (0 = the
	// protocol's registry default budget; values beyond that default are
	// clamped to it, so the override can only shorten a run).
	MaxParallelTime float64 `json:"maxParallelTime,omitempty"`
	// Verify, when nonzero, runs that many extra interactions after
	// stabilization and reports whether any output changed.
	Verify uint64 `json:"verify,omitempty"`
}

// key renders the canonical cache key. Call only on canonicalized specs.
func (s JobSpec) key() string {
	return fmt.Sprintf("%s n=%d engine=%s seed=%d m=%d maxpt=%g verify=%d",
		s.Protocol, s.N, s.Engine, s.Seed, s.M, s.MaxParallelTime, s.Verify)
}

// jobID derives the public job id from the canonical key, so identical
// specs map to the same id and re-submissions land on the same job.
func jobID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("j%016x", h.Sum64())
}

// deriveSeed maps a canonical spec (minus the seed) to a deterministic
// scheduler seed. The derivation lives in the ensemble package so that a
// seedless job and replicate 0 of a seedless experiment over the same
// spec run with the same seed — and therefore produce bit-identical
// results (ensemble.ReplicateSeed(base, 0) == base).
func deriveSeed(s JobSpec) uint64 {
	return ensemble.DeriveSeed(s.Protocol, s.N, s.Engine, s.M)
}

// censusCap bounds the number of distinct states reported per census in
// results and snapshots; protocols like MaxID have Θ(n) live states and
// would otherwise dominate every payload.
const censusCap = 32

// Snapshot is one point of a job's census trajectory.
type Snapshot struct {
	Step         uint64  `json:"step"`
	ParallelTime float64 `json:"parallelTime"`
	Leaders      int     `json:"leaders"`
	// Census holds the censusCap most populous states; OmittedStates and
	// OmittedAgents account for the truncated tail.
	Census        map[string]int `json:"census"`
	OmittedStates int            `json:"omittedStates,omitempty"`
	OmittedAgents int            `json:"omittedAgents,omitempty"`
}

// Result is a finished job's outcome.
type Result struct {
	// Stabilized reports whether the run reached the protocol's target
	// leader count within its step budget.
	Stabilized bool `json:"stabilized"`
	// Leaders is the final leader count (for the epidemic workload: the
	// number of agents never reached).
	Leaders int `json:"leaders"`
	// Steps is the interaction count at which the run ended; when
	// Stabilized it is the exact stabilization step.
	Steps        uint64  `json:"steps"`
	ParallelTime float64 `json:"parallelTime"`
	// LiveStates is the number of distinct states in the final census
	// (before truncation).
	LiveStates    int            `json:"liveStates"`
	Census        map[string]int `json:"census"`
	OmittedStates int            `json:"omittedStates,omitempty"`
	OmittedAgents int            `json:"omittedAgents,omitempty"`
	// Stable is set when the spec requested verification: whether no
	// output changed over the extra interactions.
	Stable *bool `json:"stable,omitempty"`
	// Description is the registry's human description of the protocol
	// instance.
	Description string `json:"description"`
	// WallMillis is the wall-clock simulation time. It is reported for
	// operators and excluded from the deterministic surface.
	WallMillis int64 `json:"wallMillis"`
}

// topCensus returns the k most populous states (in registry.SortedCensus
// order, so truncation is deterministic and agrees with the registry's
// census rendering) and the number of states and agents truncated away.
// Censuses here are at most a few thousand entries (the census engine's
// live-state table), so a full sort is fine.
func topCensus(census map[string]int, k int) (top map[string]int, omittedStates, omittedAgents int) {
	if len(census) <= k {
		return census, 0, 0
	}
	entries := registry.SortedCensus(census)
	top = make(map[string]int, k)
	for _, e := range entries[:k] {
		top[e.State] = e.Count
	}
	for _, e := range entries[k:] {
		omittedStates++
		omittedAgents += e.Count
	}
	return top, omittedStates, omittedAgents
}

// Job is one managed simulation. All exported methods are safe for
// concurrent use.
type Job struct {
	// ID is the public identifier, derived from the canonical spec.
	ID string

	spec   JobSpec       // canonicalized
	rspec  registry.Spec // resolved registry spec
	target int
	budget uint64

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	err       string
	result    *Result
	snapshots []Snapshot
	maxSnaps  int
	// restored marks a job reconstructed from the durable store after a
	// restart: terminal from birth, with no stored trajectory.
	restored bool
	// subs holds the live subscriptions. Channels are closed ONLY by
	// finishLocked, which runs in the job's worker goroutine — the same
	// goroutine as record's fanout sends — so a send can never race a
	// close. Subscription cancel only deletes the entry.
	subs map[chan Snapshot]struct{}
	done chan struct{}

	created, started, finished time.Time
}

// JobView is the JSON rendering of a job's current state.
type JobView struct {
	ID          string  `json:"id"`
	State       State   `json:"state"`
	Spec        JobSpec `json:"spec"`
	BudgetSteps uint64  `json:"budgetSteps"`
	Error       string  `json:"error,omitempty"`
	Result      *Result `json:"result,omitempty"`
	Snapshots   int     `json:"snapshots"`
	// Restored marks a job served from the durable store after a restart;
	// its result is intact but its census trajectory is not retained.
	Restored bool       `json:"restored,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's result, or nil while it is not done.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// View renders the job for JSON responses.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		State:       j.state,
		Spec:        j.spec,
		BudgetSteps: j.budget,
		Error:       j.err,
		Result:      j.result,
		Snapshots:   len(j.snapshots),
		Restored:    j.restored,
		Created:     j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Subscribe returns the snapshots recorded so far plus a channel of
// subsequent ones; the channel is closed when the job finishes. For a
// finished job the replay holds the full stored trajectory and the channel
// is already closed. The returned cancel function stops delivery (it does
// NOT close the channel — only job completion does, so the delivering
// goroutine can never send on a closed channel); it is safe to call more
// than once. A consumer that cancels early must stop reading on its own
// signal, as the HTTP trace handler does via the request context.
func (j *Job) Subscribe() (replay []Snapshot, live <-chan Snapshot, cancel func()) {
	ch := make(chan Snapshot, 256)
	j.mu.Lock()
	replay = append([]Snapshot(nil), j.snapshots...)
	if j.state.terminal() {
		j.mu.Unlock()
		close(ch)
		return replay, ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch) // no-op after finishLocked set subs to nil
		j.mu.Unlock()
	}
}

// begin moves a queued job to running, or reports false if it was
// canceled while waiting in the queue.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ctx.Err() != nil || j.state != StateQueued {
		j.finishLocked(StateCanceled, "canceled while queued")
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// record appends a census snapshot and fans it out to subscribers without
// blocking the simulation (slow subscribers miss snapshots rather than
// stalling the run). When the stored trajectory exceeds its cap it is
// decimated — every other point dropped — keeping it bounded and
// logarithmically spaced for long runs; the matching cadence doubling
// lives in ensemble.Drive's chunk schedule, which runJob advances the
// simulation with.
func (j *Job) record(el registry.Election) {
	census, omitStates, omitAgents := topCensus(el.Census(), censusCap)
	snap := Snapshot{
		Step:          el.Steps(),
		ParallelTime:  el.ParallelTime(),
		Leaders:       el.Leaders(),
		Census:        census,
		OmittedStates: omitStates,
		OmittedAgents: omitAgents,
	}
	j.mu.Lock()
	j.snapshots = append(j.snapshots, snap)
	if len(j.snapshots) > j.maxSnaps {
		kept := j.snapshots[:0]
		for i := 0; i < len(j.snapshots); i += 2 {
			kept = append(kept, j.snapshots[i])
		}
		j.snapshots = kept
	}
	fanout := make([]chan Snapshot, 0, len(j.subs))
	for ch := range j.subs {
		fanout = append(fanout, ch)
	}
	j.mu.Unlock()
	for _, ch := range fanout {
		select {
		case ch <- snap:
		default:
		}
	}
}

// finishLocked transitions to a terminal state, closing the done channel
// and every live subscription. Callers hold j.mu.
func (j *Job) finishLocked(state State, errMsg string) {
	if j.state.terminal() {
		return
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
	j.cancel() // release the context's resources
}

func (j *Job) finish(state State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, errMsg)
}

func (j *Job) complete(res *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = res
	j.finishLocked(StateDone, "")
}

// Options configures a Manager. Zero values select the documented
// defaults.
type Options struct {
	// Workers is the simulation worker-pool size (default NumCPU, capped
	// at 8: jobs are single-threaded and memory-bound, not I/O-bound).
	Workers int
	// CacheSize is the finished-job LRU capacity (default 256).
	CacheSize int
	// QueueSize bounds the number of queued-but-not-running jobs; beyond
	// it Submit returns ErrBusy (default 256).
	QueueSize int
	// MaxN bounds accepted population sizes on the census engine
	// (default 200 million, ~50% above the largest benchmarked
	// population; the census engine's memory is Θ(live states), not
	// Θ(n), so huge n is safe there).
	MaxN int
	// MaxNAgent bounds population sizes on the per-agent engine, whose
	// memory and per-interaction work are Θ(n) (default 10 million —
	// beyond that a single job would hold gigabytes and a worker for
	// hours).
	MaxNAgent int
	// MaxNBatch bounds population sizes on the batch engine. Like the
	// census engine its memory is Θ(live states), and its collision-free
	// rounds make it the fastest engine at large n, so the default is
	// MaxN (after defaulting, 200 million).
	MaxNBatch int
	// MaxSnapshots bounds each job's stored trajectory (default 256). It
	// is also the observation cap of the deterministic drive schedule
	// (ensemble.Drive), so it is part of results' deterministic surface:
	// change it and cached results for chunk-sensitive engines change.
	MaxSnapshots int
	// Store, when non-nil, persists finished jobs and experiments and
	// serves them back across restarts; the LRU then caches in front of
	// it instead of being the only copy.
	Store *store.Store
	// ExperimentWorkers bounds concurrently *running* experiments
	// (default 1). Each running experiment fans its replicates over up to
	// Workers simulation goroutines of its own, so the total simulation
	// parallelism is roughly Workers × (1 + ExperimentWorkers).
	ExperimentWorkers int
	// MaxReplicates bounds an experiment's requested ensemble size
	// (default 100_000).
	MaxReplicates int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = min(runtime.NumCPU(), 8)
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
	if o.MaxN <= 0 {
		o.MaxN = 200_000_000
	}
	if o.MaxNAgent <= 0 {
		o.MaxNAgent = 10_000_000
	}
	if o.MaxNBatch <= 0 {
		o.MaxNBatch = o.MaxN
	}
	if o.MaxSnapshots <= 0 {
		o.MaxSnapshots = 256
	}
	if o.ExperimentWorkers <= 0 {
		o.ExperimentWorkers = 1
	}
	if o.MaxReplicates <= 0 {
		o.MaxReplicates = 100_000
	}
	return o
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts submissions answered from the finished-work cache,
	// Joined those attached to an identical in-flight job or experiment,
	// and Misses those that started a fresh simulation. Experiments share
	// these counters with jobs.
	Hits, Joined, Misses uint64
	// StoreHits counts submissions answered from the durable store after
	// missing the in-memory cache (e.g. after a restart or an LRU
	// eviction); StoreErrors counts failed persistence attempts.
	StoreHits, StoreErrors uint64
	// Jobs is the number of indexed jobs (live + cached), Cached the job
	// LRU's current size. Experiments counts indexed experiments.
	Jobs, Cached, Experiments int
	// Stored is the number of results in the durable store (0 without
	// one).
	Stored int
}

// Manager owns the worker pools, the job and experiment indexes, the
// result cache, and the optional durable store behind it.
type Manager struct {
	opts  Options
	queue chan *Job
	wg    sync.WaitGroup

	expQueue chan *Experiment
	expWg    sync.WaitGroup

	mu                   sync.Mutex
	jobs                 map[string]*Job
	cache                *lru[*Job]
	exps                 map[string]*Experiment
	expCache             *lru[*Experiment]
	hits, joined, misses uint64
	storeHits, storeErrs uint64
	closed               bool
}

// NewManager starts a manager with opts' worker pools.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		opts:     opts,
		queue:    make(chan *Job, opts.QueueSize),
		jobs:     make(map[string]*Job),
		expQueue: make(chan *Experiment, opts.QueueSize),
		exps:     make(map[string]*Experiment),
	}
	m.cache = newLRU(opts.CacheSize, func(j *Job) { delete(m.jobs, j.ID) })
	m.expCache = newLRU(opts.CacheSize, func(e *Experiment) { delete(m.exps, e.ID) })
	m.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go m.worker()
	}
	m.expWg.Add(opts.ExperimentWorkers)
	for i := 0; i < opts.ExperimentWorkers; i++ {
		go m.expWorker()
	}
	return m
}

// Close stops accepting work, cancels everything queued or running, and
// waits for the workers to exit. It does not close the store: the store
// belongs to the caller that opened it.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		m.expWg.Wait()
		return
	}
	m.closed = true
	for _, j := range m.jobs {
		j.cancel()
	}
	for _, e := range m.exps {
		e.cancel()
	}
	close(m.queue)
	close(m.expQueue)
	m.mu.Unlock()
	m.wg.Wait()
	m.expWg.Wait()
}

// Canonicalize resolves a JobSpec's defaults (engine, seed, budget) and
// validates it against the registry and the manager's limits, returning
// the canonical spec, the resolved registry spec, the stabilization
// target, and the step budget. Errors wrap registry.ErrBadSpec.
func (m *Manager) Canonicalize(spec JobSpec) (JobSpec, registry.Spec, int, uint64, error) {
	if spec.Engine == "" {
		spec.Engine = pp.EngineCount.String()
	}
	engine, err := pp.ParseEngine(spec.Engine)
	if err != nil {
		return JobSpec{}, registry.Spec{}, 0, 0, fmt.Errorf("%w: %v", registry.ErrBadSpec, err)
	}
	if limit := m.engineLimit(engine); spec.N > limit {
		return JobSpec{}, registry.Spec{}, 0, 0, fmt.Errorf(
			"%w: population size %d exceeds this server's %s-engine limit of %d (the census-based engines accept the largest populations)",
			registry.ErrBadSpec, spec.N, engine, limit)
	}
	if spec.MaxParallelTime < 0 {
		return JobSpec{}, registry.Spec{}, 0, 0, fmt.Errorf(
			"%w: negative maxParallelTime %g", registry.ErrBadSpec, spec.MaxParallelTime)
	}
	if spec.Seed == 0 {
		spec.Seed = deriveSeed(spec)
	}
	rspec := registry.Spec{
		Protocol: spec.Protocol,
		N:        spec.N,
		Engine:   engine,
		Seed:     spec.Seed,
		M:        spec.M,
	}
	entry, err := registry.Validate(rspec)
	if err != nil {
		return JobSpec{}, registry.Spec{}, 0, 0, err
	}
	budget := entry.StepBudget(spec.N)
	if spec.MaxParallelTime > 0 {
		// The override can only shorten the run: the registry default is
		// already thousands of expected stabilization times, and an
		// uncapped client value would let one request pin a worker
		// near-forever (and overflow the float→uint64 conversion).
		if steps := spec.MaxParallelTime * float64(spec.N); steps < float64(budget) {
			budget = uint64(steps)
		}
	}
	return spec, rspec, entry.Target, budget, nil
}

// engineLimit returns the population cap for the given engine: per-agent
// memory and work are Θ(n), the census-based engines (count, batch) are
// Θ(live states).
func (m *Manager) engineLimit(engine pp.Engine) int {
	switch engine {
	case pp.EngineAgent:
		return m.opts.MaxNAgent
	case pp.EngineBatch:
		return m.opts.MaxNBatch
	default:
		return m.opts.MaxN
	}
}

// Submit canonicalizes spec and returns the job serving it: a cached
// finished job (cached = true), an identical job already in flight, or a
// freshly queued one. It fails with ErrBusy when the queue is full and an
// error wrapping registry.ErrBadSpec when the spec is invalid.
func (m *Manager) Submit(spec JobSpec) (job *Job, cached bool, err error) {
	canon, rspec, target, budget, err := m.Canonicalize(spec)
	if err != nil {
		return nil, false, err
	}
	key := canon.key()
	id := jobID(key)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if j, ok := m.cache.get(key); ok {
		if j.State() != StateCanceled {
			m.hits++
			return j, true, nil
		}
		// A canceled job is the one terminal state that does not
		// represent the spec's deterministic outcome: re-run it.
		m.cache.remove(key)
		delete(m.jobs, j.ID)
	}
	if j, ok := m.jobs[id]; ok && !j.State().terminal() {
		m.joined++
		return j, false, nil
	}
	if j := m.restoreJobLocked(key); j != nil {
		// Served from the durable store: a result computed before a
		// restart (or evicted from the LRU) without re-simulating.
		m.storeHits++
		return j, true, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:       id,
		spec:     canon,
		rspec:    rspec,
		target:   target,
		budget:   budget,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateQueued,
		maxSnaps: m.opts.MaxSnapshots,
		subs:     make(map[chan Snapshot]struct{}),
		done:     make(chan struct{}),
		created:  time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		cancel()
		return nil, false, ErrBusy
	}
	m.jobs[id] = j
	m.misses++
	return j, false, nil
}

// Get returns the job with the given id, restoring it from the durable
// store if it is no longer indexed in memory.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j, true
	}
	if m.opts.Store != nil {
		if rec, ok := m.opts.Store.GetByID(id); ok && rec.Kind == store.KindJob {
			if j := m.restoreJobLocked(rec.Key); j != nil {
				m.storeHits++
				return j, true
			}
		}
	}
	return nil, false
}

// restoreJobLocked reconstructs a finished job from the durable store's
// record for key, indexing it like a freshly finished one. It returns
// nil when there is no store, no record, or the record no longer decodes
// against the current registry. Callers hold m.mu.
func (m *Manager) restoreJobLocked(key string) *Job {
	if m.opts.Store == nil {
		return nil
	}
	rec, ok := m.opts.Store.Get(store.KindJob, key)
	if !ok {
		return nil
	}
	var spec JobSpec
	var res Result
	if json.Unmarshal(rec.Spec, &spec) != nil || json.Unmarshal(rec.Data, &res) != nil {
		return nil
	}
	// Recompute the derived view fields (budget, target) from the
	// canonical spec; a record that no longer validates — the registry
	// changed underneath it — is not served.
	canon, rspec, target, budget, err := m.Canonicalize(spec)
	if err != nil || canon.key() != key {
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // terminal from birth
	done := make(chan struct{})
	close(done)
	j := &Job{
		ID:       rec.ID,
		spec:     canon,
		rspec:    rspec,
		target:   target,
		budget:   budget,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateDone,
		result:   &res,
		restored: true,
		maxSnaps: m.opts.MaxSnapshots,
		done:     done,
		created:  rec.SavedAt,
		started:  rec.SavedAt,
		finished: rec.SavedAt,
	}
	m.jobs[j.ID] = j
	m.cache.put(key, j)
	return j
}

// Cancel requests cancellation of the job with the given id, reporting
// whether the job exists. Finished jobs are unaffected.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		j.cancel()
	}
	return ok
}

// Stats returns current cache, store and pool counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Hits:        m.hits,
		Joined:      m.joined,
		Misses:      m.misses,
		StoreHits:   m.storeHits,
		StoreErrors: m.storeErrs,
		Jobs:        len(m.jobs),
		Cached:      m.cache.len(),
		Experiments: len(m.exps),
	}
	if m.opts.Store != nil {
		s.Stored = m.opts.Store.Len()
	}
	return s
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob executes one job to a terminal state and indexes the outcome.
func (m *Manager) runJob(j *Job) {
	if !j.begin() {
		m.index(j)
		return
	}
	start := time.Now()
	el, err := registry.New(j.rspec)
	if err != nil {
		// The spec was validated at submission; a failure here is an
		// internal inconsistency, reported on the job rather than killing
		// the worker.
		j.finish(StateFailed, err.Error())
		m.index(j)
		return
	}

	// ensemble.Drive owns the chunk schedule (one parallel-time unit,
	// doubling on trajectory decimation): the census engines draw
	// randomness differently at different RunUntilLeaders boundaries, so
	// jobs and ensemble replicates must advance through the same driver
	// for replicate 0 of an experiment to be bit-identical to the job.
	// The observe callback records the initial configuration too, so
	// every trace has ≥ 2 points.
	canceled := ensemble.Drive(j.ctx, el, j.target, j.budget, j.maxSnaps,
		func() { j.record(el) })
	if canceled {
		j.finish(StateCanceled, "canceled")
		m.index(j)
		return
	}
	if last := el.Steps(); j.snapshotCount() == 1 || j.lastSnapshotStep() != last {
		// Runs that stabilize inside the first chunk still get a final
		// snapshot distinct from the initial one.
		j.record(el)
	}

	res := &Result{
		Stabilized:   el.Leaders() <= j.target,
		Leaders:      el.Leaders(),
		Steps:        el.Steps(),
		ParallelTime: el.ParallelTime(),
		LiveStates:   el.LiveStates(),
		Description:  el.Description(),
	}
	if j.spec.Verify > 0 && res.Stabilized {
		stable := el.VerifyStable(j.spec.Verify)
		res.Stable = &stable
	}
	res.Census, res.OmittedStates, res.OmittedAgents = topCensus(el.Census(), censusCap)
	res.WallMillis = time.Since(start).Milliseconds()
	j.complete(res)
	m.index(j)
	m.persist(store.KindJob, j.spec.key(), j.ID, j.spec, res)
}

// persist appends a finished result to the durable store (best-effort:
// a persistence failure is counted, not fatal — the in-memory result
// still serves).
func (m *Manager) persist(kind store.Kind, key, id string, spec, data any) {
	if m.opts.Store == nil {
		return
	}
	if err := m.opts.Store.Put(kind, key, id, spec, data); err != nil {
		m.mu.Lock()
		m.storeErrs++
		m.mu.Unlock()
	}
}

func (j *Job) snapshotCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.snapshots)
}

func (j *Job) lastSnapshotStep() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.snapshots) == 0 {
		return 0
	}
	return j.snapshots[len(j.snapshots)-1].Step
}

// index files a terminal job in the finished-job cache (evicting the
// oldest entries, and with them their id index).
func (m *Manager) index(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache.put(j.spec.key(), j)
}
