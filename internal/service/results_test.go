package service_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/service"
	"popproto/internal/store"
	"popproto/internal/sweep"
)

// getResults issues GET /v1/results with the given query and decodes the
// response into out, failing the test on a non-wantStatus status.
func getResults(t *testing.T, srv *httptest.Server, query url.Values, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/results?" + query.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET /v1/results?%s = %d, want %d (%s)", query.Encode(), resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding response %q: %v", body, err)
		}
	}
}

// TestResultsEndpoint is the end-to-end check for GET /v1/results: a
// store populated through the real job/experiment/sweep pipelines, then
// queried over HTTP with filters, pagination, and aggregate=scaling.
func TestResultsEndpoint(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "results.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := service.NewManager(service.Options{Workers: 4, Store: st})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	// Populate the corpus through the real pipelines: one job, three
	// standalone experiments, and a sweep (whose cells persist as
	// experiment records alongside the sweep summary).
	job, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 500, Engine: "count", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	for _, n := range []int{500, 1000, 2000} {
		exp, _, err := m.SubmitExperiment(service.ExperimentSpec{
			Protocol: "pll", N: n, Engine: "count", Seed: 7, Replicates: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		waitExpDone(t, exp)
	}
	sw, _, err := m.SubmitSweep(service.SweepSpec{
		Protocols: []string{"pll"}, Ns: []int{500, 1000}, Engine: "count", Replicates: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, sw)

	// The unfiltered page must serve exactly the store's current
	// contents, keyed by id.
	var all service.ResultsPage
	getResults(t, srv, url.Values{"limit": {"500"}}, http.StatusOK, &all)
	if len(all.Results) != st.Len() {
		t.Fatalf("unfiltered page has %d results, store holds %d", len(all.Results), st.Len())
	}
	if all.NextCursor != "" && len(all.Results) < 500 {
		t.Errorf("partial page carries a next cursor %q", all.NextCursor)
	}
	ids := map[string]service.ResultView{}
	for _, r := range all.Results {
		if _, dup := ids[r.ID]; dup {
			t.Fatalf("id %q served twice", r.ID)
		}
		ids[r.ID] = r
		rec, ok := st.GetByID(r.ID)
		if !ok || rec.Key != r.Key || string(rec.Kind) != r.Kind {
			t.Fatalf("result %+v does not match the stored record %+v", r, rec)
		}
	}

	// Kind filter: every result is of the requested kind, and the
	// per-kind counts partition the corpus.
	perKind := map[string]int{}
	for _, kind := range []string{"job", "experiment", "sweep"} {
		var page service.ResultsPage
		getResults(t, srv, url.Values{"kind": {kind}, "limit": {"500"}}, http.StatusOK, &page)
		for _, r := range page.Results {
			if r.Kind != kind {
				t.Errorf("kind=%s page served a %q record (%s)", kind, r.Kind, r.Key)
			}
		}
		perKind[kind] = len(page.Results)
	}
	if got := perKind["job"] + perKind["experiment"] + perKind["sweep"]; got != len(all.Results) {
		t.Errorf("kind pages sum to %d records, want %d (%v)", got, len(all.Results), perKind)
	}
	if perKind["experiment"] != 5 {
		t.Errorf("%d experiment records, want 5 (3 standalone + 2 sweep cells)", perKind["experiment"])
	}
	if perKind["sweep"] != 1 {
		t.Errorf("%d sweep records, want 1", perKind["sweep"])
	}

	// Protocol filter: "pll" matches everything (the sweep via its
	// protocol axis); an unknown protocol matches nothing.
	var page service.ResultsPage
	getResults(t, srv, url.Values{"protocol": {"pll"}, "limit": {"500"}}, http.StatusOK, &page)
	if len(page.Results) != len(all.Results) {
		t.Errorf("protocol=pll matched %d of %d records", len(page.Results), len(all.Results))
	}
	getResults(t, srv, url.Values{"kind": {"sweep"}, "protocol": {"pll"}}, http.StatusOK, &page)
	if len(page.Results) != 1 {
		t.Errorf("sweep not matched through its protocols axis (%d results)", len(page.Results))
	}
	getResults(t, srv, url.Values{"protocol": {"nope"}}, http.StatusOK, &page)
	if len(page.Results) != 0 {
		t.Errorf("protocol=nope matched %d records", len(page.Results))
	}

	// Engine filter: every canonical spec names engine "count".
	getResults(t, srv, url.Values{"kind": {"experiment"}, "engine": {"count"}, "limit": {"500"}}, http.StatusOK, &page)
	if len(page.Results) != perKind["experiment"] {
		t.Errorf("engine=count matched %d of %d experiments", len(page.Results), perKind["experiment"])
	}
	getResults(t, srv, url.Values{"engine": {"batch"}}, http.StatusOK, &page)
	if len(page.Results) != 0 {
		t.Errorf("engine=batch matched %d records", len(page.Results))
	}

	// n range: exactly the n=1000 experiments (one standalone, one
	// sweep cell); the sweep record matches through its ns axis.
	getResults(t, srv, url.Values{
		"kind": {"experiment"}, "n_min": {"1000"}, "n_max": {"1000"},
	}, http.StatusOK, &page)
	if len(page.Results) != 2 {
		t.Errorf("n range [1000, 1000] matched %d experiments, want 2", len(page.Results))
	}
	for _, r := range page.Results {
		var spec service.ExperimentSpec
		if err := json.Unmarshal(r.Spec, &spec); err != nil || spec.N != 1000 {
			t.Errorf("n-filtered result %s has n=%d (%v)", r.Key, spec.N, err)
		}
	}
	getResults(t, srv, url.Values{"kind": {"sweep"}, "n_min": {"900"}, "n_max": {"1100"}}, http.StatusOK, &page)
	if len(page.Results) != 1 {
		t.Errorf("sweep not matched through its ns axis (%d results)", len(page.Results))
	}

	// Pagination: limit=2 pages walk the whole corpus exactly once.
	var walked []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > len(all.Results) {
			t.Fatal("pagination did not terminate")
		}
		q := url.Values{"limit": {"2"}}
		if cursor != "" {
			q.Set("cursor", cursor)
		}
		var pg service.ResultsPage
		getResults(t, srv, q, http.StatusOK, &pg)
		for _, r := range pg.Results {
			walked = append(walked, r.ID)
		}
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
	}
	if len(walked) != len(all.Results) {
		t.Fatalf("pagination walked %d records, want %d", len(walked), len(all.Results))
	}
	seen := map[string]bool{}
	for _, id := range walked {
		if seen[id] {
			t.Fatalf("pagination served id %q twice", id)
		}
		seen[id] = true
		if _, ok := ids[id]; !ok {
			t.Fatalf("pagination served unknown id %q", id)
		}
	}

	// aggregate=scaling must equal an independent fit over the same
	// records fetched through the plain query path.
	var sv service.ScalingView
	getResults(t, srv, url.Values{"aggregate": {"scaling"}}, http.StatusOK, &sv)
	if sv.Aggregate != "scaling" {
		t.Errorf("aggregate = %q", sv.Aggregate)
	}
	if sv.Experiments != perKind["experiment"] {
		t.Errorf("scaling saw %d experiments, want %d", sv.Experiments, perKind["experiment"])
	}
	var expPage service.ResultsPage
	getResults(t, srv, url.Values{"kind": {"experiment"}, "limit": {"500"}}, http.StatusOK, &expPage)
	var outcomes []sweep.Outcome
	for _, r := range expPage.Results {
		var spec service.ExperimentSpec
		var agg ensemble.Aggregates
		if err := json.Unmarshal(r.Spec, &spec); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(r.Data, &agg); err != nil {
			t.Fatal(err)
		}
		eng, err := pp.ParseEngine(spec.Engine)
		if err != nil {
			t.Fatal(err)
		}
		outcomes = append(outcomes, sweep.Outcome{
			Cell:       sweep.Cell{Protocol: spec.Protocol, N: spec.N, M: spec.M, Engine: eng},
			Aggregates: agg,
		})
	}
	sort.SliceStable(outcomes, func(i, j int) bool {
		a, b := outcomes[i], outcomes[j]
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.M != b.M {
			return a.M < b.M
		}
		return a.N < b.N
	})
	want := sweep.Summarize(outcomes).Fits
	if !reflect.DeepEqual(sv.Fits, want) {
		t.Errorf("scaling fits = %+v, want %+v", sv.Fits, want)
	}
	if len(sv.Fits) != 1 || sv.Fits[0].Protocol != "pll" || sv.Fits[0].Points != 5 {
		t.Errorf("fits = %+v, want one pll fit over 5 points", sv.Fits)
	}

	// The scaling fit respects the filters: restricting n drops points.
	var narrow service.ScalingView
	getResults(t, srv, url.Values{"aggregate": {"scaling"}, "n_max": {"1000"}}, http.StatusOK, &narrow)
	if narrow.Experiments != 4 {
		t.Errorf("n_max=1000 scaling saw %d experiments, want 4", narrow.Experiments)
	}

	// Error taxonomy.
	for name, q := range map[string]url.Values{
		"bad kind":        {"kind": {"banana"}},
		"bad limit":       {"limit": {"-1"}},
		"bad n_min":       {"n_min": {"many"}},
		"bad aggregate":   {"aggregate": {"median"}},
		"bad cursor":      {"cursor": {"not a cursor"}},
		"scaling on jobs": {"aggregate": {"scaling"}, "kind": {"job"}},
	} {
		getResults(t, srv, q, http.StatusBadRequest, nil)
		_ = name
	}
}

// TestResultsWithoutStore: a server running without -store answers 404,
// not an empty page, so clients can tell "no corpus" from "no matches".
func TestResultsWithoutStore(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()
	getResults(t, srv, url.Values{}, http.StatusNotFound, nil)
	getResults(t, srv, url.Values{"aggregate": {"scaling"}}, http.StatusNotFound, nil)
}
