package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"popproto/internal/cluster"
	"popproto/internal/service"
)

// TestDistributedExperimentThroughService is the tentpole's end-to-end
// check at the service layer: the same experiment run on a plain local
// manager and on a manager with two cluster workers attached over HTTP
// must produce bit-identical aggregates under the same canonical run
// id, the cluster run must report remote execution in its distribution,
// and resubmitting the spec must be a cache hit — the dedup discipline
// holds cluster-wide because placement never changes the result.
func TestDistributedExperimentThroughService(t *testing.T) {
	spec := service.ExperimentSpec{Protocol: "pll", N: 500, Seed: 11, Replicates: 48}

	local := service.NewManager(service.Options{Workers: 4})
	defer local.Close()
	want, _, err := local.SubmitExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitExpDone(t, want)
	if want.State() != service.StateDone {
		t.Fatalf("local experiment state = %s (%s)", want.State(), want.View().Error)
	}
	wantAgg := want.Aggregates()
	if d := want.Distribution(); d == nil || d.Mode != "local" {
		t.Fatalf("local experiment distribution = %+v, want mode local", d)
	}

	m := service.NewManager(service.Options{Workers: 4, LeaseTTL: 2 * time.Second})
	defer m.Close()
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := &cluster.Worker{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("svc-worker-%d", i),
			Workers:     2,
			Poll:        10 * time.Millisecond,
		}
		go w.Run(ctx)
	}
	// Polling for leases marks a worker live; ranges only go remote once
	// the coordinator has heard from the pool.
	deadline := time.Now().Add(10 * time.Second)
	for m.Coordinator().LiveWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never registered with the coordinator")
		}
		time.Sleep(5 * time.Millisecond)
	}

	exp, cached, err := m.SubmitExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("fresh distributed submission reported cached")
	}
	waitExpDone(t, exp)
	if exp.State() != service.StateDone {
		t.Fatalf("distributed experiment state = %s (%s)", exp.State(), exp.View().Error)
	}

	if exp.ID != want.ID {
		t.Errorf("run ids diverged: distributed %s, local %s — canonical key broken", exp.ID, want.ID)
	}
	agg := exp.Aggregates()
	if agg == nil || !reflect.DeepEqual(*agg, *wantAgg) {
		t.Errorf("distributed aggregates diverge from local run:\n got %+v\nwant %+v", agg, wantAgg)
	}
	dist := exp.Distribution()
	if dist == nil {
		t.Fatal("distributed experiment has no distribution")
	}
	if dist.Mode != "cluster" || dist.RemoteRanges == 0 || dist.Workers == 0 {
		t.Errorf("distribution = %+v, want cluster mode with remote ranges", dist)
	}
	if dist.Completed != dist.Ranges {
		t.Errorf("distribution reports %d/%d ranges completed", dist.Completed, dist.Ranges)
	}
	if view := exp.View(); view.Distribution == nil || view.Distribution.Mode != "cluster" {
		t.Errorf("view distribution = %+v, want cluster", view.Distribution)
	}

	// Identical resubmission is a cache hit on the same experiment: the
	// distributed result lives under the same canonical key.
	again, cached, err := m.SubmitExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again != exp {
		t.Error("identical spec after a distributed run was not served from cache")
	}
}

// TestResultDistributionLocal checks the degenerate case surfaces on
// every run kind: jobs are always local single-range work, and an
// experiment or sweep cell with no workers attached reports local
// range execution.
func TestResultDistributionLocal(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	job, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	res := job.Result()
	if res == nil || res.Distribution == nil || res.Distribution.Mode != "local" {
		t.Fatalf("job distribution = %+v, want local", res)
	}

	sw, _, err := m.SubmitSweep(service.SweepSpec{
		Protocols: []string{"pll"}, Ns: []int{300}, Seed: 5, Replicates: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sw.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("sweep still %s after 120s", sw.State())
	}
	if sw.State() != service.StateDone {
		t.Fatalf("sweep state = %s (%s)", sw.State(), sw.View().Error)
	}
	cells := sw.Cells()
	if len(cells) != 1 {
		t.Fatalf("sweep has %d cells, want 1", len(cells))
	}
	d := cells[0].Distribution
	if d == nil || d.Mode != "local" || d.LocalRanges == 0 || d.Completed != d.Ranges {
		t.Errorf("sweep cell distribution = %+v, want completed local ranges", d)
	}
}
