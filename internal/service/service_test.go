package service_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"popproto/internal/registry"
	"popproto/internal/service"
)

// waitDone fails the test if the job does not reach a terminal state in
// time.
func waitDone(t *testing.T, j *service.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s still %s after 60s", j.ID, j.State())
	}
}

func TestJobLifecycle(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	job, cached, err := m.Submit(service.JobSpec{Protocol: "pll", N: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first submission reported cached")
	}
	waitDone(t, job)

	if job.State() != service.StateDone {
		t.Fatalf("state = %s, want done", job.State())
	}
	res := job.Result()
	if res == nil {
		t.Fatal("done job has no result")
	}
	if !res.Stabilized || res.Leaders != 1 {
		t.Errorf("stabilized=%v leaders=%d, want stabilized with exactly 1 leader",
			res.Stabilized, res.Leaders)
	}
	if res.Steps == 0 || res.ParallelTime <= 0 {
		t.Errorf("implausible timing: steps=%d parallelTime=%g", res.Steps, res.ParallelTime)
	}
	if res.Description == "" {
		t.Error("empty description")
	}
	view := job.View()
	if view.Snapshots < 2 {
		t.Errorf("trajectory has %d snapshots, want >= 2", view.Snapshots)
	}
	if view.Started == nil || view.Finished == nil {
		t.Error("missing started/finished timestamps on a done job")
	}

	// A lookup by id must return the same job.
	got, ok := m.Get(job.ID)
	if !ok || got != job {
		t.Error("Get(id) did not return the submitted job")
	}
}

func TestCacheHitOnIdenticalSpec(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	spec := service.JobSpec{Protocol: "angluin", N: 500, Seed: 3}
	first, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)

	second, cached, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("identical finished spec not served from cache")
	}
	if second != first {
		t.Error("cache returned a different job")
	}
	stats := m.Stats()
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit and 1 miss", stats)
	}

	// A different seed is a different spec: no cache hit.
	other := spec
	other.Seed = 4
	third, cached, err := m.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if cached || third == first {
		t.Error("distinct spec incorrectly shared the cached job")
	}
	waitDone(t, third)
}

// TestSeedDerivationIsDeterministic: omitting the seed must still produce
// a cacheable, reproducible job.
func TestSeedDerivationIsDeterministic(t *testing.T) {
	m := service.NewManager(service.Options{})
	defer m.Close()

	spec := service.JobSpec{Protocol: "lottery", N: 300}
	a, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, cached, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("two seedless submissions of one spec created two jobs")
	}
	_ = cached // may be cached or joined depending on timing; same job either way
	if a.View().Spec.Seed == 0 {
		t.Error("canonical spec still has seed 0")
	}
}

func TestDeterministicAcrossManagers(t *testing.T) {
	spec := service.JobSpec{Protocol: "pll", N: 1000, Seed: 11, Verify: 5000}
	run := func() *service.Result {
		m := service.NewManager(service.Options{Workers: 1})
		defer m.Close()
		j, _, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if j.State() != service.StateDone {
			t.Fatalf("state = %s", j.State())
		}
		return j.Result()
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.Leaders != b.Leaders || a.LiveStates != b.LiveStates {
		t.Errorf("identical specs diverged: %+v vs %+v", a, b)
	}
	if a.Stable == nil || !*a.Stable {
		t.Errorf("verification did not report stability: %+v", a.Stable)
	}
	if fmt.Sprint(a.Census) != fmt.Sprint(b.Census) {
		t.Errorf("censuses diverged:\n%v\n%v", a.Census, b.Census)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := service.NewManager(service.Options{MaxN: 10_000, MaxNAgent: 5_000})
	defer m.Close()

	cases := []service.JobSpec{
		{Protocol: "nope", N: 100},
		{Protocol: "pll", N: 1},
		{Protocol: "pll", N: 20_000},                   // over MaxN
		{Protocol: "pll", N: 100, Engine: "quantum"},   // bad engine
		{Protocol: "angluin", N: 100, M: 9},            // m on an m-less protocol
		{Protocol: "pll", N: 5000, M: 2},               // m < lg n
		{Protocol: "pll", N: 100, MaxParallelTime: -1}, // negative budget
		{Protocol: "pll", N: 9_000, Engine: "agent"},   // over MaxNAgent (below)
	}
	for _, spec := range cases {
		if _, _, err := m.Submit(spec); !errors.Is(err, registry.ErrBadSpec) {
			t.Errorf("Submit(%+v) error = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestCancel(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 1})
	defer m.Close()

	// A linear-time protocol on a large population: long enough to cancel.
	job, _, err := m.Submit(service.JobSpec{Protocol: "angluin", N: 100_000, Engine: "agent"})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(job.ID) {
		t.Fatal("Cancel did not find the job")
	}
	waitDone(t, job)
	if job.State() != service.StateCanceled {
		t.Fatalf("state = %s, want canceled", job.State())
	}

	// Cancellation is not a deterministic outcome: resubmission re-runs.
	again, cached, err := m.Submit(service.JobSpec{Protocol: "angluin", N: 100_000, Engine: "agent"})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("canceled job served from cache")
	}
	if again == job {
		t.Error("resubmission returned the canceled job")
	}
	m.Cancel(again.ID)
	waitDone(t, again)
}

func TestQueueFullAndClosed(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 1, QueueSize: 1})

	// Occupy the single worker and the single queue slot with slow jobs.
	slow := func(seed uint64) *service.Job {
		j, _, err := m.Submit(service.JobSpec{
			Protocol: "angluin", N: 200_000, Engine: "agent", Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	j1 := slow(1)
	// Wait for the worker to dequeue j1 so the next submission occupies
	// the queue slot rather than racing for it.
	for j1.State() == service.StateQueued {
		time.Sleep(time.Millisecond)
	}
	j2 := slow(2)
	if _, _, err := m.Submit(service.JobSpec{
		Protocol: "angluin", N: 200_000, Engine: "agent", Seed: 3,
	}); !errors.Is(err, service.ErrBusy) {
		t.Errorf("overflow submission error = %v, want ErrBusy", err)
	}

	m.Cancel(j1.ID)
	m.Cancel(j2.ID)
	m.Close()
	if _, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 100}); !errors.Is(err, service.ErrClosed) {
		t.Errorf("post-Close submission error = %v, want ErrClosed", err)
	}
}

// TestConcurrentLoad fires 100 concurrent submissions of 10 distinct specs
// through a small pool and asserts the dedup/cache accounting, per-spec
// determinism, and that no goroutines leak. Run under -race in CI.
func TestConcurrentLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	m := service.NewManager(service.Options{Workers: 3})

	const distinct = 10
	const submissions = 100
	jobs := make([]*service.Job, submissions)
	var wg sync.WaitGroup
	wg.Add(submissions)
	for i := 0; i < submissions; i++ {
		go func(i int) {
			defer wg.Done()
			spec := service.JobSpec{
				Protocol: "pll",
				N:        400 + 10*(i%distinct), // 10 distinct specs
				Seed:     uint64(1 + i%distinct),
			}
			j, _, err := m.Submit(spec)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()

	for _, j := range jobs {
		if j == nil {
			t.Fatal("missing job")
		}
		waitDone(t, j)
		if j.State() != service.StateDone {
			t.Errorf("job %s state = %s", j.ID, j.State())
		}
	}

	// All submissions of one spec must have landed on the same job.
	byID := make(map[string]*service.Job)
	for _, j := range jobs {
		if prev, ok := byID[j.ID]; ok && prev != j {
			t.Errorf("two jobs share id %s", j.ID)
		}
		byID[j.ID] = j
	}
	if len(byID) != distinct {
		t.Errorf("%d distinct jobs, want %d", len(byID), distinct)
	}
	stats := m.Stats()
	if stats.Misses != distinct {
		t.Errorf("misses = %d, want %d", stats.Misses, distinct)
	}
	if stats.Hits+stats.Joined != submissions-distinct {
		t.Errorf("hits+joined = %d, want %d", stats.Hits+stats.Joined, submissions-distinct)
	}

	// Identical specs must also reproduce identical results when re-run
	// from scratch rather than served from cache.
	check, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2 := service.NewManager(service.Options{Workers: 1})
	fresh, _, err := m2.Submit(service.JobSpec{Protocol: "pll", N: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, check)
	waitDone(t, fresh)
	if check.Result().Steps != fresh.Result().Steps {
		t.Errorf("cached and fresh runs diverged: %d vs %d steps",
			check.Result().Steps, fresh.Result().Steps)
	}
	m2.Close()
	m.Close()

	// The pools must wind down completely: no leaked goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after Close",
				before, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubscribeCancelDuringRun: canceling a subscription while the worker
// is fanning out snapshots must not panic the worker (the channel is
// closed only by job completion, never by cancel) and must stop delivery.
func TestSubscribeCancelDuringRun(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 1})
	defer m.Close()

	job, _, err := m.Submit(service.JobSpec{Protocol: "angluin", N: 50_000, Engine: "agent"})
	if err != nil {
		t.Fatal(err)
	}
	// Churn subscriptions while the job runs: each reads one snapshot and
	// cancels, racing the worker's fanout sends.
	for i := 0; i < 50; i++ {
		_, live, cancel := job.Subscribe()
		select {
		case <-live:
		case <-job.Done():
		case <-time.After(time.Second):
		}
		cancel()
		cancel() // safe to call twice
	}
	// The election itself is Θ(n²) interactions — don't wait it out; the
	// assertion is that the fanout survived the churn without panicking.
	m.Cancel(job.ID)
	waitDone(t, job)
	if s := job.State(); s != service.StateCanceled && s != service.StateDone {
		t.Fatalf("state = %s, want canceled or done", s)
	}
}

// TestBudgetOverrideIsClamped: a huge maxParallelTime must not produce an
// unbounded run; the registry default remains the ceiling.
func TestBudgetOverrideIsClamped(t *testing.T) {
	m := service.NewManager(service.Options{})
	defer m.Close()
	job, _, err := m.Submit(service.JobSpec{
		Protocol: "pll", N: 100, Seed: 1, MaxParallelTime: 1e18,
	})
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := m.Submit(service.JobSpec{
		Protocol: "pll", N: 100, Seed: 1, MaxParallelTime: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	waitDone(t, small)
	// Default budget for pll at n=100: LogBudget(100) = 4000·100·8.
	if got, want := job.View().BudgetSteps, uint64(4000*100*8); got != want {
		t.Errorf("budget = %d, want clamped default %d", got, want)
	}
	if got, want := small.View().BudgetSteps, uint64(50); got != want {
		t.Errorf("budget = %d, want shortened %d", got, want)
	}
	if res := small.Result(); res == nil || res.Stabilized {
		t.Errorf("a 0.5-parallel-time budget should not elect: %+v", res)
	}
}

func TestSubscribe(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 1})
	defer m.Close()

	job, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 5000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	replay, live, cancel := job.Subscribe()
	defer cancel()
	seen := len(replay)
	for range live {
		seen++
	}
	waitDone(t, job)
	if seen < 2 {
		t.Errorf("streamed %d snapshots, want >= 2", seen)
	}

	// Subscribing to a finished job replays the stored trajectory over a
	// closed channel.
	replay, live, cancel = job.Subscribe()
	defer cancel()
	if len(replay) < 2 {
		t.Errorf("finished-job replay has %d snapshots, want >= 2", len(replay))
	}
	if _, open := <-live; open {
		t.Error("finished job's live channel not closed")
	}
	last := replay[len(replay)-1]
	if last.Leaders != 1 {
		t.Errorf("final snapshot has %d leaders, want 1", last.Leaders)
	}
	total := 0
	for _, c := range last.Census {
		total += c
	}
	if total+last.OmittedAgents != 5000 {
		t.Errorf("final census covers %d agents (+%d omitted), want 5000",
			total, last.OmittedAgents)
	}
}

// TestBatchEngineJob runs a full election job on the batch engine and
// checks the result and trajectory match the other engines' shape: exactly
// one leader, at least two snapshots, a coherent census.
func TestBatchEngineJob(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	job, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 50_000, Engine: "batch", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	res := job.Result()
	if res == nil || !res.Stabilized || res.Leaders != 1 {
		t.Fatalf("batch job result: %+v", res)
	}
	total := 0
	for _, c := range res.Census {
		total += c
	}
	if total+res.OmittedAgents != 50_000 {
		t.Fatalf("census covers %d agents (+%d omitted), want 50000", total, res.OmittedAgents)
	}
	if job.View().Snapshots < 2 {
		t.Fatalf("batch job trajectory has %d snapshots, want >= 2", job.View().Snapshots)
	}
}

// TestPerEngineLimits: every engine enforces its own population cap, and
// the error names the engine.
func TestPerEngineLimits(t *testing.T) {
	m := service.NewManager(service.Options{
		Workers: 1, MaxN: 1000, MaxNAgent: 500, MaxNBatch: 700,
	})
	defer m.Close()

	cases := []struct {
		engine string
		okN    int
		badN   int
	}{
		{"agent", 500, 501},
		{"batch", 700, 701},
		{"hybrid", 700, 701},
		{"count", 1000, 1001},
	}
	for _, tc := range cases {
		if _, _, _, _, err := m.Canonicalize(service.JobSpec{
			Protocol: "angluin", N: tc.okN, Engine: tc.engine,
		}); err != nil {
			t.Errorf("%s at its limit %d rejected: %v", tc.engine, tc.okN, err)
		}
		_, _, _, _, err := m.Canonicalize(service.JobSpec{
			Protocol: "angluin", N: tc.badN, Engine: tc.engine,
		})
		if !errors.Is(err, registry.ErrBadSpec) {
			t.Errorf("%s beyond its limit %d accepted (err=%v)", tc.engine, tc.badN, err)
		}
	}

	// MaxNBatch defaults to MaxN when MaxN is set explicitly.
	m2 := service.NewManager(service.Options{Workers: 1, MaxN: 1234})
	defer m2.Close()
	if _, _, _, _, err := m2.Canonicalize(service.JobSpec{
		Protocol: "angluin", N: 1234, Engine: "batch",
	}); err != nil {
		t.Errorf("batch limit did not default to MaxN: %v", err)
	}
	if _, _, _, _, err := m2.Canonicalize(service.JobSpec{
		Protocol: "angluin", N: 1235, Engine: "batch",
	}); !errors.Is(err, registry.ErrBadSpec) {
		t.Errorf("batch beyond explicit MaxN accepted (err=%v)", err)
	}

	// With no explicit caps at all, the census-scale engines accept a
	// billion-agent population (the benchmarked n=10⁹ PLL election) while
	// the count engine keeps its own, lower default.
	m3 := service.NewManager(service.Options{Workers: 1})
	defer m3.Close()
	if _, _, _, _, err := m3.Canonicalize(service.JobSpec{
		Protocol: "pll", N: 1_000_000_000, Engine: "hybrid",
	}); err != nil {
		t.Errorf("hybrid rejected n=1e9 under default limits: %v", err)
	}
	if _, _, _, _, err := m3.Canonicalize(service.JobSpec{
		Protocol: "pll", N: 1_000_000_000, Engine: "count",
	}); !errors.Is(err, registry.ErrBadSpec) {
		t.Errorf("count accepted n=1e9 beyond its default limit (err=%v)", err)
	}
}
