package service_test

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"popproto/internal/ensemble"
	"popproto/internal/registry"
	"popproto/internal/service"
	"popproto/internal/store"
)

// waitExpDone fails the test if the experiment does not reach a terminal
// state in time.
func waitExpDone(t *testing.T, e *service.Experiment) {
	t.Helper()
	select {
	case <-e.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("experiment %s still %s after 120s", e.ID, e.State())
	}
}

func TestExperimentLifecycle(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 4})
	defer m.Close()

	exp, cached, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 2000, Seed: 7, Replicates: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first submission reported cached")
	}
	waitExpDone(t, exp)
	if exp.State() != service.StateDone {
		t.Fatalf("state = %s, want done", exp.State())
	}
	agg := exp.Aggregates()
	if agg == nil {
		t.Fatal("done experiment has no aggregates")
	}
	if agg.Replicates != 8 || agg.Stabilized != 8 {
		t.Errorf("aggregates = %+v, want 8/8 stabilized", agg)
	}
	if agg.MeanParallelTime <= 0 || agg.CIHi <= agg.CILo {
		t.Errorf("implausible time statistics: %+v", agg)
	}
	view := exp.View()
	if view.Started == nil || view.Finished == nil {
		t.Error("missing started/finished timestamps")
	}
	if view.BudgetSteps == 0 {
		t.Error("missing budget")
	}

	// Lookup and identical resubmission both land on the same experiment.
	if got, ok := m.GetExperiment(exp.ID); !ok || got != exp {
		t.Error("GetExperiment did not return the submitted experiment")
	}
	again, cached, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 2000, Seed: 7, Replicates: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again != exp {
		t.Error("identical finished spec not served from cache")
	}
}

// TestExperimentReplicate0MatchesJob is the seed-derivation satellite:
// a single job with a spec and replicate 0 of an experiment with the
// same spec must produce bit-identical results — both with an explicit
// seed and with the seed omitted (derived).
func TestExperimentReplicate0MatchesJob(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	for name, seed := range map[string]uint64{"explicit": 123, "derived": 0} {
		t.Run(name, func(t *testing.T) {
			job, _, err := m.Submit(service.JobSpec{Protocol: "pll", N: 3000, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			waitDone(t, job)
			if job.State() != service.StateDone {
				t.Fatalf("job state = %s", job.State())
			}
			res := job.Result()

			// A 1-replicate experiment: its only replicate is replicate 0,
			// so every aggregate collapses to the single job's numbers.
			exp, _, err := m.SubmitExperiment(service.ExperimentSpec{
				Protocol: "pll", N: 3000, Seed: seed, Replicates: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			waitExpDone(t, exp)
			if exp.State() != service.StateDone {
				t.Fatalf("experiment state = %s (%s)", exp.State(), exp.View().Error)
			}
			agg := exp.Aggregates()

			if exp.View().Spec.Seed != job.View().Spec.Seed {
				t.Errorf("base seeds diverged: experiment %d, job %d",
					exp.View().Spec.Seed, job.View().Spec.Seed)
			}
			if agg.MeanSteps != float64(res.Steps) {
				t.Errorf("replicate 0 ran %g steps, job ran %d — not bit-identical",
					agg.MeanSteps, res.Steps)
			}
			if agg.MeanParallelTime != res.ParallelTime {
				t.Errorf("replicate 0 parallel time %g, job %g",
					agg.MeanParallelTime, res.ParallelTime)
			}
			if (agg.Stabilized == 1) != res.Stabilized {
				t.Errorf("stabilization verdicts diverged")
			}
		})
	}
}

func TestExperimentValidation(t *testing.T) {
	m := service.NewManager(service.Options{MaxReplicates: 100})
	defer m.Close()

	cases := []service.ExperimentSpec{
		{Protocol: "pll", N: 1000},                                     // replicates missing
		{Protocol: "pll", N: 1000, Replicates: -1},                     // negative
		{Protocol: "pll", N: 1000, Replicates: 101},                    // over MaxReplicates
		{Protocol: "pll", N: 1000, Replicates: 4, CI: 1.5},             // ci >= 1
		{Protocol: "pll", N: 1000, Replicates: 4, CI: -0.1},            // negative ci
		{Protocol: "pll", N: 1000, Replicates: 4, MinReplicates: -2},   // negative floor
		{Protocol: "nope", N: 1000, Replicates: 4},                     // unknown protocol
		{Protocol: "angluin", N: 1000, Replicates: 4, M: 3},            // m on m-less protocol
		{Protocol: "pll", N: 1000, Replicates: 4, MaxParallelTime: -1}, // negative budget
		{Protocol: "pll", N: 1000, Replicates: 4, Engine: "quantum"},   // bad engine
	}
	for _, spec := range cases {
		if _, _, err := m.SubmitExperiment(spec); !errors.Is(err, registry.ErrBadSpec) {
			t.Errorf("SubmitExperiment(%+v) error = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestExperimentCancel(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	// A linear-time ensemble big enough to cancel mid-flight.
	exp, _, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "angluin", N: 100_000, Engine: "count", Replicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.CancelExperiment(exp.ID) {
		t.Fatal("CancelExperiment did not find the experiment")
	}
	waitExpDone(t, exp)
	if exp.State() != service.StateCanceled {
		t.Fatalf("state = %s, want canceled", exp.State())
	}

	// Cancellation is not the spec's deterministic outcome: resubmission
	// re-runs rather than serving the canceled experiment.
	again, cached, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "angluin", N: 100_000, Engine: "count", Replicates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached || again == exp {
		t.Error("canceled experiment served from cache")
	}
	m.CancelExperiment(again.ID)
	waitExpDone(t, again)
}

func TestExperimentEarlyStopThroughService(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 4})
	defer m.Close()

	exp, _, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 1000, Seed: 3, Replicates: 64, CI: 0.9, MinReplicates: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitExpDone(t, exp)
	agg := exp.Aggregates()
	if exp.State() != service.StateDone || agg == nil {
		t.Fatalf("state = %s, agg = %v", exp.State(), agg)
	}
	if !agg.EarlyStopped || agg.Replicates >= 64 {
		t.Errorf("expected an early stop below 64 replicates: %+v", agg)
	}
}

// TestStoreRoundTrip is the durability acceptance path: results computed
// by one manager are served — bit-identically and without re-simulation —
// by a fresh manager over the same store, for jobs and experiments alike.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	jobSpec := service.JobSpec{Protocol: "pll", N: 2000, Seed: 17}
	expSpec := service.ExperimentSpec{Protocol: "pll", N: 2000, Seed: 17, Replicates: 6}

	m1 := service.NewManager(service.Options{Workers: 4, Store: st})
	job, _, err := m1.Submit(jobSpec)
	if err != nil {
		t.Fatal(err)
	}
	exp, _, err := m1.SubmitExperiment(expSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	waitExpDone(t, exp)
	wantSteps := job.Result().Steps
	wantAgg := *exp.Aggregates()
	jobID, expID := job.ID, exp.ID
	m1.Close()
	st.Close()

	// "Restart": a fresh store replay and a fresh manager.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("store replayed %d records, want 2", st2.Len())
	}
	m2 := service.NewManager(service.Options{Workers: 1, Store: st2})
	defer m2.Close()

	// Submit: answered from the store, marked cached, no simulation.
	restored, cached, err := m2.Submit(jobSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("restored job not reported cached")
	}
	if restored.State() != service.StateDone || restored.Result() == nil {
		t.Fatalf("restored job state = %s", restored.State())
	}
	if restored.Result().Steps != wantSteps {
		t.Errorf("restored steps %d != original %d", restored.Result().Steps, wantSteps)
	}
	if !restored.View().Restored {
		t.Error("restored job view not marked restored")
	}
	if restored.ID != jobID {
		t.Errorf("restored job id %s != original %s", restored.ID, jobID)
	}

	// Get by id must also work (e.g. a client polling across the restart).
	if _, ok := m2.GetExperiment(expID); !ok {
		t.Fatal("experiment not restorable by id")
	}
	expRestored, cached, err := m2.SubmitExperiment(expSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("restored experiment not reported cached")
	}
	gotAgg := expRestored.Aggregates()
	if gotAgg == nil {
		t.Fatal("restored experiment has no aggregates")
	}
	if gotAgg.MeanSteps != wantAgg.MeanSteps || gotAgg.Replicates != wantAgg.Replicates ||
		gotAgg.P50 != wantAgg.P50 || gotAgg.MeanParallelTime != wantAgg.MeanParallelTime {
		t.Errorf("restored aggregates diverged:\n got %+v\nwant %+v", gotAgg, wantAgg)
	}

	stats := m2.Stats()
	if stats.StoreHits < 2 {
		t.Errorf("store hits = %d, want >= 2", stats.StoreHits)
	}
	if stats.Misses != 0 {
		t.Errorf("restarted manager re-simulated: %d misses", stats.Misses)
	}

	// A restored job's trace subscription closes immediately (the
	// trajectory is not persisted); the result is still served.
	replay, live, cancel := restored.Subscribe()
	defer cancel()
	if len(replay) != 0 {
		t.Errorf("restored job replayed %d snapshots, want 0", len(replay))
	}
	if _, open := <-live; open {
		t.Error("restored job's live channel not closed")
	}
}

// TestExperimentSubscribeStreams: a subscriber sees aggregates grow and
// the channel close on completion.
func TestExperimentSubscribeStreams(t *testing.T) {
	m := service.NewManager(service.Options{Workers: 2})
	defer m.Close()

	exp, _, err := m.SubmitExperiment(service.ExperimentSpec{
		Protocol: "pll", N: 2000, Seed: 5, Replicates: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, live, cancel := exp.Subscribe()
	defer cancel()
	var last ensemble.Aggregates
	seen := 0
	for agg := range live {
		if agg.Replicates < last.Replicates {
			t.Errorf("aggregates went backwards: %d after %d", agg.Replicates, last.Replicates)
		}
		last = agg
		seen++
	}
	waitExpDone(t, exp)
	if seen == 0 {
		t.Error("no aggregate updates streamed")
	}
	if final := exp.Aggregates(); final.Replicates != 10 {
		t.Errorf("final aggregates %+v, want 10 replicates", final)
	}
}
