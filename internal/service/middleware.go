package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// reqInfo is the per-request annotation handlers fill in for the
// middleware's request log: the run id a submit or lookup resolved to,
// and whether the answer came from the finished-work cache.
type reqInfo struct {
	runID  string
	cached bool
}

type reqInfoKey struct{}

// annotateRun attaches the run id (and cache outcome) of the run a
// handler resolved to the request's log record. run may be any kind —
// the id is extracted through the runcore RunID surface.
func annotateRun(r *http.Request, run any, cached bool) {
	info, _ := r.Context().Value(reqInfoKey{}).(*reqInfo)
	if info == nil {
		return
	}
	if ider, ok := run.(interface{ RunID() string }); ok {
		info.runID = ider.RunID()
	}
	info.cached = cached
}

// statusWriter captures the response status code for metrics and logs.
// It deliberately does NOT implement http.Flusher — flushWriter adds
// that only when the underlying writer has it, so the SSE handler's
// Flusher detection keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// flushWriter is statusWriter plus pass-through Flush, used when the
// underlying ResponseWriter is a Flusher.
type flushWriter struct {
	*statusWriter
}

func (w flushWriter) Flush() {
	w.statusWriter.ResponseWriter.(http.Flusher).Flush()
}

// statusClass folds a status code into its class label ("2xx"…"5xx").
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// instrumentHTTP wraps the routed mux with the front-door telemetry:
// per-route request counts and latency histograms, the in-flight gauge,
// and (with a logger configured) one structured log line per request
// carrying the run id the handler resolved.
//
// The route label is the mux's registered pattern (Go 1.22 method
// routing — "POST /v1/jobs", "GET /v1/jobs/{id}"), looked up WITHOUT
// serving, so the label space stays bounded by the route table no
// matter what paths clients probe; unrouted requests share one label.
func (m *Manager) instrumentHTTP(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		route := pattern
		if route == "" {
			route = "unrouted"
		}

		info := &reqInfo{}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info))

		sw := &statusWriter{ResponseWriter: w}
		var wrapped http.ResponseWriter = sw
		if _, ok := w.(http.Flusher); ok {
			wrapped = flushWriter{sw}
		}

		m.metrics.httpInFlight.Inc()
		start := time.Now()
		mux.ServeHTTP(wrapped, r)
		elapsed := time.Since(start)
		m.metrics.httpInFlight.Dec()

		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		m.metrics.httpRequests.With(route, r.Method, statusClass(code)).Inc()
		m.metrics.httpDuration.With(route).Observe(elapsed.Seconds())

		if m.logger != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", code),
				slog.Duration("duration", elapsed),
			}
			if info.runID != "" {
				attrs = append(attrs, slog.String("run", info.runID), slog.Bool("cached", info.cached))
			}
			m.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}
