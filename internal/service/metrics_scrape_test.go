package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"popproto/internal/cluster"
	"popproto/internal/obs"
	"popproto/internal/service"
	"popproto/internal/store"
)

// TestMetricsScrape drives one job through the full HTTP surface and then
// scrapes GET /metrics, asserting that the runcore, store, engine and
// front-door series all show up in valid Prometheus text format — the
// end-to-end check that the instrumentation is actually wired through
// every layer, not just registered.
func TestMetricsScrape(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	st.Instrument(reg)
	m := service.NewManager(service.Options{Workers: 1, Store: st, Metrics: reg})
	t.Cleanup(func() { m.Close(); st.Close() })
	h := service.NewHandler(m)

	spec := `{"protocol": "pll", "n": 200, "seed": 7}`
	var sub submitResp
	do(t, h, "POST", "/v1/jobs", spec, http.StatusAccepted, &sub)
	deadline := time.Now().Add(60 * time.Second)
	for {
		var view service.JobView
		do(t, h, "GET", "/v1/jobs/"+sub.Job.ID, "", http.StatusOK, &view)
		if view.State == service.StateDone {
			break
		}
		if view.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Hit the cache once so the hit series is nonzero too.
	do(t, h, "POST", "/v1/jobs", spec, http.StatusOK, &sub)
	if !sub.Cached {
		t.Fatal("repeat submit was not served from cache")
	}

	// A hybrid Angluin run: its no-op-dominated endgame engages geometric
	// skipping, so the payoff-controller series scrape nonzero.
	hspec := `{"protocol": "angluin", "n": 2000, "engine": "hybrid", "seed": 42}`
	do(t, h, "POST", "/v1/jobs", hspec, http.StatusAccepted, &sub)
	for {
		var view service.JobView
		do(t, h, "GET", "/v1/jobs/"+sub.Job.ID, "", http.StatusOK, &view)
		if view.State == service.StateDone {
			break
		}
		if view.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("hybrid job did not complete: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A distributed experiment through one in-process cluster worker: the
	// coordinator series (workers gauge, lease counters, merge histogram)
	// scrape nonzero. 24 replicates partition into 3 canonical ranges, so
	// the lease protocol grants and completes exactly 3 remote leases.
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	wctx, wcancel := context.WithCancel(context.Background())
	t.Cleanup(wcancel)
	wk := &cluster.Worker{Coordinator: srv.URL, ID: "scrape-worker", Workers: 2, Poll: 5 * time.Millisecond}
	go wk.Run(wctx)
	for m.Coordinator().LiveWorkers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("cluster worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	espec := `{"protocol": "pll", "n": 200, "seed": 7, "replicates": 24}`
	var esub struct {
		Experiment service.ExperimentView `json:"experiment"`
	}
	do(t, h, "POST", "/v1/experiments", espec, http.StatusAccepted, &esub)
	for {
		var view service.ExperimentView
		do(t, h, "GET", "/v1/experiments/"+esub.Experiment.ID, "", http.StatusOK, &view)
		if view.State == service.StateDone {
			if view.Distribution == nil || view.Distribution.Mode != "cluster" {
				t.Fatalf("experiment distribution = %+v, want cluster", view.Distribution)
			}
			break
		}
		if view.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("distributed experiment did not complete: %+v", view)
		}
		time.Sleep(20 * time.Millisecond)
	}

	r := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d (body: %s)", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text format", ct)
	}
	body := w.Body.String()

	// One layer per assertion: runcore cache + scheduler, store, engine,
	// run lifecycle, and the HTTP front door itself.
	for _, want := range []string{
		`popprotod_runcore_submissions_total{kind="job",outcome="miss"} 2`,
		`popprotod_runcore_submissions_total{kind="job",outcome="hit"} 1`,
		`popprotod_runcore_run_seconds_count{kind="jobs"} 2`,
		`popprotod_runcore_queue_depth{kind="jobs"} 0`,
		// 3 stored results: the two jobs plus the distributed experiment.
		`popprotod_store_fsync_seconds_count 3`,
		`popprotod_store_records 3`,
		// 2 count-engine runs: the PLL job and the distributed experiment.
		`popprotod_engine_runs_total{engine="count"} 2`,
		`popprotod_engine_runs_total{engine="hybrid"} 1`,
		// At stabilization the Angluin census is one leader plus one
		// follower state, so the hybrid run publishes live = 2; exactly
		// one hybrid run had skip events, so the histogram count is 1.
		`popprotod_engine_live_states{engine="hybrid"} 2`,
		`popprotod_hybrid_skip_length_interactions_count 1`,
		`popprotod_runs_total{kind="job",state="done"} 2`,
		`popprotod_http_requests_total{route="POST /v1/jobs",method="POST",code="2xx"} 3`,
		`popprotod_http_request_seconds_count{route="GET /v1/jobs/{id}"}`,
		// The cluster layer: one live worker, 3 remote leases granted and
		// completed with no expiries, and one merge observation per folded
		// range. Worker traffic is labeled per route like any client's.
		`popprotod_cluster_workers 1`,
		`popprotod_cluster_leases_total{state="granted"} 3`,
		`popprotod_cluster_leases_total{state="completed"} 3`,
		`popprotod_cluster_leases_total{state="expired"} 0`,
		`popprotod_cluster_merge_seconds_count 3`,
		`popprotod_http_requests_total{route="POST /v1/cluster/leases",method="POST",code="2xx"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(body, "popprotod_engine_skip_entries_total 0") ||
		!strings.Contains(body, "popprotod_engine_skip_entries_total") {
		t.Error("scrape should report a nonzero popprotod_engine_skip_entries_total")
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", body)
	}
}
