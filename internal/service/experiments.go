package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"popproto/internal/cluster"
	"popproto/internal/ensemble"
	"popproto/internal/registry"
	"popproto/internal/service/runcore"
	"popproto/internal/store"
)

// ExperimentSpec is the wire-format experiment description (the POST
// /v1/experiments body): a job spec replicated Replicates times, with
// optional CI-targeted early stopping. Zero values resolve like JobSpec's
// (engine "" = count, seed 0 = derived) — and because the seed derivation
// and the replicate-0 seed are shared with single jobs, an experiment's
// replicate 0 is bit-identical to the job with the same spec.
type ExperimentSpec struct {
	// Protocol is a registry key (GET /v1/protocols lists them).
	Protocol string `json:"protocol"`
	// N is the population size.
	N int `json:"n"`
	// Engine is "count", "agent", "batch", "hybrid" or "auto"
	// ("" = "count").
	Engine string `json:"engine,omitempty"`
	// Seed is the ensemble's base seed; replicate r runs with
	// ensemble.ReplicateSeed(seed, r). 0 derives the base seed from the
	// canonical spec.
	Seed uint64 `json:"seed,omitempty"`
	// M is the PLL knowledge parameter (0 = canonical ⌈lg n⌉).
	M int `json:"m,omitempty"`
	// MaxParallelTime caps each replicate, in parallel time units (0 =
	// the protocol's registry default budget; larger values are clamped).
	MaxParallelTime float64 `json:"maxParallelTime,omitempty"`
	// Replicates is the ensemble size R (required, 1 ≤ R ≤ the server's
	// max-replicates limit).
	Replicates int `json:"replicates"`
	// CI, when positive, enables early stopping: the ensemble stops once
	// the relative 95% CI half-width of the mean parallel time is ≤ CI
	// (after MinReplicates replicates). Must be < 1.
	CI float64 `json:"ci,omitempty"`
	// MinReplicates is the early-stop floor (0 = 16); ignored without CI.
	MinReplicates int `json:"minReplicates,omitempty"`
}

// jobPart projects the experiment's shared fields onto a JobSpec so the
// canonicalization (defaults, limits, budget clamping) is exactly the
// single-job one.
func (s ExperimentSpec) jobPart() JobSpec {
	return JobSpec{
		Protocol:        s.Protocol,
		N:               s.N,
		Engine:          s.Engine,
		Seed:            s.Seed,
		M:               s.M,
		MaxParallelTime: s.MaxParallelTime,
	}
}

// key renders the canonical experiment cache key. Call only on
// canonicalized specs.
func (s ExperimentSpec) key() string {
	return fmt.Sprintf("%s r=%d ci=%g min=%d", s.jobPart().key(), s.Replicates, s.CI, s.MinReplicates)
}

// Experiment is one managed ensemble: the generic run core plus the
// experiment's spec and latest aggregates. All exported methods are
// safe for concurrent use.
type Experiment struct {
	*runcore.Run[ensemble.Aggregates]

	spec  ExperimentSpec // canonicalized
	espec ensemble.Spec  // resolved ensemble spec (budget, seeds)

	// Guarded by the embedded Run's lock.
	agg        *ensemble.Aggregates  // latest streamed (or final) aggregates
	dist       *cluster.Distribution // where the ranges executed (done only)
	wallMillis int64
}

// ExperimentView is the JSON rendering of an experiment's current state.
type ExperimentView struct {
	ID          string         `json:"id"`
	State       State          `json:"state"`
	Spec        ExperimentSpec `json:"spec"`
	BudgetSteps uint64         `json:"budgetSteps"`
	Error       string         `json:"error,omitempty"`
	// Aggregates is the streaming summary: present (and growing) while
	// the ensemble runs, final once done.
	Aggregates *ensemble.Aggregates `json:"aggregates,omitempty"`
	// Distribution reports where the ensemble's replicate ranges executed
	// (local vs cluster workers) once the experiment is done. It is
	// operational metadata: the aggregates are bit-identical either way,
	// and restored experiments omit it.
	Distribution *cluster.Distribution `json:"distribution,omitempty"`
	// Restored marks an experiment served from the durable store after a
	// restart.
	Restored   bool       `json:"restored,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	WallMillis int64      `json:"wallMillis,omitempty"`
}

// Aggregates returns the latest aggregates, or nil before the first
// replicate lands.
func (e *Experiment) Aggregates() *ensemble.Aggregates {
	var agg *ensemble.Aggregates
	e.Locked(func() { agg = e.agg })
	return agg
}

// Distribution returns where the experiment's ranges executed, or nil
// before completion (and for experiments restored from the store, where
// the placement of the original run is not retained).
func (e *Experiment) Distribution() *cluster.Distribution {
	var d *cluster.Distribution
	e.Locked(func() { d = e.dist })
	return d
}

// View renders the experiment for JSON responses.
func (e *Experiment) View() ExperimentView {
	meta := e.Meta()
	v := ExperimentView{
		ID:          e.ID,
		State:       meta.State,
		Spec:        e.spec,
		BudgetSteps: e.espec.Budget,
		Error:       meta.Err,
		Restored:    meta.Restored,
		Created:     meta.Created,
		Started:     meta.Started,
		Finished:    meta.Finished,
	}
	e.Locked(func() {
		v.Aggregates = e.agg
		v.Distribution = e.dist
		v.WallMillis = e.wallMillis
	})
	return v
}

// Subscribe returns the latest aggregates (nil before any) plus a channel
// of subsequent aggregate updates; the channel is closed when the
// experiment finishes. The returned cancel stops delivery without closing
// the channel (only completion closes it), mirroring Job.Subscribe.
func (e *Experiment) Subscribe() (latest *ensemble.Aggregates, live <-chan ensemble.Aggregates, cancel func()) {
	live, cancel = e.Run.Subscribe(64, func() { latest = e.agg })
	return latest, live, cancel
}

// update stores the latest aggregates and fans them out to subscribers
// without blocking the ensemble (slow subscribers miss intermediate
// updates rather than stalling the replication).
func (e *Experiment) update(agg ensemble.Aggregates) {
	cp := agg
	e.Publish(agg, func() { e.agg = &cp })
}

// CanonicalizeExperiment resolves an ExperimentSpec's defaults and
// validates it against the registry and the manager's limits, returning
// the canonical spec and the resolved ensemble spec. Errors wrap
// registry.ErrBadSpec.
func (m *Manager) CanonicalizeExperiment(spec ExperimentSpec) (ExperimentSpec, ensemble.Spec, error) {
	if spec.Replicates < 1 {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: experiment needs replicates >= 1 (got %d)", registry.ErrBadSpec, spec.Replicates)
	}
	if spec.Replicates > m.opts.MaxReplicates {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: %d replicates exceed this server's limit of %d",
			registry.ErrBadSpec, spec.Replicates, m.opts.MaxReplicates)
	}
	if spec.CI < 0 || spec.CI >= 1 {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: ci target %g outside [0, 1) (it is a relative CI half-width; 0 disables early stopping)",
			registry.ErrBadSpec, spec.CI)
	}
	if spec.MinReplicates < 0 {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: negative minReplicates %d", registry.ErrBadSpec, spec.MinReplicates)
	}
	canonJob, rspec, _, budget, err := m.Canonicalize(spec.jobPart())
	if err != nil {
		return ExperimentSpec{}, ensemble.Spec{}, err
	}
	spec.Engine = canonJob.Engine
	spec.Seed = canonJob.Seed
	if spec.CI > 0 && spec.MinReplicates == 0 {
		spec.MinReplicates = ensemble.DefaultMinReplicates
	}
	if spec.CI == 0 {
		spec.MinReplicates = 0
	}
	espec := ensemble.Spec{
		Registry:      rspec,
		Replicates:    spec.Replicates,
		Budget:        budget,
		CITarget:      spec.CI,
		MinReplicates: spec.MinReplicates,
		// The job trajectory cap doubles as the drive schedule's
		// observation cap; sharing it keeps replicate 0 bit-identical to
		// the single job.
		ObsCap: m.opts.MaxSnapshots,
	}
	return spec, espec, nil
}

// SubmitExperiment canonicalizes spec and returns the experiment serving
// it: a cached finished one (cached = true, possibly restored from the
// durable store), an identical one already in flight, or a freshly
// queued one. It fails with ErrBusy when the experiment queue is full
// and an error wrapping registry.ErrBadSpec when the spec is invalid.
func (m *Manager) SubmitExperiment(spec ExperimentSpec) (exp *Experiment, cached bool, err error) {
	canon, espec, err := m.CanonicalizeExperiment(spec)
	if err != nil {
		return nil, false, err
	}
	key := canon.key()
	e, outcome, err := m.exps.Submit(key, runID("e", key), m.decodeExperiment,
		func() (*Experiment, error) {
			e := &Experiment{
				Run:   runcore.NewRun[ensemble.Aggregates](runID("e", key)),
				spec:  canon,
				espec: espec,
			}
			if err := m.expClass.Enqueue(func() { m.runExperiment(e) }); err != nil {
				e.Cancel()
				return nil, err
			}
			return e, nil
		})
	if err != nil {
		return nil, false, err
	}
	return e, outcome.Cached(), nil
}

// GetExperiment returns the experiment with the given id, restoring it
// from the durable store if it is no longer indexed in memory.
func (m *Manager) GetExperiment(id string) (*Experiment, bool) {
	return m.exps.Get(id, m.decodeExperiment)
}

// CancelExperiment requests cancellation of the experiment with the
// given id, reporting whether it exists. Finished experiments are
// unaffected.
func (m *Manager) CancelExperiment(id string) bool {
	return m.exps.Cancel(id)
}

// decodeExperiment reconstructs a finished experiment from a durable
// store record (the run core's restore-on-miss path).
func (m *Manager) decodeExperiment(rec store.Record) (*Experiment, bool) {
	var spec ExperimentSpec
	var agg ensemble.Aggregates
	if json.Unmarshal(rec.Spec, &spec) != nil || json.Unmarshal(rec.Data, &agg) != nil {
		return nil, false
	}
	canon, espec, err := m.CanonicalizeExperiment(spec)
	if err != nil || canon.key() != rec.Key {
		return nil, false
	}
	return &Experiment{
		Run:   runcore.NewRestoredRun[ensemble.Aggregates](rec.ID, rec.SavedAt),
		spec:  canon,
		espec: espec,
		agg:   &agg,
	}, true
}

// runExperiment executes one experiment to a terminal state and indexes
// the outcome.
func (m *Manager) runExperiment(e *Experiment) {
	key := e.spec.key()
	if !e.Begin(nil) {
		m.metrics.recordRunState(store.KindExperiment, StateCanceled)
		m.exps.Finished(key, e)
		return
	}
	start := time.Now()
	agg, dist, err := m.runEnsemble(e.Context(), e.espec, e.update)
	wallDur := time.Since(start)
	wall := wallDur.Milliseconds()
	switch {
	case err == nil:
		e.Finish(StateDone, "", func() {
			e.agg = &agg
			e.dist = dist
			e.wallMillis = wall
		})
		m.metrics.recordRunState(store.KindExperiment, StateDone)
		m.metrics.recordEngineRun(e.spec.Engine, ensembleInteractions(agg), wallDur)
		m.exps.Finished(key, e)
		m.core.Persist(store.KindExperiment, key, e.ID, e.spec, agg)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.Finish(StateCanceled, "canceled", func() { e.wallMillis = wall })
		m.metrics.recordRunState(store.KindExperiment, StateCanceled)
		m.exps.Finished(key, e)
	default:
		e.Finish(StateFailed, err.Error(), func() { e.wallMillis = wall })
		m.metrics.recordRunState(store.KindExperiment, StateFailed)
		m.exps.Finished(key, e)
	}
}

// ensembleInteractions approximates an ensemble's total simulated
// interactions (mean steps x incorporated replicates) for the engine
// throughput counters; per-replicate exact counts are not retained.
func ensembleInteractions(agg ensemble.Aggregates) uint64 {
	total := agg.MeanSteps * float64(agg.Replicates)
	if total <= 0 {
		return 0
	}
	return uint64(total)
}

// finishedExperiment constructs an already-done experiment around
// externally computed aggregates — how a sweep cell publishes its
// result into the experiment cache, so a later POST /v1/experiments of
// the same spec is a cache hit.
func finishedExperiment(id string, spec ExperimentSpec, espec ensemble.Spec, agg ensemble.Aggregates, dist *cluster.Distribution, wallMillis int64) *Experiment {
	e := &Experiment{
		Run:   runcore.NewRun[ensemble.Aggregates](id),
		spec:  spec,
		espec: espec,
	}
	cp := agg
	e.Finish(StateDone, "", func() {
		e.agg = &cp
		e.dist = dist
		e.wallMillis = wallMillis
	})
	return e
}
