package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"popproto/internal/ensemble"
	"popproto/internal/registry"
	"popproto/internal/store"
)

// ExperimentSpec is the wire-format experiment description (the POST
// /v1/experiments body): a job spec replicated Replicates times, with
// optional CI-targeted early stopping. Zero values resolve like JobSpec's
// (engine "" = count, seed 0 = derived) — and because the seed derivation
// and the replicate-0 seed are shared with single jobs, an experiment's
// replicate 0 is bit-identical to the job with the same spec.
type ExperimentSpec struct {
	// Protocol is a registry key (GET /v1/protocols lists them).
	Protocol string `json:"protocol"`
	// N is the population size.
	N int `json:"n"`
	// Engine is "count", "agent" or "batch" ("" = "count").
	Engine string `json:"engine,omitempty"`
	// Seed is the ensemble's base seed; replicate r runs with
	// ensemble.ReplicateSeed(seed, r). 0 derives the base seed from the
	// canonical spec.
	Seed uint64 `json:"seed,omitempty"`
	// M is the PLL knowledge parameter (0 = canonical ⌈lg n⌉).
	M int `json:"m,omitempty"`
	// MaxParallelTime caps each replicate, in parallel time units (0 =
	// the protocol's registry default budget; larger values are clamped).
	MaxParallelTime float64 `json:"maxParallelTime,omitempty"`
	// Replicates is the ensemble size R (required, 1 ≤ R ≤ the server's
	// max-replicates limit).
	Replicates int `json:"replicates"`
	// CI, when positive, enables early stopping: the ensemble stops once
	// the relative 95% CI half-width of the mean parallel time is ≤ CI
	// (after MinReplicates replicates). Must be < 1.
	CI float64 `json:"ci,omitempty"`
	// MinReplicates is the early-stop floor (0 = 16); ignored without CI.
	MinReplicates int `json:"minReplicates,omitempty"`
}

// jobPart projects the experiment's shared fields onto a JobSpec so the
// canonicalization (defaults, limits, budget clamping) is exactly the
// single-job one.
func (s ExperimentSpec) jobPart() JobSpec {
	return JobSpec{
		Protocol:        s.Protocol,
		N:               s.N,
		Engine:          s.Engine,
		Seed:            s.Seed,
		M:               s.M,
		MaxParallelTime: s.MaxParallelTime,
	}
}

// key renders the canonical experiment cache key. Call only on
// canonicalized specs.
func (s ExperimentSpec) key() string {
	return fmt.Sprintf("%s r=%d ci=%g min=%d", s.jobPart().key(), s.Replicates, s.CI, s.MinReplicates)
}

// experimentID derives the public experiment id from the canonical key.
func experimentID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("e%016x", h.Sum64())
}

// Experiment is one managed ensemble. All exported methods are safe for
// concurrent use.
type Experiment struct {
	// ID is the public identifier, derived from the canonical spec.
	ID string

	spec  ExperimentSpec // canonicalized
	espec ensemble.Spec  // resolved ensemble spec (budget, seeds)

	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	state State
	err   string
	agg   *ensemble.Aggregates // latest streamed (or final) aggregates
	// subs holds live aggregate subscriptions. Channels are closed ONLY
	// by finishLocked, which runs on the experiment's worker goroutine —
	// the same goroutine as the ensemble's OnUpdate fanout — so a send
	// can never race a close (same discipline as Job.subs).
	subs     map[chan ensemble.Aggregates]struct{}
	done     chan struct{}
	restored bool

	created, started, finished time.Time
	wallMillis                 int64
}

// ExperimentView is the JSON rendering of an experiment's current state.
type ExperimentView struct {
	ID          string         `json:"id"`
	State       State          `json:"state"`
	Spec        ExperimentSpec `json:"spec"`
	BudgetSteps uint64         `json:"budgetSteps"`
	Error       string         `json:"error,omitempty"`
	// Aggregates is the streaming summary: present (and growing) while
	// the ensemble runs, final once done.
	Aggregates *ensemble.Aggregates `json:"aggregates,omitempty"`
	// Restored marks an experiment served from the durable store after a
	// restart.
	Restored   bool       `json:"restored,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	WallMillis int64      `json:"wallMillis,omitempty"`
}

// State returns the experiment's current lifecycle state.
func (e *Experiment) State() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Done returns a channel closed when the experiment reaches a terminal
// state.
func (e *Experiment) Done() <-chan struct{} { return e.done }

// Aggregates returns the latest aggregates, or nil before the first
// replicate lands.
func (e *Experiment) Aggregates() *ensemble.Aggregates {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.agg
}

// View renders the experiment for JSON responses.
func (e *Experiment) View() ExperimentView {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := ExperimentView{
		ID:          e.ID,
		State:       e.state,
		Spec:        e.spec,
		BudgetSteps: e.espec.Budget,
		Error:       e.err,
		Aggregates:  e.agg,
		Restored:    e.restored,
		Created:     e.created,
		WallMillis:  e.wallMillis,
	}
	if !e.started.IsZero() {
		t := e.started
		v.Started = &t
	}
	if !e.finished.IsZero() {
		t := e.finished
		v.Finished = &t
	}
	return v
}

// Subscribe returns the latest aggregates (nil before any) plus a channel
// of subsequent aggregate updates; the channel is closed when the
// experiment finishes. The returned cancel stops delivery without closing
// the channel (only completion closes it), mirroring Job.Subscribe.
func (e *Experiment) Subscribe() (latest *ensemble.Aggregates, live <-chan ensemble.Aggregates, cancel func()) {
	ch := make(chan ensemble.Aggregates, 64)
	e.mu.Lock()
	latest = e.agg
	if e.state.terminal() {
		e.mu.Unlock()
		close(ch)
		return latest, ch, func() {}
	}
	e.subs[ch] = struct{}{}
	e.mu.Unlock()
	return latest, ch, func() {
		e.mu.Lock()
		delete(e.subs, ch)
		e.mu.Unlock()
	}
}

// begin moves a queued experiment to running, or reports false if it was
// canceled while waiting in the queue.
func (e *Experiment) begin() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ctx.Err() != nil || e.state != StateQueued {
		e.finishLocked(StateCanceled, "canceled while queued")
		return false
	}
	e.state = StateRunning
	e.started = time.Now()
	return true
}

// update stores the latest aggregates and fans them out to subscribers
// without blocking the ensemble (slow subscribers miss intermediate
// updates rather than stalling the replication).
func (e *Experiment) update(agg ensemble.Aggregates) {
	e.mu.Lock()
	cp := agg
	e.agg = &cp
	fanout := make([]chan ensemble.Aggregates, 0, len(e.subs))
	for ch := range e.subs {
		fanout = append(fanout, ch)
	}
	e.mu.Unlock()
	for _, ch := range fanout {
		select {
		case ch <- agg:
		default:
		}
	}
}

// finishLocked transitions to a terminal state, closing the done channel
// and every live subscription. Callers hold e.mu.
func (e *Experiment) finishLocked(state State, errMsg string) {
	if e.state.terminal() {
		return
	}
	e.state = state
	e.err = errMsg
	e.finished = time.Now()
	for ch := range e.subs {
		close(ch)
	}
	e.subs = nil
	close(e.done)
	e.cancel()
}

func (e *Experiment) finish(state State, errMsg string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.finishLocked(state, errMsg)
}

func (e *Experiment) complete(agg ensemble.Aggregates) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := agg
	e.agg = &cp
	e.finishLocked(StateDone, "")
}

// CanonicalizeExperiment resolves an ExperimentSpec's defaults and
// validates it against the registry and the manager's limits, returning
// the canonical spec and the resolved ensemble spec. Errors wrap
// registry.ErrBadSpec.
func (m *Manager) CanonicalizeExperiment(spec ExperimentSpec) (ExperimentSpec, ensemble.Spec, error) {
	if spec.Replicates < 1 {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: experiment needs replicates >= 1 (got %d)", registry.ErrBadSpec, spec.Replicates)
	}
	if spec.Replicates > m.opts.MaxReplicates {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: %d replicates exceed this server's limit of %d",
			registry.ErrBadSpec, spec.Replicates, m.opts.MaxReplicates)
	}
	if spec.CI < 0 || spec.CI >= 1 {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: ci target %g outside [0, 1) (it is a relative CI half-width; 0 disables early stopping)",
			registry.ErrBadSpec, spec.CI)
	}
	if spec.MinReplicates < 0 {
		return ExperimentSpec{}, ensemble.Spec{}, fmt.Errorf(
			"%w: negative minReplicates %d", registry.ErrBadSpec, spec.MinReplicates)
	}
	canonJob, rspec, _, budget, err := m.Canonicalize(spec.jobPart())
	if err != nil {
		return ExperimentSpec{}, ensemble.Spec{}, err
	}
	spec.Engine = canonJob.Engine
	spec.Seed = canonJob.Seed
	if spec.CI > 0 && spec.MinReplicates == 0 {
		spec.MinReplicates = ensemble.DefaultMinReplicates
	}
	if spec.CI == 0 {
		spec.MinReplicates = 0
	}
	espec := ensemble.Spec{
		Registry:      rspec,
		Replicates:    spec.Replicates,
		Budget:        budget,
		CITarget:      spec.CI,
		MinReplicates: spec.MinReplicates,
		// The job trajectory cap doubles as the drive schedule's
		// observation cap; sharing it keeps replicate 0 bit-identical to
		// the single job.
		ObsCap: m.opts.MaxSnapshots,
	}
	return spec, espec, nil
}

// SubmitExperiment canonicalizes spec and returns the experiment serving
// it: a cached finished one (cached = true, possibly restored from the
// durable store), an identical one already in flight, or a freshly
// queued one. It fails with ErrBusy when the experiment queue is full
// and an error wrapping registry.ErrBadSpec when the spec is invalid.
func (m *Manager) SubmitExperiment(spec ExperimentSpec) (exp *Experiment, cached bool, err error) {
	canon, espec, err := m.CanonicalizeExperiment(spec)
	if err != nil {
		return nil, false, err
	}
	key := canon.key()
	id := experimentID(key)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if e, ok := m.expCache.get(key); ok {
		if e.State() != StateCanceled {
			m.hits++
			return e, true, nil
		}
		m.expCache.remove(key)
		delete(m.exps, e.ID)
	}
	if e, ok := m.exps[id]; ok && !e.State().terminal() {
		m.joined++
		return e, false, nil
	}
	if e := m.restoreExperimentLocked(key); e != nil {
		m.storeHits++
		return e, true, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	e := &Experiment{
		ID:      id,
		spec:    canon,
		espec:   espec,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		subs:    make(map[chan ensemble.Aggregates]struct{}),
		done:    make(chan struct{}),
		created: time.Now(),
	}
	select {
	case m.expQueue <- e:
	default:
		cancel()
		return nil, false, ErrBusy
	}
	m.exps[id] = e
	m.misses++
	return e, false, nil
}

// GetExperiment returns the experiment with the given id, restoring it
// from the durable store if it is no longer indexed in memory.
func (m *Manager) GetExperiment(id string) (*Experiment, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.exps[id]; ok {
		return e, true
	}
	if m.opts.Store != nil {
		if rec, ok := m.opts.Store.GetByID(id); ok && rec.Kind == store.KindExperiment {
			if e := m.restoreExperimentLocked(rec.Key); e != nil {
				m.storeHits++
				return e, true
			}
		}
	}
	return nil, false
}

// CancelExperiment requests cancellation of the experiment with the
// given id, reporting whether it exists. Finished experiments are
// unaffected.
func (m *Manager) CancelExperiment(id string) bool {
	m.mu.Lock()
	e, ok := m.exps[id]
	m.mu.Unlock()
	if ok {
		e.cancel()
	}
	return ok
}

// restoreExperimentLocked reconstructs a finished experiment from the
// durable store's record for key. Callers hold m.mu.
func (m *Manager) restoreExperimentLocked(key string) *Experiment {
	if m.opts.Store == nil {
		return nil
	}
	rec, ok := m.opts.Store.Get(store.KindExperiment, key)
	if !ok {
		return nil
	}
	var spec ExperimentSpec
	var agg ensemble.Aggregates
	if json.Unmarshal(rec.Spec, &spec) != nil || json.Unmarshal(rec.Data, &agg) != nil {
		return nil
	}
	canon, espec, err := m.CanonicalizeExperiment(spec)
	if err != nil || canon.key() != key {
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	close(done)
	e := &Experiment{
		ID:       rec.ID,
		spec:     canon,
		espec:    espec,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateDone,
		agg:      &agg,
		restored: true,
		done:     done,
		created:  rec.SavedAt,
		started:  rec.SavedAt,
		finished: rec.SavedAt,
	}
	m.exps[e.ID] = e
	m.expCache.put(key, e)
	return e
}

func (m *Manager) expWorker() {
	defer m.expWg.Done()
	for e := range m.expQueue {
		m.runExperiment(e)
	}
}

// runExperiment executes one experiment to a terminal state and indexes
// the outcome.
func (m *Manager) runExperiment(e *Experiment) {
	if !e.begin() {
		m.indexExperiment(e)
		return
	}
	start := time.Now()
	res, err := ensemble.Run(e.ctx, e.espec, ensemble.Options{
		Workers:  m.opts.Workers,
		OnUpdate: e.update,
	})
	e.mu.Lock()
	e.wallMillis = time.Since(start).Milliseconds()
	e.mu.Unlock()
	switch {
	case err == nil:
		e.complete(res.Aggregates)
		m.indexExperiment(e)
		m.persist(store.KindExperiment, e.spec.key(), e.ID, e.spec, res.Aggregates)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.finish(StateCanceled, "canceled")
		m.indexExperiment(e)
	default:
		e.finish(StateFailed, err.Error())
		m.indexExperiment(e)
	}
}

// indexExperiment files a terminal experiment in the finished-work cache.
func (m *Manager) indexExperiment(e *Experiment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expCache.put(e.spec.key(), e)
}
