package service

import (
	"sync"
	"time"

	"popproto/internal/obs"
	"popproto/internal/pp"
	"popproto/internal/store"
)

// serviceMetrics is the manager's instrument set: HTTP front-door
// series, run lifecycle counters, per-engine simulation throughput, and
// the hybrid controller's aggregated mode occupancy. Every series a
// health endpoint reports is sourced from these same instruments (or
// runcore's), so /v1/health and /metrics cannot disagree.
type serviceMetrics struct {
	// HTTP front door (maintained by the middleware in middleware.go).
	httpRequests   *obs.CounterVec   // {route, method, code}: code is the status class ("2xx")
	httpDuration   *obs.HistogramVec // {route}
	httpInFlight   *obs.Gauge
	sseSubscribers *obs.Gauge

	// Run lifecycle: one increment per terminal transition executed by
	// this process (cached and restored answers don't run, so they are
	// visible in runcore's submissions family instead).
	runsTotal *obs.CounterVec // {kind, state}

	// Engine throughput, recorded when a run finishes: interactions
	// simulated, runs finished, and a ns/interaction EWMA per engine.
	engineRuns         *obs.CounterVec // {engine}
	engineInteractions *obs.CounterVec // {engine}
	engineNsPer        *obs.GaugeVec   // {engine}

	// Hybrid controller aggregates across all hybrid runs.
	hybridModeInteractions *obs.CounterVec // {mode}
	hybridHandovers        *obs.Counter
	skipEntries            *obs.Counter
	skipLength             *obs.Histogram

	// Live support of the most recently finished run per engine: the k
	// that drives every engine's per-event cost and the payoff-driven
	// skip rule's break-even.
	liveStates *obs.GaugeVec // {engine}

	// EWMA state behind engineNsPer (α = ewmaAlpha), guarded separately
	// from the lock-free instruments.
	mu   sync.Mutex
	ewma map[string]float64
}

// ewmaAlpha weights the newest run's ns/interaction at 20% — smooth
// enough to damp one outlier run, fresh enough to follow a phase shift
// within a handful of runs.
const ewmaAlpha = 0.2

// runKinds and terminalStates enumerate the runsTotal label space for
// pre-seeding, so every series renders from startup.
var (
	runKinds       = []store.Kind{store.KindJob, store.KindExperiment, store.KindSweep}
	terminalStates = []State{StateDone, StateFailed, StateCanceled}
)

// newServiceMetrics creates the manager's instruments, registers them on
// reg, and pre-seeds every enumerable label combination.
func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	m := &serviceMetrics{
		httpRequests: obs.NewCounterVec("popprotod_http_requests_total",
			"HTTP requests by route pattern, method and status class.",
			"route", "method", "code"),
		httpDuration: obs.NewHistogramVec("popprotod_http_request_seconds",
			"HTTP request latency by route pattern.",
			obs.ExpBuckets(0.0005, 2, 16), "route"),
		httpInFlight: obs.NewGauge("popprotod_http_in_flight",
			"HTTP requests currently being served."),
		sseSubscribers: obs.NewGauge("popprotod_sse_subscribers",
			"Live server-sent-event streams (trace and stream endpoints)."),
		runsTotal: obs.NewCounterVec("popprotod_runs_total",
			"Runs that reached a terminal state in this process, by kind and state.",
			"kind", "state"),
		engineRuns: obs.NewCounterVec("popprotod_engine_runs_total",
			"Finished simulations by engine (experiment/sweep ensembles count once).",
			"engine"),
		engineInteractions: obs.NewCounterVec("popprotod_engine_interactions_total",
			"Interactions simulated by finished runs, by engine (ensemble totals are mean x replicates).",
			"engine"),
		engineNsPer: obs.NewGaugeVec("popprotod_engine_ns_per_interaction",
			"EWMA of wall nanoseconds per simulated interaction, by engine.",
			"engine"),
		hybridModeInteractions: obs.NewCounterVec("popprotod_hybrid_mode_interactions_total",
			"Interactions executed by the hybrid engine per controller mode, across finished jobs.",
			"mode"),
		hybridHandovers: obs.NewCounter("popprotod_hybrid_handovers_total",
			"Hybrid controller mode switches across finished jobs."),
		skipEntries: obs.NewCounter("popprotod_engine_skip_entries_total",
			"Handovers into geometric skip mode taken by the payoff-driven controller, across finished jobs."),
		skipLength: obs.NewHistogram("popprotod_hybrid_skip_length_interactions",
			"Mean realized skip-event length (interactions jumped per skip event) of finished hybrid runs with at least one skip event.",
			obs.ExpBuckets(1, 8, 16)),
		liveStates: obs.NewGaugeVec("popprotod_engine_live_states",
			"Live (nonzero-count) states of the most recently finished run, by engine.",
			"engine"),
		ewma: make(map[string]float64),
	}
	reg.MustRegister(m.httpRequests, m.httpDuration, m.httpInFlight,
		m.sseSubscribers, m.runsTotal, m.engineRuns, m.engineInteractions,
		m.engineNsPer, m.hybridModeInteractions, m.hybridHandovers,
		m.skipEntries, m.skipLength, m.liveStates)
	for _, kind := range runKinds {
		for _, st := range terminalStates {
			m.runsTotal.With(string(kind), string(st))
		}
	}
	for _, engine := range pp.EngineNames() {
		m.engineRuns.With(engine)
		m.engineInteractions.With(engine)
		m.engineNsPer.With(engine)
		m.liveStates.With(engine)
	}
	for _, mode := range []pp.HybridMode{pp.ModeRound, pp.ModeInteract, pp.ModeSkip} {
		m.hybridModeInteractions.With(mode.String())
	}
	return m
}

// recordRunState counts one terminal transition.
func (m *serviceMetrics) recordRunState(kind store.Kind, state State) {
	m.runsTotal.With(string(kind), string(state)).Inc()
}

// recordEngineRun records a finished simulation's throughput: steps
// simulated over wall time on the named engine. Ensembles pass their
// approximate total (mean steps x replicates) and the ensemble's wall
// time, so the EWMA reflects delivered multi-core throughput.
func (m *serviceMetrics) recordEngineRun(engine string, steps uint64, wall time.Duration) {
	m.engineRuns.With(engine).Inc()
	m.engineInteractions.With(engine).Add(steps)
	if steps == 0 || wall <= 0 {
		return
	}
	ns := float64(wall.Nanoseconds()) / float64(steps)
	m.mu.Lock()
	prev, ok := m.ewma[engine]
	if !ok {
		prev = ns
	}
	cur := ewmaAlpha*ns + (1-ewmaAlpha)*prev
	m.ewma[engine] = cur
	m.mu.Unlock()
	m.engineNsPer.With(engine).Set(cur)
}

// recordHybrid folds one finished hybrid run's controller telemetry into
// the aggregate mode-occupancy, handover and skip-payoff series.
func (m *serviceMetrics) recordHybrid(st pp.HybridStats) {
	m.hybridModeInteractions.With(pp.ModeRound.String()).Add(st.RoundSteps)
	m.hybridModeInteractions.With(pp.ModeInteract.String()).Add(st.InteractSteps)
	m.hybridModeInteractions.With(pp.ModeSkip.String()).Add(st.SkipSteps)
	m.hybridHandovers.Add(st.Handovers)
	m.skipEntries.Add(st.SkipEntries)
	if st.SkipEvents > 0 {
		m.skipLength.Observe(float64(st.SkipSteps) / float64(st.SkipEvents))
	}
}

// recordLiveStates publishes the finished run's live support per engine.
func (m *serviceMetrics) recordLiveStates(engine string, live int) {
	m.liveStates.With(engine).Set(float64(live))
}
