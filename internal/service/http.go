package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"popproto/internal/registry"
)

// maxBodyBytes bounds POST bodies; a job spec is a handful of scalars.
const maxBodyBytes = 1 << 20

// NewHandler returns the popprotod HTTP API on top of m:
//
//	GET    /v1/protocols               the protocol catalog with parameter docs
//	POST   /v1/jobs                    submit a job (JobSpec JSON body)
//	GET    /v1/jobs/{id}               job status and result
//	DELETE /v1/jobs/{id}               request cancellation
//	GET    /v1/jobs/{id}/trace         census trajectory as server-sent events
//	POST   /v1/experiments             submit an ensemble (ExperimentSpec body)
//	GET    /v1/experiments/{id}        experiment status and aggregates
//	DELETE /v1/experiments/{id}        request cancellation
//	GET    /v1/experiments/{id}/stream live aggregates as server-sent events
//	GET    /v1/health                  liveness plus cache/pool counters
//
// Every error response is JSON of the form {"error": "..."}; invalid
// specs map to 400, unknown jobs to 404, a full queue to 429, and a
// shutting-down server to 503.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/protocols", handleProtocols)
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		withJob(m, w, r, func(j *Job) {
			writeJSON(w, http.StatusOK, j.View())
		})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		withJob(m, w, r, func(j *Job) {
			m.Cancel(j.ID)
			writeJSON(w, http.StatusAccepted, j.View())
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		withJob(m, w, r, func(j *Job) {
			handleTrace(w, r, j)
		})
	})
	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		handleSubmitExperiment(m, w, r)
	})
	mux.HandleFunc("GET /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		withExperiment(m, w, r, func(e *Experiment) {
			writeJSON(w, http.StatusOK, e.View())
		})
	})
	mux.HandleFunc("DELETE /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		withExperiment(m, w, r, func(e *Experiment) {
			m.CancelExperiment(e.ID)
			writeJSON(w, http.StatusAccepted, e.View())
		})
	})
	mux.HandleFunc("GET /v1/experiments/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		withExperiment(m, w, r, func(e *Experiment) {
			handleExperimentStream(w, r, e)
		})
	})
	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			Stats  Stats  `json:"stats"`
		}{"ok", m.Stats()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// protocolDoc is the catalog rendering of a registry entry.
type protocolDoc struct {
	Key     string     `json:"key"`
	Summary string     `json:"summary"`
	States  string     `json:"states"`
	Time    string     `json:"time"`
	Target  int        `json:"target"`
	Params  []paramDoc `json:"params,omitempty"`
	// Engines lists the engines that scale to large n for this protocol,
	// in preference order (every engine is accepted at any size within
	// the server's limits).
	Engines []string `json:"engines"`
}

type paramDoc struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func handleProtocols(w http.ResponseWriter, _ *http.Request) {
	entries := registry.Entries()
	docs := make([]protocolDoc, len(entries))
	for i, e := range entries {
		d := protocolDoc{
			Key:     e.Key,
			Summary: e.Summary,
			States:  e.States,
			Time:    e.Time,
			Target:  e.Target,
		}
		for _, p := range e.Params {
			d.Params = append(d.Params, paramDoc{Name: p.Name, Doc: p.Doc})
		}
		for _, eng := range e.SuitableEngines() {
			d.Engines = append(d.Engines, eng.String())
		}
		docs[i] = d
	}
	writeJSON(w, http.StatusOK, struct {
		Protocols []protocolDoc `json:"protocols"`
	}{docs})
}

// submitResponse is the POST /v1/jobs body: the job plus whether it was
// answered from the finished-job cache.
type submitResponse struct {
	Job    JobView `json:"job"`
	Cached bool    `json:"cached"`
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	job, cached, err := m.Submit(spec)
	switch {
	case errors.Is(err, registry.ErrBadSpec):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrBusy):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{Job: job.View(), Cached: cached})
}

// submitExperimentResponse is the POST /v1/experiments body: the
// experiment plus whether it was answered from the cache or the store.
type submitExperimentResponse struct {
	Experiment ExperimentView `json:"experiment"`
	Cached     bool           `json:"cached"`
}

func handleSubmitExperiment(m *Manager, w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec ExperimentSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid experiment spec: %v", err)
		return
	}
	exp, cached, err := m.SubmitExperiment(spec)
	switch {
	case errors.Is(err, registry.ErrBadSpec):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrBusy):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, submitExperimentResponse{Experiment: exp.View(), Cached: cached})
}

// withExperiment resolves the {id} path value and 404s unknown
// experiments.
func withExperiment(m *Manager, w http.ResponseWriter, r *http.Request, fn func(*Experiment)) {
	id := r.PathValue("id")
	exp, ok := m.GetExperiment(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such experiment %q", id)
		return
	}
	fn(exp)
}

// handleExperimentStream streams the experiment's live aggregates as
// server-sent events: one "aggregate" event with the latest summary (if
// any), further "aggregate" events as replicates are incorporated, and a
// final "done" event carrying the experiment view once it reaches a
// terminal state.
func handleExperimentStream(w http.ResponseWriter, r *http.Request, e *Experiment) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	latest, live, cancel := e.Subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	if latest != nil {
		if !emit("aggregate", latest) {
			return
		}
	}
	for {
		select {
		case agg, open := <-live:
			if !open {
				emit("done", e.View())
				return
			}
			if !emit("aggregate", agg) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// withJob resolves the {id} path value and 404s unknown jobs.
func withJob(m *Manager, w http.ResponseWriter, r *http.Request, fn func(*Job)) {
	id := r.PathValue("id")
	job, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	fn(job)
}

// handleTrace streams the job's census trajectory as server-sent events:
// one "census" event per snapshot (replayed from the stored trajectory,
// then live as the run progresses) and a final "done" event carrying the
// job view once the job reaches a terminal state.
func handleTrace(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	replay, live, cancel := j.Subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for _, snap := range replay {
		if !emit("census", snap) {
			return
		}
	}
	for {
		select {
		case snap, open := <-live:
			if !open {
				emit("done", j.View())
				return
			}
			if !emit("census", snap) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
