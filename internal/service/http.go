package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"popproto/internal/ensemble"
	"popproto/internal/pp"
	"popproto/internal/registry"
)

// maxBodyBytes bounds POST bodies; a job or sweep spec is a handful of
// scalars and short arrays.
const maxBodyBytes = 1 << 20

// NewHandler returns the popprotod HTTP API on top of m:
//
//	GET    /v1/protocols               the protocol catalog with parameter docs
//	POST   /v1/jobs                    submit a job (JobSpec JSON body)
//	GET    /v1/jobs/{id}               job status and result
//	DELETE /v1/jobs/{id}               request cancellation
//	GET    /v1/jobs/{id}/trace         census trajectory as server-sent events
//	POST   /v1/experiments             submit an ensemble (ExperimentSpec body)
//	GET    /v1/experiments/{id}        experiment status and aggregates
//	DELETE /v1/experiments/{id}        request cancellation
//	GET    /v1/experiments/{id}/stream live aggregates as server-sent events
//	POST   /v1/sweeps                  submit a parameter sweep (SweepSpec body)
//	GET    /v1/sweeps/{id}             sweep status, cells and scaling summary
//	DELETE /v1/sweeps/{id}             request cancellation (cascades to cells)
//	GET    /v1/sweeps/{id}/stream      live per-cell aggregates as server-sent events
//	GET    /v1/results                 query the durable result corpus (filters, pagination,
//	                                   aggregate=scaling for stored-experiment fits)
//	POST   /v1/cluster/leases          worker pull: grant a replicate-range lease
//	POST   /v1/cluster/leases/{id}/heartbeat  renew a lease
//	POST   /v1/cluster/leases/{id}/complete   post a range's partial aggregate
//	GET    /v1/cluster                 coordinator status (workers, ranges, leases)
//	GET    /v1/health                  liveness, uptime, build info, queue and cache counters
//	GET    /metrics                    Prometheus text-format exposition
//
// Every error response is JSON of the form {"error": "..."}; invalid
// specs map to 400, unknown runs to 404, a full queue to 429, and a
// shutting-down server to 503.
//
// The returned handler wraps the routed mux with the front-door
// telemetry middleware: per-route request counters and latency
// histograms, the in-flight gauge, and (when Options.Logger is set) one
// structured log record per request.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/protocols", handleProtocols)

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(w, r, "job spec", m.Submit, func(j *Job, cached bool) any {
			annotateRun(r, j, cached)
			return submitResponse{Job: j.View(), Cached: cached}
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "job", m.Get, func(j *Job) {
			writeJSON(w, http.StatusOK, j.View())
		})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "job", m.Get, func(j *Job) {
			m.Cancel(j.ID)
			writeJSON(w, http.StatusAccepted, j.View())
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "job", m.Get, func(j *Job) {
			replay, live, cancel := j.Subscribe()
			streamSSE(m, w, r, "census", replay, live, cancel, func() any { return j.View() })
		})
	})

	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(w, r, "experiment spec", m.SubmitExperiment, func(e *Experiment, cached bool) any {
			annotateRun(r, e, cached)
			return submitExperimentResponse{Experiment: e.View(), Cached: cached}
		})
	})
	mux.HandleFunc("GET /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "experiment", m.GetExperiment, func(e *Experiment) {
			writeJSON(w, http.StatusOK, e.View())
		})
	})
	mux.HandleFunc("DELETE /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "experiment", m.GetExperiment, func(e *Experiment) {
			m.CancelExperiment(e.ID)
			writeJSON(w, http.StatusAccepted, e.View())
		})
	})
	mux.HandleFunc("GET /v1/experiments/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "experiment", m.GetExperiment, func(e *Experiment) {
			latest, live, cancel := e.Subscribe()
			var replay []ensemble.Aggregates
			if latest != nil {
				replay = append(replay, *latest)
			}
			streamSSE(m, w, r, "aggregate", replay, live, cancel, func() any { return e.View() })
		})
	})

	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(w, r, "sweep spec", m.SubmitSweep, func(s *Sweep, cached bool) any {
			annotateRun(r, s, cached)
			return submitSweepResponse{Sweep: s.View(), Cached: cached}
		})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "sweep", m.GetSweep, func(s *Sweep) {
			writeJSON(w, http.StatusOK, s.View())
		})
	})
	mux.HandleFunc("DELETE /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "sweep", m.GetSweep, func(s *Sweep) {
			m.CancelSweep(s.ID)
			writeJSON(w, http.StatusAccepted, s.View())
		})
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		withRun(w, r, "sweep", m.GetSweep, func(s *Sweep) {
			replay, live, cancel := s.Subscribe()
			streamSSE(m, w, r, "cell", replay, live, cancel, func() any { return s.View() })
		})
	})

	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		handleResults(m, w, r)
	})

	// The cluster lease protocol registers directly on the same mux, so
	// the front-door middleware labels worker traffic per route like any
	// other endpoint.
	m.Coordinator().Routes(mux)

	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Health())
	})
	mux.Handle("GET /metrics", m.MetricsRegistry().Handler())
	return m.instrumentHTTP(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// protocolDoc is the catalog rendering of a registry entry.
type protocolDoc struct {
	Key     string     `json:"key"`
	Summary string     `json:"summary"`
	States  string     `json:"states"`
	Time    string     `json:"time"`
	Target  int        `json:"target"`
	Params  []paramDoc `json:"params,omitempty"`
	// Engines lists the engines that scale to large n for this protocol,
	// in preference order, plus the pseudo-engine "auto", which resolves
	// to the recommendation per population size (every engine is
	// accepted at any size within the server's limits).
	Engines []string `json:"engines"`
	// RecommendedEngine previews what "auto" resolves to at a large
	// population (10⁶): the registry's per-protocol recommendation.
	RecommendedEngine string `json:"recommendedEngine"`
}

type paramDoc struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func handleProtocols(w http.ResponseWriter, _ *http.Request) {
	entries := registry.Entries()
	docs := make([]protocolDoc, len(entries))
	for i, e := range entries {
		d := protocolDoc{
			Key:               e.Key,
			Summary:           e.Summary,
			States:            e.States,
			Time:              e.Time,
			Target:            e.Target,
			RecommendedEngine: e.RecommendedEngine(1_000_000).String(),
		}
		for _, p := range e.Params {
			d.Params = append(d.Params, paramDoc{Name: p.Name, Doc: p.Doc})
		}
		for _, eng := range e.SuitableEngines() {
			d.Engines = append(d.Engines, eng.String())
		}
		d.Engines = append(d.Engines, pp.EngineAuto.String())
		docs[i] = d
	}
	writeJSON(w, http.StatusOK, struct {
		Protocols []protocolDoc `json:"protocols"`
	}{docs})
}

// submitResponse is the POST /v1/jobs body: the job plus whether it was
// answered from the finished-job cache.
type submitResponse struct {
	Job    JobView `json:"job"`
	Cached bool    `json:"cached"`
}

// submitExperimentResponse is the POST /v1/experiments body.
type submitExperimentResponse struct {
	Experiment ExperimentView `json:"experiment"`
	Cached     bool           `json:"cached"`
}

// submitSweepResponse is the POST /v1/sweeps body.
type submitSweepResponse struct {
	Sweep  SweepView `json:"sweep"`
	Cached bool      `json:"cached"`
}

// handleSubmit is the one submission handler every run kind shares:
// decode the spec (strictly — unknown fields are rejected), submit it
// through the kind's manager method, map the shared error taxonomy to
// status codes, and answer 200 for cached work, 202 for fresh or joined
// work.
func handleSubmit[Spec, R any](w http.ResponseWriter, r *http.Request, what string,
	submit func(Spec) (R, bool, error), render func(R, bool) any,
) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid %s: %v", what, err)
		return
	}
	run, cached, err := submit(spec)
	switch {
	case errors.Is(err, registry.ErrBadSpec):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, ErrBusy):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, render(run, cached))
}

// withRun resolves the {id} path value through the kind's getter and
// 404s unknown ids.
func withRun[R any](w http.ResponseWriter, r *http.Request, what string,
	get func(string) (R, bool), fn func(R),
) {
	id := r.PathValue("id")
	run, ok := get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such %s %q", what, id)
		return
	}
	annotateRun(r, run, false)
	fn(run)
}

// streamSSE is the one server-sent-events loop every run kind shares:
// replay the stored events, forward live ones as they are published,
// and finish with a "done" event carrying the kind's view once the run
// reaches a terminal state (the run core closes the live channel then —
// and only then). The subscription's cancel only stops delivery, so
// returning on a dropped client can never race the publisher.
func streamSSE[E any](m *Manager, w http.ResponseWriter, r *http.Request, event string,
	replay []E, live <-chan E, cancel func(), doneView func() any,
) {
	defer cancel()
	m.metrics.sseSubscribers.Inc()
	defer m.metrics.sseSubscribers.Dec()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for _, e := range replay {
		if !emit(event, e) {
			return
		}
	}
	for {
		select {
		case e, open := <-live:
			if !open {
				emit("done", doneView())
				return
			}
			if !emit(event, e) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
