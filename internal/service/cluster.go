package service

import (
	"context"

	"popproto/internal/cluster"
	"popproto/internal/ensemble"
)

// Distribution re-exports the cluster package's execution report — the
// "distribution" block on job, experiment and sweep-cell results — so
// API consumers of this package need not import internal/cluster.
type Distribution = cluster.Distribution

// Coordinator exposes the manager's cluster coordinator: the HTTP layer
// mounts its lease routes, and popprotod's worker mode talks to them.
func (m *Manager) Coordinator() *cluster.Coordinator { return m.coord }

// runEnsemble executes one canonical ensemble through the cluster
// coordinator. With no live workers every range runs in process through
// ensemble.RunRanges — the degenerate case, bit-identical to the old
// direct ensemble.Run path because both are the same canonical range
// partition folded in ascending order. With workers attached, ranges
// are leased out and the returned distribution reports the placement;
// the aggregates are identical either way, which is what keeps the
// canonical-key cache and store dedup sound cluster-wide.
func (m *Manager) runEnsemble(ctx context.Context, espec ensemble.Spec, onUpdate func(ensemble.Aggregates)) (ensemble.Aggregates, *Distribution, error) {
	agg, dist, err := m.coord.Run(ctx, espec, m.localRunner(), onUpdate)
	if err != nil {
		return agg, nil, err
	}
	return agg, &dist, nil
}

// localRunner adapts the manager's simulation worker pool to the
// coordinator's in-process execution hook.
func (m *Manager) localRunner() cluster.LocalRunner {
	return func(ctx context.Context, spec ensemble.Spec, ranges []ensemble.Range, onRange func(*ensemble.Partial) bool) error {
		return ensemble.RunRanges(ctx, spec, ranges, m.opts.Workers, onRange)
	}
}
