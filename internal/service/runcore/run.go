package runcore

import (
	"context"
	"sync"
	"time"
)

// Run is the lifecycle-and-fanout base every run kind embeds: the state
// machine, the cancellation context, the subscriber set for streaming
// events of type E, and the timestamps. All exported methods are safe
// for concurrent use.
//
// The fanout close discipline — the invariant the SSE handlers rely on —
// is enforced here once: subscriber channels are closed ONLY by Finish,
// which runs on the run's worker goroutine, the same goroutine that
// calls Publish, so a send can never race a close. A subscription's
// cancel function only deletes the entry.
//
// Kinds keep their replay state (a job's snapshot trajectory, an
// experiment's latest aggregates) next to the Run and mutate it under
// the Run's own lock via the locked-callback parameters of Publish,
// Subscribe, Finish and View — that is what makes "copy the replay,
// then register" atomic with respect to concurrent publishes.
type Run[E any] struct {
	// ID is the public identifier, derived from the canonical spec key.
	ID string

	ctx      context.Context
	cancelFn context.CancelFunc

	mu       sync.Mutex
	state    State
	errMsg   string
	subs     map[chan E]struct{}
	done     chan struct{}
	restored bool

	created, started, finished time.Time
}

// NewRun returns a queued run with a live cancellation context.
func NewRun[E any](id string) *Run[E] {
	ctx, cancel := context.WithCancel(context.Background())
	return &Run[E]{
		ID:       id,
		ctx:      ctx,
		cancelFn: cancel,
		state:    StateQueued,
		subs:     make(map[chan E]struct{}),
		done:     make(chan struct{}),
		created:  time.Now(),
	}
}

// NewRestoredRun returns a run reconstructed from the durable store
// after a restart: done from birth, context canceled, no subscribers.
func NewRestoredRun[E any](id string, savedAt time.Time) *Run[E] {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	close(done)
	return &Run[E]{
		ID:       id,
		ctx:      ctx,
		cancelFn: cancel,
		state:    StateDone,
		restored: true,
		done:     done,
		created:  savedAt,
		started:  savedAt,
		finished: savedAt,
	}
}

// Context returns the run's cancellation context; workers pass it to
// the simulation drivers.
func (r *Run[E]) Context() context.Context { return r.ctx }

// RunID returns the public identifier. It exists so type-erased callers
// (the HTTP middleware's request-log annotation) can extract the id from
// any kind via one interface assertion.
func (r *Run[E]) RunID() string { return r.ID }

// Cancel requests cancellation. Finished runs are unaffected (their
// state is already terminal; the context release is idempotent).
func (r *Run[E]) Cancel() { r.cancelFn() }

// State returns the current lifecycle state.
func (r *Run[E]) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run[E]) Done() <-chan struct{} { return r.done }

// Meta is a point-in-time snapshot of the lifecycle fields shared by
// every kind's JSON view.
type Meta struct {
	State    State
	Err      string
	Restored bool
	Created  time.Time
	Started  *time.Time
	Finished *time.Time
}

// Meta snapshots the lifecycle fields for view rendering.
func (r *Run[E]) Meta() Meta {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Meta{
		State:    r.state,
		Err:      r.errMsg,
		Restored: r.restored,
		Created:  r.created,
	}
	if !r.started.IsZero() {
		t := r.started
		m.Started = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		m.Finished = &t
	}
	return m
}

// Locked runs f under the run's lock. Kinds use it to read or mutate
// their replay/result state with the same mutex that orders publishes,
// subscriptions and the finish transition.
func (r *Run[E]) Locked(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f()
}

// Begin moves a queued run to running, or reports false — finishing the
// run as canceled — if it was canceled while waiting in the queue.
// onCancel, if non-nil, runs under the run's lock immediately before
// that canceled transition, so kinds can mark their replay state (a
// sweep's cells) canceled atomically with the terminal transition: a
// subscriber that sees its channel close can never observe the
// canceled run with stale replay state.
func (r *Run[E]) Begin(onCancel func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ctx.Err() != nil || r.state != StateQueued {
		if onCancel != nil && !r.state.Terminal() {
			onCancel()
		}
		r.finishLocked(StateCanceled, "canceled while queued")
		return false
	}
	r.state = StateRunning
	r.started = time.Now()
	return true
}

// Publish fans e out to the current subscribers without blocking the
// worker (slow subscribers miss events rather than stalling the run).
// update, if non-nil, runs under the run's lock first, so kinds can
// append e to their replay state atomically with the fanout.
func (r *Run[E]) Publish(e E, update func()) {
	r.mu.Lock()
	if update != nil {
		update()
	}
	fanout := make([]chan E, 0, len(r.subs))
	for ch := range r.subs {
		fanout = append(fanout, ch)
	}
	r.mu.Unlock()
	for _, ch := range fanout {
		select {
		case ch <- e:
		default:
		}
	}
}

// Subscribe returns a channel of subsequent events; the channel is
// closed when the run finishes (and is already closed for a finished
// run). replay, if non-nil, runs under the run's lock before the
// registration, so the kind's copy of its replay state and the
// registration are one atomic step — no event can fall between them.
// The returned cancel stops delivery without closing the channel (only
// completion closes it) and is safe to call more than once; a consumer
// that cancels early must stop reading on its own signal, as the SSE
// handlers do via the request context.
func (r *Run[E]) Subscribe(buffer int, replay func()) (live <-chan E, cancel func()) {
	ch := make(chan E, buffer)
	r.mu.Lock()
	if replay != nil {
		replay()
	}
	if r.state.Terminal() {
		r.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch, func() {
		r.mu.Lock()
		delete(r.subs, ch) // no-op after Finish set subs to nil
		r.mu.Unlock()
	}
}

// Finish transitions to a terminal state, closing the done channel and
// every live subscription, and releasing the context. update, if
// non-nil, runs under the lock before the transition (kinds store their
// final result there, atomically with going terminal). Repeated calls
// after the first terminal transition are no-ops (update included).
func (r *Run[E]) Finish(state State, errMsg string, update func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state.Terminal() {
		return
	}
	if update != nil {
		update()
	}
	r.finishLocked(state, errMsg)
}

// finishLocked is the terminal transition. Callers hold r.mu.
func (r *Run[E]) finishLocked(state State, errMsg string) {
	if r.state.Terminal() {
		return
	}
	r.state = state
	r.errMsg = errMsg
	r.finished = time.Now()
	for ch := range r.subs {
		close(ch)
	}
	r.subs = nil
	close(r.done)
	r.cancelFn() // release the context's resources
}
