package runcore

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSchedulerRoundRobinFairness pins the dispatch order: with one
// worker and queued work in two classes, dispatch alternates between
// the classes instead of draining the first class first.
func TestSchedulerRoundRobinFairness(t *testing.T) {
	s := NewScheduler(1)
	a := s.NewClass("a", 16, 1)
	b := s.NewClass("b", 16, 1)

	var mu sync.Mutex
	var order []string
	record := func(name string) Task {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}

	// Block the single worker so the queues fill before dispatch starts.
	release := make(chan struct{})
	if err := a.Enqueue(func() { <-release }); err != nil {
		t.Fatal(err)
	}
	// Give the worker time to pick up the blocker.
	time.Sleep(20 * time.Millisecond)
	for _, task := range []struct {
		c    *Class
		name string
	}{{a, "a1"}, {a, "a2"}, {b, "b1"}, {b, "b2"}} {
		if err := task.c.Enqueue(record(task.name)); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	s.Close()

	want := []string{"b1", "a1", "b2", "a2"} // round-robin after the class-a blocker
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (no round-robin fairness)", order, want)
		}
	}
}

// TestSchedulerConcurrencyCap: a class never exceeds its maxRunning even
// with idle workers available.
func TestSchedulerConcurrencyCap(t *testing.T) {
	s := NewScheduler(4)
	c := s.NewClass("capped", 16, 2)

	var mu sync.Mutex
	running, maxSeen := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		if err := c.Enqueue(func() {
			defer wg.Done()
			mu.Lock()
			running++
			if running > maxSeen {
				maxSeen = running
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	s.Close()
	if maxSeen > 2 {
		t.Fatalf("observed %d concurrent tasks, cap is 2", maxSeen)
	}
}

// TestSchedulerBusyAndClosed: admission control reports the shared
// sentinel errors, and tasks queued at Close time still run (the
// cancel-drain path every kind's canceled-while-queued transition
// depends on).
func TestSchedulerBusyAndClosed(t *testing.T) {
	s := NewScheduler(1)
	c := s.NewClass("c", 1, 1)

	release := make(chan struct{})
	if err := c.Enqueue(func() { <-release }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // worker holds the blocker
	drained := make(chan struct{})
	if err := c.Enqueue(func() { close(drained) }); err != nil {
		t.Fatal(err) // occupies the single queue slot
	}
	if err := c.Enqueue(func() {}); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow enqueue error = %v, want ErrBusy", err)
	}

	close(release)
	s.Close() // must drain the queued task before the workers exit
	select {
	case <-drained:
	default:
		t.Fatal("task queued before Close never ran")
	}
	if err := c.Enqueue(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close enqueue error = %v, want ErrClosed", err)
	}
}

// TestRunCloseDiscipline: subscriber channels are closed exactly once,
// by Finish, never by the subscription's cancel; replay callbacks are
// atomic with registration; terminal runs hand back a closed channel.
func TestRunCloseDiscipline(t *testing.T) {
	r := NewRun[int](id(t))
	var replay []int

	live, cancel := r.Subscribe(8, nil)
	r.Publish(1, func() { replay = append(replay, 1) })
	r.Publish(2, func() { replay = append(replay, 2) })
	if got := <-live; got != 1 {
		t.Fatalf("first event = %d, want 1", got)
	}
	cancel()
	cancel() // safe to call twice
	// After cancel the channel stays open (only Finish closes it); no
	// further events are delivered.
	select {
	case v, open := <-live:
		if !open {
			t.Fatal("cancel closed the subscription channel")
		}
		if v != 2 {
			t.Fatalf("unexpected event %d after buffered 2", v)
		}
	default:
	}

	var final string
	r.Finish(StateDone, "", func() { final = "set" })
	if final != "set" {
		t.Fatal("Finish update callback did not run")
	}
	if r.State() != StateDone {
		t.Fatalf("state = %s, want done", r.State())
	}
	select {
	case <-r.Done():
	default:
		t.Fatal("done channel not closed")
	}
	// Finish after terminal is a no-op, update callback included.
	r.Finish(StateFailed, "boom", func() { final = "clobbered" })
	if r.State() != StateDone || final != "set" {
		t.Fatalf("second Finish mutated a terminal run: state=%s final=%q", r.State(), final)
	}

	// Subscribing to a terminal run: replay runs, channel arrives closed.
	var seen []int
	live2, cancel2 := r.Subscribe(8, func() { seen = append(seen, replay...) })
	defer cancel2()
	if _, open := <-live2; open {
		t.Fatal("terminal run's subscription channel not closed")
	}
	if len(seen) != 2 {
		t.Fatalf("replay callback saw %d events, want 2", len(seen))
	}
}

// TestRunBeginAfterCancel: a queued run canceled before its worker
// dequeues it finishes as canceled through Begin.
func TestRunBeginAfterCancel(t *testing.T) {
	r := NewRun[int](id(t))
	r.Cancel()
	if r.Begin(nil) {
		t.Fatal("Begin succeeded on a canceled run")
	}
	if r.State() != StateCanceled {
		t.Fatalf("state = %s, want canceled", r.State())
	}
	select {
	case <-r.Done():
	default:
		t.Fatal("canceled-while-queued run's done channel not closed")
	}
}

func id(t *testing.T) string { return t.Name() }

// TestFinishedNeverClobbersLiveRun: filing a synthetic finished run (a
// sweep cell sharing its result into the experiment index) must not
// displace an identical *in-flight* run from the id index — the live
// run has to stay addressable so its cancellation keeps working.
func TestFinishedNeverClobbersLiveRun(t *testing.T) {
	x := NewIndex(NewCore(nil), "job", 4, func(r *Run[int]) string { return r.ID })

	live, _, err := x.Submit("key-1", "id-1", nil, func() (*Run[int], error) {
		return NewRun[int]("id-1"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if live.State() != StateQueued {
		t.Fatalf("fresh run state = %s", live.State())
	}

	synthetic := NewRun[int]("id-1")
	synthetic.Finish(StateDone, "", nil)
	x.Finished("key-1", synthetic)

	got, ok := x.Get("id-1", nil)
	if !ok || got != live {
		t.Fatal("synthetic finished run displaced the live run from the id index")
	}
	// Once the live run is terminal, filing is allowed again (last wins).
	live.Finish(StateDone, "", nil)
	x.Finished("key-1", synthetic)
	if got, _ := x.Get("id-1", nil); got != synthetic {
		t.Fatal("terminal run was not replaceable")
	}
}
