package runcore

import "container/list"

// lru is a minimal least-recently-used map from canonical spec keys to
// finished work (jobs, experiments). It is not safe for concurrent use;
// the Manager guards it with its own mutex. onEvict runs synchronously
// when an entry falls out, so the Manager can drop the evicted value
// from its id index too — with a durable store configured, eviction only
// trims the in-memory cache, the store keeps the result.
type lru[V any] struct {
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry[V]
	entries map[string]*list.Element
	onEvict func(V)
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int, onEvict func(V)) *lru[V] {
	return &lru[V]{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// get returns the cached value for key and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	el, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *lru[V]) put(key string, val V) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*lruEntry[V])
		delete(c.entries, e.key)
		if c.onEvict != nil {
			c.onEvict(e.val)
		}
	}
}

// remove drops key without running the eviction hook.
func (c *lru[V]) remove(key string) {
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *lru[V]) len() int { return c.order.Len() }
