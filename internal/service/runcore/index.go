package runcore

import (
	"sync"

	"popproto/internal/obs"
	"popproto/internal/store"
)

// Submission outcome label values of the popprotod_runcore_submissions
// counter family (the obs promotion of the former ad-hoc hit/join/miss
// counters — /v1/health sums the same instruments /metrics renders, so
// the two can never disagree).
const (
	outcomeHit      = "hit"
	outcomeJoined   = "joined"
	outcomeMiss     = "miss"
	outcomeRestored = "restored"
)

// Core owns what every run kind's cache shares: the single submission
// lock, the cross-kind hit/join/miss instruments, the closed flag, and
// the optional durable store the per-kind LRUs cache in front of.
type Core struct {
	// Store, when non-nil, persists finished results and serves them back
	// across restarts. It belongs to the caller that opened it.
	Store *store.Store

	mu     sync.Mutex
	closed bool

	// submissions counts every Submit by (kind, outcome); persistErrs
	// counts failed persistence attempts. The instruments always exist —
	// Register attaches them to a registry for exposition.
	submissions *obs.CounterVec
	persistErrs *obs.Counter
}

// NewCore returns a core over the (possibly nil) durable store.
func NewCore(st *store.Store) *Core {
	return &Core{
		Store: st,
		submissions: obs.NewCounterVec("popprotod_runcore_submissions_total",
			"Run submissions by kind and outcome (hit, joined, miss, restored).",
			"kind", "outcome"),
		persistErrs: obs.NewCounter("popprotod_runcore_persist_errors_total",
			"Finished results that failed to persist to the durable store."),
	}
}

// Register attaches the core's instruments to reg for exposition.
func (c *Core) Register(reg *obs.Registry) {
	reg.MustRegister(c.submissions, c.persistErrs)
}

// SetClosed marks the core closed and reports whether it was already.
func (c *Core) SetClosed() (already bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	already = c.closed
	c.closed = true
	return already
}

// Counters is a snapshot of the shared submission counters.
type Counters struct {
	// Hits counts submissions answered from a finished-work cache, Joined
	// those coalesced onto an identical in-flight run, and Misses those
	// that started fresh work. All kinds share these counters.
	Hits, Joined, Misses uint64
	// StoreHits counts submissions answered from the durable store after
	// missing the in-memory cache (after a restart or an LRU eviction);
	// StoreErrors counts failed persistence attempts.
	StoreHits, StoreErrors uint64
	// Stored is the number of results in the durable store (0 without
	// one).
	Stored int
}

// Counters snapshots the shared counters by summing the same obs
// instruments /metrics renders — one source of truth for both surfaces.
func (c *Core) Counters() Counters {
	var s Counters
	c.submissions.Each(func(values []string, n uint64) {
		switch values[1] {
		case outcomeHit:
			s.Hits += n
		case outcomeJoined:
			s.Joined += n
		case outcomeMiss:
			s.Misses += n
		case outcomeRestored:
			s.StoreHits += n
		}
	})
	s.StoreErrors = c.persistErrs.Value()
	if c.Store != nil {
		s.Stored = c.Store.Len()
	}
	return s
}

// Persist appends a finished result to the durable store (best-effort:
// a persistence failure is counted, not fatal — the in-memory result
// still serves).
func (c *Core) Persist(kind store.Kind, key, id string, spec, data any) {
	if c.Store == nil {
		return
	}
	if err := c.Store.Put(kind, key, id, spec, data); err != nil {
		c.persistErrs.Inc()
	}
}

// Lifecycle is the surface Index needs from a kind's run type; every
// kind satisfies it by embedding *Run[E].
type Lifecycle interface {
	State() State
	Cancel()
}

// Index is one run kind's finished-work cache and in-flight index on a
// shared Core: an LRU keyed by canonical spec in front of the core's
// durable store, plus the id index used for lookups, joins and
// cancellation. All methods take the core's lock; one Core serializes
// submissions across all its indexes, which is what makes cross-kind
// cache interactions (a sweep cell populating the experiment cache) a
// single atomic step.
type Index[R Lifecycle] struct {
	core *Core
	kind store.Kind
	id   func(R) string

	// Cached per-kind children of the core's submissions family —
	// creating them at construction also pre-seeds the series so every
	// (kind, outcome) pair renders on /metrics from startup.
	hit, joined, miss, restored *obs.Counter

	byID  map[string]R
	cache *lru[R]
}

// NewIndex registers a run kind's index on the core. kind scopes its
// records in the durable store; id projects a run to its public id;
// cacheSize bounds the finished-work LRU.
func NewIndex[R Lifecycle](core *Core, kind store.Kind, cacheSize int, id func(R) string) *Index[R] {
	x := &Index[R]{
		core:     core,
		kind:     kind,
		id:       id,
		hit:      core.submissions.With(string(kind), outcomeHit),
		joined:   core.submissions.With(string(kind), outcomeJoined),
		miss:     core.submissions.With(string(kind), outcomeMiss),
		restored: core.submissions.With(string(kind), outcomeRestored),
		byID:     make(map[string]R),
	}
	x.cache = newLRU(cacheSize, func(r R) { delete(x.byID, id(r)) })
	return x
}

// Outcome reports how a submission was answered.
type Outcome int

const (
	// OutcomeNew: fresh work was created and enqueued.
	OutcomeNew Outcome = iota
	// OutcomeHit: answered from the finished-work cache.
	OutcomeHit
	// OutcomeJoined: coalesced onto an identical in-flight run.
	OutcomeJoined
	// OutcomeRestored: answered from the durable store (a cache miss that
	// did not need re-simulation).
	OutcomeRestored
)

// Cached reports whether the outcome served finished work without
// scheduling anything.
func (o Outcome) Cached() bool { return o == OutcomeHit || o == OutcomeRestored }

// Submit is the one submission discipline every kind runs: answer from
// the finished-work cache (except canceled runs, which are evicted and
// re-run — cancellation is an operator action, not the spec's
// deterministic outcome), else coalesce onto an identical in-flight
// run, else restore from the durable store via decode, else create
// fresh work. decode reconstructs a finished run from a store record
// (nil, or returning false, skips restoration); create builds and
// enqueues a fresh run and may fail with ErrBusy. Both callbacks run
// under the core's lock and must not re-enter the index.
func (x *Index[R]) Submit(key, id string,
	decode func(store.Record) (R, bool),
	create func() (R, error),
) (R, Outcome, error) {
	var zero R
	c := x.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return zero, OutcomeNew, ErrClosed
	}
	if r, ok := x.cache.get(key); ok {
		if r.State() != StateCanceled {
			x.hit.Inc()
			return r, OutcomeHit, nil
		}
		x.cache.remove(key)
		delete(x.byID, x.id(r))
	}
	if r, ok := x.byID[id]; ok && !r.State().Terminal() {
		x.joined.Inc()
		return r, OutcomeJoined, nil
	}
	if r, ok := x.restoreLocked(key, decode); ok {
		x.restored.Inc()
		return r, OutcomeRestored, nil
	}
	r, err := create()
	if err != nil {
		return zero, OutcomeNew, err
	}
	x.byID[id] = r
	x.miss.Inc()
	return r, OutcomeNew, nil
}

// restoreLocked reconstructs a finished run from the durable store's
// record for key and indexes it like freshly finished work. Callers
// hold the core's lock.
func (x *Index[R]) restoreLocked(key string, decode func(store.Record) (R, bool)) (R, bool) {
	var zero R
	if x.core.Store == nil || decode == nil {
		return zero, false
	}
	rec, ok := x.core.Store.Get(x.kind, key)
	if !ok {
		return zero, false
	}
	r, ok := decode(rec)
	if !ok {
		return zero, false
	}
	x.byID[x.id(r)] = r
	x.cache.put(key, r)
	return r, true
}

// Get returns the run with the given id, restoring it from the durable
// store (via decode, keyed by the store record's canonical key) if it
// is no longer indexed in memory.
func (x *Index[R]) Get(id string, decode func(store.Record) (R, bool)) (R, bool) {
	c := x.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := x.byID[id]; ok {
		return r, true
	}
	if c.Store != nil {
		if rec, ok := c.Store.GetByID(id); ok && rec.Kind == x.kind {
			if r, ok := x.restoreLocked(rec.Key, decode); ok {
				x.restored.Inc()
				return r, true
			}
		}
	}
	var zero R
	return zero, false
}

// Lookup returns the cached finished run for a canonical key without
// touching the store, reporting whether it exists. Used for cross-kind
// reuse (a sweep cell consulting the experiment cache).
func (x *Index[R]) Lookup(key string) (R, bool) {
	x.core.mu.Lock()
	defer x.core.mu.Unlock()
	return x.cache.get(key)
}

// Finished files a terminal run under its canonical key (evicting the
// oldest entries, and with them their id index) and ensures the id
// index knows it — runs created by Submit already do; synthetic runs
// (sweep cells shared into the experiment cache) are indexed here. If a
// *live* (non-terminal) run already holds the id — an identical
// in-flight run raced this one to the same result — neither index is
// touched: the live run must stay addressable (cancellation included)
// and will file itself when it finishes.
func (x *Index[R]) Finished(key string, r R) {
	x.core.mu.Lock()
	defer x.core.mu.Unlock()
	if cur, ok := x.byID[x.id(r)]; ok && !cur.State().Terminal() {
		return
	}
	x.byID[x.id(r)] = r
	x.cache.put(key, r)
}

// Cancel requests cancellation of the run with the given id, reporting
// whether it exists. Finished runs are unaffected.
func (x *Index[R]) Cancel(id string) bool {
	x.core.mu.Lock()
	r, ok := x.byID[id]
	x.core.mu.Unlock()
	if ok {
		r.Cancel()
	}
	return ok
}

// CancelAll cancels every indexed run (shutdown path).
func (x *Index[R]) CancelAll() {
	x.core.mu.Lock()
	runs := make([]R, 0, len(x.byID))
	for _, r := range x.byID {
		runs = append(runs, r)
	}
	x.core.mu.Unlock()
	for _, r := range runs {
		r.Cancel()
	}
}

// Len returns the number of indexed runs (live + cached).
func (x *Index[R]) Len() int {
	x.core.mu.Lock()
	defer x.core.mu.Unlock()
	return len(x.byID)
}

// CacheLen returns the finished-work LRU's current size.
func (x *Index[R]) CacheLen() int {
	x.core.mu.Lock()
	defer x.core.mu.Unlock()
	return x.cache.len()
}
