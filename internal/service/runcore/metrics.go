package runcore

import (
	"popproto/internal/obs"
)

// Metrics is the scheduler's instrument set: per-kind admission queue
// depth, queue-wait and run-duration distributions, and worker-pool
// utilization. Construct with NewMetrics and attach via
// Scheduler.SetMetrics before registering classes; a scheduler without
// metrics skips all instrumentation (no clock reads on the dispatch
// path).
type Metrics struct {
	// QueueDepth tracks tasks admitted but not yet dispatched, per kind.
	QueueDepth *obs.GaugeVec
	// Running tracks tasks currently executing, per kind.
	Running *obs.GaugeVec
	// QueueWait observes the admission-to-dispatch delay, per kind.
	QueueWait *obs.HistogramVec
	// RunSeconds observes task execution wall time, per kind.
	RunSeconds *obs.HistogramVec
	// WorkersBusy and Workers expose pool utilization (busy / total).
	WorkersBusy *obs.Gauge
	Workers     *obs.Gauge
}

// NewMetrics creates the scheduler instruments and registers them on
// reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		QueueDepth: obs.NewGaugeVec("popprotod_runcore_queue_depth",
			"Tasks admitted to a kind's queue but not yet dispatched.", "kind"),
		Running: obs.NewGaugeVec("popprotod_runcore_running",
			"Tasks of a kind currently executing.", "kind"),
		QueueWait: obs.NewHistogramVec("popprotod_runcore_queue_wait_seconds",
			"Delay between admission and dispatch.", obs.ExpBuckets(0.0001, 2, 18), "kind"),
		RunSeconds: obs.NewHistogramVec("popprotod_runcore_run_seconds",
			"Task execution wall time.", obs.ExpBuckets(0.001, 2, 18), "kind"),
		WorkersBusy: obs.NewGauge("popprotod_runcore_workers_busy",
			"Scheduler workers currently executing a task."),
		Workers: obs.NewGauge("popprotod_runcore_workers",
			"Total scheduler worker goroutines."),
	}
	reg.MustRegister(m.QueueDepth, m.Running, m.QueueWait, m.RunSeconds,
		m.WorkersBusy, m.Workers)
	return m
}
