// Package runcore is the generic run-orchestration core behind every
// kind of managed work the popprotod service runs — single jobs,
// Monte-Carlo experiments, and parameter sweeps. It owns, exactly once,
// the four pieces those kinds used to duplicate:
//
//   - the lifecycle state machine (queued → running → done/failed/canceled),
//   - the streaming fanout (per-run subscriber channels with the
//     close-only-on-finish discipline the SSE handlers depend on),
//   - the scheduler (one bounded-queue worker pool shared by all kinds,
//     with per-kind admission capacity, per-kind concurrency caps, and
//     round-robin fairness between kinds under mixed load), and
//   - the finished-work cache (an LRU per kind in front of the optional
//     durable store, with canonical-key dedup, in-flight coalescing, and
//     restore-on-miss across restarts).
//
// A run kind (service.Job, service.Experiment, service.Sweep) embeds a
// *Run[E] for lifecycle and fanout, registers a Class on the shared
// Scheduler, and drives submissions through an Index[R]. Everything a
// kind adds on top — its spec, its result payload, its replay policy —
// stays in the kind; everything two kinds would otherwise both
// implement lives here.
package runcore

import "errors"

// Submission failures shared by every run kind, distinguished so the
// HTTP layer can map them to status codes (429/503) separate from spec
// validation 400s.
var (
	// ErrBusy reports a full queue; the caller should retry later.
	ErrBusy = errors.New("service: job queue is full")
	// ErrClosed reports submission to a manager that has been shut down.
	ErrClosed = errors.New("service: manager is closed")
)

// State is a run's lifecycle state, shared by every run kind.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions are possible.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}
