package runcore

import (
	"sync"
	"time"
)

// Task is one unit of queued work: a closure that runs a submitted run
// to a terminal state.
type Task func()

// queued is one admitted task plus its admission timestamp (zero when
// the scheduler is uninstrumented — the clock is only read for the
// queue-wait histogram).
type queued struct {
	t  Task
	at time.Time
}

// Scheduler is the one worker pool every run kind shares. Kinds
// register a Class each; a class has its own bounded admission queue
// (beyond which Enqueue reports ErrBusy) and its own concurrency cap
// (an experiment or sweep occupies one slot for its whole duration
// while fanning replicates over goroutines of its own, so kinds that
// multiply their worker must be capped independently of cheap kinds).
// Dispatch round-robins across the classes with runnable work, so under
// mixed job + experiment + sweep load no kind can starve another.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	classes []*Class
	next    int // round-robin start position for the next dispatch
	closed  bool
	wg      sync.WaitGroup
	workers int
	metrics *Metrics // nil = uninstrumented
}

// Class is one run kind's admission queue and concurrency cap on the
// shared scheduler.
type Class struct {
	sched      *Scheduler
	name       string
	queue      []queued
	capacity   int
	running    int
	maxRunning int
}

// NewScheduler starts a scheduler with the given number of worker
// goroutines. Size it as the sum of the classes' concurrency caps so
// every class can reach its cap even when the others are saturated.
func NewScheduler(workers int) *Scheduler {
	s := &Scheduler{workers: workers}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// SetMetrics attaches the instrument set. Call before NewClass so every
// class's gauges exist from registration; a nil scheduler stays
// uninstrumented.
func (s *Scheduler) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
	if m != nil {
		m.Workers.Set(float64(s.workers))
		for _, c := range s.classes {
			m.QueueDepth.With(c.name).Set(float64(len(c.queue)))
			m.Running.With(c.name).Set(float64(c.running))
		}
	}
}

// NewClass registers a run kind: capacity bounds the queued-but-not-
// running tasks (beyond it Enqueue returns ErrBusy), maxRunning bounds
// the kind's concurrently executing tasks.
func (s *Scheduler) NewClass(name string, capacity, maxRunning int) *Class {
	c := &Class{sched: s, name: name, capacity: capacity, maxRunning: maxRunning}
	s.mu.Lock()
	s.classes = append(s.classes, c)
	if s.metrics != nil {
		// Pre-seed so the kind's series render before any traffic.
		s.metrics.QueueDepth.With(name).Set(0)
		s.metrics.Running.With(name).Set(0)
	}
	s.mu.Unlock()
	return c
}

// Enqueue admits t to the class's queue. It fails with ErrBusy when the
// queue is at capacity and ErrClosed after Close.
func (c *Class) Enqueue(t Task) error {
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(c.queue) >= c.capacity {
		return ErrBusy
	}
	q := queued{t: t}
	if s.metrics != nil {
		q.at = time.Now()
	}
	c.queue = append(c.queue, q)
	if s.metrics != nil {
		s.metrics.QueueDepth.With(c.name).Set(float64(len(c.queue)))
	}
	s.cond.Signal()
	return nil
}

// Queued returns the class's current queue length (for health and
// tests).
func (c *Class) Queued() int {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return len(c.queue)
}

// Running returns the class's currently executing task count (for
// health and tests).
func (c *Class) Running() int {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return c.running
}

// Name returns the class's registered kind name.
func (c *Class) Name() string { return c.name }

// Close stops admission and waits for the workers to exit. Tasks still
// queued at close time ARE executed first — the manager cancels their
// runs before closing, so each drains immediately through its
// canceled-while-queued path and still reaches a terminal state — and
// running tasks finish.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// worker dispatches tasks until the scheduler is closed and drained.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		c, t := s.pickLocked()
		if t == nil {
			if s.closed && s.drainedLocked() {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		m := s.metrics
		s.mu.Unlock()
		if m != nil {
			m.WorkersBusy.Inc()
			start := time.Now()
			t()
			m.RunSeconds.With(c.name).Observe(time.Since(start).Seconds())
			m.WorkersBusy.Dec()
		} else {
			t()
		}
		s.mu.Lock()
		c.running--
		if s.metrics != nil {
			s.metrics.Running.With(c.name).Set(float64(c.running))
		}
		// A finished task can unblock a class that was at its cap, and on
		// shutdown every waiter must recheck the drain condition.
		s.cond.Broadcast()
	}
}

// pickLocked selects the next runnable task round-robin across classes:
// starting after the last dispatched class, the first class with queued
// work below its concurrency cap wins. Callers hold s.mu.
func (s *Scheduler) pickLocked() (*Class, Task) {
	for i := range s.classes {
		c := s.classes[(s.next+i)%len(s.classes)]
		if len(c.queue) > 0 && c.running < c.maxRunning {
			q := c.queue[0]
			c.queue = c.queue[1:]
			c.running++
			s.next = (s.next + i + 1) % len(s.classes)
			if s.metrics != nil {
				s.metrics.QueueDepth.With(c.name).Set(float64(len(c.queue)))
				s.metrics.Running.With(c.name).Set(float64(c.running))
				if !q.at.IsZero() {
					s.metrics.QueueWait.With(c.name).Observe(time.Since(q.at).Seconds())
				}
			}
			return c, q.t
		}
	}
	return nil, nil
}

// drainedLocked reports whether every class's queue is empty. Callers
// hold s.mu.
func (s *Scheduler) drainedLocked() bool {
	for _, c := range s.classes {
		if len(c.queue) > 0 {
			return false
		}
	}
	return true
}
